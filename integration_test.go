package afdx_test

// Cross-package property tests: invariants that must hold on arbitrary
// (generated) configurations, not just the hand-built ones. Each test
// sweeps a family of random small networks produced by the public
// generator and checks an ordering or soundness property across the
// engines.

import (
	"testing"

	"afdx"
)

// smallNetworks yields a family of random small configurations that are
// cheap enough to analyse and simulate exhaustively in tests.
func smallNetworks(t *testing.T, n int) []*afdx.Network {
	t.Helper()
	var nets []*afdx.Network
	for seed := int64(1); len(nets) < n; seed++ {
		spec := afdx.DefaultGeneratorSpec(seed)
		spec.NumSwitches = 2 + int(seed%3)
		spec.ESPerSwitch = 2 + int(seed%2)
		spec.NumVLs = 8 + int(seed%7)
		net, err := afdx.Generate(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		nets = append(nets, net)
	}
	return nets
}

func TestPropertyCombinedNeverWorseThanEither(t *testing.T) {
	for i, net := range smallNetworks(t, 12) {
		pg, err := afdx.BuildPortGraph(net, afdx.Strict)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := afdx.Compare(pg)
		if err != nil {
			t.Fatal(err)
		}
		for pid, pc := range cmp.PerPath {
			if pc.BestUs > pc.NCUs+1e-9 || pc.BestUs > pc.TrajectoryUs+1e-9 {
				t.Errorf("net %d path %v: best %g above a component (%g, %g)",
					i, pid, pc.BestUs, pc.NCUs, pc.TrajectoryUs)
			}
			if pc.BestUs < pc.MinUs-1e-9 {
				t.Errorf("net %d path %v: bound %g below the physical floor %g",
					i, pid, pc.BestUs, pc.MinUs)
			}
		}
	}
}

func TestPropertyGroupingTightensBothEngines(t *testing.T) {
	for i, net := range smallNetworks(t, 12) {
		pg, err := afdx.BuildPortGraph(net, afdx.Strict)
		if err != nil {
			t.Fatal(err)
		}
		ncG, err := afdx.AnalyzeNC(pg, afdx.NCOptions{Grouping: true})
		if err != nil {
			t.Fatal(err)
		}
		ncU, err := afdx.AnalyzeNC(pg, afdx.NCOptions{Grouping: false})
		if err != nil {
			t.Fatal(err)
		}
		trG, err := afdx.AnalyzeTrajectory(pg, afdx.TrajectoryOptions{Grouping: true})
		if err != nil {
			t.Fatal(err)
		}
		trU, err := afdx.AnalyzeTrajectory(pg, afdx.TrajectoryOptions{Grouping: false})
		if err != nil {
			t.Fatal(err)
		}
		for pid := range ncG.PathDelays {
			if ncG.PathDelays[pid] > ncU.PathDelays[pid]+1e-9 {
				t.Errorf("net %d path %v: grouped NC %g above ungrouped %g",
					i, pid, ncG.PathDelays[pid], ncU.PathDelays[pid])
			}
			if trG.PathDelays[pid] > trU.PathDelays[pid]+1e-9 {
				t.Errorf("net %d path %v: grouped trajectory %g above ungrouped %g",
					i, pid, trG.PathDelays[pid], trU.PathDelays[pid])
			}
		}
	}
}

func TestPropertyRefinementsTighten(t *testing.T) {
	for i, net := range smallNetworks(t, 8) {
		pg, err := afdx.BuildPortGraph(net, afdx.Strict)
		if err != nil {
			t.Fatal(err)
		}
		base, err := afdx.AnalyzeTrajectory(pg, afdx.DefaultTrajectoryOptions())
		if err != nil {
			t.Fatal(err)
		}
		shared, err := afdx.AnalyzeTrajectory(pg, afdx.TrajectoryOptions{Grouping: true, SharedTransition: true})
		if err != nil {
			t.Fatal(err)
		}
		ncBase, err := afdx.AnalyzeNC(pg, afdx.DefaultNCOptions())
		if err != nil {
			t.Fatal(err)
		}
		ncStair, err := afdx.AnalyzeNC(pg, afdx.NCOptions{Grouping: true, StairSteps: 6})
		if err != nil {
			t.Fatal(err)
		}
		for pid := range base.PathDelays {
			if shared.PathDelays[pid] > base.PathDelays[pid]+1e-9 {
				t.Errorf("net %d path %v: shared-transition worsened %g -> %g",
					i, pid, base.PathDelays[pid], shared.PathDelays[pid])
			}
			if ncStair.PathDelays[pid] > ncBase.PathDelays[pid]+1e-9 {
				t.Errorf("net %d path %v: staircase envelopes worsened %g -> %g",
					i, pid, ncBase.PathDelays[pid], ncStair.PathDelays[pid])
			}
		}
	}
}

func TestPropertySimulationWithinSoundBounds(t *testing.T) {
	for i, net := range smallNetworks(t, 8) {
		pg, err := afdx.BuildPortGraph(net, afdx.Strict)
		if err != nil {
			t.Fatal(err)
		}
		nc, err := afdx.AnalyzeNC(pg, afdx.DefaultNCOptions())
		if err != nil {
			t.Fatal(err)
		}
		trU, err := afdx.AnalyzeTrajectory(pg, afdx.TrajectoryOptions{Grouping: false})
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 4; seed++ {
			cfg := afdx.DefaultSimConfig(seed)
			cfg.DurationUs = 256_000
			res, err := afdx.Simulate(pg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for pid, st := range res.Paths {
				if st.MaxDelayUs > nc.PathDelays[pid]+1e-6 {
					t.Errorf("net %d seed %d path %v: simulated %g above NC bound %g",
						i, seed, pid, st.MaxDelayUs, nc.PathDelays[pid])
				}
				if st.MaxDelayUs > trU.PathDelays[pid]+1e-6 {
					t.Errorf("net %d seed %d path %v: simulated %g above ungrouped trajectory %g",
						i, seed, pid, st.MaxDelayUs, trU.PathDelays[pid])
				}
				if st.MinDelayUs > 0 {
					floor, err := pg.MinPathDelayUs(pid)
					if err != nil {
						t.Fatal(err)
					}
					if st.MinDelayUs < floor-1e-6 {
						t.Errorf("net %d path %v: simulated min %g below physical floor %g",
							i, pid, st.MinDelayUs, floor)
					}
				}
			}
		}
	}
}

func TestPropertyAddingFlowNeverHelpsOthers(t *testing.T) {
	// Monotonicity under load: adding one more VL must not decrease any
	// existing path's bound, for either engine.
	for i, net := range smallNetworks(t, 6) {
		pgBase, err := afdx.BuildPortGraph(net, afdx.Strict)
		if err != nil {
			t.Fatal(err)
		}
		cmpBase, err := afdx.Compare(pgBase)
		if err != nil {
			t.Fatal(err)
		}
		// Add a heavy VL between the first two end systems.
		grown := *net
		grown.VLs = append(append([]*afdx.VirtualLink{}, net.VLs...), &afdx.VirtualLink{
			ID: "extra", Source: net.VLs[0].Source, BAGMs: 2,
			SMaxBytes: 1518, SMinBytes: 64,
			Paths: [][]string{append([]string{}, net.VLs[0].Paths[0]...)},
		})
		pgGrown, err := afdx.BuildPortGraph(&grown, afdx.Strict)
		if err != nil {
			t.Fatal(err)
		}
		cmpGrown, err := afdx.Compare(pgGrown)
		if err != nil {
			t.Fatal(err)
		}
		for pid, pc := range cmpBase.PerPath {
			g := cmpGrown.PerPath[pid]
			if g.NCUs < pc.NCUs-1e-9 {
				t.Errorf("net %d path %v: NC bound decreased %g -> %g after adding load",
					i, pid, pc.NCUs, g.NCUs)
			}
			if g.TrajectoryUs < pc.TrajectoryUs-1e-9 {
				t.Errorf("net %d path %v: trajectory bound decreased %g -> %g after adding load",
					i, pid, pc.TrajectoryUs, g.TrajectoryUs)
			}
		}
	}
}

func TestPropertyMirrorPreservesBounds(t *testing.T) {
	for i, net := range smallNetworks(t, 6) {
		pg, err := afdx.BuildPortGraph(net, afdx.Strict)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := afdx.Compare(pg)
		if err != nil {
			t.Fatal(err)
		}
		red, err := afdx.Mirror(net)
		if err != nil {
			t.Fatal(err)
		}
		pgRed, err := afdx.BuildPortGraph(red, afdx.Strict)
		if err != nil {
			t.Fatal(err)
		}
		cmpRed, err := afdx.Compare(pgRed)
		if err != nil {
			t.Fatal(err)
		}
		if len(cmpRed.PerPath) != 2*len(cmp.PerPath) {
			t.Errorf("net %d: mirrored comparison has %d paths, want %d",
				i, len(cmpRed.PerPath), 2*len(cmp.PerPath))
		}
		for pid, pc := range cmp.PerPath {
			a := afdx.PathID{VL: pid.VL + "A", PathIdx: pid.PathIdx}
			got := cmpRed.PerPath[a].BestUs
			// Accumulation order differs between the runs; allow ulps.
			if diff := got - pc.BestUs; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("net %d path %v: mirrored bound %g differs from base %g",
					i, pid, got, pc.BestUs)
			}
		}
	}
}

func TestPropertySoundBoundsDominateExactSearch(t *testing.T) {
	// The strongest correctness check: on random tiny configurations,
	// the worst delay the offset search can realize must stay below the
	// sound analytic bounds (NC and ungrouped trajectory) on every path.
	for seed := int64(10); seed < 16; seed++ {
		spec := afdx.DefaultGeneratorSpec(seed)
		spec.NumSwitches = 2
		spec.ESPerSwitch = 2
		spec.NumVLs = 4
		net, err := afdx.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		pg, err := afdx.BuildPortGraph(net, afdx.Strict)
		if err != nil {
			t.Fatal(err)
		}
		nc, err := afdx.AnalyzeNC(pg, afdx.DefaultNCOptions())
		if err != nil {
			t.Fatal(err)
		}
		trU, err := afdx.AnalyzeTrajectory(pg, afdx.TrajectoryOptions{Grouping: false})
		if err != nil {
			t.Fatal(err)
		}
		opts := afdx.DefaultExactOptions()
		opts.GridUs = 0 // BAG/8 per VL
		opts.Refine = 8
		opts.MaxCombos = 200_000
		found, err := afdx.SearchWorstCase(pg, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for pid, d := range found.Delays {
			if d > nc.PathDelays[pid]+1e-6 {
				t.Errorf("seed %d path %v: search reached %g above the NC bound %g",
					seed, pid, d, nc.PathDelays[pid])
			}
			if d > trU.PathDelays[pid]+1e-6 {
				t.Errorf("seed %d path %v: search reached %g above the ungrouped trajectory bound %g",
					seed, pid, d, trU.PathDelays[pid])
			}
			floor, err := pg.MinPathDelayUs(pid)
			if err != nil {
				t.Fatal(err)
			}
			if d > 0 && d < floor-1e-6 {
				t.Errorf("seed %d path %v: search result %g below the physical floor %g",
					seed, pid, d, floor)
			}
		}
	}
}
