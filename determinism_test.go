package afdx_test

// Bit-reproducibility contract tests: both analysis engines must return
// bit-identical results across repeated runs and across worker-pool
// sizes (-parallel 1 vs -parallel N). The engines promise this by
// construction — float accumulation orders are fixed by sorted
// iteration, per-unit computations are pure, and worker results are
// merged in canonical order — and these tests pin the promise down,
// including under the race detector (see check.sh).

import (
	"fmt"
	"hash/fnv"
	"testing"

	"afdx"
)

// sameNCResults fails the test unless the two NC results are
// bit-identical: exact float equality (==, not a tolerance) on every
// per-port and per-path quantity.
func sameNCResults(t *testing.T, label string, a, b *afdx.NCResult) {
	t.Helper()
	if len(a.Ports) != len(b.Ports) {
		t.Fatalf("%s: port count %d vs %d", label, len(a.Ports), len(b.Ports))
	}
	for id, pa := range a.Ports {
		pb, ok := b.Ports[id]
		if !ok {
			t.Fatalf("%s: port %v missing", label, id)
		}
		if pa.DelayUs != pb.DelayUs || pa.BacklogBits != pb.BacklogBits || pa.Utilization != pb.Utilization {
			t.Errorf("%s: port %v differs: (%v,%v,%v) vs (%v,%v,%v)", label, id,
				pa.DelayUs, pa.BacklogBits, pa.Utilization, pb.DelayUs, pb.BacklogBits, pb.Utilization)
		}
		if len(pa.DelayByPriority) != len(pb.DelayByPriority) {
			t.Errorf("%s: port %v priority levels %d vs %d", label, id,
				len(pa.DelayByPriority), len(pb.DelayByPriority))
		}
		for lvl, d := range pa.DelayByPriority {
			if d != pb.DelayByPriority[lvl] {
				t.Errorf("%s: port %v level %d: %v vs %v", label, id, lvl, d, pb.DelayByPriority[lvl])
			}
		}
	}
	if len(a.PathDelays) != len(b.PathDelays) {
		t.Fatalf("%s: path count %d vs %d", label, len(a.PathDelays), len(b.PathDelays))
	}
	for pid, d := range a.PathDelays {
		if d != b.PathDelays[pid] {
			t.Errorf("%s: path %v: %v vs %v", label, pid, d, b.PathDelays[pid])
		}
	}
	for k, v := range a.PrefixDelays {
		if v != b.PrefixDelays[k] {
			t.Errorf("%s: prefix %v: %v vs %v", label, k, v, b.PrefixDelays[k])
		}
	}
	for k, v := range a.Bursts {
		if v != b.Bursts[k] {
			t.Errorf("%s: burst %v: %v vs %v", label, k, v, b.Bursts[k])
		}
	}
}

// sameTrajectoryResults fails the test unless the two trajectory
// results are bit-identical, details included.
func sameTrajectoryResults(t *testing.T, label string, a, b *afdx.TrajectoryResult) {
	t.Helper()
	if len(a.PathDelays) != len(b.PathDelays) {
		t.Fatalf("%s: path count %d vs %d", label, len(a.PathDelays), len(b.PathDelays))
	}
	for pid, d := range a.PathDelays {
		if d != b.PathDelays[pid] {
			t.Errorf("%s: path %v: %v vs %v", label, pid, d, b.PathDelays[pid])
		}
	}
	for pid, da := range a.Details {
		if db := b.Details[pid]; da != db {
			t.Errorf("%s: detail %v: %+v vs %+v", label, pid, da, db)
		}
	}
}

// TestFigure2BitIdenticalAcrossRunsAndWorkers runs both engines on the
// paper's sample configuration five times at each worker count and
// demands bit-identical output against the sequential reference.
func TestFigure2BitIdenticalAcrossRunsAndWorkers(t *testing.T) {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	ncOpts := afdx.DefaultNCOptions()
	trOpts := afdx.DefaultTrajectoryOptions()
	ncOpts.Parallel = 1
	trOpts.Parallel = 1
	ncRef, err := afdx.AnalyzeNC(pg, ncOpts)
	if err != nil {
		t.Fatal(err)
	}
	trRef, err := afdx.AnalyzeTrajectory(pg, trOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		ncOpts.Parallel = workers
		trOpts.Parallel = workers
		for run := 0; run < 5; run++ {
			nc, err := afdx.AnalyzeNC(pg, ncOpts)
			if err != nil {
				t.Fatal(err)
			}
			sameNCResults(t, "figure2 NC", ncRef, nc)
			tr, err := afdx.AnalyzeTrajectory(pg, trOpts)
			if err != nil {
				t.Fatal(err)
			}
			sameTrajectoryResults(t, "figure2 trajectory", trRef, tr)
		}
	}
}

// TestIndustrialNCBitIdenticalParallel checks the rank-parallel NC
// engine against the sequential one on the full seed-1 industrial
// configuration (cheap enough to run under the race detector).
func TestIndustrialNCBitIdenticalParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("industrial analysis is expensive")
	}
	net, err := afdx.Generate(afdx.DefaultGeneratorSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	opts := afdx.DefaultNCOptions()
	opts.Parallel = 1
	seq, err := afdx.AnalyzeNC(pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 8
	par, err := afdx.AnalyzeNC(pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameNCResults(t, "industrial NC", seq, par)
}

// TestSmallIndustrialTrajectoryBitIdenticalParallel checks the
// path-parallel trajectory engine on a scaled-down generated industrial
// configuration — small enough to stay fast under -race, where the full
// configuration would dominate the test suite (the full-size run lives
// in determinism_full_test.go behind the !race build tag).
func TestSmallIndustrialTrajectoryBitIdenticalParallel(t *testing.T) {
	spec := afdx.DefaultGeneratorSpec(1)
	spec.NumVLs = 120
	net, err := afdx.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	opts := afdx.DefaultTrajectoryOptions()
	opts.Parallel = 1
	seq, err := afdx.AnalyzeTrajectory(pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 8
	par, err := afdx.AnalyzeTrajectory(pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameTrajectoryResults(t, "small industrial trajectory", seq, par)
}

// renderTrajectoryLines renders a trajectory result into the canonical
// golden form: one line per path in PathID order, floats in hex (%x, an
// exact bit-level rendering), candidate and interferer counts appended.
func renderTrajectoryLines(res *afdx.TrajectoryResult) []string {
	ids := make([]afdx.PathID, 0, len(res.PathDelays))
	for id := range res.PathDelays {
		ids = append(ids, id)
	}
	afdx.SortPathIDs(ids)
	lines := make([]string, 0, len(ids))
	for _, id := range ids {
		d := res.Details[id]
		lines = append(lines, fmt.Sprintf("%v %x %x %x %d %d",
			id, d.DelayUs, d.BusyPeriodUs, d.CriticalT, d.NumCandidates, d.NumInterferers))
	}
	return lines
}

// TestTrajectoryGoldenPinnedValues pins the trajectory engine's output
// bit-for-bit against values captured from the pre-flattening (PR 6)
// engine: the paper's sample configuration per option variant
// literally, and the 120-VL generated configuration as an FNV-64a
// digest of its 783 rendered path lines per variant. Any change to a
// float accumulation order in the hot path — flat or reference — trips
// this test; it is the old-vs-new anchor of the PR 7 rework, on top of
// the engine-vs-engine differential tests in internal/trajectory.
func TestTrajectoryGoldenPinnedValues(t *testing.T) {
	fig2, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	// All grouped fig2 variants coincide on the sample configuration
	// (the serialization cap binds the same way and the transition terms
	// are symmetric); ungrouped differs on the four long paths.
	grouped := []string{
		"v1/0 0x1.fp+07 0x1.4p+05 0x0p+00 1 4",
		"v2/0 0x1.fp+07 0x1.4p+05 0x0p+00 1 4",
		"v3/0 0x1.fp+07 0x1.4p+05 0x0p+00 1 4",
		"v4/0 0x1.fp+07 0x1.4p+05 0x0p+00 1 4",
		"v5/0 0x1.cp+06 0x1.4p+05 0x0p+00 1 1",
	}
	ungrouped := []string{
		"v1/0 0x1.2p+08 0x1.4p+05 0x0p+00 1 4",
		"v2/0 0x1.2p+08 0x1.4p+05 0x0p+00 1 4",
		"v3/0 0x1.2p+08 0x1.4p+05 0x0p+00 1 4",
		"v4/0 0x1.2p+08 0x1.4p+05 0x0p+00 1 4",
		"v5/0 0x1.cp+06 0x1.4p+05 0x0p+00 1 1",
	}
	fig2Cases := []struct {
		name string
		opts afdx.TrajectoryOptions
		want []string
	}{
		{"grouped", afdx.TrajectoryOptions{Grouping: true}, grouped},
		{"ungrouped", afdx.TrajectoryOptions{}, ungrouped},
		{"prefixtraj", afdx.TrajectoryOptions{Grouping: true, PrefixMode: 1 /* PrefixTrajectory */}, grouped},
		{"shared", afdx.TrajectoryOptions{Grouping: true, SharedTransition: true}, grouped},
		{"deltafirst", afdx.TrajectoryOptions{Grouping: true, DeltaAtFirstNode: true}, grouped},
	}
	for _, tc := range fig2Cases {
		for _, workers := range []int{1, 8} {
			opts := tc.opts
			opts.Parallel = workers
			res, err := afdx.AnalyzeTrajectory(fig2, opts)
			if err != nil {
				t.Fatalf("fig2-%s: %v", tc.name, err)
			}
			lines := renderTrajectoryLines(res)
			if len(lines) != len(tc.want) {
				t.Fatalf("fig2-%s (workers=%d): %d paths, want %d", tc.name, workers, len(lines), len(tc.want))
			}
			for i := range lines {
				if lines[i] != tc.want[i] {
					t.Errorf("fig2-%s (workers=%d): line %d drifted from the pinned seed value:\n  got  %s\n  want %s",
						tc.name, workers, i, lines[i], tc.want[i])
				}
			}
		}
	}

	spec := afdx.DefaultGeneratorSpec(1)
	spec.NumVLs = 120
	net, err := afdx.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	smallCases := []struct {
		name string
		opts afdx.TrajectoryOptions
		want uint64
	}{
		{"small-industrial", afdx.TrajectoryOptions{Grouping: true}, 0xff3a4dc8346ecddf},
		{"small-industrial-ungrouped", afdx.TrajectoryOptions{}, 0xe6c74fa34c36a151},
	}
	for _, tc := range smallCases {
		for _, workers := range []int{1, 8} {
			opts := tc.opts
			opts.Parallel = workers
			res, err := afdx.AnalyzeTrajectory(pg, opts)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			h := fnv.New64a()
			for _, line := range renderTrajectoryLines(res) {
				h.Write([]byte(line))
				h.Write([]byte("\n"))
			}
			if got := h.Sum64(); got != tc.want {
				t.Errorf("%s (workers=%d): digest %#x drifted from the pinned seed digest %#x over %d paths",
					tc.name, workers, got, tc.want, len(res.PathDelays))
			}
		}
	}
}
