#!/bin/sh
# check.sh — the repository's expanded verification gate.
#
# Runs, in order:
#   1. go build ./...        (tier-1: everything compiles)
#   2. gofmt -l .            (formatting; any listed file fails the gate)
#   3. go vet ./...          (static analysis of the Go code itself)
#   4. go test ./...         (tier-1: the full test suite)
#   5. go test -race ./...   (the suite again under the race detector)
#   6. afdx-conformance      (short cross-engine differential campaign,
#                             deterministic seed, wall-time budgeted)
#   7. fuzz smoke            (each native fuzz target for a few seconds)
#
# Usage: ./check.sh        (or: make check)
set -eu
cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files are not formatted:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== conformance oracle (short campaign, deterministic)"
go run ./cmd/afdx-conformance -n 150 -seed 1 -budget 45s -quiet

echo "== fuzz smoke (5s per target)"
go test -run '^$' -fuzz '^FuzzReadJSON$' -fuzztime 5s ./internal/afdx
go test -run '^$' -fuzz '^FuzzConformanceConfig$' -fuzztime 5s ./internal/conformance

echo "check.sh: all gates passed"
