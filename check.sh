#!/bin/sh
# check.sh — the repository's expanded verification gate.
#
# Runs, in order:
#   1. go build ./...        (tier-1: everything compiles)
#   2. gofmt -l .            (formatting; any listed file fails the gate)
#   3. go vet ./...          (static analysis of the Go code itself)
#   4. go test ./...         (tier-1: the full test suite)
#   5. go test -race ./...   (the suite again under the race detector)
#
# Usage: ./check.sh        (or: make check)
set -eu
cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files are not formatted:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "check.sh: all gates passed"
