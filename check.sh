#!/bin/sh
# check.sh — the repository's expanded verification gate.
#
# Runs, in order:
#   1. go build ./...        (tier-1: everything compiles)
#   2. gofmt -l .            (formatting; any listed file fails the gate)
#   3. go vet ./...          (static analysis of the Go code itself)
#   4. afdx-vet ./...        (determinism contract: DET001..DET006 over
#                             the whole tree; any unsuppressed finding
#                             fails the gate)
#   5. go test ./...         (tier-1: the full test suite)
#   6. go test -race ./...   (the suite again under the race detector)
#   7. afdx-conformance      (short cross-engine differential campaign,
#                             deterministic seed, wall-time budgeted)
#   8. incremental parity    (a second campaign on a different seed:
#                             every configuration replays a delta
#                             sequence through a what-if session and
#                             requires bit-identity with cold runs)
#   9. flat hot-path smoke   (a third campaign on yet another seed,
#                             cross-checking the flattened trajectory
#                             hot path against the oracle's invariants)
#   9b. cross-tier smoke     (a fourth campaign on a fresh seed with the
#                             full NC analysis-tier ladder selected:
#                             tier-ordering + per-tier parallel parity)
#  10. served conformance    (afdx-serve -selfcheck: a seeded 20-delta
#                             script replayed through a live daemon over
#                             HTTP with the full observability stack on
#                             — structured JSON logs, request tracing,
#                             per-bound provenance — every answer
#                             re-derived from cold engine runs, zero
#                             mismatches required; plus a -served
#                             oracle campaign slice)
#  11. traced conformance    (same campaign with metrics + tracing on:
#                             verdicts must be identical — observability
#                             never participates in the computation)
#  12. fuzz smoke            (each native fuzz target for a few seconds)
#
# Usage: ./check.sh        (or: make check)
set -eu
cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files are not formatted:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== afdx-vet ./... (determinism contract)"
# The detcheck suite gates the source tree on the determinism contract
# (DET001..DET006): float accumulation over map ranges, wall clocks in
# engines, unsorted key slices, raw tolerance literals, per-item counter
# increments in parallel fan-outs, and unpolled unbounded loops. Only
# findings carrying a justified //detcheck:allow directive pass.
if ! go run ./cmd/afdx-vet ./...; then
	echo "check.sh: afdx-vet found determinism-contract violations." >&2
	echo "  Fix the reported sites, or suppress a provably order-independent" >&2
	echo "  one with '//detcheck:allow DET###: <justification>' on the line above." >&2
	exit 1
fi

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== conformance oracle (short campaign, deterministic)"
go run ./cmd/afdx-conformance -n 150 -seed 1 -budget 45s -quiet

echo "== incremental parity (30-config campaign, what-if vs cold bit-identity)"
# The oracle's incremental tier drives a session through a BAG-doubling,
# s_max-halving, VL-dropping delta sequence per configuration and fails
# on any bitwise divergence from cold engine runs (at -parallel 1 and
# the parallel worker count). A different seed than the campaign above,
# so the two gates cover disjoint configuration draws.
go run ./cmd/afdx-conformance -n 30 -seed 5 -quiet

echo "== flat hot-path smoke (30-config conformance slice)"
# A conformance slice on a seed the gates above never draw, aimed at the
# flattened trajectory hot path: the oracle cross-checks the optimized
# engine against network calculus and the invariant lattice on every
# configuration, so an indexing or scratch-reuse bug in the flat engine
# surfaces here even if the unit corpus misses it.
go run ./cmd/afdx-conformance -n 30 -seed 11 -quiet

echo "== cross-tier ordering smoke (30-config conformance slice, full ladder)"
# Another fresh seed, aimed at the NC tightness/cost ladder: on every
# configuration the oracle runs all three analysis tiers (TFA, WCNC,
# FIFO) and enforces the tier-ordering invariant — a cheaper tier is
# never tighter than a costlier one, simulation and the exact search
# stay below even the tightest tier, and the non-default tiers keep
# parallel parity at workers 1 and N.
go run ./cmd/afdx-conformance -n 30 -seed 17 -analysis TFA,WCNC,FIFO -quiet

echo "== served conformance (daemon vs cold bit-identity, observability on)"
# The serving smoke: generate a mid-size configuration, start afdx-serve
# on a loopback port, replay a seeded 20-delta script (peeks and
# commits) over real HTTP, and re-derive every served answer from cold
# engine runs at worker counts 1 and N. Any bound differing bitwise
# from its cold anchor fails the gate. The daemon runs with the full
# operational stack enabled — structured JSON request logs, per-request
# tracing into the retention ring, per-bound provenance — so this gate
# also proves observation never moves a served bound off its cold
# anchor, and that the machine-readable stdout stays pure with logging
# on. A short -served oracle campaign then repeats the contract across
# a configuration family.
servedir=$(mktemp -d)
trap 'rm -rf "$servedir"' EXIT
go run ./cmd/afdx-gen -seed 7 -quiet > "$servedir/net.json"
go run ./cmd/afdx-serve -selfcheck -config "$servedir/net.json" \
	-replay-seed 13 -replay-steps 20 \
	-log "$servedir/serve.log" -logjson -trace-ring 64 > "$servedir/selfcheck.json"
if ! grep -q '"mismatches": 0' "$servedir/selfcheck.json"; then
	echo "check.sh: served bounds diverged from cold anchors:" >&2
	cat "$servedir/selfcheck.json" >&2
	exit 1
fi
if ! grep -q '"msg":"request"' "$servedir/serve.log"; then
	echo "check.sh: served selfcheck produced no structured request log records" >&2
	exit 1
fi
go run ./cmd/afdx-conformance -n 10 -seed 13 -served -quiet

echo "== traced conformance (observability non-interference)"
# Run the same 50-config campaign plain and with the full observability
# stack attached; after stripping the wall-time fields the JSON reports
# must be byte-identical and report zero violations.
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir" "$servedir"' EXIT
go run ./cmd/afdx-conformance -n 50 -seed 7 -json -quiet > "$obsdir/plain.json"
go run ./cmd/afdx-conformance -n 50 -seed 7 -json -quiet \
	-metrics "$obsdir/metrics.json" -tracefile "$obsdir/trace.json" > "$obsdir/traced.json"
grep -vE '"(elapsedSec|configsPerSec)"' "$obsdir/plain.json" > "$obsdir/plain.stable.json"
grep -vE '"(elapsedSec|configsPerSec)"' "$obsdir/traced.json" > "$obsdir/traced.stable.json"
if ! diff -u "$obsdir/plain.stable.json" "$obsdir/traced.stable.json"; then
	echo "check.sh: traced and untraced conformance verdicts differ" >&2
	exit 1
fi
if ! grep -q '"violations": 0' "$obsdir/plain.json"; then
	echo "check.sh: traced-conformance smoke campaign found violations" >&2
	exit 1
fi

echo "== fuzz smoke (5s per target)"
go test -run '^$' -fuzz '^FuzzReadJSON$' -fuzztime 5s ./internal/afdx
go test -run '^$' -fuzz '^FuzzConformanceConfig$' -fuzztime 5s ./internal/conformance

echo "check.sh: all gates passed"
