package afdx_test

import (
	"fmt"

	"afdx"
)

// ExampleCompare reproduces the headline numbers of the paper's sample
// configuration: the Network Calculus and Trajectory bounds for VL v1
// and the combined result.
func ExampleCompare() {
	net := afdx.Figure2Config()
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		panic(err)
	}
	cmp, err := afdx.Compare(pg)
	if err != nil {
		panic(err)
	}
	pc := cmp.PerPath[afdx.PathID{VL: "v1", PathIdx: 0}]
	fmt.Printf("WCNC %.2f us, Trajectory %.2f us, best %.2f us\n",
		pc.NCUs, pc.TrajectoryUs, pc.BestUs)
	// Output:
	// WCNC 293.06 us, Trajectory 248.00 us, best 248.00 us
}

// ExampleAnalyzeNC shows the per-port view of the certification
// analysis, including the backlog bound used to size switch buffers.
func ExampleAnalyzeNC() {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		panic(err)
	}
	res, err := afdx.AnalyzeNC(pg, afdx.DefaultNCOptions())
	if err != nil {
		panic(err)
	}
	port := res.Ports[afdx.PortID{From: "S3", To: "e6"}]
	fmt.Printf("S3->e6: delay %.2f us, buffer %.0f bits\n", port.DelayUs, port.BacklogBits)
	// Output:
	// S3->e6: delay 139.94 us, buffer 13994 bits
}

// ExampleAnalyzeTrajectory shows the grouping option: disabling the
// serialization refinement reproduces the paper's Figure 3 scenario.
func ExampleAnalyzeTrajectory() {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		panic(err)
	}
	grouped, _ := afdx.AnalyzeTrajectory(pg, afdx.DefaultTrajectoryOptions())
	ungrouped, _ := afdx.AnalyzeTrajectory(pg, afdx.TrajectoryOptions{Grouping: false})
	pid := afdx.PathID{VL: "v1", PathIdx: 0}
	fmt.Printf("figure 4: %.0f us, figure 3: %.0f us\n",
		grouped.PathDelays[pid], ungrouped.PathDelays[pid])
	// Output:
	// figure 4: 248 us, figure 3: 288 us
}

// ExampleSimulate drives the discrete-event simulator with pinned
// offsets; a single uncontended frame takes exactly 2*(L+C) = 112 us.
func ExampleSimulate() {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		panic(err)
	}
	cfg := afdx.SimConfig{
		DurationUs: 4000,
		OffsetsUs:  map[string]float64{"v1": 2000, "v2": 2000, "v3": 2000, "v4": 2000, "v5": 0},
	}
	res, err := afdx.Simulate(pg, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("v5: %.0f us\n", res.Paths[afdx.PathID{VL: "v5", PathIdx: 0}].MaxDelayUs)
	// Output:
	// v5: 112 us
}
