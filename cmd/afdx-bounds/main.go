// Command afdx-bounds computes worst-case end-to-end delay bounds for
// every Virtual Link path of an AFDX configuration, using the Network
// Calculus analysis, the Trajectory approach, or both (keeping the best
// bound per path, the paper's combined method).
//
// Usage:
//
//	afdx-bounds -config net.json                 # both methods + best
//	afdx-bounds -config net.json -method nc      # Network Calculus only
//	afdx-bounds -config net.json -no-grouping    # disable serialization
//	afdx-bounds -config net.json -csv > out.csv  # machine-readable
//	afdx-bounds -config net.json -analysis FIFO  # tighter, costlier NC tier
//	afdx-bounds -config net.json -analysis TFA,FIFO  # per-path min of tiers
//
// -analysis selects the Network Calculus tightness/cost tier: TFA
// (cheapest, per-flow separated), WCNC (the paper's default), or FIFO
// (tightest, per-aggregate residual service). A comma-separated list
// runs every listed tier and keeps the per-path minimum — sound,
// because each tier bounds the same worst case. What-if mode (-delta /
// -whatif) accepts a single tier only.
//
// What-if mode re-analyses the configuration under deltas without
// re-running the full analysis: after the base table, each -delta (or
// each line of the -whatif file; '-' reads stdin) is applied to an
// incremental session — only the ports and paths downstream of the
// change are recomputed, and the reprinted bounds are bit-identical to
// a cold run on the mutated configuration:
//
//	afdx-bounds -config net.json -delta 'bag v3 16' -delta 'drop v7'
//	afdx-bounds -config net.json -whatif scenario.txt
//
// Delta commands: 'bag <vl> <ms>', 'smax <vl> <bytes>',
// 'priority <vl> <level>', 'drop <vl>', 'reroute <vl> <node,node,...>
// [<path> ...]', 'add <vl json>'. Deltas compose: each applies on top
// of the previous one's configuration.
//
// Observability (shared across every afdx-* command; see
// internal/obs/cliobs): -metrics writes the engines' counter and
// histogram snapshot as JSON, -tracefile a Chrome-trace-viewer span
// trace, -spantree a human span summary on stderr, and -cpuprofile /
// -memprofile / -trace drive the Go runtime profilers.
//
// Before any analysis the configuration is linted (cmd/afdx-lint's
// analyzers); lint errors abort the run before the engines start.
// -no-lint skips the gate for debugging.
//
// Exit codes, for scripted callers:
//
//	0  success
//	1  analysis failure (an engine rejected the configuration)
//	2  usage error or unreadable/invalid configuration file
//	3  infeasible configuration caught by the lint pre-flight
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"afdx"
	"afdx/internal/obs/cliobs"
	"afdx/internal/report"
)

// Exit codes of the documented contract.
const (
	exitOK       = 0
	exitAnalysis = 1
	exitUsage    = 2
	exitLint     = 3
)

// sess flushes the observability artifacts on every exit path.
var sess *cliobs.Session

// fail prints the error and exits with the given contract code.
func fail(code int, err error) {
	log.Print(err)
	sess.Exit(code)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("afdx-bounds: ")
	var (
		config     = flag.String("config", "", "network configuration JSON (required)")
		method     = flag.String("method", "both", "nc | trajectory | both")
		noGrouping = flag.Bool("no-grouping", false, "disable the grouping (serialization) technique")
		parallelN  = flag.Int("parallel", 0, "analysis worker count (0 = all CPUs, 1 = sequential; bounds are identical either way)")
		relaxed    = flag.Bool("relaxed", false, "relax ARINC 664 contract validation")
		noLint     = flag.Bool("no-lint", false, "skip the lint pre-flight gate")
		csv        = flag.Bool("csv", false, "emit CSV instead of a table")
		backlog    = flag.Bool("backlog", false, "also print per-port backlog bounds (NC)")
		jitter     = flag.Bool("jitter", false, "also print per-path jitter (bound minus idle-network floor)")
		esJitter   = flag.Bool("es-jitter", false, "also print the ARINC 664 end-system output jitter report")
		analysis   = flag.String("analysis", "WCNC", "NC analysis tier(s), comma-separated: TFA | WCNC | FIFO; several tiers keep the per-path minimum (every tier is sound)")
		explain    = flag.String("explain", "", "print the trajectory bound decomposition of one path (e.g. v1/0)")
		whatif     = flag.String("whatif", "", "file of what-if delta commands, one per line ('-' = stdin; blank lines and # comments skipped)")
	)
	var deltaCmds multiFlag
	flag.Var(&deltaCmds, "delta", "what-if delta command (repeatable; e.g. 'bag v1 16', 'drop v5'): applied incrementally after the base analysis")
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()
	if *config == "" {
		flag.Usage()
		os.Exit(exitUsage)
	}
	tiers, err := afdx.ParseNCAnalysisList(*analysis)
	if err != nil {
		log.Print(err)
		os.Exit(exitUsage)
	}
	if len(tiers) > 1 && (len(deltaCmds) > 0 || *whatif != "") {
		log.Printf("-delta/-whatif need a single -analysis tier, got %q", *analysis)
		os.Exit(exitUsage)
	}
	if sess, err = obsFlags.Start(); err != nil {
		fail(exitUsage, err)
	}
	ctx := sess.Context()
	mode := afdx.Strict
	if *relaxed {
		mode = afdx.Relaxed
	}
	net, err := afdx.LoadJSON(*config, mode)
	if err != nil {
		fail(exitUsage, err)
	}
	if !*noLint {
		preflight(net, mode)
	}
	pg, err := afdx.BuildPortGraph(net, mode)
	if err != nil {
		fail(exitUsage, err)
	}

	ncOpts := afdx.DefaultNCOptions()
	trOpts := afdx.DefaultTrajectoryOptions()
	ncOpts.Grouping = !*noGrouping
	trOpts.Grouping = !*noGrouping
	ncOpts.Parallel = *parallelN
	trOpts.Parallel = *parallelN
	ncOpts.Analysis = tiers[0]

	var (
		ncDelays, trDelays map[afdx.PathID]float64
		ncRes              *afdx.NCResult
	)
	if *method == "nc" || *method == "both" {
		// Each selected tier is a sound bound on the same worst case, so
		// the per-path minimum across tiers is itself sound.
		for i, tier := range tiers {
			o := ncOpts
			o.Analysis = tier
			res, err := afdx.AnalyzeNCCtx(ctx, pg, o)
			if err != nil {
				fail(exitAnalysis, err)
			}
			if i == 0 {
				ncRes = res
				ncDelays = res.PathDelays
				continue
			}
			if i == 1 { // stop aliasing the first tier's map before merging
				merged := make(map[afdx.PathID]float64, len(ncDelays))
				for pid, d := range ncDelays {
					merged[pid] = d
				}
				ncDelays = merged
			}
			for pid, d := range res.PathDelays {
				if d < ncDelays[pid] {
					ncDelays[pid] = d
				}
			}
		}
	}
	if *method == "trajectory" || *method == "both" {
		tr, err := afdx.AnalyzeTrajectoryCtx(ctx, pg, trOpts)
		if err != nil {
			fail(exitAnalysis, err)
		}
		trDelays = tr.PathDelays
	}
	if ncDelays == nil && trDelays == nil {
		log.Printf("unknown method %q (want nc, trajectory or both)", *method)
		sess.Exit(exitUsage)
	}

	paths := sortedPaths(net)

	ncLabel := tiers[0].String()
	if len(tiers) > 1 {
		names := make([]string, len(tiers))
		for i, tier := range tiers {
			names[i] = tier.String()
		}
		ncLabel = "min(" + strings.Join(names, ",") + ")"
	}
	headers, rows, err := boundsTable(pg, paths, ncLabel, ncDelays, trDelays, *jitter)
	if err != nil {
		fail(exitAnalysis, err)
	}
	emit := report.Table
	if *csv {
		emit = report.CSV
	}
	if err := emit(os.Stdout, headers, rows); err != nil {
		fail(exitAnalysis, err)
	}

	if len(deltaCmds) > 0 || *whatif != "" {
		runWhatIf(ctx, net, mode, ncOpts, trOpts, deltaCmds, *whatif, *jitter, emit)
	}

	if *explain != "" {
		var vl string
		var idx int
		if n, err := fmt.Sscanf(*explain, "%s", &vl); n != 1 || err != nil {
			log.Printf("bad -explain value %q (want vl/pathIdx)", *explain)
			sess.Exit(exitUsage)
		}
		if i := strings.LastIndex(*explain, "/"); i > 0 {
			vl = (*explain)[:i]
			fmt.Sscanf((*explain)[i+1:], "%d", &idx)
		} else {
			vl = *explain
		}
		pid := afdx.PathID{VL: vl, PathIdx: idx}
		fmt.Println()
		if ncEx, err := afdx.ExplainNC(pg, pid, ncOpts); err == nil {
			if err := ncEx.Render(os.Stdout); err != nil {
				fail(exitAnalysis, err)
			}
			fmt.Println()
		}
		ex, err := afdx.ExplainTrajectory(pg, pid, trOpts)
		if err != nil {
			fail(exitAnalysis, err)
		}
		if err := ex.Render(os.Stdout); err != nil {
			fail(exitAnalysis, err)
		}
	}

	if *esJitter {
		fmt.Println()
		fmt.Println("ARINC 664 end-system output jitter (cap 500 us):")
		jrows := [][]string{}
		for _, r := range net.ESJitterReport() {
			status := "ok"
			if !r.Compliant {
				status = "EXCEEDS CAP"
			}
			jrows = append(jrows, []string{r.EndSystem, report.Int(r.NumVLs), report.Us(r.JitterUs), status})
		}
		if err := emit(os.Stdout, []string{"end system", "VLs", "jitter (us)", "status"}, jrows); err != nil {
			fail(exitAnalysis, err)
		}
	}

	if *backlog && ncRes != nil {
		fmt.Println()
		fmt.Println("Per-port backlog bounds (switch buffer dimensioning):")
		ids := make([]afdx.PortID, 0, len(ncRes.Ports))
		for id := range ncRes.Ports {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i].String() < ids[j].String() })
		brows := make([][]string, 0, len(ids))
		for _, id := range ids {
			p := ncRes.Ports[id]
			brows = append(brows, []string{
				id.String(),
				fmt.Sprintf("%.0f", p.BacklogBits),
				fmt.Sprintf("%.0f", p.BacklogBits/8),
				fmt.Sprintf("%.1f%%", p.Utilization*100),
				report.Us(p.DelayUs),
			})
		}
		if err := emit(os.Stdout, []string{"port", "backlog (bits)", "backlog (bytes)", "utilization", "delay (us)"}, brows); err != nil {
			fail(exitAnalysis, err)
		}
	}
	sess.Exit(exitOK)
}

// multiFlag collects a repeatable string flag in order of appearance.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// sortedPaths returns every path in deterministic (VL, index) order.
func sortedPaths(net *afdx.Network) []afdx.PathID {
	paths := net.AllPaths()
	sort.Slice(paths, func(i, j int) bool {
		if paths[i].VL != paths[j].VL {
			return paths[i].VL < paths[j].VL
		}
		return paths[i].PathIdx < paths[j].PathIdx
	})
	return paths
}

// boundsTable renders the per-path bounds table; either delay map may
// be nil (single-method runs), dropping its columns. ncLabel names the
// NC column after the selected analysis tier(s).
func boundsTable(pg *afdx.PortGraph, paths []afdx.PathID, ncLabel string, ncDelays, trDelays map[afdx.PathID]float64, jitter bool) ([]string, [][]string, error) {
	headers := []string{"path"}
	if ncDelays != nil {
		headers = append(headers, ncLabel+" (us)")
	}
	if trDelays != nil {
		headers = append(headers, "Trajectory (us)")
	}
	if ncDelays != nil && trDelays != nil {
		headers = append(headers, "Best (us)", "benefit")
	}
	if jitter {
		headers = append(headers, "jitter (us)")
	}
	rows := make([][]string, 0, len(paths))
	for _, pid := range paths {
		row := []string{pid.String()}
		best := 0.0
		if ncDelays != nil {
			best = ncDelays[pid]
			row = append(row, report.Us(ncDelays[pid]))
		}
		if trDelays != nil {
			if best == 0 || trDelays[pid] < best {
				best = trDelays[pid]
			}
			row = append(row, report.Us(trDelays[pid]))
		}
		if ncDelays != nil && trDelays != nil {
			row = append(row,
				report.Us(best),
				report.Pct((ncDelays[pid]-trDelays[pid])/ncDelays[pid]*100))
		}
		if jitter {
			floor, err := pg.MinPathDelayUs(pid)
			if err != nil {
				return nil, nil, err
			}
			row = append(row, report.Us(best-floor))
		}
		rows = append(rows, row)
	}
	return headers, rows, nil
}

// runWhatIf drives the incremental what-if loop: -delta commands first
// (in flag order), then the -whatif file's lines, each applied on top
// of the previous configuration with only the affected ports and paths
// re-analysed, and the bounds table reprinted after every delta.
func runWhatIf(ctx context.Context, net *afdx.Network, mode afdx.ValidationMode, ncOpts afdx.NCOptions, trOpts afdx.TrajectoryOptions, cmds []string, file string, jitter bool, emit func(w io.Writer, headers []string, rows [][]string) error) {
	lines := append([]string{}, cmds...)
	if file != "" {
		var data []byte
		var err error
		if file == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(file)
		}
		if err != nil {
			fail(exitUsage, fmt.Errorf("reading what-if input: %w", err))
		}
		for _, ln := range strings.Split(string(data), "\n") {
			ln = strings.TrimSpace(ln)
			if ln == "" || strings.HasPrefix(ln, "#") {
				continue
			}
			lines = append(lines, ln)
		}
	}

	ws, err := afdx.NewIncrementalSession(net, afdx.IncrementalOptions{Mode: mode, NC: ncOpts, Trajectory: trOpts})
	if err != nil {
		fail(exitAnalysis, err)
	}
	// Warm the session's caches with the base configuration so each
	// delta below pays only for its downstream cone.
	if _, err := ws.Analyze(ctx); err != nil {
		fail(exitAnalysis, err)
	}
	for _, ln := range lines {
		d, err := afdx.ParseDelta(ln)
		if err != nil {
			fail(exitUsage, err)
		}
		res, err := afdx.AnalyzeIncremental(ctx, ws, d)
		if err != nil {
			fail(exitAnalysis, fmt.Errorf("what-if %q: %w", d, err))
		}
		fmt.Printf("\nwhat-if: %s\n", d)
		pg := ws.PortGraph()
		headers, rows, err := boundsTable(pg, sortedPaths(pg.Net), ncOpts.Analysis.String(), res.NC.PathDelays, res.Trajectory.PathDelays, jitter)
		if err != nil {
			fail(exitAnalysis, err)
		}
		if err := emit(os.Stdout, headers, rows); err != nil {
			fail(exitAnalysis, err)
		}
	}
}

// preflight lints the configuration and aborts with exitLint when the
// linter finds errors. Warnings go to stderr and do not block the run.
func preflight(net *afdx.Network, mode afdx.ValidationMode) {
	opts := afdx.DefaultLintOptions()
	opts.Mode = mode
	rep := afdx.Lint(net, opts)
	for _, d := range rep.Diagnostics {
		if d.Severity == afdx.SeverityWarning {
			fmt.Fprintf(os.Stderr, "afdx-bounds: lint: %s\n", d)
		}
	}
	if rep.HasErrors() {
		fmt.Fprintln(os.Stderr, "afdx-bounds: infeasible configuration (use -no-lint to bypass):")
		rep.WriteText(os.Stderr)
		sess.Exit(exitLint)
	}
}
