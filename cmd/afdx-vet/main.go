// Command afdx-vet statically enforces the repository's determinism
// contract: it type-checks the Go source tree and reports coded
// findings (DET001..DET006) wherever an engine package iterates a map
// into a floating-point accumulation, reads a non-deterministic source,
// emits unsorted map keys, compares against an inline tolerance
// literal, mutates shared counters per work item inside a parallel
// fan-out, or spins an unbounded loop without polling its context.
//
// Where afdx-lint analyses configuration *files*, afdx-vet analyses the
// *source code* that processes them: same diag rendering, same CI
// formats, one contract.
//
// Usage:
//
//	afdx-vet                       # vet ./... from the module root
//	afdx-vet ./internal/netcalc    # vet specific package patterns
//	afdx-vet -json ./...           # machine-readable findings on stdout
//	afdx-vet -sarif ./... > v.sarif
//	afdx-vet -fix ./...            # apply suggested fixes (DET004)
//	afdx-vet -rules                # list the analyzers and exit
//
// Exit code: 0 when the tree is clean (suppressed findings do not
// gate), 1 when active findings remain, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"afdx/internal/detcheck"
	"afdx/internal/obs/cliobs"
)

var sess *cliobs.Session

func fail(err error) {
	log.Print(err)
	sess.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("afdx-vet: ")
	var (
		asJSON  = flag.Bool("json", false, "write the findings as JSON on stdout (summary goes to stderr)")
		asSARIF = flag.Bool("sarif", false, "write the findings as SARIF 2.1.0 on stdout (summary goes to stderr)")
		fix     = flag.Bool("fix", false, "apply suggested fixes in place, then re-report the remainder")
		rules   = flag.Bool("rules", false, "list the registered analyzers with their codes and exit")
	)
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()
	var err error
	if sess, err = obsFlags.Start(); err != nil {
		fail(err)
	}

	if *rules {
		for _, a := range detcheck.Analyzers() {
			fmt.Printf("%s %-17s %s\n", a.ID, a.Name, firstLine(a.Doc))
		}
		sess.Exit(0)
	}
	if *asJSON && *asSARIF {
		log.Print("-json and -sarif are mutually exclusive")
		sess.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := detcheck.ModuleRoot(".")
	if err != nil {
		fail(err)
	}
	sess.Logger.Info("analysis start", "root", root, "patterns", patterns)
	rep, err := detcheck.Run(root, patterns...)
	if err != nil {
		fail(err)
	}
	if *fix {
		applied, err := rep.ApplyFixes(root)
		if err != nil {
			fail(err)
		}
		if applied > 0 {
			fmt.Fprintf(os.Stderr, "afdx-vet: applied %d suggested fix(es); re-analysing\n", applied)
			rep, err = detcheck.Run(root, patterns...)
			if err != nil {
				fail(err)
			}
		}
	}

	switch {
	case *asJSON:
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
		summarize(os.Stderr, rep)
	case *asSARIF:
		if err := rep.WriteSARIF(os.Stdout); err != nil {
			fail(err)
		}
		summarize(os.Stderr, rep)
	default:
		if err := rep.WriteText(os.Stdout); err != nil {
			fail(err)
		}
	}
	sess.Logger.Info("analysis done",
		"packages", rep.Packages, "active", rep.Active, "suppressed", rep.Suppressed)
	sess.Exit(rep.ExitCode())
}

// summarize writes the one-line verdict to w so that -json/-sarif keep
// stdout pure machine output.
func summarize(w *os.File, rep *detcheck.Report) {
	fmt.Fprintf(w, "afdx-vet: %d package(s), %d active finding(s), %d suppressed\n",
		rep.Packages, rep.Active, rep.Suppressed)
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
