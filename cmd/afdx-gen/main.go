// Command afdx-gen generates a synthetic industrial-scale AFDX
// configuration with the statistics of the paper's Airbus network and
// writes it as JSON.
//
// Usage:
//
//	afdx-gen -seed 1 -out industrial.json
//	afdx-gen -seed 1 -vls 200 -switches 4 -es-per-switch 6 -out small.json
//
// The shared observability flags (-cpuprofile, -memprofile, -trace,
// -metrics, -tracefile, -spantree; see internal/obs/cliobs) are
// accepted for uniformity with the analysis commands; generation
// itself registers no engine metrics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"afdx"
	"afdx/internal/obs/cliobs"
)

// sess flushes the observability artifacts on every exit path.
var sess *cliobs.Session

// fatal prints the error and exits through the observability session.
func fatal(v ...any) {
	log.Print(v...)
	sess.Exit(1)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("afdx-gen: ")
	var (
		seed      = flag.Int64("seed", 1, "generator seed (same seed, same network)")
		out       = flag.String("out", "", "output file (default: stdout)")
		vls       = flag.Int("vls", 0, "override the number of VLs")
		switches  = flag.Int("switches", 0, "override the number of switches")
		esPerSw   = flag.Int("es-per-switch", 0, "override end systems per switch")
		maxUtil   = flag.Float64("max-utilization", 0, "override the admission ceiling (0..1)")
		quiet     = flag.Bool("quiet", false, "do not print the configuration statistics")
		dot       = flag.Bool("dot", false, "emit Graphviz DOT topology instead of JSON")
		redundant = flag.Bool("redundant", false, "mirror into the dual A/B network (ARINC 664 redundancy)")
	)
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()
	var err error
	if sess, err = obsFlags.Start(); err != nil {
		log.Print(err)
		os.Exit(2)
	}

	spec := afdx.DefaultGeneratorSpec(*seed)
	if *vls > 0 {
		spec.NumVLs = *vls
	}
	if *switches > 0 {
		spec.NumSwitches = *switches
	}
	if *esPerSw > 0 {
		spec.ESPerSwitch = *esPerSw
	}
	if *maxUtil > 0 {
		spec.MaxUtilization = *maxUtil
	}
	net, err := afdx.Generate(spec)
	if err != nil {
		fatal(err)
	}
	if *redundant {
		net, err = afdx.Mirror(net)
		if err != nil {
			fatal(err)
		}
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, net.ComputeStats())
		if err := net.ValidateESJitter(); err != nil {
			fmt.Fprintf(os.Stderr, "warning: %v\n", err)
		}
	}
	if *dot {
		if err := net.WriteDOT(os.Stdout); err != nil {
			fatal(err)
		}
		sess.Exit(0)
	}
	if *out == "" {
		if err := net.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		sess.Exit(0)
	}
	if err := net.SaveJSON(*out); err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	sess.Exit(0)
}
