// Command afdx-sim runs the discrete-event AFDX simulator on a
// configuration and reports observed end-to-end delays per VL path,
// optionally against the analytic bounds.
//
// Usage:
//
//	afdx-sim -config net.json -duration-ms 1280 -seed 3
//	afdx-sim -config net.json -compare          # also print both bounds
//	afdx-sim -config net.json -policing -policing-rate 0.5
//
// The configuration is linted before the simulation starts; lint errors
// abort the run (bypass with -no-lint).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"afdx"
	"afdx/internal/obs/cliobs"
	"afdx/internal/report"
	"afdx/internal/stats"
)

// sess flushes the observability artifacts on every exit path.
var sess *cliobs.Session

// fatal prints the error and exits through the observability session.
func fatal(v ...any) {
	log.Print(v...)
	sess.Exit(1)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("afdx-sim: ")
	var (
		config     = flag.String("config", "", "network configuration JSON (required)")
		durationMs = flag.Float64("duration-ms", 1280, "simulated horizon in milliseconds")
		seed       = flag.Int64("seed", 1, "seed for offsets, jitter and frame sizes")
		jitterUs   = flag.Float64("jitter-us", 0, "per-frame emission jitter (enables sporadic sources)")
		randomSz   = flag.Bool("random-sizes", false, "draw frame sizes uniformly in [s_min, s_max]")
		policing   = flag.Bool("policing", false, "enable per-VL ingress policing")
		polRate    = flag.Float64("policing-rate", 1, "policer rate factor (<1 models a misbehaving source)")
		compare    = flag.Bool("compare", false, "also print the analytic bounds per path")
		parallelN  = flag.Int("parallel", 0, "analysis worker count for -compare (0 = all CPUs, 1 = sequential)")
		relaxed    = flag.Bool("relaxed", false, "relax ARINC 664 contract validation")
		noLint     = flag.Bool("no-lint", false, "skip the lint pre-flight gate")
		csv        = flag.Bool("csv", false, "emit CSV instead of a table")
		histogram  = flag.String("histogram", "", "print the delay distribution of one path (e.g. v1/0)")
	)
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()
	if *config == "" {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	if sess, err = obsFlags.Start(); err != nil {
		log.Print(err)
		os.Exit(2)
	}
	ctx := sess.Context()
	mode := afdx.Strict
	if *relaxed {
		mode = afdx.Relaxed
	}
	net, err := afdx.LoadJSON(*config, mode)
	if err != nil {
		fatal(err)
	}
	if !*noLint {
		opts := afdx.DefaultLintOptions()
		opts.Mode = mode
		if rep := afdx.Lint(net, opts); rep.HasErrors() {
			fmt.Fprintln(os.Stderr, "afdx-sim: infeasible configuration (use -no-lint to bypass):")
			rep.WriteText(os.Stderr)
			sess.Exit(3)
		}
	}
	pg, err := afdx.BuildPortGraph(net, mode)
	if err != nil {
		fatal(err)
	}
	cfg := afdx.DefaultSimConfig(*seed)
	cfg.DurationUs = *durationMs * 1000
	cfg.RandomSizes = *randomSz
	cfg.Policing = *policing
	cfg.PolicingRateFactor = *polRate
	cfg.RecordFrames = *histogram != ""
	if *jitterUs > 0 {
		cfg.Model = afdx.PeriodicJitterSources
		cfg.JitterUs = *jitterUs
	}
	res, err := afdx.SimulateCtx(ctx, pg, cfg)
	if err != nil {
		fatal(err)
	}

	var cmp *afdx.Comparison
	if *compare {
		ncOpts := afdx.DefaultNCOptions()
		trOpts := afdx.DefaultTrajectoryOptions()
		ncOpts.Parallel = *parallelN
		trOpts.Parallel = *parallelN
		cmp, err = afdx.CompareWithCtx(ctx, pg, ncOpts, trOpts)
		if err != nil {
			fatal(err)
		}
	}

	paths := net.AllPaths()
	sort.Slice(paths, func(i, j int) bool {
		if paths[i].VL != paths[j].VL {
			return paths[i].VL < paths[j].VL
		}
		return paths[i].PathIdx < paths[j].PathIdx
	})
	headers := []string{"path", "frames", "min (us)", "mean (us)", "max (us)"}
	if cmp != nil {
		headers = append(headers, "WCNC (us)", "Trajectory (us)")
	}
	rows := make([][]string, 0, len(paths))
	for _, pid := range paths {
		st := res.Paths[pid]
		row := []string{
			pid.String(), report.Int(st.Frames),
			report.Us(st.MinDelayUs), report.Us(st.MeanDelayUs()), report.Us(st.MaxDelayUs),
		}
		if cmp != nil {
			pc := cmp.PerPath[pid]
			row = append(row, report.Us(pc.NCUs), report.Us(pc.TrajectoryUs))
		}
		rows = append(rows, row)
	}
	emit := report.Table
	if *csv {
		emit = report.CSV
	}
	if err := emit(os.Stdout, headers, rows); err != nil {
		fatal(err)
	}
	fmt.Printf("emitted %d frames, dropped %d by policing, global max delay %.2f us\n",
		res.FramesEmitted, res.FramesDropped, res.MaxDelayUs())

	if *histogram != "" {
		var vl string
		idx := 0
		if i := strings.LastIndex(*histogram, "/"); i > 0 {
			vl = (*histogram)[:i]
			fmt.Sscanf((*histogram)[i+1:], "%d", &idx)
		} else {
			vl = *histogram
		}
		delays := res.FrameDelays[afdx.PathID{VL: vl, PathIdx: idx}]
		if len(delays) == 0 {
			fatal(fmt.Sprintf("no frames observed on path %s/%d", vl, idx))
		}
		fmt.Printf("\ndelay distribution of %s/%d (%s):\n", vl, idx, stats.Summarize(delays))
		fmt.Print(stats.RenderHistogram(stats.Histogram(delays, 12), 40))
	}
	sess.Exit(0)
}
