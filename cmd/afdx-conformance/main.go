// Command afdx-conformance runs the cross-engine conformance oracle: it
// generates a family of synthetic AFDX configurations, checks the full
// invariant lattice on each (simulated ≤ achievable ≤ analytic bounds,
// combined = per-path minimum, grouping never loosens, contract
// tightening never loosens, parallel runs bit-identical to sequential),
// and shrinks every violation to a minimal reproducing configuration.
//
// Usage:
//
//	afdx-conformance -n 500 -seed 1             # 500 configs, text summary
//	afdx-conformance -n 500 -json > report.json # machine-readable report
//	afdx-conformance -budget 30s -n 100000      # as many as fit the budget
//	afdx-conformance -corpus testdata           # write shrunk repros
//
// With -json, stdout carries exactly one JSON document — the human
// summary moves to stderr so `afdx-conformance -json | jq` works even
// when violations are found. The shared observability flags
// (-metrics, -tracefile, -spantree, -cpuprofile, -memprofile, -trace;
// see internal/obs/cliobs) trace the campaign as a span tree
// (campaign → config:<i> → engine → path/port) and collect every
// engine's counters.
//
// Exit codes, for scripted callers:
//
//	0  every checked configuration satisfied every invariant
//	1  at least one invariant violation
//	2  usage error
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"afdx"
	"afdx/internal/conformance"
	"afdx/internal/obs/cliobs"
)

const (
	exitOK        = 0
	exitViolation = 1
	exitUsage     = 2
)

// sess flushes the observability artifacts on every exit path.
var sess *cliobs.Session

func main() {
	log.SetFlags(0)
	log.SetPrefix("afdx-conformance: ")
	var (
		n         = flag.Int("n", 100, "number of configurations to generate and check")
		seed      = flag.Int64("seed", 1, "campaign seed (same seed, same configuration family)")
		parallelN = flag.Int("parallel", 0, "configurations checked concurrently (0 = all CPUs, 1 = sequential; the report is identical either way)")
		budget    = flag.Duration("budget", 0, "wall-time budget; new configurations stop being scheduled once exceeded (0 = none)")
		corpus    = flag.String("corpus", "", "directory receiving shrunk reproducing configurations (empty = don't write)")
		jsonOut   = flag.Bool("json", false, "emit the full JSON report on stdout")
		quiet     = flag.Bool("quiet", false, "suppress the per-violation lines (summary only)")
		fault     = flag.String("fault", "", "inject an engine fault for oracle self-tests: nc-optimistic | traj-optimistic | tfa-optimistic")
		analysis  = flag.String("analysis", "", "restrict the tier-ordering invariant to these NC analysis tiers (comma-separated: TFA,WCNC,FIFO; empty = full ladder)")
		incr      = flag.Bool("incremental", true, "route the oracle's reference runs through the incremental caches and check the incremental-parity tier")
		served    = flag.Bool("served", false, "also check the served-parity tier: replay a seeded delta script through a live afdx-serve instance and compare against cold runs")
	)
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()
	if *n <= 0 {
		log.Printf("-n must be positive, got %d", *n)
		os.Exit(exitUsage)
	}
	if flag.NArg() > 0 {
		log.Printf("unexpected arguments %v", flag.Args())
		os.Exit(exitUsage)
	}
	var err error
	if sess, err = obsFlags.Start(); err != nil {
		log.Print(err)
		os.Exit(exitUsage)
	}

	opts := conformance.Options{
		N:         *n,
		Seed:      *seed,
		Parallel:  *parallelN,
		Budget:    *budget,
		CorpusDir: *corpus,
	}
	if !*incr || *served {
		o := conformance.NewOracle()
		o.Incremental = *incr
		o.Served = *served
		opts.Oracle = o
	}
	switch *fault {
	case "":
	case "nc-optimistic":
		opts.Oracle = conformance.FaultyOracle(conformance.FaultNCOptimistic)
	case "traj-optimistic":
		opts.Oracle = conformance.FaultyOracle(conformance.FaultTrajectoryOptimistic)
	case "tfa-optimistic":
		opts.Oracle = conformance.FaultyOracle(conformance.FaultTFAOptimistic)
	default:
		log.Printf("unknown -fault %q (want nc-optimistic, traj-optimistic or tfa-optimistic)", *fault)
		sess.Exit(exitUsage)
	}
	if *analysis != "" {
		tiers, err := afdx.ParseNCAnalysisList(*analysis)
		if err != nil {
			log.Print(err)
			sess.Exit(exitUsage)
		}
		if opts.Oracle == nil {
			opts.Oracle = conformance.NewOracle()
		}
		opts.Oracle.Tiers = tiers
	}

	start := time.Now()
	rep, err := conformance.RunCtx(sess.Context(), opts)
	if err != nil {
		log.Print(err)
		sess.Exit(exitUsage)
	}

	// Human-readable output goes to stdout in text mode and to stderr
	// in JSON mode, keeping the -json stdout a single pure JSON
	// document for piped consumers.
	human := os.Stdout
	if *jsonOut {
		human = os.Stderr
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Print(err)
			sess.Exit(exitUsage)
		}
	} else if !*quiet {
		for _, v := range rep.Verdicts {
			for _, viol := range v.Violations {
				fmt.Fprintf(human, "config %d (seed %d, %d VLs): %s\n", v.Index, v.Seed, v.VLs, viol)
			}
			if v.ShrunkFile != "" {
				fmt.Fprintf(human, "config %d: shrunk to %d VL(s): %s\n", v.Index, v.ShrunkVLs, v.ShrunkFile)
			}
		}
	}
	if !*quiet || !*jsonOut {
		fmt.Fprintf(human, "checked %d/%d configuration(s) (%d skipped by budget) in %.1fs (%.1f configs/s): %d violation(s) on %d configuration(s)\n",
			rep.Checked, rep.N, rep.Skipped, time.Since(start).Seconds(), rep.ConfigsPerSec, rep.NumViolations, rep.Violating)
		if invs := rep.FailingInvariants(); len(invs) > 0 {
			fmt.Fprintf(human, "violated invariants: %v\n", invs)
		}
	}
	if !rep.Clean() {
		sess.Exit(exitViolation)
	}
	sess.Exit(exitOK)
}
