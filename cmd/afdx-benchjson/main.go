// Command afdx-benchjson converts `go test -bench` output on stdin into
// a small JSON report, pairing the industrial engine benchmarks'
// Seq/Par variants (parallel speedup), the incremental benchmarks'
// Cold/Incr variants (what-if re-analysis speedup), and the trajectory
// hot-path benchmarks' Cold/Fast variants (reference engine vs the
// flat index-based fast path). Repeated samples of one benchmark
// (`-count`) pair by their fastest run.
//
// Usage:
//
//	go test -bench 'Industrial(Seq|Par)$' -run '^$' . | afdx-benchjson -o BENCH_PR2.json
//	go test -bench ... . | afdx-benchjson -obs -o BENCH_PR4.json
//	go test -bench '(Cold|Incr)$' -count 3 -run '^$' . | afdx-benchjson -o BENCH_PR5.json
//
// -o names the output file ("-", the default, is stdout) and is
// preferred over shell redirection: the file is only written after the
// report assembles, so a failed run cannot truncate a previous report.
//
// -obs additionally runs both analysis engines on the industrial
// configuration twice — plain and with a metrics registry attached —
// and embeds the per-engine counter breakdown plus the measured
// instrumentation overhead (the observability layer's budget is <= 5%).
//
// The report records the runner's CPU budget (GOMAXPROCS) alongside
// each ns/op so speedups quoted from a single-core container are not
// mistaken for the engines' multi-core scaling.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"afdx"
	"afdx/internal/obs/cliobs"
)

// Row is one benchmark result line.
type Row struct {
	Name string  `json:"name"`
	Iter int     `json:"iterations"`
	NsOp float64 `json:"ns_per_op"`
}

// Pair is a Seq/Par benchmark couple with its speedup.
type Pair struct {
	Base       string  `json:"benchmark"`
	SeqNsOp    float64 `json:"seq_ns_per_op"`
	ParNsOp    float64 `json:"par_ns_per_op"`
	Speedup    float64 `json:"speedup"`
	GoMaxProcs int     `json:"gomaxprocs"`
}

// IncrPair is a Cold/Incr benchmark couple: the same workload run
// from scratch vs through the incremental what-if caches, whose
// results are bit-identical by contract, so the speedup is pure
// re-analysis wall time saved.
type IncrPair struct {
	Base     string  `json:"benchmark"`
	ColdNsOp float64 `json:"cold_ns_per_op"`
	IncrNsOp float64 `json:"incr_ns_per_op"`
	Speedup  float64 `json:"speedup"`
}

// FastPair is a Cold/Fast benchmark couple: the same workload run by
// the reference (pre-flattening) trajectory engine vs the flat
// index-based hot path. The two are bit-identical by contract, so the
// speedup is pure hot-loop wall time saved.
type FastPair struct {
	Base       string  `json:"benchmark"`
	ColdNsOp   float64 `json:"cold_ns_per_op"`
	FastNsOp   float64 `json:"fast_ns_per_op"`
	Speedup    float64 `json:"speedup"`
	GoMaxProcs int     `json:"gomaxprocs"`
}

// ServedPair is a Cold/Served benchmark couple: the same what-if
// question answered by a cold CLI-style run (full analysis of the
// mutated configuration) vs a warm afdx-serve session over HTTP
// (wire round-trip included). The served-conformance tier pins both
// bit-identical, so the speedup is the interactive-loop latency the
// daemon saves.
type ServedPair struct {
	Base       string  `json:"benchmark"`
	ColdNsOp   float64 `json:"cold_ns_per_op"`
	ServedNsOp float64 `json:"served_ns_per_op"`
	Speedup    float64 `json:"speedup"`
	GoMaxProcs int     `json:"gomaxprocs"`
}

// ObsPair is an ObsOff/ObsOn benchmark couple: the same served
// workload with the operational-observability layer disabled vs fully
// enabled (request logging, trace retention, provenance). The bounds
// are bit-identical by contract, so the overhead is the layer's whole
// cost; the budget is <= 5%, matching the engine instrumentation bar.
type ObsPair struct {
	Base        string  `json:"benchmark"`
	OffNsOp     float64 `json:"off_ns_per_op"`
	OnNsOp      float64 `json:"on_ns_per_op"`
	OverheadPct float64 `json:"overhead_pct"`
	GoMaxProcs  int     `json:"gomaxprocs"`
}

// TierPair is one NC analysis tier's Cold cost on the industrial
// configuration, priced against the WCNC default tier's Cold run. The
// conformance oracle enforces the cross-tier ordering (TFA >= WCNC >=
// FIFO per path), so cost_vs_wcnc is the pure wall-time side of the
// tightness/cost trade.
type TierPair struct {
	Base       string  `json:"benchmark"`
	Tier       string  `json:"tier"`
	ColdNsOp   float64 `json:"cold_ns_per_op"`
	CostVsWCNC float64 `json:"cost_vs_wcnc"`
	GoMaxProcs int     `json:"gomaxprocs"`
}

// EngineObs is one engine's -obs measurement on the industrial
// configuration: wall time plain vs instrumented, the relative
// overhead, and the full counter breakdown of the instrumented run.
type EngineObs struct {
	Engine string `json:"engine"`
	// PlainSec / InstrumentedSec are best-of-N wall times without and
	// with a metrics registry on the context.
	PlainSec        float64 `json:"plain_sec"`
	InstrumentedSec float64 `json:"instrumented_sec"`
	// OverheadPct is the median over the interleaved rounds of
	// (instrumented/plain - 1) * 100. Noisy around zero on fast
	// engines; the budget is <= 5%.
	OverheadPct float64          `json:"overhead_pct"`
	Counters    map[string]int64 `json:"counters"`
}

// ObsReport is the -obs section of the report.
type ObsReport struct {
	Seed    int64       `json:"seed"`
	Engines []EngineObs `json:"engines"`
}

// Report is the emitted JSON document.
type Report struct {
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	GoVersion  string       `json:"go_version"`
	Rows       []Row        `json:"benchmarks"`
	Pairs      []Pair       `json:"seq_par_pairs,omitempty"`
	IncrPairs  []IncrPair   `json:"cold_incr_pairs,omitempty"`
	FastPairs  []FastPair   `json:"cold_fast_pairs,omitempty"`
	ServedPrs  []ServedPair `json:"cold_served_pairs,omitempty"`
	ObsPairs   []ObsPair    `json:"obs_off_on_pairs,omitempty"`
	TierPairs  []TierPair   `json:"tier_cold_pairs,omitempty"`
	Obs        *ObsReport   `json:"observability,omitempty"`
	Note       string       `json:"note"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("afdx-benchjson: ")
	var (
		out  = flag.String("o", "-", "output file (- = stdout)")
		obsM = flag.Bool("obs", false, "embed per-engine metric breakdowns and the instrumentation overhead (runs the industrial engines)")
		seed = flag.Int64("seed", 1, "industrial configuration seed for -obs")
	)
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()
	var err error
	if sess, err = obsFlags.Start(); err != nil {
		fail(err)
	}
	rows, err := parse(os.Stdin)
	if err != nil {
		fail(err)
	}
	if len(rows) == 0 && !*obsM {
		fail(fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench ...` output)"))
	}
	rep := Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Rows:       rows,
		Pairs:      pair(rows),
		IncrPairs:  pairIncr(rows),
		FastPairs:  pairFast(rows),
		ServedPrs:  pairServed(rows),
		ObsPairs:   pairObs(rows),
		TierPairs:  pairTiers(rows),
		Note: "Seq = -parallel 1, Par = -parallel 0 (all CPUs). The engines' " +
			"bit-reproducibility contract makes both variants compute identical " +
			"bounds; speedup below ~1.5x on a multi-core runner is a regression, " +
			"speedup ~1.0x is expected when gomaxprocs is 1.",
	}
	if *obsM {
		o, err := measureObs(*seed)
		if err != nil {
			fail(err)
		}
		rep.Obs = o
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fail(err)
	}
	sess.Exit(0)
}

var sess *cliobs.Session

// fail matches log.Fatal's exit code while still flushing any
// requested observability artifacts.
func fail(err error) {
	log.Print(err)
	sess.Exit(1)
}

// measureObs times both engines on the industrial configuration, plain
// and instrumented, and collects each instrumented run's counters.
func measureObs(seed int64) (*ObsReport, error) {
	net, err := afdx.Generate(afdx.DefaultGeneratorSpec(seed))
	if err != nil {
		return nil, fmt.Errorf("-obs: generate: %w", err)
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		return nil, fmt.Errorf("-obs: port graph: %w", err)
	}
	rep := &ObsReport{Seed: seed}
	engines := []struct {
		name string
		run  func(reg *afdx.ObsRegistry) error
	}{
		{"netcalc", func(reg *afdx.ObsRegistry) error {
			ctx := afdx.WithObservation(context.Background(), reg, nil)
			_, err := afdx.AnalyzeNCCtx(ctx, pg, afdx.DefaultNCOptions())
			return err
		}},
		{"trajectory", func(reg *afdx.ObsRegistry) error {
			ctx := afdx.WithObservation(context.Background(), reg, nil)
			_, err := afdx.AnalyzeTrajectoryCtx(ctx, pg, afdx.DefaultTrajectoryOptions())
			return err
		}},
	}
	const rounds = 5 // best-of-5, interleaved, damps scheduler noise
	for _, e := range engines {
		eo := EngineObs{Engine: e.name, Counters: map[string]int64{}}
		// Calibrate: fast engines are timed over enough iterations that
		// each sample spans ~1s, so the overhead figure measures
		// instrumentation, not scheduler noise on a hot cache.
		start := time.Now()
		if err := e.run(nil); err != nil {
			return nil, fmt.Errorf("-obs: %s run failed: %w", e.name, err)
		}
		iters := 1
		if d := time.Since(start); d < time.Second && d > 0 {
			iters = int(time.Second/d) + 1
		}
		// Plain and instrumented samples interleave within a round, so
		// each round's ratio compares two adjacent-in-time measurements
		// under the same machine load; the median ratio over the rounds
		// then discards the noise spikes that plague a shared runner.
		// Snapshot collection stays outside the timed region: the
		// overhead figure measures the engine running with a registry
		// attached, not the one-time reporting cost.
		plain, instr := -1.0, -1.0
		ratios := make([]float64, 0, rounds)
		for i := 0; i < rounds; i++ {
			p := timeOnce(iters, func() error { return e.run(nil) })
			q := timeOnce(iters, func() error { return e.run(afdx.NewObsRegistry()) })
			if p < 0 || q < 0 {
				return nil, fmt.Errorf("-obs: %s run failed", e.name)
			}
			ratios = append(ratios, q/p)
			if plain < 0 || p < plain {
				plain = p
			}
			if instr < 0 || q < instr {
				instr = q
			}
		}
		sort.Float64s(ratios)
		reg := afdx.NewObsRegistry()
		if err := e.run(reg); err != nil {
			return nil, fmt.Errorf("-obs: %s run failed: %w", e.name, err)
		}
		for _, c := range reg.Snapshot().Counters {
			eo.Counters[c.Name] = c.Value
		}
		eo.PlainSec, eo.InstrumentedSec = plain, instr
		eo.OverheadPct = (ratios[len(ratios)/2] - 1) * 100
		rep.Engines = append(rep.Engines, eo)
	}
	return rep, nil
}

// timeOnce runs fn iters times and returns the per-call wall time in
// seconds, or -1 when fn fails.
func timeOnce(iters int, fn func() error) float64 {
	start := time.Now()
	for j := 0; j < iters; j++ {
		if err := fn(); err != nil {
			return -1
		}
	}
	return time.Since(start).Seconds() / float64(iters)
}

// parse extracts "BenchmarkName-8  N  12345 ns/op" lines.
func parse(f *os.File) ([]Row, error) {
	var rows []Row
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		i := -1
		for j, f := range fields {
			if f == "ns/op" {
				i = j
				break
			}
		}
		if i < 2 {
			continue
		}
		iter, err := strconv.Atoi(fields[i-2])
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if j := strings.LastIndex(name, "-"); j > 0 {
			name = name[:j] // strip the -GOMAXPROCS suffix
		}
		rows = append(rows, Row{Name: name, Iter: iter, NsOp: ns})
	}
	return rows, sc.Err()
}

// bestByName indexes rows by benchmark name, keeping the minimum
// ns/op when `-count` repeated a benchmark: noise on a shared runner
// is strictly additive, so the fastest sample is the best estimate.
func bestByName(rows []Row) map[string]float64 {
	byName := map[string]float64{}
	for _, r := range rows {
		if prev, ok := byName[r.Name]; !ok || r.NsOp < prev {
			byName[r.Name] = r.NsOp
		}
	}
	return byName
}

// pair matches FooSeq/FooPar rows and computes speedups.
func pair(rows []Row) []Pair {
	byName := bestByName(rows)
	var pairs []Pair
	for name, seq := range byName {
		base, ok := strings.CutSuffix(name, "Seq")
		if !ok {
			continue
		}
		par, ok := byName[base+"Par"]
		if !ok || par == 0 {
			continue
		}
		pairs = append(pairs, Pair{
			Base: base, SeqNsOp: seq, ParNsOp: par,
			Speedup:    seq / par,
			GoMaxProcs: runtime.GOMAXPROCS(0),
		})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Base < pairs[j].Base })
	return pairs
}

// pairFast matches FooCold/FooFast rows and computes the flat hot-path
// speedups over the reference engine.
func pairFast(rows []Row) []FastPair {
	byName := bestByName(rows)
	var pairs []FastPair
	for name, cold := range byName {
		base, ok := strings.CutSuffix(name, "Cold")
		if !ok {
			continue
		}
		fast, ok := byName[base+"Fast"]
		if !ok || fast == 0 {
			continue
		}
		pairs = append(pairs, FastPair{
			Base: base, ColdNsOp: cold, FastNsOp: fast,
			Speedup:    cold / fast,
			GoMaxProcs: runtime.GOMAXPROCS(0),
		})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Base < pairs[j].Base })
	return pairs
}

// pairServed matches FooCold/FooServed rows and computes the warm
// daemon's speedup over a cold CLI-style run.
func pairServed(rows []Row) []ServedPair {
	byName := bestByName(rows)
	var pairs []ServedPair
	for name, cold := range byName {
		base, ok := strings.CutSuffix(name, "Cold")
		if !ok {
			continue
		}
		served, ok := byName[base+"Served"]
		if !ok || served == 0 {
			continue
		}
		pairs = append(pairs, ServedPair{
			Base: base, ColdNsOp: cold, ServedNsOp: served,
			Speedup:    cold / served,
			GoMaxProcs: runtime.GOMAXPROCS(0),
		})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Base < pairs[j].Base })
	return pairs
}

// pairTiers matches FooTier<NAME>Cold rows and prices each NC analysis
// tier against the same base's WCNC tier.
func pairTiers(rows []Row) []TierPair {
	byName := bestByName(rows)
	var pairs []TierPair
	for name, cold := range byName {
		stem, ok := strings.CutSuffix(name, "Cold")
		if !ok {
			continue
		}
		i := strings.LastIndex(stem, "Tier")
		if i < 0 {
			continue
		}
		base, tier := stem[:i], stem[i+len("Tier"):]
		if tier == "" {
			continue
		}
		wcnc, ok := byName[base+"TierWCNCCold"]
		if !ok || wcnc == 0 {
			continue
		}
		pairs = append(pairs, TierPair{
			Base: base, Tier: tier, ColdNsOp: cold,
			CostVsWCNC: cold / wcnc,
			GoMaxProcs: runtime.GOMAXPROCS(0),
		})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Base != pairs[j].Base {
			return pairs[i].Base < pairs[j].Base
		}
		return pairs[i].Tier < pairs[j].Tier
	})
	return pairs
}

// pairObs matches FooObsOff/FooObsOn rows and computes the
// operational-observability overhead of the served stack.
func pairObs(rows []Row) []ObsPair {
	byName := bestByName(rows)
	var pairs []ObsPair
	for name, off := range byName {
		base, ok := strings.CutSuffix(name, "ObsOff")
		if !ok || off == 0 {
			continue
		}
		on, ok := byName[base+"ObsOn"]
		if !ok {
			continue
		}
		pairs = append(pairs, ObsPair{
			Base: base, OffNsOp: off, OnNsOp: on,
			OverheadPct: (on/off - 1) * 100,
			GoMaxProcs:  runtime.GOMAXPROCS(0),
		})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Base < pairs[j].Base })
	return pairs
}

// pairIncr matches FooCold/FooIncr rows and computes the incremental
// re-analysis speedups.
func pairIncr(rows []Row) []IncrPair {
	byName := bestByName(rows)
	var pairs []IncrPair
	for name, cold := range byName {
		base, ok := strings.CutSuffix(name, "Cold")
		if !ok {
			continue
		}
		incr, ok := byName[base+"Incr"]
		if !ok || incr == 0 {
			continue
		}
		pairs = append(pairs, IncrPair{
			Base: base, ColdNsOp: cold, IncrNsOp: incr,
			Speedup: cold / incr,
		})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Base < pairs[j].Base })
	return pairs
}
