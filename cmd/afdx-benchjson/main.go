// Command afdx-benchjson converts `go test -bench` output on stdin into
// a small JSON report on stdout, pairing the industrial engine
// benchmarks' Seq/Par variants and computing the parallel speedup.
//
// Usage:
//
//	go test -bench 'Industrial(Seq|Par)$' -run '^$' . | afdx-benchjson > BENCH_PR2.json
//
// The report records the runner's CPU budget (GOMAXPROCS) alongside
// each ns/op so speedups quoted from a single-core container are not
// mistaken for the engines' multi-core scaling.
package main

import (
	"bufio"
	"encoding/json"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Row is one benchmark result line.
type Row struct {
	Name string  `json:"name"`
	Iter int     `json:"iterations"`
	NsOp float64 `json:"ns_per_op"`
}

// Pair is a Seq/Par benchmark couple with its speedup.
type Pair struct {
	Base       string  `json:"benchmark"`
	SeqNsOp    float64 `json:"seq_ns_per_op"`
	ParNsOp    float64 `json:"par_ns_per_op"`
	Speedup    float64 `json:"speedup"`
	GoMaxProcs int     `json:"gomaxprocs"`
}

// Report is the emitted JSON document.
type Report struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	Rows       []Row  `json:"benchmarks"`
	Pairs      []Pair `json:"seq_par_pairs,omitempty"`
	Note       string `json:"note"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("afdx-benchjson: ")
	rows, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(rows) == 0 {
		log.Fatal("no benchmark lines on stdin (pipe `go test -bench ...` output)")
	}
	rep := Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Rows:       rows,
		Pairs:      pair(rows),
		Note: "Seq = -parallel 1, Par = -parallel 0 (all CPUs). The engines' " +
			"bit-reproducibility contract makes both variants compute identical " +
			"bounds; speedup below ~1.5x on a multi-core runner is a regression, " +
			"speedup ~1.0x is expected when gomaxprocs is 1.",
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

// parse extracts "BenchmarkName-8  N  12345 ns/op" lines.
func parse(f *os.File) ([]Row, error) {
	var rows []Row
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		i := -1
		for j, f := range fields {
			if f == "ns/op" {
				i = j
				break
			}
		}
		if i < 2 {
			continue
		}
		iter, err := strconv.Atoi(fields[i-2])
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if j := strings.LastIndex(name, "-"); j > 0 {
			name = name[:j] // strip the -GOMAXPROCS suffix
		}
		rows = append(rows, Row{Name: name, Iter: iter, NsOp: ns})
	}
	return rows, sc.Err()
}

// pair matches FooSeq/FooPar rows and computes speedups.
func pair(rows []Row) []Pair {
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Name] = r.NsOp
	}
	var pairs []Pair
	for name, seq := range byName {
		base, ok := strings.CutSuffix(name, "Seq")
		if !ok {
			continue
		}
		par, ok := byName[base+"Par"]
		if !ok || par == 0 {
			continue
		}
		pairs = append(pairs, Pair{
			Base: base, SeqNsOp: seq, ParNsOp: par,
			Speedup:    seq / par,
			GoMaxProcs: runtime.GOMAXPROCS(0),
		})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Base < pairs[j].Base })
	return pairs
}
