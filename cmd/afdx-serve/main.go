// Command afdx-serve is the analysis-as-a-service daemon: it holds
// warm incremental what-if sessions behind a stdlib HTTP/JSON API so a
// design-space exploration loop pays the full analysis once and each
// subsequent tweak only for its downstream cone.
//
//	afdx-serve -addr 127.0.0.1:8723
//
// A client uploads a configuration (lint pre-flight gated, exactly as
// afdx-bounds gates a cold run), receives a session ID, and POSTs
// ParseDelta-format delta batches:
//
//	curl -s -d @net.json localhost:8723/v1/sessions          # open
//	curl -s -d '{"deltas":["bag v3 16"]}' \
//	     localhost:8723/v1/sessions/s1/whatif                # peek
//	curl -s -d '{"deltas":["drop v7"]}' \
//	     localhost:8723/v1/sessions/s1/apply                 # commit
//	curl -N localhost:8723/v1/sessions/s1/events             # SSE feed
//
// Every served bound is exactly `==` the bound a cold afdx-bounds run
// computes on the same configuration (the served-conformance tier pins
// this). On startup the daemon prints one JSON readiness line to
// stdout ({"listening": "<host:port>", ...}); all logging goes to
// stderr. SIGINT/SIGTERM drain gracefully: in-flight requests finish,
// new ones get 503, sessions close, then the process exits 0.
//
// -selfcheck runs the served-conformance smoke instead of serving: it
// starts the daemon on a loopback port, replays a seeded delta script
// through HTTP, re-derives every answer from cold engine runs at
// worker counts 1 and N, writes a JSON report to stdout, and exits
// non-zero on any mismatch. check.sh uses this as the serving smoke.
//
// Exit codes: 0 success; 1 serve/selfcheck failure (any served bound
// differing from its cold anchor); 2 usage error or unreadable/invalid
// configuration.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"afdx"
	"afdx/internal/obs/cliobs"
	"afdx/internal/obs/oplog"
	"afdx/internal/serve"
)

const (
	exitOK    = 0
	exitServe = 1
	exitUsage = 2
)

var sess *cliobs.Session

func fail(code int, err error) {
	log.Print(err)
	sess.Exit(code)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("afdx-serve: ")
	var (
		addr         = flag.String("addr", "127.0.0.1:8723", "listen address (use :0 for an ephemeral port; the bound address is printed on stdout)")
		relaxed      = flag.Bool("relaxed", false, "relax ARINC 664 contract validation")
		noLint       = flag.Bool("no-lint", false, "skip the upload lint pre-flight gate")
		parallelN    = flag.Int("parallel", 0, "default engine worker count for new sessions (0 = all CPUs; bounds are identical either way)")
		maxSessions  = flag.Int("max-sessions", 16, "session pool bound (a full pool evicts its LRU idle session; 0 = unbounded)")
		maxBody      = flag.Int64("max-body", 8<<20, "request body byte limit (0 = unlimited)")
		reqTimeout   = flag.Duration("timeout", 2*time.Minute, "per-request timeout, queueing included (0 = unbounded)")
		idleTimeout  = flag.Duration("idle-timeout", 30*time.Minute, "evict sessions idle this long (0 = never)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound after SIGINT/SIGTERM")
		selfcheck    = flag.Bool("selfcheck", false, "run the served-conformance smoke against -config and exit (no daemon)")
		config       = flag.String("config", "", "configuration for -selfcheck (required with it)")
		replaySeed   = flag.Int64("replay-seed", 1, "seed of the -selfcheck delta script")
		replaySteps  = flag.Int("replay-steps", 20, "length of the -selfcheck delta script")
		traceRing    = flag.Int("trace-ring", 256, "retained request traces behind /v1/trace (0 disables per-request tracing)")
		slowThresh   = flag.Duration("slow-threshold", 0, "log requests slower than this at warn level (0 = adaptive p99)")
		sampleIvl    = flag.Duration("sample-interval", 10*time.Second, "runtime health sampling period (heap, GC, goroutines, pool occupancy; 0 disables)")
	)
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()
	var err error
	if sess, err = obsFlags.Start(); err != nil {
		fail(exitUsage, err)
	}
	mode := afdx.Strict
	if *relaxed {
		mode = afdx.Relaxed
	}
	opts := serve.DefaultOptions()
	opts.Mode = mode
	opts.NoLint = *noLint
	opts.Parallel = *parallelN
	opts.MaxSessions = *maxSessions
	opts.MaxBodyBytes = *maxBody
	opts.RequestTimeout = *reqTimeout
	opts.IdleTimeout = *idleTimeout
	opts.Registry = sess.EnsureRegistry()
	opts.Logger = sess.Logger
	opts.TraceRing = oplog.NewRing(*traceRing)
	opts.SlowRequestUs = slowThresh.Microseconds()

	if *selfcheck {
		runSelfcheck(opts, *config, *replaySeed, *replaySteps)
		return
	}
	if flag.NArg() > 0 {
		log.Printf("unexpected arguments: %v", flag.Args())
		flag.Usage()
		sess.Exit(exitUsage)
	}

	srv := serve.New(opts)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(exitUsage, fmt.Errorf("listen: %w", err))
	}
	if *sampleIvl > 0 {
		sampler := oplog.NewRuntimeSampler(opts.Registry)
		sampler.AddGauge("serve.sessions_live", "live what-if sessions in the pool",
			func() int64 { return int64(srv.SessionCount()) })
		defer sampler.Start(*sampleIvl)()
	}
	hs := &http.Server{Handler: srv.Handler(), ErrorLog: log.Default()}
	// The readiness line: scripted callers (and cli_test) poll stdout
	// for it, then hit the printed address. It is the only stdout output
	// of a daemon run.
	fmt.Printf("{\"listening\": %q, \"pid\": %d, \"maxSessions\": %d}\n", ln.Addr().String(), os.Getpid(), *maxSessions)
	log.Printf("serving on %s (mode=%v, lint=%v, pool=%d)", ln.Addr(), mode, !*noLint, *maxSessions)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		fail(exitServe, fmt.Errorf("serve: %w", err))
	case <-ctx.Done():
	}
	stop()
	log.Printf("draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the session pool first: it terminates the SSE hubs, so the
	// streaming handlers return and Shutdown's handler-wait can finish.
	if err := srv.Drain(dctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("stopped")
	sess.Exit(exitOK)
}

// selfcheckReport is the -selfcheck stdout payload.
type selfcheckReport struct {
	Addr       string           `json:"addr"`
	Session    string           `json:"session"`
	Seed       int64            `json:"seed"`
	Steps      int              `json:"steps"`
	Workers    int              `json:"workers"`
	Mismatches int              `json:"mismatches"`
	Details    []serve.Mismatch `json:"details,omitempty"`
}

// runSelfcheck is the served-conformance smoke: a real daemon on a
// loopback port, a seeded script replayed over HTTP, and every answer
// re-derived from cold engine runs at worker counts 1 and N.
func runSelfcheck(opts serve.Options, config string, seed int64, steps int) {
	if config == "" {
		log.Print("-selfcheck requires -config")
		flag.Usage()
		sess.Exit(exitUsage)
	}
	netCfg, err := afdx.LoadJSON(config, opts.Mode)
	if err != nil {
		fail(exitUsage, err)
	}
	opts.IdleTimeout = 0 // the smoke evicts nothing
	srv := serve.New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(exitServe, fmt.Errorf("listen: %w", err))
	}
	hs := &http.Server{Handler: srv.Handler(), ErrorLog: log.Default()}
	go hs.Serve(ln) //nolint:errcheck // torn down below
	baseURL := "http://" + ln.Addr().String()

	script, err := serve.SeededScript(netCfg, seed, steps)
	if err != nil {
		fail(exitServe, err)
	}
	// The smoke replays with provenance on: the record must be
	// observation-only, so requesting it cannot move a bound off its
	// cold anchor.
	script.Provenance = true
	id, err := script.RunHTTP(http.DefaultClient, baseURL, 0)
	if err != nil {
		fail(exitServe, err)
	}
	ctx := sess.Context()
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	rep := selfcheckReport{
		Addr:    ln.Addr().String(),
		Session: id,
		Seed:    seed,
		Steps:   len(script.Steps),
		Workers: workers,
	}
	for _, par := range []int{1, workers} {
		mm, err := script.VerifyCold(ctx, opts.Mode, par)
		if err != nil {
			fail(exitServe, err)
		}
		rep.Details = append(rep.Details, mm...)
	}
	rep.Mismatches = len(rep.Details)

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("drain: %v", err)
	}
	hs.Shutdown(dctx) //nolint:errcheck // smoke teardown

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(exitServe, err)
	}
	fmt.Println(string(out))
	if rep.Mismatches > 0 {
		log.Printf("selfcheck FAILED: %d served bound(s) differ from cold anchors", rep.Mismatches)
		sess.Exit(exitServe)
	}
	log.Printf("selfcheck ok: %d steps bit-identical to cold runs at -parallel 1 and %d", rep.Steps, workers)
	sess.Exit(exitOK)
}
