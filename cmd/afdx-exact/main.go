// Command afdx-exact searches for worst achievable end-to-end delays by
// exploring source emission offsets with the simulator (grid phase plus
// coordinate-descent refinement), and relates them to the analytic
// bounds. Exponential in the number of VLs: intended for small
// configurations such as the paper's Figure 2.
//
// Usage:
//
//	afdx-exact -config sample.json -grid-us 500 -refine 12
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"afdx"
	"afdx/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("afdx-exact: ")
	var (
		config  = flag.String("config", "", "network configuration JSON (required)")
		gridUs  = flag.Float64("grid-us", 0, "grid step in us (default: BAG/8 per VL)")
		refine  = flag.Int("refine", 10, "refinement rounds")
		maxComb = flag.Int("max-combos", 1_000_000, "grid enumeration budget")
		relaxed = flag.Bool("relaxed", false, "relax ARINC 664 contract validation")
	)
	flag.Parse()
	if *config == "" {
		flag.Usage()
		os.Exit(2)
	}
	mode := afdx.Strict
	if *relaxed {
		mode = afdx.Relaxed
	}
	net, err := afdx.LoadJSON(*config, mode)
	if err != nil {
		log.Fatal(err)
	}
	pg, err := afdx.BuildPortGraph(net, mode)
	if err != nil {
		log.Fatal(err)
	}
	opts := afdx.DefaultExactOptions()
	opts.GridUs = *gridUs
	opts.Refine = *refine
	opts.MaxCombos = *maxComb
	res, err := afdx.SearchWorstCase(pg, opts)
	if err != nil {
		log.Fatal(err)
	}
	nc, err := afdx.AnalyzeNC(pg, afdx.DefaultNCOptions())
	if err != nil {
		log.Fatal(err)
	}
	paths := net.AllPaths()
	sort.Slice(paths, func(i, j int) bool { return paths[i].String() < paths[j].String() })
	rows := make([][]string, 0, len(paths))
	for _, pid := range paths {
		rows = append(rows, []string{
			pid.String(),
			report.Us(res.Delays[pid]),
			report.Us(nc.PathDelays[pid]),
			fmt.Sprintf("%.3f", nc.PathDelays[pid]/res.Delays[pid]),
		})
	}
	if err := report.Table(os.Stdout,
		[]string{"path", "achievable (us)", "WCNC bound (us)", "bound/achievable"}, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d simulator evaluations\n", res.Evaluations)
}
