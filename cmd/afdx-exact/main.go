// Command afdx-exact searches for worst achievable end-to-end delays by
// exploring source emission offsets with the simulator (grid phase plus
// coordinate-descent refinement), and relates them to the analytic
// bounds. Exponential in the number of VLs: intended for small
// configurations such as the paper's Figure 2.
//
// Usage:
//
//	afdx-exact -config sample.json -grid-us 500 -refine 12
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"afdx"
	"afdx/internal/obs/cliobs"
	"afdx/internal/report"
)

// sess flushes the observability artifacts on every exit path.
var sess *cliobs.Session

// fatal prints the error and exits through the observability session.
func fatal(v ...any) {
	log.Print(v...)
	sess.Exit(1)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("afdx-exact: ")
	var (
		config  = flag.String("config", "", "network configuration JSON (required)")
		gridUs  = flag.Float64("grid-us", 0, "grid step in us (default: BAG/8 per VL)")
		refine  = flag.Int("refine", 10, "refinement rounds")
		maxComb = flag.Int("max-combos", 1_000_000, "grid enumeration budget")
		relaxed = flag.Bool("relaxed", false, "relax ARINC 664 contract validation")
	)
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()
	if *config == "" {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	if sess, err = obsFlags.Start(); err != nil {
		log.Print(err)
		os.Exit(2)
	}
	ctx := sess.Context()
	mode := afdx.Strict
	if *relaxed {
		mode = afdx.Relaxed
	}
	net, err := afdx.LoadJSON(*config, mode)
	if err != nil {
		fatal(err)
	}
	pg, err := afdx.BuildPortGraph(net, mode)
	if err != nil {
		fatal(err)
	}
	opts := afdx.DefaultExactOptions()
	opts.GridUs = *gridUs
	opts.Refine = *refine
	opts.MaxCombos = *maxComb
	res, err := afdx.SearchWorstCaseCtx(ctx, pg, opts)
	if err != nil {
		fatal(err)
	}
	nc, err := afdx.AnalyzeNCCtx(ctx, pg, afdx.DefaultNCOptions())
	if err != nil {
		fatal(err)
	}
	paths := net.AllPaths()
	sort.Slice(paths, func(i, j int) bool { return paths[i].String() < paths[j].String() })
	rows := make([][]string, 0, len(paths))
	for _, pid := range paths {
		rows = append(rows, []string{
			pid.String(),
			report.Us(res.Delays[pid]),
			report.Us(nc.PathDelays[pid]),
			fmt.Sprintf("%.3f", nc.PathDelays[pid]/res.Delays[pid]),
		})
	}
	if err := report.Table(os.Stdout,
		[]string{"path", "achievable (us)", "WCNC bound (us)", "bound/achievable"}, rows); err != nil {
		fatal(err)
	}
	fmt.Printf("%d simulator evaluations\n", res.Evaluations)
	sess.Exit(0)
}
