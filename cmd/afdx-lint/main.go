// Command afdx-lint statically analyses AFDX configuration files and
// reports coded diagnostics (AFDX001..AFDX013): port stability, routing
// loops, ARINC 664 contract violations, multicast-tree well-formedness,
// end-system jitter budgets, deadline feasibility, and more — every
// infeasibility the delay engines would reject, caught in microseconds
// before an analysis is launched.
//
// Usage:
//
//	afdx-lint -config net.json                 # human-readable report
//	afdx-lint -format json net.json            # machine-readable
//	afdx-lint -format sarif net.json > l.sarif # for CI code scanners
//	afdx-lint -relaxed -headroom 0.8 a.json b.json
//	afdx-lint -rules                           # list analyzers and exit
//
// Exit code: 0 when every file is clean, 1 when the worst finding is a
// warning, 2 when any file has errors (or cannot be read or decoded).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"afdx"
	"afdx/internal/obs/cliobs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("afdx-lint: ")
	var (
		config   = flag.String("config", "", "network configuration JSON (or pass files as arguments)")
		relaxed  = flag.Bool("relaxed", false, "relax ARINC 664 contract validation (sweep values become warnings)")
		format   = flag.String("format", "text", "output format: text | json | sarif")
		headroom = flag.Float64("headroom", 0.95, "port-utilization fraction above which a warning is emitted")
		budget   = flag.Float64("link-budget", 0.75, "link admission budget: AFDX013 warns when a link's contracted rate exceeds this fraction of the link rate")
		rules    = flag.Bool("rules", false, "list the registered analyzers with their codes and exit")
	)
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()
	sess, err := obsFlags.Start()
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	if *rules {
		for _, a := range afdx.LintAnalyzers() {
			fmt.Printf("%s %-15s %s\n", a.Code, a.Name, a.Doc)
		}
		sess.Exit(0)
	}

	files := flag.Args()
	if *config != "" {
		files = append([]string{*config}, files...)
	}
	if len(files) == 0 {
		flag.Usage()
		sess.Exit(2)
	}

	opts := afdx.DefaultLintOptions()
	opts.UtilizationHeadroom = *headroom
	opts.LinkUtilizationWarn = *budget
	if *relaxed {
		opts.Mode = afdx.Relaxed
	}

	worst := 0
	for _, path := range files {
		code, err := lintFile(path, opts, *format, len(files) > 1)
		if err != nil {
			log.Printf("%s: %v", path, err)
			code = 2
		}
		if code > worst {
			worst = code
		}
	}
	sess.Exit(worst)
}

// lintFile lints one configuration file and returns its exit code.
func lintFile(path string, opts afdx.LintOptions, format string, banner bool) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 2, err
	}
	defer f.Close()
	net, err := afdx.DecodeJSON(f)
	if err != nil {
		// Undecodable input is reported under the reserved parse code so
		// scripted consumers see a uniform diagnostic stream.
		return 2, fmt.Errorf("[%s] %v", "AFDX000", err)
	}
	rep := afdx.Lint(net, opts)
	if banner && format == "text" {
		fmt.Printf("== %s\n", path)
	}
	switch format {
	case "text":
		err = rep.WriteText(os.Stdout)
	case "json":
		err = rep.WriteJSON(os.Stdout)
	case "sarif":
		err = rep.WriteSARIF(os.Stdout, path)
	default:
		return 2, fmt.Errorf("unknown format %q (want text, json or sarif)", format)
	}
	if err != nil {
		return 2, err
	}
	return rep.ExitCode(), nil
}
