// Command afdx-experiments regenerates the tables and figures of the
// paper's evaluation section.
//
// Usage:
//
//	afdx-experiments                # run everything, in paper order
//	afdx-experiments -exp table1    # one experiment
//	afdx-experiments -list          # list experiment IDs
//	afdx-experiments -seed 7        # different synthetic configuration
//	afdx-experiments -analysis FIFO # tighter NC tier for the NC columns
//
// Both configurations the experiments analyse (the paper's Figure 2
// sample and the seeded synthetic industrial network) are linted before
// anything runs; lint errors abort with exit code 3 (bypass with
// -no-lint), warnings go to stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"afdx"
	"afdx/internal/experiments"
	"afdx/internal/obs/cliobs"
)

// sess flushes the observability artifacts on every exit path.
var sess *cliobs.Session

func main() {
	log.SetFlags(0)
	log.SetPrefix("afdx-experiments: ")
	var (
		exp       = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		seed      = flag.Int64("seed", 1, "seed of the synthetic industrial configuration")
		parallelN = flag.Int("parallel", 0, "analysis worker count (0 = all CPUs, 1 = sequential; tables are identical either way)")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		noLint    = flag.Bool("no-lint", false, "skip the lint pre-flight gate")
		analysis  = flag.String("analysis", "WCNC", "NC analysis tier for the experiments' NC runs: TFA | WCNC | FIFO (the 'tiers' experiment sweeps the full ladder regardless)")
	)
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()
	tier, err := afdx.ParseNCAnalysis(*analysis)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	if sess, err = obsFlags.Start(); err != nil {
		log.Print(err)
		os.Exit(2)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		sess.Exit(0)
	}
	if !*noLint {
		preflight(*seed)
	}
	cfg := experiments.Config{Seed: *seed, Parallel: *parallelN, Analysis: tier, Ctx: sess.Context()}
	run := func(e experiments.Experiment) {
		fmt.Printf("=== %s: %s ===\n\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, cfg); err != nil {
			log.Printf("%s: %v", e.ID, err)
			sess.Exit(1)
		}
		fmt.Println()
	}
	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		sess.Exit(0)
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		log.Printf("unknown experiment %q (use -list)", *exp)
		sess.Exit(1)
	}
	run(e)
	sess.Exit(0)
}

// preflight lints the two configurations the experiments analyse.
// Errors abort (exit 3); warnings go to stderr so the reproduced
// tables on stdout stay byte-comparable.
func preflight(seed int64) {
	industrial, err := afdx.Generate(afdx.DefaultGeneratorSpec(seed))
	if err != nil {
		log.Printf("generating the industrial configuration: %v", err)
		sess.Exit(1)
	}
	for _, net := range []*afdx.Network{afdx.Figure2Config(), industrial} {
		rep := afdx.Lint(net, afdx.DefaultLintOptions())
		for _, d := range rep.Diagnostics {
			if d.Severity == afdx.SeverityWarning {
				fmt.Fprintf(os.Stderr, "afdx-experiments: lint: [%s] %s\n", net.Name, d)
			}
		}
		if rep.HasErrors() {
			fmt.Fprintf(os.Stderr, "afdx-experiments: %s: infeasible configuration (use -no-lint to bypass):\n", net.Name)
			rep.WriteText(os.Stderr)
			sess.Exit(3)
		}
	}
}
