// Command afdx-experiments regenerates the tables and figures of the
// paper's evaluation section.
//
// Usage:
//
//	afdx-experiments                # run everything, in paper order
//	afdx-experiments -exp table1    # one experiment
//	afdx-experiments -list          # list experiment IDs
//	afdx-experiments -seed 7        # different synthetic configuration
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"afdx/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("afdx-experiments: ")
	var (
		exp  = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		seed = flag.Int64("seed", 1, "seed of the synthetic industrial configuration")
		list = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	run := func(e experiments.Experiment) {
		fmt.Printf("=== %s: %s ===\n\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, *seed); err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Println()
	}
	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		log.Fatalf("unknown experiment %q (use -list)", *exp)
	}
	run(e)
}
