module afdx

go 1.22
