package afdx_test

// End-to-end tests of the command-line tools: each binary is compiled
// once into a temporary directory and driven through its main flag
// combinations against a real configuration file.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"afdx"
)

var (
	cliOnce  sync.Once
	cliDir   string
	cliErr   error
	cliTools = []string{"afdx-gen", "afdx-lint", "afdx-bounds", "afdx-sim", "afdx-experiments", "afdx-exact", "afdx-conformance", "afdx-benchjson", "afdx-vet", "afdx-serve"}
)

// buildCLIs compiles every command once per test binary invocation.
func buildCLIs(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "afdx-cli")
		if cliErr != nil {
			return
		}
		for _, tool := range cliTools {
			cmd := exec.Command("go", "build", "-o", filepath.Join(cliDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				cliErr = err
				cliDir = string(out)
				return
			}
		}
	})
	if cliErr != nil {
		t.Fatalf("building CLIs: %v (%s)", cliErr, cliDir)
	}
	return cliDir
}

// sampleConfig writes the Figure 2 configuration to a temp file.
func sampleConfig(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sample.json")
	if err := afdx.Figure2Config().SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, dir, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

// runCLIStdout runs a tool keeping stdout separate from stderr — for
// machine-readable modes whose purity contract routes human chatter to
// stderr.
func runCLIStdout(t *testing.T, dir, tool string, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s", tool, args, err, stdout.String(), stderr.String())
	}
	return stdout.String()
}

func TestCLIGen(t *testing.T) {
	dir := buildCLIs(t)
	out := runCLI(t, dir, "afdx-gen", "-seed", "3", "-vls", "25", "-switches", "3",
		"-es-per-switch", "2", "-quiet")
	if !strings.Contains(out, `"vls"`) {
		t.Errorf("gen output is not a configuration:\n%s", out)
	}
	dot := runCLI(t, dir, "afdx-gen", "-seed", "3", "-vls", "10", "-switches", "2",
		"-es-per-switch", "2", "-quiet", "-dot")
	if !strings.Contains(dot, "digraph") {
		t.Errorf("expected DOT output:\n%s", dot)
	}
	red := runCLI(t, dir, "afdx-gen", "-seed", "3", "-vls", "10", "-switches", "2",
		"-es-per-switch", "2", "-quiet", "-redundant")
	if !strings.Contains(red, "-redundant") || !strings.Contains(red, `"v0001A"`) {
		t.Errorf("expected mirrored configuration:\n%.400s", red)
	}
}

func TestCLIBounds(t *testing.T) {
	dir := buildCLIs(t)
	cfg := sampleConfig(t)
	out := runCLI(t, dir, "afdx-bounds", "-config", cfg)
	for _, frag := range []string{"v1/0", "293.06", "248.00", "15.38%"} {
		if !strings.Contains(out, frag) {
			t.Errorf("bounds output missing %q:\n%s", frag, out)
		}
	}
	csv := runCLI(t, dir, "afdx-bounds", "-config", cfg, "-csv", "-method", "nc")
	if !strings.Contains(csv, "path,WCNC (us)") {
		t.Errorf("CSV header missing:\n%s", csv)
	}
	extra := runCLI(t, dir, "afdx-bounds", "-config", cfg, "-jitter", "-backlog", "-es-jitter")
	for _, frag := range []string{"jitter (us)", "backlog (bits)", "end system"} {
		if !strings.Contains(extra, frag) {
			t.Errorf("extended output missing %q:\n%s", frag, extra)
		}
	}
}

func TestCLISim(t *testing.T) {
	dir := buildCLIs(t)
	cfg := sampleConfig(t)
	out := runCLI(t, dir, "afdx-sim", "-config", cfg, "-duration-ms", "64", "-compare")
	for _, frag := range []string{"v1/0", "WCNC (us)", "emitted"} {
		if !strings.Contains(out, frag) {
			t.Errorf("sim output missing %q:\n%s", frag, out)
		}
	}
}

func TestCLIExperimentsList(t *testing.T) {
	dir := buildCLIs(t)
	out := runCLI(t, dir, "afdx-experiments", "-list")
	for _, id := range []string{"fig3", "table1", "fig9", "ablation", "priority"} {
		if !strings.Contains(out, id) {
			t.Errorf("experiment list missing %q:\n%s", id, out)
		}
	}
	fig8 := runCLI(t, dir, "afdx-experiments", "-exp", "fig8")
	if !strings.Contains(fig8, "248.00") {
		t.Errorf("fig8 output missing the flat trajectory value:\n%s", fig8)
	}
}

func TestCLIExact(t *testing.T) {
	dir := buildCLIs(t)
	cfg := sampleConfig(t)
	out := runCLI(t, dir, "afdx-exact", "-config", cfg, "-grid-us", "1000", "-refine", "4")
	for _, frag := range []string{"achievable (us)", "WCNC bound (us)", "evaluations"} {
		if !strings.Contains(out, frag) {
			t.Errorf("exact output missing %q:\n%s", frag, out)
		}
	}
}

func TestCLILint(t *testing.T) {
	dir := buildCLIs(t)
	cfg := sampleConfig(t)
	out := runCLI(t, dir, "afdx-lint", "-config", cfg)
	if !strings.Contains(out, "0 error(s), 0 warning(s)") {
		t.Errorf("Figure 2 should lint clean:\n%s", out)
	}
	rules := runCLI(t, dir, "afdx-lint", "-rules")
	for _, code := range []string{"AFDX001", "AFDX007", "AFDX012"} {
		if !strings.Contains(rules, code) {
			t.Errorf("rule listing missing %q:\n%s", code, rules)
		}
	}
	sarif := runCLI(t, dir, "afdx-lint", "-format", "sarif", cfg)
	if !strings.Contains(sarif, `"version": "2.1.0"`) {
		t.Errorf("SARIF output missing version:\n%.400s", sarif)
	}
}

// TestCLILintExitCodes drives the documented severity contract: 2 for
// errors (and undecodable files), 1 for warnings, and the afdx-bounds
// pre-flight's exit 3 on infeasible configurations.
func TestCLILintExitCodes(t *testing.T) {
	dir := buildCLIs(t)
	broken := filepath.Join(t.TempDir(), "broken.json")
	if err := os.WriteFile(broken, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(dir, "afdx-lint"), broken)
	out, err := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); err == nil || code != 2 {
		t.Errorf("lint of an error-ridden config: exit %d, want 2\n%s", code, out)
	}
	unstable := "internal/lint/testdata/unstable_port.json"
	cmd = exec.Command(filepath.Join(dir, "afdx-bounds"), "-config", unstable)
	out, _ = cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 3 {
		t.Errorf("bounds on an unstable config: exit %d, want 3\n%s", code, out)
	}
	if !strings.Contains(string(out), "AFDX001") {
		t.Errorf("pre-flight report missing AFDX001:\n%s", out)
	}
	cmd = exec.Command(filepath.Join(dir, "afdx-bounds"), "-config", unstable, "-no-lint")
	out, _ = cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Errorf("bounds -no-lint on an unstable config: exit %d (engine failure), want 1\n%s", code, out)
	}
}

// TestCLIConformance drives the conformance oracle end to end: a clean
// run exits 0, the JSON report carries deterministic verdicts across
// -parallel values (flag parity with the other binaries), and the
// injected-fault self-test exits 1 with a shrunk reproduction.
func TestCLIConformance(t *testing.T) {
	dir := buildCLIs(t)
	out := runCLI(t, dir, "afdx-conformance", "-n", "6", "-seed", "9")
	if !strings.Contains(out, "0 violation(s)") || !strings.Contains(out, "checked 6/6") {
		t.Errorf("clean campaign summary malformed:\n%s", out)
	}

	seq := runCLIStdout(t, dir, "afdx-conformance", "-n", "6", "-seed", "9", "-parallel", "1", "-json")
	par := runCLIStdout(t, dir, "afdx-conformance", "-n", "6", "-seed", "9", "-parallel", "4", "-json")
	var repSeq, repPar afdx.ConformanceReport
	if err := json.Unmarshal([]byte(seq), &repSeq); err != nil {
		t.Fatalf("JSON report does not parse: %v\n%s", err, seq)
	}
	if err := json.Unmarshal([]byte(par), &repPar); err != nil {
		t.Fatalf("JSON report does not parse: %v\n%s", err, par)
	}
	if !reflect.DeepEqual(repSeq.Verdicts, repPar.Verdicts) {
		t.Errorf("-parallel 1 and -parallel 4 verdicts differ:\n%s\nvs\n%s", seq, par)
	}
	if repSeq.Checked != 6 || !repSeq.Clean() {
		t.Errorf("unexpected JSON report: %+v", repSeq)
	}
}

// TestCLIConformanceExitCodes pins the 0/1/2 contract: 0 clean
// (TestCLIConformance), 1 on invariant violations, 2 on bad flags.
func TestCLIConformanceExitCodes(t *testing.T) {
	dir := buildCLIs(t)
	corpus := t.TempDir()
	cmd := exec.Command(filepath.Join(dir, "afdx-conformance"),
		"-n", "4", "-seed", "1", "-fault", "nc-optimistic", "-quiet", "-corpus", corpus)
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Errorf("faulty engine campaign: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(string(out), "sim-vs-nc") {
		t.Errorf("violation summary does not name the invariant:\n%s", out)
	}
	shrunk, err := filepath.Glob(filepath.Join(corpus, "*.json"))
	if err != nil || len(shrunk) == 0 {
		t.Fatalf("no shrunk reproductions written to -corpus (%v)", err)
	}
	net, err := afdx.LoadJSON(shrunk[0], afdx.Strict)
	if err != nil {
		t.Fatalf("shrunk reproduction does not load: %v", err)
	}
	if n := len(net.VLs); n > 5 {
		t.Errorf("shrunk reproduction has %d VLs, want <= 5", n)
	}

	for _, args := range [][]string{
		{"-n", "0"},
		{"-fault", "bogus"},
		{"-no-such-flag"},
		{"-n", "1", "stray-positional"},
	} {
		cmd := exec.Command(filepath.Join(dir, "afdx-conformance"), args...)
		out, _ := cmd.CombinedOutput()
		if code := cmd.ProcessState.ExitCode(); code != 2 {
			t.Errorf("afdx-conformance %v: exit %d, want 2\n%s", args, code, out)
		}
	}
}

// TestCLIAnalysisTierFlag drives every CLI's -analysis flag: one
// shared parser, so an unknown tier exits 2 with the same message
// everywhere, and afdx-bounds labels its NC column after the tier(s).
func TestCLIAnalysisTierFlag(t *testing.T) {
	dir := buildCLIs(t)
	cfg := sampleConfig(t)

	for _, tc := range [][]string{
		{"afdx-bounds", "-config", cfg, "-analysis", "sfa"},
		{"afdx-bounds", "-config", cfg, "-analysis", ""},
		{"afdx-bounds", "-config", cfg, "-analysis", "TFA,FIFO", "-delta", "drop v1"},
		{"afdx-experiments", "-list", "-analysis", "sfa"},
		{"afdx-conformance", "-n", "1", "-analysis", "sfa"},
	} {
		cmd := exec.Command(filepath.Join(dir, tc[0]), tc[1:]...)
		out, _ := cmd.CombinedOutput()
		if code := cmd.ProcessState.ExitCode(); code != 2 {
			t.Errorf("%v: exit %d, want 2\n%s", tc, code, out)
		}
		if strings.Contains(tc[len(tc)-1], "sfa") && !strings.Contains(string(out), `unknown analysis tier "sfa"`) {
			t.Errorf("%v: missing the shared parser's message:\n%s", tc, out)
		}
	}

	// The NC column is named after the selected tier; on the Figure 2
	// sample the TFA tier is strictly looser than the 293.06 us WCNC
	// bound and the FIFO tier matches it.
	tfa := runCLI(t, dir, "afdx-bounds", "-config", cfg, "-csv", "-method", "nc", "-analysis", "tfa")
	if !strings.Contains(tfa, "path,TFA (us)") || !strings.Contains(tfa, "335.24") {
		t.Errorf("TFA tier output missing header or the looser bound:\n%s", tfa)
	}
	fifo := runCLI(t, dir, "afdx-bounds", "-config", cfg, "-csv", "-method", "nc", "-analysis", "FIFO")
	if !strings.Contains(fifo, "path,FIFO (us)") || !strings.Contains(fifo, "293.06") {
		t.Errorf("FIFO tier output missing header or bound:\n%s", fifo)
	}
	multi := runCLI(t, dir, "afdx-bounds", "-config", cfg, "-csv", "-method", "nc", "-analysis", "TFA,WCNC,FIFO")
	if !strings.Contains(multi, "path,min(TFA,WCNC,FIFO) (us)") || !strings.Contains(multi, "293.06") {
		t.Errorf("multi-tier output missing min header or bound:\n%s", multi)
	}
}

func TestCLIErrorPaths(t *testing.T) {
	dir := buildCLIs(t)
	// Missing -config must exit non-zero — with the documented usage code.
	cmd := exec.Command(filepath.Join(dir, "afdx-bounds"))
	if err := cmd.Run(); err == nil {
		t.Error("afdx-bounds without -config should fail")
	} else if code := cmd.ProcessState.ExitCode(); code != 2 {
		t.Errorf("afdx-bounds without -config: exit %d, want 2", code)
	}
	cmd = exec.Command(filepath.Join(dir, "afdx-experiments"), "-exp", "nope")
	if err := cmd.Run(); err == nil {
		t.Error("unknown experiment should fail")
	}
}

// TestCLIBoundsMetricsAndTrace drives the shared observability flags:
// -metrics must dump a snapshot whose engine counters are nonzero, and
// -tracefile must emit a Chrome-trace JSON array of complete events.
func TestCLIBoundsMetricsAndTrace(t *testing.T) {
	dir := buildCLIs(t)
	cfg := sampleConfig(t)
	td := t.TempDir()
	metrics := filepath.Join(td, "metrics.json")
	tracef := filepath.Join(td, "trace.json")
	runCLI(t, dir, "afdx-bounds", "-config", cfg, "-metrics", metrics, "-tracefile", tracef)

	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("-metrics wrote no file: %v", err)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics dump is not JSON: %v\n%s", err, raw)
	}
	vals := map[string]int64{}
	for _, c := range snap.Counters {
		vals[c.Name] = c.Value
	}
	for _, name := range []string{
		"netcalc.ports_analyzed",
		"netcalc.service_curve_cache_hits",
		"trajectory.busy_period_iterations",
		"trajectory.prefix_cache_hits",
	} {
		if vals[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0 (snapshot: %s)", name, vals[name], raw)
		}
	}

	rawTrace, err := os.ReadFile(tracef)
	if err != nil {
		t.Fatalf("-tracefile wrote no file: %v", err)
	}
	var evs []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	}
	if err := json.Unmarshal(rawTrace, &evs); err != nil {
		t.Fatalf("trace file is not a JSON array: %v\n%.400s", err, rawTrace)
	}
	if len(evs) == 0 {
		t.Fatal("trace file holds no spans")
	}
	names := map[string]bool{}
	for _, e := range evs {
		if e.Ph != "X" {
			t.Errorf("event %q phase %q, want X (complete)", e.Name, e.Ph)
		}
		names[e.Name] = true
	}
	if !names["netcalc"] || !names["trajectory"] {
		t.Errorf("trace misses engine spans, got %v", names)
	}
}

// TestCLIConformanceJSONStdoutPure pins the -json purity contract on
// the violating path: even when the injected fault floods the report
// with violations, stdout carries exactly one JSON document (the human
// summary goes to stderr), so `afdx-conformance -json | jq` works.
func TestCLIConformanceJSONStdoutPure(t *testing.T) {
	dir := buildCLIs(t)
	cmd := exec.Command(filepath.Join(dir, "afdx-conformance"),
		"-n", "3", "-seed", "1", "-fault", "nc-optimistic", "-json")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if code := cmd.ProcessState.ExitCode(); err == nil || code != 1 {
		t.Fatalf("faulty campaign: exit %d (err %v), want 1", code, err)
	}
	var rep afdx.ConformanceReport
	if uerr := json.Unmarshal(stdout.Bytes(), &rep); uerr != nil {
		t.Fatalf("stdout is not pure JSON: %v\nstdout:\n%.600s", uerr, stdout.String())
	}
	if rep.Clean() || rep.NumViolations == 0 {
		t.Errorf("faulty campaign reported no violations: %+v", rep)
	}
	if !strings.Contains(stderr.String(), "violation(s)") {
		t.Errorf("human summary missing from stderr:\n%s", stderr.String())
	}
}

// vetScratchModule lays out a throwaway module named afdx (so the
// detcheck path classification applies) holding one engine package with
// a seeded determinism bug of each requested flavour, plus the tol
// package the DET004 suggested fix resolves against.
func vetScratchModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module afdx\n\ngo 1.22\n",
		"internal/core/tol/tol.go": "// Package tol holds the shared comparison tolerances.\n" +
			"package tol\n\n// EpsRel is the relative comparison tolerance.\nconst EpsRel = 1e-9\n",
		"internal/netcalc/bad.go": `package netcalc

import "afdx/internal/core/tol"

// sumDelays accumulates float map values in randomized iteration order:
// the seeded DET001 violation the CLI gate must catch.
func sumDelays(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}

// closeEnough compares against a raw tolerance literal (DET004, with a
// suggested fix to tol.EpsRel).
func closeEnough(a, b float64) bool { return a <= b+1e-9 }

// withinTol keeps the tol import live so the applied fix type-checks.
func withinTol(x float64) bool { return x < tol.EpsRel }
`,
	}
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestCLIVetRulesAndCleanTree drives afdx-vet against the repository
// itself: the rule listing names every DET code and a vetted engine
// package exits 0.
func TestCLIVetRulesAndCleanTree(t *testing.T) {
	dir := buildCLIs(t)
	rules := runCLI(t, dir, "afdx-vet", "-rules")
	for _, code := range []string{"DET001", "DET002", "DET003", "DET004", "DET005", "DET006"} {
		if !strings.Contains(rules, code) {
			t.Errorf("rule listing missing %q:\n%s", code, rules)
		}
	}
	out := runCLI(t, dir, "afdx-vet", "./internal/minplus", "./internal/core/...")
	if !strings.Contains(out, "0 finding(s)") {
		t.Errorf("vetted packages should be clean:\n%s", out)
	}
}

// TestCLIVetCatchesSeededBug pins the gate's purpose: a deliberately
// planted DET001/DET004 pair in an engine package exits 1 and is named
// in the text report; -json and -sarif keep stdout machine-pure.
func TestCLIVetCatchesSeededBug(t *testing.T) {
	dir := buildCLIs(t)
	scratch := vetScratchModule(t)
	cmd := exec.Command(filepath.Join(dir, "afdx-vet"), "./...")
	cmd.Dir = scratch
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("seeded-bug module: exit %d, want 1\n%s", code, out)
	}
	for _, frag := range []string{"DET001", "DET004", "internal/netcalc/bad.go"} {
		if !strings.Contains(string(out), frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}

	cmd = exec.Command(filepath.Join(dir, "afdx-vet"), "-json", "./...")
	cmd.Dir = scratch
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	_ = cmd.Run()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("-json on seeded bugs: exit %d, want 1\n%s", code, stderr.String())
	}
	var rep struct {
		Findings []struct {
			ID  string `json:"id"`
			Fix *struct {
				Old string `json:"old"`
				New string `json:"new"`
			} `json:"fix,omitempty"`
		} `json:"findings"`
		Active int `json:"active"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\nstdout:\n%.600s", err, stdout.String())
	}
	if rep.Active != 2 {
		t.Errorf("active findings = %d, want 2 (DET001 + DET004)", rep.Active)
	}
	var hasFix bool
	for _, f := range rep.Findings {
		if f.ID == "DET004" && f.Fix != nil && f.Fix.New == "tol.EpsRel" {
			hasFix = true
		}
	}
	if !hasFix {
		t.Errorf("DET004 finding carries no tol.EpsRel suggested fix: %+v", rep.Findings)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("human summary missing from stderr:\n%s", stderr.String())
	}

	cmd = exec.Command(filepath.Join(dir, "afdx-vet"), "-sarif", "./...")
	cmd.Dir = scratch
	stdout.Reset()
	stderr.Reset()
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	_ = cmd.Run()
	var sarif struct {
		Version string `json:"version"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &sarif); err != nil || sarif.Version != "2.1.0" {
		t.Errorf("stdout is not pure SARIF 2.1.0 (err %v):\n%.400s", err, stdout.String())
	}
}

// TestCLIVetFixRewritesTolerance drives -fix end to end: the DET004
// literal is rewritten to tol.EpsRel, the re-analysis still reports the
// untouched DET001, and a second -fix pass is idempotent.
func TestCLIVetFixRewritesTolerance(t *testing.T) {
	dir := buildCLIs(t)
	scratch := vetScratchModule(t)
	cmd := exec.Command(filepath.Join(dir, "afdx-vet"), "-fix", "./...")
	cmd.Dir = scratch
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("-fix run: exit %d, want 1 (DET001 has no auto-fix)\n%s", code, out)
	}
	if !strings.Contains(string(out), "applied 1 suggested fix") {
		t.Errorf("missing fix-application notice:\n%s", out)
	}
	src, err := os.ReadFile(filepath.Join(scratch, "internal/netcalc/bad.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "a <= b+tol.EpsRel") {
		t.Errorf("DET004 literal not rewritten:\n%s", src)
	}
	if strings.Contains(string(out), "DET004") {
		t.Errorf("re-analysis after the fix still reports DET004:\n%s", out)
	}
}

// TestCLIVetUsageErrors pins exit 2 for flag and load failures.
func TestCLIVetUsageErrors(t *testing.T) {
	dir := buildCLIs(t)
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-json", "-sarif", "./..."},
		{"./no/such/package"},
	} {
		cmd := exec.Command(filepath.Join(dir, "afdx-vet"), args...)
		out, _ := cmd.CombinedOutput()
		if code := cmd.ProcessState.ExitCode(); code != 2 {
			t.Errorf("afdx-vet %v: exit %d, want 2\n%s", args, code, out)
		}
	}
}

// startServeDaemon launches afdx-serve on an ephemeral port, consumes
// the stdout readiness line, and returns the running process, the base
// URL, a function yielding the REST of stdout (which the purity
// contract says must stay empty; call it only after Wait — it blocks
// until the pipe drains), and the stderr buffer. The caller signals
// and Waits; a watchdog kills a hung daemon after 30s.
func startServeDaemon(t *testing.T, dir string, args ...string) (*exec.Cmd, string, func() string, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, "afdx-serve"), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	var restOut, stderr bytes.Buffer
	cmd.Stderr = &stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	watchdog := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	t.Cleanup(func() {
		watchdog.Stop()
		cmd.Process.Kill()
		cmd.Wait()
	})
	rd := bufio.NewReader(pipe)
	line, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("no readiness line on stdout: %v\nstderr:\n%s", err, stderr.String())
	}
	var ready struct {
		Listening   string `json:"listening"`
		PID         int    `json:"pid"`
		MaxSessions int    `json:"maxSessions"`
	}
	if err := json.Unmarshal([]byte(line), &ready); err != nil {
		t.Fatalf("readiness line is not JSON: %v\n%s", err, line)
	}
	if ready.Listening == "" || ready.PID != cmd.Process.Pid {
		t.Fatalf("malformed readiness line: %s", line)
	}
	copied := make(chan struct{})
	go func() {
		defer close(copied)
		io.Copy(&restOut, rd) //nolint:errcheck // EOF at process exit
	}()
	rest := func() string {
		<-copied
		return restOut.String()
	}
	return cmd, "http://" + ready.Listening, rest, &stderr
}

// TestCLIServeDaemon drives the daemon end to end: ephemeral-port
// startup with a JSON readiness line, a real upload + what-if round
// trip over HTTP, a graceful SIGTERM drain exiting 0, and the stdout
// purity contract (the readiness line is the only stdout output).
func TestCLIServeDaemon(t *testing.T) {
	dir := buildCLIs(t)
	cmd, base, restOut, stderr := startServeDaemon(t, dir)

	cfg, err := json.Marshal(afdx.Figure2Config())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(cfg))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: HTTP %d, want 201\n%s", resp.StatusCode, body)
	}
	var opened struct {
		Session string `json:"session"`
		Paths   []struct {
			Path   string  `json:"path"`
			BestUs float64 `json:"bestUs"`
		} `json:"paths"`
	}
	if err := json.Unmarshal(body, &opened); err != nil {
		t.Fatalf("upload response is not JSON: %v\n%s", err, body)
	}
	if opened.Session == "" || len(opened.Paths) == 0 {
		t.Fatalf("upload response missing session or bounds:\n%s", body)
	}

	// A what-if on the live session answers with re-analysed bounds.
	resp, err = http.Post(base+"/v1/sessions/"+opened.Session+"/whatif",
		"application/json", strings.NewReader(`{"deltas": ["bag v1 8"]}`))
	if err != nil {
		t.Fatalf("whatif: %v", err)
	}
	wbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("whatif: HTTP %d, want 200\n%s", resp.StatusCode, wbody)
	}
	if !strings.Contains(string(wbody), `"paths"`) {
		t.Fatalf("whatif response missing bounds:\n%s", wbody)
	}

	// Errors arrive as diag-style JSON, not HTML.
	resp, err = http.Post(base+"/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	ebody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(ebody), "SRV001") {
		t.Errorf("malformed upload: HTTP %d body %s, want 400 with SRV001", resp.StatusCode, ebody)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v (want 0)\nstderr:\n%s", err, stderr.String())
	}
	if got := restOut(); got != "" {
		t.Errorf("stdout carried more than the readiness line:\n%s", got)
	}
	for _, frag := range []string{"serving on", "draining", "stopped"} {
		if !strings.Contains(stderr.String(), frag) {
			t.Errorf("stderr log missing %q:\n%s", frag, stderr.String())
		}
	}
}

// TestCLIServeSelfcheck runs the served-conformance smoke the way
// check.sh does: a seeded script against a loopback daemon, every
// answer re-derived cold, zero mismatches, pure-JSON stdout — with
// structured logging and trace retention fully on, so the purity
// contract is proven to survive the observability layer (-log can
// only name stderr or a file, never stdout).
func TestCLIServeSelfcheck(t *testing.T) {
	dir := buildCLIs(t)
	cfg := sampleConfig(t)
	out := runCLIStdout(t, dir, "afdx-serve", "-selfcheck", "-config", cfg,
		"-replay-seed", "5", "-replay-steps", "6",
		"-log", "stderr", "-logjson", "-trace-ring", "64")
	var rep struct {
		Session    string `json:"session"`
		Steps      int    `json:"steps"`
		Workers    int    `json:"workers"`
		Mismatches int    `json:"mismatches"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("selfcheck stdout is not pure JSON: %v\n%s", err, out)
	}
	if rep.Mismatches != 0 {
		t.Errorf("selfcheck found %d mismatches:\n%s", rep.Mismatches, out)
	}
	if rep.Steps == 0 || rep.Session == "" || rep.Workers < 2 {
		t.Errorf("malformed selfcheck report: %+v", rep)
	}
}

// TestCLILogStdoutRefused pins the -log sink contract across the CLI
// family: stdout is reserved for machine-readable output, so naming it
// as the log destination is a usage error before any work happens.
func TestCLILogStdoutRefused(t *testing.T) {
	dir := buildCLIs(t)
	for _, tool := range []string{"afdx-serve", "afdx-vet", "afdx-lint"} {
		for _, dest := range []string{"stdout", "-"} {
			cmd := exec.Command(filepath.Join(dir, tool), "-log", dest)
			out, _ := cmd.CombinedOutput()
			if code := cmd.ProcessState.ExitCode(); code != 2 {
				t.Errorf("%s -log %s: exit %d, want 2\n%s", tool, dest, code, out)
			}
			if !strings.Contains(string(out), "stdout is reserved") {
				t.Errorf("%s -log %s: missing refusal message:\n%s", tool, dest, out)
			}
		}
	}
}

// TestCLIServeUsageErrors pins exit 2 for flag and configuration
// failures, before any socket is opened.
func TestCLIServeUsageErrors(t *testing.T) {
	dir := buildCLIs(t)
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"stray-positional"},
		{"-selfcheck"},
		{"-selfcheck", "-config", "/no/such/file.json"},
		{"-log", "stdout"},
	} {
		cmd := exec.Command(filepath.Join(dir, "afdx-serve"), args...)
		out, _ := cmd.CombinedOutput()
		if code := cmd.ProcessState.ExitCode(); code != 2 {
			t.Errorf("afdx-serve %v: exit %d, want 2\n%s", args, code, out)
		}
	}
}

// TestCLIBenchJSON checks the report assembler: Seq/Par rows pair into
// a speedup and -o writes the document to the named file.
func TestCLIBenchJSON(t *testing.T) {
	dir := buildCLIs(t)
	out := filepath.Join(t.TempDir(), "bench.json")
	cmd := exec.Command(filepath.Join(dir, "afdx-benchjson"), "-o", out)
	cmd.Stdin = strings.NewReader(
		"BenchmarkIndustrialNCSeq-8   5  200000000 ns/op\n" +
			"BenchmarkIndustrialNCPar-8  10  100000000 ns/op\n")
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("afdx-benchjson: %v\n%s", err, b)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("-o wrote no file: %v", err)
	}
	var rep struct {
		Pairs []struct {
			Base    string  `json:"benchmark"`
			Speedup float64 `json:"speedup"`
		} `json:"seq_par_pairs"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, raw)
	}
	if len(rep.Pairs) != 1 || rep.Pairs[0].Base != "BenchmarkIndustrialNC" || rep.Pairs[0].Speedup != 2 {
		t.Errorf("pairs = %+v, want one BenchmarkIndustrialNC pair with speedup 2", rep.Pairs)
	}
}
