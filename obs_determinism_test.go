package afdx_test

// Observability non-interference tests: attaching a metrics registry
// and/or a span tracer must not change a single bit of either engine's
// results, and the Deterministic subset of the metric snapshot must be
// identical across worker counts and with tracing on vs. off. This is
// the acceptance contract of the observability layer — it observes the
// computation, it never participates in it.

import (
	"context"
	"reflect"
	"testing"

	"afdx"
)

// TestObservationBitIdenticalAndSnapshotsStable runs both engines on
// the paper's sample configuration under every combination of worker
// count and tracing, demanding (a) bit-identical bounds against the
// unobserved reference and (b) deeply equal Deterministic snapshots.
func TestObservationBitIdenticalAndSnapshotsStable(t *testing.T) {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	ncOpts := afdx.DefaultNCOptions()
	trOpts := afdx.DefaultTrajectoryOptions()
	ncOpts.Parallel = 1
	trOpts.Parallel = 1
	ncRef, err := afdx.AnalyzeNC(pg, ncOpts)
	if err != nil {
		t.Fatal(err)
	}
	trRef, err := afdx.AnalyzeTrajectory(pg, trOpts)
	if err != nil {
		t.Fatal(err)
	}

	var baseline *afdx.ObsSnapshot
	for _, workers := range []int{1, 2, 8} {
		for _, traced := range []bool{false, true} {
			reg := afdx.NewObsRegistry()
			var tr *afdx.ObsTracer
			if traced {
				tr = afdx.NewObsTracer()
			}
			ctx := afdx.WithObservation(context.Background(), reg, tr)
			ncOpts.Parallel = workers
			trOpts.Parallel = workers
			nc, err := afdx.AnalyzeNCCtx(ctx, pg, ncOpts)
			if err != nil {
				t.Fatal(err)
			}
			sameNCResults(t, "observed NC", ncRef, nc)
			traj, err := afdx.AnalyzeTrajectoryCtx(ctx, pg, trOpts)
			if err != nil {
				t.Fatal(err)
			}
			sameTrajectoryResults(t, "observed trajectory", trRef, traj)

			snap := reg.Snapshot().Deterministic()
			if len(snap.Counters) == 0 {
				t.Fatal("instrumented run registered no deterministic counters")
			}
			if baseline == nil {
				baseline = snap
				continue
			}
			if !reflect.DeepEqual(baseline, snap) {
				t.Errorf("Deterministic snapshot differs at workers=%d traced=%v:\nbase: %+v\ngot:  %+v",
					workers, traced, baseline, snap)
			}
		}
	}
}

// TestObservedSpanShapeStableAcrossWorkers checks the span *set* of an
// engine run — the multiset of completed span label paths — is
// identical at every worker count: which spans exist depends on the
// work performed, never on how the pool schedules it.
func TestObservedSpanShapeStableAcrossWorkers(t *testing.T) {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	shape := func(workers int) []string {
		tr := afdx.NewObsTracer()
		ctx := afdx.WithObservation(context.Background(), nil, tr)
		ncOpts := afdx.DefaultNCOptions()
		ncOpts.Parallel = workers
		if _, err := afdx.AnalyzeNCCtx(ctx, pg, ncOpts); err != nil {
			t.Fatal(err)
		}
		trOpts := afdx.DefaultTrajectoryOptions()
		trOpts.Parallel = workers
		if _, err := afdx.AnalyzeTrajectoryCtx(ctx, pg, trOpts); err != nil {
			t.Fatal(err)
		}
		return tr.Shape()
	}
	seq := shape(1)
	if len(seq) == 0 {
		t.Fatal("traced run produced no spans")
	}
	for _, workers := range []int{2, 8} {
		if par := shape(workers); !reflect.DeepEqual(seq, par) {
			t.Errorf("span shape differs at %d workers:\nseq: %v\ngot: %v", workers, seq, par)
		}
	}
}
