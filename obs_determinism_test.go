package afdx_test

// Observability non-interference tests: attaching a metrics registry
// and/or a span tracer must not change a single bit of either engine's
// results, and the Deterministic subset of the metric snapshot must be
// identical across worker counts and with tracing on vs. off. This is
// the acceptance contract of the observability layer — it observes the
// computation, it never participates in it.

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"afdx"
	"afdx/internal/configgen"
	"afdx/internal/obs"
	"afdx/internal/obs/oplog"
	"afdx/internal/serve"
)

// TestObservationBitIdenticalAndSnapshotsStable runs both engines on
// the paper's sample configuration under every combination of worker
// count and tracing, demanding (a) bit-identical bounds against the
// unobserved reference and (b) deeply equal Deterministic snapshots.
func TestObservationBitIdenticalAndSnapshotsStable(t *testing.T) {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	ncOpts := afdx.DefaultNCOptions()
	trOpts := afdx.DefaultTrajectoryOptions()
	ncOpts.Parallel = 1
	trOpts.Parallel = 1
	ncRef, err := afdx.AnalyzeNC(pg, ncOpts)
	if err != nil {
		t.Fatal(err)
	}
	trRef, err := afdx.AnalyzeTrajectory(pg, trOpts)
	if err != nil {
		t.Fatal(err)
	}

	var baseline *afdx.ObsSnapshot
	for _, workers := range []int{1, 2, 8} {
		for _, traced := range []bool{false, true} {
			reg := afdx.NewObsRegistry()
			var tr *afdx.ObsTracer
			if traced {
				tr = afdx.NewObsTracer()
			}
			ctx := afdx.WithObservation(context.Background(), reg, tr)
			ncOpts.Parallel = workers
			trOpts.Parallel = workers
			nc, err := afdx.AnalyzeNCCtx(ctx, pg, ncOpts)
			if err != nil {
				t.Fatal(err)
			}
			sameNCResults(t, "observed NC", ncRef, nc)
			traj, err := afdx.AnalyzeTrajectoryCtx(ctx, pg, trOpts)
			if err != nil {
				t.Fatal(err)
			}
			sameTrajectoryResults(t, "observed trajectory", trRef, traj)

			snap := reg.Snapshot().Deterministic()
			if len(snap.Counters) == 0 {
				t.Fatal("instrumented run registered no deterministic counters")
			}
			if baseline == nil {
				baseline = snap
				continue
			}
			if !reflect.DeepEqual(baseline, snap) {
				t.Errorf("Deterministic snapshot differs at workers=%d traced=%v:\nbase: %+v\ngot:  %+v",
					workers, traced, baseline, snap)
			}
		}
	}
}

// TestServedObservabilityNonInterference extends the non-interference
// contract to the operational layer: a served what-if script answers
// bit-identical bounds and accumulates a deeply equal Deterministic
// snapshot whether the observability stack (structured JSON logging,
// per-request tracing with ring retention, slow-request detection, the
// runtime sampler, per-bound provenance) is fully enabled or fully
// off, at engine worker counts 1 and 4 — and the fully observed
// script still passes the served-conformance cold replay.
func TestServedObservabilityNonInterference(t *testing.T) {
	spec := configgen.DefaultSpec(7)
	spec.NumSwitches = 3
	spec.ESPerSwitch = 3
	spec.NumVLs = 16
	net, err := configgen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int, obsOn bool) (*serve.Script, *obs.Snapshot) {
		t.Helper()
		reg := obs.NewRegistry()
		opts := serve.Options{
			Mode:           afdx.Strict,
			MaxSessions:    8,
			RequestTimeout: time.Minute,
			Registry:       reg,
		}
		if obsOn {
			opts.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
			opts.TraceRing = oplog.NewRing(64)
			opts.SlowRequestUs = 1 // every request takes the slow-log path
		}
		s := serve.New(opts)
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Drain(ctx); err != nil {
				t.Errorf("drain: %v", err)
			}
			ts.Close()
		}()
		if obsOn {
			sampler := oplog.NewRuntimeSampler(reg)
			sampler.AddGauge("serve.sessions_live", "live sessions",
				func() int64 { return int64(s.SessionCount()) })
			defer sampler.Start(time.Millisecond)()
		}
		script, err := serve.SeededScript(net, 11, 12)
		if err != nil {
			t.Fatal(err)
		}
		script.Provenance = obsOn
		if _, err := script.RunHTTP(ts.Client(), ts.URL, workers); err != nil {
			t.Fatal(err)
		}
		return script, reg.Snapshot().Deterministic()
	}

	for _, workers := range []int{1, 4} {
		off, offSnap := run(workers, false)
		on, onSnap := run(workers, true)

		if !reflect.DeepEqual(off.Base.Paths, on.Base.Paths) {
			t.Errorf("workers=%d: base bounds differ with observability on", workers)
		}
		for i := range off.Steps {
			a, b := off.Steps[i].Response, on.Steps[i].Response
			if !reflect.DeepEqual(a.Paths, b.Paths) {
				t.Errorf("workers=%d step %d %v: bounds differ with observability on",
					workers, i, off.Steps[i].Deltas)
			}
			if a.Seq != b.Seq || a.Committed != b.Committed {
				t.Errorf("workers=%d step %d: round bookkeeping differs (%d/%v vs %d/%v)",
					workers, i, a.Seq, a.Committed, b.Seq, b.Committed)
			}
			if b.Provenance == nil {
				t.Errorf("workers=%d step %d: provenance missing on the observed run", workers, i)
			}
		}
		if len(offSnap.Counters) == 0 {
			t.Fatal("served run registered no deterministic counters")
		}
		if !reflect.DeepEqual(offSnap, onSnap) {
			t.Errorf("workers=%d: Deterministic snapshot differs with observability on:\noff: %+v\non:  %+v",
				workers, offSnap, onSnap)
		}
		// The fully observed script must still verify against cold
		// anchors — observation cannot move a bound off its anchor.
		for _, par := range []int{1, 4} {
			mm, err := on.VerifyCold(context.Background(), afdx.Strict, par)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range mm {
				t.Errorf("workers=%d cold par=%d: %s", workers, par, m)
			}
		}
	}
}

// TestObservedSpanShapeStableAcrossWorkers checks the span *set* of an
// engine run — the multiset of completed span label paths — is
// identical at every worker count: which spans exist depends on the
// work performed, never on how the pool schedules it.
func TestObservedSpanShapeStableAcrossWorkers(t *testing.T) {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	shape := func(workers int) []string {
		tr := afdx.NewObsTracer()
		ctx := afdx.WithObservation(context.Background(), nil, tr)
		ncOpts := afdx.DefaultNCOptions()
		ncOpts.Parallel = workers
		if _, err := afdx.AnalyzeNCCtx(ctx, pg, ncOpts); err != nil {
			t.Fatal(err)
		}
		trOpts := afdx.DefaultTrajectoryOptions()
		trOpts.Parallel = workers
		if _, err := afdx.AnalyzeTrajectoryCtx(ctx, pg, trOpts); err != nil {
			t.Fatal(err)
		}
		return tr.Shape()
	}
	seq := shape(1)
	if len(seq) == 0 {
		t.Fatal("traced run produced no spans")
	}
	for _, workers := range []int{2, 8} {
		if par := shape(workers); !reflect.DeepEqual(seq, par) {
			t.Errorf("span shape differs at %d workers:\nseq: %v\ngot: %v", workers, seq, par)
		}
	}
}
