package diag

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{Info, Warning, Error} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got Severity
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("round trip of %v gave %v", s, got)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"nonsense"`), &s); err == nil {
		t.Error("expected error for unknown severity")
	}
}

func TestSortAndCount(t *testing.T) {
	ds := []Diagnostic{
		{Code: CodeOrphan, Severity: Warning, Message: "b"},
		{Code: CodeStability, Severity: Error, Message: "a", Loc: Location{Link: "x->y"}},
		{Code: CodeGrouping, Severity: Info, Message: "c"},
		{Code: CodeBAG, Severity: Error, Message: "d", Loc: Location{VL: "v1"}},
	}
	Sort(ds)
	if ds[0].Code != CodeStability || ds[1].Code != CodeBAG {
		t.Errorf("errors should sort first by code: %v", ds)
	}
	if ds[3].Severity != Info {
		t.Errorf("info should sort last: %v", ds)
	}
	e, w, i := Count(ds)
	if e != 2 || w != 1 || i != 1 {
		t.Errorf("Count = %d/%d/%d, want 2/1/1", e, w, i)
	}
	if !HasErrors(ds) {
		t.Error("HasErrors should be true")
	}
	if d, ok := FirstError(ds); !ok || d.Code != CodeStability {
		t.Errorf("FirstError = %v, %v", d, ok)
	}
	if got := Filter(ds, CodeBAG); len(got) != 1 || got[0].Message != "d" {
		t.Errorf("Filter = %v", got)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := New(CodeStability, Error, Location{Link: "e1->S1"}, "shed load",
		"port %s unstable", "e1->S1")
	s := d.String()
	for _, frag := range []string{"AFDX001", "error", "link=e1->S1", "unstable"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	if Location.IsZero(Location{}) != true {
		t.Error("zero location should report IsZero")
	}
}
