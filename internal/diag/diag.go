// Package diag defines the structured diagnostic currency shared by the
// AFDX configuration model (internal/afdx), the static-analysis engine
// (internal/lint), and the delay-analysis engines: a stable
// machine-readable code, a severity, a location inside the network, a
// human-readable message, and an actionable suggestion.
//
// The package sits below both internal/afdx and internal/lint so that
// the model's own validation and the lint analyzers can emit through one
// vocabulary without an import cycle. Codes are stable across releases:
// scripted consumers (CI gates, SARIF viewers) key on them.
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Severity grades a diagnostic. Error marks a configuration the delay
// analyses reject or that violates the ARINC 664 contract outright;
// Warning marks a condition that is analysable but suspicious or
// non-compliant with an advisory rule; Info is a neutral observation.
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON encodes the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a lower-case severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch strings.Trim(string(b), `"`) {
	case "error":
		*s = Error
	case "warning":
		*s = Warning
	case "info":
		*s = Info
	default:
		return fmt.Errorf("diag: unknown severity %s", b)
	}
	return nil
}

// Code is a stable diagnostic identifier of the form AFDX###.
type Code string

// The diagnostic codes of the AFDX static analyzers. One code per
// registered analyzer (internal/lint asserts uniqueness); AFDX000 is
// reserved for input that cannot be decoded at all.
const (
	// CodeParse marks input that could not be decoded into a Network.
	CodeParse Code = "AFDX000"
	// CodeStability marks an output port whose aggregate long-term rate
	// exceeds (Error) or approaches (Warning) the link rate.
	CodeStability Code = "AFDX001"
	// CodeRouting marks malformed or looping VL routing: short paths,
	// wrong endpoints, interior non-switches, repeated nodes, and cyclic
	// port dependencies (non-feed-forward configurations).
	CodeRouting Code = "AFDX002"
	// CodeVLIdentity marks missing, empty, or duplicate VL identifiers.
	CodeVLIdentity Code = "AFDX003"
	// CodeBAG marks Bandwidth Allocation Gaps outside the ARINC 664 set
	// (powers of two in [1,128] ms) or non-positive.
	CodeBAG Code = "AFDX004"
	// CodeFrameSize marks frame-size contract violations: outside the
	// Ethernet bounds [64,1518] B, non-positive, or s_min > s_max.
	CodeFrameSize Code = "AFDX005"
	// CodeMulticastTree marks multicast VLs whose paths do not form a
	// tree rooted at the source.
	CodeMulticastTree Code = "AFDX006"
	// CodeGrouping reports on the preconditions of the grouping
	// (serialization) refinement: whether any port sees two flows
	// sharing an input link.
	CodeGrouping Code = "AFDX007"
	// CodeESJitter marks end systems whose ARINC 664 output jitter
	// exceeds the standard's 500 us cap.
	CodeESJitter Code = "AFDX008"
	// CodeDeadline marks paths whose idle-network delay floor already
	// exceeds the BAG-as-deadline bound (trivially uncertifiable).
	CodeDeadline Code = "AFDX009"
	// CodeOrphan marks declared nodes and per-link rate overrides that no
	// VL path uses.
	CodeOrphan Code = "AFDX010"
	// CodeNetwork marks network-level structural problems: no end
	// systems, duplicate node declarations, non-positive rates, negative
	// latencies, nil VLs, negative priorities.
	CodeNetwork Code = "AFDX011"
	// CodeAttachment marks end systems attached to more than one switch
	// (the ARINC 664 topology rule).
	CodeAttachment Code = "AFDX012"
	// CodeLinkUtilization marks links whose aggregate VL contract rate
	// Σ s_max/BAG exceeds the admission budget (Warning above the
	// configured fraction, Error at or above the full link rate).
	CodeLinkUtilization Code = "AFDX013"
)

// Location pins a diagnostic inside the configuration or, for
// source-level diagnostics (internal/detcheck), inside the Go tree.
// Zero fields are simply omitted: a network-level diagnostic has none,
// a port-level one fills Link, a contract violation fills VL, a
// source-level one fills File/Line.
type Location struct {
	// VL is the virtual-link identifier, when the diagnostic concerns
	// one VL (contract, routing, tree).
	VL string `json:"vl,omitempty"`
	// Node is an end system or switch name.
	Node string `json:"node,omitempty"`
	// Link is a directed link / output port, rendered "from->to".
	Link string `json:"link,omitempty"`
	// File and Line locate a source-level diagnostic (afdx-vet). File
	// is module-root-relative; Line is 1-based (0 = whole file).
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
}

// IsZero reports whether the location carries no information.
func (l Location) IsZero() bool { return l == Location{} }

func (l Location) String() string {
	var parts []string
	if l.VL != "" {
		parts = append(parts, "vl="+l.VL)
	}
	if l.Node != "" {
		parts = append(parts, "node="+l.Node)
	}
	if l.Link != "" {
		parts = append(parts, "link="+l.Link)
	}
	if l.File != "" {
		if l.Line > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", l.File, l.Line))
		} else {
			parts = append(parts, l.File)
		}
	}
	return strings.Join(parts, " ")
}

// Diagnostic is one finding: a coded, located, graded message with a
// machine-actionable suggestion.
type Diagnostic struct {
	Code       Code     `json:"code"`
	Severity   Severity `json:"severity"`
	Loc        Location `json:"location,omitempty"`
	Message    string   `json:"message"`
	Suggestion string   `json:"suggestion,omitempty"`
}

func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %-7s ", d.Code, d.Severity)
	if !d.Loc.IsZero() {
		fmt.Fprintf(&b, "[%s] ", d.Loc)
	}
	b.WriteString(d.Message)
	return b.String()
}

// New builds a diagnostic.
func New(code Code, sev Severity, loc Location, suggestion, format string, args ...any) Diagnostic {
	return Diagnostic{
		Code:       code,
		Severity:   sev,
		Loc:        loc,
		Message:    fmt.Sprintf(format, args...),
		Suggestion: suggestion,
	}
}

// Sort orders diagnostics for stable presentation: errors first, then by
// code, location, and message.
func Sort(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Severity != ds[j].Severity {
			return ds[i].Severity > ds[j].Severity
		}
		if ds[i].Code != ds[j].Code {
			return ds[i].Code < ds[j].Code
		}
		if li, lj := ds[i].Loc.String(), ds[j].Loc.String(); li != lj {
			return li < lj
		}
		return ds[i].Message < ds[j].Message
	})
}

// Count tallies diagnostics by severity.
func Count(ds []Diagnostic) (errs, warns, infos int) {
	for _, d := range ds {
		switch d.Severity {
		case Error:
			errs++
		case Warning:
			warns++
		default:
			infos++
		}
	}
	return
}

// HasErrors reports whether any diagnostic has Error severity.
func HasErrors(ds []Diagnostic) bool {
	e, _, _ := Count(ds)
	return e > 0
}

// FirstError returns the first Error-severity diagnostic in order, or a
// zero Diagnostic and false.
func FirstError(ds []Diagnostic) (Diagnostic, bool) {
	for _, d := range ds {
		if d.Severity == Error {
			return d, true
		}
	}
	return Diagnostic{}, false
}

// Filter returns the diagnostics with the given code.
func Filter(ds []Diagnostic, code Code) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}
