package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"

	"afdx/internal/afdx"
	"afdx/internal/core"
	"afdx/internal/incremental"
	"afdx/internal/netcalc"
	"afdx/internal/trajectory"
)

// This file is the served-conformance harness: record one session's
// traffic (the uploaded configuration plus every delta round and the
// bounds the server answered), then replay the same state evolution
// through cold engine runs — no server, no session, no cache — and
// require exact `==` on every path bound. It is the serving layer's
// analog of the incremental-parity tier: the wire (JSON round-trip),
// the session manager, and the warm caches must all be invisible in
// the numbers.

// Step is one delta round of a recorded script: the ParseDelta-format
// batch, whether it was committed (/apply) or peeked (/whatif), the NC
// analysis tier requested (?analysis=; "" = the WCNC default), and —
// after RunHTTP — the bounds the server answered.
type Step struct {
	Commit   bool              `json:"commit"`
	Deltas   []string          `json:"deltas"`
	Analysis string            `json:"analysis,omitempty"`
	Response *AnalysisResponse `json:"response,omitempty"`
}

// Script is one session's recorded traffic. With Provenance set,
// RunHTTP requests the per-bound provenance record on every round —
// the conformance tier runs with it on, proving the record is
// observation-only.
type Script struct {
	Net        *afdx.Network     `json:"net"`
	Base       *AnalysisResponse `json:"base,omitempty"`
	Steps      []Step            `json:"steps"`
	Provenance bool              `json:"provenance,omitempty"`
}

// SeededScript draws a deterministic delta script for a configuration:
// n steps of BAG doubling, s_max halving, and (rarely) VL drops, each
// drawn against the state all *committed* prior steps produce, with
// peeks and commits interleaved and each step's NC analysis tier drawn
// uniformly from the ladder — so one replay exercises cross-tier
// alternation on a warm session. The script is a pure function of
// (net, seed, n), so the check.sh smoke and the conformance tier replay
// the exact same traffic.
func SeededScript(net *afdx.Network, seed int64, n int) (*Script, error) {
	rng := rand.New(rand.NewSource(seed))
	cur := net.Clone()
	sc := &Script{Net: net.Clone()}
	tiers := netcalc.Analyses()
	for i := 0; i < n; i++ {
		cmd := drawDelta(rng, cur)
		if cmd == "" {
			break
		}
		commit := rng.Intn(2) == 0
		tier := tiers[rng.Intn(len(tiers))]
		if commit {
			d, err := incremental.ParseDelta(cmd)
			if err != nil {
				return nil, fmt.Errorf("serve: seeded script: %w", err)
			}
			if err := incremental.Apply(cur, d); err != nil {
				return nil, fmt.Errorf("serve: seeded script %q: %w", cmd, err)
			}
		}
		sc.Steps = append(sc.Steps, Step{Commit: commit, Deltas: []string{cmd}, Analysis: tier.String()})
	}
	return sc, nil
}

// drawDelta draws one always-feasible delta command against the current
// state, or "" when the configuration has nothing left to tweak.
// Tightening moves only (larger BAG, smaller s_max, fewer VLs), so a
// lint-clean starting configuration stays feasible for the whole script.
func drawDelta(rng *rand.Rand, cur *afdx.Network) string {
	for attempt := 0; attempt < 8; attempt++ {
		switch rng.Intn(3) {
		case 0: // double one BAG
			if v := pickVL(rng, cur, func(v *afdx.VirtualLink) bool { return v.BAGMs*2 <= afdx.MaxBAGMs }); v != nil {
				return fmt.Sprintf("bag %s %g", v.ID, v.BAGMs*2)
			}
		case 1: // halve one s_max
			if v := pickVL(rng, cur, func(v *afdx.VirtualLink) bool { return v.SMaxBytes/2 >= afdx.MinFrameBytes }); v != nil {
				return fmt.Sprintf("smax %s %d", v.ID, v.SMaxBytes/2)
			}
		case 2: // drop one VL, keeping at least two
			if len(cur.VLs) > 2 && rng.Intn(4) == 0 {
				return fmt.Sprintf("drop %s", cur.VLs[rng.Intn(len(cur.VLs))].ID)
			}
		}
	}
	return ""
}

func pickVL(rng *rand.Rand, cur *afdx.Network, ok func(*afdx.VirtualLink) bool) *afdx.VirtualLink {
	var cands []*afdx.VirtualLink
	for _, v := range cur.VLs {
		if ok(v) {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[rng.Intn(len(cands))]
}

// RunHTTP drives a script against a live server, recording every answer
// into the script: upload (with the session's worker count), then each
// step in order. Returns the session ID. The caller owns the server's
// lifecycle; the session is left open (covering later eviction tests).
func (sc *Script) RunHTTP(client *http.Client, baseURL string, parallel int) (string, error) {
	cfg, err := json.Marshal(sc.Net)
	if err != nil {
		return "", fmt.Errorf("serve: replay: %w", err)
	}
	prov := ""
	if sc.Provenance {
		prov = "&provenance=1"
	}
	createURL := fmt.Sprintf("%s/v1/sessions?parallel=%d%s", baseURL, parallel, prov)
	var base AnalysisResponse
	if err := postJSON(client, createURL, cfg, &base); err != nil {
		return "", fmt.Errorf("serve: replay upload: %w", err)
	}
	sc.Base = &base
	for i := range sc.Steps {
		st := &sc.Steps[i]
		verb := "whatif"
		if st.Commit {
			verb = "apply"
		}
		body, err := json.Marshal(DeltaRequest{Deltas: st.Deltas})
		if err != nil {
			return "", fmt.Errorf("serve: replay: %w", err)
		}
		var resp AnalysisResponse
		q := make(url.Values)
		if sc.Provenance {
			q.Set("provenance", "1")
		}
		if st.Analysis != "" {
			q.Set("analysis", st.Analysis)
		}
		stepURL := fmt.Sprintf("%s/v1/sessions/%s/%s", baseURL, base.Session, verb)
		if len(q) > 0 {
			stepURL += "?" + q.Encode()
		}
		if err := postJSON(client, stepURL, body, &resp); err != nil {
			return "", fmt.Errorf("serve: replay step %d %v: %w", i, st.Deltas, err)
		}
		st.Response = &resp
	}
	return base.Session, nil
}

// postJSON posts a JSON body and decodes a 2xx JSON answer, rendering
// non-2xx error bodies into the returned error.
func postJSON(client *http.Client, url string, body []byte, out any) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}

// Mismatch is one served bound that differs from its cold anchor.
type Mismatch struct {
	Seq   int     `json:"seq"` // recorded round (base = round 0's seq)
	Path  string  `json:"path"`
	Field string  `json:"field"`
	Got   float64 `json:"got"`  // served
	Want  float64 `json:"want"` // cold anchor
}

func (m Mismatch) String() string {
	return fmt.Sprintf("round %d %s %s: served %v, cold %v", m.Seq, m.Path, m.Field, m.Got, m.Want)
}

// VerifyCold replays a recorded script through cold anchors: for every
// recorded response it reconstructs the session's configuration at that
// round (committed deltas accumulate, peeked deltas apply to a scratch
// clone), runs both engines cold at the given worker count, and
// compares every path bound with exact `==`. An empty slice means the
// server was bit-faithful; any tolerance here would hide a cache or
// codec bug, so there is none.
func (sc *Script) VerifyCold(ctx context.Context, mode afdx.ValidationMode, parallel int) ([]Mismatch, error) {
	var out []Mismatch
	cur := sc.Net.Clone()
	if sc.Base != nil {
		ms, err := diffCold(ctx, sc.Base, cur, mode, parallel)
		if err != nil {
			return nil, fmt.Errorf("serve: verify base: %w", err)
		}
		out = append(out, ms...)
	}
	for i, st := range sc.Steps {
		ds, err := parseDeltas(st.Deltas)
		if err != nil {
			return nil, fmt.Errorf("serve: verify step %d: %w", i, err)
		}
		target := cur
		if !st.Commit {
			target = cur.Clone()
		}
		if err := incremental.Apply(target, ds...); err != nil {
			return nil, fmt.Errorf("serve: verify step %d %v: %w", i, st.Deltas, err)
		}
		if st.Response == nil {
			continue
		}
		ms, err := diffCold(ctx, st.Response, target, mode, parallel)
		if err != nil {
			return nil, fmt.Errorf("serve: verify step %d %v: %w", i, st.Deltas, err)
		}
		out = append(out, ms...)
	}
	return out, nil
}

// diffCold compares one recorded response against a cold run on the
// reconstructed configuration, at the NC analysis tier the response
// records — a served FIFO round anchors against a cold FIFO run, never
// against the default tier.
func diffCold(ctx context.Context, resp *AnalysisResponse, net *afdx.Network, mode afdx.ValidationMode, parallel int) ([]Mismatch, error) {
	pg, err := afdx.BuildPortGraph(net, mode)
	if err != nil {
		return nil, err
	}
	ncOpts := netcalc.DefaultOptions()
	ncOpts.Parallel = parallel
	if resp.Analysis != "" {
		tier, err := netcalc.ParseAnalysis(resp.Analysis)
		if err != nil {
			return nil, fmt.Errorf("serve: recorded round %d: %w", resp.Seq, err)
		}
		ncOpts.Analysis = tier
	}
	trOpts := trajectory.DefaultOptions()
	trOpts.Parallel = parallel
	cmp, err := core.CompareWithCtx(ctx, pg, ncOpts, trOpts)
	if err != nil {
		return nil, err
	}
	want := pathBounds(cmp)
	var out []Mismatch
	if len(want) != len(resp.Paths) {
		out = append(out, Mismatch{Seq: resp.Seq, Path: "(path count)", Field: "len",
			Got: float64(len(resp.Paths)), Want: float64(len(want))})
		return out, nil
	}
	for i, w := range want {
		g := resp.Paths[i]
		if g.Path != w.Path {
			out = append(out, Mismatch{Seq: resp.Seq, Path: g.Path, Field: "path order",
				Got: float64(i), Want: float64(i)})
			continue
		}
		for _, f := range [...]struct {
			name      string
			got, want float64
		}{
			{"ncUs", g.NCUs, w.NCUs},
			{"trajectoryUs", g.TrajectoryUs, w.TrajectoryUs},
			{"bestUs", g.BestUs, w.BestUs},
			{"minUs", g.MinUs, w.MinUs},
			{"jitterUs", g.JitterUs, w.JitterUs},
		} {
			if f.got != f.want {
				out = append(out, Mismatch{Seq: resp.Seq, Path: w.Path, Field: f.name, Got: f.got, Want: f.want})
			}
		}
	}
	return out, nil
}
