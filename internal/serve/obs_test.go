package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"afdx/internal/obs"
	"afdx/internal/obs/oplog"
)

// uploadSession posts a test network and returns the base response.
func uploadSession(t *testing.T, ts *httptest.Server, seed int64, vls int, query string) AnalysisResponse {
	t.Helper()
	cfg, err := json.Marshal(testNet(t, seed, vls))
	if err != nil {
		t.Fatal(err)
	}
	var base AnalysisResponse
	if err := postJSON(ts.Client(), ts.URL+"/v1/sessions?parallel=1"+query, cfg, &base); err != nil {
		t.Fatal(err)
	}
	return base
}

// TestTraceEndpoints pins the tentpole's trace surface: requests leave
// retained traces listed newest-first on /v1/trace, and /v1/trace/{id}
// serves the repository's canonical Chrome-trace encoding — the same
// shape as the golden fixture in internal/obs/testdata — with the
// request's engine spans inside.
func TestTraceEndpoints(t *testing.T) {
	opts := testOptions()
	opts.TraceRing = oplog.NewRing(8)
	_, ts := newTestServer(t, opts)
	base := uploadSession(t, ts, 7, 8, "")

	body, _ := json.Marshal(DeltaRequest{Deltas: []string{"bag v0001 16"}})
	var resp AnalysisResponse
	if err := postJSON(ts.Client(), ts.URL+"/v1/sessions/"+base.Session+"/whatif", body, &resp); err != nil {
		t.Fatal(err)
	}

	var list TraceList
	getJSON(t, ts, "/v1/trace", &list)
	if len(list.Traces) < 2 {
		t.Fatalf("want >= 2 retained traces, got %d", len(list.Traces))
	}
	// Newest first: the whatif POST precedes the upload in the list.
	if list.Traces[0].Path != "/v1/sessions/"+base.Session+"/whatif" {
		t.Errorf("newest trace path = %q", list.Traces[0].Path)
	}
	if list.Traces[0].Session != base.Session {
		t.Errorf("trace session = %q, want %q", list.Traces[0].Session, base.Session)
	}
	if list.Traces[0].Status != http.StatusOK || list.Traces[0].Events == 0 {
		t.Errorf("trace summary = %+v, want status 200 and events > 0", list.Traces[0])
	}

	// /v1/trace/{id} must round-trip as a Chrome-trace JSON array of
	// complete events, exactly as obs.EncodeChromeTrace writes it.
	hr, err := ts.Client().Get(ts.URL + "/v1/trace/" + list.Traces[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	data, err := io.ReadAll(hr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("trace get: HTTP %d: %s", hr.StatusCode, data)
	}
	var events []obs.TraceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace body is not a Chrome-trace array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace has no events")
	}
	sawEngine := false
	for _, e := range events {
		if e.Ph != "X" {
			t.Errorf("event %q has phase %q, want complete (X)", e.Name, e.Ph)
		}
		if strings.Contains(e.Args["path"], "trajectory") || strings.Contains(e.Args["path"], "netcalc") {
			sawEngine = true
		}
	}
	if !sawEngine {
		t.Errorf("request trace carries no engine spans: %v", events)
	}
	var buf bytes.Buffer
	if err := obs.EncodeChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(data) {
		t.Error("trace body does not round-trip through the canonical encoding")
	}

	// Unknown id: 404 with the SRV012 vocabulary.
	hr2, err := ts.Client().Get(ts.URL + "/v1/trace/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer hr2.Body.Close()
	if hr2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: HTTP %d, want 404", hr2.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(hr2.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != CodeUnknownTrace {
		t.Errorf("unknown trace code = %s, want %s", eb.Error.Code, CodeUnknownTrace)
	}
}

// TestTraceRingEvictionConcurrent hammers one session from concurrent
// clients through a tiny ring (run with -race): the ring must end
// exactly full, every listed trace retrievable, capacity never
// exceeded.
func TestTraceRingEvictionConcurrent(t *testing.T) {
	const capacity = 4
	opts := testOptions()
	opts.TraceRing = oplog.NewRing(capacity)
	_, ts := newTestServer(t, opts)
	base := uploadSession(t, ts, 7, 8, "")

	const clients, rounds = 4, 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(DeltaRequest{Deltas: []string{"bag v0001 16"}})
			for i := 0; i < rounds; i++ {
				var resp AnalysisResponse
				if err := postJSON(ts.Client(), ts.URL+"/v1/sessions/"+base.Session+"/whatif", body, &resp); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := opts.TraceRing.Len(); got != capacity {
		t.Fatalf("ring length = %d, want full at capacity %d", got, capacity)
	}
	list := opts.TraceRing.List()
	if len(list) != capacity {
		t.Fatalf("list length = %d, want %d", len(list), capacity)
	}
	for _, s := range list {
		tr, ok := opts.TraceRing.Get(s.ID)
		if !ok {
			t.Errorf("listed trace %s not retrievable", s.ID)
			continue
		}
		if len(tr.Events) != s.Events {
			t.Errorf("trace %s: %d events, summary says %d", s.ID, len(tr.Events), s.Events)
		}
	}
}

// TestSSEProvenanceMatchesResponse pins the satellite: the SSE
// "analysis" event of a provenance-enabled round carries the identical
// provenance record its paired POST response does.
func TestSSEProvenanceMatchesResponse(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	base := uploadSession(t, ts, 7, 12, "&provenance=1")
	if base.Provenance == nil {
		t.Fatal("base response has no provenance despite ?provenance=1")
	}
	events, stop := sseClient(t, ts, base.Session)
	defer stop()

	body, _ := json.Marshal(DeltaRequest{Deltas: []string{"bag v0001 16"}})
	for _, verb := range []string{"whatif", "apply"} {
		var resp AnalysisResponse
		url := fmt.Sprintf("%s/v1/sessions/%s/%s?provenance=1", ts.URL, base.Session, verb)
		if err := postJSON(ts.Client(), url, body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Provenance == nil {
			t.Fatalf("%s response has no provenance", verb)
		}
		if resp.Provenance.ConfigFNV64 == "" || resp.Provenance.ObsVersion != oplog.Version {
			t.Errorf("%s provenance incomplete: %+v", verb, resp.Provenance)
		}
		ev := <-events
		if ev.Seq != resp.Seq {
			t.Fatalf("%s: SSE seq %d, response seq %d", verb, ev.Seq, resp.Seq)
		}
		if ev.Provenance == nil {
			t.Fatalf("%s: SSE event has no provenance", verb)
		}
		if !reflect.DeepEqual(ev.Provenance, resp.Provenance) {
			t.Errorf("%s: SSE provenance differs from response:\n%+v\nvs\n%+v",
				verb, ev.Provenance, resp.Provenance)
		}
		if !reflect.DeepEqual(ev.Paths, resp.Paths) {
			t.Errorf("%s: SSE bounds differ from response", verb)
		}
	}

	// A whatif and an apply of the same batch describe the same
	// configuration: their digests must agree, and both must differ
	// from the base (the batch changes a BAG).
	if base.Provenance.ConfigFNV64 == "" {
		t.Fatal("empty base digest")
	}
}

// TestProvenanceDigestSemantics pins what the digest covers: peeking a
// batch digests committed-state+batch (== the digest after committing
// the same batch), and provenance is absent without the query flag.
func TestProvenanceDigestSemantics(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	base := uploadSession(t, ts, 7, 12, "&provenance=1")

	body, _ := json.Marshal(DeltaRequest{Deltas: []string{"bag v0001 16"}})
	var peek, plain, commit AnalysisResponse
	if err := postJSON(ts.Client(), ts.URL+"/v1/sessions/"+base.Session+"/whatif?provenance=1", body, &peek); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(ts.Client(), ts.URL+"/v1/sessions/"+base.Session+"/whatif", body, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Provenance != nil {
		t.Error("provenance present without ?provenance=1")
	}
	if err := postJSON(ts.Client(), ts.URL+"/v1/sessions/"+base.Session+"/apply?provenance=1", body, &commit); err != nil {
		t.Fatal(err)
	}
	if peek.Provenance.ConfigFNV64 != commit.Provenance.ConfigFNV64 {
		t.Errorf("peek digest %s != commit digest %s for the same batch",
			peek.Provenance.ConfigFNV64, commit.Provenance.ConfigFNV64)
	}
	if peek.Provenance.ConfigFNV64 == base.Provenance.ConfigFNV64 {
		t.Error("peek digest equals base digest; the batch changes the configuration")
	}
	if w := commit.Provenance.Workers; w != 1 {
		t.Errorf("workers = %d, want the session's parallel=1", w)
	}
	if commit.Provenance.Engines != "netcalc+trajectory" || commit.Provenance.TrajectoryPath != "flat" {
		t.Errorf("engine labels = %q/%q", commit.Provenance.Engines, commit.Provenance.TrajectoryPath)
	}
}

// TestMetricsContentNegotiation pins /v1/metrics serving JSON by
// default and valid Prometheus text under ?format=prometheus or an
// Accept header preferring text/plain.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	uploadSession(t, ts, 7, 8, "")

	// Default: the JSON snapshot.
	hr, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if ct := hr.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type = %q", ct)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(hr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counter("serve_http_requests") == 0 {
		t.Error("JSON snapshot missing serve_http_requests")
	}

	for _, mode := range []struct {
		query  string
		accept string
	}{
		{query: "?format=prometheus"},
		{accept: "text/plain"},
		{accept: "application/openmetrics-text; version=1.0.0"},
	} {
		req, err := http.NewRequest("GET", ts.URL+"/v1/metrics"+mode.query, nil)
		if err != nil {
			t.Fatal(err)
		}
		if mode.accept != "" {
			req.Header.Set("Accept", mode.accept)
		}
		pr, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		text, err := io.ReadAll(pr.Body)
		pr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if ct := pr.Header.Get("Content-Type"); ct != oplog.PrometheusContentType {
			t.Errorf("%+v: Content-Type = %q", mode, ct)
		}
		if !bytes.Contains(text, []byte("# TYPE serve_http_requests counter")) ||
			!bytes.Contains(text, []byte(`serve_http_requests{class="deterministic"}`)) {
			t.Errorf("%+v: exposition missing the request counter:\n%.400s", mode, text)
		}
		if !bytes.Contains(text, []byte(`serve_request_duration_us_bucket{class="best-effort",le="+Inf"}`)) {
			t.Errorf("%+v: exposition missing the latency histogram buckets", mode)
		}
	}
}

// TestRequestLogSchema pins the structured log surface: one JSON
// record per HTTP request with the documented fields, one per applied
// delta, and a warn-level slow-request record when the threshold is
// set below the request latency.
func TestRequestLogSchema(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	opts := testOptions()
	opts.Logger = slog.New(slog.NewJSONHandler(lockedWriter, nil))
	opts.SlowRequestUs = 1 // everything is slow
	_, ts := newTestServer(t, opts)
	base := uploadSession(t, ts, 7, 8, "")
	body, _ := json.Marshal(DeltaRequest{Deltas: []string{"bag v0001 16", "smax v0002 800"}})
	var resp AnalysisResponse
	if err := postJSON(ts.Client(), ts.URL+"/v1/sessions/"+base.Session+"/apply", body, &resp); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	var requests, deltas, slow int
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		switch rec["msg"] {
		case "request":
			requests++
			for _, key := range []string{"id", "method", "path", "status", "dur_us", "session"} {
				if _, ok := rec[key]; !ok {
					t.Errorf("request record missing %q: %s", key, line)
				}
			}
		case "delta applied":
			deltas++
			if rec["session"] != base.Session || rec["cmd"] == "" {
				t.Errorf("delta record = %s", line)
			}
		case "slow request":
			slow++
			if rec["level"] != "WARN" {
				t.Errorf("slow record level = %v", rec["level"])
			}
		}
	}
	if requests != 2 {
		t.Errorf("request records = %d, want 2 (upload + apply)", requests)
	}
	if deltas != 2 {
		t.Errorf("delta records = %d, want one per applied delta", deltas)
	}
	if slow != 2 {
		t.Errorf("slow records = %d, want 2 with a 1µs threshold", slow)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestSSEThroughMiddleware pins that the status-capturing middleware
// writer still exposes Flush: the SSE stream must work behind it.
func TestSSEThroughMiddleware(t *testing.T) {
	opts := testOptions()
	opts.TraceRing = oplog.NewRing(4)
	opts.Logger = oplog.Discard()
	_, ts := newTestServer(t, opts)
	base := uploadSession(t, ts, 7, 8, "")
	events, stop := sseClient(t, ts, base.Session)
	defer stop()
	body, _ := json.Marshal(DeltaRequest{Deltas: []string{"bag v0001 16"}})
	var resp AnalysisResponse
	if err := postJSON(ts.Client(), ts.URL+"/v1/sessions/"+base.Session+"/apply", body, &resp); err != nil {
		t.Fatal(err)
	}
	ev := <-events
	if ev.Seq != resp.Seq {
		t.Fatalf("SSE through middleware: seq %d, want %d", ev.Seq, resp.Seq)
	}
}
