package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
)

// parityWorkers is the "N" of the parallel-1-vs-N served-conformance
// sweeps. Small enough for CI, large enough to exercise real fan-out.
const parityWorkers = 4

func testNet(t testing.TB, seed int64, vls int) *afdx.Network {
	t.Helper()
	spec := configgen.DefaultSpec(seed)
	spec.NumSwitches = 3
	spec.ESPerSwitch = 3
	spec.NumVLs = vls
	net, err := configgen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// newTestServer starts a served-layer instance behind httptest with
// test-friendly limits. The returned Server allows direct pool
// manipulation (EvictIdle, Drain) next to the HTTP surface.
func newTestServer(t testing.TB, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

// testOptions returns serving options for tests: no janitor, no SSE
// keepalives, and a generous timeout so loaded CI runners don't flake.
func testOptions() Options {
	return Options{
		Mode:           afdx.Strict,
		MaxSessions:    32,
		MaxBodyBytes:   8 << 20,
		RequestTimeout: time.Minute,
	}
}

// TestServedConformanceSeeded is the served-conformance tier's core
// case: a seeded 20-step script served over HTTP, then every answer
// re-derived from cold engine runs — no server, no caches — requiring
// exact == at worker counts 1 and N.
func TestServedConformanceSeeded(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	net := testNet(t, 7, 24)
	script, err := SeededScript(net, 13, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Steps) < 10 {
		t.Fatalf("seeded script too short: %d steps", len(script.Steps))
	}
	if _, err := script.RunHTTP(ts.Client(), ts.URL, 0); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, parityWorkers} {
		mm, err := script.VerifyCold(context.Background(), afdx.Strict, par)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mm {
			t.Errorf("parallel %d: %s", par, m)
		}
	}
}

// TestSeededScriptDeterministic pins that the replay script is a pure
// function of (net, seed, n): the check.sh smoke and the conformance
// tier must replay identical traffic.
func TestSeededScriptDeterministic(t *testing.T) {
	net := testNet(t, 7, 24)
	a, err := SeededScript(net, 13, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SeededScript(net, 13, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Steps, b.Steps) {
		t.Fatalf("seeded script not deterministic:\n%v\nvs\n%v", a.Steps, b.Steps)
	}
}

// TestServedConformanceConcurrentClients runs 8 concurrent clients,
// each with its own session and its own seeded script, and verifies
// every client's full answer stream against cold anchors — the
// serialized-executor pool must keep concurrent sessions bit-faithful.
func TestServedConformanceConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	const clients = 8
	scripts := make([]*Script, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		net := testNet(t, int64(100+i), 16)
		sc, err := SeededScript(net, int64(i+1), 8)
		if err != nil {
			t.Fatal(err)
		}
		scripts[i] = sc
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Odd clients ask for parallel sessions, even for
			// sequential ones; the answers must not differ.
			_, errs[i] = scripts[i].RunHTTP(ts.Client(), ts.URL, i%2*parityWorkers)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i, sc := range scripts {
		for _, par := range []int{1, parityWorkers} {
			mm, err := sc.VerifyCold(context.Background(), afdx.Strict, par)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range mm {
				t.Errorf("client %d, parallel %d: %s", i, par, m)
			}
		}
	}
}

// TestEvictedThenRecreatedMatchesCold is the Session.Close regression
// pin: evict a session (returning its cache memory), recreate it from
// the same configuration, and require the recreated session's answers
// — now computed by cold caches — to be bit-identical to the first
// session's and to cold anchors.
func TestEvictedThenRecreatedMatchesCold(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	opts := testOptions()
	opts.Clock = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	srv, ts := newTestServer(t, opts)
	net := testNet(t, 7, 16)
	first, err := SeededScript(net, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	id, err := first.RunHTTP(ts.Client(), ts.URL, 0)
	if err != nil {
		t.Fatal(err)
	}

	advance(time.Hour)
	if n := srv.EvictIdle(30 * time.Minute); n != 1 {
		t.Fatalf("EvictIdle = %d, want 1", n)
	}
	// The evicted session is gone from the HTTP surface.
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions/"+id+"/whatif", "application/json",
		strings.NewReader(`{"deltas":["bag `+net.VLs[0].ID+` 128"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-eviction whatif: HTTP %d, want 404", resp.StatusCode)
	}

	// Recreate from the same configuration and replay the same script:
	// a fresh session starts with cold caches, so identical answers here
	// plus VerifyCold pin the eviction as semantically invisible.
	second := &Script{Net: net.Clone()}
	for _, st := range first.Steps {
		second.Steps = append(second.Steps, Step{Commit: st.Commit, Deltas: st.Deltas, Analysis: st.Analysis})
	}
	if _, err := second.RunHTTP(ts.Client(), ts.URL, 0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Base.Paths, second.Base.Paths) {
		t.Error("recreated session: base bounds differ from pre-eviction session")
	}
	for i := range first.Steps {
		if !reflect.DeepEqual(first.Steps[i].Response.Paths, second.Steps[i].Response.Paths) {
			t.Errorf("recreated session: step %d bounds differ from pre-eviction session", i)
		}
	}
	mm, err := second.VerifyCold(context.Background(), afdx.Strict, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mm {
		t.Errorf("recreated session: %s", m)
	}
}

// sseClient subscribes to a session's event feed and decodes "analysis"
// events into a channel.
func sseClient(t *testing.T, ts *httptest.Server, id string) (<-chan AnalysisEvent, func()) {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+"/v1/sessions/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("events: Content-Type %q", ct)
	}
	out := make(chan AnalysisEvent, 64)
	go func() {
		defer close(out)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var event string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: ") && event == "analysis":
				var ev AnalysisEvent
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err == nil {
					out <- ev
				}
			}
		}
	}()
	return out, func() { resp.Body.Close() }
}

// TestSSEStreamMatchesResponses pins the SSE feed to the POST answers:
// every analysis round streams exactly the bounds the POST returned,
// plus deterministic counters only.
func TestSSEStreamMatchesResponses(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	net := testNet(t, 7, 16)
	script, err := SeededScript(net, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Round 0 happens at upload, before any subscriber exists; stream
	// the remaining rounds.
	id, err := (&Script{Net: net.Clone()}).RunHTTP(ts.Client(), ts.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	events, stop := sseClient(t, ts, id)
	defer stop()

	replay := &Script{Net: net.Clone(), Steps: script.Steps}
	replay.Base = &AnalysisResponse{} // skip re-upload: drive steps by hand
	for i := range replay.Steps {
		st := &replay.Steps[i]
		verb := "whatif"
		if st.Commit {
			verb = "apply"
		}
		body, _ := json.Marshal(DeltaRequest{Deltas: st.Deltas})
		var resp AnalysisResponse
		if err := postJSON(ts.Client(), fmt.Sprintf("%s/v1/sessions/%s/%s", ts.URL, id, verb), body, &resp); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		st.Response = &resp
	}
	for i := range replay.Steps {
		want := replay.Steps[i].Response
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("event stream closed before round %d", want.Seq)
			}
			if ev.Seq != want.Seq || ev.Committed != want.Committed {
				t.Fatalf("event %d: seq/committed = %d/%v, want %d/%v", i, ev.Seq, ev.Committed, want.Seq, want.Committed)
			}
			if !reflect.DeepEqual(ev.Paths, want.Paths) {
				t.Errorf("event for round %d: streamed bounds differ from POST response", want.Seq)
			}
			for name := range ev.Counters {
				if strings.Contains(name, "evicted") || strings.Contains(name, "dropped") {
					t.Errorf("event for round %d: best-effort counter %q on the stream", want.Seq, name)
				}
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("timed out waiting for round %d event", want.Seq)
		}
	}
}

// TestSessionLifecycleHTTP covers list/info/delete plus health.
func TestSessionLifecycleHTTP(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	net := testNet(t, 7, 8)
	sc := &Script{Net: net}
	id, err := sc.RunHTTP(ts.Client(), ts.URL, 2)
	if err != nil {
		t.Fatal(err)
	}

	var list SessionList
	getJSON(t, ts, "/v1/sessions", &list)
	if len(list.Sessions) != 1 || list.Sessions[0].ID != id {
		t.Fatalf("list = %+v, want one session %q", list, id)
	}
	var info SessionInfo
	getJSON(t, ts, "/v1/sessions/"+id, &info)
	if info.Parallel != 2 || info.Seq != 1 || info.VLs != len(net.VLs) {
		t.Fatalf("info = %+v, want parallel=2 seq=1 vls=%d", info, len(net.VLs))
	}
	var h Health
	getJSON(t, ts, "/v1/healthz", &h)
	if h.Status != "ok" || h.Sessions != 1 || h.Draining {
		t.Fatalf("health = %+v", h)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+id, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: HTTP %d, want 204", resp.StatusCode)
	}
	getJSON(t, ts, "/v1/sessions", &list)
	if len(list.Sessions) != 0 {
		t.Fatalf("list after delete = %+v, want empty", list)
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}

// TestParsePathID round-trips the wire path form.
func TestParsePathID(t *testing.T) {
	pid, err := ParsePathID("v12/3")
	if err != nil {
		t.Fatal(err)
	}
	if pid != (afdx.PathID{VL: "v12", PathIdx: 3}) {
		t.Fatalf("ParsePathID = %+v", pid)
	}
	for _, bad := range []string{"", "v1", "/3", "v1/", "v1/x"} {
		if _, err := ParsePathID(bad); err == nil {
			t.Errorf("ParsePathID(%q): no error", bad)
		}
	}
}
