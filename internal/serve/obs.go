package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"afdx/internal/incremental"
	"afdx/internal/netcalc"
	"afdx/internal/obs"
	"afdx/internal/obs/oplog"
	"afdx/internal/parallel"
)

// This file is the serving layer's operational-observability surface:
// the request middleware (correlation ids, structured log lines, the
// latency histogram, slow-request detection, trace retention), the
// /v1/trace endpoints, the Prometheus content negotiation on
// /v1/metrics, and the per-bound provenance record. Everything here is
// observation-only — bounds, Deterministic-class counters, and the
// served-conformance replay are bit-identical with the whole layer on
// or off (obs_determinism_test pins this).

// slowFloorUs floors the adaptive slow-request threshold: below the
// first thousand microseconds a "slow" label carries no signal.
const slowFloorUs = 1000

// observe wraps the HTTP mux with the request middleware. Each request
// gets a correlation id ("r1", "r2", ... in arrival order), a status-
// capturing writer, and — when trace retention is on — a private span
// tracer on its context; the session executor threads that context to
// the engines, so every engine span of the request lands in its trace.
// On completion the middleware observes the latency histogram, emits
// one structured log line, flags requests over the slow threshold, and
// retains the completed trace in the ring.
func (s *Server) observe(mux http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mgr.metrics.requests.Inc()
		id := "r" + strconv.FormatInt(s.reqSeq.Add(1), 10)
		var tracer *obs.Tracer
		if s.opts.TraceRing != nil {
			tracer = obs.NewTracer()
			ctx, span := obs.StartSpan(obs.WithTracer(r.Context(), tracer), "http:"+r.Method+" "+r.URL.Path)
			defer span.End()
			r = r.WithContext(ctx)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		durUs := time.Since(start).Microseconds()
		s.latency.Observe(durUs)
		session := sessionFromPath(r.URL.Path)
		s.log.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"session", session,
			"status", sw.code(),
			"dur_us", durUs,
		)
		if limit := s.slowThresholdUs(); durUs > limit {
			s.log.Warn("slow request",
				"id", id,
				"method", r.Method,
				"path", r.URL.Path,
				"session", session,
				"dur_us", durUs,
				"threshold_us", limit,
			)
		}
		if tracer != nil {
			s.opts.TraceRing.Add(oplog.RequestTrace{
				ID:      id,
				Method:  r.Method,
				Path:    r.URL.Path,
				Session: session,
				Status:  sw.code(),
				DurUs:   durUs,
				Events:  tracer.Events(),
			})
		}
	})
}

// slowThresholdUs resolves the slow-request threshold: the configured
// value, or — when unset — the live p99 of the request-latency
// histogram floored at one millisecond, so the log adapts to the
// workload without configuration.
func (s *Server) slowThresholdUs() int64 {
	if s.opts.SlowRequestUs > 0 {
		return s.opts.SlowRequestUs
	}
	limit := s.latency.Quantile(0.99)
	if limit < slowFloorUs {
		limit = slowFloorUs
	}
	return limit
}

// statusWriter records the response status while passing Flush through,
// so SSE streaming keeps working behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// code returns the recorded status, defaulting to 200 for handlers
// that never called WriteHeader.
func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// sessionFromPath extracts the session id from a /v1/sessions/{id}...
// request path, or "" for non-session routes.
func sessionFromPath(path string) string {
	const prefix = "/v1/sessions/"
	if !strings.HasPrefix(path, prefix) {
		return ""
	}
	rest := path[len(prefix):]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// TraceList is the GET /v1/trace payload: retained request traces,
// newest first.
type TraceList struct {
	Traces []oplog.TraceSummary `json:"traces"`
}

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	list := s.opts.TraceRing.List()
	if list == nil {
		list = []oplog.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, TraceList{Traces: list})
}

// handleTraceGet serves one retained trace as a Chrome-trace JSON
// array — the repository's canonical trace encoding, loadable in
// chrome://tracing and byte-compatible with afdx CLI -tracefile
// output.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.opts.TraceRing.Get(id)
	if !ok {
		writeError(w, errf(CodeUnknownTrace, "unknown or evicted trace %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	obs.EncodeChromeTrace(w, tr.Events) //nolint:errcheck // the client went away; nothing to do
}

// wantsPrometheus reports whether a /v1/metrics request asked for the
// text exposition format: ?format=prometheus, or an Accept header
// preferring text/plain or OpenMetrics over JSON (a plain browser
// `*/*` keeps the JSON snapshot).
func wantsPrometheus(r *http.Request) bool {
	if f := r.URL.Query().Get("format"); f != "" {
		return f == "prometheus"
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// provenance assembles the audit record of one analysis round. The
// digest covers the exact configuration the bounds describe: the
// session's committed state, plus — for a peek — the non-committed
// batch applied to a scratch clone, mirroring VerifyCold's
// reconstruction. Counters are read from a snapshot (never registered
// here) so requesting provenance cannot perturb the registry.
func (s *Server) provenance(sess *incremental.Session, ds []incremental.Delta, commit bool, workers int, tier netcalc.Analysis) *Provenance {
	net := sess.Network()
	if !commit && len(ds) > 0 {
		// The batch already passed the session's re-validation, so
		// applying it to the clone cannot fail; a failure here would
		// only leave the committed-state digest, never a wrong one.
		if err := incremental.Apply(net, ds...); err != nil {
			return nil
		}
	}
	data, err := json.Marshal(net)
	if err != nil {
		return nil
	}
	snap := s.reg.Snapshot()
	return &Provenance{
		ConfigFNV64:    oplog.FNV64(data),
		Engines:        "netcalc+trajectory",
		Analysis:       tier.String(),
		TrajectoryPath: "flat",
		// The audit record carries the resolved worker count (<= 0 is
		// the "all cores" sentinel, useless to an auditor).
		Workers:        parallel.Workers(workers),
		PortHits:       snap.Counter("netcalc.incr_port_hits"),
		PortRecomputes: snap.Counter("netcalc.incr_port_recomputes"),
		PathHits:       snap.Counter("trajectory.incr_path_hits"),
		PathRecomputes: snap.Counter("trajectory.incr_path_recomputes"),
		ObsVersion:     oplog.Version,
	}
}

// wantProvenance reports whether the request opted into the provenance
// record (?provenance=1).
func wantProvenance(r *http.Request) bool {
	switch r.URL.Query().Get("provenance") {
	case "1", "true":
		return true
	}
	return false
}
