package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"afdx/internal/afdx"
)

// These tests are the session manager's race-condition coverage (run
// under `go test -race ./internal/serve/...`): concurrent clients on
// shared and disjoint sessions, pool-pressure eviction, and drain.

// tightenDelta returns an always-feasible tightening delta for a VL:
// double the BAG when the cap allows, otherwise halve s_max.
func tightenDelta(v *afdx.VirtualLink) string {
	if v.BAGMs*2 <= afdx.MaxBAGMs {
		return fmt.Sprintf("bag %s %g", v.ID, v.BAGMs*2)
	}
	return fmt.Sprintf("smax %s %d", v.ID, max(afdx.MinFrameBytes, v.SMaxBytes/2))
}

// TestSharedSessionConcurrentPeeks hammers one session with concurrent
// /whatif peeks from 8 clients. Peeks never commit, so every client
// asking the same question must receive bit-identical answers no matter
// how the executor interleaves them.
func TestSharedSessionConcurrentPeeks(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	net := testNet(t, 7, 16)
	id, err := (&Script{Net: net}).RunHTTP(ts.Client(), ts.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(DeltaRequest{Deltas: []string{tightenDelta(net.VLs[0])}})

	const clients, rounds = 8, 4
	answers := make([][]AnalysisResponse, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var resp AnalysisResponse
				if err := postJSON(ts.Client(), ts.URL+"/v1/sessions/"+id+"/whatif", body, &resp); err != nil {
					errs[c] = err
					return
				}
				answers[c] = append(answers[c], resp)
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	want := answers[0][0].Paths
	for c := range answers {
		for r, resp := range answers[c] {
			if resp.Committed {
				t.Fatalf("client %d round %d: peek reported committed", c, r)
			}
			if !reflect.DeepEqual(resp.Paths, want) {
				t.Errorf("client %d round %d: concurrent peeks of the same delta diverge", c, r)
			}
		}
	}
}

// TestSharedSessionConcurrentApplies commits a commuting delta set (one
// distinct VL per client) from concurrent clients. The executor may
// order them arbitrarily, but the final state is order-independent, so
// a follow-up peek must match a cold run on base + all deltas — the
// serialized-executor bit-parity assertion of the ISSUE.
func TestSharedSessionConcurrentApplies(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	net := testNet(t, 11, 16)
	sc := &Script{Net: net.Clone()}
	id, err := sc.RunHTTP(ts.Client(), ts.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	if len(net.VLs) < clients {
		t.Fatalf("need %d VLs, have %d", clients, len(net.VLs))
	}
	deltas := make([]string, clients)
	for c := 0; c < clients; c++ {
		deltas[c] = tightenDelta(net.VLs[c])
	}
	errs := make([]error, clients)
	seqs := make([]int, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body, _ := json.Marshal(DeltaRequest{Deltas: []string{deltas[c]}})
			var resp AnalysisResponse
			errs[c] = postJSON(ts.Client(), ts.URL+"/v1/sessions/"+id+"/apply", body, &resp)
			seqs[c] = resp.Seq
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	// The executor serialized the applies: their round numbers are a
	// permutation of 1..clients.
	seen := map[int]bool{}
	for _, s := range seqs {
		if s < 1 || s > clients || seen[s] {
			t.Fatalf("apply seqs %v are not a permutation of 1..%d", seqs, clients)
		}
		seen[s] = true
	}
	// Record the final state through one more (committed) round and
	// verify the whole recorded session against cold anchors. The final
	// configuration is order-independent because the deltas commute.
	sc.Steps = []Step{
		{Commit: true, Deltas: append(append([]string{}, deltas...), tightenDelta(net.VLs[clients]))},
	}
	// Replace the concurrently-applied deltas with one equivalent batch
	// for cold verification: base + the same mutations.
	body, _ := json.Marshal(DeltaRequest{Deltas: sc.Steps[0].Deltas[clients:]})
	var resp AnalysisResponse
	if err := postJSON(ts.Client(), ts.URL+"/v1/sessions/"+id+"/apply", body, &resp); err != nil {
		t.Fatal(err)
	}
	sc.Steps[0].Response = &resp
	sc.Base = nil // base bounds already verified by other tests
	for _, par := range []int{1, parityWorkers} {
		mm, err := sc.VerifyCold(context.Background(), afdx.Strict, par)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mm {
			t.Errorf("after concurrent applies, parallel %d: %s", par, m)
		}
	}
}

// TestPoolPressureEvictsLRUIdle fills a 2-session pool and uploads a
// third configuration: the LRU idle session must be evicted to make
// room, and the survivor keep working.
func TestPoolPressureEvictsLRUIdle(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	opts := testOptions()
	opts.MaxSessions = 2
	opts.Clock = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	srv, ts := newTestServer(t, opts)
	net := testNet(t, 7, 8)
	first, err := (&Script{Net: net}).RunHTTP(ts.Client(), ts.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	advance(time.Minute)
	second, err := (&Script{Net: net}).RunHTTP(ts.Client(), ts.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	advance(time.Minute)
	third, err := (&Script{Net: net}).RunHTTP(ts.Client(), ts.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := srv.mgr.size(); n != 2 {
		t.Fatalf("pool size = %d, want 2", n)
	}
	if srv.mgr.info(first) != nil {
		t.Error("LRU session survived pool pressure")
	}
	for _, id := range []string{second, third} {
		if srv.mgr.info(id) == nil {
			t.Errorf("session %s missing after eviction", id)
		}
	}
}

// TestDrainNoDeadlock drains while concurrent clients are mid-request:
// Drain must complete, in-flight requests must finish or be refused
// cleanly, and post-drain requests must get 503 with the draining code.
func TestDrainNoDeadlock(t *testing.T) {
	s := New(testOptions())
	ts := newUnmanagedServer(t, s)
	net := testNet(t, 7, 16)
	id, err := (&Script{Net: net}).RunHTTP(ts.Client(), ts.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(DeltaRequest{Deltas: []string{tightenDelta(net.VLs[0])}})

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp AnalysisResponse
			// Either a real answer or a clean draining/closed refusal —
			// never a hang or a torn response.
			err := postJSON(ts.Client(), ts.URL+"/v1/sessions/"+id+"/whatif", body, &resp)
			if err != nil && !strings.Contains(err.Error(), "SRV007") && !strings.Contains(err.Error(), "SRV003") {
				t.Errorf("mid-drain request: %v", err)
			}
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain upload: HTTP %d, want 503", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != CodeDraining {
		t.Fatalf("post-drain code = %s, want %s", eb.Error.Code, CodeDraining)
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// newUnmanagedServer is newTestServer without the cleanup Drain (for
// tests that drain explicitly).
func newUnmanagedServer(t testing.TB, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}
