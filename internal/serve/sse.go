package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// event is one Server-Sent-Events frame: `id: <seq>` + `event: <name>`
// + one `data:` line of JSON, blank-line terminated (the payloads are
// single-line json.Marshal output, so no data-line splitting is
// needed).
type event struct {
	id   int64
	name string
	data []byte
}

func (e event) writeTo(w http.ResponseWriter) error {
	_, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.id, e.name, e.data)
	return err
}

// hub fans one session's event stream out to its SSE subscribers. A
// subscriber that cannot keep up has events dropped (counted on the
// server's serve_sse_dropped metric) rather than back-pressuring the
// analysis executor: the feed is an observation channel, never part of
// the computation — exactly the internal/obs contract.
type hub struct {
	mu      sync.Mutex
	subs    map[chan event]struct{}
	nextID  int64
	closed  bool
	dropped func() // observation hook; may be nil
}

func newHub(dropped func()) *hub {
	return &hub{subs: map[chan event]struct{}{}, dropped: dropped}
}

// subscribe registers a buffered event channel. The returned cancel is
// idempotent and safe after close; the channel is closed by cancel or
// by hub close, whichever comes first.
func (h *hub) subscribe() (<-chan event, func()) {
	ch := make(chan event, 32)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.subs[ch]; ok {
				delete(h.subs, ch)
				close(ch)
			}
			h.mu.Unlock()
		})
	}
	return ch, cancel
}

// publish marshals v and delivers it to every subscriber without
// blocking. No-op after close.
func (h *hub) publish(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.nextID++
	e := event{id: h.nextID, name: name, data: data}
	for ch := range h.subs {
		select {
		case ch <- e:
		default:
			if h.dropped != nil {
				h.dropped()
			}
		}
	}
}

// close terminates every subscriber stream. Idempotent.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}

// serveSSE streams a hub to one HTTP client until the client goes away
// or the hub closes. keepalive comments flow every interval so idle
// streams survive proxies; 0 disables them (tests).
func serveSSE(w http.ResponseWriter, r *http.Request, h *hub, hello event, keepalive time.Duration) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errf(CodeAnalysis, "response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	ch, cancel := h.subscribe()
	defer cancel()
	if err := hello.writeTo(w); err != nil {
		return
	}
	fl.Flush()
	var tick <-chan time.Time
	if keepalive > 0 {
		t := time.NewTicker(keepalive)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return // session closed or evicted
			}
			if err := e.writeTo(w); err != nil {
				return
			}
			fl.Flush()
		case <-tick:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
