package serve

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"testing"
	"time"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
	"afdx/internal/core"
	"afdx/internal/incremental"
	"afdx/internal/netcalc"
	"afdx/internal/obs"
	"afdx/internal/obs/oplog"
	"afdx/internal/trajectory"
)

// The Cold/Served benchmark pair (afdx-benchjson pairs the suffixes):
// the same what-if question answered by a cold CLI-style run — full
// re-analysis of the mutated configuration — versus one warm afdx-serve
// session over real HTTP, wire round-trip included. Both compute
// bit-identical bounds (the served-conformance tier pins it); the ratio
// is the interactive-loop latency the daemon saves.

func benchNet(b *testing.B) *afdx.Network {
	b.Helper()
	spec := configgen.DefaultSpec(1)
	net, err := configgen.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// benchDeltas returns two alternating peek questions, so the served
// variant exercises the caches' A/B alternation rather than a single
// hot entry.
func benchDeltas(b *testing.B, net *afdx.Network) [2][]string {
	b.Helper()
	if len(net.VLs) < 2 {
		b.Fatal("bench config too small")
	}
	return [2][]string{
		{tightenDelta(net.VLs[0])},
		{tightenDelta(net.VLs[1])},
	}
}

func BenchmarkServeWhatIfCold(b *testing.B) {
	net := benchNet(b)
	deltas := benchDeltas(b, net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cand := net.Clone()
		ds, err := parseDeltas(deltas[i%2])
		if err != nil {
			b.Fatal(err)
		}
		if err := incremental.Apply(cand, ds...); err != nil {
			b.Fatal(err)
		}
		pg, err := afdx.BuildPortGraph(cand, afdx.Strict)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.CompareWith(pg, netcalc.DefaultOptions(), trajectory.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeWhatIfServed(b *testing.B) {
	benchServedWhatIf(b, false)
}

// The ObsOff/ObsOn pair times the identical served what-if loop with
// the observability stack fully off versus fully on: structured JSON
// request and delta logs (written to io.Discard so the pair measures
// the layer, not the disk), per-request tracing retained in a 256-entry
// ring, slow-request detection with a threshold of 1µs (every request
// takes the slow-log path — the worst case), the runtime sampler, and
// per-bound provenance on every answer. afdx-benchjson pairs the
// suffixes into obs_off_on_pairs; the overhead budget is <= 5%.

func BenchmarkServeWhatIfObsOff(b *testing.B) {
	benchServedWhatIf(b, false)
}

func BenchmarkServeWhatIfObsOn(b *testing.B) {
	benchServedWhatIf(b, true)
}

// benchServedWhatIf runs the steady-state served what-if loop — one
// warm session, two alternating peek questions over real HTTP — with
// the observability layer fully on or fully off.
func benchServedWhatIf(b *testing.B, obsOn bool) {
	net := benchNet(b)
	deltas := benchDeltas(b, net)
	opts := testOptions()
	query := ""
	if obsOn {
		opts.Registry = obs.NewRegistry()
		opts.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
		opts.TraceRing = oplog.NewRing(256)
		opts.SlowRequestUs = 1
		query = "?provenance=1"
	}
	s := New(opts)
	ts := newUnmanagedServer(b, s)
	defer func() {
		if err := s.Drain(context.Background()); err != nil {
			b.Error(err)
		}
	}()
	if obsOn {
		sampler := oplog.NewRuntimeSampler(opts.Registry)
		sampler.AddGauge("serve.sessions_live", "live analysis sessions",
			func() int64 { return int64(s.SessionCount()) })
		defer sampler.Start(10 * time.Millisecond)()
	}
	id, err := (&Script{Net: net}).RunHTTP(ts.Client(), ts.URL, 0)
	if err != nil {
		b.Fatal(err)
	}
	url := ts.URL + "/v1/sessions/" + id + "/whatif" + query
	bodies := [2][]byte{}
	for i := range deltas {
		bodies[i], _ = json.Marshal(DeltaRequest{Deltas: deltas[i]})
	}
	// Warm both variants once so the benchmark measures the steady
	// interactive loop, not first-touch cache fills.
	var resp AnalysisResponse
	for i := range bodies {
		if err := postJSON(ts.Client(), url, bodies[i], &resp); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := postJSON(ts.Client(), url, bodies[i%2], &resp); err != nil {
			b.Fatal(err)
		}
	}
}
