package serve

import (
	"context"
	"encoding/json"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
	"afdx/internal/core"
	"afdx/internal/incremental"
	"afdx/internal/netcalc"
	"afdx/internal/trajectory"
)

// The Cold/Served benchmark pair (afdx-benchjson pairs the suffixes):
// the same what-if question answered by a cold CLI-style run — full
// re-analysis of the mutated configuration — versus one warm afdx-serve
// session over real HTTP, wire round-trip included. Both compute
// bit-identical bounds (the served-conformance tier pins it); the ratio
// is the interactive-loop latency the daemon saves.

func benchNet(b *testing.B) *afdx.Network {
	b.Helper()
	spec := configgen.DefaultSpec(1)
	net, err := configgen.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// benchDeltas returns two alternating peek questions, so the served
// variant exercises the caches' A/B alternation rather than a single
// hot entry.
func benchDeltas(b *testing.B, net *afdx.Network) [2][]string {
	b.Helper()
	if len(net.VLs) < 2 {
		b.Fatal("bench config too small")
	}
	return [2][]string{
		{tightenDelta(net.VLs[0])},
		{tightenDelta(net.VLs[1])},
	}
}

func BenchmarkServeWhatIfCold(b *testing.B) {
	net := benchNet(b)
	deltas := benchDeltas(b, net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cand := net.Clone()
		ds, err := parseDeltas(deltas[i%2])
		if err != nil {
			b.Fatal(err)
		}
		if err := incremental.Apply(cand, ds...); err != nil {
			b.Fatal(err)
		}
		pg, err := afdx.BuildPortGraph(cand, afdx.Strict)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.CompareWith(pg, netcalc.DefaultOptions(), trajectory.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeWhatIfServed(b *testing.B) {
	net := benchNet(b)
	deltas := benchDeltas(b, net)
	s := New(testOptions())
	ts := newUnmanagedServer(b, s)
	defer func() {
		if err := s.Drain(context.Background()); err != nil {
			b.Error(err)
		}
	}()
	id, err := (&Script{Net: net}).RunHTTP(ts.Client(), ts.URL, 0)
	if err != nil {
		b.Fatal(err)
	}
	bodies := [2][]byte{}
	for i := range deltas {
		bodies[i], _ = json.Marshal(DeltaRequest{Deltas: deltas[i]})
	}
	// Warm both variants once so the benchmark measures the steady
	// interactive loop, not first-touch cache fills.
	var resp AnalysisResponse
	for i := range bodies {
		if err := postJSON(ts.Client(), ts.URL+"/v1/sessions/"+id+"/whatif", bodies[i], &resp); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := postJSON(ts.Client(), ts.URL+"/v1/sessions/"+id+"/whatif", bodies[i%2], &resp); err != nil {
			b.Fatal(err)
		}
	}
}
