package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/diag"
)

// postRaw posts a body and decodes the error payload.
func postRaw(t *testing.T, ts interface {
	Client() *http.Client
}, url, body string) (int, ErrorBody) {
	t.Helper()
	resp, err := ts.Client().Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("error body did not decode as ErrorBody: %v", err)
	}
	return resp.StatusCode, eb
}

// TestHTTPErrorPaths pins every client-visible failure to its HTTP
// status and SRV diagnostic code — the served projection of the CLI
// exit-code contract (lint gate = exit 3 ↔ 422, usage = exit 2 ↔
// 400/404/413). Scripted clients key on these; they must not drift.
func TestHTTPErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	net := testNet(t, 7, 8)
	cfg, err := json.Marshal(net)
	if err != nil {
		t.Fatal(err)
	}
	// A lint-rejected configuration: an out-of-contract frame size
	// (8000 > the 1518-byte Ethernet maximum) that still decodes.
	badNet := net.Clone()
	badNet.VLs[0].SMaxBytes = 8000
	badCfg, err := json.Marshal(badNet)
	if err != nil {
		t.Fatal(err)
	}
	id, err := (&Script{Net: net}).RunHTTP(ts.Client(), ts.URL, 0)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		path       string
		body       string
		wantStatus int
		wantCode   diag.Code
		wantDiags  bool
	}{
		{"malformed config JSON", "/v1/sessions", "{", http.StatusBadRequest, CodeParse, false},
		{"config with unknown field", "/v1/sessions", `{"bogus": 1}`, http.StatusBadRequest, CodeParse, false},
		{"lint-rejected config", "/v1/sessions", string(badCfg), http.StatusUnprocessableEntity, CodeLintRejected, true},
		{"bad parallel parameter", "/v1/sessions?parallel=-1", string(cfg), http.StatusBadRequest, CodeInvalidConfig, false},
		{"unknown session whatif", "/v1/sessions/nope/whatif", `{"deltas":["drop v1"]}`, http.StatusNotFound, CodeUnknownSession, false},
		{"unknown session apply", "/v1/sessions/nope/apply", `{"deltas":["drop v1"]}`, http.StatusNotFound, CodeUnknownSession, false},
		{"malformed delta JSON", "/v1/sessions/" + id + "/whatif", "not json", http.StatusBadRequest, CodeParse, false},
		{"unparseable delta", "/v1/sessions/" + id + "/whatif", `{"deltas":["frobnicate v1 2"]}`, http.StatusBadRequest, CodeBadDelta, false},
		{"empty delta batch", "/v1/sessions/" + id + "/whatif", `{"deltas":[]}`, http.StatusBadRequest, CodeBadDelta, false},
		{"delta on unknown VL", "/v1/sessions/" + id + "/whatif", `{"deltas":["drop nosuchvl"]}`, http.StatusUnprocessableEntity, CodeDeltaRejected, false},
		{"unknown analysis tier on create", "/v1/sessions?analysis=sfa", string(cfg), http.StatusBadRequest, CodeUnknownAnalysis, false},
		{"unknown analysis tier on whatif", "/v1/sessions/" + id + "/whatif?analysis=pmoo", `{"deltas":["drop v1"]}`, http.StatusBadRequest, CodeUnknownAnalysis, false},
		{"unknown analysis tier on apply", "/v1/sessions/" + id + "/apply?analysis=nope", `{"deltas":["drop v1"]}`, http.StatusBadRequest, CodeUnknownAnalysis, false},
		{"apply rejected leaves session usable", "/v1/sessions/" + id + "/apply", `{"deltas":["drop nosuchvl"]}`, http.StatusUnprocessableEntity, CodeDeltaRejected, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, eb := postRaw(t, ts, ts.URL+tc.path, tc.body)
			if status != tc.wantStatus {
				t.Errorf("status = %d, want %d", status, tc.wantStatus)
			}
			if eb.Error.Code != tc.wantCode {
				t.Errorf("code = %s, want %s", eb.Error.Code, tc.wantCode)
			}
			if eb.Error.Severity != diag.Error {
				t.Errorf("severity = %v, want error", eb.Error.Severity)
			}
			if eb.Error.Message == "" {
				t.Error("empty error message")
			}
			if tc.wantDiags && len(eb.Diagnostics) == 0 {
				t.Error("lint rejection carried no diagnostics")
			}
		})
	}

	// The rejected deltas above must not have wedged or mutated the
	// session: a no-op-free peek still answers.
	var resp AnalysisResponse
	body, _ := json.Marshal(DeltaRequest{Deltas: []string{tightenDelta(net.VLs[0])}})
	if err := postJSON(ts.Client(), ts.URL+"/v1/sessions/"+id+"/whatif", body, &resp); err != nil {
		t.Fatalf("session unusable after rejected deltas: %v", err)
	}
}

// TestOversizedBody pins the body cap to 413 + SRV004.
func TestOversizedBody(t *testing.T) {
	opts := testOptions()
	opts.MaxBodyBytes = 256
	_, ts := newTestServer(t, opts)
	big := `{"pad": "` + strings.Repeat("x", 1024) + `"}`
	status, eb := postRaw(t, ts, ts.URL+"/v1/sessions", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", status)
	}
	if eb.Error.Code != CodeBodyTooLarge {
		t.Errorf("code = %s, want %s", eb.Error.Code, CodeBodyTooLarge)
	}
}

// TestInvalidConfigNoLint pins that with the lint gate off, a
// structurally invalid configuration still fails cleanly (400 SRV011
// from session construction) rather than 500.
func TestInvalidConfigNoLint(t *testing.T) {
	opts := testOptions()
	opts.NoLint = true
	_, ts := newTestServer(t, opts)
	status, eb := postRaw(t, ts, ts.URL+"/v1/sessions", `{"name": "empty"}`)
	if status != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", status)
	}
	if eb.Error.Code != CodeInvalidConfig {
		t.Errorf("code = %s, want %s", eb.Error.Code, CodeInvalidConfig)
	}
}

// TestLintGateMirrorsBoundsExitContract cross-checks the 422 lint gate
// against the linter itself: any configuration the gate refuses must be
// one afdx-bounds' preflight would abort (exit 3), and vice versa a
// lint-clean configuration must be accepted.
func TestLintGateMirrorsBoundsExitContract(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	net := testNet(t, 19, 8)
	cfg, _ := json.Marshal(net)
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(string(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("lint-clean config refused: HTTP %d", resp.StatusCode)
	}
	bad := net.Clone()
	bad.VLs[0].SMaxBytes = afdx.MaxFrameBytes * 4
	badCfg, _ := json.Marshal(bad)
	status, eb := postRaw(t, ts, ts.URL+"/v1/sessions", string(badCfg))
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("lint-dirty config: HTTP %d, want 422", status)
	}
	for _, d := range eb.Diagnostics {
		if d.Severity == diag.Error {
			return // the gate surfaced the lint error(s), as the CLI does
		}
	}
	t.Error("422 body carried no Error-severity lint diagnostic")
}
