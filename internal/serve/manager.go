package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"afdx/internal/afdx"
	"afdx/internal/incremental"
	"afdx/internal/netcalc"
	"afdx/internal/obs"
	"afdx/internal/trajectory"
)

// manager is the bounded session pool. Each session owns one executor
// goroutine that runs requests strictly in arrival order, because
// incremental.Session is single-writer by contract: serialization is
// what lets a served session keep the bit-reproducibility guarantee
// under concurrent clients — every client observes some total order of
// committed deltas, and each round's bounds are exactly the cold bounds
// of the configuration at that point of the order.
//
// Locking: manager.mu guards the session map, the pool/draining state,
// and every managed's bookkeeping fields (lastUsed, inflightN, closing,
// stats). The incremental.Session itself is touched only by its
// executor goroutine.
type manager struct {
	opts    Options
	reg     *obs.Registry
	metrics serveMetrics
	now     func() time.Time

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when a session's inflightN drops to 0
	sessions map[string]*managed
	nextID   int
	draining bool
	stop     chan struct{} // closed on drain; stops the idle janitor
	wg       sync.WaitGroup
}

// managed is one pooled session.
type managed struct {
	id   string
	num  int // numeric part of id, for stable listing order
	reqs chan func()
	done chan struct{} // closed when the executor has fully shut down
	hub  *hub
	sess *incremental.Session

	// Guarded by manager.mu.
	lastUsed  time.Time
	inflightN int
	closing   bool
	stats     sessionStats
}

// sessionStats is the mu-guarded metadata behind SessionInfo.
type sessionStats struct {
	vls, paths, parallel, seq, applied int
}

// serveMetrics is the serving layer's instrument bundle. Request and
// round counts are pure functions of the served traffic (Deterministic
// class); eviction and drop counts observe timing (BestEffort).
type serveMetrics struct {
	requests *obs.Counter
	sessions *obs.Counter
	rounds   *obs.Counter
	deltas   *obs.Counter
	evicted  *obs.Counter
	dropped  *obs.Counter
}

func newManager(opts Options, reg *obs.Registry) *manager {
	m := &manager{
		opts:     opts,
		reg:      reg,
		sessions: map[string]*managed{},
		stop:     make(chan struct{}),
		now:      opts.Clock,
		metrics: serveMetrics{
			requests: reg.Counter("serve_http_requests", obs.Deterministic, "HTTP requests handled"),
			sessions: reg.Counter("serve_sessions_created", obs.Deterministic, "what-if sessions opened"),
			rounds:   reg.Counter("serve_analysis_rounds", obs.Deterministic, "analysis rounds served (base + whatif + apply)"),
			deltas:   reg.Counter("serve_deltas_committed", obs.Deterministic, "deltas committed by /apply"),
			evicted:  reg.Counter("serve_sessions_evicted", obs.BestEffort, "sessions evicted (idle timeout or pool pressure)"),
			dropped:  reg.Counter("serve_sse_dropped", obs.BestEffort, "SSE events dropped to slow subscribers"),
		},
	}
	if m.now == nil {
		m.now = time.Now
	}
	m.cond = sync.NewCond(&m.mu)
	if opts.IdleTimeout > 0 {
		go m.janitor()
	}
	return m
}

// sessionOptions is the engine option set every served session runs
// under: both engines' paper defaults (grouping on) at the requested
// worker count — the exact options the cold-anchor replay uses, so a
// served answer and its anchor differ only by the caches in between.
func sessionOptions(mode afdx.ValidationMode, parallel int) incremental.Options {
	nc := netcalc.DefaultOptions()
	nc.Parallel = parallel
	tr := trajectory.DefaultOptions()
	tr.Parallel = parallel
	return incremental.Options{Mode: mode, NC: nc, Trajectory: tr}
}

// create validates the configuration into a new pooled session and
// starts its executor. The pool bound is enforced here: a full pool
// first tries to evict its least-recently-used idle session, and
// refuses the upload only when every session has requests in flight.
func (m *manager) create(net *afdx.Network, parallel int) (*managed, error) {
	sess, err := incremental.NewSession(net, sessionOptions(m.opts.Mode, parallel))
	if err != nil {
		return nil, errf(CodeInvalidConfig, "%v", err)
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		sess.Close()
		return nil, errf(CodeDraining, "server is draining")
	}
	var victim *managed
	if m.opts.MaxSessions > 0 && len(m.sessions) >= m.opts.MaxSessions {
		if victim = m.lruIdleLocked(); victim == nil {
			m.mu.Unlock()
			sess.Close()
			return nil, errf(CodePoolFull, "session pool full (%d) and every session is busy", m.opts.MaxSessions)
		}
		m.removeLocked(victim)
	}
	m.nextID++
	ms := &managed{
		id:       "s" + strconv.Itoa(m.nextID),
		num:      m.nextID,
		reqs:     make(chan func(), 64),
		done:     make(chan struct{}),
		hub:      newHub(m.metrics.dropped.Inc),
		sess:     sess,
		lastUsed: m.now(),
		stats: sessionStats{
			vls:      len(net.VLs),
			paths:    len(net.AllPaths()),
			parallel: parallel,
		},
	}
	m.sessions[ms.id] = ms
	m.wg.Add(1)
	go m.run(ms)
	m.mu.Unlock()
	if victim != nil {
		close(victim.reqs)
		m.metrics.evicted.Inc()
	}
	m.metrics.sessions.Inc()
	return ms, nil
}

// run is a session's executor goroutine: it applies the queued requests
// one at a time until the request channel closes, then releases the
// session's caches and terminates the event stream.
func (m *manager) run(ms *managed) {
	defer m.wg.Done()
	for fn := range ms.reqs {
		fn()
	}
	ms.sess.Close()
	ms.hub.publish("closed", map[string]string{"session": ms.id})
	ms.hub.close()
	close(ms.done)
}

// submit runs fn on the session's executor and waits for its result,
// bounded by the request timeout. A timed-out request abandons the
// response only — work already queued still executes in order, and its
// outcome is streamed on the session's event feed.
func (m *manager) submit(ctx context.Context, id string, fn func(ctx context.Context, sess *incremental.Session, ms *managed) (any, error)) (any, error) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, errf(CodeDraining, "server is draining")
	}
	ms := m.sessions[id]
	if ms == nil || ms.closing {
		m.mu.Unlock()
		return nil, errf(CodeUnknownSession, "unknown session %q", id)
	}
	ms.inflightN++
	ms.lastUsed = m.now()
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		ms.inflightN--
		if ms.inflightN == 0 {
			m.cond.Broadcast()
		}
		m.mu.Unlock()
	}()

	if m.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.opts.RequestTimeout)
		defer cancel()
	}
	ctx = obs.WithRegistry(ctx, m.reg)

	type result struct {
		out any
		err error
	}
	reply := make(chan result, 1) // buffered: the executor never blocks on an abandoned request
	task := func() {
		out, err := fn(ctx, ms.sess, ms)
		reply <- result{out, err}
	}
	select {
	case ms.reqs <- task:
	case <-ms.done:
		return nil, errf(CodeUnknownSession, "session %q closed", id)
	case <-ctx.Done():
		return nil, ctxErr(ctx)
	}
	select {
	case r := <-reply:
		return r.out, r.err
	case <-ctx.Done():
		return nil, ctxErr(ctx)
	}
}

func ctxErr(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return errf(CodeTimeout, "request timed out")
	}
	return errf(CodeTimeout, "request cancelled: %v", ctx.Err())
}

// lruIdleLocked returns the least-recently-used session with no request
// in flight, or nil. Caller holds m.mu.
func (m *manager) lruIdleLocked() *managed {
	var victim *managed
	for _, ms := range m.sessions {
		if ms.closing || ms.inflightN > 0 {
			continue
		}
		if victim == nil || ms.lastUsed.Before(victim.lastUsed) ||
			(ms.lastUsed.Equal(victim.lastUsed) && ms.num < victim.num) {
			victim = ms
		}
	}
	return victim
}

// removeLocked marks a session closing and unlinks it from the map so
// lookups fail immediately. The caller closes ms.reqs after releasing
// m.mu (only once inflightN is 0 — guaranteed for idle victims, waited
// on elsewhere); the executor then drains and shuts down.
func (m *manager) removeLocked(ms *managed) {
	ms.closing = true
	delete(m.sessions, ms.id)
}

// close terminates one session: waits out its in-flight requests, then
// closes the executor. Used by DELETE and by upload-failure cleanup.
func (m *manager) close(id string) error {
	m.mu.Lock()
	ms := m.sessions[id]
	if ms == nil || ms.closing {
		m.mu.Unlock()
		return errf(CodeUnknownSession, "unknown session %q", id)
	}
	m.removeLocked(ms)
	for ms.inflightN > 0 {
		m.cond.Wait()
	}
	m.mu.Unlock()
	close(ms.reqs)
	return nil
}

// evictIdle closes every session idle for at least olderThan and
// returns how many it evicted.
func (m *manager) evictIdle(olderThan time.Duration) int {
	cutoff := m.now().Add(-olderThan)
	m.mu.Lock()
	var victims []*managed
	for _, ms := range m.sessions {
		if !ms.closing && ms.inflightN == 0 && !ms.lastUsed.After(cutoff) {
			victims = append(victims, ms)
			m.removeLocked(ms)
		}
	}
	m.mu.Unlock()
	// Creation order, not map order: teardown is observable through the
	// eviction log lines and SSE "closed" events.
	sort.Slice(victims, func(i, j int) bool { return victims[i].num < victims[j].num })
	for _, ms := range victims {
		close(ms.reqs)
		m.metrics.evicted.Inc()
	}
	return len(victims)
}

// janitor periodically evicts idle sessions until drain.
func (m *manager) janitor() {
	period := m.opts.IdleTimeout / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.evictIdle(m.opts.IdleTimeout)
		case <-m.stop:
			return
		}
	}
}

// drain stops accepting work, waits for in-flight requests, shuts every
// executor down, and returns when all have exited or ctx expires.
func (m *manager) drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	close(m.stop)
	var all []*managed
	for _, ms := range m.sessions {
		if !ms.closing {
			all = append(all, ms)
			ms.closing = true
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].num < all[j].num })
	// In-flight requests finish on their own (each is bounded by the
	// request timeout); new ones are already refused by the draining
	// flag. Wait them out session by session, then close the executors.
	for _, ms := range all {
		for ms.inflightN > 0 {
			m.cond.Wait()
		}
		delete(m.sessions, ms.id)
	}
	m.mu.Unlock()
	for _, ms := range all {
		close(ms.reqs)
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// info returns one session's SessionInfo, or nil.
func (m *manager) info(id string) *SessionInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms := m.sessions[id]
	if ms == nil || ms.closing {
		return nil
	}
	return m.infoLocked(ms)
}

func (m *manager) infoLocked(ms *managed) *SessionInfo {
	return &SessionInfo{
		ID:       ms.id,
		VLs:      ms.stats.vls,
		Paths:    ms.stats.paths,
		Parallel: ms.stats.parallel,
		Seq:      ms.stats.seq,
		Applied:  ms.stats.applied,
		IdleMs:   m.now().Sub(ms.lastUsed).Milliseconds(),
	}
}

// list returns every live session in creation order.
func (m *manager) list() SessionList {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := SessionList{Sessions: []SessionInfo{}}
	mss := make([]*managed, 0, len(m.sessions))
	for _, ms := range m.sessions {
		mss = append(mss, ms)
	}
	sort.Slice(mss, func(i, j int) bool { return mss[i].num < mss[j].num })
	for _, ms := range mss {
		out.Sessions = append(out.Sessions, *m.infoLocked(ms))
	}
	return out
}

// updateStats mutates a session's mu-guarded metadata (executor-side).
func (m *manager) updateStats(ms *managed, fn func(st *sessionStats)) {
	m.mu.Lock()
	fn(&ms.stats)
	m.mu.Unlock()
}

// size returns the live session count.
func (m *manager) size() (n int, draining bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions), m.draining
}
