// Package serve is the analysis-as-a-service layer: a stdlib-only
// HTTP/JSON surface over incremental what-if sessions. A client uploads
// a configuration (lint pre-flight gated, exactly as afdx-bounds gates
// a cold run), receives a session ID, and POSTs ParseDelta-format delta
// batches to /whatif (peek, non-committing) or /apply (commit); each
// request returns the re-analysed per-path bounds. An SSE endpoint
// streams every analysis round plus the deterministic counter totals.
//
// Determinism contract for served answers: every bound a session
// returns is exactly `==` the bound a cold afdx-bounds run computes on
// the same configuration — the same guarantee the incremental layer
// pins, carried over the wire by encoding/json's shortest-round-trip
// float64 form and enforced end to end by the served-conformance tier
// (replay.go and internal/conformance's served-parity invariant).
//
// Because incremental.Session is single-writer, each session is owned
// by one executor goroutine and requests are serialized in arrival
// order; concurrent clients on one session observe a total order of
// committed deltas. The pool is bounded with LRU idle eviction, bodies
// are size-capped, requests time-bounded, and Drain shuts the pool
// down gracefully.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"afdx/internal/afdx"
	"afdx/internal/incremental"
	"afdx/internal/lint"
	"afdx/internal/netcalc"
	"afdx/internal/obs"
	"afdx/internal/obs/oplog"
)

// Options configures a Server. The zero value is usable; DefaultOptions
// fills in the production limits.
type Options struct {
	// Mode is the ARINC 664 contract validation mode sessions run
	// under (Strict unless set).
	Mode afdx.ValidationMode
	// NoLint disables the upload lint gate (afdx-bounds -no-lint).
	NoLint bool
	// Parallel is the default engine worker count for new sessions
	// (0 = all CPUs); a client overrides it per session with
	// ?parallel=N. Bounds do not depend on it.
	Parallel int
	// MaxSessions bounds the pool; a full pool evicts its LRU idle
	// session, and refuses the upload only when every session is
	// busy. 0 = unbounded.
	MaxSessions int
	// MaxBodyBytes caps request bodies. 0 = unlimited.
	MaxBodyBytes int64
	// RequestTimeout bounds each request end to end, queueing
	// included. 0 = unbounded.
	RequestTimeout time.Duration
	// IdleTimeout evicts sessions idle this long. 0 disables the
	// janitor (tests evict explicitly via EvictIdle).
	IdleTimeout time.Duration
	// KeepAlive is the SSE keepalive-comment interval (default 15s
	// under DefaultOptions; 0 disables).
	KeepAlive time.Duration
	// Registry receives the serving metrics and is threaded to the
	// engines of every request. nil = a fresh private registry.
	Registry *obs.Registry
	// Clock overrides time.Now for idle-eviction tests.
	Clock func() time.Time
	// Logger receives one structured record per HTTP request and per
	// applied delta. nil = logging off (records are discarded).
	Logger *slog.Logger
	// TraceRing retains completed request traces for /v1/trace; nil
	// disables per-request tracing and retention.
	TraceRing *oplog.Ring
	// SlowRequestUs is the slow-request log threshold in microseconds;
	// 0 = adaptive (live p99 of the latency histogram, 1ms floor).
	SlowRequestUs int64
}

// DefaultOptions returns the daemon's production limits.
func DefaultOptions() Options {
	return Options{
		Mode:           afdx.Strict,
		MaxSessions:    16,
		MaxBodyBytes:   8 << 20,
		RequestTimeout: 2 * time.Minute,
		IdleTimeout:    30 * time.Minute,
		KeepAlive:      15 * time.Second,
		TraceRing:      oplog.NewRing(256),
	}
}

// Server is the serving layer: the bounded session pool plus its HTTP
// surface. Create with New, mount Handler, stop with Drain.
type Server struct {
	opts    Options
	reg     *obs.Registry
	mgr     *manager
	log     *slog.Logger
	latency *obs.Histogram
	reqSeq  atomic.Int64
}

// New builds a Server. A nil-Registry option gets a private registry so
// the metrics endpoint always works; a nil-Logger option discards.
func New(opts Options) *Server {
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := opts.Logger
	if log == nil {
		log = oplog.Discard()
	}
	return &Server{
		opts: opts,
		reg:  reg,
		mgr:  newManager(opts, reg),
		log:  log,
		latency: reg.Histogram("serve_request_duration_us", obs.BestEffort,
			"HTTP request latency, µs (wall clock; slow-request threshold input)"),
	}
}

// Registry returns the server's metric registry (serving counters plus
// whatever the engines record during requests).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Drain stops accepting requests, waits out in-flight work, closes
// every session, and returns when the pool is down or ctx expires.
func (s *Server) Drain(ctx context.Context) error { return s.mgr.drain(ctx) }

// EvictIdle closes every session idle for at least olderThan and
// returns how many were evicted (the janitor's entry point, exported
// for tests and operational tooling).
func (s *Server) EvictIdle(olderThan time.Duration) int { return s.mgr.evictIdle(olderThan) }

// SessionCount returns the number of live sessions (the runtime
// sampler's session-pool occupancy gauge reads this).
func (s *Server) SessionCount() int {
	n, _ := s.mgr.size()
	return n
}

// Handler returns the server's HTTP surface:
//
//	POST   /v1/sessions              upload a configuration, open a session
//	GET    /v1/sessions              list live sessions
//	GET    /v1/sessions/{id}         one session's info
//	DELETE /v1/sessions/{id}         close a session
//	POST   /v1/sessions/{id}/whatif  peek a delta batch (non-committing)
//	POST   /v1/sessions/{id}/apply   commit a delta batch
//	GET    /v1/sessions/{id}/events  SSE stream of analysis rounds
//	GET    /v1/metrics               metric snapshot (JSON; Prometheus
//	                                 text via ?format=prometheus or
//	                                 Accept negotiation)
//	GET    /v1/trace                 retained request traces, newest first
//	GET    /v1/trace/{id}            one trace as Chrome-trace JSON
//	GET    /v1/healthz               liveness + pool size
//
// The POST routes accept ?provenance=1 to attach a per-bound
// provenance record to the response and its SSE event.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleInfo)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/whatif", func(w http.ResponseWriter, r *http.Request) {
		s.handleDeltas(w, r, false)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/apply", func(w http.ResponseWriter, r *http.Request) {
		s.handleDeltas(w, r, true)
	})
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/trace", s.handleTraceList)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTraceGet)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return s.observe(mux)
}

// body wraps the request body with the server's size cap.
func (s *Server) body(w http.ResponseWriter, r *http.Request) *http.Request {
	if s.opts.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	return r
}

// analysisParam resolves a request's ?analysis= NC tier selection
// through the shared netcalc parser (absent = the session default,
// WCNC). An unknown tier is CodeUnknownAnalysis — HTTP 400, exit-code-2
// territory, matching the CLIs' -analysis flag.
func analysisParam(r *http.Request) (netcalc.Analysis, error) {
	v := r.URL.Query().Get("analysis")
	if v == "" {
		return netcalc.AnalysisWCNC, nil
	}
	a, err := netcalc.ParseAnalysis(v)
	if err != nil {
		return 0, errf(CodeUnknownAnalysis, "%v", err)
	}
	return a, nil
}

// decodeErr maps a body read/decode failure to the wire vocabulary.
func decodeErr(err error) error {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return errf(CodeBodyTooLarge, "request body over the %d-byte limit", tooBig.Limit)
	}
	return errf(CodeParse, "%v", err)
}

// handleCreate uploads a configuration: decode, lint-gate, open a
// pooled session, run the base analysis, and return round 0.
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if _, draining := s.mgr.size(); draining {
		writeError(w, errf(CodeDraining, "server is draining"))
		return
	}
	r = s.body(w, r)
	tier, err := analysisParam(r)
	if err != nil {
		writeError(w, err)
		return
	}
	parallel := s.opts.Parallel
	if v := r.URL.Query().Get("parallel"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, errf(CodeInvalidConfig, "bad parallel value %q (want a non-negative integer)", v))
			return
		}
		parallel = n
	}
	net, err := afdx.DecodeJSON(r.Body)
	if err != nil {
		writeError(w, decodeErr(err))
		return
	}
	if !s.opts.NoLint {
		lo := lint.DefaultOptions()
		lo.Mode = s.opts.Mode
		if rep := lint.Run(net, lo); rep.HasErrors() {
			writeError(w, &serveError{
				code:        CodeLintRejected,
				msg:         "infeasible configuration: " + strconv.Itoa(rep.Errors) + " lint error(s)",
				diagnostics: rep.Diagnostics,
			})
			return
		}
	}
	ms, err := s.mgr.create(net, parallel)
	if err != nil {
		writeError(w, err)
		return
	}
	out, err := s.mgr.submit(r.Context(), ms.id, s.analysisTask(false, nil, nil, wantProvenance(r), tier))
	if err != nil {
		// A session whose base analysis failed holds no useful warm
		// state; close it so the client can retry cleanly.
		s.mgr.close(ms.id) //nolint:errcheck // already gone is fine
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, out)
}

// handleDeltas serves /whatif (peek) and /apply (commit): parse the
// batch, run it on the session's executor, return the round's bounds.
func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request, commit bool) {
	r = s.body(w, r)
	tier, err := analysisParam(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req DeltaRequest
	if err := decodeJSONBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ds, err := parseDeltas(req.Deltas)
	if err != nil {
		writeError(w, err)
		return
	}
	out, err := s.mgr.submit(r.Context(), r.PathValue("id"), s.analysisTask(commit, req.Deltas, ds, wantProvenance(r), tier))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// decodeJSONBody strictly decodes one JSON value.
func decodeJSONBody(r *http.Request, v any) error {
	dec := newStrictDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		return decodeErr(err)
	}
	return nil
}

// analysisTask builds the executor closure of one analysis round: the
// base analysis (no deltas), a peek (/whatif), or a commit (/apply),
// each at the request's NC analysis tier. It runs on the session's
// executor goroutine, so the Session calls are serialized by
// construction. With prov set the response carries the round's
// provenance record.
func (s *Server) analysisTask(commit bool, cmds []string, ds []incremental.Delta, prov bool, tier netcalc.Analysis) func(ctx context.Context, sess *incremental.Session, ms *managed) (any, error) {
	return func(ctx context.Context, sess *incremental.Session, ms *managed) (any, error) {
		var res *incremental.Result
		var err error
		switch {
		case len(ds) == 0:
			res, err = sess.AnalyzeTier(ctx, tier)
		case commit:
			if err = sess.Apply(ds...); err == nil {
				res, err = sess.AnalyzeTier(ctx, tier)
			}
		default:
			res, err = sess.PeekTier(ctx, tier, ds...)
		}
		if err != nil {
			var bad *incremental.BadDeltaError
			switch {
			case errors.As(err, &bad):
				return nil, &serveError{code: CodeDeltaRejected, msg: bad.Error()}
			case ctx.Err() != nil:
				return nil, ctxErr(ctx)
			default:
				return nil, errf(CodeAnalysis, "%v", err)
			}
		}
		resp := AnalysisResponse{
			Session:   ms.id,
			Committed: commit || len(ds) == 0,
			Deltas:    cmds,
			Analysis:  tier.String(),
			Paths:     pathBounds(res.Comparison),
		}
		var workers int
		s.mgr.updateStats(ms, func(st *sessionStats) {
			resp.Seq = st.seq
			st.seq++
			if commit && len(ds) > 0 {
				st.applied += len(ds)
				st.vls = len(sess.PortGraph().Net.VLs)
				st.paths = len(resp.Paths)
			}
			workers = st.parallel
		})
		if prov {
			resp.Provenance = s.provenance(sess, ds, commit, workers, tier)
		}
		s.mgr.metrics.rounds.Inc()
		if commit {
			s.mgr.metrics.deltas.Add(int64(len(ds)))
			for _, cmd := range cmds {
				s.log.Info("delta applied", "session", ms.id, "seq", resp.Seq, "cmd", cmd)
			}
		}
		ms.hub.publish("analysis", AnalysisEvent{
			AnalysisResponse: resp,
			Counters:         countersMap(s.reg),
		})
		return resp, nil
	}
}

// countersMap projects the registry's Deterministic-class counters for
// the SSE feed (BestEffort values stay off the stream so two replays
// of the same traffic produce comparable event sequences).
func countersMap(reg *obs.Registry) map[string]int64 {
	snap := reg.Snapshot().Deterministic()
	out := make(map[string]int64, len(snap.Counters))
	for _, c := range snap.Counters {
		out[c.Name] = c.Value
	}
	return out
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.list())
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info := s.mgr.info(id)
	if info == nil {
		writeError(w, errf(CodeUnknownSession, "unknown session %q", id))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.close(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleEvents attaches an SSE subscriber to a session's event hub.
// The stream opens with a "session" hello frame and then carries one
// "analysis" event per round (any client's), ending with "closed" when
// the session is deleted, evicted, or drained.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mgr.mu.Lock()
	ms := s.mgr.sessions[id]
	var h *hub
	var hello []byte
	if ms != nil && !ms.closing {
		h = ms.hub
		hello, _ = json.Marshal(s.mgr.infoLocked(ms))
	}
	s.mgr.mu.Unlock()
	if h == nil {
		writeError(w, errf(CodeUnknownSession, "unknown session %q", id))
		return
	}
	serveSSE(w, r, h, event{id: 0, name: "session", data: hello}, s.opts.KeepAlive)
}

// handleMetrics serves the metric snapshot: JSON by default, the
// Prometheus text exposition format on ?format=prometheus or when the
// Accept header prefers text/plain or OpenMetrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", oplog.PrometheusContentType)
		w.WriteHeader(http.StatusOK)
		oplog.WritePrometheus(w, s.reg.Snapshot()) //nolint:errcheck // the client went away; nothing to do
		return
	}
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	n, draining := s.mgr.size()
	h := Health{Status: "ok", Sessions: n, Draining: draining}
	if draining {
		h.Status = "draining"
	}
	writeJSON(w, http.StatusOK, h)
}
