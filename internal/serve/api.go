package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"afdx/internal/afdx"
	"afdx/internal/core"
	"afdx/internal/diag"
	"afdx/internal/incremental"
)

// The serving layer's diagnostic codes, in the internal/diag vocabulary
// (stable machine-readable code + severity + message). Scripted clients
// key on these, not on the message text.
const (
	// CodeParse marks a request body that could not be decoded (config
	// upload or delta request JSON). HTTP 400.
	CodeParse diag.Code = "SRV001"
	// CodeLintRejected marks a configuration the lint pre-flight gate
	// refused — the served twin of afdx-bounds exit code 3. HTTP 422;
	// the error body carries the lint diagnostics.
	CodeLintRejected diag.Code = "SRV002"
	// CodeUnknownSession marks a session ID that does not exist (never
	// created, evicted, or closed). HTTP 404.
	CodeUnknownSession diag.Code = "SRV003"
	// CodeBodyTooLarge marks a request body over the server's limit.
	// HTTP 413.
	CodeBodyTooLarge diag.Code = "SRV004"
	// CodeBadDelta marks a delta command ParseDelta rejected. HTTP 400.
	CodeBadDelta diag.Code = "SRV005"
	// CodeDeltaRejected marks a parseable delta batch the session
	// refused (unknown VL, failed re-validation); the session is
	// unchanged. HTTP 422.
	CodeDeltaRejected diag.Code = "SRV006"
	// CodeDraining marks a request received during graceful shutdown.
	// HTTP 503.
	CodeDraining diag.Code = "SRV007"
	// CodePoolFull marks a session upload the bounded pool could not
	// place because every session is busy. HTTP 503.
	CodePoolFull diag.Code = "SRV008"
	// CodeTimeout marks a request abandoned by the per-request timeout;
	// an already-committed apply still completes and is streamed on the
	// session's event feed. HTTP 504.
	CodeTimeout diag.Code = "SRV009"
	// CodeAnalysis marks an engine failure on a validated configuration
	// — the served twin of afdx-bounds exit code 1. HTTP 500.
	CodeAnalysis diag.Code = "SRV010"
	// CodeInvalidConfig marks an uploaded configuration that decoded
	// but failed structural validation with linting disabled (with the
	// gate on, SRV002 reports it first) or carried bad parameters
	// (e.g. a negative ?parallel). HTTP 400.
	CodeInvalidConfig diag.Code = "SRV011"
	// CodeUnknownTrace marks a /v1/trace/{id} lookup for a trace that
	// was never retained or has been evicted from the ring. HTTP 404.
	CodeUnknownTrace diag.Code = "SRV012"
	// CodeUnknownAnalysis marks an ?analysis= value naming no NC tier;
	// the shared netcalc parser produces the message, so the served
	// vocabulary matches the CLIs' -analysis flag exactly. HTTP 400.
	CodeUnknownAnalysis diag.Code = "SRV013"
)

// ErrorBody is the JSON error payload of every non-2xx response: one
// leading diagnostic plus, for lint rejections, the full finding list.
type ErrorBody struct {
	Error       diag.Diagnostic   `json:"error"`
	Diagnostics []diag.Diagnostic `json:"diagnostics,omitempty"`
}

// DeltaRequest is the body of POST /v1/sessions/{id}/whatif and /apply:
// delta commands in the ParseDelta syntax ("bag v1 16", "drop v5", ...),
// applied in order as one atomic batch.
type DeltaRequest struct {
	Deltas []string `json:"deltas"`
}

// PathBound is one path's served bounds — the same five figures an
// afdx-bounds run prints, as raw float64s. encoding/json renders
// float64 in the shortest form that parses back to the identical bit
// pattern, so a decoded PathBound compares `==` against the engines'
// in-process values; the served-conformance tier relies on this.
type PathBound struct {
	Path         string  `json:"path"`
	NCUs         float64 `json:"ncUs"`
	TrajectoryUs float64 `json:"trajectoryUs"`
	BestUs       float64 `json:"bestUs"`
	MinUs        float64 `json:"minUs"`
	JitterUs     float64 `json:"jitterUs"`
}

// AnalysisResponse is one analysis round: the session, a per-session
// round number, whether the deltas were committed (apply) or peeked
// (whatif), the NC analysis tier the round ran under, and every path's
// bounds in (VL, path index) order. Provenance is present only when
// the request asked for it (?provenance=1).
type AnalysisResponse struct {
	Session   string   `json:"session"`
	Seq       int      `json:"seq"`
	Committed bool     `json:"committed"`
	Deltas    []string `json:"deltas,omitempty"`
	// Analysis names the NC tier ("TFA", "WCNC", "FIFO") this round's
	// ncUs/bestUs/minUs figures were computed under (?analysis=,
	// default WCNC). Cold verification replays the same tier.
	Analysis   string      `json:"analysis"`
	Paths      []PathBound `json:"paths"`
	Provenance *Provenance `json:"provenance,omitempty"`
}

// Provenance is the audit record of one analysis round: enough to
// answer, after the fact, which configuration, engine variant, and
// cache path produced these bounds. The digest is FNV-1a 64 over the
// canonical JSON of the exact configuration the bounds describe (for
// a peek: committed state plus the peeked batch — the same
// reconstruction VerifyCold anchors against). Hit/recompute totals
// are the server-wide Deterministic incremental counters at response
// time; ObsVersion pins the record schema.
type Provenance struct {
	// ConfigFNV64 is the hex FNV-1a 64-bit digest of the analysed
	// configuration's canonical JSON.
	ConfigFNV64 string `json:"configFnv64"`
	// Engines names the bound producers ("netcalc+trajectory": both
	// engines run and the per-path best is served).
	Engines string `json:"engines"`
	// Analysis names the NC tier the round's bounds were computed
	// under ("TFA", "WCNC", "FIFO").
	Analysis string `json:"analysis"`
	// TrajectoryPath is the trajectory evaluation variant ("flat":
	// the flattened hot path; the reference walker exists only for
	// differential tests).
	TrajectoryPath string `json:"trajectoryPath"`
	// Workers is the session's engine worker count (0 = all CPUs).
	// Bounds do not depend on it.
	Workers int `json:"workers"`
	// PortHits / PortRecomputes are netcalc.incr_port_{hits,recomputes}.
	PortHits       int64 `json:"portHits"`
	PortRecomputes int64 `json:"portRecomputes"`
	// PathHits / PathRecomputes are trajectory.incr_path_{hits,recomputes}.
	PathHits       int64 `json:"pathHits"`
	PathRecomputes int64 `json:"pathRecomputes"`
	// ObsVersion is the observability-layer schema tag (oplog.Version).
	ObsVersion string `json:"obsVersion"`
}

// AnalysisEvent is the SSE "analysis" event payload: the response every
// subscriber sees for each round, plus the server's Deterministic-class
// counter totals at publish time (engine cache hits/recomputes, served
// request counts).
type AnalysisEvent struct {
	AnalysisResponse
	Counters map[string]int64 `json:"counters,omitempty"`
}

// SessionInfo describes one live session.
type SessionInfo struct {
	ID    string `json:"id"`
	VLs   int    `json:"vls"`
	Paths int    `json:"paths"`
	// Parallel is the session's engine worker count (0 = all CPUs).
	// Bounds do not depend on it.
	Parallel int `json:"parallel"`
	// Seq counts analysis rounds served (base analysis = 0).
	Seq int `json:"seq"`
	// Applied counts committed deltas.
	Applied int `json:"appliedDeltas"`
	// IdleMs is the time since the session last served a request.
	IdleMs int64 `json:"idleMs"`
}

// SessionList is the GET /v1/sessions payload, sorted by ID.
type SessionList struct {
	Sessions []SessionInfo `json:"sessions"`
}

// Health is the GET /v1/healthz payload.
type Health struct {
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
	Draining bool   `json:"draining"`
}

// httpStatus maps a serve diagnostic code to its HTTP status — the
// served projection of the CLI exit-code contract (lint gate = 3 ↔ 422,
// usage/parse = 2 ↔ 400/404/413, analysis failure = 1 ↔ 500).
func httpStatus(code diag.Code) int {
	switch code {
	case CodeParse, CodeBadDelta, CodeInvalidConfig, CodeUnknownAnalysis:
		return http.StatusBadRequest
	case CodeLintRejected, CodeDeltaRejected:
		return http.StatusUnprocessableEntity
	case CodeUnknownSession, CodeUnknownTrace:
		return http.StatusNotFound
	case CodeBodyTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeDraining, CodePoolFull:
		return http.StatusServiceUnavailable
	case CodeTimeout:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// serveError is an error carrying its wire representation.
type serveError struct {
	code        diag.Code
	msg         string
	diagnostics []diag.Diagnostic
}

func (e *serveError) Error() string { return string(e.code) + ": " + e.msg }

func errf(code diag.Code, format string, args ...any) *serveError {
	return &serveError{code: code, msg: fmt.Sprintf(format, args...)}
}

// writeError renders any error as a diag-style JSON body. Errors that
// are not *serveError report as CodeAnalysis (HTTP 500).
func writeError(w http.ResponseWriter, err error) {
	se, ok := err.(*serveError)
	if !ok {
		se = &serveError{code: CodeAnalysis, msg: err.Error()}
	}
	body := ErrorBody{
		Error:       diag.Diagnostic{Code: se.code, Severity: diag.Error, Message: se.msg},
		Diagnostics: se.diagnostics,
	}
	writeJSON(w, httpStatus(se.code), body)
}

// newStrictDecoder decodes JSON rejecting unknown fields, so a typo'd
// request key fails loudly instead of silently doing nothing.
func newStrictDecoder(r io.Reader) *json.Decoder {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	return dec
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client went away; nothing to do
}

// pathBounds renders a comparison as the wire bound list, in canonical
// (VL, path index) order.
func pathBounds(cmp *core.Comparison) []PathBound {
	ids := make([]afdx.PathID, 0, len(cmp.PerPath))
	for pid := range cmp.PerPath {
		ids = append(ids, pid)
	}
	afdx.SortPathIDs(ids)
	out := make([]PathBound, 0, len(ids))
	for _, pid := range ids {
		pc := cmp.PerPath[pid]
		out = append(out, PathBound{
			Path:         pid.String(),
			NCUs:         pc.NCUs,
			TrajectoryUs: pc.TrajectoryUs,
			BestUs:       pc.BestUs,
			MinUs:        pc.MinUs,
			JitterUs:     pc.JitterUs,
		})
	}
	return out
}

// ParsePathID parses the wire path form "vl/idx" (PathID.String).
func ParsePathID(s string) (afdx.PathID, error) {
	i := strings.LastIndex(s, "/")
	if i <= 0 || i == len(s)-1 {
		return afdx.PathID{}, fmt.Errorf("serve: bad path id %q (want vl/index)", s)
	}
	idx, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return afdx.PathID{}, fmt.Errorf("serve: bad path id %q: %v", s, err)
	}
	return afdx.PathID{VL: s[:i], PathIdx: idx}, nil
}

// parseDeltas parses a delta request's commands, mapping failures to
// the wire vocabulary.
func parseDeltas(cmds []string) ([]incremental.Delta, error) {
	if len(cmds) == 0 {
		return nil, errf(CodeBadDelta, "empty delta batch")
	}
	out := make([]incremental.Delta, 0, len(cmds))
	for _, c := range cmds {
		d, err := incremental.ParseDelta(c)
		if err != nil {
			return nil, errf(CodeBadDelta, "%v", err)
		}
		out = append(out, d)
	}
	return out, nil
}
