package serve

import (
	"context"
	"encoding/json"
	"testing"

	"afdx/internal/netcalc"
)

// TestServedTierLadder drives one session through every tier on the
// same committed configuration and checks the served responses carry
// the tier name, respect the tightness ordering TFA >= WCNC >= FIFO on
// every path's NC figure, and anchor bit-identically against cold runs
// of their own tier.
func TestServedTierLadder(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	net := testNet(t, 11, 16)
	cfg, err := json.Marshal(net)
	if err != nil {
		t.Fatal(err)
	}
	var base AnalysisResponse
	if err := postJSON(ts.Client(), ts.URL+"/v1/sessions?parallel=1", cfg, &base); err != nil {
		t.Fatal(err)
	}
	if base.Analysis != "WCNC" {
		t.Errorf("base round analysis = %q, want WCNC default", base.Analysis)
	}

	// Peek the same tightening delta under each tier; the session's
	// committed state never changes, so the three answers describe one
	// configuration.
	delta := tightenDelta(net.VLs[0])
	body, _ := json.Marshal(DeltaRequest{Deltas: []string{delta}})
	byTier := map[string]*AnalysisResponse{}
	for _, tier := range netcalc.Analyses() {
		var resp AnalysisResponse
		url := ts.URL + "/v1/sessions/" + base.Session + "/whatif?analysis=" + tier.String()
		if err := postJSON(ts.Client(), url, body, &resp); err != nil {
			t.Fatalf("%v: %v", tier, err)
		}
		if resp.Analysis != tier.String() {
			t.Errorf("%v: response analysis = %q", tier, resp.Analysis)
		}
		byTier[tier.String()] = &resp
	}
	tfa, wcnc, fifo := byTier["TFA"], byTier["WCNC"], byTier["FIFO"]
	if len(tfa.Paths) == 0 || len(tfa.Paths) != len(wcnc.Paths) || len(wcnc.Paths) != len(fifo.Paths) {
		t.Fatalf("path count mismatch across tiers: %d/%d/%d", len(tfa.Paths), len(wcnc.Paths), len(fifo.Paths))
	}
	for i := range wcnc.Paths {
		pt, pw, pf := tfa.Paths[i], wcnc.Paths[i], fifo.Paths[i]
		if pt.Path != pw.Path || pw.Path != pf.Path {
			t.Fatalf("path order diverged across tiers at %d", i)
		}
		if pw.NCUs > pt.NCUs {
			t.Errorf("%s: WCNC %v looser-ordering-violating TFA %v", pw.Path, pw.NCUs, pt.NCUs)
		}
		if pf.NCUs > pw.NCUs {
			t.Errorf("%s: FIFO %v looser than WCNC %v", pf.Path, pf.NCUs, pw.NCUs)
		}
	}

	// Each tier's served round anchors exactly against a cold run at
	// that tier (the recorded Analysis field drives the anchor).
	sc := &Script{Net: net.Clone(), Base: &base}
	for _, tier := range netcalc.Analyses() {
		sc.Steps = append(sc.Steps, Step{
			Deltas:   []string{delta},
			Analysis: tier.String(),
			Response: byTier[tier.String()],
		})
	}
	mm, err := sc.VerifyCold(context.Background(), testOptions().Mode, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mm {
		t.Errorf("served != cold: %s", m)
	}
}

// TestServedTierProvenance pins the provenance record's tier field.
func TestServedTierProvenance(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	net := testNet(t, 13, 8)
	cfg, err := json.Marshal(net)
	if err != nil {
		t.Fatal(err)
	}
	var base AnalysisResponse
	if err := postJSON(ts.Client(), ts.URL+"/v1/sessions?provenance=1&analysis=fifo", cfg, &base); err != nil {
		t.Fatal(err)
	}
	if base.Analysis != "FIFO" {
		t.Errorf("base analysis = %q, want FIFO", base.Analysis)
	}
	if base.Provenance == nil || base.Provenance.Analysis != "FIFO" {
		t.Errorf("provenance = %+v, want Analysis FIFO", base.Provenance)
	}
	body, _ := json.Marshal(DeltaRequest{Deltas: []string{tightenDelta(net.VLs[0])}})
	var resp AnalysisResponse
	if err := postJSON(ts.Client(), ts.URL+"/v1/sessions/"+base.Session+"/apply?provenance=1&analysis=tfa", body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Provenance == nil || resp.Provenance.Analysis != "TFA" {
		t.Errorf("apply provenance = %+v, want Analysis TFA", resp.Provenance)
	}
}
