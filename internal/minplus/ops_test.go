package minplus

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddAffine(t *testing.T) {
	c := Add(Affine(10, 2), Affine(5, 3))
	if got := c.Eval(0); !almostEq(got, 15) {
		t.Errorf("Eval(0) = %g, want 15", got)
	}
	if got := c.Eval(4); !almostEq(got, 35) {
		t.Errorf("Eval(4) = %g, want 35", got)
	}
	if c.NumSegments() != 1 {
		t.Errorf("sum of affine curves should be affine, got %v", c)
	}
}

func TestAddWithBreakpoints(t *testing.T) {
	a := RateLatency(10, 2)
	b := RateLatency(5, 4)
	c := Add(a, b)
	for _, x := range []float64{0, 1, 2, 3, 4, 5, 10} {
		want := a.Eval(x) + b.Eval(x)
		if got := c.Eval(x); !almostEq(got, want) {
			t.Errorf("Add.Eval(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestSumEmptyIsZero(t *testing.T) {
	if got := Sum().Eval(99); got != 0 {
		t.Errorf("Sum() should be zero curve, Eval(99)=%g", got)
	}
}

func TestMinBasic(t *testing.T) {
	// The grouping curve of the paper: min(sum of leaky buckets, link shaping).
	sum := Add(Affine(4000, 1), Affine(4000, 1))
	shape := Affine(4000, 100)
	g := Min(sum, shape)
	for _, x := range []float64{0, 1, 10, 40, 41, 100, 1e4} {
		want := math.Min(sum.Eval(x), shape.Eval(x))
		if got := g.Eval(x); !almostEq(got, want) {
			t.Errorf("Min.Eval(%g) = %g, want %g", x, got, want)
		}
	}
	if !g.IsConcave() {
		t.Errorf("grouped envelope should be concave: %v", g)
	}
}

func TestMinFindsInteriorCrossing(t *testing.T) {
	a := Affine(0, 3)  // 3t
	b := Affine(10, 1) // 10 + t
	c := Min(a, b)     // crosses at t=5
	if got := c.Eval(4); !almostEq(got, 12) {
		t.Errorf("Eval(4) = %g, want 12 (3t side)", got)
	}
	if got := c.Eval(6); !almostEq(got, 16) {
		t.Errorf("Eval(6) = %g, want 16 (10+t side)", got)
	}
	if got := c.Eval(5); !almostEq(got, 15) {
		t.Errorf("Eval(5) = %g, want 15 (crossing)", got)
	}
}

func TestMinOfSingle(t *testing.T) {
	c := MinOf(Affine(1, 1))
	if got := c.Eval(3); !almostEq(got, 4) {
		t.Errorf("MinOf single = %g, want 4", got)
	}
}

func TestConvolveConvexRateLatency(t *testing.T) {
	b1 := RateLatency(100, 16)
	b2 := RateLatency(80, 10)
	c, err := ConvolveConvex(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	// beta_{100,16} conv beta_{80,10} = beta_{80,26}
	want := RateLatency(80, 26)
	for _, x := range []float64{0, 10, 26, 27, 50, 1000} {
		if got := c.Eval(x); !almostEq(got, want.Eval(x)) {
			t.Errorf("Eval(%g) = %g, want %g", x, got, want.Eval(x))
		}
	}
}

func TestConvolveConvexRejectsConcave(t *testing.T) {
	if _, err := ConvolveConvex(LeakyBucket(5, 1), RateLatency(10, 1)); err == nil {
		t.Error("expected error convolving a leaky bucket as convex")
	}
}

func TestConvolveConcaveLeakyBuckets(t *testing.T) {
	f := LeakyBucket(10, 2)
	g := LeakyBucket(4, 5)
	c, err := ConvolveConcave(f, g)
	if err != nil {
		t.Fatal(err)
	}
	// (f conv g)(t) = 14 + min(2t, 5t) = 14 + 2t
	for _, x := range []float64{0, 1, 7, 100} {
		want := 14 + 2*x
		if got := c.Eval(x); !almostEq(got, want) {
			t.Errorf("Eval(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestConvolveConcaveMatchesBruteForce(t *testing.T) {
	f := Min(LeakyBucket(8, 3), LeakyBucket(20, 1))
	g := LeakyBucket(5, 2)
	c, err := ConvolveConcave(f, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.5, 1, 3, 6, 10, 25, 60} {
		want := math.Inf(1)
		for u := 0.0; u <= x; u += x/400 + 1e-6 {
			if v := f.Eval(u) + g.Eval(x-u); v < want {
				want = v
			}
		}
		if got := c.Eval(x); got > want+1e-6 || got < want-0.3 {
			// brute force grid slightly overestimates the min; allow slack below
			t.Errorf("ConvolveConcave.Eval(%g) = %g, brute force %g", x, got, want)
		}
	}
}

func TestConvolveConcaveRejectsConvex(t *testing.T) {
	if _, err := ConvolveConcave(RateLatency(10, 5), LeakyBucket(1, 1)); err == nil {
		t.Error("expected error convolving a rate-latency curve as concave")
	}
}

func TestDeconvolveLeakyBucketRateLatency(t *testing.T) {
	// Classical result: gamma_{r,b} deconv beta_{R,T} = gamma_{r, b+rT}.
	f := LeakyBucket(4000, 1)
	g := RateLatency(100, 16)
	c, err := Deconvolve(f, g)
	if err != nil {
		t.Fatal(err)
	}
	want := LeakyBucket(4000+1*16, 1)
	for _, x := range []float64{0, 1, 16, 100, 1e5} {
		if got := c.Eval(x); !almostEq(got, want.Eval(x)) {
			t.Errorf("Deconvolve.Eval(%g) = %g, want %g", x, got, want.Eval(x))
		}
	}
}

func TestDeconvolveUnstable(t *testing.T) {
	if _, err := Deconvolve(LeakyBucket(1, 200), RateLatency(100, 1)); err == nil {
		t.Error("expected unbounded deconvolution error when rate exceeds service")
	}
}

func TestDeconvolveMatchesBruteForce(t *testing.T) {
	f := Min(LeakyBucket(500, 40), LeakyBucket(3000, 5))
	g := RateLatency(60, 7)
	c, err := Deconvolve(f, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1, 5, 10, 50, 200} {
		want := math.Inf(-1)
		for u := 0.0; u <= 500; u += 0.25 {
			if v := f.Eval(x+u) - g.Eval(u); v > want {
				want = v
			}
		}
		got := c.Eval(x)
		if got < want-1e-6 || got > want+2.5 {
			// grid slightly underestimates the sup; allow slack above
			t.Errorf("Deconvolve.Eval(%g) = %g, brute force %g", x, got, want)
		}
	}
}

func TestSubPosResidualService(t *testing.T) {
	// Residual of a rate-latency server after a leaky bucket:
	// (100(t-16) - (4000 + t))+ : zero until the root, then slope 99.
	beta := RateLatency(100, 16)
	alpha := LeakyBucket(4000, 1)
	res, err := SubPos(beta, alpha)
	if err != nil {
		t.Fatal(err)
	}
	// Root: 100(t-16) = 4000 + t -> t = 5600/99.
	root := 5600.0 / 99
	if got := res.Eval(root - 1); got != 0 {
		t.Errorf("residual before the root = %g, want 0", got)
	}
	want := 99 * 10.0
	if got := res.Eval(root + 10); !almostEq(got, want) {
		t.Errorf("residual after the root = %g, want %g", got, want)
	}
	if !res.IsConvex() {
		t.Errorf("residual should be convex: %v", res)
	}
}

func TestSubPosZeroSubtrahend(t *testing.T) {
	beta := RateLatency(100, 16)
	res, err := SubPos(beta, Zero())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 16, 20, 100} {
		if !almostEq(res.Eval(x), beta.Eval(x)) {
			t.Errorf("SubPos(beta, 0).Eval(%g) = %g, want %g", x, res.Eval(x), beta.Eval(x))
		}
	}
}

func TestSubPosRejectsWrongShapes(t *testing.T) {
	if _, err := SubPos(LeakyBucket(1, 1), LeakyBucket(1, 1)); err == nil {
		t.Error("concave minuend should be rejected")
	}
	if _, err := SubPos(RateLatency(10, 1), RateLatency(10, 1)); err == nil {
		t.Error("convex subtrahend should be rejected")
	}
}

func TestQuickSubPosIsResidual(t *testing.T) {
	f := func(seed int64, x float64) bool {
		r := rand.New(rand.NewSource(seed))
		beta := randomConvex(r)
		alpha := randomConcave(r)
		res, err := SubPos(beta, alpha)
		if err != nil {
			return false
		}
		x = math.Abs(math.Mod(x, 1e4))
		want := beta.Eval(x) - alpha.Eval(x)
		if want < 0 {
			want = 0
		}
		return math.Abs(res.Eval(x)-want) <= 1e-5*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}
