package minplus

import (
	"math"
	"math/rand"
	"testing"
)

func TestDelayCurveShape(t *testing.T) {
	d := Delay(5)
	for _, x := range []float64{0, 1, 4.999, 5} {
		if got := d.Eval(x); got != 0 && !(x == 5 && math.IsInf(got, 1)) {
			// Right-continuity puts the +Inf value at X=5 itself.
			if x < 5 && got != 0 {
				t.Errorf("Delay(5).Eval(%g) = %g, want 0", x, got)
			}
		}
	}
	if got := d.Eval(6); !math.IsInf(got, 1) {
		t.Errorf("Delay(5).Eval(6) = %g, want +Inf", got)
	}
	if v, ok := d.delayOf(); !ok || v != 5 {
		t.Errorf("delayOf(Delay(5)) = %g, %v; want 5, true", v, ok)
	}
	z := Delay(0)
	if got := z.Eval(0); got != 0 {
		t.Errorf("Delay(0).Eval(0) = %g, want 0", got)
	}
	if got := z.Eval(1); !math.IsInf(got, 1) {
		t.Errorf("Delay(0).Eval(1) = %g, want +Inf", got)
	}
	if v, ok := z.delayOf(); !ok || v != 0 {
		t.Errorf("delayOf(Delay(0)) = %g, %v; want 0, true", v, ok)
	}
	if _, ok := RateLatency(100, 16).delayOf(); ok {
		t.Errorf("delayOf(RateLatency) should be false")
	}
}

// Deconvolving a leaky bucket against a pure delay is the classical
// burst inflation, bit for bit: (gamma_{r,b} ⊘ delta_d)(0) = b + r*d
// with the identical float expression, at every rate including the
// 1e12 the old finite-rate stand-in used as its magic constant.
func TestDeconvolveDelayExactBurstInflation(t *testing.T) {
	for _, r := range []float64{0.01, 1, 125, 1e6, 1e12 - 1, 1e12, 1e12 + 1, 1e15} {
		for _, d := range []float64{0, 0.5, 40, 1e4} {
			f := LeakyBucket(4000, r)
			out, err := Deconvolve(f, Delay(d))
			if err != nil {
				t.Fatalf("Deconvolve(LB, Delay(%g)): %v", d, err)
			}
			want := 4000 + r*d
			if got := out.ValueAtZero(); got != want {
				t.Errorf("r=%g d=%g: burst = %g, want %g (exact)", r, d, got, want)
			}
			if got := out.LongTermRate(); got != r {
				t.Errorf("r=%g d=%g: rate = %g, want %g", r, d, got, r)
			}
		}
	}
}

// The pure-delay deconvolution is the left-shift f(t+d) for arbitrary
// concave envelopes, not only single-piece leaky buckets.
func TestDeconvolveDelayShiftsLeft(t *testing.T) {
	f := Min(Affine(4000, 1), Affine(100, 100)) // concave, breakpoint inside
	const d = 7
	out, err := Deconvolve(f, Delay(d))
	if err != nil {
		t.Fatalf("Deconvolve: %v", err)
	}
	for _, x := range []float64{0, 1, 10, 32.9, 33.1, 40, 500} {
		if got, want := out.Eval(x), f.Eval(x+d); !almostEq(got, want) {
			t.Errorf("Eval(%g) = %g, want f(%g) = %g", x, got, x+d, want)
		}
	}
	// d = 0 is the identity.
	id, err := Deconvolve(f, Delay(0))
	if err != nil {
		t.Fatalf("Deconvolve d=0: %v", err)
	}
	for _, x := range []float64{0, 5, 33, 100} {
		if got, want := id.Eval(x), f.Eval(x); got != want {
			t.Errorf("identity Eval(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestFIFOResidualRejectsBadShapes(t *testing.T) {
	beta := RateLatency(100, 16)
	alpha := Affine(4000, 1)
	if _, err := FIFOResidual(alpha, alpha, 0); err == nil {
		t.Errorf("concave service curve should be rejected")
	}
	if _, err := FIFOResidual(beta, beta, 0); err == nil {
		t.Errorf("convex cross envelope should be rejected")
	}
	if _, err := FIFOResidual(beta, alpha, -1); err == nil {
		t.Errorf("negative theta should be rejected")
	}
	if _, err := FIFOResidual(RateLatency(1, 0), Affine(10, 2), 0); err == nil {
		t.Errorf("cross rate above service rate should be rejected")
	}
}

// At theta = 0 and without a positive dip the FIFO residual is exactly
// the blind-multiplexing residual (beta - alpha)+.
func TestFIFOResidualZeroThetaMatchesSubPos(t *testing.T) {
	beta := RateLatency(100, 16)
	alpha := Min(Affine(4000, 1), Affine(1000, 30))
	want, err := SubPos(beta, alpha)
	if err != nil {
		t.Fatalf("SubPos: %v", err)
	}
	got, err := FIFOResidual(beta, alpha, 0)
	if err != nil {
		t.Fatalf("FIFOResidual: %v", err)
	}
	for _, x := range []float64{0, 10, 16, 56, 57, 100, 1e4} {
		if !almostEq(got.Eval(x), want.Eval(x)) {
			t.Errorf("Eval(%g) = %g, want %g", x, got.Eval(x), want.Eval(x))
		}
	}
}

func TestFIFOResidualZeroBeforeTheta(t *testing.T) {
	beta := RateLatency(100, 16)
	alpha := Affine(4000, 1)
	const theta = 120
	r, err := FIFOResidual(beta, alpha, theta)
	if err != nil {
		t.Fatalf("FIFOResidual: %v", err)
	}
	for _, x := range []float64{0, 16, 119.9} {
		if got := r.Eval(x); got != 0 {
			t.Errorf("Eval(%g) = %g, want 0 before theta", x, got)
		}
	}
	// Past theta the residual is [beta(t) - alpha(t-theta)]+ (no dip
	// here: beta's slope dominates alpha's everywhere past the latency).
	for _, x := range []float64{theta, 200, 1e4} {
		want := beta.Eval(x) - alpha.Eval(x-theta)
		if want < 0 {
			want = 0
		}
		if got := r.Eval(x); !almostEq(got, want) {
			t.Errorf("Eval(%g) = %g, want %g", x, got, want)
		}
	}
}

// When the difference dips below its value at theta before rising, the
// naive positive part is not non-decreasing; the op must return the
// non-decreasing closure (a valid, smaller service curve).
func TestFIFOResidualDipTakesClosure(t *testing.T) {
	beta := MustCurve([]Segment{{X: 0, Y: 0, Slope: 0.5}, {X: 10, Y: 5, Slope: 3}})
	alpha := Affine(2, 1)
	r, err := FIFOResidual(beta, alpha, 6)
	if err != nil {
		t.Fatalf("FIFOResidual: %v", err)
	}
	// diff(6) = 1 but diff dips to -1 at t=10; the closure is 0 until the
	// root 10.5 and then rises at slope 2.
	for _, x := range []float64{0, 6, 7, 10, 10.5} {
		if got := r.Eval(x); got != 0 {
			t.Errorf("Eval(%g) = %g, want 0 (closure of the dip)", x, got)
		}
	}
	if got := r.Eval(12); !almostEq(got, 3) {
		t.Errorf("Eval(12) = %g, want 3", got)
	}
	// Monotonicity across the board.
	prev := -1.0
	for x := 0.0; x <= 20; x += 0.25 {
		if v := r.Eval(x); v < prev-Eps {
			t.Fatalf("residual decreases at %g: %g -> %g", x, prev, v)
		} else {
			prev = v
		}
	}
}

// The soundness anchor the engine relies on: with D the aggregate delay
// bound h(alpha1+alpha2, beta), the per-flow bound through the FIFO
// residual at theta = D never exceeds D. Random leaky buckets and
// rate-latency curves, stability enforced.
func TestFIFOResidualThetaDNeverWorseThanAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		b1, b2 := 1+rng.Float64()*5000, 1+rng.Float64()*5000
		r1, r2 := 0.1+rng.Float64()*40, 0.1+rng.Float64()*40
		rate := (r1 + r2) * (1.05 + rng.Float64()*3)
		lat := rng.Float64() * 50
		beta := RateLatency(rate, lat)
		a1, a2 := Affine(b1, r1), Affine(b2, r2)
		d := HorizontalDeviation(Add(a1, a2), beta)
		res, err := FIFOResidual(beta, a2, d)
		if err != nil {
			t.Fatalf("case %d: FIFOResidual: %v", i, err)
		}
		df := HorizontalDeviation(a1, res)
		if df > d+1e-6 {
			t.Fatalf("case %d: per-flow bound %g exceeds aggregate bound %g (beta=%v a1=%v a2=%v)",
				i, df, d, beta, a1, a2)
		}
	}
}
