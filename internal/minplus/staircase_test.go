package minplus

import (
	"math"
	"testing"
)

func TestStaircaseValues(t *testing.T) {
	c := MustStaircase(4000, 1000, 4)
	cases := []struct{ t, want float64 }{
		{0, 4000},
		{999, 4000},
		{1000, 8000},
		{2500, 12000},
		{3999, 16000},
		{4000, 20000},
		// Beyond the exact steps the curve follows the leaky bucket.
		{5000, 4000 + 4*5000},
		{10000, 4000 + 4*10000},
	}
	for _, tc := range cases {
		if got := c.Eval(tc.t); !almostEq(got, tc.want) {
			t.Errorf("staircase(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
}

func TestStaircaseDominatedByLeakyBucket(t *testing.T) {
	s, T := 4000.0, 1000.0
	c := MustStaircase(s, T, 8)
	lb := LeakyBucket(s, s/T)
	for x := 0.0; x < 12000; x += 37 {
		if c.Eval(x) > lb.Eval(x)+1e-6 {
			t.Fatalf("staircase(%g)=%g exceeds leaky bucket %g", x, c.Eval(x), lb.Eval(x))
		}
	}
	// Equality at step instants.
	for k := 1; k <= 8; k++ {
		x := float64(k) * T
		if !almostEq(c.Eval(x), lb.Eval(x)) {
			t.Errorf("staircase and leaky bucket must agree at %g: %g vs %g",
				x, c.Eval(x), lb.Eval(x))
		}
	}
}

func TestStaircaseRejectsBadInput(t *testing.T) {
	if _, err := Staircase(0, 10, 4); err == nil {
		t.Error("zero size should be rejected")
	}
	if _, err := Staircase(10, 0, 4); err == nil {
		t.Error("zero period should be rejected")
	}
	if _, err := Staircase(10, 10, 0); err == nil {
		t.Error("zero steps should be rejected")
	}
	if _, err := StaircaseWithJitter(10, 10, -1, 4); err == nil {
		t.Error("negative jitter should be rejected")
	}
}

func TestStaircaseWithJitterValues(t *testing.T) {
	// s=100, T=1000, jitter=250: two frames can appear within the first
	// 750 us window end (jump at 1000-250=750).
	c, err := StaircaseWithJitter(100, 1000, 250, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{0, 100},
		{749, 100},
		{750, 200},
		{1749, 200},
		{1750, 300},
	}
	for _, tc := range cases {
		if got := c.Eval(tc.t); !almostEq(got, tc.want) {
			t.Errorf("jittered staircase(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
}

func TestStaircaseWithLargeJitter(t *testing.T) {
	// jitter = 2.5 periods: 3 frames may already be backlogged at t=0.
	c, err := StaircaseWithJitter(100, 1000, 2500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Eval(0); !almostEq(got, 300) {
		t.Errorf("value at 0 = %g, want 300", got)
	}
	if got := c.Eval(500); !almostEq(got, 400) {
		t.Errorf("value at 500 = %g, want 400 (jump at 3T - jitter = 500)", got)
	}
}

func TestStaircaseWithJitterDominatedByJitteredLB(t *testing.T) {
	s, T, J := 333.0, 700.0, 450.0
	c, err := StaircaseWithJitter(s, T, J, 6)
	if err != nil {
		t.Fatal(err)
	}
	lb := LeakyBucket(s+J*s/T, s/T)
	for x := 0.0; x < 8000; x += 13 {
		if c.Eval(x) > lb.Eval(x)+1e-6 {
			t.Fatalf("jittered staircase(%g)=%g exceeds jittered LB %g", x, c.Eval(x), lb.Eval(x))
		}
	}
}

func TestStaircaseZeroJitterEqualsStaircase(t *testing.T) {
	a, err := StaircaseWithJitter(100, 1000, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := MustStaircase(100, 1000, 4)
	for x := 0.0; x < 6000; x += 111 {
		if !almostEq(a.Eval(x), b.Eval(x)) {
			t.Fatalf("mismatch at %g: %g vs %g", x, a.Eval(x), b.Eval(x))
		}
	}
}

func TestStaircaseHorizontalDeviationMatchesLeakyBucketWithoutJitter(t *testing.T) {
	// Against a rate-latency server the deviation of a stable flow is
	// attained at the initial burst, which staircase and leaky bucket
	// share: without jitter the refinement changes nothing.
	beta := RateLatency(10, 5)
	stair := MustStaircase(4000, 1000, 16)
	lb := LeakyBucket(4000, 4)
	hStair := HorizontalDeviation(stair, beta)
	hLB := HorizontalDeviation(lb, beta)
	if math.IsInf(hStair, 1) || math.IsInf(hLB, 1) {
		t.Fatal("stable cases must be finite")
	}
	if !almostEq(hStair, hLB) {
		t.Errorf("deviations should coincide without jitter: %g vs %g", hStair, hLB)
	}
}

func TestStaircaseJitterFloorTightensDeviation(t *testing.T) {
	// The refinement bites downstream: a fractional accumulated jitter
	// inflates the leaky-bucket burst by rho*J, while the staircase only
	// releases floor(J/T) extra frames — zero here, since J < T.
	s, T, J := 4000.0, 4000.0, 150.0
	beta := RateLatency(100, 16)
	stair, err := StaircaseWithJitter(s, T, J, 8)
	if err != nil {
		t.Fatal(err)
	}
	lb := LeakyBucket(s+J*s/T, s/T)
	hStair := HorizontalDeviation(stair, beta)
	hLB := HorizontalDeviation(lb, beta)
	if hStair >= hLB {
		t.Errorf("jittered staircase deviation %g should beat leaky bucket %g", hStair, hLB)
	}
	if want := 16 + s/100; !almostEq(hStair, want) {
		t.Errorf("staircase deviation = %g, want %g (burst of one frame)", hStair, want)
	}
}
