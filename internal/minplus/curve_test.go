package minplus

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

func TestNewCurveValidation(t *testing.T) {
	cases := []struct {
		name string
		segs []Segment
		ok   bool
	}{
		{"empty", nil, false},
		{"single affine", []Segment{{0, 5, 1}}, true},
		{"first not at zero", []Segment{{1, 0, 1}}, false},
		{"negative slope", []Segment{{0, 0, -1}}, false},
		{"negative value", []Segment{{0, -2, 1}}, false},
		{"non increasing X", []Segment{{0, 0, 1}, {0, 1, 1}}, false},
		{"decreasing across pieces", []Segment{{0, 0, 2}, {1, 1, 1}}, false},
		{"upward jump ok", []Segment{{0, 0, 1}, {1, 5, 1}}, true},
		{"rate latency shape", []Segment{{0, 0, 0}, {2, 0, 3}}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewCurve(c.segs)
			if (err == nil) != c.ok {
				t.Fatalf("NewCurve(%v) error = %v, want ok=%v", c.segs, err, c.ok)
			}
		})
	}
}

func TestEvalAffine(t *testing.T) {
	c := Affine(10, 2)
	for _, tc := range []struct{ t, want float64 }{
		{-1, 0}, {0, 10}, {1, 12}, {100, 210},
	} {
		if got := c.Eval(tc.t); !almostEq(got, tc.want) {
			t.Errorf("Affine(10,2).Eval(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
}

func TestEvalRateLatency(t *testing.T) {
	c := RateLatency(100, 16)
	for _, tc := range []struct{ t, want float64 }{
		{0, 0}, {16, 0}, {17, 100}, {20, 400},
	} {
		if got := c.Eval(tc.t); !almostEq(got, tc.want) {
			t.Errorf("RateLatency(100,16).Eval(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
}

func TestRateLatencyZeroLatency(t *testing.T) {
	c := RateLatency(5, 0)
	if got := c.NumSegments(); got != 1 {
		t.Fatalf("zero-latency rate-latency should be a single piece, got %d", got)
	}
	if got := c.Eval(3); !almostEq(got, 15) {
		t.Errorf("Eval(3) = %g, want 15", got)
	}
}

func TestZeroAndPlateau(t *testing.T) {
	if got := Zero().Eval(42); got != 0 {
		t.Errorf("Zero().Eval(42) = %g, want 0", got)
	}
	p := Plateau(7)
	if got := p.Eval(0); !almostEq(got, 7) {
		t.Errorf("Plateau(7).Eval(0) = %g, want 7", got)
	}
	if got := p.Eval(1e9); !almostEq(got, 7) {
		t.Errorf("Plateau(7).Eval(1e9) = %g, want 7", got)
	}
}

func TestConcaveConvexClassification(t *testing.T) {
	lb := LeakyBucket(100, 2)
	if !lb.IsConcave() {
		t.Error("leaky bucket should be concave")
	}
	if lb.IsConvex() {
		t.Error("leaky bucket with positive burst is not convex")
	}
	rl := RateLatency(100, 16)
	if !rl.IsConvex() {
		t.Error("rate-latency should be convex")
	}
	if rl.IsConcave() {
		t.Error("rate-latency with positive latency is not concave")
	}
	// Min of two leaky buckets stays concave.
	m := Min(LeakyBucket(10, 5), LeakyBucket(100, 1))
	if !m.IsConcave() {
		t.Errorf("min of leaky buckets should be concave: %v", m)
	}
}

func TestNormalizeMergesCollinear(t *testing.T) {
	c := MustCurve([]Segment{{0, 0, 2}, {1, 2, 2}, {2, 4, 2}})
	if got := c.NumSegments(); got != 1 {
		t.Errorf("collinear pieces should merge to 1 segment, got %d: %v", got, c)
	}
}

func TestInverseInf(t *testing.T) {
	c := RateLatency(100, 16)
	for _, tc := range []struct{ y, want float64 }{
		{0, 0}, {100, 17}, {400, 20},
	} {
		if got := c.InverseInf(tc.y); !almostEq(got, tc.want) {
			t.Errorf("InverseInf(%g) = %g, want %g", tc.y, got, tc.want)
		}
	}
	lb := LeakyBucket(10, 2)
	if got := lb.InverseInf(5); !almostEq(got, 0) {
		t.Errorf("InverseInf below burst should be 0, got %g", got)
	}
	if got := lb.InverseInf(20); !almostEq(got, 5) {
		t.Errorf("InverseInf(20) = %g, want 5", got)
	}
	bounded := Plateau(7)
	if got := bounded.InverseInf(8); !math.IsInf(got, 1) {
		t.Errorf("InverseInf above a bounded curve should be +Inf, got %g", got)
	}
}

func TestLongTermRateAndValueAtZero(t *testing.T) {
	c := MustCurve([]Segment{{0, 3, 9}, {10, 93, 1}})
	if got := c.LongTermRate(); !almostEq(got, 1) {
		t.Errorf("LongTermRate = %g, want 1", got)
	}
	if got := c.ValueAtZero(); !almostEq(got, 3) {
		t.Errorf("ValueAtZero = %g, want 3", got)
	}
}

func TestStringRendering(t *testing.T) {
	s := Affine(1, 2).String()
	if s == "" {
		t.Error("String() should not be empty")
	}
}
