package minplus

import (
	"math"
	"testing"
)

func TestHorizontalDeviationLeakyBucketRateLatency(t *testing.T) {
	// Classical closed form: h(gamma_{r,b}, beta_{R,T}) = T + b/R for r <= R.
	alpha := LeakyBucket(4000, 1) // 4000 bits burst, 1 bit/us
	beta := RateLatency(100, 16)  // 100 bits/us, 16 us latency
	if got, want := HorizontalDeviation(alpha, beta), 16+4000.0/100; !almostEq(got, want) {
		t.Errorf("h = %g, want %g", got, want)
	}
}

func TestHorizontalDeviationAggregate(t *testing.T) {
	// Five identical leaky buckets through one port: h = T + 5b/R.
	agg := Sum(
		LeakyBucket(4000, 1), LeakyBucket(4000, 1), LeakyBucket(4000, 1),
		LeakyBucket(4000, 1), LeakyBucket(4000, 1),
	)
	beta := RateLatency(100, 16)
	if got, want := HorizontalDeviation(agg, beta), 16+5*4000.0/100; !almostEq(got, want) {
		t.Errorf("h = %g, want %g", got, want)
	}
}

func TestHorizontalDeviationUnstable(t *testing.T) {
	alpha := LeakyBucket(100, 200)
	beta := RateLatency(100, 1)
	if got := HorizontalDeviation(alpha, beta); !math.IsInf(got, 1) {
		t.Errorf("h for unstable port = %g, want +Inf", got)
	}
}

func TestHorizontalDeviationZeroBurst(t *testing.T) {
	// alpha = rho*t with rho < R: the deviation is exactly the latency.
	alpha := Affine(0, 10)
	beta := RateLatency(100, 16)
	if got := HorizontalDeviation(alpha, beta); !almostEq(got, 16) {
		t.Errorf("h = %g, want 16", got)
	}
}

func TestHorizontalDeviationGroupedEnvelope(t *testing.T) {
	// Grouping lowers the deviation: two flows serialized on a 100 bits/us
	// link burst at most one max frame ahead of the link rate.
	sum := Sum(LeakyBucket(4000, 1), LeakyBucket(4000, 1))
	grouped := Min(sum, Affine(4000, 100))
	beta := RateLatency(100, 16)
	hSum := HorizontalDeviation(sum, beta)
	hGrp := HorizontalDeviation(grouped, beta)
	if hGrp >= hSum {
		t.Errorf("grouped deviation %g should be < ungrouped %g", hGrp, hSum)
	}
	if hGrp < 16 {
		t.Errorf("grouped deviation %g cannot be below the latency", hGrp)
	}
}

func TestHorizontalDeviationEqualRates(t *testing.T) {
	// Arrival rate equal to service rate: finite deviation T + b/R.
	alpha := LeakyBucket(1000, 100)
	beta := RateLatency(100, 5)
	if got, want := HorizontalDeviation(alpha, beta), 5+1000.0/100; !almostEq(got, want) {
		t.Errorf("h = %g, want %g", got, want)
	}
}

func TestHorizontalDeviationBoundedAlpha(t *testing.T) {
	// A bounded arrival curve is always stable even against a slow server.
	alpha := Min(LeakyBucket(100, 10), Plateau(500))
	beta := RateLatency(1, 2)
	got := HorizontalDeviation(alpha, beta)
	if math.IsInf(got, 1) {
		t.Fatal("bounded arrivals must have finite deviation")
	}
	// The plateau value 500 is first reached at t = (500-100)/10 = 40, so
	// h = sup_y (betaInv(y) - alphaInv(y)) = (2 + 500/1) - 40 = 462.
	if want := 462.0; !almostEq(got, want) {
		t.Errorf("h = %g, want %g", got, want)
	}
}

func TestVerticalDeviationLeakyBucketRateLatency(t *testing.T) {
	// Classical closed form: v(gamma_{r,b}, beta_{R,T}) = b + r*T.
	alpha := LeakyBucket(4000, 1)
	beta := RateLatency(100, 16)
	if got, want := VerticalDeviation(alpha, beta), 4000+1.0*16; !almostEq(got, want) {
		t.Errorf("v = %g, want %g", got, want)
	}
}

func TestVerticalDeviationUnstable(t *testing.T) {
	if got := VerticalDeviation(LeakyBucket(1, 2), Affine(0, 1)); !math.IsInf(got, 1) {
		t.Errorf("v = %g, want +Inf", got)
	}
}

func TestDeviationsNonNegative(t *testing.T) {
	alpha := LeakyBucket(1, 0.1)
	beta := Affine(0, 1e6) // essentially instantaneous service
	if got := HorizontalDeviation(alpha, beta); got < 0 {
		t.Errorf("h = %g, want >= 0", got)
	}
	if got := VerticalDeviation(alpha, beta); got < 0 {
		t.Errorf("v = %g, want >= 0", got)
	}
}
