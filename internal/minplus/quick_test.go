package minplus

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomConcave builds a random concave arrival-like curve as the minimum
// of 1-3 leaky buckets with bounded parameters.
func randomConcave(r *rand.Rand) Curve {
	n := 1 + r.Intn(3)
	c := LeakyBucket(1+r.Float64()*5000, 0.01+r.Float64()*50)
	for i := 1; i < n; i++ {
		c = Min(c, LeakyBucket(1+r.Float64()*5000, 0.01+r.Float64()*50))
	}
	return c
}

// randomConvex builds a random convex service-like curve as a rate-latency
// curve, optionally convolved with another.
func randomConvex(r *rand.Rand) Curve {
	c := RateLatency(60+r.Float64()*100, r.Float64()*30)
	if r.Intn(2) == 0 {
		d, err := ConvolveConvex(c, RateLatency(60+r.Float64()*100, r.Float64()*30))
		if err == nil {
			c = d
		}
	}
	return c
}

func quickConfig(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

func TestQuickCurvesAreMonotone(t *testing.T) {
	f := func(seed int64, t1, t2 float64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomConcave(r)
		a, b := math.Abs(t1), math.Abs(t2)
		if a > b {
			a, b = b, a
		}
		return c.Eval(a) <= c.Eval(b)+1e-6
	}
	if err := quick.Check(f, quickConfig(1)); err != nil {
		t.Error(err)
	}
}

func TestQuickAddCommutes(t *testing.T) {
	f := func(seed int64, x float64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomConcave(r), randomConcave(r)
		x = math.Abs(math.Mod(x, 1e4))
		return almostEq(Add(a, b).Eval(x), Add(b, a).Eval(x))
	}
	if err := quick.Check(f, quickConfig(2)); err != nil {
		t.Error(err)
	}
}

func TestQuickMinIsLowerBound(t *testing.T) {
	f := func(seed int64, x float64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomConcave(r), randomConcave(r)
		x = math.Abs(math.Mod(x, 1e4))
		m := Min(a, b).Eval(x)
		lo := math.Min(a.Eval(x), b.Eval(x))
		return almostEq(m, lo)
	}
	if err := quick.Check(f, quickConfig(3)); err != nil {
		t.Error(err)
	}
}

func TestQuickConvolutionIsInfimum(t *testing.T) {
	// (f conv g)(x) <= f(u) + g(x-u) for any split point u.
	f := func(seed int64, x, u float64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomConcave(r), randomConcave(r)
		c, err := ConvolveConcave(a, b)
		if err != nil {
			return false
		}
		x = math.Abs(math.Mod(x, 1e4))
		u = math.Abs(math.Mod(u, x+1))
		if u > x {
			u = x
		}
		return c.Eval(x) <= a.Eval(u)+b.Eval(x-u)+1e-6
	}
	if err := quick.Check(f, quickConfig(4)); err != nil {
		t.Error(err)
	}
}

func TestQuickConvolveConvexIsInfimum(t *testing.T) {
	f := func(seed int64, x, u float64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomConvex(r), randomConvex(r)
		c, err := ConvolveConvex(a, b)
		if err != nil {
			return false
		}
		x = math.Abs(math.Mod(x, 1e4))
		u = math.Abs(math.Mod(u, x+1))
		if u > x {
			u = x
		}
		return c.Eval(x) <= a.Eval(u)+b.Eval(x-u)+1e-6
	}
	if err := quick.Check(f, quickConfig(5)); err != nil {
		t.Error(err)
	}
}

func TestQuickDeconvolutionIsSupremum(t *testing.T) {
	// (f deconv g)(x) >= f(x+u) - g(u) for any u >= 0.
	f := func(seed int64, x, u float64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomConcave(r)
		g := randomConvex(r)
		if a.LongTermRate() > g.LongTermRate() {
			return true // unbounded case rejected by API, nothing to check
		}
		c, err := Deconvolve(a, g)
		if err != nil {
			return false
		}
		x = math.Abs(math.Mod(x, 1e3))
		u = math.Abs(math.Mod(u, 1e3))
		return c.Eval(x) >= a.Eval(x+u)-g.Eval(u)-1e-6
	}
	if err := quick.Check(f, quickConfig(6)); err != nil {
		t.Error(err)
	}
}

func TestQuickHorizontalDeviationIsDelayBound(t *testing.T) {
	// alpha(t) <= beta(t + h) for every t: h horizontally dominates.
	f := func(seed int64, x float64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := randomConcave(r)
		beta := randomConvex(r)
		if alpha.LongTermRate() > beta.LongTermRate() {
			return true
		}
		h := HorizontalDeviation(alpha, beta)
		if math.IsInf(h, 1) {
			return false // stable case must be finite
		}
		x = math.Abs(math.Mod(x, 1e4))
		return alpha.Eval(x) <= beta.Eval(x+h)+1e-5
	}
	if err := quick.Check(f, quickConfig(7)); err != nil {
		t.Error(err)
	}
}

func TestQuickVerticalDeviationIsBacklogBound(t *testing.T) {
	f := func(seed int64, x float64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := randomConcave(r)
		beta := randomConvex(r)
		if alpha.LongTermRate() > beta.LongTermRate() {
			return true
		}
		v := VerticalDeviation(alpha, beta)
		x = math.Abs(math.Mod(x, 1e4))
		return alpha.Eval(x)-beta.Eval(x) <= v+1e-6
	}
	if err := quick.Check(f, quickConfig(8)); err != nil {
		t.Error(err)
	}
}

func TestQuickMinPreservesConcavity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		return Min(randomConcave(r), randomConcave(r)).IsConcave()
	}
	if err := quick.Check(f, quickConfig(9)); err != nil {
		t.Error(err)
	}
}

func TestQuickSumPreservesConcavity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		return Add(randomConcave(r), randomConcave(r)).IsConcave()
	}
	if err := quick.Check(f, quickConfig(10)); err != nil {
		t.Error(err)
	}
}
