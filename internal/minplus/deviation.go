package minplus

import (
	"math"
	"sort"
)

// HorizontalDeviation returns h(alpha, beta) = sup_{t>=0} inf{ d >= 0 :
// alpha(t) <= beta(t+d) }, the classical Network Calculus delay bound for
// traffic with arrival curve alpha served with service curve beta (FIFO
// order within the aggregate).
//
// The deviation is +Inf when the arrival curve's long-term rate exceeds the
// service curve's (unstable server), and is reported as such; callers treat
// that case as an analysis error.
func HorizontalDeviation(alpha, beta Curve) float64 {
	ra, rb := alpha.LongTermRate(), beta.LongTermRate()
	if ra > rb+Eps {
		return math.Inf(1)
	}
	// In the "inverse domain" h = sup_y ( betaInv(y) - alphaInv(y) ) over
	// the ordinates reached by alpha; the difference of the two pseudo-
	// inverses is piecewise linear in y with breakpoints at the ordinate
	// breakpoints of either curve, so scanning those suffices. When the
	// long-term rates are equal the tail difference is constant and the
	// last candidate already covers it; when ra < rb the tail decreases.
	ys := append(alpha.breakpointYs(), beta.breakpointYs()...)
	sort.Float64s(ys)
	ys = dedupeFloats(ys)
	yMax := math.Inf(1)
	if last := alpha.LastSegment(); last.Slope <= Eps {
		yMax = last.Y // alpha is bounded; higher ordinates are never produced
	}
	h := 0.0
	for _, y := range ys {
		if y <= Eps || y > yMax+Eps {
			continue
		}
		d := beta.InverseInf(y) - alpha.InverseInf(y)
		if d > h {
			h = d
		}
	}
	// The supremum can also occur as y -> 0+ with a latency-only beta and
	// an alpha with zero initial value: cover it with the first positive
	// ordinate of alpha (its initial jump) handled above, plus t=0 burst:
	if b := alpha.ValueAtZero(); b > Eps {
		if d := beta.InverseInf(b); d > h {
			h = d
		}
	} else if len(beta.segs) > 0 && beta.segs[0].Slope <= Eps && len(beta.segs) > 1 {
		// alpha starts at 0 with some rate; any positive ordinate waits at
		// least beta's latency.
		if alpha.LongTermRate() > Eps || alpha.LastSegment().Y > Eps {
			if d := beta.segs[1].X; d > h {
				h = d
			}
		}
	}
	return h
}

// VerticalDeviation returns v(alpha, beta) = sup_{t>=0} (alpha(t) - beta(t)),
// the classical backlog (buffer occupancy) bound. It is +Inf for unstable
// servers.
func VerticalDeviation(alpha, beta Curve) float64 {
	ra, rb := alpha.LongTermRate(), beta.LongTermRate()
	if ra > rb+Eps {
		return math.Inf(1)
	}
	xs := mergeXs(alpha.breakpointXs(), beta.breakpointXs())
	v := 0.0
	for _, x := range xs {
		if d := alpha.Eval(x) - beta.Eval(x); d > v {
			v = d
		}
	}
	return v
}
