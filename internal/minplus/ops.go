package minplus

import (
	"fmt"
	"math"
	"sort"
)

// Add returns the pointwise sum of two curves.
func Add(a, b Curve) Curve {
	xs := mergeXs(a.breakpointXs(), b.breakpointXs())
	segs := make([]Segment, 0, len(xs))
	for _, x := range xs {
		segs = append(segs, Segment{
			X:     x,
			Y:     a.Eval(x) + b.Eval(x),
			Slope: a.slopeAt(x) + b.slopeAt(x),
		})
	}
	c := Curve{segs: segs}
	c.normalize()
	return c
}

// Sum returns the pointwise sum of any number of curves.
// Sum of zero curves is the zero curve.
func Sum(curves ...Curve) Curve {
	acc := Zero()
	for _, c := range curves {
		acc = Add(acc, c)
	}
	return acc
}

// Min returns the pointwise minimum of two curves. The result of taking
// the minimum of two non-decreasing curves is non-decreasing.
func Min(a, b Curve) Curve {
	xs := mergeXs(a.breakpointXs(), b.breakpointXs())
	// Within each interval both inputs are linear; they cross at most once.
	// Collect interval starts plus interior crossing points.
	var cuts []float64
	for i, x := range xs {
		cuts = append(cuts, x)
		end := math.Inf(1)
		if i+1 < len(xs) {
			end = xs[i+1]
		}
		da := a.Eval(x) - b.Eval(x)
		ds := a.slopeAt(x) - b.slopeAt(x)
		if math.Abs(ds) <= Eps || math.Abs(da) <= Eps {
			continue
		}
		cross := x - da/ds
		if cross > x+Eps && cross < end-Eps {
			cuts = append(cuts, cross)
		}
	}
	sort.Float64s(cuts)
	segs := make([]Segment, 0, len(cuts))
	for _, x := range cuts {
		va, vb := a.Eval(x), b.Eval(x)
		if va <= vb {
			segs = append(segs, Segment{X: x, Y: va, Slope: a.slopeAt(x)})
		} else {
			segs = append(segs, Segment{X: x, Y: vb, Slope: b.slopeAt(x)})
		}
	}
	// At a crossing point the winning slope must be the smaller of the two
	// to stay below both curves until the next cut; fix up ties.
	for i := range segs {
		x := segs[i].X
		if math.Abs(a.Eval(x)-b.Eval(x)) <= Eps {
			segs[i].Slope = math.Min(a.slopeAt(x), b.slopeAt(x))
			// Keep the slope valid only until either input bends; the next
			// cut point re-samples, so this is safe within the interval.
		}
	}
	c := Curve{segs: dedupeSegs(segs)}
	c.normalize()
	return c
}

// MinOf returns the pointwise minimum of any number of curves.
// It panics when called with no curves.
func MinOf(curves ...Curve) Curve {
	if len(curves) == 0 {
		panic("minplus: MinOf of no curves")
	}
	acc := curves[0]
	for _, c := range curves[1:] {
		acc = Min(acc, c)
	}
	return acc
}

// ConvolveConcave computes the (min,+) convolution of two concave curves
// (each a concave function plus an initial jump at t=0, e.g. leaky buckets
// or minima of leaky buckets). For such curves
//
//	(f ⊗ g)(t) = f(0) + g(0) + min(f̂, ĝ)(t)
//
// where f̂, ĝ are the inputs with their initial jumps removed. An error is
// returned when an input is not concave.
func ConvolveConcave(f, g Curve) (Curve, error) {
	if !f.IsConcave() || !g.IsConcave() {
		return Curve{}, fmt.Errorf("minplus: ConvolveConcave requires concave inputs")
	}
	fh := shiftDown(f, f.ValueAtZero())
	gh := shiftDown(g, g.ValueAtZero())
	m := Min(fh, gh)
	return shiftUp(m, f.ValueAtZero()+g.ValueAtZero()), nil
}

// ConvolveConvex computes the (min,+) convolution of two convex curves
// through the origin (e.g. rate-latency service curves). The result is the
// concatenation of the linear pieces of both inputs sorted by increasing
// slope; for beta_{R1,T1} ⊗ beta_{R2,T2} this yields beta_{min(R1,R2),T1+T2}.
func ConvolveConvex(f, g Curve) (Curve, error) {
	if !f.IsConvex() || !g.IsConvex() {
		return Curve{}, fmt.Errorf("minplus: ConvolveConvex requires convex inputs through the origin")
	}
	type piece struct {
		len   float64 // horizontal length; +Inf for the final piece
		slope float64
	}
	collect := func(c Curve) []piece {
		var ps []piece
		for i, s := range c.segs {
			l := math.Inf(1)
			if i+1 < len(c.segs) {
				l = c.segs[i+1].X - s.X
			}
			ps = append(ps, piece{len: l, slope: s.Slope})
		}
		return ps
	}
	ps := append(collect(f), collect(g)...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].slope < ps[j].slope })
	segs := []Segment{}
	x, y := 0.0, 0.0
	for _, p := range ps {
		segs = append(segs, Segment{X: x, Y: y, Slope: p.slope})
		if math.IsInf(p.len, 1) {
			break // pieces with larger slope are never reached
		}
		y += p.slope * p.len
		x += p.len
	}
	c := Curve{segs: dedupeSegs(segs)}
	c.normalize()
	return c, nil
}

// Deconvolve computes the (min,+) deconvolution (f ⊘ g)(t) = sup_{u>=0}
// f(t+u) - g(u) for a concave arrival curve f and a convex service curve g
// with long-term rate strictly greater than f's (otherwise the result is
// unbounded and an error is returned). The result is the tightest arrival
// envelope of the output of a g-server fed with f-constrained traffic.
func Deconvolve(f, g Curve) (Curve, error) {
	// Pure-delay denominator: (f ⊘ delta_d)(t) = sup_u f(t+u) - delta_d(u)
	// = f(t+d) exactly — the left-shift of f. The special case must run
	// before the shape checks below: delta_d has an interior +Inf jump
	// (not convex) and long-term rate 0, both of which would wrongly
	// reject it, and the closed form is exact for arbitrary f.
	if d, ok := g.delayOf(); ok {
		return deconvDelay(f, d), nil
	}
	if !f.IsConcave() {
		return Curve{}, fmt.Errorf("minplus: Deconvolve requires a concave numerator")
	}
	if !g.IsConvex() {
		return Curve{}, fmt.Errorf("minplus: Deconvolve requires a convex denominator")
	}
	if f.LongTermRate() > g.LongTermRate()+Eps {
		return Curve{}, fmt.Errorf("minplus: deconvolution unbounded: arrival rate %g exceeds service rate %g",
			f.LongTermRate(), g.LongTermRate())
	}
	// f(t+u)-g(u) is concave in u for fixed t, so the supremum is attained
	// at u=0, at a breakpoint of g, or at u such that t+u is a breakpoint
	// of f. The resulting curve is concave in t with breakpoints among
	// {xf - xg : xf breakpoint of f, xg breakpoint of g} (>= 0).
	var ts []float64
	for _, xf := range f.breakpointXs() {
		for _, xg := range g.breakpointXs() {
			if d := xf - xg; d >= 0 {
				ts = append(ts, d)
			}
		}
	}
	ts = append(ts, 0)
	sort.Float64s(ts)
	ts = dedupeFloats(ts)

	sup := func(t float64) float64 {
		best := math.Inf(-1)
		consider := func(u float64) {
			if u < 0 {
				return
			}
			if v := f.Eval(t+u) - g.Eval(u); v > best {
				best = v
			}
		}
		consider(0)
		for _, xg := range g.breakpointXs() {
			consider(xg)
		}
		for _, xf := range f.breakpointXs() {
			consider(xf - t)
		}
		return best
	}

	segs := make([]Segment, 0, len(ts))
	for i, t := range ts {
		y := sup(t)
		var slope float64
		if i+1 < len(ts) {
			next := ts[i+1]
			slope = (sup(next) - y) / (next - t)
		} else {
			slope = f.LongTermRate()
		}
		if slope < 0 {
			slope = 0
		}
		segs = append(segs, Segment{X: t, Y: y, Slope: slope})
	}
	c := Curve{segs: dedupeSegs(segs)}
	c.normalize()
	return c, nil
}

// deconvDelay realises (f ⊘ delta_d)(t) = f(t + d): the first piece
// starts at f's value and slope at d, the pieces past d shift left.
// For a single-piece leaky bucket the origin value is literally
// f.Eval(d) = b + r*(d-0), the same float expression as the classical
// burst inflation b + r*d — the deconvolution ablation and the
// classical propagation agree bit for bit.
func deconvDelay(f Curve, d float64) Curve {
	segs := []Segment{{X: 0, Y: f.Eval(d), Slope: f.slopeAt(d)}}
	for _, s := range f.segs {
		if s.X > d+Eps {
			segs = append(segs, Segment{X: s.X - d, Y: s.Y, Slope: s.Slope})
		}
	}
	c := Curve{segs: segs}
	c.normalize()
	return c
}

// FIFOResidual returns the FIFO residual service curve
//
//	beta_theta(t) = [beta(t) - alpha(t - theta)]+ · 1{t > theta}
//
// left for one flow of a FIFO aggregate served by beta when the
// competing traffic is alpha-constrained (Le Boudec & Thiran,
// Thm 6.2.2; Bouillard's FIFO analyses minimise over theta). Every
// theta >= 0 yields a valid service curve for the flow, so callers
// may take the best delay bound over any finite candidate set.
//
// The difference beta(t) - alpha(t-theta) is convex on [theta, +inf)
// (beta's slopes only grow, alpha's only shrink), so it can dip before
// it rises; the dip's positive part would not be non-decreasing. The
// result is therefore the largest non-decreasing minorant of the
// positive part — still a valid (smaller) service curve, and a proper
// Curve. A possible upward jump at theta (when beta(theta) already
// exceeds the residual minimum) is legal for Curve.
func FIFOResidual(beta, alpha Curve, theta float64) (Curve, error) {
	if !beta.IsConvex() {
		return Curve{}, fmt.Errorf("minplus: FIFOResidual requires a convex service curve")
	}
	if !alpha.IsConcave() {
		return Curve{}, fmt.Errorf("minplus: FIFOResidual requires a concave cross-traffic envelope")
	}
	if theta < 0 {
		return Curve{}, fmt.Errorf("minplus: FIFOResidual requires theta >= 0, got %g", theta)
	}
	if beta.LongTermRate() < alpha.LongTermRate()-Eps {
		return Curve{}, fmt.Errorf("minplus: FIFO residual unbounded: cross rate %g exceeds service rate %g",
			alpha.LongTermRate(), beta.LongTermRate())
	}
	// Sample points: theta itself, beta's breakpoints past theta, and
	// alpha's breakpoints shifted right by theta. The difference is
	// linear between consecutive samples.
	xs := []float64{theta}
	for _, x := range beta.breakpointXs() {
		if x > theta+Eps {
			xs = append(xs, x)
		}
	}
	for _, x := range alpha.breakpointXs() {
		if x > Eps {
			xs = append(xs, x+theta)
		}
	}
	sort.Float64s(xs)
	xs = dedupeFloats(xs)
	type pt struct{ x, d, slope float64 }
	pts := make([]pt, 0, len(xs))
	for _, x := range xs {
		pts = append(pts, pt{
			x:     x,
			d:     beta.Eval(x) - alpha.Eval(x-theta),
			slope: beta.slopeAt(x) - alpha.slopeAt(x-theta),
		})
	}
	// The convex difference attains its minimum at the first sample with
	// a non-negative outgoing slope; flatten the decreasing prefix to
	// that minimum (the non-decreasing closure from below).
	iMin := len(pts) - 1
	for i, p := range pts {
		if p.slope >= -Eps {
			iMin = i
			break
		}
	}
	m := pts[iMin].d
	for i := 0; i < iMin; i++ {
		pts[i].d = m
		pts[i].slope = 0
	}
	segs := []Segment{}
	if theta > Eps {
		segs = append(segs, Segment{X: 0, Y: 0, Slope: 0})
	}
	emit := func(x, y, slope float64) {
		if y < 0 {
			y = 0
		}
		if slope < 0 {
			slope = 0
		}
		if n := len(segs); n > 0 && x <= segs[n-1].X+Eps && segs[n-1].X > Eps {
			segs[n-1] = Segment{X: segs[n-1].X, Y: y, Slope: slope}
			return
		}
		segs = append(segs, Segment{X: x, Y: y, Slope: slope})
	}
	for i, p := range pts {
		end := math.Inf(1)
		if i+1 < len(pts) {
			end = pts[i+1].x
		}
		switch {
		case p.d <= Eps && p.slope <= Eps:
			emit(p.x, 0, 0)
		case p.d <= Eps && p.slope > Eps:
			// Root inside the interval (or at its start).
			root := p.x - p.d/p.slope
			if root <= p.x+Eps {
				emit(p.x, 0, p.slope)
			} else {
				emit(p.x, 0, 0)
				if root < end {
					emit(root, 0, p.slope)
				}
			}
		default: // p.d > 0
			emit(p.x, p.d, p.slope)
		}
	}
	c := Curve{segs: dedupeSegs(segs)}
	c.normalize()
	return c, nil
}

// SubPos computes the positive part of a difference, (f - g)+, for a
// convex non-decreasing f through the origin and a concave g (both
// piecewise linear). The result is the convex non-decreasing "residual"
// curve used to build leftover service curves: f's slopes only grow and
// g's only shrink, so f - g crosses zero at most once and the positive
// part stays convex.
func SubPos(f, g Curve) (Curve, error) {
	if !f.IsConvex() {
		return Curve{}, fmt.Errorf("minplus: SubPos requires a convex minuend")
	}
	if !g.IsConcave() {
		return Curve{}, fmt.Errorf("minplus: SubPos requires a concave subtrahend")
	}
	xs := mergeXs(f.breakpointXs(), g.breakpointXs())
	// Locate the zero crossing: the last interval where f-g goes from
	// <=0 to >0 contains at most one root.
	type pt struct{ x, d, slope float64 }
	var pts []pt
	for _, x := range xs {
		pts = append(pts, pt{x: x, d: f.Eval(x) - g.Eval(x), slope: f.slopeAt(x) - g.slopeAt(x)})
	}
	segs := []Segment{}
	emit := func(x, y, slope float64) {
		if y < 0 {
			y = 0
		}
		if slope < 0 {
			slope = 0
		}
		segs = append(segs, Segment{X: x, Y: y, Slope: slope})
	}
	for i, p := range pts {
		end := math.Inf(1)
		if i+1 < len(pts) {
			end = pts[i+1].x
		}
		switch {
		case p.d <= Eps && p.slope <= Eps:
			emit(p.x, 0, 0)
		case p.d <= Eps && p.slope > Eps:
			// Root inside the interval (or at its start).
			root := p.x - p.d/p.slope
			if root <= p.x+Eps {
				emit(p.x, 0, p.slope)
			} else {
				emit(p.x, 0, 0)
				if root < end {
					emit(root, 0, p.slope)
				}
			}
		default: // p.d > 0
			emit(p.x, p.d, p.slope)
		}
	}
	c := Curve{segs: dedupeSegs(segs)}
	c.normalize()
	// The clamping can produce tiny downward kinks from float noise;
	// validate via NewCurve to be safe.
	return NewCurve(c.segs)
}

// slopeAt returns the slope of the piece containing t (right-continuous).
func (c Curve) slopeAt(t float64) float64 {
	if t < 0 {
		return 0
	}
	i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].X > t+Eps }) - 1
	if i < 0 {
		i = 0
	}
	return c.segs[i].Slope
}

func shiftDown(c Curve, d float64) Curve {
	segs := c.Segments()
	for i := range segs {
		segs[i].Y -= d
		if segs[i].Y < 0 {
			segs[i].Y = 0
		}
	}
	return Curve{segs: segs}
}

func shiftUp(c Curve, d float64) Curve {
	segs := c.Segments()
	for i := range segs {
		segs[i].Y += d
	}
	return Curve{segs: segs}
}

func mergeXs(a, b []float64) []float64 {
	xs := append(append([]float64{}, a...), b...)
	sort.Float64s(xs)
	return dedupeFloats(xs)
}

func dedupeFloats(xs []float64) []float64 {
	out := xs[:0]
	for _, x := range xs {
		if len(out) == 0 || x > out[len(out)-1]+Eps {
			out = append(out, x)
		}
	}
	return out
}

func dedupeSegs(segs []Segment) []Segment {
	out := segs[:0]
	for _, s := range segs {
		if len(out) == 0 || s.X > out[len(out)-1].X+Eps {
			out = append(out, s)
		}
	}
	return out
}
