// Package minplus implements the fragment of (min,+) algebra on
// piecewise-linear curves needed by deterministic Network Calculus:
// arrival curves (concave, e.g. leaky buckets), service curves (convex,
// e.g. rate-latency), pointwise addition and minimum, (min,+) convolution
// and deconvolution, and the horizontal/vertical deviations that yield
// delay and backlog bounds.
//
// Curves are non-negative, non-decreasing, right-continuous piecewise-linear
// functions on [0, +inf). Time is expressed in microseconds and values in
// bits throughout this repository, but the package itself is unit-agnostic.
package minplus

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Eps is the absolute tolerance used for geometric comparisons between
// curve coordinates. Values within Eps are considered equal.
const Eps = 1e-9

// joinEps is the looser absolute tolerance for vertical continuity at
// segment joins: Y values carry rounding accumulated across convolution
// chains, so equality of left limit and segment start is asserted at
// 1e-6 rather than Eps. Deliberately a named constant, not a literal at
// the comparison sites (DET004).
const joinEps = 1e-6

// Segment is one linear piece of a Curve. The piece covers [X, nextX)
// (or [X, +inf) for the last piece) and evaluates to Y + Slope*(t-X).
// A jump discontinuity at X is expressed by Y exceeding the left limit
// of the previous piece; curves remain right-continuous.
type Segment struct {
	X     float64 // start abscissa of the piece
	Y     float64 // value at X (right limit)
	Slope float64 // non-negative slope on the piece
}

// Curve is a non-decreasing, right-continuous piecewise-linear function
// on [0, +inf). The zero value is not usable; construct curves with
// NewCurve, LeakyBucket, RateLatency, Affine, Zero, or Plateau.
type Curve struct {
	segs []Segment
}

// NewCurve builds a curve from segments. The segments must start at X=0,
// have strictly increasing X, non-negative slopes, and must not decrease
// across piece boundaries (upward jumps are allowed).
func NewCurve(segs []Segment) (Curve, error) {
	if len(segs) == 0 {
		return Curve{}, fmt.Errorf("minplus: curve needs at least one segment")
	}
	if math.Abs(segs[0].X) > Eps {
		return Curve{}, fmt.Errorf("minplus: first segment must start at X=0, got %g", segs[0].X)
	}
	cp := make([]Segment, len(segs))
	copy(cp, segs)
	cp[0].X = 0
	for i, s := range cp {
		if s.Slope < -Eps {
			return Curve{}, fmt.Errorf("minplus: segment %d has negative slope %g", i, s.Slope)
		}
		if s.Y < -Eps {
			return Curve{}, fmt.Errorf("minplus: segment %d has negative value %g", i, s.Y)
		}
		if i > 0 {
			prev := cp[i-1]
			if s.X <= prev.X+Eps {
				return Curve{}, fmt.Errorf("minplus: segment %d abscissa %g does not increase past %g", i, s.X, prev.X)
			}
			leftLimit := prev.Y + prev.Slope*(s.X-prev.X)
			if s.Y < leftLimit-joinEps {
				return Curve{}, fmt.Errorf("minplus: curve decreases at X=%g (%g -> %g)", s.X, leftLimit, s.Y)
			}
		}
	}
	c := Curve{segs: cp}
	c.normalize()
	return c, nil
}

// MustCurve is NewCurve that panics on invalid input. Intended for
// package-internal construction of curves already known to be valid.
func MustCurve(segs []Segment) Curve {
	c, err := NewCurve(segs)
	if err != nil {
		panic(err)
	}
	return c
}

// Zero returns the curve that is identically zero.
func Zero() Curve {
	return Curve{segs: []Segment{{X: 0, Y: 0, Slope: 0}}}
}

// Affine returns the curve t -> b + r*t (value b at t=0).
// With b as a burst and r as a sustained rate this is the gamma_{r,b}
// "leaky bucket" arrival curve of Network Calculus, except that the
// conventional jump at t=0 is realised as a right-continuous value b.
func Affine(b, r float64) Curve {
	return Curve{segs: []Segment{{X: 0, Y: b, Slope: r}}}
}

// LeakyBucket is an alias for Affine that reads better at call sites
// dealing with arrival envelopes: burst b, long-term rate r.
func LeakyBucket(b, r float64) Curve { return Affine(b, r) }

// RateLatency returns the service curve beta_{R,T}: t -> R * max(0, t-T).
func RateLatency(rate, latency float64) Curve {
	if latency <= Eps {
		return Curve{segs: []Segment{{X: 0, Y: 0, Slope: rate}}}
	}
	return Curve{segs: []Segment{
		{X: 0, Y: 0, Slope: 0},
		{X: latency, Y: 0, Slope: rate},
	}}
}

// Plateau returns the curve that is v everywhere (constant).
func Plateau(v float64) Curve {
	return Curve{segs: []Segment{{X: 0, Y: v, Slope: 0}}}
}

// Delay returns the pure-delay service curve delta_d: 0 on [0, d] and
// +Inf beyond. A server offering delta_d guarantees every bit is out
// within d; deconvolving an arrival envelope against it yields the
// exact output envelope f(t + d) (no finite-rate approximation).
// d <= 0 degenerates to the (min,+) identity: 0 at the origin, +Inf
// for every positive t.
func Delay(d float64) Curve {
	if d <= 0 {
		return Curve{segs: []Segment{{X: 0, Y: 0, Slope: math.Inf(1)}}}
	}
	return Curve{segs: []Segment{
		{X: 0, Y: 0, Slope: 0},
		{X: d, Y: math.Inf(1), Slope: 0},
	}}
}

// delayOf reports whether c is a pure-delay curve (built by Delay) and
// returns its delay. Pure delays are the only curves in the package
// with an infinite ordinate, so the shape test is exact.
func (c Curve) delayOf() (float64, bool) {
	switch len(c.segs) {
	case 1:
		if s := c.segs[0]; s.Y == 0 && math.IsInf(s.Slope, 1) {
			return 0, true
		}
	case 2:
		a, b := c.segs[0], c.segs[1]
		if a.Y == 0 && a.Slope == 0 && math.IsInf(b.Y, 1) {
			return b.X, true
		}
	}
	return 0, false
}

// normalize merges consecutive collinear segments in place.
func (c *Curve) normalize() {
	if len(c.segs) <= 1 {
		return
	}
	out := c.segs[:1]
	for _, s := range c.segs[1:] {
		last := &out[len(out)-1]
		joinY := last.Y + last.Slope*(s.X-last.X)
		if math.Abs(joinY-s.Y) <= joinEps && math.Abs(last.Slope-s.Slope) <= Eps {
			continue // collinear continuation: drop the breakpoint
		}
		out = append(out, s)
	}
	c.segs = out
}

// Segments returns a copy of the curve's linear pieces.
func (c Curve) Segments() []Segment {
	cp := make([]Segment, len(c.segs))
	copy(cp, c.segs)
	return cp
}

// NumSegments returns the number of linear pieces.
func (c Curve) NumSegments() int { return len(c.segs) }

// Eval returns the curve value at t (right-continuous). Negative t
// evaluates to 0 by the Network Calculus convention f(t)=0 for t<0.
func (c Curve) Eval(t float64) float64 {
	if t < 0 {
		return 0
	}
	i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].X > t }) - 1
	if i < 0 {
		i = 0
	}
	s := c.segs[i]
	if t == s.X {
		// Exact for finite slopes (Y + Slope*0 == Y) and required for the
		// pure-delay curve, whose infinite slope would yield Inf*0 = NaN.
		return s.Y
	}
	return s.Y + s.Slope*(t-s.X)
}

// LastSegment returns the final (unbounded) piece of the curve.
func (c Curve) LastSegment() Segment { return c.segs[len(c.segs)-1] }

// LongTermRate returns the asymptotic slope of the curve.
func (c Curve) LongTermRate() float64 { return c.segs[len(c.segs)-1].Slope }

// ValueAtZero returns f(0) (the right limit at the origin; for a leaky
// bucket this is the burst).
func (c Curve) ValueAtZero() float64 { return c.segs[0].Y }

// IsConcave reports whether the curve is concave on (0, +inf), i.e.
// slopes are non-increasing and the only discontinuity is the initial
// jump at t=0. Leaky buckets and their minima are concave.
func (c Curve) IsConcave() bool {
	for i := 1; i < len(c.segs); i++ {
		prev, s := c.segs[i-1], c.segs[i]
		if s.Slope > prev.Slope+Eps {
			return false
		}
		leftLimit := prev.Y + prev.Slope*(s.X-prev.X)
		if s.Y > leftLimit+joinEps { // interior jump
			return false
		}
	}
	return true
}

// IsConvex reports whether the curve is convex with f(0)=0 and no jumps:
// slopes non-decreasing and pieces continuous. Rate-latency curves and
// their convolutions are convex.
func (c Curve) IsConvex() bool {
	if c.segs[0].Y > Eps {
		return false
	}
	for i := 1; i < len(c.segs); i++ {
		prev, s := c.segs[i-1], c.segs[i]
		if s.Slope < prev.Slope-Eps {
			return false
		}
		leftLimit := prev.Y + prev.Slope*(s.X-prev.X)
		if math.Abs(s.Y-leftLimit) > joinEps {
			return false
		}
	}
	return true
}

// breakpointXs returns the abscissae of all piece boundaries.
func (c Curve) breakpointXs() []float64 {
	xs := make([]float64, len(c.segs))
	for i, s := range c.segs {
		xs[i] = s.X
	}
	return xs
}

// breakpointYs returns the candidate ordinates where the pseudo-inverse of
// the curve changes slope: for every piece boundary both the left limit and
// the right value (they differ at jumps).
func (c Curve) breakpointYs() []float64 {
	ys := make([]float64, 0, 2*len(c.segs))
	for i, s := range c.segs {
		if i > 0 {
			prev := c.segs[i-1]
			ys = append(ys, prev.Y+prev.Slope*(s.X-prev.X))
		}
		ys = append(ys, s.Y)
	}
	return ys
}

// InverseInf returns the pseudo-inverse inf{ t >= 0 : f(t) >= y }.
// It returns +Inf when the curve never reaches y.
func (c Curve) InverseInf(y float64) float64 {
	if y <= c.segs[0].Y+Eps {
		return 0
	}
	for i, s := range c.segs {
		var end float64
		if i+1 < len(c.segs) {
			end = s.Y + s.Slope*(c.segs[i+1].X-s.X)
		} else {
			if s.Slope <= Eps {
				if y <= s.Y+Eps {
					return s.X
				}
				return math.Inf(1)
			}
			return s.X + (y-s.Y)/s.Slope
		}
		if y <= s.Y+Eps {
			return s.X
		}
		if y <= end+Eps {
			if s.Slope <= Eps {
				return c.segs[i+1].X
			}
			t := s.X + (y-s.Y)/s.Slope
			next := c.segs[i+1].X
			if t > next {
				t = next
			}
			return t
		}
	}
	return math.Inf(1) // unreachable
}

// String renders the curve as a compact list of pieces, for debugging
// and test failure messages.
func (c Curve) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i, s := range c.segs {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "[%g: %g +%g·t]", s.X, s.Y, s.Slope)
	}
	b.WriteString("}")
	return b.String()
}
