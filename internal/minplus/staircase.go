package minplus

import "fmt"

// Staircase returns the exact arrival curve of a sporadic flow with
// frame size s and minimum inter-arrival time T:
//
//	alpha(t) = s * (1 + floor(t / T))
//
// truncated after steps exact steps, beyond which the curve continues
// with the flow's leaky-bucket envelope gamma_{s/T, s} (which dominates
// the staircase everywhere and coincides with it at step instants, so
// the truncated curve is still a valid arrival curve and is exact on
// [0, steps*T]).
//
// The paper's section II-B names the use of leaky-bucket envelopes
// instead of the exact arrival curve as one of the intrinsic pessimism
// sources of the Network Calculus approach; Staircase is the
// corresponding refinement (netcalc.Options.StairSteps).
func Staircase(s, T float64, steps int) (Curve, error) {
	if s <= 0 || T <= 0 {
		return Curve{}, fmt.Errorf("minplus: Staircase needs positive size and period, got s=%g T=%g", s, T)
	}
	if steps < 1 {
		return Curve{}, fmt.Errorf("minplus: Staircase needs at least one step, got %d", steps)
	}
	segs := make([]Segment, 0, steps+1)
	for k := 0; k < steps; k++ {
		segs = append(segs, Segment{X: float64(k) * T, Y: s * float64(k+1), Slope: 0})
	}
	segs = append(segs, Segment{X: float64(steps) * T, Y: s * float64(steps+1), Slope: s / T})
	return NewCurve(segs)
}

// MustStaircase is Staircase that panics on invalid input.
func MustStaircase(s, T float64, steps int) Curve {
	c, err := Staircase(s, T, steps)
	if err != nil {
		panic(err)
	}
	return c
}

// StaircaseWithJitter returns the arrival curve of a sporadic flow with
// frame size s and period T observed after it accumulated up to jitter
// time units of delay variation:
//
//	alpha(t) = s * (1 + floor((t + jitter) / T))
//
// exact for the first steps jumps after t=0, then continued with the
// dominating jittered leaky bucket gamma_{s/T, s*(1+jitter/T)}. With
// jitter = 0 this is Staircase.
func StaircaseWithJitter(s, T, jitter float64, steps int) (Curve, error) {
	if jitter < 0 {
		return Curve{}, fmt.Errorf("minplus: negative jitter %g", jitter)
	}
	if jitter == 0 {
		return Staircase(s, T, steps)
	}
	if s <= 0 || T <= 0 {
		return Curve{}, fmt.Errorf("minplus: StaircaseWithJitter needs positive size and period, got s=%g T=%g", s, T)
	}
	if steps < 1 {
		return Curve{}, fmt.Errorf("minplus: StaircaseWithJitter needs at least one step, got %d", steps)
	}
	// Count already released at t=0: m0 = floor(jitter/T); jumps occur at
	// t_m = m*T - jitter for integer m > jitter/T.
	m0 := int(jitter / T)
	segs := []Segment{{X: 0, Y: s * float64(m0+1), Slope: 0}}
	for k := 1; k <= steps; k++ {
		m := m0 + k
		t := float64(m)*T - jitter
		if t <= Eps {
			// Floating-point edge: the jump coincides with the origin.
			segs[0].Y = s * float64(m+1)
			continue
		}
		segs = append(segs, Segment{X: t, Y: s * float64(m+1), Slope: 0})
	}
	// Tail: continue with the jittered leaky bucket from the last jump
	// (it dominates the staircase and coincides with it at every jump).
	segs[len(segs)-1].Slope = s / T
	return NewCurve(segs)
}
