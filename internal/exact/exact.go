// Package exact searches for worst-case end-to-end delays by exploring
// source emission offsets with the discrete-event simulator: a coarse
// grid enumeration over every VL's offset within its BAG, followed by
// per-path coordinate-descent refinement with step halving.
//
// The result is an achievable delay per path — a lower bound on the true
// worst case that converges toward it as the grid refines. Together with
// the analytic upper bounds of internal/netcalc and internal/trajectory
// it sandwiches the true worst case and quantifies each analysis'
// pessimism, the methodology of the companion paper (Charara et al.,
// ECRTS 2006) for small configurations.
//
// The search cost is exponential in the number of VLs; Options.MaxCombos
// guards against accidental use on large configurations.
package exact

import (
	"context"
	"fmt"
	"math"

	"afdx/internal/afdx"
	"afdx/internal/obs"
	"afdx/internal/sim"
)

// Options parameterises the search.
type Options struct {
	// GridUs is the coarse enumeration step (default: BAG/8 per VL).
	GridUs float64
	// Refine is the number of step-halving rounds of per-path coordinate
	// descent after the grid phase (0 disables refinement).
	Refine int
	// MaxCombos caps the size of the grid enumeration.
	MaxCombos int
	// DurationUs is the simulated horizon per evaluation (default:
	// twice the largest BAG).
	DurationUs float64
}

// DefaultOptions uses an eighth-of-BAG grid, ten refinement rounds and a
// one-million-combination budget.
func DefaultOptions() Options {
	return Options{Refine: 10, MaxCombos: 1_000_000}
}

// Result carries the search outcome.
type Result struct {
	// Delays is the best (largest) observed delay per path.
	Delays map[afdx.PathID]float64
	// Offsets is, per path, the emission offset assignment achieving it.
	Offsets map[afdx.PathID]map[string]float64
	// Evaluations counts simulator runs.
	Evaluations int
}

// MaxDelayUs returns the largest delay found on any path.
func (r *Result) MaxDelayUs() float64 {
	m := 0.0
	for _, d := range r.Delays {
		if d > m {
			//detcheck:allow DET001: running max over float64 values is a comparison, not arithmetic — no rounding, so the result is iteration-order independent
			m = d
		}
	}
	return m
}

type searcher struct {
	ctx   context.Context
	pg    *afdx.PortGraph
	opts  Options
	res   *Result
	evals int
}

// Search explores emission offsets and returns the worst achievable
// delays found. It fails when the grid enumeration would exceed
// MaxCombos.
func Search(pg *afdx.PortGraph, opts Options) (*Result, error) {
	return SearchCtx(context.Background(), pg, opts)
}

// SearchCtx is Search with observability: the run is wrapped in an
// "exact" span (each simulator evaluation appears as a "sim" child),
// and the evaluation count lands in the context registry. The search
// is fully deterministic, so both are too.
func SearchCtx(ctx context.Context, pg *afdx.PortGraph, opts Options) (*Result, error) {
	ctx, span := obs.StartSpan(ctx, "exact")
	defer span.End()
	vls := pg.Net.VLs
	if len(vls) == 0 {
		return nil, fmt.Errorf("exact: no virtual links")
	}
	if opts.MaxCombos <= 0 {
		opts.MaxCombos = DefaultOptions().MaxCombos
	}
	maxBag := 0.0
	for _, v := range vls {
		if v.BAGUs() > maxBag {
			maxBag = v.BAGUs()
		}
	}
	if opts.DurationUs <= 0 {
		opts.DurationUs = 2 * maxBag
	}
	// Per-VL grid sizes. The first VL is pinned to offset 0: delays are
	// invariant under a common shift of all offsets.
	steps := make([]int, len(vls))
	grids := make([]float64, len(vls))
	combos := 1
	for i, v := range vls {
		g := opts.GridUs
		if g <= 0 {
			g = v.BAGUs() / 8
		}
		if g > v.BAGUs() {
			g = v.BAGUs()
		}
		grids[i] = g
		steps[i] = int(math.Max(1, math.Round(v.BAGUs()/g)))
		if i == 0 {
			steps[i] = 1
		}
		if combos > opts.MaxCombos/steps[i] {
			return nil, fmt.Errorf("exact: grid enumeration exceeds MaxCombos=%d (use a coarser grid or fewer VLs)", opts.MaxCombos)
		}
		combos *= steps[i]
	}

	s := &searcher{
		ctx:  ctx,
		pg:   pg,
		opts: opts,
		res: &Result{
			Delays:  map[afdx.PathID]float64{},
			Offsets: map[afdx.PathID]map[string]float64{},
		},
	}

	// Phase 1: grid enumeration with an odometer.
	idx := make([]int, len(vls))
	offsets := map[string]float64{}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i, v := range vls {
			offsets[v.ID] = float64(idx[i]) * grids[i]
		}
		if err := s.evaluate(offsets); err != nil {
			return nil, err
		}
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < steps[k] {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}

	// Phase 2: per-path coordinate descent with step halving.
	for _, pid := range pg.Net.AllPaths() {
		if err := s.refine(pid, grids); err != nil {
			return nil, err
		}
	}
	s.res.Evaluations = s.evals
	if reg := obs.RegistryFrom(ctx); reg != nil {
		reg.Counter("exact.evaluations", obs.Deterministic,
			"simulator runs performed by the offset search").Add(int64(s.evals))
	}
	return s.res, nil
}

// evaluate runs one simulation and folds its per-path maxima into the
// result.
func (s *searcher) evaluate(offsets map[string]float64) error {
	s.evals++
	cfg := sim.Config{
		Model:      sim.GreedySources,
		DurationUs: s.opts.DurationUs,
		OffsetsUs:  offsets,
	}
	r, err := sim.RunCtx(s.ctx, s.pg, cfg)
	if err != nil {
		return err
	}
	for pid, st := range r.Paths {
		if st.MaxDelayUs > s.res.Delays[pid] {
			s.res.Delays[pid] = st.MaxDelayUs
			s.res.Offsets[pid] = cloneOffsets(offsets)
		}
	}
	return nil
}

// refine hill-climbs one path's offset assignment: for each VL in turn,
// try moving its offset by ±step (wrapping within the BAG) and keep
// improvements; halve the step each round.
func (s *searcher) refine(pid afdx.PathID, grids []float64) error {
	base := s.res.Offsets[pid]
	if base == nil {
		return nil // path never observed (no frame within the horizon)
	}
	cur := cloneOffsets(base)
	best := s.res.Delays[pid]
	step := maxOf(grids) / 2
	for round := 0; round < s.opts.Refine && step >= 0.5; round++ {
		improved := false
		for _, v := range s.pg.Net.VLs {
			for _, d := range []float64{+step, -step} {
				trial := cloneOffsets(cur)
				trial[v.ID] = wrap(trial[v.ID]+d, v.BAGUs())
				got, err := s.evaluatePath(pid, trial)
				if err != nil {
					return err
				}
				if got > best {
					best = got
					cur = trial
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	if best > s.res.Delays[pid] {
		s.res.Delays[pid] = best
		s.res.Offsets[pid] = cur
	}
	return nil
}

// evaluatePath runs one simulation and returns the given path's maximum.
func (s *searcher) evaluatePath(pid afdx.PathID, offsets map[string]float64) (float64, error) {
	s.evals++
	cfg := sim.Config{
		Model:      sim.GreedySources,
		DurationUs: s.opts.DurationUs,
		OffsetsUs:  offsets,
	}
	r, err := sim.RunCtx(s.ctx, s.pg, cfg)
	if err != nil {
		return 0, err
	}
	// Fold the observations of every path (they come for free).
	for p, st := range r.Paths {
		if st.MaxDelayUs > s.res.Delays[p] {
			s.res.Delays[p] = st.MaxDelayUs
			s.res.Offsets[p] = cloneOffsets(offsets)
		}
	}
	return r.Paths[pid].MaxDelayUs, nil
}

func cloneOffsets(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func wrap(x, period float64) float64 {
	x = math.Mod(x, period)
	if x < 0 {
		x += period
	}
	return x
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
