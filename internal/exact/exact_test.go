package exact

import (
	"math"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/netcalc"
	"afdx/internal/trajectory"
)

func figure2Graph(t *testing.T) *afdx.PortGraph {
	t.Helper()
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestSearchSingleFlowIsTight(t *testing.T) {
	// v5's path carries no competitor: any offset produces the exact
	// worst case of 112 us, matching the trajectory bound exactly.
	pg := figure2Graph(t)
	opts := DefaultOptions()
	opts.GridUs = 1000
	opts.Refine = 0
	res, err := Search(pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Delays[afdx.PathID{VL: "v5", PathIdx: 0}]
	if math.Abs(d-112) > 1e-6 {
		t.Errorf("exact worst case for v5 = %g, want 112", d)
	}
}

func TestSearchSandwichedByAnalyses(t *testing.T) {
	pg := figure2Graph(t)
	nc, err := netcalc.Analyze(pg, netcalc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	trU, err := trajectory.Analyze(pg, trajectory.Options{Grouping: false})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.GridUs = 500
	opts.Refine = 12
	res, err := Search(pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for pid, d := range res.Delays {
		if d > nc.PathDelays[pid]+1e-6 {
			t.Errorf("path %v: found %g above the NC bound %g", pid, d, nc.PathDelays[pid])
		}
		if d > trU.PathDelays[pid]+1e-6 {
			t.Errorf("path %v: found %g above the ungrouped trajectory bound %g",
				pid, d, trU.PathDelays[pid])
		}
	}
	if res.Evaluations <= 0 {
		t.Error("search should report its evaluation count")
	}
}

func TestSearchFindsDeepWorstCase(t *testing.T) {
	// The refinement should reach at least the staggered 287 us scenario
	// for v1 (the grouped-trajectory optimism witness), well above what
	// the synchronized burst achieves.
	pg := figure2Graph(t)
	opts := DefaultOptions()
	opts.GridUs = 500
	opts.Refine = 12
	res, err := Search(pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Delays[afdx.PathID{VL: "v1", PathIdx: 0}]
	if d < 280 {
		t.Errorf("search reached only %g us for v1, want >= 280 (achievable: 287)", d)
	}
	if d > 288+1e-6 {
		t.Errorf("search found %g us for v1, above the sound 288 us bound", d)
	}
	if off := res.Offsets[afdx.PathID{VL: "v1", PathIdx: 0}]; len(off) != 5 {
		t.Errorf("witness offsets should cover all 5 VLs, got %v", off)
	}
}

func TestSearchComboGuard(t *testing.T) {
	pg := figure2Graph(t)
	opts := DefaultOptions()
	opts.GridUs = 1 // 4000^4 combinations
	if _, err := Search(pg, opts); err == nil {
		t.Fatal("expected MaxCombos guard to trip")
	}
}

func TestSearchEmptyNetwork(t *testing.T) {
	n := &afdx.Network{
		Name:       "empty",
		Params:     afdx.DefaultParams(),
		EndSystems: []string{"a"},
	}
	// No VLs: BuildPortGraph succeeds but Search must refuse.
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Search(pg, DefaultOptions()); err == nil {
		t.Fatal("expected error for empty VL set")
	}
}

func TestWrap(t *testing.T) {
	if got := wrap(4500, 4000); got != 500 {
		t.Errorf("wrap(4500,4000) = %g, want 500", got)
	}
	if got := wrap(-500, 4000); got != 3500 {
		t.Errorf("wrap(-500,4000) = %g, want 3500", got)
	}
}

func TestResultMaxDelayUs(t *testing.T) {
	pg := figure2Graph(t)
	opts := DefaultOptions()
	opts.GridUs = 2000
	opts.Refine = 0
	res, err := Search(pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := res.MaxDelayUs()
	if m <= 0 {
		t.Fatalf("global max = %g, want > 0", m)
	}
	for _, d := range res.Delays {
		if d > m {
			t.Errorf("per-path delay %g exceeds the reported max %g", d, m)
		}
	}
}
