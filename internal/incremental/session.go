package incremental

import (
	"context"
	"errors"
	"fmt"

	"afdx/internal/afdx"
	"afdx/internal/core"
	"afdx/internal/netcalc"
	"afdx/internal/trajectory"
)

// ErrClosed is returned by every Session method after Close.
var ErrClosed = errors.New("incremental: session closed")

// BadDeltaError marks a delta batch the session rejected — an unknown
// VL, a malformed mutation, or a batch whose result fails validation.
// The session is unchanged when it is returned. Transports use it to
// separate client mistakes (a bad request) from analysis failures.
type BadDeltaError struct{ Err error }

func (e *BadDeltaError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *BadDeltaError) Unwrap() error { return e.Err }

// Options configures a what-if Session: the validation mode used when a
// delta batch is re-validated, and the engine option sets the cached
// analyses run under. A session's caches are bound to these options;
// change options by opening a new session.
type Options struct {
	Mode       afdx.ValidationMode
	NC         netcalc.Options
	Trajectory trajectory.Options
}

// DefaultOptions analyses with both engines' paper defaults under
// Strict validation.
func DefaultOptions() Options {
	return Options{
		Mode:       afdx.Strict,
		NC:         netcalc.DefaultOptions(),
		Trajectory: trajectory.DefaultOptions(),
	}
}

// Result carries one analysis round of a session: both engine results
// and the combined per-path comparison, each bit-identical to what a
// cold run on the session's current network would produce.
type Result struct {
	NC         *netcalc.Result
	Trajectory *trajectory.Result
	Comparison *core.Comparison
}

// Session is the stateful what-if loop: it owns a private clone of a
// configuration, re-validates and swaps it under Apply'd deltas, and
// Analyze serves unchanged ports and paths from the engines' incremental
// caches. Sessions are not safe for concurrent use (the caches are
// single-writer); Options.NC.Parallel / Options.Trajectory.Parallel
// still fan each individual analysis out, and results do not depend on
// those values.
type Session struct {
	opts   Options
	net    *afdx.Network
	pg     *afdx.PortGraph
	nc     *netcalc.Cache
	ncTier map[netcalc.Analysis]*netcalc.Cache // non-default tiers, lazily wired
	tr     *trajectory.Cache
	closed bool
}

// NewSession clones net (later deltas never touch the caller's value),
// validates it by building the port graph, and wires the engine caches.
// When the session's NC options match the trajectory engine's internal
// prefix run (netcalc defaults, any Parallel), both analyses share one
// per-port cache and the prefix run of Analyze is a pure cache hit.
func NewSession(net *afdx.Network, opts Options) (*Session, error) {
	clone := net.Clone()
	pg, err := afdx.BuildPortGraph(clone, opts.Mode)
	if err != nil {
		return nil, fmt.Errorf("incremental: %w", err)
	}
	tr := trajectory.NewCache(opts.Trajectory)
	nc := netcalc.NewCache(opts.NC)
	norm, def := opts.NC, netcalc.DefaultOptions()
	norm.Parallel, def.Parallel = 0, 0
	if norm == def {
		nc = tr.PrefixNCCache()
	} else {
		// Distinct caches still fingerprint the same graphs: share the
		// per-graph memo so each round renders them once.
		nc.ShareGraphMemo(tr.PrefixNCCache())
	}
	return &Session{opts: opts, net: clone, pg: pg, nc: nc, tr: tr}, nil
}

// Network returns a clone of the session's current configuration (with
// all applied deltas), e.g. for saving an accepted what-if scenario.
// Nil after Close.
func (s *Session) Network() *afdx.Network {
	if s.closed {
		return nil
	}
	return s.net.Clone()
}

// Options returns the option set the session was opened with.
func (s *Session) Options() Options { return s.opts }

// PortGraph returns the port-level view of the session's current
// configuration (e.g. for rendering per-path floors alongside an
// analysis round). Callers must treat it as read-only: the session's
// caches key off it.
func (s *Session) PortGraph() *afdx.PortGraph { return s.pg }

// Apply mutates the session's configuration by the given deltas, in
// order, as one atomic batch: the batch is applied to a scratch clone
// and re-validated, and only on success does the session swap to the
// new configuration. On error the session is unchanged; every rejection
// is reported as a *BadDeltaError.
func (s *Session) Apply(deltas ...Delta) error {
	if s.closed {
		return ErrClosed
	}
	cand := s.net.Clone()
	if err := Apply(cand, deltas...); err != nil {
		return &BadDeltaError{Err: err}
	}
	pg, err := afdx.BuildPortGraph(cand, s.opts.Mode)
	if err != nil {
		return &BadDeltaError{Err: fmt.Errorf("incremental: delta batch rejected: %w", err)}
	}
	s.net, s.pg = cand, pg
	return nil
}

// Apply mutates a network in place by the given deltas, in order,
// without re-validating the result — the caller owns validation (the
// Session method applies to a clone and rebuilds the port graph; cold
// replay harnesses rebuild their own graph). On error the network may
// be partially mutated; apply to a scratch clone when that matters.
func Apply(n *afdx.Network, deltas ...Delta) error {
	for _, d := range deltas {
		if err := applyDelta(n, d); err != nil {
			return err
		}
	}
	return nil
}

// ncCacheFor returns the NC cache and option set for one analysis
// tier. The session's default tier keeps the primary cache (which may
// be shared with the trajectory engine's prefix run); every other tier
// gets its own lazily created cache — a netcalc.Cache is bound to one
// exact option set, so per-tier caches are what keeps alternating-tier
// clients warm instead of thrashing one cache's generation slots. The
// tier caches share the default cache's per-graph fingerprint memo
// (fingerprints are option-independent), so each round renders the
// graph once however many tiers it is analysed under.
func (s *Session) ncCacheFor(tier netcalc.Analysis) (*netcalc.Cache, netcalc.Options) {
	o := s.opts.NC
	o.Analysis = tier
	if tier == s.opts.NC.Analysis {
		return s.nc, o
	}
	c, ok := s.ncTier[tier]
	if !ok {
		c = netcalc.NewCache(o)
		c.ShareGraphMemo(s.nc)
		if s.ncTier == nil {
			s.ncTier = map[netcalc.Analysis]*netcalc.Cache{}
		}
		s.ncTier[tier] = c
	}
	return c, o
}

// Analyze runs both engines over the current configuration through the
// session's caches and assembles the combined comparison. Ports and
// paths whose inputs are unchanged since the previous Analyze are
// served from cache; the result is bit-identical to a cold run. An
// analysis error (e.g. cancellation, instability after a delta) leaves
// the caches consistent — every stored entry is still keyed by its
// exact inputs — so the session remains usable.
func (s *Session) Analyze(ctx context.Context) (*Result, error) {
	if s.closed {
		return nil, ErrClosed
	}
	return s.AnalyzeTier(ctx, s.opts.NC.Analysis)
}

// AnalyzeTier is Analyze with the NC analysis tier overridden for this
// round only: the NC engine runs under the session's options with
// Analysis swapped to tier, through that tier's dedicated cache. The
// trajectory engine is tier-independent and runs unchanged, so the
// combined comparison is min(tier's NC bound, trajectory) — sound for
// every tier. Bounds are bit-identical to a cold run at the same tier.
func (s *Session) AnalyzeTier(ctx context.Context, tier netcalc.Analysis) (*Result, error) {
	if s.closed {
		return nil, ErrClosed
	}
	cache, ncOpts := s.ncCacheFor(tier)
	nc, err := netcalc.AnalyzeWithCacheCtx(ctx, s.pg, ncOpts, cache)
	if err != nil {
		return nil, fmt.Errorf("incremental: network calculus analysis: %w", err)
	}
	tr, err := trajectory.AnalyzeWithCacheCtx(ctx, s.pg, s.opts.Trajectory, s.tr)
	if err != nil {
		return nil, fmt.Errorf("incremental: trajectory analysis: %w", err)
	}
	cmp, err := core.Combine(s.pg, nc, tr)
	if err != nil {
		return nil, fmt.Errorf("incremental: %w", err)
	}
	return &Result{NC: nc, Trajectory: tr, Comparison: cmp}, nil
}

// WhatIf is Apply + Analyze: one what-if step. The delta batch is
// atomic; if it is rejected, the session's configuration is unchanged
// and no analysis runs.
func (s *Session) WhatIf(ctx context.Context, deltas ...Delta) (*Result, error) {
	if err := s.Apply(deltas...); err != nil {
		return nil, err
	}
	return s.Analyze(ctx)
}

// WhatIfTier is WhatIf with the NC analysis tier overridden for this
// round.
func (s *Session) WhatIfTier(ctx context.Context, tier netcalc.Analysis, deltas ...Delta) (*Result, error) {
	if err := s.Apply(deltas...); err != nil {
		return nil, err
	}
	return s.AnalyzeTier(ctx, tier)
}

// Peek is WhatIf without the commit: the deltas are applied, the
// mutated configuration analysed through the session's caches, and the
// session's configuration restored — the next Analyze sees the state
// from before the Peek. The caches keep both variants' entries (each
// keyed by its exact inputs; the two-generation slots make the
// apply/restore alternation cheap), so peeking never degrades later
// rounds. The serving layer's /whatif endpoint is this call.
func (s *Session) Peek(ctx context.Context, deltas ...Delta) (*Result, error) {
	return s.PeekTier(ctx, s.opts.NC.Analysis, deltas...)
}

// PeekTier is Peek with the NC analysis tier overridden for this round.
func (s *Session) PeekTier(ctx context.Context, tier netcalc.Analysis, deltas ...Delta) (*Result, error) {
	if s.closed {
		return nil, ErrClosed
	}
	savedNet, savedPG := s.net, s.pg
	if err := s.Apply(deltas...); err != nil {
		return nil, err
	}
	res, err := s.AnalyzeTier(ctx, tier)
	s.net, s.pg = savedNet, savedPG
	return res, err
}

// Close releases the session's configuration and both engine caches so
// a long-lived owner (the serving layer's session pool) can return the
// memory; every subsequent method reports ErrClosed. Close follows the
// session's single-writer discipline — do not race it with Analyze —
// and is idempotent. A new session over the same configuration starts
// cold and, by the incremental contract, still computes bit-identical
// bounds.
func (s *Session) Close() {
	s.closed = true
	s.net, s.pg, s.nc, s.ncTier, s.tr = nil, nil, nil, nil, nil
}
