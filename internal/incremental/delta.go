// Package incremental is the dependency-tracked what-if re-analysis
// layer: a Session holds a working copy of a configuration plus the
// per-port (netcalc) and per-path (trajectory) outcome caches, applies
// Deltas — VL added or removed, BAG / s_max / priority changed, path
// rerouted — and re-analyses only what a delta actually dirties. The
// engines' caches (netcalc.Cache, trajectory.Cache) decide reuse by
// comparing each unit's input fingerprint bitwise, so invalidation is
// exactly the change's downstream cone in PortGraph.Ranks order, with
// early cutoff where inflated envelopes stop differing — and every
// incremental result is bit-identical to a cold recompute, at every
// worker count (the contract the conformance oracle's
// incremental-parity invariant enforces).
package incremental

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"afdx/internal/afdx"
)

// Op names one kind of configuration delta.
type Op string

// The delta operations. The string values double as the first token of
// the CLI command syntax (see ParseDelta).
const (
	// OpSetBAG sets a VL's BAG in milliseconds.
	OpSetBAG Op = "bag"
	// OpSetSMax sets a VL's maximum frame size in bytes (s_min is
	// clamped down when it would exceed the new s_max, mirroring the
	// conformance oracle's metamorphic mutation).
	OpSetSMax Op = "smax"
	// OpSetPriority sets a VL's static priority level.
	OpSetPriority Op = "priority"
	// OpRemoveVL removes a VL.
	OpRemoveVL Op = "drop"
	// OpAddVL adds a VL (the full VirtualLink rides in Delta.Add).
	OpAddVL Op = "add"
	// OpReroute replaces a VL's multicast path set.
	OpReroute Op = "reroute"
)

// Delta is one configuration mutation. Only the fields of the selected
// Op are read.
type Delta struct {
	Op Op     `json:"op"`
	VL string `json:"vl,omitempty"`
	// BAGMs is the new BAG (OpSetBAG).
	BAGMs float64 `json:"bagMs,omitempty"`
	// SMaxBytes is the new maximum frame size (OpSetSMax).
	SMaxBytes int `json:"sMaxBytes,omitempty"`
	// Priority is the new priority level (OpSetPriority).
	Priority int `json:"priority,omitempty"`
	// Paths is the new multicast path set (OpReroute).
	Paths [][]string `json:"paths,omitempty"`
	// Add is the VL to insert (OpAddVL).
	Add *afdx.VirtualLink `json:"add,omitempty"`
}

func (d Delta) String() string {
	switch d.Op {
	case OpSetBAG:
		return fmt.Sprintf("bag %s %g", d.VL, d.BAGMs)
	case OpSetSMax:
		return fmt.Sprintf("smax %s %d", d.VL, d.SMaxBytes)
	case OpSetPriority:
		return fmt.Sprintf("priority %s %d", d.VL, d.Priority)
	case OpRemoveVL:
		return "drop " + d.VL
	case OpAddVL:
		if d.Add != nil {
			return "add " + d.Add.ID
		}
		return "add <nil>"
	case OpReroute:
		parts := make([]string, len(d.Paths))
		for i, p := range d.Paths {
			parts[i] = strings.Join(p, ",")
		}
		return fmt.Sprintf("reroute %s %s", d.VL, strings.Join(parts, " "))
	}
	return string(d.Op)
}

// ParseDelta parses the compact command syntax used by afdx-bounds'
// -delta flag and what-if input:
//
//	bag <vl> <ms>            set the VL's BAG
//	smax <vl> <bytes>        set the VL's maximum frame size
//	priority <vl> <level>    set the VL's priority level
//	drop <vl>                remove the VL
//	reroute <vl> <path> ...  replace the path set; each path is a
//	                         comma-separated node sequence
//	add <json>               add a VL given as one-line VirtualLink JSON
func ParseDelta(s string) (Delta, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return Delta{}, fmt.Errorf("incremental: empty delta")
	}
	bad := func(want string) (Delta, error) {
		return Delta{}, fmt.Errorf("incremental: %q: want %q", s, want)
	}
	switch Op(fields[0]) {
	case OpSetBAG:
		if len(fields) != 3 {
			return bad("bag <vl> <ms>")
		}
		ms, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return bad("bag <vl> <ms>")
		}
		return Delta{Op: OpSetBAG, VL: fields[1], BAGMs: ms}, nil
	case OpSetSMax:
		if len(fields) != 3 {
			return bad("smax <vl> <bytes>")
		}
		b, err := strconv.Atoi(fields[2])
		if err != nil {
			return bad("smax <vl> <bytes>")
		}
		return Delta{Op: OpSetSMax, VL: fields[1], SMaxBytes: b}, nil
	case OpSetPriority:
		if len(fields) != 3 {
			return bad("priority <vl> <level>")
		}
		p, err := strconv.Atoi(fields[2])
		if err != nil {
			return bad("priority <vl> <level>")
		}
		return Delta{Op: OpSetPriority, VL: fields[1], Priority: p}, nil
	case OpRemoveVL:
		if len(fields) != 2 {
			return bad("drop <vl>")
		}
		return Delta{Op: OpRemoveVL, VL: fields[1]}, nil
	case OpReroute:
		if len(fields) < 3 {
			return bad("reroute <vl> <path> [<path> ...]")
		}
		paths := make([][]string, 0, len(fields)-2)
		for _, f := range fields[2:] {
			path := strings.Split(f, ",")
			if len(path) < 2 {
				return bad("reroute <vl> <node,node,...> (paths need at least two nodes)")
			}
			paths = append(paths, path)
		}
		return Delta{Op: OpReroute, VL: fields[1], Paths: paths}, nil
	case OpAddVL:
		raw := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), string(OpAddVL)))
		var vl afdx.VirtualLink
		if err := json.Unmarshal([]byte(raw), &vl); err != nil {
			return Delta{}, fmt.Errorf("incremental: add: parsing VirtualLink JSON: %w", err)
		}
		return Delta{Op: OpAddVL, Add: &vl}, nil
	}
	return Delta{}, fmt.Errorf("incremental: unknown delta op %q (want bag|smax|priority|drop|reroute|add)", fields[0])
}

// applyDelta mutates n in place. Callers (Session.Apply) mutate a
// clone and swap only after the whole batch validates.
func applyDelta(n *afdx.Network, d Delta) error {
	find := func(id string) (*afdx.VirtualLink, error) {
		if v := n.VL(id); v != nil {
			return v, nil
		}
		return nil, fmt.Errorf("incremental: %s: unknown VL %q", d.Op, id)
	}
	switch d.Op {
	case OpSetBAG:
		v, err := find(d.VL)
		if err != nil {
			return err
		}
		v.BAGMs = d.BAGMs
	case OpSetSMax:
		v, err := find(d.VL)
		if err != nil {
			return err
		}
		v.SMaxBytes = d.SMaxBytes
		if v.SMinBytes > v.SMaxBytes {
			v.SMinBytes = v.SMaxBytes
		}
	case OpSetPriority:
		v, err := find(d.VL)
		if err != nil {
			return err
		}
		v.Priority = d.Priority
	case OpRemoveVL:
		if len(n.VLs) <= 1 {
			return fmt.Errorf("incremental: drop %s: cannot remove the last VL", d.VL)
		}
		for i, v := range n.VLs {
			if v.ID == d.VL {
				n.VLs = append(n.VLs[:i], n.VLs[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("incremental: drop: unknown VL %q", d.VL)
	case OpAddVL:
		if d.Add == nil {
			return fmt.Errorf("incremental: add: missing VirtualLink payload")
		}
		if n.VL(d.Add.ID) != nil {
			return fmt.Errorf("incremental: add: VL %q already exists", d.Add.ID)
		}
		vl := *d.Add
		vl.Paths = clonePaths(d.Add.Paths)
		n.VLs = append(n.VLs, &vl)
	case OpReroute:
		v, err := find(d.VL)
		if err != nil {
			return err
		}
		if len(d.Paths) == 0 {
			return fmt.Errorf("incremental: reroute %s: empty path set", d.VL)
		}
		v.Paths = clonePaths(d.Paths)
	default:
		return fmt.Errorf("incremental: unknown delta op %q", d.Op)
	}
	return nil
}

func clonePaths(paths [][]string) [][]string {
	out := make([][]string, len(paths))
	for i, p := range paths {
		out[i] = append([]string(nil), p...)
	}
	return out
}
