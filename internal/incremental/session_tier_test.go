package incremental_test

import (
	"context"
	"fmt"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/incremental"
	"afdx/internal/netcalc"
)

// TestSessionTierAlternationBitIdentity is the session-level A/B/A
// tier regression: one warm session alternating AnalyzeTier across the
// ladder, interleaved with committed and peeked deltas, must answer
// every round bit-identical to a cold run of the same configuration at
// the same tier. A cache that leaked entries across tiers — or failed
// to key the tier into its identity — surfaces here as a stale bound.
func TestSessionTierAlternationBitIdentity(t *testing.T) {
	ctx := context.Background()
	net := testNet(t, 9, 20)
	sess, err := incremental.NewSession(net, incremental.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	coldTier := func(cur *afdx.Network, tier netcalc.Analysis) *netcalc.Result {
		t.Helper()
		pg, err := afdx.BuildPortGraph(cur, afdx.Strict)
		if err != nil {
			t.Fatal(err)
		}
		o := netcalc.DefaultOptions()
		o.Analysis = tier
		o.Parallel = 1
		res, err := netcalc.Analyze(pg, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	check := func(step string, tier netcalc.Analysis, res *incremental.Result) {
		t.Helper()
		cold := coldTier(sess.Network(), tier)
		mustEqualMaps(t, step+" PathDelays", res.NC.PathDelays, cold.PathDelays)
		mustEqualMaps(t, step+" FlowDelays", res.NC.FlowDelays, cold.FlowDelays)
		mustEqualMaps(t, step+" Bursts", res.NC.Bursts, cold.Bursts)
	}

	// Round-robin the ladder twice over the base configuration: the
	// second visit of each tier is a warm revisit through that tier's
	// dedicated cache.
	aba := []netcalc.Analysis{
		netcalc.AnalysisWCNC, netcalc.AnalysisTFA, netcalc.AnalysisWCNC,
		netcalc.AnalysisFIFO, netcalc.AnalysisTFA, netcalc.AnalysisFIFO,
		netcalc.AnalysisWCNC,
	}
	for i, tier := range aba {
		res, err := sess.AnalyzeTier(ctx, tier)
		if err != nil {
			t.Fatalf("round %d (%v): %v", i, tier, err)
		}
		check("base round", tier, res)
	}

	// A committed delta invalidates all tiers' caches consistently.
	v := net.VLs[0]
	d, err := incremental.ParseDelta(fmt.Sprintf("bag %s %g", v.ID, v.BAGMs*2))
	if err != nil {
		t.Fatal(err)
	}
	for i, tier := range aba {
		res, err := sess.WhatIfTier(ctx, tier, d)
		if err != nil {
			t.Fatalf("whatif round %d (%v): %v", i, tier, err)
		}
		check("post-delta round", tier, res)
		// Re-derive the next delta from the committed state so every
		// WhatIfTier commits a fresh, feasible change.
		cur := sess.Network()
		v = cur.VLs[(i+1)%len(cur.VLs)]
		if v.BAGMs*2 > afdx.MaxBAGMs {
			v = cur.VLs[0]
			if v.BAGMs*2 > afdx.MaxBAGMs {
				break
			}
		}
		d, err = incremental.ParseDelta(fmt.Sprintf("bag %s %g", v.ID, v.BAGMs*2))
		if err != nil {
			t.Fatal(err)
		}
	}

	// PeekTier restores the committed state whatever the tier.
	before, err := sess.AnalyzeTier(ctx, netcalc.AnalysisFIFO)
	if err != nil {
		t.Fatal(err)
	}
	cur := sess.Network()
	var peek incremental.Delta
	for _, vl := range cur.VLs {
		if vl.SMaxBytes/2 >= afdx.MinFrameBytes {
			peek, err = incremental.ParseDelta(fmt.Sprintf("smax %s %d", vl.ID, vl.SMaxBytes/2))
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if _, err := sess.PeekTier(ctx, netcalc.AnalysisTFA, peek); err != nil {
		t.Fatal(err)
	}
	after, err := sess.AnalyzeTier(ctx, netcalc.AnalysisFIFO)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualMaps(t, "peek rollback", after.NC.PathDelays, before.NC.PathDelays)
}

func mustEqualMaps[K comparable](t *testing.T, what string, got, want map[K]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, cold has %d", what, len(got), len(want))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok || g != w {
			t.Fatalf("%s: key %v: warm %v, cold %v (must be bit-identical)", what, k, g, w)
		}
	}
}
