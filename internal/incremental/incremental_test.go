// Tests live in package incremental_test so the benchmark file next to
// them can import the conformance oracle (which itself imports this
// package) without a cycle.
package incremental_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
	"afdx/internal/incremental"
	"afdx/internal/netcalc"
	"afdx/internal/obs"
	"afdx/internal/trajectory"
)

func testNet(t testing.TB, seed int64, vls int) *afdx.Network {
	t.Helper()
	spec := configgen.DefaultSpec(seed)
	spec.NumSwitches = 3
	spec.ESPerSwitch = 3
	spec.NumVLs = vls
	net, err := configgen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func coldResults(t testing.TB, net *afdx.Network, opts incremental.Options) (*netcalc.Result, *trajectory.Result) {
	t.Helper()
	pg, err := afdx.BuildPortGraph(net, opts.Mode)
	if err != nil {
		t.Fatal(err)
	}
	ncOpts := opts.NC
	ncOpts.Parallel = 1
	trOpts := opts.Trajectory
	trOpts.Parallel = 1
	nc, err := netcalc.Analyze(pg, ncOpts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trajectory.Analyze(pg, trOpts)
	if err != nil {
		t.Fatal(err)
	}
	return nc, tr
}

// mustIdentical asserts bitwise equality of the full engine outcomes —
// path bounds, per-port results, burst and prefix maps, trajectory
// details — between an incremental round and a cold recompute.
func mustIdentical(t *testing.T, step string, nc *netcalc.Result, tr *trajectory.Result, coldNC *netcalc.Result, coldTr *trajectory.Result) {
	t.Helper()
	if !reflect.DeepEqual(nc.PathDelays, coldNC.PathDelays) {
		t.Fatalf("%s: netcalc path delays diverge from cold recompute", step)
	}
	if !reflect.DeepEqual(nc.Ports, coldNC.Ports) {
		t.Fatalf("%s: netcalc port results diverge from cold recompute", step)
	}
	if !reflect.DeepEqual(nc.Bursts, coldNC.Bursts) {
		t.Fatalf("%s: netcalc bursts diverge from cold recompute", step)
	}
	if !reflect.DeepEqual(nc.PrefixDelays, coldNC.PrefixDelays) {
		t.Fatalf("%s: netcalc prefix delays diverge from cold recompute", step)
	}
	if !reflect.DeepEqual(tr.PathDelays, coldTr.PathDelays) {
		t.Fatalf("%s: trajectory path delays diverge from cold recompute", step)
	}
	if !reflect.DeepEqual(tr.Details, coldTr.Details) {
		t.Fatalf("%s: trajectory details diverge from cold recompute", step)
	}
}

// randomDelta draws one applicable tightening/loosening delta against
// the current configuration; stash carries VLs dropped earlier so they
// can be re-added (exercising the A/B/A cache-revalidation path).
func randomDelta(rng *rand.Rand, cur *afdx.Network, stash *[]*afdx.VirtualLink) *incremental.Delta {
	pickVL := func(ok func(*afdx.VirtualLink) bool) *afdx.VirtualLink {
		var cands []*afdx.VirtualLink
		for _, v := range cur.VLs {
			if ok(v) {
				cands = append(cands, v)
			}
		}
		if len(cands) == 0 {
			return nil
		}
		return cands[rng.Intn(len(cands))]
	}
	for tries := 0; tries < 10; tries++ {
		switch rng.Intn(6) {
		case 0: // double a BAG
			if v := pickVL(func(v *afdx.VirtualLink) bool { return v.BAGMs < afdx.MaxBAGMs }); v != nil {
				return &incremental.Delta{Op: incremental.OpSetBAG, VL: v.ID, BAGMs: v.BAGMs * 2}
			}
		case 1: // halve a BAG
			if v := pickVL(func(v *afdx.VirtualLink) bool { return v.BAGMs > afdx.MinBAGMs }); v != nil {
				return &incremental.Delta{Op: incremental.OpSetBAG, VL: v.ID, BAGMs: v.BAGMs / 2}
			}
		case 2: // halve an s_max
			if v := pickVL(func(v *afdx.VirtualLink) bool { return v.SMaxBytes/2 >= afdx.MinFrameBytes }); v != nil {
				return &incremental.Delta{Op: incremental.OpSetSMax, VL: v.ID, SMaxBytes: v.SMaxBytes / 2}
			}
		case 3: // drop a VL (stashed for later re-add)
			if len(cur.VLs) > 2 {
				v := cur.VLs[rng.Intn(len(cur.VLs))]
				vl := *v
				vl.Paths = append([][]string(nil), v.Paths...)
				*stash = append(*stash, &vl)
				return &incremental.Delta{Op: incremental.OpRemoveVL, VL: v.ID}
			}
		case 4: // re-add a previously dropped VL, bit-identical (A/B/A)
			if n := len(*stash); n > 0 {
				vl := (*stash)[n-1]
				*stash = (*stash)[:n-1]
				return &incremental.Delta{Op: incremental.OpAddVL, Add: vl}
			}
		case 5: // reroute: rotate a multi-path VL's path list
			if v := pickVL(func(v *afdx.VirtualLink) bool { return len(v.Paths) >= 2 }); v != nil {
				rot := append(append([][]string(nil), v.Paths[1:]...), v.Paths[0])
				return &incremental.Delta{Op: incremental.OpReroute, VL: v.ID, Paths: rot}
			}
		}
	}
	return nil
}

// TestDeltaSequenceBitIdentity is the tentpole's core property test: a
// 20-step random delta sequence over a generated configuration, where
// after every step the incremental session's results — at Parallel 1
// and at Parallel 4 — are bitwise identical to a cold recompute of the
// mutated configuration.
func TestDeltaSequenceBitIdentity(t *testing.T) {
	net := testNet(t, 42, 15)
	opts := incremental.DefaultOptions()
	opts.NC.Parallel = 1
	opts.Trajectory.Parallel = 1
	sessSeq, err := incremental.NewSession(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	optsPar := opts
	optsPar.NC.Parallel = 4
	optsPar.Trajectory.Parallel = 4
	sessPar, err := incremental.NewSession(net, optsPar)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	rng := rand.New(rand.NewSource(7))
	var stash []*afdx.VirtualLink
	for step := 0; step < 20; step++ {
		d := randomDelta(rng, sessSeq.Network(), &stash)
		if d == nil {
			continue
		}
		resSeq, err := sessSeq.WhatIf(ctx, *d)
		if err != nil {
			t.Fatalf("step %d (%s): %v", step, d, err)
		}
		resPar, err := sessPar.WhatIf(ctx, *d)
		if err != nil {
			t.Fatalf("step %d (%s) parallel: %v", step, d, err)
		}
		coldNC, coldTr := coldResults(t, sessSeq.Network(), opts)
		label := d.String()
		mustIdentical(t, "seq after "+label, resSeq.NC, resSeq.Trajectory, coldNC, coldTr)
		mustIdentical(t, "par after "+label, resPar.NC, resPar.Trajectory, coldNC, coldTr)
		if !reflect.DeepEqual(resSeq.Comparison.PerPath, resPar.Comparison.PerPath) {
			t.Fatalf("after %s: combined comparison differs between worker counts", label)
		}
	}
}

// A no-op re-analysis must be served entirely from cache: zero port or
// path recomputes, and the hit counters equal the unit counts.
func TestNoOpReanalysisAllHits(t *testing.T) {
	net := testNet(t, 5, 10)
	sess, err := incremental.NewSession(net, incremental.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Analyze(context.Background()); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	if _, err := sess.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{"netcalc.incr_port_recomputes", "trajectory.incr_path_recomputes"} {
		if got := snap.Counter(name); got != 0 {
			t.Errorf("%s = %d after a no-op re-analysis, want 0", name, got)
		}
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	// The NC run and the trajectory prefix run share one cache, so the
	// per-port hit counter fires twice per port per round.
	if got, want := snap.Counter("netcalc.incr_port_hits"), int64(2*len(pg.Ports)); got != want {
		t.Errorf("netcalc.incr_port_hits = %d, want %d", got, want)
	}
	if got, want := snap.Counter("trajectory.incr_path_hits"), int64(len(net.AllPaths())); got != want {
		t.Errorf("trajectory.incr_path_hits = %d, want %d", got, want)
	}
}

// A rejected delta batch must leave the session untouched.
func TestApplyIsAtomic(t *testing.T) {
	net := testNet(t, 5, 10)
	sess, err := incremental.NewSession(net, incremental.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	before, err := sess.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	good := incremental.Delta{Op: incremental.OpSetBAG, VL: net.VLs[0].ID, BAGMs: net.VLs[0].BAGMs}
	bad := incremental.Delta{Op: incremental.OpSetBAG, VL: "no-such-vl", BAGMs: 4}
	if err := sess.Apply(good, bad); err == nil {
		t.Fatal("Apply with an invalid delta unexpectedly succeeded")
	}
	after, err := sess.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before.NC.PathDelays, after.NC.PathDelays) {
		t.Fatal("rejected batch still changed the session's configuration")
	}
}

func TestParseDeltaRoundTrip(t *testing.T) {
	for _, line := range []string{
		"bag v1 16",
		"smax v2 200",
		"priority v1 1",
		"drop v5",
		"reroute v1 es1,s1,es2 es1,s2,es3",
	} {
		d, err := incremental.ParseDelta(line)
		if err != nil {
			t.Fatalf("ParseDelta(%q): %v", line, err)
		}
		if got := d.String(); got != line {
			t.Errorf("ParseDelta(%q).String() = %q", line, got)
		}
	}
	addLine := `add {"id":"v9","source":"es1","bagMs":4,"sMaxBytes":200,"sMinBytes":64,"paths":[["es1","s1","es2"]]}`
	d, err := incremental.ParseDelta(addLine)
	if err != nil {
		t.Fatal(err)
	}
	if d.Op != incremental.OpAddVL || d.Add == nil || d.Add.ID != "v9" || d.Add.BAGMs != 4 {
		t.Fatalf("add delta parsed wrong: %+v", d)
	}
	for _, bad := range []string{"", "bag v1", "smax v1 x", "teleport v1", "reroute v1 one-node"} {
		if _, err := incremental.ParseDelta(bad); err == nil {
			t.Errorf("ParseDelta(%q) unexpectedly succeeded", bad)
		}
	}
}
