package incremental_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/incremental"
)

// TestSessionClose pins the Close contract the serving layer's pool
// relies on: every method reports ErrClosed afterwards, Network goes
// nil, and Close is idempotent.
func TestSessionClose(t *testing.T) {
	net := testNet(t, 3, 8)
	s, err := incremental.NewSession(net, incremental.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Analyze(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if s.Network() != nil {
		t.Error("Network() non-nil after Close")
	}
	if _, err := s.Analyze(context.Background()); !errors.Is(err, incremental.ErrClosed) {
		t.Errorf("Analyze after Close: %v, want ErrClosed", err)
	}
	d := incremental.Delta{Op: incremental.OpRemoveVL, VL: net.VLs[0].ID}
	if err := s.Apply(d); !errors.Is(err, incremental.ErrClosed) {
		t.Errorf("Apply after Close: %v, want ErrClosed", err)
	}
	if _, err := s.WhatIf(context.Background(), d); !errors.Is(err, incremental.ErrClosed) {
		t.Errorf("WhatIf after Close: %v, want ErrClosed", err)
	}
	if _, err := s.Peek(context.Background(), d); !errors.Is(err, incremental.ErrClosed) {
		t.Errorf("Peek after Close: %v, want ErrClosed", err)
	}
}

// TestPeekDoesNotCommit pins Peek's restore semantics: the peeked
// bounds equal a committed WhatIf's on a twin session, the peeking
// session's next Analyze equals its base round, and a later commit of
// the same delta still matches the twin — the peek left no residue.
func TestPeekDoesNotCommit(t *testing.T) {
	ctx := context.Background()
	net := testNet(t, 3, 12)
	peeker, err := incremental.NewSession(net, incremental.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	twin, err := incremental.NewSession(net, incremental.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base, err := peeker.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := twin.Analyze(ctx); err != nil {
		t.Fatal(err)
	}

	d := incremental.Delta{Op: incremental.OpSetBAG, VL: net.VLs[0].ID, BAGMs: net.VLs[0].BAGMs * 2}
	if net.VLs[0].BAGMs*2 > afdx.MaxBAGMs {
		d = incremental.Delta{Op: incremental.OpSetSMax, VL: net.VLs[0].ID, SMaxBytes: net.VLs[0].SMaxBytes / 2}
	}
	peeked, err := peeker.Peek(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	committed, err := twin.WhatIf(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(peeked.NC.PathDelays, committed.NC.PathDelays) ||
		!reflect.DeepEqual(peeked.Trajectory.PathDelays, committed.Trajectory.PathDelays) {
		t.Error("peeked bounds differ from a committed WhatIf of the same delta")
	}
	after, err := peeker.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.NC.PathDelays, base.NC.PathDelays) ||
		!reflect.DeepEqual(after.Trajectory.PathDelays, base.Trajectory.PathDelays) {
		t.Error("Analyze after Peek differs from the base round: the peek committed state")
	}
	// The peek must not have poisoned the caches for a later commit.
	recommit, err := peeker.WhatIf(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recommit.NC.PathDelays, committed.NC.PathDelays) {
		t.Error("commit after Peek diverges from the twin session")
	}
	// A rejected peek leaves the session unchanged and reports the
	// rejection as a BadDeltaError.
	_, err = peeker.Peek(ctx, incremental.Delta{Op: incremental.OpRemoveVL, VL: "nosuchvl"})
	var bad *incremental.BadDeltaError
	if !errors.As(err, &bad) {
		t.Errorf("Peek of a bad delta: %v, want BadDeltaError", err)
	}
}

// TestPackageApply pins that the exported package-level Apply (used by
// cold replay harnesses) mutates a network exactly as a Session commit
// does.
func TestPackageApply(t *testing.T) {
	net := testNet(t, 3, 12)
	s, err := incremental.NewSession(net, incremental.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	deltas := []incremental.Delta{
		{Op: incremental.OpSetSMax, VL: net.VLs[0].ID, SMaxBytes: max(afdx.MinFrameBytes, net.VLs[0].SMaxBytes/2)},
		{Op: incremental.OpRemoveVL, VL: net.VLs[1].ID},
	}
	if err := s.Apply(deltas...); err != nil {
		t.Fatal(err)
	}
	direct := net.Clone()
	if err := incremental.Apply(direct, deltas...); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Network(), direct) {
		t.Error("package-level Apply result differs from Session.Apply")
	}
	if err := incremental.Apply(direct, incremental.Delta{Op: incremental.OpRemoveVL, VL: "nosuchvl"}); err == nil {
		t.Error("package-level Apply of an unknown VL: no error")
	}
}
