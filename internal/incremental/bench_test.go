package incremental_test

import (
	"context"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
	"afdx/internal/conformance"
	"afdx/internal/core"
	"afdx/internal/incremental"
	"afdx/internal/netcalc"
	"afdx/internal/trajectory"
)

// shrinkNet is the shrink-loop benchmark workload: an 8-switch
// industrial configuration with strong locality and mostly-unicast
// VLs, so a dropped VL invalidates a narrow cone of ports and paths
// and the candidate sweep's A/B/A alternation exercises both cache
// generations. One op is a full 40-candidate ShrinkCtx minimisation
// of the grouping-tightens invariant; Cold and Incr differ only in
// Oracle.Incremental, and the shrinker's verdicts are identical
// either way (the caches are bit-exact), so the pair measures pure
// re-analysis wall time. `make bench-pr5` pairs the two into
// BENCH_PR5.json via cmd/afdx-benchjson.
func shrinkNet(b *testing.B) *afdx.Network {
	spec := configgen.DefaultSpec(42)
	spec.NumSwitches = 8
	spec.ESPerSwitch = 6
	spec.NumVLs = 120
	spec.LocalityBias = 0.9
	spec.BAGWeights = map[float64]int{1: 2, 2: 3, 4: 3, 8: 2}
	spec.FanoutWeights = map[int]int{1: 8, 2: 2}
	net, err := configgen.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

func benchShrinkLoop(b *testing.B, incr bool) {
	net := shrinkNet(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := conformance.NewOracle()
		o.Incremental = incr
		if min := o.ShrinkCtx(ctx, net, conformance.InvGroupingTightens, 40); min == nil {
			b.Fatal("shrink returned no configuration")
		}
	}
}

func BenchmarkShrinkLoopCold(b *testing.B) { benchShrinkLoop(b, false) }
func BenchmarkShrinkLoopIncr(b *testing.B) { benchShrinkLoop(b, true) }

// The what-if step benchmarks measure one interactive iteration on a
// larger configuration: toggle one VL's BAG, then obtain both engine
// bounds plus the combined comparison for the mutated network. Cold
// does what a stateless tool must (rebuild the port graph, run both
// engines from scratch); Incr replays the same toggles through a
// warm Session, whose results are bit-identical by the incremental
// contract. The delta alternates doubling/restoring the BAG so every
// op changes real analysis inputs — no op is a pure no-op replay.
func whatIfNet(b *testing.B) *afdx.Network {
	spec := configgen.DefaultSpec(7)
	spec.NumSwitches = 8
	spec.ESPerSwitch = 6
	spec.NumVLs = 150
	spec.LocalityBias = 0.9
	spec.FanoutWeights = map[int]int{1: 8, 2: 2}
	net, err := configgen.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

func toggleDelta(net *afdx.Network, baseBAG float64, i int) incremental.Delta {
	bag := baseBAG * 2
	if i%2 == 1 {
		bag = baseBAG
	}
	return incremental.Delta{Op: incremental.OpSetBAG, VL: net.VLs[0].ID, BAGMs: bag}
}

func BenchmarkWhatIfStepCold(b *testing.B) {
	net := whatIfNet(b)
	base := net.VLs[0].BAGMs
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := toggleDelta(net, base, i)
		net.VLs[0].BAGMs = d.BAGMs
		pg, err := afdx.BuildPortGraph(net, afdx.Strict)
		if err != nil {
			b.Fatal(err)
		}
		nc, err := netcalc.AnalyzeCtx(ctx, pg, netcalc.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		tr, err := trajectory.AnalyzeCtx(ctx, pg, trajectory.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Combine(pg, nc, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWhatIfStepIncr(b *testing.B) {
	net := whatIfNet(b)
	base := net.VLs[0].BAGMs
	ctx := context.Background()
	sess, err := incremental.NewSession(net, incremental.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Analyze(ctx); err != nil {
		b.Fatal(err) // warm the caches: the session exists before the loop
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.WhatIf(ctx, toggleDelta(net, base, i)); err != nil {
			b.Fatal(err)
		}
	}
}
