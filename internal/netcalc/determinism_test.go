package netcalc

import (
	"fmt"
	"testing"

	"afdx/internal/afdx"
)

// TestMaxBacklogBitsDeterministic guards the sorted-port scan in
// MaxBacklogBits: the maximum must be identical on every call and equal
// to the independently computed maximum, regardless of how Go happens
// to order the Ports map.
func TestMaxBacklogBitsDeterministic(t *testing.T) {
	r := &Result{Ports: map[afdx.PortID]PortResult{}}
	want := 0.0
	for i := 0; i < 64; i++ {
		b := float64((i*7919)%1009) + float64(i)/3
		r.Ports[afdx.PortID{From: fmt.Sprintf("n%02d", i), To: "s1"}] = PortResult{BacklogBits: b}
		if b > want {
			want = b
		}
	}
	first := r.MaxBacklogBits()
	if first != want {
		t.Fatalf("MaxBacklogBits = %g, want %g", first, want)
	}
	for i := 0; i < 50; i++ {
		if got := r.MaxBacklogBits(); got != first {
			t.Fatalf("call %d: MaxBacklogBits = %g, want %g", i, got, first)
		}
	}
}

// TestMaxBacklogBitsEmpty pins the zero-port behaviour.
func TestMaxBacklogBitsEmpty(t *testing.T) {
	r := &Result{Ports: map[afdx.PortID]PortResult{}}
	if got := r.MaxBacklogBits(); got != 0 {
		t.Fatalf("MaxBacklogBits on empty result = %g, want 0", got)
	}
}
