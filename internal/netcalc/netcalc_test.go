package netcalc

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"afdx/internal/afdx"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

func figure2Graph(t *testing.T) *afdx.PortGraph {
	t.Helper()
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

// The Figure 2 sample configuration admits closed-form hand computation:
// every VL has BAG 4 ms (rho = 1 bit/us), s_max 500 B (4000 bits,
// C = 40 us at 100 Mb/s), ports have L = 16 us.
func TestFigure2SourcePortDelay(t *testing.T) {
	res, err := Analyze(figure2Graph(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Source port: single VL, h = L + b/R = 16 + 4000/100 = 56 us.
	for _, id := range []afdx.PortID{{From: "e1", To: "S1"}, {From: "e5", To: "S3"}} {
		if got := res.Ports[id].DelayUs; !almostEq(got, 56) {
			t.Errorf("delay at %v = %g, want 56", id, got)
		}
	}
}

func TestFigure2InterSwitchPortDelay(t *testing.T) {
	res, err := Analyze(figure2Graph(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// S1->S3 carries v1, v2 from distinct input links, bursts inflated by
	// the 56 us source delay: h = 16 + 2*(4000+56)/100 = 97.12 us.
	if got := res.Ports[afdx.PortID{From: "S1", To: "S3"}].DelayUs; !almostEq(got, 97.12) {
		t.Errorf("delay at S1->S3 = %g, want 97.12", got)
	}
}

func TestFigure2LastPortGroupedDelay(t *testing.T) {
	res, err := Analyze(figure2Graph(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// S3->e6: two groups of two serialized flows; hand-derived value.
	// Per-flow burst 4000+56+97.12 = 4153.12 bits; group envelope
	// min(8306.24 + 2t, 4000 + 100t) crossing at t* = 4306.24/98;
	// h = 16 + alpha(t*)/100 - t*.
	tStar := 4306.24 / 98
	alphaT := 2 * (4000 + 100*tStar)
	want := 16 + alphaT/100 - tStar
	if got := res.Ports[afdx.PortID{From: "S3", To: "e6"}].DelayUs; !almostEq(got, want) {
		t.Errorf("delay at S3->e6 = %g, want %g", got, want)
	}
}

func TestFigure2PathDelays(t *testing.T) {
	res, err := Analyze(figure2Graph(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tStar := 4306.24 / 98
	wantV1 := 56 + 97.12 + (16 + 2*(4000+100*tStar)/100 - tStar)
	for _, vl := range []string{"v1", "v2", "v3", "v4"} {
		d, err := res.PathDelay(afdx.PathID{VL: vl, PathIdx: 0})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(d, wantV1) {
			t.Errorf("path delay of %s = %g, want %g", vl, d, wantV1)
		}
	}
	dv5, err := res.PathDelay(afdx.PathID{VL: "v5", PathIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	// v5: source port 56, then S3->e7 alone with burst 4056:
	// 16 + 4056/100 = 56.56.
	if want := 56 + 56.56; !almostEq(dv5, want) {
		t.Errorf("path delay of v5 = %g, want %g", dv5, want)
	}
}

func TestGroupingTightensBounds(t *testing.T) {
	pg := figure2Graph(t)
	with, err := Analyze(pg, Options{Grouping: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Analyze(pg, Options{Grouping: false})
	if err != nil {
		t.Fatal(err)
	}
	// Ungrouped S3->e6: h = 16 + 4*4153.12/100 = 182.1248.
	if got := without.Ports[afdx.PortID{From: "S3", To: "e6"}].DelayUs; !almostEq(got, 182.1248) {
		t.Errorf("ungrouped delay at S3->e6 = %g, want 182.1248", got)
	}
	improvedSomewhere := false
	for pid, d := range with.PathDelays {
		dw := without.PathDelays[pid]
		if d > dw+1e-9 {
			t.Errorf("grouping worsened path %v: %g > %g", pid, d, dw)
		}
		if d < dw-1e-9 {
			improvedSomewhere = true
		}
	}
	if !improvedSomewhere {
		t.Error("grouping should strictly improve at least one path of figure 2")
	}
}

func TestPrefixDelaysAndBursts(t *testing.T) {
	res, err := Analyze(figure2Graph(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// v1 arrives at S1->S3 after the 56 us source-port bound.
	k := FlowPortKey{"v1", afdx.PortID{From: "S1", To: "S3"}}
	if got := res.PrefixDelays[k]; !almostEq(got, 56) {
		t.Errorf("prefix delay of v1 at S1->S3 = %g, want 56", got)
	}
	if got := res.Bursts[k]; !almostEq(got, 4056) {
		t.Errorf("burst of v1 at S1->S3 = %g, want 4056", got)
	}
	k2 := FlowPortKey{"v1", afdx.PortID{From: "S3", To: "e6"}}
	if got := res.PrefixDelays[k2]; !almostEq(got, 56+97.12) {
		t.Errorf("prefix delay of v1 at S3->e6 = %g, want 153.12", got)
	}
}

func TestBacklogBounds(t *testing.T) {
	res, err := Analyze(figure2Graph(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Source port backlog: v(LB(4000,1), beta_{100,16}) = 4000 + 16 bits.
	if got := res.Ports[afdx.PortID{From: "e1", To: "S1"}].BacklogBits; !almostEq(got, 4016) {
		t.Errorf("backlog at e1->S1 = %g, want 4016", got)
	}
	if res.MaxBacklogBits() <= 4016 {
		t.Errorf("max backlog %g should exceed a source port's", res.MaxBacklogBits())
	}
}

func TestUnstablePortRejected(t *testing.T) {
	n := afdx.Figure2Config()
	for _, v := range n.VLs {
		v.BAGMs = 1
		v.SMaxBytes = 1518 // 4 * 12144 bits / 1000 us = 48.6 bits/us: still stable
	}
	// Push past stability: 40 VLs of 12.1 bits/us on S3->e6 would exceed
	// 100 bits/us; instead shrink the BAG below standard with Relaxed mode.
	for _, v := range n.VLs {
		v.BAGMs = 0.25 // 48.6 bits/us each, 4 flows -> 194 bits/us on S3->e6
	}
	pg, err := afdx.BuildPortGraph(n, afdx.Relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(pg, DefaultOptions()); err == nil {
		t.Fatal("expected instability error")
	}
}

func TestDeconvolutionOptionMatchesBurstInflation(t *testing.T) {
	pg := figure2Graph(t)
	classic, err := Analyze(pg, Options{Grouping: true})
	if err != nil {
		t.Fatal(err)
	}
	deconv, err := Analyze(pg, Options{Grouping: true, Deconvolution: true})
	if err != nil {
		t.Fatal(err)
	}
	for pid, d := range classic.PathDelays {
		if dd := deconv.PathDelays[pid]; math.Abs(d-dd) > 1e-3 {
			t.Errorf("path %v: classic %g vs deconvolution %g", pid, d, dd)
		}
	}
}

func TestUnknownPathError(t *testing.T) {
	res, err := Analyze(figure2Graph(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.PathDelay(afdx.PathID{VL: "nope", PathIdx: 0}); err == nil {
		t.Error("expected error for unknown path")
	}
}

func TestMulticastFigure1Analyzes(t *testing.T) {
	pg, err := afdx.BuildPortGraph(afdx.Figure1Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Both destinations of the multicast VL v6 must have a bound, and the
	// shared prefix implies both exceed the source-port delay.
	d0, err0 := res.PathDelay(afdx.PathID{VL: "v6", PathIdx: 0})
	d1, err1 := res.PathDelay(afdx.PathID{VL: "v6", PathIdx: 1})
	if err0 != nil || err1 != nil {
		t.Fatal(err0, err1)
	}
	if d0 <= 0 || d1 <= 0 {
		t.Errorf("multicast bounds must be positive: %g, %g", d0, d1)
	}
}

func TestIncreasingSmaxNeverDecreasesBounds(t *testing.T) {
	base := afdx.Figure2Config()
	pgBase, err := afdx.BuildPortGraph(base, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	resBase, err := Analyze(pgBase, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bigger := afdx.Figure2Config()
	bigger.VLs[0].SMaxBytes = 1000
	pgBig, err := afdx.BuildPortGraph(bigger, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	resBig, err := Analyze(pgBig, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for pid, d := range resBase.PathDelays {
		if resBig.PathDelays[pid] < d-1e-9 {
			t.Errorf("path %v: bound decreased from %g to %g when v1 grew",
				pid, d, resBig.PathDelays[pid])
		}
	}
}

func TestStaircaseOptionTightensMultiHopBounds(t *testing.T) {
	pg := figure2Graph(t)
	classic, err := Analyze(pg, Options{Grouping: true})
	if err != nil {
		t.Fatal(err)
	}
	stair, err := Analyze(pg, Options{Grouping: true, StairSteps: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The source port sees no jitter: identical bound.
	src := afdx.PortID{From: "e1", To: "S1"}
	if got, want := stair.Ports[src].DelayUs, classic.Ports[src].DelayUs; !almostEq(got, want) {
		t.Errorf("source port delay with staircases = %g, want %g", got, want)
	}
	// Downstream ports benefit from the floor of the accumulated jitter
	// (J < BAG releases zero extra frames instead of rho*J extra bits).
	for pid, d := range stair.PathDelays {
		if d > classic.PathDelays[pid]+1e-9 {
			t.Errorf("path %v: staircase bound %g exceeds classic %g", pid, d, classic.PathDelays[pid])
		}
	}
	v1 := afdx.PathID{VL: "v1", PathIdx: 0}
	if stair.PathDelays[v1] >= classic.PathDelays[v1] {
		t.Errorf("staircase should strictly tighten v1: %g vs %g",
			stair.PathDelays[v1], classic.PathDelays[v1])
	}
	// Hand-derived with staircases: S1->S3 aggregates two un-inflated
	// 4000-bit bursts (16 + 80 = 96 us), and the grouped S3->e6 delay
	// follows with group bursts of exactly 8000 bits.
	if got := stair.Ports[afdx.PortID{From: "S1", To: "S3"}].DelayUs; !almostEq(got, 96) {
		t.Errorf("staircase delay at S1->S3 = %g, want 96", got)
	}
}

func TestStaircaseMatchesClassicOnSourceOnlyPaths(t *testing.T) {
	// A path with a single switch hop has jitter only at its second
	// port; bounds may tighten there but never change at the source.
	pg := figure2Graph(t)
	stair, err := Analyze(pg, Options{Grouping: true, StairSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stair.PathDelays[afdx.PathID{VL: "v5", PathIdx: 0}] <= 0 {
		t.Error("staircase analysis must produce positive bounds")
	}
}

func TestExplainPerPortDecomposition(t *testing.T) {
	pg := figure2Graph(t)
	ex, err := Explain(pg, afdx.PathID{VL: "v1", PathIdx: 0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Ports) != 3 {
		t.Fatalf("port terms = %d, want 3", len(ex.Ports))
	}
	sum := 0.0
	for _, p := range ex.Ports {
		sum += p.DelayUs
	}
	if !almostEq(sum, ex.DelayUs) {
		t.Errorf("port delays sum to %g, want the path bound %g", sum, ex.DelayUs)
	}
	if !almostEq(ex.Ports[0].DelayUs, 56) || !almostEq(ex.Ports[1].DelayUs, 97.12) {
		t.Errorf("unexpected per-port values: %+v", ex.Ports)
	}
	if ex.Ports[2].NumFlows != 4 {
		t.Errorf("last port flows = %d, want 4", ex.Ports[2].NumFlows)
	}
	if !almostEq(ex.Ports[1].BurstBits, 4056) {
		t.Errorf("burst at S1->S3 = %g, want 4056", ex.Ports[1].BurstBits)
	}
	var buf bytes.Buffer
	if err := ex.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sum of per-port bounds") {
		t.Errorf("rendering missing header: %s", buf.String())
	}
}

func TestExplainUnknownPathNC(t *testing.T) {
	pg := figure2Graph(t)
	if _, err := Explain(pg, afdx.PathID{VL: "zz", PathIdx: 0}, DefaultOptions()); err == nil {
		t.Fatal("expected error")
	}
}

// comparePortResults requires two results to be bit-identical: same
// ports, same per-priority delays, same propagated envelopes.
func comparePortResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Ports) != len(b.Ports) {
		t.Fatalf("%s: port count %d vs %d", label, len(a.Ports), len(b.Ports))
	}
	for id, pa := range a.Ports {
		pb, ok := b.Ports[id]
		if !ok {
			t.Fatalf("%s: port %v missing", label, id)
		}
		if pa.DelayUs != pb.DelayUs || pa.BacklogBits != pb.BacklogBits || pa.Utilization != pb.Utilization {
			t.Errorf("%s: port %v result differs: %+v vs %+v", label, id, pa, pb)
		}
		if len(pa.DelayByPriority) != len(pb.DelayByPriority) {
			t.Fatalf("%s: port %v priority levels differ", label, id)
		}
		for lvl, d := range pa.DelayByPriority {
			if pb.DelayByPriority[lvl] != d {
				t.Errorf("%s: port %v level %d: %v vs %v", label, id, lvl, d, pb.DelayByPriority[lvl])
			}
		}
	}
	for pid, d := range a.PathDelays {
		if b.PathDelays[pid] != d {
			t.Errorf("%s: path %v: %v vs %v (must be bit-identical)", label, pid, d, b.PathDelays[pid])
		}
	}
	for k, v := range a.Bursts {
		if b.Bursts[k] != v {
			t.Errorf("%s: burst %v: %v vs %v", label, k, v, b.Bursts[k])
		}
	}
	for k, v := range a.PrefixDelays {
		if b.PrefixDelays[k] != v {
			t.Errorf("%s: prefix %v: %v vs %v", label, k, v, b.PrefixDelays[k])
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	// The determinism contract: any worker count yields bit-identical
	// results, on the FIFO sample and on the mixed-priority variant
	// (which exercises the per-level accumulation order).
	for _, cfg := range []struct {
		name string
		net  *afdx.Network
	}{
		{"figure2", afdx.Figure2Config()},
		{"priority", priorityConfig()},
	} {
		pg, err := afdx.BuildPortGraph(cfg.net, afdx.Strict)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.Parallel = 1
		seq, err := Analyze(pg, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Parallel = 8
		par, err := Analyze(pg, opts)
		if err != nil {
			t.Fatal(err)
		}
		comparePortResults(t, cfg.name, seq, par)
	}
}

func TestRepeatedRunsBitIdentical(t *testing.T) {
	// Regression for the map-iteration nondeterminism: analyzePort used
	// to iterate InputGroups() and the per-level split in map order, so
	// float accumulation differed run to run. N repeated runs must now
	// agree to the last bit.
	pg, err := afdx.BuildPortGraph(priorityConfig(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Analyze(pg, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		comparePortResults(t, "repeat", first, again)
	}
}
