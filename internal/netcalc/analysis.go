package netcalc

import (
	"fmt"
	"strings"
)

// Analysis selects the tightness/cost tier of the NC analysis — the
// ladder of Bondorf et al. ("Quality and Cost of Deterministic Network
// Calculus") and Bouillard's FIFO trade-off, projected onto this
// engine. Every tier is sound (a true upper bound on every path), so
// any selection may be combined by taking the per-path minimum; the
// conformance oracle enforces the ordering TFA >= WCNC >= FIFO >=
// sim/exact on every campaign.
type Analysis uint8

const (
	// AnalysisWCNC is the paper's pipeline and the default (zero
	// value): grouped per-level aggregates, serialization shaping,
	// horizontal-deviation port bounds. Options literals that predate
	// the tier knob keep their meaning unchanged.
	AnalysisWCNC Analysis = iota
	// AnalysisTFA is the cheap per-flow separated tier: no grouping
	// refinement and no staircase envelopes regardless of the Grouping
	// and StairSteps knobs — each flow contributes its plain leaky
	// bucket to the port aggregate. Never tighter than WCNC.
	AnalysisTFA
	// AnalysisFIFO is the tighter, costlier Bouillard-style tier: on
	// top of the WCNC port bound D, each flow's delay is refined
	// through the FIFO residual service [beta(t) - cross(t-theta)]+
	// minimised over a theta candidate grid and clamped to D, and the
	// refined per-flow delay drives burst propagation. Never looser
	// than WCNC.
	AnalysisFIFO
)

// Analyses lists every selectable tier, cheapest (loosest) first.
func Analyses() []Analysis { return []Analysis{AnalysisTFA, AnalysisWCNC, AnalysisFIFO} }

func (a Analysis) String() string {
	switch a {
	case AnalysisWCNC:
		return "WCNC"
	case AnalysisTFA:
		return "TFA"
	case AnalysisFIFO:
		return "FIFO"
	}
	return fmt.Sprintf("Analysis(%d)", uint8(a))
}

// ParseAnalysis parses a tier name (case-insensitive). Every CLI and
// the serving layer share this parser, so an unknown tier fails with
// the same vocabulary everywhere.
func ParseAnalysis(s string) (Analysis, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "WCNC":
		return AnalysisWCNC, nil
	case "TFA":
		return AnalysisTFA, nil
	case "FIFO":
		return AnalysisFIFO, nil
	}
	return 0, fmt.Errorf("unknown analysis tier %q (want TFA, WCNC or FIFO)", s)
}

// ParseAnalysisList parses a comma-separated tier list ("TFA,FIFO"),
// deduplicating while preserving order. An empty string is an error;
// callers supply their own default for an absent flag.
func ParseAnalysisList(s string) ([]Analysis, error) {
	var out []Analysis
	for _, part := range strings.Split(s, ",") {
		a, err := ParseAnalysis(part)
		if err != nil {
			return nil, err
		}
		dup := false
		for _, have := range out {
			if have == a {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	return out, nil
}

// effectiveGrouping projects the Grouping knob through the tier: the
// TFA tier analyses flows fully separated, so grouping is off whatever
// the knob says.
func (o Options) effectiveGrouping() bool {
	if o.Analysis == AnalysisTFA {
		return false
	}
	return o.Grouping
}

// effectiveStairSteps projects the StairSteps knob through the tier:
// the TFA tier keeps plain leaky buckets.
func (o Options) effectiveStairSteps() int {
	if o.Analysis == AnalysisTFA {
		return 0
	}
	return o.StairSteps
}
