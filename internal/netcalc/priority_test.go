package netcalc

import (
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/sim"
)

// priorityConfig is the Figure 2 configuration with v3 and v4 demoted to
// the low-priority level (v1, v2, v5 stay high).
func priorityConfig() *afdx.Network {
	n := afdx.Figure2Config()
	n.VLs[2].Priority = 1
	n.VLs[3].Priority = 1
	return n
}

func TestPriorityBoundsOrdering(t *testing.T) {
	pg, err := afdx.BuildPortGraph(priorityConfig(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// At S3->e6 the high level (v1, v2) is served before the low level
	// (v3, v4): the high bound must be below the FIFO bound of the flat
	// configuration, the low bound above it.
	flatPG, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Analyze(flatPG, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	port := afdx.PortID{From: "S3", To: "e6"}
	high := res.Ports[port].DelayByPriority[0]
	low := res.Ports[port].DelayByPriority[1]
	fifo := flat.Ports[port].DelayUs
	if high >= fifo {
		t.Errorf("high-priority delay %g should beat the FIFO delay %g", high, fifo)
	}
	if low <= fifo {
		t.Errorf("low-priority delay %g should exceed the FIFO delay %g", low, fifo)
	}
	if res.Ports[port].DelayUs != low {
		t.Errorf("port worst delay %g should be the low level's %g", res.Ports[port].DelayUs, low)
	}
	// Path bounds follow the levels.
	dv1 := res.PathDelays[afdx.PathID{VL: "v1", PathIdx: 0}]
	dv3 := res.PathDelays[afdx.PathID{VL: "v3", PathIdx: 0}]
	fv1 := flat.PathDelays[afdx.PathID{VL: "v1", PathIdx: 0}]
	if dv1 >= fv1 {
		t.Errorf("high-priority v1 bound %g should beat the FIFO bound %g", dv1, fv1)
	}
	if dv3 <= fv1 {
		t.Errorf("low-priority v3 bound %g should exceed the FIFO bound %g", dv3, fv1)
	}
}

func TestPriorityHighLevelBlockingAccounted(t *testing.T) {
	// The high level still suffers one non-preemptive low frame: its
	// bound at the shared port must exceed the bound it would get with
	// the low VLs removed entirely.
	n := priorityConfig()
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	alone := afdx.Figure2Config()
	alone.VLs = alone.VLs[:2] // v1, v2 only
	// keep v5 out as well; it shares no port with v1/v2
	pgAlone, err := afdx.BuildPortGraph(alone, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	resAlone, err := Analyze(pgAlone, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	port := afdx.PortID{From: "S3", To: "e6"}
	withBlocking := res.Ports[port].DelayByPriority[0]
	noLow := resAlone.Ports[port].DelayUs
	if withBlocking <= noLow {
		t.Errorf("high-priority delay %g must include low-frame blocking (> %g)",
			withBlocking, noLow)
	}
	// The blocking is at most one low frame (40 us) plus second-order
	// burst effects.
	if withBlocking > noLow+41 {
		t.Errorf("blocking term too large: %g vs %g", withBlocking, noLow)
	}
}

func TestPriorityBacklogCoversAllLevels(t *testing.T) {
	pg, err := afdx.BuildPortGraph(priorityConfig(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	flatPG, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Analyze(flatPG, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Priorities do not change the total buffer requirement materially;
	// the bound must stay within a small factor of the FIFO one (burst
	// propagation differs slightly because per-level delays differ).
	port := afdx.PortID{From: "S3", To: "e6"}
	if res.Ports[port].BacklogBits < flat.Ports[port].BacklogBits/2 ||
		res.Ports[port].BacklogBits > flat.Ports[port].BacklogBits*2 {
		t.Errorf("priority backlog %g suspicious vs FIFO %g",
			res.Ports[port].BacklogBits, flat.Ports[port].BacklogBits)
	}
}

func TestPrioritySimulationWithinNCBounds(t *testing.T) {
	pg, err := afdx.BuildPortGraph(priorityConfig(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		cfg := sim.DefaultConfig(seed)
		cfg.DurationUs = 64_000
		sr, err := sim.Run(pg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for pid, st := range sr.Paths {
			if st.MaxDelayUs > res.PathDelays[pid]+1e-6 {
				t.Errorf("seed %d path %v: simulated %g above the SP NC bound %g",
					seed, pid, st.MaxDelayUs, res.PathDelays[pid])
			}
		}
	}
	// The adversarial synchronized burst too.
	cfg := sim.Config{
		DurationUs: 4000,
		OffsetsUs:  map[string]float64{"v1": 0, "v2": 0, "v3": 0, "v4": 0, "v5": 0},
	}
	sr, err := sim.Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pid, st := range sr.Paths {
		if st.MaxDelayUs > res.PathDelays[pid]+1e-6 {
			t.Errorf("burst path %v: simulated %g above the SP NC bound %g",
				pid, st.MaxDelayUs, res.PathDelays[pid])
		}
	}
}

func TestUniformPriorityMatchesFIFOAnalysis(t *testing.T) {
	shifted := afdx.Figure2Config()
	for _, v := range shifted.VLs {
		v.Priority = 2
	}
	pgShift, err := afdx.BuildPortGraph(shifted, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	resShift, err := Analyze(pgShift, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	flatPG, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Analyze(flatPG, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for pid, d := range flat.PathDelays {
		if !almostEq(resShift.PathDelays[pid], d) {
			t.Errorf("path %v: uniform priority changed the bound %g -> %g",
				pid, d, resShift.PathDelays[pid])
		}
	}
}
