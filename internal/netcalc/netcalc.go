// Package netcalc implements the Worst-Case Network Calculus (WCNC)
// end-to-end delay analysis used for AFDX certification, as described in
// the paper and its companion references (Charara et al., ECRTS 2006;
// Grieu's thesis; Le Boudec & Thiran for the underlying theory),
// including the grouping (serialization) refinement.
//
// The analysis is holistic: output ports are processed in topological
// (feed-forward) order; at each port the delay bound is the horizontal
// deviation between the aggregate arrival curve of the competing flows
// and the port's rate-latency service curve, and each flow's envelope is
// then inflated by the port delay before being propagated downstream.
package netcalc

import (
	"context"
	"fmt"
	"math"
	"sort"

	"afdx/internal/afdx"
	"afdx/internal/lint"
	"afdx/internal/minplus"
	"afdx/internal/obs"
	"afdx/internal/parallel"
)

// Options selects analysis variants.
type Options struct {
	// Grouping enables the serialization refinement: flows entering a
	// switch through the same input link are jointly shaped by a leaky
	// bucket with burst = largest member frame and rate = link rate.
	// This is the "grouping technique" of the paper (Section II-B).
	Grouping bool
	// Deconvolution propagates per-flow output envelopes with the exact
	// (min,+) deconvolution against the port's residual service instead
	// of the classical burst inflation b <- b + rho*D. This is an
	// ablation knob; the paper's tool uses burst inflation.
	Deconvolution bool
	// Analysis selects the tightness/cost tier (see the Analysis type):
	// AnalysisWCNC (zero value) is the paper's pipeline, AnalysisTFA the
	// cheaper per-flow separated variant, AnalysisFIFO the tighter
	// Bouillard-style per-aggregate refinement. The tier is an ordinary
	// Options field, so it participates in every Options comparison —
	// in particular the incremental cache's signature (Cache.ensureOpts)
	// and the whole-result memo — and a warm session switching tiers can
	// never be served a stale-tier bound.
	Analysis Analysis
	// StairSteps, when positive, replaces each flow's leaky-bucket
	// envelope with its exact staircase arrival curve (shifted by the
	// accumulated upstream delay bound), truncated to that many exact
	// steps before falling back to the leaky bucket. This addresses the
	// pessimism source the paper names in section II-B ("envelopes are
	// used instead of the exact arrival curve"); it only bites when port
	// busy periods span several BAGs. Zero keeps the paper's leaky
	// buckets.
	StairSteps int
	// Parallel bounds the analysis worker pool: ports of the same
	// dependency rank are analysed concurrently by at most this many
	// goroutines (<= 0 selects GOMAXPROCS, 1 is strictly sequential).
	// Every worker count produces bit-identical results: each port's
	// bound is a pure function of its upstream ports' merged results,
	// and worker results are merged in canonical port order (see
	// DESIGN.md, "Concurrency and determinism").
	Parallel int
}

// DefaultOptions returns the configuration matching the paper's WCNC
// column: grouping enabled, classical burst-inflation propagation.
func DefaultOptions() Options { return Options{Grouping: true} }

// PortResult carries the per-output-port bounds: the delay bound (which
// every frame crossing the port experiences at most, from arrival at the
// port to complete transmission on the outgoing link) and the backlog
// bound used to dimension the port's FIFO buffer.
//
// On ports multiplexing several static-priority levels (ARINC 664
// switches offer a high/low level), DelayByPriority holds one bound per
// level — higher levels (smaller numbers) see the port's service minus
// one non-preemptive blocking frame, lower levels see the service left
// over by the higher ones — and DelayUs is the worst of them. The
// backlog bound covers the shared buffer across levels.
type PortResult struct {
	DelayUs         float64
	DelayByPriority map[int]float64
	BacklogBits     float64
	Utilization     float64
}

// FlowPortKey identifies a (VL, port) incidence.
type FlowPortKey struct {
	VL   string
	Port afdx.PortID
}

// Result is the outcome of a WCNC analysis of a full configuration.
type Result struct {
	Opts  Options
	Ports map[afdx.PortID]PortResult
	// PathDelays maps every (VL, destination) path to its end-to-end
	// delay upper bound in microseconds.
	PathDelays map[afdx.PathID]float64
	// FlowDelays maps every (VL, port) incidence to the delay bound the
	// flow experiences at that port. For the WCNC and TFA tiers this is
	// the flow's priority-level bound (DelayByPriority); the FIFO tier
	// refines it per flow through the FIFO residual service. Path bounds
	// are the sums of these terms along the crossed ports.
	FlowDelays map[FlowPortKey]float64
	// PrefixDelays maps (VL, port) to an upper bound on the time between
	// the frame's emission and its arrival at that port (the sum of the
	// delay bounds of the ports crossed before it). Used as the S_max
	// term by the Trajectory approach.
	PrefixDelays map[FlowPortKey]float64
	// Bursts maps (VL, port) to the flow's burst (bits) as it arrives at
	// the port, after upstream jitter inflation.
	Bursts map[FlowPortKey]float64
}

// Analyze runs the WCNC analysis over a feed-forward port graph.
// It returns an error when a port is unstable (aggregate long-term rate
// above the link rate), since no finite bound exists in that case. The
// stability pre-flight is the shared lint check (diagnostic AFDX001):
// any configuration this engine rejects is flagged by the linter before
// the analysis is ever invoked.
func Analyze(pg *afdx.PortGraph, opts Options) (*Result, error) {
	return AnalyzeCtx(context.Background(), pg, opts)
}

// ncMetrics is the engine's instrument bundle, resolved once per run
// from the context registry. All fields may be nil (no registry): the
// obs instruments no-op on nil receivers. Every netcalc metric is
// Deterministic — the work set is fixed by the configuration, so the
// counts are identical across runs and worker counts.
type ncMetrics struct {
	ports     *obs.Counter
	envelopes *obs.Counter
	betaHits  *obs.Counter
	betaMiss  *obs.Counter
	rankSize  *obs.Histogram
}

func newNCMetrics(reg *obs.Registry) ncMetrics {
	if reg == nil {
		return ncMetrics{}
	}
	return ncMetrics{
		ports: reg.Counter("netcalc.ports_analyzed", obs.Deterministic,
			"output ports analysed (horizontal-deviation bounds computed)"),
		envelopes: reg.Counter("netcalc.flow_envelopes", obs.Deterministic,
			"per-flow arrival envelopes built at ports"),
		betaHits: reg.Counter("netcalc.service_curve_cache_hits", obs.Deterministic,
			"port service curves served from the (rate, latency) cache"),
		betaMiss: reg.Counter("netcalc.service_curve_cache_misses", obs.Deterministic,
			"distinct (rate, latency) service curves constructed"),
		rankSize: reg.Histogram("netcalc.rank_size", obs.Deterministic,
			"ports per dependency rank (the per-rank fan-out width)"),
	}
}

// ncRun bundles the per-run state threaded through analyzePort: the
// graph, the shared (merge-only) result, the instrument bundle, and
// the read-only service-curve cache.
type ncRun struct {
	ctx   context.Context
	pg    *afdx.PortGraph
	res   *Result
	m     ncMetrics
	betas map[betaKey]minplus.Curve
}

// betaKey identifies a rate-latency service curve. Ports share curves
// aggressively (an AFDX network has a handful of link speeds), so the
// cache is precomputed sequentially and read-only afterwards —
// parallel-safe, and hit counts are exact work counts.
type betaKey struct {
	rate    float64
	latency float64
}

// AnalyzeCtx is Analyze with observability: when ctx carries an
// obs.Registry the engine counts ports, envelopes, service-curve cache
// traffic and rank sizes; when it carries an obs.Tracer the run is
// wrapped in a "netcalc" span with one "port:<id>" span per port.
// Observation never influences the computation: results are
// bit-identical with or without it.
func AnalyzeCtx(ctx context.Context, pg *afdx.PortGraph, opts Options) (*Result, error) {
	return analyzeWith(ctx, pg, opts, nil)
}

// analyzeWith is the shared engine body behind AnalyzeCtx (c == nil,
// every port computed) and AnalyzeWithCacheCtx (per-port outcomes
// served from c when their fingerprints match; see incremental.go).
func analyzeWith(ctx context.Context, pg *afdx.PortGraph, opts Options, c *Cache) (*Result, error) {
	ctx, span := obs.StartSpan(ctx, "netcalc")
	defer span.End()
	var im incrMetrics
	var sigMap map[afdx.PortID]string
	if c != nil {
		c.ensureOpts(opts)
		im = newIncrMetrics(obs.RegistryFrom(ctx))
		// Whole-result fast path: the exact same analysis already ran
		// (lint included — a memoized graph passed the stability check).
		if c.lastRes != nil && c.lastPG == pg && c.lastOpts == opts {
			im.hits.Add(int64(len(pg.Ports)))
			return c.lastRes, nil
		}
		sigMap, _ = c.signatures(pg)
	}
	if c == nil || c.sig.stabPG != pg {
		if err := lint.CheckStability(pg); err != nil {
			return nil, fmt.Errorf("netcalc: %w", err)
		}
		if c != nil {
			c.sig.stabPG = pg
		}
	}
	incidences := 0
	for _, port := range pg.Ports {
		incidences += len(port.Flows)
	}
	res := &Result{
		Opts:         opts,
		Ports:        make(map[afdx.PortID]PortResult, len(pg.Ports)),
		PathDelays:   map[afdx.PathID]float64{},
		FlowDelays:   make(map[FlowPortKey]float64, incidences),
		PrefixDelays: make(map[FlowPortKey]float64, incidences),
		Bursts:       make(map[FlowPortKey]float64, incidences),
	}
	// Initialise source-port envelopes: at its source end system every VL
	// is freshly shaped to (s_max, s_max/BAG).
	for _, id := range pg.Order {
		port := pg.Ports[id]
		for _, f := range port.Flows {
			if f.Prev == "" {
				res.Bursts[FlowPortKey{f.VL.ID, id}] = f.VL.SMaxBits()
				res.PrefixDelays[FlowPortKey{f.VL.ID, id}] = 0
			}
		}
	}
	rn := &ncRun{
		ctx: ctx,
		pg:  pg,
		res: res,
		m:   newNCMetrics(obs.RegistryFrom(ctx)),
	}
	// Precompute the service-curve cache over the distinct (rate,
	// latency) pairs; afterwards it is read-only and parallel-safe.
	rn.betas = make(map[betaKey]minplus.Curve)
	for _, id := range pg.Order {
		port := pg.Ports[id]
		k := betaKey{port.RateBitsPerUs, port.LatencyUs}
		if _, ok := rn.betas[k]; !ok {
			rn.betas[k] = minplus.RateLatency(port.RateBitsPerUs, port.LatencyUs)
			rn.m.betaMiss.Inc()
		}
	}
	if rn.m.rankSize != nil {
		for _, rank := range pg.Ranks() {
			rn.m.rankSize.Observe(int64(len(rank)))
		}
	}
	// Ports of the same dependency rank are independent — each reads
	// only results of strictly lower ranks, all merged before the rank
	// starts — so a rank is a safe fan-out unit. Outcomes land indexed
	// in a slice and merge in the rank's canonical order, keeping the
	// Result maps free of concurrent writes and the run bit-identical
	// at every worker count. At workers == 1 ForEachCtx degenerates to
	// an in-order loop, so the sequential analysis shares this code
	// path — and its metric stream: the pool's deterministic batch and
	// task counts are identical across worker counts.
	// With a cache attached, each port's fingerprint (contract signature
	// + upstream inputs) is compared sequentially before the rank fans
	// out, so only the dirty frontier is recomputed; hit/miss decisions
	// are input comparisons made before any worker runs, hence
	// deterministic at every worker count (the counters are
	// Deterministic class).
	workers := parallel.Workers(opts.Parallel)
	for _, rank := range pg.Ranks() {
		outs := make([]*portOutcome, len(rank))
		todo := make([]int, 0, len(rank))
		var sigs []string
		var inputs [][]float64
		if c != nil {
			sigs = make([]string, len(rank))
			inputs = make([][]float64, len(rank))
			for i, id := range rank {
				sigs[i] = sigMap[id]
				if e := c.ports[id]; e != nil {
					if s := e.match(sigs[i], rn, id); s != nil {
						outs[i] = s.out
						im.hits.Inc()
						continue
					}
					im.invalidations.Inc()
				}
				inputs[i], _ = rn.portInputs(id)
				todo = append(todo, i)
			}
			im.recomputes.Add(int64(len(todo)))
		} else {
			for i := range rank {
				todo = append(todo, i)
			}
		}
		err := parallel.ForEachCtx(ctx, workers, len(todo), func(k int) error {
			i := todo[k]
			out, err := analyzePort(rn, rank[i])
			outs[i] = out
			return err
		})
		if err != nil {
			return nil, err
		}
		for _, out := range outs {
			res.merge(out)
		}
		if c != nil {
			for _, i := range todo {
				e := c.ports[rank[i]]
				if e == nil {
					e = &cacheEntry{}
					c.ports[rank[i]] = e
				}
				e.store(&cacheSlot{sig: sigs[i], inputs: inputs[i], out: outs[i]})
			}
		}
	}
	// Path bounds sum the per-flow port terms. For the WCNC and TFA
	// tiers each term is exactly the flow's priority-level bound, so
	// this sum is bit-identical to the historical per-level sum; the
	// FIFO tier's refined terms make it strictly the per-flow total.
	for _, pid := range pg.Net.AllPaths() {
		total := 0.0
		for _, portID := range pg.PathPorts(pid) {
			total += res.FlowDelays[FlowPortKey{pid.VL, portID}]
		}
		res.PathDelays[pid] = total
	}
	if c != nil {
		c.lastPG, c.lastOpts, c.lastRes = pg, opts, res
	}
	return res, nil
}

// flowEnvelope returns the arrival envelope of one flow as it arrives
// at a port: the jitter-inflated leaky bucket, or (with StairSteps > 0)
// the exact jitter-shifted staircase curve.
func flowEnvelope(res *Result, vl *afdx.VirtualLink, port afdx.PortID) (minplus.Curve, error) {
	key := FlowPortKey{vl.ID, port}
	b, ok := res.Bursts[key]
	if !ok {
		return minplus.Curve{}, fmt.Errorf("netcalc: no propagated envelope for VL %s at port %s (port order broken)", vl.ID, port)
	}
	lb := minplus.LeakyBucket(b, vl.RhoBitsPerUs())
	if res.Opts.effectiveStairSteps() <= 0 {
		return lb, nil
	}
	// The staircase jitter is the accumulated upstream delay bound: a
	// frame emitted at t arrives at this port within
	// [t + minTransit, t + prefixDelay], so in the worst case the
	// window of length x holds the frames of a window of length
	// x + prefixDelay at the source.
	jitter := res.PrefixDelays[key]
	stair, err := minplus.StaircaseWithJitter(vl.SMaxBits(), vl.BAGUs(), jitter, res.Opts.effectiveStairSteps())
	if err != nil {
		return minplus.Curve{}, fmt.Errorf("netcalc: staircase envelope for VL %s at %s: %w", vl.ID, port, err)
	}
	// Keep the leaky bucket as a second valid envelope; their minimum is
	// a tighter valid envelope (they can dominate each other depending
	// on how the jitter relates to the burst inflation).
	return minplus.Min(lb, stair), nil
}

// flowWrite is one envelope propagation produced by a port analysis:
// the analyzed flow's burst and accumulated prefix delay as it arrives
// at a downstream port.
type flowWrite struct {
	key    FlowPortKey
	burst  float64
	prefix float64
}

// flowDelayTerm is one flow's delay bound at the analysed port (the
// FlowDelays entry the merge step publishes).
type flowDelayTerm struct {
	key   FlowPortKey
	delay float64
}

// portOutcome is the complete effect of analysing one port: its bounds,
// the per-flow delay terms, plus the envelope propagations to
// downstream ports. analyzePort only reads the Result it is given;
// applying an outcome is the separate, single-writer merge step, which
// keeps the parallel engine free of concurrent map access.
type portOutcome struct {
	id     afdx.PortID
	port   PortResult
	delays []flowDelayTerm
	writes []flowWrite
}

// merge applies one port's outcome to the shared result. Writes are
// conflict-free across ports (a VL enters every port from exactly one
// upstream link), so merge order does not affect the stored values;
// callers still merge in canonical port order so error-free runs are
// reproducible step by step.
func (r *Result) merge(out *portOutcome) {
	r.Ports[out.id] = out.port
	for _, d := range out.delays {
		r.FlowDelays[d.key] = d.delay
	}
	for _, w := range out.writes {
		r.Bursts[w.key] = w.burst
		r.PrefixDelays[w.key] = w.prefix
	}
}

func analyzePort(rn *ncRun, id afdx.PortID) (*portOutcome, error) {
	pg, res := rn.pg, rn.res
	_, span := obs.StartSpan(rn.ctx, "port:"+id.String())
	defer span.End()
	rn.m.ports.Inc()
	port := pg.Ports[id]
	beta, ok := rn.betas[betaKey{port.RateBitsPerUs, port.LatencyUs}]
	if !ok {
		// The engine precomputes every port's service curve before the
		// rank fan-out; a miss means analyzePort ran outside an engine
		// run, which would silently skip the beta-cache accounting. Hard
		// invariant error rather than untested fallback code.
		return nil, fmt.Errorf("netcalc: port %s: service curve (rate %g, latency %g) not precomputed (analyzePort called outside an engine run)",
			id, port.RateBitsPerUs, port.LatencyUs)
	}
	rn.m.betaHits.Inc()

	// Grouped aggregate arrival curve per priority level, plus the total
	// for stability and backlog. Groups and levels are iterated in
	// sorted order: the curve additions below accumulate floating-point
	// error, so iteration order is part of the reproducibility contract.
	levelAgg := map[int]minplus.Curve{}
	levels := []int{}
	rhoSum := 0.0
	// The FIFO tier's per-flow refinement needs concave building blocks
	// (the residual op requires a concave cross envelope): each member's
	// plain leaky bucket plus the group's serialization contract. They
	// are collected during the aggregation sweep, in the same sorted
	// group/level order, so the refinement below is deterministic.
	type fifoMember struct {
		vl   *afdx.VirtualLink
		lb   minplus.Curve
		smax float64
	}
	type fifoGroup struct {
		inRate  float64
		shaped  bool
		members []fifoMember
	}
	var fifoByLevel map[int][]fifoGroup
	if res.Opts.Analysis == AnalysisFIFO {
		fifoByLevel = map[int][]fifoGroup{}
	}
	// Envelope constructions are counted locally and flushed in one Add
	// per port: a per-flow atomic increment from every worker contends
	// on one cache line for no observational gain.
	envelopes := int64(0)
	for _, g := range port.InputGroupsSorted() {
		// Grouping applies within a priority level: a link serializes
		// all frames, but the shaping below feeds per-level residual
		// services, so split the group by level first (conservative:
		// cross-level serialization is not exploited).
		byLevel := map[int][]afdx.PortFlow{}
		groupLevels := []int{}
		for _, f := range g.Flows {
			if _, ok := byLevel[f.VL.Priority]; !ok {
				groupLevels = append(groupLevels, f.VL.Priority)
			}
			byLevel[f.VL.Priority] = append(byLevel[f.VL.Priority], f)
			rhoSum += f.VL.RhoBitsPerUs()
		}
		sort.Ints(groupLevels)
		for _, lvl := range groupLevels {
			flows := byLevel[lvl]
			var members = minplus.Zero()
			maxFrame := 0.0
			for _, f := range flows {
				env, err := flowEnvelope(res, f.VL, id)
				if err != nil {
					return nil, err
				}
				envelopes++
				members = minplus.Add(members, env)
				if s := f.VL.SMaxBits(); s > maxFrame {
					maxFrame = s
				}
			}
			inRate := port.RateBitsPerUs
			if in := pg.Ports[afdx.PortID{From: g.Prev, To: id.From}]; in != nil {
				inRate = in.RateBitsPerUs
			}
			groupEnv := members
			if res.Opts.effectiveGrouping() && g.Prev != "" && len(flows) > 1 {
				// Serialization on the shared input link: the group
				// cannot burst faster than the link transmits, one
				// largest frame ahead (the paper's leaky-bucket shaping
				// with "a rate equal to the rate of the source" link).
				shaping := minplus.LeakyBucket(maxFrame, inRate)
				groupEnv = minplus.Min(members, shaping)
			}
			if fifoByLevel != nil {
				fg := fifoGroup{
					inRate: inRate,
					shaped: res.Opts.effectiveGrouping() && g.Prev != "",
				}
				for _, f := range flows {
					fg.members = append(fg.members, fifoMember{
						vl:   f.VL,
						lb:   minplus.LeakyBucket(res.Bursts[FlowPortKey{f.VL.ID, id}], f.VL.RhoBitsPerUs()),
						smax: f.VL.SMaxBits(),
					})
				}
				fifoByLevel[lvl] = append(fifoByLevel[lvl], fg)
			}
			if cur, ok := levelAgg[lvl]; ok {
				levelAgg[lvl] = minplus.Add(cur, groupEnv)
			} else {
				levelAgg[lvl] = groupEnv
				levels = append(levels, lvl)
			}
		}
	}
	sort.Ints(levels)
	if envelopes > 0 {
		rn.m.envelopes.Add(envelopes)
	}

	// Stability (rhoSum <= rate) is guaranteed by the pre-flight
	// lint.CheckStability in Analyze; rhoSum is kept for the utilization
	// figure of the port result.

	// Per-level delay bounds: level p is served by the port's service
	// minus the higher levels' arrivals and minus one non-preemptive
	// blocking frame of the lower levels. With a single level this is
	// exactly the FIFO analysis of the paper.
	delayByPrio := map[int]float64{}
	residualByPrio := map[int]minplus.Curve{}
	total := minplus.Zero()
	worst := 0.0
	higher := minplus.Zero()
	for i, lvl := range levels {
		blocking := 0.0
		for _, f := range port.Flows {
			if f.VL.Priority > lvl {
				if s := f.VL.SMaxBits(); s > blocking {
					blocking = s
				}
			}
		}
		residual := beta
		if i > 0 || blocking > 0 {
			var err error
			residual, err = minplus.SubPos(beta, minplus.Add(higher, minplus.Plateau(blocking)))
			if err != nil {
				return nil, fmt.Errorf("netcalc: port %s level %d residual service: %w", id, lvl, err)
			}
		}
		delay := minplus.HorizontalDeviation(levelAgg[lvl], residual)
		if math.IsInf(delay, 1) {
			return nil, fmt.Errorf("netcalc: port %s: unbounded delay at priority %d", id, lvl)
		}
		delayByPrio[lvl] = delay
		residualByPrio[lvl] = residual
		if delay > worst {
			worst = delay
		}
		higher = minplus.Add(higher, levelAgg[lvl])
		total = minplus.Add(total, levelAgg[lvl])
	}
	backlog := minplus.VerticalDeviation(total, beta)
	out := &portOutcome{
		id: id,
		port: PortResult{
			DelayUs:         worst,
			DelayByPriority: delayByPrio,
			BacklogBits:     backlog,
			Utilization:     rhoSum / port.RateBitsPerUs,
		},
	}

	// FIFO tier: refine each flow's delay below its level bound D via
	// the FIFO residual service [residual(t) - cross(t-theta)]+ over a
	// theta candidate grid in [0, D]. Every theta yields a valid bound
	// (Le Boudec & Thiran Thm 6.2.2) and D itself is one (the aggregate
	// bound), so the minimum — explicitly clamped to D — is sound and
	// never looser than the WCNC tier, port by port.
	var fifoDelay map[string]float64
	if fifoByLevel != nil {
		fifoDelay = make(map[string]float64, len(port.Flows))
		for _, lvl := range levels {
			d := delayByPrio[lvl]
			groups := fifoByLevel[lvl]
			residual := residualByPrio[lvl]
			// Shaped concave envelope per group (the cross-traffic view:
			// plain leaky buckets under the serialization contract).
			shapedEnv := make([]minplus.Curve, len(groups))
			for gi, g := range groups {
				sum := minplus.Zero()
				maxFrame := 0.0
				for _, m := range g.members {
					sum = minplus.Add(sum, m.lb)
					if m.smax > maxFrame {
						maxFrame = m.smax
					}
				}
				if g.shaped && len(g.members) > 1 {
					sum = minplus.Min(sum, minplus.LeakyBucket(maxFrame, g.inRate))
				}
				shapedEnv[gi] = sum
			}
			// Prefix/suffix sums make "every group but mine" O(1) Adds.
			prefix := make([]minplus.Curve, len(groups)+1)
			prefix[0] = minplus.Zero()
			for gi := range groups {
				prefix[gi+1] = minplus.Add(prefix[gi], shapedEnv[gi])
			}
			suffix := make([]minplus.Curve, len(groups)+1)
			suffix[len(groups)] = minplus.Zero()
			for gi := len(groups) - 1; gi >= 0; gi-- {
				suffix[gi] = minplus.Add(suffix[gi+1], shapedEnv[gi])
			}
			for gi, g := range groups {
				others := minplus.Add(prefix[gi], suffix[gi+1])
				for mi, m := range g.members {
					ownSum := minplus.Zero()
					ownMax := 0.0
					for mj, mm := range g.members {
						if mj == mi {
							continue
						}
						ownSum = minplus.Add(ownSum, mm.lb)
						if mm.smax > ownMax {
							ownMax = mm.smax
						}
					}
					if g.shaped && len(g.members) > 2 {
						// The remaining members still share the input link.
						ownSum = minplus.Min(ownSum, minplus.LeakyBucket(ownMax, g.inRate))
					}
					cross := minplus.Add(others, ownSum)
					env, err := flowEnvelope(res, m.vl, id)
					if err != nil {
						return nil, err
					}
					best := d
					for _, frac := range [...]float64{0, 0.25, 0.5, 0.75, 1} {
						r, err := minplus.FIFOResidual(residual, cross, d*frac)
						if err != nil {
							// A degenerate residual (e.g. zero-rate level)
							// just loses the refinement; the aggregate
							// bound d stays in force.
							continue
						}
						if fd := minplus.HorizontalDeviation(env, r); fd < best {
							best = fd
						}
					}
					fifoDelay[m.vl.ID] = best
				}
			}
		}
	}

	// Propagate each flow's envelope to its next port(s) using its own
	// delay bound at this port: the priority level's bound, or the FIFO
	// tier's per-flow refinement. The per-flow terms are also published
	// to FlowDelays — path bounds sum them.
	for _, f := range port.Flows {
		key := FlowPortKey{f.VL.ID, id}
		delay := delayByPrio[f.VL.Priority]
		if fd, ok := fifoDelay[f.VL.ID]; ok {
			delay = fd
		}
		out.delays = append(out.delays, flowDelayTerm{key: key, delay: delay})
		nextBurst, err := outputBurst(res, f.VL, id, delay)
		if err != nil {
			return nil, err
		}
		for _, next := range nextPorts(pg, f.VL, id) {
			out.writes = append(out.writes, flowWrite{
				key:    FlowPortKey{f.VL.ID, next},
				burst:  nextBurst,
				prefix: res.PrefixDelays[key] + delay,
			})
		}
	}
	return out, nil
}

// outputBurst computes the burst of a flow after it crosses a port whose
// delay bound for the flow is delay. The classical propagation inflates
// the burst by rho*delay (the output traffic is bounded by
// alpha(t+delay)); the Deconvolution option instead deconvolves the flow
// envelope against the exact pure-delay service delta_delay, which for
// leaky buckets evaluates to the identical float expression b + rho*delay
// at every link rate — the ablation's correctness no longer depends on a
// finite magic rate (the old stand-in was RateLatency(1e12, delay)).
func outputBurst(res *Result, vl *afdx.VirtualLink, id afdx.PortID, delay float64) (float64, error) {
	b := res.Bursts[FlowPortKey{vl.ID, id}]
	if !res.Opts.Deconvolution {
		return b + vl.RhoBitsPerUs()*delay, nil
	}
	env := minplus.LeakyBucket(b, vl.RhoBitsPerUs())
	// In FIFO aggregation the flow is guaranteed the aggregate's delay
	// bound as a pure delay service: delta_delay(t) = +inf for t > delay.
	// Deconvolving against it gives alpha(t + delay) exactly.
	out, err := minplus.Deconvolve(env, minplus.Delay(delay))
	if err != nil {
		return 0, fmt.Errorf("netcalc: propagating VL %s past port %s: %w", vl.ID, id, err)
	}
	return out.ValueAtZero(), nil
}

// nextPorts lists the ports immediately downstream of id on the paths of
// the given VL (several for a multicast branch, none at the last hop).
func nextPorts(pg *afdx.PortGraph, vl *afdx.VirtualLink, id afdx.PortID) []afdx.PortID {
	var out []afdx.PortID
	seen := map[afdx.PortID]bool{}
	for pi := range vl.Paths {
		seq := pg.PathPorts(afdx.PathID{VL: vl.ID, PathIdx: pi})
		for k := 0; k+1 < len(seq); k++ {
			if seq[k] == id && !seen[seq[k+1]] {
				seen[seq[k+1]] = true
				out = append(out, seq[k+1])
			}
		}
	}
	return out
}

// PathDelay returns the end-to-end bound of one path, or an error when
// the path is unknown.
func (r *Result) PathDelay(id afdx.PathID) (float64, error) {
	d, ok := r.PathDelays[id]
	if !ok {
		return 0, fmt.Errorf("netcalc: unknown path %v", id)
	}
	return d, nil
}

// MaxBacklogBits returns the largest per-port backlog bound, i.e. the
// switch buffer dimensioning figure mentioned in the paper's section II-B.
// The ports are scanned in canonical order so that a future refinement
// reporting the arg-max port cannot reintroduce a DET001 tie-break on
// randomized map iteration.
func (r *Result) MaxBacklogBits() float64 {
	ids := make([]afdx.PortID, 0, len(r.Ports))
	for id := range r.Ports {
		ids = append(ids, id)
	}
	afdx.SortPortIDs(ids)
	m := 0.0
	for _, id := range ids {
		if p := r.Ports[id]; p.BacklogBits > m {
			m = p.BacklogBits
		}
	}
	return m
}
