package netcalc

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
	"afdx/internal/minplus"
)

func TestParseAnalysis(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Analysis
	}{
		{"WCNC", AnalysisWCNC}, {"wcnc", AnalysisWCNC}, {" Wcnc ", AnalysisWCNC},
		{"TFA", AnalysisTFA}, {"tfa", AnalysisTFA},
		{"FIFO", AnalysisFIFO}, {"fifo", AnalysisFIFO},
	} {
		got, err := ParseAnalysis(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseAnalysis(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "SFA", "PMOO", "wcnc,tfa"} {
		if _, err := ParseAnalysis(bad); err == nil {
			t.Errorf("ParseAnalysis(%q) unexpectedly succeeded", bad)
		}
	}
	if got := AnalysisFIFO.String(); got != "FIFO" {
		t.Errorf("AnalysisFIFO.String() = %q", got)
	}
}

func TestParseAnalysisList(t *testing.T) {
	got, err := ParseAnalysisList("tfa,WCNC,fifo,TFA")
	if err != nil {
		t.Fatal(err)
	}
	want := []Analysis{AnalysisTFA, AnalysisWCNC, AnalysisFIFO}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseAnalysisList = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "TFA,", "TFA,nope"} {
		if _, err := ParseAnalysisList(bad); err == nil {
			t.Errorf("ParseAnalysisList(%q) unexpectedly succeeded", bad)
		}
	}
}

// Regression for the RateLatency(1e12, delay) pure-delay stand-in: the
// Deconvolution ablation must equal classical burst inflation exactly
// (==, not within tolerance) for leaky buckets at every VL rate,
// including rates at and beyond the old magic 1e12 constant where the
// finite-rate approximation broke down.
func TestOutputBurstDeconvolutionExactAtEveryRate(t *testing.T) {
	id := afdx.PortID{From: "a", To: "b"}
	for _, rho := range []float64{0.01, 1, 125, 1e6, 1e11, 1e12, 5e12, 1e13} {
		// rho = SMaxBits/BAGUs; pick BAG to hit the target rate with a
		// 125-byte (1000-bit) frame.
		vl := &afdx.VirtualLink{ID: "v", SMaxBytes: 125, BAGMs: 1.0 / rho}
		if got := vl.RhoBitsPerUs(); !almostEq(got, rho) {
			t.Fatalf("rho setup: got %g, want about %g", got, rho)
		}
		for _, delay := range []float64{0, 0.5, 56, 1e4} {
			mk := func(deconv bool) *Result {
				return &Result{
					Opts:   Options{Deconvolution: deconv},
					Bursts: map[FlowPortKey]float64{{vl.ID, id}: 4000},
				}
			}
			classic, err := outputBurst(mk(false), vl, id, delay)
			if err != nil {
				t.Fatalf("rho=%g delay=%g classic: %v", rho, delay, err)
			}
			ablated, err := outputBurst(mk(true), vl, id, delay)
			if err != nil {
				t.Fatalf("rho=%g delay=%g deconvolution: %v", rho, delay, err)
			}
			if ablated != classic {
				t.Errorf("rho=%g delay=%g: deconvolution %v != classical %v (must be exact)",
					rho, delay, ablated, classic)
			}
		}
	}
}

// The end-to-end ablation equality is now exact as well: every path
// bound and every propagated burst agree bit for bit.
func TestDeconvolutionAblationBitIdenticalOnFigure2(t *testing.T) {
	pg := figure2Graph(t)
	classic, err := Analyze(pg, Options{Grouping: true})
	if err != nil {
		t.Fatal(err)
	}
	deconv, err := Analyze(pg, Options{Grouping: true, Deconvolution: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(classic.PathDelays, deconv.PathDelays) {
		t.Errorf("path delays differ between classical and deconvolution propagation")
	}
	if !reflect.DeepEqual(classic.Bursts, deconv.Bursts) {
		t.Errorf("bursts differ between classical and deconvolution propagation")
	}
}

// analyzePort outside an engine run (no precomputed service curves) is
// a hard invariant error, not silently uncounted fallback work.
func TestAnalyzePortRequiresPrecomputedBeta(t *testing.T) {
	pg := figure2Graph(t)
	rn := &ncRun{
		ctx:   context.Background(),
		pg:    pg,
		res:   &Result{Opts: DefaultOptions()},
		betas: map[betaKey]minplus.Curve{},
	}
	_, err := analyzePort(rn, pg.Order[0])
	if err == nil {
		t.Fatal("analyzePort with an empty service-curve cache unexpectedly succeeded")
	}
	if want := "not precomputed"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func tierOpts(a Analysis) Options {
	o := DefaultOptions()
	o.Analysis = a
	return o
}

// The ladder on the hand-checkable configurations: cheaper tiers are
// never tighter, costlier tiers never looser, on every path.
func TestTierOrderingOnSampleConfigs(t *testing.T) {
	for _, cfg := range []struct {
		name string
		net  *afdx.Network
	}{
		{"figure1", afdx.Figure1Config()},
		{"figure2", afdx.Figure2Config()},
	} {
		pg, err := afdx.BuildPortGraph(cfg.net, afdx.Strict)
		if err != nil {
			t.Fatal(err)
		}
		tfa, err := Analyze(pg, tierOpts(AnalysisTFA))
		if err != nil {
			t.Fatalf("%s TFA: %v", cfg.name, err)
		}
		wcnc, err := Analyze(pg, tierOpts(AnalysisWCNC))
		if err != nil {
			t.Fatalf("%s WCNC: %v", cfg.name, err)
		}
		fifo, err := Analyze(pg, tierOpts(AnalysisFIFO))
		if err != nil {
			t.Fatalf("%s FIFO: %v", cfg.name, err)
		}
		const relTol = 1e-9
		leq := func(a, b float64) bool { return a <= b+relTol*(1+math.Abs(a)+math.Abs(b)) }
		for pid, dw := range wcnc.PathDelays {
			if dt := tfa.PathDelays[pid]; !leq(dw, dt) {
				t.Errorf("%s %v: WCNC %g tighter-violating TFA %g", cfg.name, pid, dw, dt)
			}
			if df := fifo.PathDelays[pid]; !leq(df, dw) {
				t.Errorf("%s %v: FIFO %g looser than WCNC %g", cfg.name, pid, df, dw)
			}
		}
		// TFA really is the separated analysis: identical to WCNC with
		// grouping and staircases off.
		separated, err := Analyze(pg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tfa.PathDelays, separated.PathDelays) {
			t.Errorf("%s: TFA differs from ungrouped plain-envelope analysis", cfg.name)
		}
	}
}

// The FIFO tier is a refinement, not a relabeling: on a generated
// industrial-style network it strictly tightens some path bounds while
// never loosening any.
func TestFIFOStrictlyImprovesSomewhere(t *testing.T) {
	net, err := configgen.Generate(configgen.DefaultSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	wcnc, err := Analyze(pg, tierOpts(AnalysisWCNC))
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := Analyze(pg, tierOpts(AnalysisFIFO))
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for pid, dw := range wcnc.PathDelays {
		df := fifo.PathDelays[pid]
		if df > dw {
			t.Errorf("path %v: FIFO %g looser than WCNC %g", pid, df, dw)
		}
		if df < dw {
			improved++
		}
	}
	if improved == 0 {
		t.Error("FIFO tier did not tighten a single path bound (refinement is dead)")
	}
}

// Per-flow delay terms: present for every (VL, port) incidence, equal
// to the priority-level bound outside the FIFO tier, never above it
// inside, and path bounds are exactly their sums.
func TestFlowDelaysPerTier(t *testing.T) {
	pg := figure2Graph(t)
	for _, a := range Analyses() {
		res, err := Analyze(pg, tierOpts(a))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range pg.Order {
			port := pg.Ports[id]
			for _, f := range port.Flows {
				fd, ok := res.FlowDelays[FlowPortKey{f.VL.ID, id}]
				if !ok {
					t.Fatalf("%v: missing FlowDelays entry for %s at %v", a, f.VL.ID, id)
				}
				lvl := res.Ports[id].DelayByPriority[f.VL.Priority]
				switch a {
				case AnalysisFIFO:
					if fd > lvl+1e-12 {
						t.Errorf("FIFO: flow %s at %v: %g exceeds level bound %g", f.VL.ID, id, fd, lvl)
					}
				default:
					if fd != lvl {
						t.Errorf("%v: flow %s at %v: %g != level bound %g", a, f.VL.ID, id, fd, lvl)
					}
				}
			}
		}
		for _, pid := range pg.Net.AllPaths() {
			sum := 0.0
			for _, portID := range pg.PathPorts(pid) {
				sum += res.FlowDelays[FlowPortKey{pid.VL, portID}]
			}
			if sum != res.PathDelays[pid] {
				t.Errorf("%v: path %v: flow-delay sum %g != path bound %g", a, pid, sum, res.PathDelays[pid])
			}
		}
	}
}

// Dedicated regression for the tier-aware cache signature: a warm cache
// alternating WCNC -> TFA -> WCNC serves every round bit-identical to a
// cold run of the same tier (mirroring the two-generation-slot proof;
// a stale-tier hit would surface as a cross-tier value leak).
func TestCacheTierAlternationABA(t *testing.T) {
	pg := figure2Graph(t)
	c := NewCache(DefaultOptions())
	for step, a := range []Analysis{AnalysisWCNC, AnalysisTFA, AnalysisWCNC, AnalysisFIFO, AnalysisWCNC} {
		opts := tierOpts(a)
		warm, err := AnalyzeWithCache(pg, opts, c)
		if err != nil {
			t.Fatalf("step %d (%v): %v", step, a, err)
		}
		cold, err := Analyze(pg, opts)
		if err != nil {
			t.Fatalf("step %d (%v) cold: %v", step, a, err)
		}
		if !reflect.DeepEqual(warm.PathDelays, cold.PathDelays) {
			t.Fatalf("step %d (%v): warm path delays diverge from cold (stale-tier bound served)", step, a)
		}
		if !reflect.DeepEqual(warm.FlowDelays, cold.FlowDelays) {
			t.Fatalf("step %d (%v): warm flow delays diverge from cold", step, a)
		}
		if !reflect.DeepEqual(warm.Bursts, cold.Bursts) {
			t.Fatalf("step %d (%v): warm bursts diverge from cold", step, a)
		}
	}
}

// The FIFO explanation still sums to the path bound (per-flow terms).
func TestExplainSumsPerTier(t *testing.T) {
	pg := figure2Graph(t)
	pid := afdx.PathID{VL: "v1", PathIdx: 0}
	for _, a := range Analyses() {
		ex, err := Explain(pg, pid, tierOpts(a))
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range ex.Ports {
			sum += p.DelayUs
		}
		if !almostEq(sum, ex.DelayUs) {
			t.Errorf("%v: per-port terms sum to %g, path bound %g", a, sum, ex.DelayUs)
		}
	}
}
