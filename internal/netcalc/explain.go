package netcalc

import (
	"fmt"
	"io"

	"afdx/internal/afdx"
)

// PathExplanation decomposes one path's Network Calculus bound into its
// per-port terms: the reviewable form of the holistic analysis.
type PathExplanation struct {
	Path    afdx.PathID
	DelayUs float64
	Ports   []PortTerm
}

// PortTerm is one crossed output port's contribution.
type PortTerm struct {
	Port afdx.PortID
	// DelayUs is the port's delay bound for this flow: its priority
	// level's bound, or the per-flow refinement under the FIFO tier.
	DelayUs float64
	// LatencyUs, Utilization and NumFlows describe the port.
	LatencyUs   float64
	Utilization float64
	NumFlows    int
	// BurstBits is the analyzed flow's envelope burst on arrival at the
	// port (inflated by upstream jitter).
	BurstBits float64
	// PrefixDelayUs is the accumulated bound before this port.
	PrefixDelayUs float64
}

// Explain runs the analysis and returns the per-port decomposition of
// one path's bound; the port delays sum to the path bound.
func Explain(pg *afdx.PortGraph, pid afdx.PathID, opts Options) (*PathExplanation, error) {
	res, err := Analyze(pg, opts)
	if err != nil {
		return nil, err
	}
	d, ok := res.PathDelays[pid]
	if !ok {
		return nil, fmt.Errorf("netcalc: unknown path %v", pid)
	}
	vl := pg.VL(pid.VL)
	ex := &PathExplanation{Path: pid, DelayUs: d}
	for _, portID := range pg.PathPorts(pid) {
		pr := res.Ports[portID]
		port := pg.Ports[portID]
		key := FlowPortKey{vl.ID, portID}
		ex.Ports = append(ex.Ports, PortTerm{
			Port:          portID,
			DelayUs:       res.FlowDelays[key],
			LatencyUs:     port.LatencyUs,
			Utilization:   pr.Utilization,
			NumFlows:      len(port.Flows),
			BurstBits:     res.Bursts[key],
			PrefixDelayUs: res.PrefixDelays[key],
		})
	}
	return ex, nil
}

// Render writes the explanation as text.
func (ex *PathExplanation) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "network calculus bound for %v: %.2f us (sum of per-port bounds)\n",
		ex.Path, ex.DelayUs); err != nil {
		return err
	}
	for _, p := range ex.Ports {
		if _, err := fmt.Fprintf(w,
			"  %-12v delay %8.2f us  (flows %3d, util %5.1f%%, own burst %7.0f bits, after %8.2f us)\n",
			p.Port, p.DelayUs, p.NumFlows, p.Utilization*100, p.BurstBits, p.PrefixDelayUs); err != nil {
			return err
		}
	}
	return nil
}
