package netcalc

import (
	"context"
	"strconv"

	"afdx/internal/afdx"
	"afdx/internal/obs"
)

// Cache memoizes per-port analysis outcomes across runs of the same
// engine options, keyed by a per-port dependency fingerprint. It backs
// the incremental what-if layer (internal/incremental): after a small
// configuration delta, only the ports inside the change's downstream
// cone carry a different fingerprint, so a cached run recomputes just
// that dirty frontier in PortGraph.Ranks order and serves every other
// port from the cache.
//
// # Validity and bit-identity
//
// A cached outcome is reused only when the port's *inputs* are bitwise
// identical to the run that produced it:
//
//   - the port signature — link rate, latency, and the ordered flow
//     list with each flow's full traffic contract (BAG, s_max, s_min,
//     priority), input link and its rate, and the flow's downstream
//     fan-out ports (a reroute below a port changes where its outcome
//     writes, so the fan-out is part of the signature);
//   - the per-flow upstream state — the (burst, prefix-delay) pair of
//     every flow as merged from strictly lower ranks, compared bitwise.
//
// analyzePort is a pure function of exactly those inputs, so a hit's
// stored outcome equals what a recomputation would produce, bit for
// bit; by induction over the ranks an incremental run is bit-identical
// to a cold run for *any* sequence of deltas — invalidation needs no
// delta bookkeeping at all, it falls out of input comparison, and the
// downstream cone cuts off early exactly where inflated envelopes stop
// differing.
//
// Hit/miss decisions are made sequentially before each rank fans out,
// so they (and the obs counters below) are deterministic at every
// Options.Parallel value. Results returned by cached runs share
// immutable sub-structures (PortResult maps) with the cache and with
// other results of the same session; callers must treat Results as
// read-only, which every engine consumer already does.
//
// A Cache is bound to one set of engine options (Parallel excluded —
// worker counts do not change results) and must not be shared across
// goroutines: the incremental layer drives it from one session loop.
type Cache struct {
	opts  Options
	bound bool
	ports map[afdx.PortID]*cacheEntry

	// Per-graph memo of the fingerprint rendering and the stability
	// lint (see sigMemo); shareable across caches of different options
	// because its contents depend on the graph alone.
	sig *sigMemo

	// Single-slot whole-result memo: the last (graph, options) analyzed
	// and its Result. Same graph pointer + same options ⇒ bit-identical
	// result, so analyzeWith returns lastRes without touching the port
	// entries. One oracle candidate triggers the same NC analysis up to
	// three times (the direct run plus each trajectory engine's prefix
	// run); this memo collapses the repeats to pure pointer returns.
	lastPG   *afdx.PortGraph
	lastOpts Options
	lastRes  *Result
}

// sigMemo is a single-slot per-graph memo of everything analyzeWith
// derives from the graph alone: the fingerprint rendering and whether
// the graph passed the stability lint. Keyed by pointer identity:
// BuildPortGraph output is immutable, and the memo's strong reference
// keeps the pointer from being reused for a different graph.
type sigMemo struct {
	pg     *afdx.PortGraph
	nexts  map[FlowPortKey]string
	vals   map[afdx.PortID]string
	stabPG *afdx.PortGraph // last graph that passed lint.CheckStability
}

// cacheEntry holds up to two generations of outcomes for one port,
// most recent first. The second slot makes the cache proof against the
// A/B/A alternation of candidate sweeps (each conformance shrink
// candidate mutates the same base configuration a different way): the
// sweep's recomputation fills slot 0 while slot 1 keeps the outcome
// for the base values the next candidate flips back to.
type cacheEntry struct {
	slots [2]*cacheSlot
}

type cacheSlot struct {
	sig    string
	inputs []float64
	out    *portOutcome
}

// match returns the first slot matching the port's current fingerprint,
// promoting a slot-1 hit to the front.
func (e *cacheEntry) match(sig string, rn *ncRun, id afdx.PortID) *cacheSlot {
	for si, s := range e.slots {
		if s == nil || s.sig != sig || !rn.inputsMatch(id, s.inputs) {
			continue
		}
		if si == 1 {
			e.slots[0], e.slots[1] = e.slots[1], e.slots[0]
		}
		return e.slots[0]
	}
	return nil
}

// store pushes a freshly computed outcome into slot 0, keeping the
// previous front as the fallback generation.
func (e *cacheEntry) store(s *cacheSlot) {
	e.slots[1] = e.slots[0]
	e.slots[0] = s
}

// NewCache returns an empty outcome cache for the given engine options.
func NewCache(opts Options) *Cache {
	c := &Cache{sig: &sigMemo{}}
	c.ensureOpts(opts)
	return c
}

// ShareGraphMemo makes c reuse donor's per-graph fingerprint memo, so
// a pool of caches with different engine options (the conformance
// oracle runs grouping on and off against the same candidate) renders
// each graph's fingerprints and runs its stability lint once instead
// of once per cache. Fingerprints depend only on the graph, never on
// options, so sharing cannot change any cache decision.
func (c *Cache) ShareGraphMemo(donor *Cache) { c.sig = donor.sig }

// normalizeOpts strips the fields that cannot change results: the
// worker count — and nothing else. Every other Options field, the
// Analysis tier included, stays in the cache's identity: ensureOpts
// compares whole normalized Options values, so a warm session that
// switches tiers discards every entry and can never serve a
// stale-tier bound (the A/B/A tier-alternation test pins this).
func normalizeOpts(opts Options) Options {
	opts.Parallel = 0
	return opts
}

// ensureOpts binds the cache to the run's options, discarding every
// entry when the analysis-relevant options changed (outcomes under
// different options are not comparable).
func (c *Cache) ensureOpts(opts Options) {
	n := normalizeOpts(opts)
	if !c.bound || c.opts != n {
		c.opts = n
		c.bound = true
		c.ports = make(map[afdx.PortID]*cacheEntry)
		c.lastPG, c.lastRes = nil, nil
	}
}

// AnalyzeWithCache is AnalyzeWithCacheCtx without observability.
func AnalyzeWithCache(pg *afdx.PortGraph, opts Options, c *Cache) (*Result, error) {
	return AnalyzeWithCacheCtx(context.Background(), pg, opts, c)
}

// AnalyzeWithCacheCtx runs the WCNC analysis, serving unchanged ports
// from c and recomputing only the dirty frontier (see Cache). A nil
// cache degenerates to AnalyzeCtx. The result is bit-identical to a
// cold AnalyzeCtx run on the same graph and options — the incremental
// determinism contract checked by the conformance oracle's
// incremental-parity invariant.
func AnalyzeWithCacheCtx(ctx context.Context, pg *afdx.PortGraph, opts Options, c *Cache) (*Result, error) {
	return analyzeWith(ctx, pg, opts, c)
}

// incrMetrics counts cache traffic of one incremental run. All three
// are Deterministic: reuse decisions are sequential input comparisons,
// identical at every worker count.
type incrMetrics struct {
	hits          *obs.Counter
	recomputes    *obs.Counter
	invalidations *obs.Counter
}

func newIncrMetrics(reg *obs.Registry) incrMetrics {
	if reg == nil {
		return incrMetrics{}
	}
	return incrMetrics{
		hits: reg.Counter("netcalc.incr_port_hits", obs.Deterministic,
			"port outcomes served from the incremental cache"),
		recomputes: reg.Counter("netcalc.incr_port_recomputes", obs.Deterministic,
			"ports recomputed by incremental runs (cold or invalidated)"),
		invalidations: reg.Counter("netcalc.incr_port_invalidations", obs.Deterministic,
			"cached port outcomes invalidated by a changed fingerprint"),
	}
}

// portInputs collects the upstream state of a port's flows — the
// (burst, prefix-delay) pairs merged from lower ranks, in the port's
// canonical flow order. The second return is false when a pair is
// missing (source seeding or upstream merge incomplete), which forces
// a recomputation so the engine's own error reporting runs.
func (rn *ncRun) portInputs(id afdx.PortID) ([]float64, bool) {
	port := rn.pg.Ports[id]
	in := make([]float64, 0, 2*len(port.Flows))
	for _, f := range port.Flows {
		key := FlowPortKey{f.VL.ID, id}
		b, ok := rn.res.Bursts[key]
		p, ok2 := rn.res.PrefixDelays[key]
		if !ok || !ok2 {
			return nil, false
		}
		in = append(in, b, p)
	}
	return in, true
}

// inputsMatch reports whether the port's current upstream state equals
// the stored inputs of a cache entry, bitwise — portInputs followed by
// a slice compare, without materialising the slice (the hit path runs
// for every port of every warm round; not allocating there matters).
func (rn *ncRun) inputsMatch(id afdx.PortID, want []float64) bool {
	port := rn.pg.Ports[id]
	if len(want) != 2*len(port.Flows) {
		return false
	}
	for i, f := range port.Flows {
		key := FlowPortKey{f.VL.ID, id}
		b, ok := rn.res.Bursts[key]
		if !ok || b != want[2*i] {
			return false
		}
		p, ok := rn.res.PrefixDelays[key]
		if !ok || p != want[2*i+1] {
			return false
		}
	}
	return true
}

// portSignature renders the analysis-relevant fingerprint of one port:
// everything analyzePort reads except the upstream (burst, prefix)
// state, which portInputs compares separately. nexts carries each
// flow's encoded downstream fan-out (flowNexts). Floats render in the
// exact binary mantissa/exponent form (-0 and 0 distinct): signature
// comparisons must be bitwise, not merely value-close. buf is a
// reusable scratch buffer (the render runs for every port of every
// fresh graph, so it appends rather than allocating per field).
func portSignature(pg *afdx.PortGraph, id afdx.PortID, nexts map[FlowPortKey]string, buf []byte) (string, []byte) {
	port := pg.Ports[id]
	b := buf[:0]
	b = strconv.AppendFloat(b, port.RateBitsPerUs, 'b', -1, 64)
	b = append(b, ';')
	b = strconv.AppendFloat(b, port.LatencyUs, 'b', -1, 64)
	for _, f := range port.Flows {
		b = append(b, ';')
		b = append(b, f.VL.ID...)
		b = append(b, ',')
		b = append(b, f.Prev...)
		b = append(b, ',')
		b = strconv.AppendFloat(b, f.VL.BAGMs, 'b', -1, 64)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(f.VL.SMaxBytes), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(f.VL.SMinBytes), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(f.VL.Priority), 10)
		b = append(b, ',')
		// The grouping refinement shapes each serialization group by its
		// input link's rate; a changed upstream link speed must
		// invalidate even when the flow list is unchanged.
		inRate := 0.0
		if f.Prev != "" {
			if in := pg.Ports[afdx.PortID{From: f.Prev, To: id.From}]; in != nil {
				inRate = in.RateBitsPerUs
			}
		}
		b = strconv.AppendFloat(b, inRate, 'b', -1, 64)
		b = append(b, ',')
		b = append(b, nexts[FlowPortKey{f.VL.ID, id}]...)
	}
	return string(b), b
}

// flowNexts encodes, for every (VL, port) incidence, the ports
// immediately downstream of the port on the VL's paths — the targets
// of the outcome's envelope writes (cf. nextPorts), in deterministic
// path-scan order.
func flowNexts(pg *afdx.PortGraph) map[FlowPortKey]string {
	incidences := 0
	for _, port := range pg.Ports {
		incidences += len(port.Flows)
	}
	lists := make(map[FlowPortKey][]afdx.PortID, incidences)
	for _, v := range pg.Net.VLs {
		for pi := range v.Paths {
			seq := pg.PathPorts(afdx.PathID{VL: v.ID, PathIdx: pi})
			for k := 0; k+1 < len(seq); k++ {
				key := FlowPortKey{v.ID, seq[k]}
				cur := lists[key]
				// Fan-out lists are tiny (one entry per downstream branch
				// of a multicast tree): a linear dedup scan beats a set.
				dup := false
				for _, id := range cur {
					if id == seq[k+1] {
						dup = true
						break
					}
				}
				if !dup {
					lists[key] = append(cur, seq[k+1])
				}
			}
		}
	}
	out := make(map[FlowPortKey]string, len(lists))
	var b []byte
	for key, ids := range lists {
		b = b[:0]
		for i, id := range ids {
			if i > 0 {
				b = append(b, '|')
			}
			b = append(b, id.From...)
			b = append(b, "->"...)
			b = append(b, id.To...)
		}
		out[key] = string(b)
	}
	return out
}

// PortSignatures returns the fingerprint of every port of the graph.
// The trajectory engine's path-level cache consumes this: a cached
// path stays valid only while the signature of every crossed port is
// unchanged (see trajectory.Cache).
func PortSignatures(pg *afdx.PortGraph) map[afdx.PortID]string {
	nexts := flowNexts(pg)
	out := make(map[afdx.PortID]string, len(pg.Ports))
	var buf []byte
	for id := range pg.Ports {
		out[id], buf = portSignature(pg, id, nexts, buf)
	}
	return out
}

// signatures returns the per-port fingerprints and per-flow fan-out
// encoding of pg, memoized per graph. Signatures depend only on the
// graph, never on options, so the memo survives ensureOpts rebinding —
// and incremental consumers analyze each graph several times in a row
// (the direct NC run, then the trajectory engines' prefix runs), where
// the fingerprint rendering, not the analysis, dominates a warm run.
func (c *Cache) signatures(pg *afdx.PortGraph) (map[afdx.PortID]string, map[FlowPortKey]string) {
	m := c.sig
	if m.pg != pg {
		nexts := flowNexts(pg)
		vals := make(map[afdx.PortID]string, len(pg.Ports))
		var buf []byte
		for id := range pg.Ports {
			vals[id], buf = portSignature(pg, id, nexts, buf)
		}
		m.pg, m.nexts, m.vals = pg, nexts, vals
	}
	return m.vals, m.nexts
}

// SignaturesFor is PortSignatures through the cache's per-graph memo.
// The trajectory cache reads port signatures through its nested prefix
// cache so one rendering serves both engines; callers must treat the
// returned map as read-only.
func (c *Cache) SignaturesFor(pg *afdx.PortGraph) map[afdx.PortID]string {
	sigs, _ := c.signatures(pg)
	return sigs
}
