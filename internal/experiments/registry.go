package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"afdx/internal/netcalc"
	"afdx/internal/report"
	"afdx/internal/trajectory"
)

// Config parameterises one experiment run.
type Config struct {
	// Seed selects the synthetic industrial configuration (experiments
	// on the fixed Figure 2 sample ignore it).
	Seed int64
	// Parallel bounds the analysis engines' worker pools (<= 0 selects
	// GOMAXPROCS, 1 is strictly sequential). It affects wall time only:
	// the engines' determinism contract makes every worker count
	// produce bit-identical tables.
	Parallel int
	// Analysis selects the Network Calculus tier every experiment's NC
	// runs use (zero value = WCNC, the paper's default; the "tiers"
	// experiment always sweeps the full ladder regardless).
	Analysis netcalc.Analysis
	// Ctx, when non-nil, carries the observability registry and tracer
	// (see internal/obs) into the engine runs. Nil means background:
	// no metrics, no spans, same results.
	Ctx context.Context
}

// context returns the run's observability context, defaulting to
// Background.
func (cfg Config) context() context.Context {
	if cfg.Ctx != nil {
		return cfg.Ctx
	}
	return context.Background()
}

// engineOptions returns the paper-default engine options with the
// run's worker-pool bound applied.
func (cfg Config) engineOptions() (netcalc.Options, trajectory.Options) {
	ncOpts, trOpts := netcalc.DefaultOptions(), trajectory.DefaultOptions()
	ncOpts.Parallel, trOpts.Parallel = cfg.Parallel, cfg.Parallel
	ncOpts.Analysis = cfg.Analysis
	return ncOpts, trOpts
}

// Experiment is one regenerable table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, cfg Config) error
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig3", "Figure 3: trajectory worst case for v1 (no grouping)", runFig3},
		{"fig4", "Figure 4: enhanced trajectory worst case for v1 (grouping)", runFig4},
		{"table1", "Table I: end-to-end delay bound comparison on the industrial network", runTableI},
		{"fig5", "Figure 5: mean Trajectory benefit per BAG value", runFig5},
		{"fig6", "Figure 6: share of paths where WCNC beats Trajectory, per s_max", runFig6},
		{"fig7", "Figure 7: effect of s_max(v1) on the end-to-end bounds", runFig7},
		{"fig8", "Figure 8: effect of BAG(v1) on the end-to-end bounds", runFig8},
		{"fig9", "Figure 9: WCNC - Trajectory difference over (BAG, s_max)", runFig9},
		{"simcheck", "Soundness: analytic bounds vs simulated delays", runSimCheck},
		{"ablation", "Ablation: every design knob on the sample configuration", runAblation},
		{"tiers", "Tightness vs cost: the NC analysis-tier ladder on the industrial network", runTiers},
		{"pessimism", "Pessimism: achievable worst cases (offset search) vs bounds", runPessimism},
		{"priority", "Extension: two-level static-priority bounds vs FIFO", runPriority},
		{"robustness", "Robustness: Table I statistics across generator seeds", runRobustness},
		{"deadlines", "Certification: BAG-as-deadline verdicts per method", runDeadlines},
		{"scaling", "Scaling: analysis cost and outcome vs VL count", runScaling},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func runFig3(w io.Writer, _ Config) error {
	ung, grp, nc, err := ScenarioBounds()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Trajectory bound for v1 on the Figure 2 configuration, WITHOUT the\n")
	fmt.Fprintf(w, "grouping technique (the paper's Figure 3 scenario, in which v3 and v4\n")
	fmt.Fprintf(w, "arrive at S3 simultaneously although they share the S2->S3 link):\n\n")
	fmt.Fprintf(w, "  trajectory (no grouping): %s us\n", report.Us(ung))
	fmt.Fprintf(w, "  [for reference: grouped %s us, network calculus %s us]\n",
		report.Us(grp), report.Us(nc))
	return nil
}

func runFig4(w io.Writer, _ Config) error {
	ung, grp, nc, err := ScenarioBounds()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Enhanced trajectory bound for v1 (the paper's Figure 4 scenario: the\n")
	fmt.Fprintf(w, "frames of v3 and v4 arrive serialized on the shared S2->S3 link):\n\n")
	fmt.Fprintf(w, "  trajectory (grouping):    %s us\n", report.Us(grp))
	fmt.Fprintf(w, "  saving vs Figure 3:       %s us (one 500B frame = 40 us)\n", report.Us(ung-grp))
	fmt.Fprintf(w, "  [network calculus:        %s us]\n", report.Us(nc))
	return nil
}

func runTableI(w io.Writer, cfg Config) error {
	r, err := Industrial(cfg)
	if err != nil {
		return err
	}
	s := r.Comparison.Summary()
	p := PaperTableIReference()
	st := r.Net.ComputeStats()
	fmt.Fprintf(w, "Synthetic industrial configuration (seed %d): %d VLs, %d paths,\n",
		cfg.Seed, st.NumVLs, st.NumPaths)
	fmt.Fprintf(w, "%d end systems, %d switches (paper: ~1000 VLs, >6000 paths over two\nredundant sub-networks, >100 end systems, 2x8 switches).\n\n",
		st.NumEndSystems, st.NumSwitches)
	if err := report.Table(w,
		[]string{"Benefit", "Trajectory/WCNC", "Best/WCNC", "paper Traj/WCNC", "paper Best/WCNC"},
		[][]string{
			{"Mean", report.Pct(s.MeanBenefitPct), report.Pct(s.MeanBestPct),
				report.Pct(p.MeanBenefitPct), report.Pct(p.MeanBestPct)},
			{"Maximum", report.Pct(s.MaxBenefitPct), report.Pct(s.MaxBestPct),
				report.Pct(p.MaxBenefitPct), report.Pct(p.MaxBestPct)},
			{"Minimum", report.Pct(s.MinBenefitPct), report.Pct(s.MinBestPct),
				report.Pct(p.MinBenefitPct), report.Pct(p.MinBestPct)},
		}); err != nil {
		return err
	}
	fmt.Fprintf(w, "Trajectory tighter on %.1f%% of paths (paper: roughly %.0f%%).\n",
		s.TrajectoryWinFrac*100, p.TrajectoryWinFracApprox*100)
	return nil
}

func runFig5(w io.Writer, cfg Config) error {
	r, err := Industrial(cfg)
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, b := range r.Comparison.ByBAG() {
		rows = append(rows, []string{
			fmt.Sprintf("%g", b.BAGMs), report.Int(b.NumPaths), report.Pct(b.MeanBenefitPct),
		})
	}
	fmt.Fprintln(w, "Mean benefit of the Trajectory approach over Network Calculus, per BAG")
	fmt.Fprintln(w, "(paper Figure 5; the benefit globally increases as the BAG decreases):")
	fmt.Fprintln(w)
	return report.Table(w, []string{"BAG (ms)", "paths", "mean benefit"}, rows)
}

func runFig6(w io.Writer, cfg Config) error {
	r, err := Industrial(cfg)
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, s := range r.Comparison.BySmax() {
		rows = append(rows, []string{
			report.Int(s.SMaxBytes), report.Int(s.NumPaths),
			report.Pct(s.NCWinsPct), report.Pct(s.MeanBenefit),
		})
	}
	fmt.Fprintln(w, "Share of VL paths for which the WCNC bound is tighter than the")
	fmt.Fprintln(w, "Trajectory bound, per s_max (paper Figure 6; the share grows as s_max")
	fmt.Fprintln(w, "decreases and vanishes for large frames):")
	fmt.Fprintln(w)
	return report.Table(w, []string{"s_max (B)", "paths", "WCNC wins", "mean benefit"}, rows)
}

func runFig7(w io.Writer, _ Config) error {
	pts, err := SweepSmax()
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, p := range pts {
		rows = append(rows, []string{report.Int(p.SMaxBytes), report.Us(p.TrajUs), report.Us(p.NCUs)})
	}
	fmt.Fprintln(w, "End-to-end delay bounds of v1 vs s_max(v1) on the Figure 2 sample")
	fmt.Fprintln(w, "configuration (paper Figure 7; the curves cross near the other VLs'")
	fmt.Fprintf(w, "frame size; measured crossover: WCNC tighter up to s_max = %d B):\n\n",
		CrossoverSmax(pts))
	return report.Table(w, []string{"s_max (B)", "Trajectory (us)", "WCNC (us)"}, rows)
}

func runFig8(w io.Writer, _ Config) error {
	pts, err := SweepBAG()
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, p := range pts {
		rows = append(rows, []string{fmt.Sprintf("%g", p.BAGMs), report.Us(p.TrajUs), report.Us(p.NCUs)})
	}
	fmt.Fprintln(w, "End-to-end delay bounds of v1 vs BAG(v1) (paper Figure 8; the")
	fmt.Fprintln(w, "Trajectory bound is flat, the WCNC bound grows as the BAG shrinks):")
	fmt.Fprintln(w)
	return report.Table(w, []string{"BAG (ms)", "Trajectory (us)", "WCNC (us)"}, rows)
}

func runFig9(w io.Writer, _ Config) error {
	cells, err := Surface()
	if err != nil {
		return err
	}
	// Pivot into a BAG x s_max matrix of differences.
	bags := []float64{}
	smaxs := []int{}
	seenB := map[float64]bool{}
	seenS := map[int]bool{}
	val := map[[2]float64]float64{}
	for _, c := range cells {
		if !seenB[c.BAGMs] {
			seenB[c.BAGMs] = true
			bags = append(bags, c.BAGMs)
		}
		if !seenS[c.SMaxBytes] {
			seenS[c.SMaxBytes] = true
			smaxs = append(smaxs, c.SMaxBytes)
		}
		val[[2]float64{c.BAGMs, float64(c.SMaxBytes)}] = c.DifferenceUs
	}
	sort.Float64s(bags)
	sort.Ints(smaxs)
	headers := []string{"BAG\\s_max (B)"}
	for _, s := range smaxs {
		headers = append(headers, report.Int(s))
	}
	rows := [][]string{}
	for _, b := range bags {
		row := []string{fmt.Sprintf("%g ms", b)}
		for _, s := range smaxs {
			row = append(row, report.Us(val[[2]float64{b, float64(s)}]))
		}
		rows = append(rows, row)
	}
	fmt.Fprintln(w, "WCNC minus Trajectory bound for v1 over the (BAG, s_max) plane, in us")
	fmt.Fprintln(w, "(paper Figure 9; positive: Trajectory tighter, negative: WCNC tighter):")
	fmt.Fprintln(w)
	return report.Table(w, headers, rows)
}
