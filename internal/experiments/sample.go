// Package experiments regenerates every table and figure of the paper's
// evaluation: the Figure 3/4 trajectory scenarios, the Table I industrial
// comparison, the Figure 5/6 aggregate views, and the Figure 7/8/9
// parametric sweeps on the sample configuration. Each experiment has a
// typed Run function (used by tests and benchmarks) and a registry entry
// that renders the paper's rows/series to a writer (used by the
// afdx-experiments command).
package experiments

import (
	"fmt"

	"afdx/internal/afdx"
	"afdx/internal/netcalc"
	"afdx/internal/trajectory"
)

// V1Path identifies the path under study in the parametric sweeps.
var V1Path = afdx.PathID{VL: "v1", PathIdx: 0}

// SampleBounds computes the Network Calculus and Trajectory end-to-end
// bounds of VL v1 on the paper's Figure 2 sample configuration, with
// v1's contract overridden to the given s_max (bytes) and BAG (ms) —
// the primitive behind Figures 7, 8 and 9. Validation is relaxed, as the
// paper sweeps values outside the ARINC 664 sets.
func SampleBounds(smaxBytes int, bagMs float64) (ncUs, trajUs float64, err error) {
	n := afdx.Figure2Config()
	n.VLs[0].SMaxBytes = smaxBytes
	n.VLs[0].SMinBytes = smaxBytes
	n.VLs[0].BAGMs = bagMs
	pg, err := afdx.BuildPortGraph(n, afdx.Relaxed)
	if err != nil {
		return 0, 0, err
	}
	nc, err := netcalc.Analyze(pg, netcalc.DefaultOptions())
	if err != nil {
		return 0, 0, err
	}
	tr, err := trajectory.Analyze(pg, trajectory.DefaultOptions())
	if err != nil {
		return 0, 0, err
	}
	return nc.PathDelays[V1Path], tr.PathDelays[V1Path], nil
}

// SweepPoint is one point of the Figure 7 or Figure 8 series.
type SweepPoint struct {
	SMaxBytes int
	BAGMs     float64
	NCUs      float64
	TrajUs    float64
}

// SweepSmax reproduces Figure 7: v1's bounds for s_max from 100 B to
// 1500 B (step 100 B), BAG fixed at 4 ms, every other VL at 500 B/4 ms.
func SweepSmax() ([]SweepPoint, error) {
	var pts []SweepPoint
	for s := 100; s <= 1500; s += 100 {
		nc, tr, err := SampleBounds(s, 4)
		if err != nil {
			return nil, fmt.Errorf("experiments: s_max %dB: %w", s, err)
		}
		pts = append(pts, SweepPoint{SMaxBytes: s, BAGMs: 4, NCUs: nc, TrajUs: tr})
	}
	return pts, nil
}

// SweepBAG reproduces Figure 8: v1's bounds for BAG over the harmonic
// values 1..128 ms, s_max fixed at 500 B.
func SweepBAG() ([]SweepPoint, error) {
	var pts []SweepPoint
	for bag := 1.0; bag <= 128; bag *= 2 {
		nc, tr, err := SampleBounds(500, bag)
		if err != nil {
			return nil, fmt.Errorf("experiments: BAG %gms: %w", bag, err)
		}
		pts = append(pts, SweepPoint{SMaxBytes: 500, BAGMs: bag, NCUs: nc, TrajUs: tr})
	}
	return pts, nil
}

// SurfaceCell is one cell of Figure 9: the signed difference between the
// Network Calculus and Trajectory bounds (positive: Trajectory tighter).
type SurfaceCell struct {
	SMaxBytes    int
	BAGMs        float64
	DifferenceUs float64
}

// Surface reproduces Figure 9: the (BAG, s_max) plane of bound
// differences for v1.
func Surface() ([]SurfaceCell, error) {
	var cells []SurfaceCell
	for bag := 1.0; bag <= 128; bag *= 2 {
		for s := 100; s <= 1500; s += 100 {
			nc, tr, err := SampleBounds(s, bag)
			if err != nil {
				return nil, fmt.Errorf("experiments: (%gms, %dB): %w", bag, s, err)
			}
			cells = append(cells, SurfaceCell{SMaxBytes: s, BAGMs: bag, DifferenceUs: nc - tr})
		}
	}
	return cells, nil
}

// ScenarioBounds reproduces Figures 3 and 4: the trajectory bound of v1
// on the untouched Figure 2 configuration without grouping (the
// impossible simultaneous-arrival scenario of Figure 3) and with
// grouping (the serialized scenario of Figure 4), plus the Network
// Calculus reference.
func ScenarioBounds() (ungroupedUs, groupedUs, ncUs float64, err error) {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		return 0, 0, 0, err
	}
	ung, err := trajectory.Analyze(pg, trajectory.Options{Grouping: false})
	if err != nil {
		return 0, 0, 0, err
	}
	grp, err := trajectory.Analyze(pg, trajectory.Options{Grouping: true})
	if err != nil {
		return 0, 0, 0, err
	}
	nc, err := netcalc.Analyze(pg, netcalc.DefaultOptions())
	if err != nil {
		return 0, 0, 0, err
	}
	return ung.PathDelays[V1Path], grp.PathDelays[V1Path], nc.PathDelays[V1Path], nil
}

// CrossoverSmax locates the s_max value (to the given step, in bytes) at
// which the two methods' bounds cross on the Figure 7 sweep, i.e. the
// largest swept s_max for which Network Calculus is strictly tighter.
// It returns 0 when Network Calculus never wins on the sweep.
func CrossoverSmax(pts []SweepPoint) int {
	cross := 0
	for _, p := range pts {
		if p.NCUs < p.TrajUs {
			cross = p.SMaxBytes
		}
	}
	return cross
}
