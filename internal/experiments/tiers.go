package experiments

import (
	"fmt"
	"io"
	"time"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
	"afdx/internal/netcalc"
	"afdx/internal/report"
)

// TierRow measures one Network Calculus analysis tier on the seeded
// industrial configuration: wall time and tightness relative to the
// WCNC default.
type TierRow struct {
	Tier       string
	AnalyzeSec float64
	// MeanVsWCNCPct and MaxVsWCNCPct summarise (tier - WCNC) / WCNC
	// over every path, in percent (positive = looser than WCNC).
	MeanVsWCNCPct float64
	MaxVsWCNCPct  float64
	// TighterPaths / LooserPaths count paths where the tier's bound is
	// strictly below / above the WCNC bound.
	TighterPaths int
	LooserPaths  int
}

// Tiers runs the full analysis-tier ladder on the industrial
// configuration and reports each tier's cost and tightness vs WCNC.
func Tiers(cfg Config) ([]TierRow, error) {
	net, err := configgen.Generate(configgen.DefaultSpec(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: tiers: %w", err)
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		return nil, err
	}
	ncOpts, _ := cfg.engineOptions()
	results := map[netcalc.Analysis]*netcalc.Result{}
	secs := map[netcalc.Analysis]float64{}
	for _, tier := range netcalc.Analyses() {
		o := ncOpts
		o.Analysis = tier
		start := time.Now()
		res, err := netcalc.AnalyzeCtx(cfg.context(), pg, o)
		if err != nil {
			return nil, fmt.Errorf("experiments: tiers: %v: %w", tier, err)
		}
		secs[tier] = time.Since(start).Seconds()
		results[tier] = res
	}

	wcnc := results[netcalc.AnalysisWCNC]
	pids := make([]afdx.PathID, 0, len(wcnc.PathDelays))
	for pid := range wcnc.PathDelays {
		pids = append(pids, pid)
	}
	afdx.SortPathIDs(pids)
	rows := make([]TierRow, 0, len(results))
	for _, tier := range netcalc.Analyses() {
		res := results[tier]
		row := TierRow{Tier: tier.String(), AnalyzeSec: secs[tier]}
		n := 0
		for _, pid := range pids {
			base := wcnc.PathDelays[pid]
			d := res.PathDelays[pid]
			rel := (d - base) / base * 100
			row.MeanVsWCNCPct += rel
			if rel > row.MaxVsWCNCPct {
				row.MaxVsWCNCPct = rel
			}
			if d < base {
				row.TighterPaths++
			} else if d > base {
				row.LooserPaths++
			}
			n++
		}
		if n > 0 {
			row.MeanVsWCNCPct /= float64(n)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runTiers(w io.Writer, cfg Config) error {
	rows, err := Tiers(cfg)
	if err != nil {
		return err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Tier,
			fmt.Sprintf("%.2f s", r.AnalyzeSec),
			report.Pct(r.MeanVsWCNCPct),
			report.Pct(r.MaxVsWCNCPct),
			report.Int(r.TighterPaths),
			report.Int(r.LooserPaths),
		})
	}
	fmt.Fprintln(w, "The Network Calculus tightness/cost ladder on the industrial")
	fmt.Fprintln(w, "configuration: each selectable tier's analysis wall time and its")
	fmt.Fprintln(w, "bound relative to the WCNC default (positive = looser). TFA drops")
	fmt.Fprintln(w, "the serialization refinements for speed; FIFO adds a per-flow")
	fmt.Fprintln(w, "residual-service pass for tightness. All tiers are sound, so the")
	fmt.Fprintln(w, "ladder trades wall time against pessimism only:")
	fmt.Fprintln(w)
	return report.Table(w,
		[]string{"tier", "analyze time", "mean vs WCNC", "max vs WCNC", "tighter paths", "looser paths"}, out)
}
