package experiments

import (
	"fmt"
	"io"
	"sort"

	"afdx/internal/afdx"
	"afdx/internal/exact"
	"afdx/internal/netcalc"
	"afdx/internal/report"
	"afdx/internal/trajectory"
)

// AblationRow is one analysis variant evaluated on the Figure 2
// configuration (bound for v1, plus the small-frame variant that
// stresses the trajectory transition term).
type AblationRow struct {
	Name       string
	V1At500BUs float64
	V1At100BUs float64
}

// Ablations evaluates the design knobs DESIGN.md calls out, on the
// sample configuration: grouping, transition-term placement, the
// shared-transition refinement, staircase envelopes, and envelope
// propagation by deconvolution.
func Ablations() ([]AblationRow, error) {
	type variant struct {
		name string
		run  func(pg *afdx.PortGraph) (float64, error)
	}
	v1 := V1Path
	trajRun := func(opts trajectory.Options) func(pg *afdx.PortGraph) (float64, error) {
		return func(pg *afdx.PortGraph) (float64, error) {
			r, err := trajectory.Analyze(pg, opts)
			if err != nil {
				return 0, err
			}
			return r.PathDelays[v1], nil
		}
	}
	ncRun := func(opts netcalc.Options) func(pg *afdx.PortGraph) (float64, error) {
		return func(pg *afdx.PortGraph) (float64, error) {
			r, err := netcalc.Analyze(pg, opts)
			if err != nil {
				return 0, err
			}
			return r.PathDelays[v1], nil
		}
	}
	variants := []variant{
		{"NC, no grouping", ncRun(netcalc.Options{})},
		{"NC, grouping (paper WCNC)", ncRun(netcalc.Options{Grouping: true})},
		{"NC, grouping + staircase envelopes", ncRun(netcalc.Options{Grouping: true, StairSteps: 8})},
		{"NC, grouping + deconvolution propagation", ncRun(netcalc.Options{Grouping: true, Deconvolution: true})},
		{"Trajectory, no grouping (paper Fig 3)", trajRun(trajectory.Options{})},
		{"Trajectory, grouping (paper Fig 4)", trajRun(trajectory.Options{Grouping: true})},
		{"Trajectory, grouping, delta at departing node", trajRun(trajectory.Options{Grouping: true, DeltaAtFirstNode: true})},
		{"Trajectory, grouping, shared-transition refinement", trajRun(trajectory.Options{Grouping: true, SharedTransition: true})},
		{"Trajectory, grouping, recursive prefixes", trajRun(trajectory.Options{Grouping: true, PrefixMode: trajectory.PrefixTrajectory})},
	}

	build := func(smax int) (*afdx.PortGraph, error) {
		n := afdx.Figure2Config()
		n.VLs[0].SMaxBytes = smax
		n.VLs[0].SMinBytes = smax
		return afdx.BuildPortGraph(n, afdx.Relaxed)
	}
	pg500, err := build(500)
	if err != nil {
		return nil, err
	}
	pg100, err := build(100)
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, 0, len(variants))
	for _, v := range variants {
		at500, err := v.run(pg500)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %q at 500B: %w", v.name, err)
		}
		at100, err := v.run(pg100)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %q at 100B: %w", v.name, err)
		}
		rows = append(rows, AblationRow{Name: v.name, V1At500BUs: at500, V1At100BUs: at100})
	}
	return rows, nil
}

func runAblation(w io.Writer, _ Config) error {
	rows, err := Ablations()
	if err != nil {
		return err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Name, report.Us(r.V1At500BUs), report.Us(r.V1At100BUs)})
	}
	fmt.Fprintln(w, "Bound for v1 on the Figure 2 configuration under each design knob")
	fmt.Fprintln(w, "(500B: the paper's nominal case; 100B: the small-frame regime where")
	fmt.Fprintln(w, "the published trajectory approach loses to Network Calculus):")
	fmt.Fprintln(w)
	return report.Table(w, []string{"variant", "v1 @ 500B (us)", "v1 @ 100B (us)"}, out)
}

// PessimismRow compares, for one path, the worst achievable delay found
// by offset search with the analytic bounds.
type PessimismRow struct {
	Path         afdx.PathID
	AchievableUs float64
	NCUs         float64
	TrajUs       float64
	// Pessimism columns: bound / achievable (1.0 = tight).
	NCRatio, TrajRatio float64
}

// Pessimism runs the exact offset search on the Figure 2 configuration
// and relates the achievable worst cases to both analytic bounds — the
// ECRTS 2006 companion methodology.
func Pessimism() ([]PessimismRow, error) {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		return nil, err
	}
	nc, err := netcalc.Analyze(pg, netcalc.DefaultOptions())
	if err != nil {
		return nil, err
	}
	tr, err := trajectory.Analyze(pg, trajectory.DefaultOptions())
	if err != nil {
		return nil, err
	}
	opts := exact.DefaultOptions()
	opts.GridUs = 500
	opts.Refine = 12
	found, err := exact.Search(pg, opts)
	if err != nil {
		return nil, err
	}
	var rows []PessimismRow
	for _, pid := range pg.Net.AllPaths() {
		a := found.Delays[pid]
		rows = append(rows, PessimismRow{
			Path:         pid,
			AchievableUs: a,
			NCUs:         nc.PathDelays[pid],
			TrajUs:       tr.PathDelays[pid],
			NCRatio:      nc.PathDelays[pid] / a,
			TrajRatio:    tr.PathDelays[pid] / a,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Path.String() < rows[j].Path.String() })
	return rows, nil
}

func runPessimism(w io.Writer, _ Config) error {
	rows, err := Pessimism()
	if err != nil {
		return err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Path.String(), report.Us(r.AchievableUs), report.Us(r.NCUs), report.Us(r.TrajUs),
			fmt.Sprintf("%.3f", r.NCRatio), fmt.Sprintf("%.3f", r.TrajRatio),
		})
	}
	fmt.Fprintln(w, "Worst achievable delay (offset search) vs the analytic bounds on the")
	fmt.Fprintln(w, "Figure 2 configuration. Ratios quantify each method's pessimism; a")
	fmt.Fprintln(w, "trajectory ratio below 1.0 exhibits the published method's optimism:")
	fmt.Fprintln(w)
	return report.Table(w,
		[]string{"path", "achievable (us)", "WCNC (us)", "Trajectory (us)", "WCNC ratio", "Traj ratio"},
		out)
}
