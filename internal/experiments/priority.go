package experiments

import (
	"fmt"
	"io"

	"afdx/internal/afdx"
	"afdx/internal/netcalc"
	"afdx/internal/report"
	"afdx/internal/sim"
)

// PriorityRow compares, for one path of the two-level sample
// configuration, the static-priority Network Calculus bound with the
// flat FIFO bound and the worst simulated delay.
type PriorityRow struct {
	Path     afdx.PathID
	Priority int
	SPUs     float64
	FIFOUs   float64
	SimMaxUs float64
}

// PriorityStudy analyses the Figure 2 configuration with v3/v4 demoted
// to the low priority level: the ARINC 664 two-level QoS extension
// studied in the group's companion papers (Ridouard et al.). The
// Trajectory engine is FIFO-only (like the paper's), so the comparison
// is Network Calculus SP vs Network Calculus FIFO, validated by
// simulation.
func PriorityStudy() ([]PriorityRow, error) {
	sp := afdx.Figure2Config()
	sp.VLs[2].Priority = 1
	sp.VLs[3].Priority = 1
	pgSP, err := afdx.BuildPortGraph(sp, afdx.Strict)
	if err != nil {
		return nil, err
	}
	resSP, err := netcalc.Analyze(pgSP, netcalc.DefaultOptions())
	if err != nil {
		return nil, err
	}
	pgFIFO, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		return nil, err
	}
	resFIFO, err := netcalc.Analyze(pgFIFO, netcalc.DefaultOptions())
	if err != nil {
		return nil, err
	}
	worst := map[afdx.PathID]float64{}
	for seed := int64(0); seed < 40; seed++ {
		cfg := sim.DefaultConfig(seed)
		cfg.DurationUs = 64_000
		sr, err := sim.Run(pgSP, cfg)
		if err != nil {
			return nil, err
		}
		for pid, st := range sr.Paths {
			if st.MaxDelayUs > worst[pid] {
				worst[pid] = st.MaxDelayUs
			}
		}
	}
	var rows []PriorityRow
	for _, pid := range sp.AllPaths() {
		rows = append(rows, PriorityRow{
			Path:     pid,
			Priority: sp.VL(pid.VL).Priority,
			SPUs:     resSP.PathDelays[pid],
			FIFOUs:   resFIFO.PathDelays[pid],
			SimMaxUs: worst[pid],
		})
	}
	return rows, nil
}

func runPriority(w io.Writer, _ Config) error {
	rows, err := PriorityStudy()
	if err != nil {
		return err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		lvl := "high"
		if r.Priority > 0 {
			lvl = "low"
		}
		out = append(out, []string{
			r.Path.String(), lvl,
			report.Us(r.SPUs), report.Us(r.FIFOUs), report.Us(r.SimMaxUs),
		})
	}
	fmt.Fprintln(w, "Static-priority extension (beyond the paper, per the companion QoS")
	fmt.Fprintln(w, "papers): Figure 2 with v3/v4 demoted to the low level. High-priority")
	fmt.Fprintln(w, "paths tighten, low-priority paths pay for it; simulation validates:")
	fmt.Fprintln(w)
	return report.Table(w,
		[]string{"path", "level", "NC static-priority (us)", "NC FIFO (us)", "sim max (us)"},
		out)
}
