package experiments

import (
	"fmt"
	"io"

	"afdx/internal/afdx"
	"afdx/internal/netcalc"
	"afdx/internal/report"
	"afdx/internal/sim"
	"afdx/internal/stats"
	"afdx/internal/trajectory"
)

// SimCheckResult summarises one soundness run: the largest simulated
// delay per path against the analytic bounds.
type SimCheckResult struct {
	NumPaths   int
	Violations int // simulated delay above NC or ungrouped trajectory
	// TightnessNC collects (simulated max / NC bound) per path, a
	// measure of the bound's pessimism (1.0 = tight).
	TightnessNC stats.Summary
	// TightnessTraj is the same against the grouped trajectory bound.
	TightnessTraj stats.Summary
}

// SimCheck simulates the Figure 2 configuration under many random offset
// assignments and checks that no observed delay exceeds the sound
// analytic bounds (Network Calculus and ungrouped Trajectory).
func SimCheck(seeds int) (*SimCheckResult, error) {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		return nil, err
	}
	nc, err := netcalc.Analyze(pg, netcalc.DefaultOptions())
	if err != nil {
		return nil, err
	}
	trU, err := trajectory.Analyze(pg, trajectory.Options{Grouping: false})
	if err != nil {
		return nil, err
	}
	trG, err := trajectory.Analyze(pg, trajectory.DefaultOptions())
	if err != nil {
		return nil, err
	}
	maxSim := map[afdx.PathID]float64{}
	for seed := 0; seed < seeds; seed++ {
		cfg := sim.DefaultConfig(int64(seed))
		cfg.DurationUs = 64_000
		res, err := sim.Run(pg, cfg)
		if err != nil {
			return nil, err
		}
		for pid, st := range res.Paths {
			if st.MaxDelayUs > maxSim[pid] {
				maxSim[pid] = st.MaxDelayUs
			}
		}
	}
	out := &SimCheckResult{}
	// Iterate in canonical path order: the tightness slices feed the
	// stats summary, whose mean accumulation must not inherit the
	// randomized map iteration order (DET003).
	pids := make([]afdx.PathID, 0, len(maxSim))
	for pid := range maxSim {
		pids = append(pids, pid)
	}
	afdx.SortPathIDs(pids)
	var tNC, tTraj []float64
	for _, pid := range pids {
		d := maxSim[pid]
		out.NumPaths++
		if d > nc.PathDelays[pid]+1e-6 || d > trU.PathDelays[pid]+1e-6 {
			out.Violations++
		}
		tNC = append(tNC, d/nc.PathDelays[pid])
		tTraj = append(tTraj, d/trG.PathDelays[pid])
	}
	out.TightnessNC = stats.Summarize(tNC)
	out.TightnessTraj = stats.Summarize(tTraj)
	return out, nil
}

func runSimCheck(w io.Writer, _ Config) error {
	r, err := SimCheck(50)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Simulated the Figure 2 configuration under 50 random offset seeds.\n\n")
	if err := report.Table(w,
		[]string{"check", "value"},
		[][]string{
			{"paths", report.Int(r.NumPaths)},
			{"bound violations (sound analyses)", report.Int(r.Violations)},
			{"sim/NC-bound ratio (mean)", fmt.Sprintf("%.3f", r.TightnessNC.Mean)},
			{"sim/NC-bound ratio (max)", fmt.Sprintf("%.3f", r.TightnessNC.Max)},
			{"sim/grouped-trajectory ratio (mean)", fmt.Sprintf("%.3f", r.TightnessTraj.Mean)},
			{"sim/grouped-trajectory ratio (max)", fmt.Sprintf("%.3f", r.TightnessTraj.Max)},
		}); err != nil {
		return err
	}
	fmt.Fprintln(w, "Ratios below 1.0 quantify the pessimism of the worst-case analyses")
	fmt.Fprintln(w, "relative to delays actually reached under randomized offsets.")
	return nil
}
