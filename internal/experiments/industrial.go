package experiments

import (
	"fmt"
	"sync"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
	"afdx/internal/core"
)

// IndustrialResult bundles the synthetic industrial configuration with
// its full method comparison (the substrate of Table I and Figures 5/6).
type IndustrialResult struct {
	Net        *afdx.Network
	Graph      *afdx.PortGraph
	Comparison *core.Comparison
}

var (
	industrialMu    sync.Mutex
	industrialCache = map[int64]*IndustrialResult{}
)

// Industrial generates (or returns the cached) synthetic industrial
// configuration for a seed and compares both methods over its >5000
// paths. Generation and analysis are deterministic per seed.
func Industrial(seed int64) (*IndustrialResult, error) {
	industrialMu.Lock()
	defer industrialMu.Unlock()
	if r, ok := industrialCache[seed]; ok {
		return r, nil
	}
	net, err := configgen.Generate(configgen.DefaultSpec(seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: generating industrial config: %w", err)
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		return nil, fmt.Errorf("experiments: industrial port graph: %w", err)
	}
	cmp, err := core.Compare(pg)
	if err != nil {
		return nil, fmt.Errorf("experiments: industrial comparison: %w", err)
	}
	r := &IndustrialResult{Net: net, Graph: pg, Comparison: cmp}
	industrialCache[seed] = r
	return r, nil
}

// PaperTableI holds the reference values of the paper's Table I. The
// published scan is partially illegible; the values below are the
// standard reconstruction (legible digits plus the surrounding prose:
// "mean benefit ... over 10%", "up to 24%", "roughly 90% of VL paths",
// "8.9% more pessimistic in the worst case").
type PaperTableI struct {
	MeanBenefitPct, MaxBenefitPct, MinBenefitPct float64
	MeanBestPct, MaxBestPct, MinBestPct          float64
	TrajectoryWinFracApprox                      float64
}

// PaperTableIReference returns the reconstructed Table I reference.
func PaperTableIReference() PaperTableI {
	return PaperTableI{
		MeanBenefitPct: 10.46, MaxBenefitPct: 24.0, MinBenefitPct: -8.9,
		MeanBestPct: 10.7, MaxBestPct: 24.0, MinBestPct: 0,
		TrajectoryWinFracApprox: 0.90,
	}
}
