package experiments

import (
	"fmt"
	"sync"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
	"afdx/internal/core"
)

// IndustrialResult bundles the synthetic industrial configuration with
// its full method comparison (the substrate of Table I and Figures 5/6).
type IndustrialResult struct {
	Net        *afdx.Network
	Graph      *afdx.PortGraph
	Comparison *core.Comparison
}

// industrialEntry is one seed's singleflight slot: the first caller
// runs the generate+analyze, every concurrent caller with the same seed
// waits on the same once, and callers with different seeds proceed
// independently (the old implementation held one mutex across the whole
// computation, serializing unrelated seeds behind each other).
type industrialEntry struct {
	once sync.Once
	res  *IndustrialResult
	err  error
}

var (
	industrialMu    sync.Mutex
	industrialCache = map[int64]*industrialEntry{}
)

// Industrial generates (or returns the cached) synthetic industrial
// configuration for a seed and compares both methods over its >5000
// paths. Generation and analysis are deterministic per seed (and per
// the engines' reproducibility contract, independent of cfg.Parallel),
// so the per-seed result is computed once and shared; the first
// caller's worker-pool bound and observability context win.
func Industrial(cfg Config) (*IndustrialResult, error) {
	industrialMu.Lock()
	e := industrialCache[cfg.Seed]
	if e == nil {
		e = &industrialEntry{}
		industrialCache[cfg.Seed] = e
	}
	industrialMu.Unlock()
	e.once.Do(func() { e.res, e.err = buildIndustrial(cfg) })
	return e.res, e.err
}

func buildIndustrial(cfg Config) (*IndustrialResult, error) {
	net, err := configgen.Generate(configgen.DefaultSpec(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: generating industrial config: %w", err)
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		return nil, fmt.Errorf("experiments: industrial port graph: %w", err)
	}
	ncOpts, trOpts := cfg.engineOptions()
	cmp, err := core.CompareWithCtx(cfg.context(), pg, ncOpts, trOpts)
	if err != nil {
		return nil, fmt.Errorf("experiments: industrial comparison: %w", err)
	}
	return &IndustrialResult{Net: net, Graph: pg, Comparison: cmp}, nil
}

// PaperTableI holds the reference values of the paper's Table I. The
// published scan is partially illegible; the values below are the
// standard reconstruction (legible digits plus the surrounding prose:
// "mean benefit ... over 10%", "up to 24%", "roughly 90% of VL paths",
// "8.9% more pessimistic in the worst case").
type PaperTableI struct {
	MeanBenefitPct, MaxBenefitPct, MinBenefitPct float64
	MeanBestPct, MaxBestPct, MinBestPct          float64
	TrajectoryWinFracApprox                      float64
}

// PaperTableIReference returns the reconstructed Table I reference.
func PaperTableIReference() PaperTableI {
	return PaperTableI{
		MeanBenefitPct: 10.46, MaxBenefitPct: 24.0, MinBenefitPct: -8.9,
		MeanBestPct: 10.7, MaxBestPct: 24.0, MinBestPct: 0,
		TrajectoryWinFracApprox: 0.90,
	}
}
