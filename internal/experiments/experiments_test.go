package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestScenarioBoundsFig3Fig4(t *testing.T) {
	ung, grp, nc, err := ScenarioBounds()
	if err != nil {
		t.Fatal(err)
	}
	if ung != 288 {
		t.Errorf("figure 3 (ungrouped) bound = %g, want 288", ung)
	}
	if grp != 248 {
		t.Errorf("figure 4 (grouped) bound = %g, want 248", grp)
	}
	if ung-grp != 40 {
		t.Errorf("grouping saving = %g, want one 500B frame (40 us)", ung-grp)
	}
	if nc <= grp {
		t.Errorf("NC bound %g should exceed the grouped trajectory %g here", nc, grp)
	}
}

func TestSweepSmaxShape(t *testing.T) {
	pts, err := SweepSmax()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 15 {
		t.Fatalf("got %d points, want 15 (100..1500 step 100)", len(pts))
	}
	// Paper Fig. 7 shape: NC tighter at the small end, Trajectory tighter
	// at the large end, with a crossover in between.
	first, last := pts[0], pts[len(pts)-1]
	if first.NCUs >= first.TrajUs {
		t.Errorf("at 100B NC (%g) should be tighter than Trajectory (%g)", first.NCUs, first.TrajUs)
	}
	if last.TrajUs >= last.NCUs {
		t.Errorf("at 1500B Trajectory (%g) should be tighter than NC (%g)", last.TrajUs, last.NCUs)
	}
	cross := CrossoverSmax(pts)
	if cross < 100 || cross > 600 {
		t.Errorf("crossover at %dB, want within [100,600] (paper: ~500B)", cross)
	}
	// Both bounds are non-decreasing in s_max.
	for i := 1; i < len(pts); i++ {
		if pts[i].NCUs < pts[i-1].NCUs-1e-9 || pts[i].TrajUs < pts[i-1].TrajUs-1e-9 {
			t.Errorf("bounds must grow with s_max: %+v -> %+v", pts[i-1], pts[i])
		}
	}
	// The gap (Trajectory - NC) grows as s_max decreases below the
	// crossover (the paper's stated trend).
	if gap0, gap1 := pts[0].TrajUs-pts[0].NCUs, pts[2].TrajUs-pts[2].NCUs; gap0 <= gap1 {
		t.Errorf("trajectory pessimism should grow as s_max shrinks: gap(100B)=%g gap(300B)=%g",
			gap0, gap1)
	}
}

func TestSweepBAGShape(t *testing.T) {
	pts, err := SweepBAG()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("got %d points, want 8 (1..128 ms)", len(pts))
	}
	// Paper Fig. 8: trajectory flat, NC decreasing with growing BAG.
	for i := 1; i < len(pts); i++ {
		if pts[i].TrajUs != pts[0].TrajUs {
			t.Errorf("trajectory bound should be flat in BAG: %g at %gms vs %g at %gms",
				pts[i].TrajUs, pts[i].BAGMs, pts[0].TrajUs, pts[0].BAGMs)
		}
		if pts[i].NCUs > pts[i-1].NCUs+1e-9 {
			t.Errorf("NC bound should not grow with BAG: %+v -> %+v", pts[i-1], pts[i])
		}
	}
	if pts[0].NCUs <= pts[len(pts)-1].NCUs {
		t.Error("NC bound at BAG=1ms should strictly exceed the bound at BAG=128ms")
	}
}

func TestSurfaceShape(t *testing.T) {
	cells, err := Surface()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8*15 {
		t.Fatalf("got %d cells, want 120", len(cells))
	}
	// Sign change along the s_max axis: negative (NC wins) at 100B,
	// positive (Trajectory wins) at 1500B, for every BAG.
	bySmax := map[int][]float64{}
	for _, c := range cells {
		bySmax[c.SMaxBytes] = append(bySmax[c.SMaxBytes], c.DifferenceUs)
	}
	for _, d := range bySmax[100] {
		if d >= 0 {
			t.Errorf("difference at 100B should be negative (NC tighter), got %g", d)
		}
	}
	for _, d := range bySmax[1500] {
		if d <= 0 {
			t.Errorf("difference at 1500B should be positive (Trajectory tighter), got %g", d)
		}
	}
}

func TestIndustrialTableIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("industrial comparison is expensive")
	}
	r, err := Industrial(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Comparison.Summary()
	if s.NumPaths < 4800 {
		t.Errorf("industrial comparison covers %d paths, want ~5000+", s.NumPaths)
	}
	// Paper Table I qualitative content: positive mean benefit, trajectory
	// tighter on a large majority of paths but not all, combined never
	// worse than NC.
	if s.MeanBenefitPct <= 0 {
		t.Errorf("mean trajectory benefit should be positive, got %g%%", s.MeanBenefitPct)
	}
	if s.TrajectoryWinFrac < 0.75 || s.TrajectoryWinFrac >= 1 {
		t.Errorf("trajectory win fraction = %g, want a large majority but not all (paper ~0.9)",
			s.TrajectoryWinFrac)
	}
	if s.MinBenefitPct >= 0 {
		t.Error("some paths should favour NC (negative min benefit)")
	}
	if s.MinBestPct < 0 {
		t.Errorf("combined approach must never lose to NC, min best = %g%%", s.MinBestPct)
	}
	if s.MeanBestPct < s.MeanBenefitPct {
		t.Error("combined mean benefit cannot be below trajectory mean benefit")
	}
}

func TestIndustrialFig5Fig6Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("industrial comparison is expensive")
	}
	r, err := Industrial(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byBag := r.Comparison.ByBAG()
	if len(byBag) < 6 {
		t.Fatalf("expected most harmonic BAG values populated, got %d", len(byBag))
	}
	// Fig 5 trend: short-BAG groups should on average benefit at least as
	// much as the longest-BAG group.
	if byBag[0].MeanBenefitPct < byBag[len(byBag)-1].MeanBenefitPct-5 {
		t.Errorf("fig5 trend violated: benefit %g%% at BAG %gms vs %g%% at %gms",
			byBag[0].MeanBenefitPct, byBag[0].BAGMs,
			byBag[len(byBag)-1].MeanBenefitPct, byBag[len(byBag)-1].BAGMs)
	}
	bySmax := r.Comparison.BySmax()
	if len(bySmax) < 10 {
		t.Fatalf("expected most s_max values populated, got %d", len(bySmax))
	}
	// Fig 6 trend: NC wins more often on the smallest frames than on the
	// largest.
	small, large := bySmax[0], bySmax[len(bySmax)-1]
	if small.NCWinsPct <= large.NCWinsPct {
		t.Errorf("fig6 trend violated: NC wins %g%% at %dB vs %g%% at %dB",
			small.NCWinsPct, small.SMaxBytes, large.NCWinsPct, large.SMaxBytes)
	}
}

func TestIndustrialCacheIsStable(t *testing.T) {
	if testing.Short() {
		t.Skip("industrial comparison is expensive")
	}
	a, err := Industrial(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Industrial(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed should return the cached result")
	}
}

func TestSimCheckNoViolations(t *testing.T) {
	r, err := SimCheck(10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Violations != 0 {
		t.Errorf("%d bound violations against sound analyses", r.Violations)
	}
	if r.NumPaths != 5 {
		t.Errorf("checked %d paths, want 5", r.NumPaths)
	}
	if r.TightnessNC.Max > 1 {
		t.Errorf("simulated delay / NC bound ratio %g exceeds 1", r.TightnessNC.Max)
	}
}

func TestRegistryRunsAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment including the industrial ones")
	}
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, Config{Seed: 1}); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Error("experiment produced no output")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table1"); !ok {
		t.Error("table1 should exist")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown ID should not resolve")
	}
}

func TestFig7OutputMentionsCrossover(t *testing.T) {
	e, _ := ByID("fig7")
	var buf bytes.Buffer
	if err := e.Run(&buf, Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crossover") {
		t.Error("fig7 output should state the measured crossover")
	}
}

func TestAblationsOrdering(t *testing.T) {
	rows, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Grouping tightens both methods at both sizes.
	if byName["NC, grouping (paper WCNC)"].V1At500BUs >= byName["NC, no grouping"].V1At500BUs {
		t.Error("NC grouping should tighten the 500B bound")
	}
	if byName["Trajectory, grouping (paper Fig 4)"].V1At500BUs >= byName["Trajectory, no grouping (paper Fig 3)"].V1At500BUs {
		t.Error("trajectory grouping should tighten the 500B bound")
	}
	// Staircase envelopes tighten NC strictly on this multi-hop config.
	if byName["NC, grouping + staircase envelopes"].V1At500BUs >= byName["NC, grouping (paper WCNC)"].V1At500BUs {
		t.Error("staircase envelopes should tighten grouped NC")
	}
	// The shared-transition refinement only bites in the small-frame regime.
	base := byName["Trajectory, grouping (paper Fig 4)"]
	shared := byName["Trajectory, grouping, shared-transition refinement"]
	if shared.V1At500BUs != base.V1At500BUs {
		t.Error("shared-transition should not change the uniform-frame bound")
	}
	if shared.V1At100BUs >= base.V1At100BUs {
		t.Error("shared-transition should tighten the small-frame bound")
	}
}

func TestPessimismSandwich(t *testing.T) {
	rows, err := Pessimism()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("expected 5 paths, got %d", len(rows))
	}
	sawOptimism := false
	for _, r := range rows {
		if r.AchievableUs > r.NCUs+1e-6 {
			t.Errorf("path %v: achievable %g above the NC bound %g", r.Path, r.AchievableUs, r.NCUs)
		}
		if r.NCRatio < 1-1e-9 {
			t.Errorf("path %v: NC ratio %g below 1", r.Path, r.NCRatio)
		}
		if r.TrajRatio < 1-1e-9 {
			sawOptimism = true
		}
	}
	if !sawOptimism {
		t.Error("the search should exhibit the grouped trajectory optimism on some path")
	}
}

func TestDeadlineStudyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("industrial comparison is expensive")
	}
	rep, err := DeadlineStudy(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total < 4800 {
		t.Errorf("total = %d, want ~5000", rep.Total)
	}
	// The combined approach can never certify fewer paths than either
	// method alone.
	if rep.BestCertified < rep.NCCertified || rep.BestCertified < rep.TrajectoryCertified {
		t.Errorf("combined certifies %d, below a component (%d NC, %d trajectory)",
			rep.BestCertified, rep.NCCertified, rep.TrajectoryCertified)
	}
	// Bounds being positive, some short-BAG paths are expected to miss.
	if rep.BestCertified == rep.Total {
		t.Log("note: every path certified this seed (allowed, just unusual)")
	}
}

func TestRobustnessAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple industrial comparisons are expensive")
	}
	rows, err := Robustness(Config{}, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Summary.MeanBenefitPct <= 0 {
			t.Errorf("seed %d: mean benefit %g%% must stay positive", r.Seed, r.Summary.MeanBenefitPct)
		}
		if r.Summary.TrajectoryWinFrac < 0.75 {
			t.Errorf("seed %d: trajectory wins %g, want a large majority", r.Seed, r.Summary.TrajectoryWinFrac)
		}
		if r.Summary.MinBestPct < 0 {
			t.Errorf("seed %d: combined min %g%% must be >= 0", r.Seed, r.Summary.MinBestPct)
		}
	}
}

func TestPriorityStudyShape(t *testing.T) {
	rows, err := PriorityStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.SimMaxUs > r.SPUs+1e-6 {
			t.Errorf("path %v: simulated %g above the SP bound %g", r.Path, r.SimMaxUs, r.SPUs)
		}
		if r.Priority == 0 && r.Path.VL != "v5" && r.SPUs >= r.FIFOUs {
			t.Errorf("high-priority path %v should tighten: %g vs FIFO %g", r.Path, r.SPUs, r.FIFOUs)
		}
		if r.Priority > 0 && r.SPUs < r.FIFOUs {
			t.Errorf("low-priority path %v should not tighten: %g vs FIFO %g", r.Path, r.SPUs, r.FIFOUs)
		}
	}
}

func TestScalingMonotonicity(t *testing.T) {
	rows, err := Scaling(Config{Seed: 1}, []int{50, 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[1].NumVLs <= rows[0].NumVLs || rows[1].NumPaths <= rows[0].NumPaths {
		t.Errorf("larger spec should yield a larger network: %+v", rows)
	}
	for _, r := range rows {
		if r.CompareSec <= 0 {
			t.Errorf("compare time must be positive: %+v", r)
		}
		if r.Summary.MinBestPct < 0 {
			t.Errorf("combined approach must never lose: %+v", r.Summary)
		}
	}
}
