package experiments

import (
	"fmt"
	"io"
	"time"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
	"afdx/internal/core"
	"afdx/internal/report"
)

// ScalingRow measures one configuration size: generation statistics,
// analysis wall time per engine, and the comparison outcome.
type ScalingRow struct {
	NumVLs     int
	NumPaths   int
	CompareSec float64
	Summary    core.Summary
}

// Scaling runs the full comparison across configuration sizes, holding
// the topology constant (the paper's 8 switches): how the engines and
// the trajectory-benefit statistics behave as the network fills up.
func Scaling(cfg Config, sizes []int) ([]ScalingRow, error) {
	ncOpts, trOpts := cfg.engineOptions()
	var rows []ScalingRow
	for _, n := range sizes {
		spec := configgen.DefaultSpec(cfg.Seed)
		spec.NumVLs = n
		net, err := configgen.Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling %d VLs: %w", n, err)
		}
		pg, err := afdx.BuildPortGraph(net, afdx.Strict)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		cmp, err := core.CompareWithCtx(cfg.context(), pg, ncOpts, trOpts)
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling %d VLs: %w", n, err)
		}
		elapsed := time.Since(start).Seconds()
		st := net.ComputeStats()
		rows = append(rows, ScalingRow{
			NumVLs:     st.NumVLs,
			NumPaths:   st.NumPaths,
			CompareSec: elapsed,
			Summary:    cmp.Summary(),
		})
	}
	return rows, nil
}

func runScaling(w io.Writer, cfg Config) error {
	rows, err := Scaling(cfg, []int{100, 250, 500, 1000})
	if err != nil {
		return err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			report.Int(r.NumVLs), report.Int(r.NumPaths),
			fmt.Sprintf("%.2f s", r.CompareSec),
			report.Pct(r.Summary.MeanBenefitPct),
			fmt.Sprintf("%.1f%%", r.Summary.TrajectoryWinFrac*100),
		})
	}
	fmt.Fprintln(w, "Scaling the VL count on the fixed 8-switch topology: analysis cost")
	fmt.Fprintln(w, "and comparison outcome as the network fills up (the trajectory")
	fmt.Fprintln(w, "advantage grows with load, as in the paper's Figure 5 reading):")
	fmt.Fprintln(w)
	return report.Table(w,
		[]string{"VLs", "paths", "compare time", "mean benefit", "trajectory wins"}, out)
}
