package experiments

import (
	"fmt"
	"io"

	"afdx/internal/core"
	"afdx/internal/report"
)

// RobustnessRow is one seed's Table I statistics.
type RobustnessRow struct {
	Seed    int64
	Summary core.Summary
}

// Robustness re-runs the Table I comparison over several generator
// seeds: the paper's qualitative claims must hold for every synthetic
// configuration, not one lucky draw. Thanks to the per-seed
// singleflight in Industrial, distinct seeds analyzed by concurrent
// callers no longer serialize behind one global lock.
func Robustness(cfg Config, seeds []int64) ([]RobustnessRow, error) {
	var rows []RobustnessRow
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		r, err := Industrial(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		rows = append(rows, RobustnessRow{Seed: seed, Summary: r.Comparison.Summary()})
	}
	return rows, nil
}

func runRobustness(w io.Writer, cfg Config) error {
	seeds := []int64{cfg.Seed, cfg.Seed + 1, cfg.Seed + 2}
	rows, err := Robustness(cfg, seeds)
	if err != nil {
		return err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Seed),
			report.Int(r.Summary.NumPaths),
			report.Pct(r.Summary.MeanBenefitPct),
			report.Pct(r.Summary.MaxBenefitPct),
			report.Pct(r.Summary.MinBenefitPct),
			fmt.Sprintf("%.1f%%", r.Summary.TrajectoryWinFrac*100),
		})
	}
	fmt.Fprintln(w, "Table I statistics across generator seeds (the paper's qualitative")
	fmt.Fprintln(w, "claims — positive mean, large-majority trajectory wins, NC winning a")
	fmt.Fprintln(w, "minority — must hold for every seed):")
	fmt.Fprintln(w)
	return report.Table(w,
		[]string{"seed", "paths", "mean benefit", "max", "min", "trajectory wins"}, out)
}

// DeadlineStudy certifies every industrial path against the BAG-as-
// deadline freshness rule and reports how many paths each method
// certifies — the practical consequence of tighter bounds.
func DeadlineStudy(cfg Config) (core.DeadlineReport, error) {
	r, err := Industrial(cfg)
	if err != nil {
		return core.DeadlineReport{}, err
	}
	return r.Comparison.CheckDeadlines(nil, true), nil
}

func runDeadlines(w io.Writer, cfg Config) error {
	rep, err := DeadlineStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Certification against the BAG-as-deadline freshness rule on the")
	fmt.Fprintln(w, "industrial configuration (a path is certified when the method's bound")
	fmt.Fprintln(w, "stays below the VL's BAG):")
	fmt.Fprintln(w)
	if err := report.Table(w, []string{"method", "certified paths", "of"}, [][]string{
		{"Network Calculus", report.Int(rep.NCCertified), report.Int(rep.Total)},
		{"Trajectory", report.Int(rep.TrajectoryCertified), report.Int(rep.Total)},
		{"Combined (best)", report.Int(rep.BestCertified), report.Int(rep.Total)},
	}); err != nil {
		return err
	}
	if v := rep.Violations(); len(v) > 0 {
		fmt.Fprintf(w, "%d paths miss even the combined bound; tightest margin %0.2f us (%v)\n",
			len(v), v[0].MarginUs, v[0].Path)
	} else {
		fmt.Fprintln(w, "every path is certified by the combined approach")
	}
	return nil
}
