package detcheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DET002 nondetsource: reads of nondeterministic sources inside engine
// packages. An engine result must be a pure function of the
// configuration and the options — the bit-reproducibility and
// incremental-parity gates (check.sh) replay analyses across worker
// counts and sessions and require bitwise identity, which a wall-clock
// read, an environment read, or the globally seeded math/rand source
// breaks by construction. Constructing a *local* seeded source
// (rand.New(rand.NewSource(seed))) stays legal: that is how sim and
// conformance derive reproducible randomness.
//
// The analyzer also flags the "arbitrary element" shape: a map range
// that captures a range variable and exits the loop early, which
// selects a random element.
func init() {
	Register(&Analyzer{
		ID:   CodeNondetSource,
		Name: "nondetsource",
		Doc: "forbids nondeterministic inputs in engine packages: time.Now/Since/Until, " +
			"os.Getenv/LookupEnv/Environ, package-level math/rand functions (globally " +
			"seeded), crypto/rand, and map ranges that capture an arbitrary element by " +
			"exiting early. Engine results must be pure functions of configuration and " +
			"options.",
		Classes: []PkgClass{ClassEngine},
		Run:     runNondetSource,
	})
}

// bannedFuncs maps package path -> function name -> replacement advice.
// Only package-level functions are matched (methods on locally seeded
// *rand.Rand values are fine).
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "thread timestamps in from the CLI layer; engines must not read the wall clock",
		"Since": "thread durations in from the CLI layer; engines must not read the wall clock",
		"Until": "thread durations in from the CLI layer; engines must not read the wall clock",
	},
	"os": {
		"Getenv":    "pass configuration through Options, not the environment",
		"LookupEnv": "pass configuration through Options, not the environment",
		"Environ":   "pass configuration through Options, not the environment",
	},
}

// randConstructors are the math/rand package-level functions that build
// local deterministic state rather than touching the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runNondetSource(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkBannedCall(pass, n)
			case *ast.RangeStmt:
				if isMap(orNil(pass.TypeOf(n.X))) {
					checkArbitraryElement(pass, n)
				}
			}
			return true
		})
	}
}

func checkBannedCall(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods are fine (locally seeded *rand.Rand etc.)
	}
	path, name := f.Pkg().Path(), f.Name()
	if advice, ok := bannedFuncs[path][name]; ok {
		pass.Reportf(call.Pos(), advice,
			"engine code calls %s.%s, a nondeterministic source", path, name)
		return
	}
	switch path {
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] {
			pass.Reportf(call.Pos(),
				"derive randomness from a locally seeded source: rand.New(rand.NewSource(seed))",
				"engine code calls the globally seeded %s.%s", path, name)
		}
	case "crypto/rand":
		pass.Reportf(call.Pos(),
			"engines have no business with cryptographic randomness; use a seeded math/rand source",
			"engine code calls crypto/rand.%s", name)
	}
}

// checkArbitraryElement flags map ranges that copy a range variable
// into outer state (or return it) and exit the loop before completion:
// the captured element is whichever the randomized iteration yielded
// first. Pure existence checks (assigning constants, counting) are
// order-independent and stay legal.
func checkArbitraryElement(pass *Pass, rng *ast.RangeStmt) {
	rangeVars := rangeVarObjects(pass.Info, rng)
	if len(rangeVars) == 0 {
		return
	}
	exits := false
	captures := false
	// breakable tracks whether an unlabeled break at the current node
	// still targets the map range (false inside nested switch/select).
	var walk func(n ast.Node, breakable bool)
	walk = func(n ast.Node, breakable bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || m == n {
				return true
			}
			switch st := m.(type) {
			case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
				// A break (and anything else) inside a nested loop or
				// closure exits that construct, not this range; stay
				// conservative and skip the subtree.
				return false
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				walk(m, false)
				return false
			case *ast.BranchStmt:
				if st.Tok == token.BREAK && st.Label == nil && breakable {
					exits = true
				}
			case *ast.ReturnStmt:
				exits = true
				for _, r := range st.Results {
					if mentionsAny(pass.Info, r, rangeVars) {
						captures = true
					}
				}
			case *ast.AssignStmt:
				for _, rhs := range st.Rhs {
					if mentionsAny(pass.Info, rhs, rangeVars) {
						for _, lhs := range st.Lhs {
							if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
								if id.Name != "_" && declaredOutside(pass.Info, id, rng.Pos(), rng.End()) {
									captures = true
								}
							} else {
								captures = true // selector/index on outer state
							}
						}
					}
				}
			}
			return true
		})
	}
	walk(rng.Body, true)
	if exits && captures {
		pass.Reportf(rng.Pos(),
			"iterate sorted keys, or restate the loop so the captured value is order-independent",
			"map range captures an arbitrary element (range variable stored and loop exited early): "+
				"the element picked depends on randomized iteration order")
	}
}
