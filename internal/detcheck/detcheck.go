// Package detcheck statically enforces the repository's determinism
// contract at the Go source level: a suite of analyzers (DET001..DET006)
// that forbid the nondeterministic computation patterns which have
// historically broken bit-reproducibility (map-range float accumulation,
// schedule-dependent counters, unseeded randomness, raw tolerance
// literals, uncancellable engine loops), run by cmd/afdx-vet over the
// whole tree as part of `make check`.
//
// The package mirrors the internal/lint vocabulary — a registered
// Analyzer with a stable code, a Pass carrying one invocation, findings
// emitted through internal/diag — but analyses Go packages instead of
// AFDX configurations. It is built directly on go/ast and go/types (the
// golang.org/x/tools go/analysis machinery is intentionally not a
// dependency: the repository is stdlib-only), with an analysistest-style
// golden harness in atest.go and a loader in load.go.
//
// Both determinism bugs fixed in PR 2 — the map-range float accumulation
// in netcalc.analyzePort and the unbounded busy-period bail in
// trajectory — were of statically detectable shape; this package is the
// compile-time gate that keeps every future engine tier inside the
// contract before a single determinism test runs.
//
// A finding is suppressed by annotating the offending line (or the line
// directly above it) with a justified directive:
//
//	//detcheck:allow DET004: dimensionless utilization guard, scale-free by construction
//
// The justification is mandatory; a malformed directive is itself
// reported under the reserved code DET000.
package detcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The stable analyzer codes. DET000 is reserved for findings about the
// analysis itself (malformed suppression directives, packages that fail
// to load); one code per registered analyzer, asserted unique by the
// registry tests.
const (
	// CodeMeta marks malformed //detcheck: directives and load failures.
	CodeMeta = "DET000"
	// CodeFloatMapRange marks floating-point accumulation (or running
	// min/max) inside a `for range` over a map — the PR 2 netcalc bug
	// class: the result depends on Go's randomized map iteration order.
	CodeFloatMapRange = "DET001"
	// CodeNondetSource marks reads of nondeterministic sources in engine
	// packages: wall-clock time, environment variables, the globally
	// seeded math/rand source, and map iterations that capture an
	// arbitrary element by exiting early.
	CodeNondetSource = "DET002"
	// CodeUnsortedKeys marks map keys collected into a slice that leaves
	// the collecting function without an intervening sort.
	CodeUnsortedKeys = "DET003"
	// CodeTolLiteral marks raw floating-point comparison-tolerance
	// literals (1e-9 and friends) in engine comparisons outside
	// internal/core/tol, the single home of the shared tolerance.
	CodeTolLiteral = "DET004"
	// CodeDetCounterFanout marks obs.Counter increments lexically inside
	// a parallel.ForEach closure; per-item increments from workers are
	// schedule-coupled (skipped indices after an error, contended lines)
	// and break Deterministic-class snapshot equality. Batch locally and
	// flush one Add after the pool returns. Also gates the oplog package
	// to BestEffort-only metric registrations: runtime samples must never
	// feed the Deterministic snapshot subset.
	CodeDetCounterFanout = "DET005"
	// CodeCtxLoop marks unbounded engine loops (`for {` / `for ;;`)
	// without a reachable context cancellation check, and bounded loops
	// whose literal iteration cap is so large (>= 1e6) that it is a bail
	// in disguise — the PR 2 trajectory bug class.
	CodeCtxLoop = "DET006"
)

// An Analyzer is one source-level determinism check: a stable DET###
// code, a short name, one-paragraph documentation, the package classes
// it applies to, and a Run function reporting findings through the Pass.
type Analyzer struct {
	// ID is the stable DET### code every finding of this analyzer
	// carries. One code per analyzer.
	ID string
	// Name is the short lower-case analyzer name (one word, matching the
	// ISSUE/DESIGN rule catalog).
	Name string
	// Doc documents what the analyzer checks and why it matters.
	Doc string
	// Classes lists the package classes the analyzer inspects; packages
	// of any other class are skipped entirely.
	Classes []PkgClass
	// Run performs the check over one package, reporting via pass.
	Run func(pass *Pass)
}

// applies reports whether the analyzer inspects packages of class c.
func (a *Analyzer) applies(c PkgClass) bool {
	for _, ac := range a.Classes {
		if ac == c {
			return true
		}
	}
	return false
}

var registry []*Analyzer

// Register adds an analyzer to the global registry. It panics on a
// duplicate code or name, a malformed code, or an empty doc — all
// programming errors caught at init time (and by the registry tests,
// which also assert parity with the internal/lint registry).
func Register(a *Analyzer) {
	if a.Name == "" || a.Doc == "" || a.Run == nil || len(a.Classes) == 0 {
		panic(fmt.Sprintf("detcheck: analyzer %+v incompletely defined", a))
	}
	if len(a.ID) != 6 || !strings.HasPrefix(a.ID, "DET") || a.ID == CodeMeta {
		panic(fmt.Sprintf("detcheck: analyzer %s has malformed code %q", a.Name, a.ID))
	}
	for _, b := range registry {
		if b.ID == a.ID || b.Name == a.Name {
			panic(fmt.Sprintf("detcheck: analyzer %s/%s collides with %s/%s", a.Name, a.ID, b.Name, b.ID))
		}
	}
	registry = append(registry, a)
}

// Analyzers returns the registered analyzers sorted by code.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AnalyzerByID returns the analyzer owning a code, or nil.
func AnalyzerByID(id string) *Analyzer {
	for _, a := range registry {
		if a.ID == id {
			return a
		}
	}
	return nil
}

// A Fix is a machine-applicable replacement of one source range,
// attached to findings whose rewrite is mechanical (DET004: raw literal
// -> tol.EpsRel). Offsets are byte offsets into the named file.
type Fix struct {
	File   string `json:"file"`
	Offset int    `json:"offset"`
	End    int    `json:"end"`
	Old    string `json:"old"`
	New    string `json:"new"`
}

// A Finding is one analyzer hit: code, source position, message, and
// optionally a mechanical fix. Suppressed findings (matched by a
// justified //detcheck:allow directive) stay in the report for
// transparency but do not gate.
type Finding struct {
	ID         string         `json:"id"`
	Analyzer   string         `json:"analyzer"`
	Pos        token.Position `json:"-"`
	File       string         `json:"file"`
	Line       int            `json:"line"`
	Col        int            `json:"col"`
	Message    string         `json:"message"`
	Suggestion string         `json:"suggestion,omitempty"`
	Suppressed bool           `json:"suppressed,omitempty"`
	// Justification carries the text of the matching allow directive
	// when the finding is suppressed.
	Justification string `json:"justification,omitempty"`
	Fix           *Fix   `json:"fix,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s %s", f.File, f.Line, f.Col, f.ID, f.Message)
	if f.Suppressed {
		s += " (suppressed: " + f.Justification + ")"
	}
	return s
}

// A Pass carries one analyzer invocation over one type-checked package.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Fset positions every node of Files.
	Fset *token.FileSet
	// Files are the package's parsed sources (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's results for Files.
	Info *types.Info
	// Class is the package's determinism classification.
	Class PkgClass
	// Path is the package import path ("" for ad-hoc test packages).
	Path string

	out *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, suggestion, format string, args ...any) {
	p.report(pos, suggestion, fmt.Sprintf(format, args...), nil)
}

// ReportFix records a finding at pos carrying a mechanical source fix
// replacing [pos, end) with new text.
func (p *Pass) ReportFix(pos, end token.Pos, old, new, suggestion, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(pos, suggestion, fmt.Sprintf(format, args...), &Fix{
		File:   position.Filename,
		Offset: position.Offset,
		End:    p.Fset.Position(end).Offset,
		Old:    old,
		New:    new,
	})
}

func (p *Pass) report(pos token.Pos, suggestion, msg string, fix *Fix) {
	position := p.Fset.Position(pos)
	*p.out = append(*p.out, Finding{
		ID:         p.Analyzer.ID,
		Analyzer:   p.Analyzer.Name,
		Pos:        position,
		File:       position.Filename,
		Line:       position.Line,
		Col:        position.Column,
		Message:    msg,
		Suggestion: suggestion,
		Fix:        fix,
	})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// isFloat reports whether t's underlying type is a floating-point basic
// type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (through selectors and parenthesization), or nil for calls of
// function-typed variables, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether the call invokes the package-level function
// pkgPath.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name &&
		f.Type().(*types.Signature).Recv() == nil
}

// recvNamed returns the defined type of a method call's receiver after
// stripping pointers, or nil when the call is not a method call.
func recvNamed(info *types.Info, call *ast.CallExpr) *types.Named {
	f := calleeFunc(info, call)
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// namedIs reports whether n is the defined type pkgPath.name.
func namedIs(n *types.Named, pkgPath, name string) bool {
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// exprString renders an expression as compact source text for messages.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// mentionsObject reports whether expr references the object obj.
func mentionsObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// mentionsAny reports whether expr references any of the objects.
func mentionsAny(info *types.Info, expr ast.Expr, objs []types.Object) bool {
	for _, o := range objs {
		if o != nil && mentionsObject(info, expr, o) {
			return true
		}
	}
	return false
}

// declaredOutside reports whether the identifier's object is declared
// outside the [lo, hi] node span (loop-external state). Objects without
// a position (package names, builtins) count as outside.
func declaredOutside(info *types.Info, id *ast.Ident, lo, hi token.Pos) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false // unresolved: stay quiet
	}
	return obj.Pos() < lo || obj.Pos() > hi
}

// funcBodies yields every function body in the file with its
// documentation-bearing node: declarations and literals alike.
func funcBodies(f *ast.File, visit func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Body)
			}
			return false // literals inside are reached via the body walk below
		}
		return true
	})
	// Function literals declared outside any FuncDecl (package-level var
	// initializers) are rare; walk them too.
	ast.Inspect(f, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncDecl); ok {
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
			visit(fl.Body)
			return false
		}
		return true
	})
}
