package detcheck

import (
	"testing"
)

// TestRepositoryClean is the self-hosting gate in test form: the whole
// module must pass the suite with zero active findings. Every finding
// in the tree is either fixed or carries a justified //detcheck:allow
// directive; a new violation fails this test before it ever reaches
// check.sh.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	rep, err := Run(root, "./...")
	if err != nil {
		t.Fatalf("running the suite over the module: %v", err)
	}
	if rep.Packages == 0 {
		t.Fatal("the suite analysed zero packages")
	}
	for _, f := range rep.Findings {
		if !f.Suppressed {
			t.Errorf("active finding: %s\n        fix: %s", f.String(), f.Suggestion)
		}
	}
	if rep.Active == 0 && rep.Suppressed > 0 {
		t.Logf("tree clean: %d package(s), %d suppressed finding(s)", rep.Packages, rep.Suppressed)
	}
}
