package detcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// An allowDirective is one parsed //detcheck:allow comment: a code to
// suppress, the mandatory justification, and the file/line it sits on.
// A directive covers findings of its code on its own line and on the
// line directly below it (the lead-comment position).
type allowDirective struct {
	id            string
	justification string
	file          string
	line          int
	used          bool
}

const allowPrefix = "//detcheck:allow "
const classifyPrefix = "//detcheck:classify "

// parseDirectives scans a file's comments for //detcheck: directives.
// Malformed allow directives (unknown code, missing justification) are
// reported as DET000 meta findings; well-formed ones are returned for
// suppression matching.
func parseDirectives(fset *token.FileSet, f *ast.File, meta *[]Finding) []*allowDirective {
	var out []*allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, "//detcheck:") {
				continue
			}
			pos := fset.Position(c.Pos())
			if strings.HasPrefix(text, classifyPrefix) {
				// Classification overrides are a test-harness affordance;
				// the production loader classifies by import path only, so
				// the directive is valid but inert here.
				if _, ok := ParseClass(strings.TrimSpace(strings.TrimPrefix(text, classifyPrefix))); !ok {
					*meta = append(*meta, metaFinding(pos,
						"unknown class in directive %q (want engine, support, tolerance or tool)", text))
				}
				continue
			}
			if !strings.HasPrefix(text, allowPrefix) {
				*meta = append(*meta, metaFinding(pos,
					"unknown detcheck directive %q (want //detcheck:allow DET###: justification)", text))
				continue
			}
			rest := strings.TrimPrefix(text, allowPrefix)
			id, justification, ok := strings.Cut(rest, ":")
			id = strings.TrimSpace(id)
			justification = strings.TrimSpace(justification)
			switch {
			case !ok || justification == "":
				*meta = append(*meta, metaFinding(pos,
					"allow directive %q lacks a justification (want //detcheck:allow %s: why this site is deterministic)", text, id))
			case AnalyzerByID(id) == nil:
				*meta = append(*meta, metaFinding(pos,
					"allow directive names unknown analyzer code %q", id))
			default:
				out = append(out, &allowDirective{
					id:            id,
					justification: justification,
					file:          pos.Filename,
					line:          pos.Line,
				})
			}
		}
	}
	return out
}

func metaFinding(pos token.Position, format string, args ...any) Finding {
	f := Finding{
		ID:       CodeMeta,
		Analyzer: "detcheck",
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Suggestion: "write //detcheck:allow DET###: <justification> on the offending line " +
			"or the line directly above it",
	}
	f.Message = fmt.Sprintf(format, args...)
	return f
}

// applyAllows marks findings matched by a directive as suppressed and
// reports directives that matched nothing (a stale allow hides future
// regressions, so it is itself a DET000 finding).
func applyAllows(findings []Finding, directives []*allowDirective) []Finding {
	for i := range findings {
		f := &findings[i]
		if f.ID == CodeMeta {
			continue
		}
		for _, d := range directives {
			if d.id != f.ID || d.file != f.File {
				continue
			}
			if d.line == f.Line || d.line == f.Line-1 {
				f.Suppressed = true
				f.Justification = d.justification
				d.used = true
				break
			}
		}
	}
	for _, d := range directives {
		if !d.used {
			findings = append(findings, metaFinding(
				token.Position{Filename: d.file, Line: d.line, Column: 1},
				"allow directive for %s matches no finding (stale suppression — remove it)", d.id))
		}
	}
	return findings
}

// classifyDirective returns the class named by a //detcheck:classify
// directive in any of the files, if present. Only the test harness
// honors it; see Load.
func classifyDirective(files []*ast.File) (PkgClass, bool) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, classifyPrefix) {
					if cl, ok := ParseClass(strings.TrimSpace(strings.TrimPrefix(c.Text, classifyPrefix))); ok {
						return cl, true
					}
				}
			}
		}
	}
	return ClassSupport, false
}
