package detcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// DET006 ctxloop: unbounded engine loops without a reachable
// cancellation check. The PR 2 trajectory bug hid a non-converging
// busy-period fixpoint behind a 1e6-iteration bail: the engine neither
// terminated promptly nor reported infeasibility. The repository's
// discipline since is (a) condition-free loops in engine code must poll
// ctx.Err() / select on ctx.Done() so afdx-bounds and the conformance
// budget can cancel them, and (b) literal iteration caps of 1e6 or more
// are a bail in disguise and must be replaced by a derived capacity
// bound (see trajectory.sourceBusyPeriod's remaining-capacity cap).
func init() {
	Register(&Analyzer{
		ID:   CodeCtxLoop,
		Name: "ctxloop",
		Doc: "requires engine loops without a loop condition (`for {`, `for ; ; {`) to poll " +
			"context cancellation (ctx.Err() or ctx.Done()), and forbids literal iteration " +
			"caps >= 1e6 (an unbounded-loop bail in disguise; derive the cap from the " +
			"problem instead).",
		Classes: []PkgClass{ClassEngine},
		Run:     runCtxLoop,
	})
}

// hugeIterationCap is the literal loop bound at which a "bounded" loop
// stops being a bound and starts being a bail.
const hugeIterationCap = 1e6

func runCtxLoop(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if loop.Cond == nil {
				if !pollsContext(pass, loop.Body) {
					pass.Reportf(loop.Pos(),
						"poll cancellation inside the loop (if err := ctx.Err(); err != nil { return ... }), "+
							"at a stride if the body is hot",
						"condition-free loop in engine code without a context cancellation check: "+
							"afdx-bounds and the conformance budget cannot cancel it")
				}
				return true
			}
			if lit := hugeLiteralBound(pass, loop.Cond); lit != "" && !pollsContext(pass, loop.Body) {
				pass.Reportf(loop.Pos(),
					"derive the iteration cap from the problem (capacity bounds, grid sizes) and "+
						"poll ctx at a stride; a huge literal cap is an unbounded loop with a bail",
					"loop bounded only by the literal cap %s (>= 1e6) without a cancellation check: "+
						"the PR 2 trajectory busy-period bug class", lit)
			}
			return true
		})
	}
}

// pollsContext reports whether the loop body (outside nested function
// literals) evaluates ctx.Err(), receives from ctx.Done(), or selects
// on it — for any value of type context.Context.
func pollsContext(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return true
		}
		if isContext(pass.TypeOf(sel.X)) {
			found = true
		}
		return true
	})
	return found
}

func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return namedIs(n, "context", "Context")
}

// hugeLiteralBound returns the text of an integer/float literal >= 1e6
// used as a comparison bound in the loop condition, or "".
func hugeLiteralBound(pass *Pass, cond ast.Expr) string {
	found := ""
	ast.Inspect(cond, func(n ast.Node) bool {
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch cmp.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{cmp.X, cmp.Y} {
			lit, ok := ast.Unparen(side).(*ast.BasicLit)
			if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
				continue
			}
			if tv, ok := pass.Info.Types[lit]; ok && tv.Value != nil {
				if v, _ := constant.Float64Val(constant.ToFloat(tv.Value)); v >= hugeIterationCap {
					found = lit.Value
				}
			}
		}
		return true
	})
	return found
}
