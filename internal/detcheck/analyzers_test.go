package detcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Each analyzer is exercised against its golden corpus under
// testdata/src/<name>: RunTest matches unsuppressed findings one-to-one
// against the `// want` comments, and the returned report lets the
// tests pin the suppression behaviour (every corpus carries exactly one
// justified //detcheck:allow case).

func runCorpus(t *testing.T, id string) *Report {
	t.Helper()
	a := AnalyzerByID(id)
	if a == nil {
		t.Fatalf("analyzer %s is not registered", id)
	}
	rep := RunTest(t, Testdata(strings.ToLower(id[:3])+id[3:]), a)
	if rep.Suppressed != 1 {
		t.Errorf("%s corpus: %d suppressed findings, want exactly 1 (the allow case)", id, rep.Suppressed)
	}
	for _, f := range rep.Findings {
		if f.Suppressed && f.Justification == "" {
			t.Errorf("%s: suppressed finding at %s:%d lost its justification", id, f.File, f.Line)
		}
	}
	return rep
}

func TestDET001FloatMapRange(t *testing.T)    { runCorpus(t, "DET001") }
func TestDET002NondetSource(t *testing.T)     { runCorpus(t, "DET002") }
func TestDET003UnsortedKeys(t *testing.T)     { runCorpus(t, "DET003") }
func TestDET005DetCounterFanout(t *testing.T) { runCorpus(t, "DET005") }

// TestDET005OplogClassGate exercises DET005's second rule over a corpus
// package named oplog: Deterministic-class registrations are flagged
// there (BestEffort and forwarded classes are not), with exactly one
// justified allow case, mirroring the runCorpus contract.
func TestDET005OplogClassGate(t *testing.T) {
	rep := RunTest(t, Testdata("oplog"), AnalyzerByID(CodeDetCounterFanout))
	if rep.Suppressed != 1 {
		t.Errorf("oplog corpus: %d suppressed findings, want exactly 1 (the allow case)", rep.Suppressed)
	}
	if rep.Active != 2 {
		t.Errorf("oplog corpus: %d active findings, want 2 (Counter and Histogram)", rep.Active)
	}
}
func TestDET006CtxLoop(t *testing.T) { runCorpus(t, "DET006") }

// TestDET004TolLiteral additionally pins the mechanical fix: every
// active 1e-9 literal carries a tol.EpsRel rewrite.
func TestDET004TolLiteral(t *testing.T) {
	rep := runCorpus(t, "DET004")
	fixes := 0
	for _, f := range rep.Findings {
		if f.Suppressed || f.Fix == nil {
			continue
		}
		fixes++
		if f.Fix.Old != "1e-9" || f.Fix.New != "tol.EpsRel" {
			t.Errorf("unexpected fix %q -> %q, want 1e-9 -> tol.EpsRel", f.Fix.Old, f.Fix.New)
		}
	}
	if fixes != 2 {
		t.Errorf("%d active findings carry fixes, want 2 (the two exact-EpsRel literals)", fixes)
	}
}

// TestMetaDirectives loads the deliberately defective directive corpus
// and asserts every defect is reported under the reserved DET000 code.
func TestMetaDirectives(t *testing.T) {
	pkg, err := LoadDir(Testdata("meta"))
	if err != nil {
		t.Fatalf("loading meta corpus: %v", err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("meta corpus does not type-check: %v", pkg.TypeErrors[0])
	}
	findings := RunPackage(pkg)
	wantSubstrings := []string{
		"lacks a justification",
		`unknown analyzer code "DET999"`,
		"unknown detcheck directive",
		"matches no finding",
		"unknown class in directive",
	}
	if len(findings) != len(wantSubstrings) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("meta corpus produced %d findings, want %d", len(findings), len(wantSubstrings))
	}
	for _, f := range findings {
		if f.ID != CodeMeta {
			t.Errorf("meta corpus finding carries code %s, want %s: %s", f.ID, CodeMeta, f)
		}
		if f.Suppressed {
			t.Errorf("DET000 finding must not be suppressible: %s", f)
		}
	}
	for _, want := range wantSubstrings {
		found := false
		for _, f := range findings {
			if strings.Contains(f.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no DET000 finding mentions %q", want)
		}
	}
}

// TestApplyFixes runs DET004 over a scratch copy of an offending file
// and checks the mechanical rewrite lands byte-exactly.
func TestApplyFixes(t *testing.T) {
	dir := t.TempDir()
	src := "//detcheck:classify engine\npackage fixme\n\nfunc closeEnough(a, b float64) bool {\n\treturn a <= b+1e-9\n}\n"
	path := filepath.Join(dir, "fixme.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading scratch package: %v", err)
	}
	rep := &Report{Findings: runPackage(pkg, []*Analyzer{AnalyzerByID(CodeTolLiteral)})}
	applied, err := rep.ApplyFixes(dir)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if applied != 1 {
		t.Fatalf("applied %d fixes, want 1", applied)
	}
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := "return a <= b+tol.EpsRel"; !strings.Contains(string(fixed), want) {
		t.Errorf("fixed file does not contain %q:\n%s", want, fixed)
	}
}
