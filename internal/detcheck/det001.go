package detcheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DET001 floatmaprange: floating-point accumulation (or a running
// min/max) into loop-external state inside a `for range` over a map.
// Go randomizes map iteration order, so the rounding of the
// accumulation — and therefore the computed bound — differs between
// runs. This is exactly the PR 2 bug in netcalc.analyzePort: per-level
// envelope curves were summed in map order and the last bits of the
// delay bound wobbled across processes.
//
// Writes indexed by the range key itself (out[k] = ... inside
// `for k, v := range m`) are exempt: each key is visited exactly once,
// so such updates are per-key and order-independent. Integer
// accumulation is exempt too: integer addition commutes exactly (this
// is what makes Deterministic-class counters sound).
func init() {
	Register(&Analyzer{
		ID:   CodeFloatMapRange,
		Name: "floatmaprange",
		Doc: "forbids floating-point accumulation or running min/max into loop-external " +
			"state inside a `for range` over a map: map iteration order is randomized, so " +
			"the float rounding (and hence the result) differs between runs. Iterate a " +
			"sorted key slice instead.",
		Classes: []PkgClass{ClassEngine, ClassSupport},
		Run:     runFloatMapRange,
	})
}

const floatMapRangeFix = "collect the keys, sort them, and range over the sorted slice " +
	"(see netcalc.analyzePort's sorted levels for the canonical pattern)"

func runFloatMapRange(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil || !isMap(t) {
				return true
			}
			checkMapRangeBody(pass, rng)
			return true
		})
	}
}

// rangeVarObjects resolves the loop variables of a range statement.
func rangeVarObjects(info *types.Info, rng *ast.RangeStmt) []types.Object {
	var objs []types.Object
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.ObjectOf(id); obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt) {
	rangeVars := rangeVarObjects(pass.Info, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			if st != rng && isMap(orNil(pass.TypeOf(st.X))) {
				return false // the nested map range reports its own findings
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, rangeVars, st)
		}
		return true
	})
}

func orNil(t types.Type) types.Type {
	if t == nil {
		return types.Typ[types.Invalid]
	}
	return t
}

func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, rangeVars []types.Object, st *ast.AssignStmt) {
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range st.Lhs {
			if floatEscapes(pass, rng, rangeVars, lhs) {
				pass.Reportf(st.Pos(), floatMapRangeFix,
					"floating-point accumulation into %s inside a range over a map: "+
						"iteration order is randomized, so the rounding differs between runs",
					exprString(lhs))
			}
		}
	case token.ASSIGN:
		if len(st.Lhs) != len(st.Rhs) {
			return
		}
		for i, lhs := range st.Lhs {
			if !floatEscapes(pass, rng, rangeVars, lhs) {
				continue
			}
			rhs := st.Rhs[i]
			// x = f(x, ...) / x = x + v: self-referential update — an
			// accumulation (sum, min, max, product) in assignment form.
			if lhsMentioned(pass, lhs, rhs) {
				pass.Reportf(st.Pos(), floatMapRangeFix,
					"self-referential float update of %s inside a range over a map "+
						"(accumulation in assignment form): iteration order is randomized",
					exprString(lhs))
				continue
			}
			// if v > x { x = v }: the conditional min/max shape. The
			// selected value is order-dependent on ties (and the pattern
			// invites non-commutative refinements), so it is flagged with
			// the rest of the class.
			if cond := enclosingComparison(pass, rng, st); cond != nil && lhsMentioned(pass, lhs, cond) {
				pass.Reportf(st.Pos(), floatMapRangeFix,
					"conditional min/max of %s inside a range over a map: "+
						"the winning element depends on randomized iteration order",
					exprString(lhs))
			}
		}
	}
}

// floatEscapes reports whether lhs is a float lvalue whose storage
// outlives one loop iteration: an identifier declared outside the range
// statement, a selector on outer state, or an index expression whose
// index does not involve the range variables (per-range-key writes are
// order-independent).
func floatEscapes(pass *Pass, rng *ast.RangeStmt, rangeVars []types.Object, lhs ast.Expr) bool {
	t := pass.TypeOf(lhs)
	if t == nil || !isFloat(t) {
		return false
	}
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return declaredOutside(pass.Info, e, rng.Pos(), rng.End())
	case *ast.IndexExpr:
		return !mentionsAny(pass.Info, e.Index, rangeVars)
	case *ast.SelectorExpr:
		return true
	case *ast.StarExpr:
		return true
	}
	return false
}

// lhsMentioned reports whether expr mentions the object (or field
// selection) written by lhs.
func lhsMentioned(pass *Pass, lhs, expr ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := pass.Info.ObjectOf(l); obj != nil {
			return mentionsObject(pass.Info, expr, obj)
		}
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[l]; sel != nil {
			found := false
			ast.Inspect(expr, func(n ast.Node) bool {
				if s, ok := n.(*ast.SelectorExpr); ok {
					if other := pass.Info.Selections[s]; other != nil && other.Obj() == sel.Obj() {
						found = true
					}
				}
				return !found
			})
			return found
		}
	case *ast.IndexExpr:
		// res[k] = max(res[k], v): match on the indexed object.
		if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				return mentionsObject(pass.Info, expr, obj)
			}
		}
	}
	return false
}

// enclosingComparison returns the condition of the innermost if
// statement between the range body and the assignment when that
// condition is a float comparison, else nil.
func enclosingComparison(pass *Pass, rng *ast.RangeStmt, target *ast.AssignStmt) ast.Expr {
	var cond ast.Expr
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		ifSt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if !containsNode(ifSt.Body, target) {
			return true
		}
		if cmp, ok := ast.Unparen(ifSt.Cond).(*ast.BinaryExpr); ok {
			switch cmp.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				if isFloat(orNil(pass.TypeOf(cmp.X))) {
					cond = ifSt.Cond
				}
			}
		}
		return true
	})
	return cond
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
