package detcheck

import (
	"regexp"
	"testing"

	"afdx/internal/core/tol"
)

// TestRegistryWellFormed mirrors internal/lint's registry contract for
// the source-level suite: every analyzer carries a unique stable DET###
// code (DET000 reserved for the suite itself), a unique name, docs, a
// non-empty class set, and the registry lists them sorted.
func TestRegistryWellFormed(t *testing.T) {
	analyzers := Analyzers()
	if len(analyzers) < 6 {
		t.Fatalf("registry holds %d analyzers, want at least 6 (DET001..DET006)", len(analyzers))
	}
	codeRe := regexp.MustCompile(`^DET\d{3}$`)
	codes := map[string]bool{}
	names := map[string]bool{}
	prev := ""
	for _, a := range analyzers {
		if !codeRe.MatchString(a.ID) {
			t.Errorf("analyzer %q code %q is not DET###", a.Name, a.ID)
		}
		if a.ID == CodeMeta {
			t.Errorf("analyzer %q registered under the reserved meta code %s", a.Name, CodeMeta)
		}
		if codes[a.ID] {
			t.Errorf("duplicate analyzer code %s", a.ID)
		}
		codes[a.ID] = true
		if a.Name == "" {
			t.Errorf("analyzer %s has an empty name", a.ID)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s (%s) has no documentation", a.ID, a.Name)
		}
		if len(a.Classes) == 0 {
			t.Errorf("analyzer %s applies to no package class", a.ID)
		}
		if a.ID <= prev {
			t.Errorf("registry not sorted: %s listed after %s", a.ID, prev)
		}
		prev = a.ID
		if got := AnalyzerByID(a.ID); got != a {
			t.Errorf("AnalyzerByID(%s) does not round-trip", a.ID)
		}
	}
	for _, id := range []string{CodeFloatMapRange, CodeNondetSource, CodeUnsortedKeys,
		CodeTolLiteral, CodeDetCounterFanout, CodeCtxLoop} {
		if !codes[id] {
			t.Errorf("mandatory analyzer %s is not registered", id)
		}
	}
}

// TestEpsRelMatchesTol pins detcheck's mirrored epsilon to the real
// one: DET004's fix rewrites literals equal to epsRel into tol.EpsRel,
// which is only sound while the two constants agree.
func TestEpsRelMatchesTol(t *testing.T) {
	if epsRel != tol.EpsRel {
		t.Fatalf("detcheck epsRel = %g, tol.EpsRel = %g: the DET004 fix would rewrite the wrong literal", epsRel, tol.EpsRel)
	}
}

// TestClassify pins the import-path classification the analyzers gate
// on.
func TestClassify(t *testing.T) {
	cases := []struct {
		path string
		want PkgClass
	}{
		{"afdx/internal/netcalc", ClassEngine},
		{"afdx/internal/trajectory", ClassEngine},
		{"afdx/internal/exact", ClassEngine},
		{"afdx/internal/sim", ClassEngine},
		{"afdx/internal/minplus", ClassEngine},
		{"afdx/internal/incremental", ClassEngine},
		{"afdx/internal/core/tol", ClassTolerance},
		{"afdx/cmd/afdx-vet", ClassTool},
		{"afdx/internal/model", ClassSupport},
		{"afdx", ClassSupport},
	}
	for _, c := range cases {
		if got := Classify(c.path); got != c.want {
			t.Errorf("Classify(%q) = %s, want %s", c.path, got, c.want)
		}
	}
	paths := EnginePaths()
	if len(paths) != 6 {
		t.Errorf("EnginePaths lists %d packages, want 6", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if paths[i-1] >= paths[i] {
			t.Errorf("EnginePaths not sorted: %q before %q", paths[i-1], paths[i])
		}
	}
}
