package detcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// DET004 tolliteral: raw floating-point comparison-tolerance literals
// in engine comparisons. internal/core/tol is the single named home of
// the shared relative tolerance (tol.EpsRel, applied through tol.At /
// tol.Leq / tol.Gt); a raw 1e-9 at a comparison site silently re-opens
// the scale bug tol was built to close — absolute guards fall below one
// ulp once busy periods pass 1e6 us on 128 ms BAG configurations.
//
// Only literals inside comparisons are flagged (a hoisted, documented
// named constant is the sanctioned local form when the quantity is
// genuinely not a time-scale tolerance). Literals equal to tol.EpsRel
// carry a mechanical fix: rewrite to tol.EpsRel.
func init() {
	Register(&Analyzer{
		ID:   CodeTolLiteral,
		Name: "tolliteral",
		Doc: "forbids raw float comparison-tolerance literals (magnitude <= 1e-5) inside " +
			"engine comparisons: use tol.EpsRel / tol.At(scale) from internal/core/tol, or " +
			"hoist the value into a documented named constant when it is not a time-scale " +
			"tolerance.",
		Classes: []PkgClass{ClassEngine},
		Run:     runTolLiteral,
	})
}

// tolLiteralMax is the magnitude at or below which a float literal in a
// comparison reads as a tolerance. Engine quantities (microseconds,
// bits, ratios) are >= 1e-3 wherever they are meaningful.
const tolLiteralMax = 1e-5

// epsRel mirrors tol.EpsRel; detcheck cannot import internal/core/tol
// without creating a false engine dependency, and the registry test
// pins the two values equal.
const epsRel = 1e-9

func runTolLiteral(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch cmp.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				checkToleranceOperand(pass, cmp.X)
				checkToleranceOperand(pass, cmp.Y)
			}
			return true
		})
	}
}

// checkToleranceOperand flags small float literals anywhere inside one
// operand of a comparison (directly, or inside the arithmetic that
// builds the guard: b+1e-9, 1-1e-12, 1e-6*(1+|a|+|b|)).
func checkToleranceOperand(pass *Pass, operand ast.Expr) {
	ast.Inspect(operand, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			// Stop at calls except math.Abs/math.Max/math.Min wrappers:
			// a literal argument of an arbitrary call is that callee's
			// business, not a tolerance at this comparison.
			call := n.(*ast.CallExpr)
			f := calleeFunc(pass.Info, call)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "math" {
				return false
			}
			return true
		}
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.FLOAT {
			return true
		}
		tv, ok := pass.Info.Types[ast.Expr(lit)]
		if !ok || tv.Value == nil {
			return true
		}
		v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		if v <= 0 || v > tolLiteralMax {
			return true
		}
		if v == epsRel {
			pass.ReportFix(lit.Pos(), lit.End(), lit.Value, "tol.EpsRel",
				"replace the literal with tol.EpsRel (import afdx/internal/core/tol); "+
					"use tol.At(scale)/tol.Leq/tol.Gt when the compared values scale with time",
				"raw comparison-tolerance literal %s in engine code: the shared tolerance "+
					"lives in internal/core/tol", lit.Value)
			return true
		}
		pass.Reportf(lit.Pos(),
			"use tol.EpsRel/tol.At from internal/core/tol, or hoist the value into a "+
				"documented named constant stating why this site needs its own epsilon",
			"raw comparison-tolerance literal %s in engine code: the shared tolerance "+
				"lives in internal/core/tol", lit.Value)
		return true
	})
}
