package detcheck

import (
	"go/ast"
)

// DET005 detcounterfanout: obs.Counter increments lexically inside a
// closure handed to parallel.ForEach / ForEachCtx. Deterministic-class
// counters promise snapshot equality across runs and worker counts;
// that promise holds for batched counts flushed after the pool returns,
// but a per-item Inc inside a worker closure is schedule-coupled — on
// error runs the pool skips indices above the first failure, so the
// count depends on which workers got how far — and contends on one
// cache line for no observational gain. The sanctioned pattern is
// netcalc.analyzePort's: accumulate a local int64 inside the unit of
// work, flush one Add on the calling goroutine.
func init() {
	Register(&Analyzer{
		ID:   CodeDetCounterFanout,
		Name: "detcounterfanout",
		Doc: "forbids obs.Counter Inc/Add calls lexically inside a parallel.ForEach(Ctx) " +
			"closure: per-item increments from workers are schedule-coupled (error runs " +
			"skip indices) and break Deterministic-class snapshot equality. Batch into a " +
			"local and flush one Add after the pool returns.",
		Classes: []PkgClass{ClassEngine, ClassSupport, ClassTool, ClassTolerance},
		Run:     runDetCounterFanout,
	})
}

const parallelPkg = "afdx/internal/parallel"
const obsPkg = "afdx/internal/obs"

func runDetCounterFanout(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isPkgFunc(pass.Info, call, parallelPkg, "ForEach") &&
				!isPkgFunc(pass.Info, call, parallelPkg, "ForEachCtx") {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			fl, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			checkClosureCounters(pass, fl)
			return true
		})
	}
}

func checkClosureCounters(pass *Pass, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || (f.Name() != "Inc" && f.Name() != "Add") {
			return true
		}
		if !namedIs(recvNamed(pass.Info, call), obsPkg, "Counter") {
			return true
		}
		pass.Reportf(call.Pos(),
			"accumulate into a local int64 inside the unit of work and flush one "+
				"counter.Add(total) after the pool returns (the netcalc.analyzePort pattern)",
			"obs.Counter.%s inside a parallel.ForEach closure: per-item worker increments "+
				"are schedule-coupled and break Deterministic-class snapshot equality", f.Name())
		return true
	})
}
