package detcheck

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path"
)

// DET005 detcounterfanout: obs.Counter increments lexically inside a
// closure handed to parallel.ForEach / ForEachCtx. Deterministic-class
// counters promise snapshot equality across runs and worker counts;
// that promise holds for batched counts flushed after the pool returns,
// but a per-item Inc inside a worker closure is schedule-coupled — on
// error runs the pool skips indices above the first failure, so the
// count depends on which workers got how far — and contends on one
// cache line for no observational gain. The sanctioned pattern is
// netcalc.analyzePort's: accumulate a local int64 inside the unit of
// work, flush one Add on the calling goroutine.
//
// The analyzer additionally gates the operational-logging package: any
// package named oplog may register BestEffort metrics only. oplog is
// the observation plane's plumbing (runtime sampler, request logs,
// trace retention) — everything it measures is scheduling- and
// environment-coupled, so a Deterministic-class registration there
// would launder racy samples into the snapshot subset the determinism
// gates compare with DeepEqual.
func init() {
	Register(&Analyzer{
		ID:   CodeDetCounterFanout,
		Name: "detcounterfanout",
		Doc: "forbids obs.Counter Inc/Add calls lexically inside a parallel.ForEach(Ctx) " +
			"closure: per-item increments from workers are schedule-coupled (error runs " +
			"skip indices) and break Deterministic-class snapshot equality. Batch into a " +
			"local and flush one Add after the pool returns. Also forbids Deterministic-" +
			"class metric registrations inside the oplog package, whose runtime samples " +
			"are BestEffort by nature.",
		Classes: []PkgClass{ClassEngine, ClassSupport, ClassTool, ClassTolerance},
		Run:     runDetCounterFanout,
	})
}

const parallelPkg = "afdx/internal/parallel"
const obsPkg = "afdx/internal/obs"

func runDetCounterFanout(pass *Pass) {
	if path.Base(pass.Path) == "oplog" {
		checkOplogRegistrations(pass)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isPkgFunc(pass.Info, call, parallelPkg, "ForEach") &&
				!isPkgFunc(pass.Info, call, parallelPkg, "ForEachCtx") {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			fl, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			checkClosureCounters(pass, fl)
			return true
		})
	}
}

// checkOplogRegistrations flags obs.Registry registrations with class
// obs.Deterministic inside a package named oplog. The operational layer
// observes the runtime (heap, GC, goroutines, request latency) — those
// values race with scheduling by construction, so the only class it may
// register is BestEffort; a Deterministic registration there would leak
// nondeterministic samples into the snapshot subset compared by the
// bit-reproducibility gates.
func checkOplogRegistrations(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.Info, call)
			if f == nil {
				return true
			}
			switch f.Name() {
			case "Counter", "Gauge", "Histogram":
			default:
				return true
			}
			if !namedIs(recvNamed(pass.Info, call), obsPkg, "Registry") {
				return true
			}
			// The class is the registration's second argument. Only a
			// statically known Deterministic value is flagged; a class
			// forwarded through a variable stays quiet (the registering
			// caller's package is gated instead).
			if len(call.Args) < 2 || !classIsDeterministic(pass, call.Args[1]) {
				return true
			}
			pass.Reportf(call.Pos(),
				"register the metric as obs.BestEffort, or move the deterministic count "+
					"into the package that owns the work being counted",
				"obs.Registry.%s with class obs.Deterministic in package oplog: the "+
					"operational layer samples the runtime and may register BestEffort "+
					"metrics only", f.Name())
			return true
		})
	}
}

// classIsDeterministic reports whether the expression is a constant of
// the named type obs.Class whose value equals obs.Deterministic.
func classIsDeterministic(pass *Pass, e ast.Expr) bool {
	n, _ := pass.TypeOf(e).(*types.Named)
	if !namedIs(n, obsPkg, "Class") {
		return false
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Int64Val(tv.Value)
	return exact && v == 0
}

func checkClosureCounters(pass *Pass, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || (f.Name() != "Inc" && f.Name() != "Add") {
			return true
		}
		if !namedIs(recvNamed(pass.Info, call), obsPkg, "Counter") {
			return true
		}
		pass.Reportf(call.Pos(),
			"accumulate into a local int64 inside the unit of work and flush one "+
				"counter.Add(total) after the pool returns (the netcalc.analyzePort pattern)",
			"obs.Counter.%s inside a parallel.ForEach closure: per-item worker increments "+
				"are schedule-coupled and break Deterministic-class snapshot equality", f.Name())
		return true
	})
}
