package detcheck

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"afdx/internal/diag"
)

// Report is the outcome of running the suite over a set of packages.
type Report struct {
	// Findings holds every finding, suppressed ones included, sorted by
	// file/line/column/code.
	Findings []Finding `json:"findings"`
	// Packages counts the packages analysed.
	Packages int `json:"packages"`
	// Active and Suppressed count the findings by suppression state;
	// only Active findings gate.
	Active     int `json:"active"`
	Suppressed int `json:"suppressed"`
}

// Run loads the given patterns from the module rooted at root and runs
// every registered analyzer over every package.
func Run(root string, patterns ...string) (*Report, error) {
	pkgs, err := Load(root, patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs), nil
}

// RunPackages runs the suite over already-loaded packages.
func RunPackages(pkgs []*Package) *Report {
	rep := &Report{Findings: []Finding{}, Packages: len(pkgs)}
	for _, pkg := range pkgs {
		rep.Findings = append(rep.Findings, RunPackage(pkg)...)
	}
	sortFindings(rep.Findings)
	for _, f := range rep.Findings {
		if f.Suppressed {
			rep.Suppressed++
		} else {
			rep.Active++
		}
	}
	return rep
}

// ExitCode maps the report to the afdx-vet process exit contract:
// 0 clean (suppressed findings do not gate), 1 active findings.
// (Exit 2 — usage or load errors — is the CLI's, not the report's.)
func (r *Report) ExitCode() int {
	if r.Active > 0 {
		return 1
	}
	return 0
}

// Diagnostics renders the findings as internal/diag diagnostics — the
// shared currency of afdx-lint and afdx-vet: active findings are
// errors, suppressed ones informational.
func (r *Report) Diagnostics() []diag.Diagnostic {
	out := make([]diag.Diagnostic, 0, len(r.Findings))
	for _, f := range r.Findings {
		sev := diag.Error
		msg := f.Message
		if f.Suppressed {
			sev = diag.Info
			msg += " (suppressed: " + f.Justification + ")"
		}
		out = append(out, diag.Diagnostic{
			Code:       diag.Code(f.ID),
			Severity:   sev,
			Loc:        diag.Location{File: f.File, Line: f.Line},
			Message:    msg,
			Suggestion: f.Suggestion,
		})
	}
	return out
}

// WriteText renders the report for humans in afdx-lint's text shape:
// one line per finding, an indented fix suggestion, and a closing
// summary.
func (r *Report) WriteText(w io.Writer) error {
	for _, d := range r.Diagnostics() {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
		if d.Suggestion != "" {
			if _, err := fmt.Fprintf(w, "        fix: %s\n", d.Suggestion); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "afdx-vet: %d package(s), %d finding(s), %d suppressed\n",
		r.Packages, r.Active, r.Suppressed)
	return err
}

// WriteJSON renders the report as one indented JSON document. A clean
// report carries an empty findings array, not null.
func (r *Report) WriteJSON(w io.Writer) error {
	out := *r
	if out.Findings == nil {
		out.Findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// The SARIF 2.1.0 subset code scanners consume, mirroring
// internal/lint's writer with physical line regions.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	Name             string       `json:"name"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the report in SARIF 2.1.0: one run, one rule per
// registered analyzer (plus DET000), one result per finding with its
// physical source location.
func (r *Report) WriteSARIF(w io.Writer) error {
	driver := sarifDriver{Name: "afdx-vet", Rules: []sarifRule{{
		ID:               CodeMeta,
		Name:             "detcheck",
		ShortDescription: sarifMessage{Text: "detcheck"},
		FullDescription:  sarifMessage{Text: "malformed //detcheck: directives and packages that fail to load"},
	}}}
	for _, a := range Analyzers() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.ID,
			Name:             a.Name,
			ShortDescription: sarifMessage{Text: a.Name},
			FullDescription:  sarifMessage{Text: a.Doc},
		})
	}
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: []sarifResult{}}
	for _, f := range r.Findings {
		level := "error"
		if f.Suppressed {
			level = "note"
		}
		run.Results = append(run.Results, sarifResult{
			RuleID:  f.ID,
			Level:   level,
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File},
				Region:           &sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	})
}

// ApplyFixes applies every mechanical fix among the active findings to
// the files under root, highest offsets first so earlier edits do not
// shift later ones. It returns the number of edits applied.
func (r *Report) ApplyFixes(root string) (int, error) {
	byFile := map[string][]*Fix{}
	for i := range r.Findings {
		f := &r.Findings[i]
		if f.Fix != nil && !f.Suppressed {
			byFile[f.Fix.File] = append(byFile[f.Fix.File], f.Fix)
		}
	}
	applied := 0
	for file, fixes := range byFile {
		sort.Slice(fixes, func(i, j int) bool { return fixes[i].Offset > fixes[j].Offset })
		path := file
		if !filepath.IsAbs(path) {
			path = filepath.Join(root, path)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return applied, fmt.Errorf("detcheck: applying fixes: %v", err)
		}
		for _, fx := range fixes {
			if fx.Offset < 0 || fx.End > len(src) || fx.Offset > fx.End {
				return applied, fmt.Errorf("detcheck: fix range [%d,%d) out of bounds for %s", fx.Offset, fx.End, file)
			}
			if got := string(src[fx.Offset:fx.End]); got != fx.Old {
				return applied, fmt.Errorf("detcheck: fix mismatch in %s: found %q, expected %q (stale analysis?)", file, got, fx.Old)
			}
			src = append(src[:fx.Offset], append([]byte(fx.New), src[fx.End:]...)...)
			applied++
		}
		if err := os.WriteFile(path, src, 0o644); err != nil {
			return applied, fmt.Errorf("detcheck: writing fixed %s: %v", file, err)
		}
	}
	return applied, nil
}
