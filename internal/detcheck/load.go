package detcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, type-checked unit of analysis.
type Package struct {
	// Path is the import path (go list's ImportPath).
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Class is the determinism classification (by import path).
	Class PkgClass
	// Fset positions Files.
	Fset *token.FileSet
	// Files are the non-test sources, parsed with comments.
	Files []*ast.File
	// Types and Info are the type-checker's results. Type errors do not
	// abort the load (the build gate runs first); they surface as
	// DET000 findings so a broken tree cannot silently pass.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking failures.
	TypeErrors []error
}

// ModuleRoot walks up from dir to the directory holding go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("detcheck: no go.mod above %s", dir)
		}
		d = parent
	}
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
}

// Load resolves package patterns (./... and friends) with `go list`
// from the module rooted at root, parses every non-test source file,
// and type-checks each package against a shared source importer. The
// loader is stdlib-only and works fully offline: all imports resolve to
// the standard library or to packages inside the module.
func Load(root string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("detcheck: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("detcheck: decoding go list output: %v", err)
		}
		if !lp.Standard && len(lp.GoFiles) > 0 {
			listed = append(listed, lp)
		}
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })

	fset := token.NewFileSet()
	// One shared source importer: it type-checks dependencies from
	// source and caches them, so the whole tree is checked once.
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		pkg, err := loadOne(fset, imp, lp, root)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func loadOne(fset *token.FileSet, imp types.Importer, lp listedPackage, root string) (*Package, error) {
	pkg := &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Class: Classify(lp.ImportPath),
		Fset:  fset,
	}
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, relPath(root, path), mustRead(path), parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("detcheck: parsing %s: %v", path, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = newInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// The returned error duplicates the collected ones; the package is
	// still analysable with partial type information.
	pkg.Types, _ = conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
	return pkg, nil
}

// relPath renders path relative to root when possible so findings carry
// stable module-root-relative file names.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

func mustRead(path string) []byte {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil // surfaces as a parse error with the file name
	}
	return b
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// RunPackage runs every applicable registered analyzer over one package
// and returns its findings, suppressions applied, sorted by position.
func RunPackage(pkg *Package) []Finding {
	return runPackage(pkg, Analyzers())
}

func runPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	var directives []*allowDirective
	for _, f := range pkg.Files {
		directives = append(directives, parseDirectives(pkg.Fset, f, &findings)...)
	}
	for _, err := range pkg.TypeErrors {
		findings = append(findings, metaFinding(token.Position{Filename: pkg.Path},
			"package does not type-check: %v", err))
	}
	for _, a := range analyzers {
		if !a.applies(pkg.Class) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Class:    pkg.Class,
			Path:     pkg.Path,
			out:      &findings,
		}
		a.Run(pass)
	}
	findings = applyAllows(findings, directives)
	sortFindings(findings)
	return findings
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Col != fs[j].Col {
			return fs[i].Col < fs[j].Col
		}
		return fs[i].ID < fs[j].ID
	})
}
