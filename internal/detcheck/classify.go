package detcheck

import (
	"sort"
	"strings"
)

// PkgClass is a package's determinism classification. The class decides
// which analyzers inspect the package: the engines carry the full
// bit-reproducibility contract, support libraries carry the
// order-stability rules, CLI frontends are free to read clocks and
// environments.
type PkgClass int

const (
	// ClassSupport is the default: shared libraries (model, minplus
	// consumers, conformance, obs, ...) that feed results but are not
	// themselves a delay engine. Order-stability rules (DET001, DET003,
	// DET005) apply.
	ClassSupport PkgClass = iota
	// ClassEngine marks the delay-analysis engines under the full
	// determinism contract; every analyzer applies.
	ClassEngine
	// ClassTolerance marks internal/core/tol, the single sanctioned home
	// of raw comparison-tolerance literals (DET004 exempts it).
	ClassTolerance
	// ClassTool marks cmd/* CLI frontends: interactive surface, wall
	// clocks and environment reads are legitimate there. Only the
	// fan-out counter rule (DET005) applies.
	ClassTool
)

func (c PkgClass) String() string {
	switch c {
	case ClassEngine:
		return "engine"
	case ClassTolerance:
		return "tolerance"
	case ClassTool:
		return "tool"
	default:
		return "support"
	}
}

// ParseClass parses a class name as written in a //detcheck:classify
// directive (test harness only; production classification is by import
// path).
func ParseClass(s string) (PkgClass, bool) {
	switch s {
	case "engine":
		return ClassEngine, true
	case "tolerance":
		return ClassTolerance, true
	case "tool":
		return ClassTool, true
	case "support":
		return ClassSupport, true
	}
	return ClassSupport, false
}

// enginePaths lists the packages under the full determinism contract:
// every number they produce is covered by the bit-reproducibility and
// incremental-parity gates.
var enginePaths = map[string]bool{
	"afdx/internal/netcalc":     true,
	"afdx/internal/trajectory":  true,
	"afdx/internal/exact":       true,
	"afdx/internal/sim":         true,
	"afdx/internal/minplus":     true,
	"afdx/internal/incremental": true,
}

// Classify maps an import path to its package class. Unknown paths
// (including ad-hoc test packages) default to ClassSupport.
func Classify(importPath string) PkgClass {
	switch {
	case enginePaths[importPath]:
		return ClassEngine
	case importPath == "afdx/internal/core/tol":
		return ClassTolerance
	case strings.HasPrefix(importPath, "afdx/cmd/"):
		return ClassTool
	default:
		return ClassSupport
	}
}

// EnginePaths returns the engine package set, sorted, for documentation
// output (afdx-vet -rules).
func EnginePaths() []string {
	out := make([]string, 0, len(enginePaths))
	for p := range enginePaths {
		out = append(out, p)
	}
	// Sorted so the -rules listing is stable (the suite practices what
	// it preaches: DET003).
	sort.Strings(out)
	return out
}
