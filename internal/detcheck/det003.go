package detcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DET003 unsortedkeys: map keys (or values) collected into a slice that
// leaves the collecting function without an intervening sort. The slice
// inherits the randomized iteration order; once it flows into a result,
// a hash, a signature, or a caller, every downstream consumer becomes
// order-dependent. The check is function-local: a sort call anywhere in
// the same function (sort.*, slices.Sort*) discharges the obligation,
// which matches the repository's universal collect-sort-iterate idiom.
func init() {
	Register(&Analyzer{
		ID:   CodeUnsortedKeys,
		Name: "unsortedkeys",
		Doc: "forbids collecting map keys into a slice that escapes the collecting function " +
			"without being sorted: the slice inherits Go's randomized map iteration order. " +
			"Sort with sort.* or slices.Sort* before the slice flows onward.",
		Classes: []PkgClass{ClassEngine, ClassSupport},
		Run:     runUnsortedKeys,
	})
}

func runUnsortedKeys(pass *Pass) {
	for _, file := range pass.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			checkUnsortedKeys(pass, body)
		})
	}
}

// collectSite is one `s = append(s, k)` inside a map range.
type collectSite struct {
	slice types.Object
	pos   token.Pos
	name  string
}

func checkUnsortedKeys(pass *Pass, body *ast.BlockStmt) {
	var sites []collectSite
	sorted := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			if isMap(orNil(pass.TypeOf(st.X))) {
				sites = append(sites, appendSites(pass, st)...)
			}
		case *ast.CallExpr:
			for _, obj := range sortedArgs(pass, st) {
				sorted[obj] = true
			}
		}
		return true
	})
	for _, site := range sites {
		if !sorted[site.slice] {
			pass.Reportf(site.pos,
				"sort the slice before it flows onward (sort.Strings / sort.Slice / slices.Sort), "+
					"or build it from an already-sorted source",
				"map keys collected into %s, which is never sorted in this function: "+
					"the slice inherits randomized map iteration order", site.name)
		}
	}
}

// appendSites finds `s = append(s, expr...)` statements inside a map
// range where expr mentions a range variable and s outlives the loop.
func appendSites(pass *Pass, rng *ast.RangeStmt) []collectSite {
	rangeVars := rangeVarObjects(pass.Info, rng)
	if len(rangeVars) == 0 {
		return nil
	}
	var sites []collectSite
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if nested, ok := n.(*ast.RangeStmt); ok && nested != rng && isMap(orNil(pass.TypeOf(nested.X))) {
			return false // reported on its own
		}
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return true
		}
		id, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass.Info, call) || len(call.Args) < 2 {
			return true
		}
		appendsRangeVar := false
		for _, arg := range call.Args[1:] {
			if mentionsAny(pass.Info, arg, rangeVars) {
				appendsRangeVar = true
			}
		}
		if !appendsRangeVar {
			return true
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil || !declaredOutside(pass.Info, id, rng.Pos(), rng.End()) {
			return true
		}
		sites = append(sites, collectSite{slice: obj, pos: st.Pos(), name: id.Name})
		return true
	})
	return sites
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedArgs returns the objects passed to a sorting call: any function
// of package sort or slices, a sort.Sort adapter (sort.StringSlice(s)
// and friends count through the conversion), or a named sort helper —
// any function whose name starts with "sort"/"Sort", which is how the
// repository spells its comparator wrappers (afdx.SortPortIDs,
// sortPortIDs, ...).
func sortedArgs(pass *Pass, call *ast.CallExpr) []types.Object {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Pkg() == nil {
		return nil
	}
	pkg := f.Pkg().Path()
	if pkg != "sort" && pkg != "slices" &&
		!strings.HasPrefix(f.Name(), "sort") && !strings.HasPrefix(f.Name(), "Sort") {
		return nil
	}
	var objs []types.Object
	for _, arg := range call.Args {
		arg = ast.Unparen(arg)
		// Unwrap one conversion layer: sort.Sort(sort.StringSlice(s)).
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			arg = ast.Unparen(conv.Args[0])
		}
		if id, ok := arg.(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}
