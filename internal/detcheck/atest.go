package detcheck

import (
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// This file is the golden-test harness in the shape of
// golang.org/x/tools/go/analysis/analysistest: a testdata package whose
// offending lines carry `// want "regexp"` comments is loaded,
// type-checked, and analysed, and the findings are matched one-to-one
// against the expectations. It lives in the main package (not _test.go)
// so the afdx-vet CLI tests can reuse LoadDir.

// wantRe extracts the expectation regexps from a trailing want comment.
var wantRe = regexp.MustCompile(`// want (.*)$`)

// wantArgRe splits the quoted regexps of one want comment.
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// expectation is one `// want` entry: a file/line plus a message regexp.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// LoadDir loads every .go file directly under dir as one ad-hoc
// package, type-checked with the source importer (stdlib and
// module-internal imports both resolve offline). The package class
// honors a //detcheck:classify directive in the sources, defaulting to
// Classify(base name) — testdata packages use the directive to opt into
// the engine rule set.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkg := &Package{
		Path: filepath.Base(dir),
		Dir:  dir,
		Fset: fset,
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("detcheck: parsing %s: %v", path, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("detcheck: no Go files in %s", dir)
	}
	pkg.Class = Classify(pkg.Path)
	if cl, ok := classifyDirective(pkg.Files); ok {
		pkg.Class = cl
	}
	pkg.Info = newInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
	return pkg, nil
}

// TestingT is the subset of *testing.T the harness needs.
type TestingT interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunTest loads the testdata package under dir, runs exactly one
// analyzer over it, and matches the findings against the `// want`
// comments: every unsuppressed finding must be wanted, every want must
// be found. Suppressed findings must NOT be wanted (suppression is the
// point of the allow-case files); the returned report lets callers
// assert on suppression counts and fixes.
func RunTest(t TestingT, dir string, a *Analyzer) *Report {
	t.Helper()
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("testdata package %s does not type-check: %v", dir, pkg.TypeErrors[0])
	}
	if !a.applies(pkg.Class) {
		t.Fatalf("analyzer %s does not apply to class %s — fix the //detcheck:classify directive in %s",
			a.ID, pkg.Class, dir)
	}
	findings := runPackage(pkg, []*Analyzer{a})
	rep := &Report{Findings: findings, Packages: 1}
	for _, f := range findings {
		if f.Suppressed {
			rep.Suppressed++
		} else {
			rep.Active++
		}
	}

	wants := collectWants(t, pkg)
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		rendered := f.ID + " " + f.Message
		match := false
		for _, w := range wants {
			if w.matched || w.file != f.File || w.line != f.Line {
				continue
			}
			if w.re.MatchString(rendered) {
				w.matched = true
				match = true
				break
			}
		}
		if !match {
			t.Errorf("%s:%d: unexpected finding: %s", f.File, f.Line, rendered)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
	return rep
}

// collectWants scans the package comments for `// want "re"` entries.
func collectWants(t TestingT, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRe.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, a := range args {
					text := a[1]
					if text == "" {
						text = a[2]
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, text, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// Testdata returns the analyzer's golden corpus directory:
// testdata/src/<name> under the detcheck package directory (callers run
// with the package directory as working directory, the `go test`
// contract).
func Testdata(name string) string {
	return filepath.Join("testdata", "src", name)
}
