package det005

import (
	"context"

	"afdx/internal/obs"
	"afdx/internal/parallel"
)

// Positive cases: obs.Counter increments inside worker closures.

func perItemInc(reg *obs.Registry, n int) error {
	items := reg.Counter("det005.items", obs.Deterministic, "per-item increments")
	return parallel.ForEach(4, n, func(i int) error {
		items.Inc() // want `DET005 obs.Counter.Inc inside a parallel.ForEach closure`
		return nil
	})
}

func perItemAdd(ctx context.Context, reg *obs.Registry, sizes []int) error {
	bits := reg.Counter("det005.bits", obs.Deterministic, "bits seen")
	return parallel.ForEachCtx(ctx, 0, len(sizes), func(i int) error {
		bits.Add(int64(sizes[i])) // want `DET005 obs.Counter.Add inside a parallel.ForEach closure`
		return nil
	})
}

// Negative cases: the sanctioned batch-then-flush pattern, BestEffort
// histograms (scheduling observations are allowed to race), and
// counter increments in closures that never reach a pool.

func batched(reg *obs.Registry, sizes []int) error {
	totals := make([]int64, len(sizes))
	c := reg.Counter("det005.batched", obs.Deterministic, "batched bits")
	if err := parallel.ForEach(4, len(sizes), func(i int) error {
		totals[i] = int64(sizes[i])
		return nil
	}); err != nil {
		return err
	}
	var sum int64
	for _, t := range totals {
		sum += t
	}
	c.Add(sum)
	return nil
}

func histogramOK(reg *obs.Registry, n int) error {
	h := reg.Histogram("det005.occupancy", obs.BestEffort, "sampled occupancy")
	return parallel.ForEach(2, n, func(i int) error {
		h.Observe(int64(i))
		return nil
	})
}

func nonPoolClosure(reg *obs.Registry, n int) {
	c := reg.Counter("det005.sequential", obs.Deterministic, "sequential increments")
	run := func() { c.Inc() }
	for i := 0; i < n; i++ {
		run()
	}
}

// Suppression case.

func allowedInc(reg *obs.Registry, n int) error {
	c := reg.Counter("det005.allowed", obs.Deterministic, "allowed increments")
	return parallel.ForEach(1, n, func(i int) error {
		//detcheck:allow DET005: test corpus exercises the suppression path
		c.Inc()
		return nil
	})
}
