//detcheck:classify engine
package det002

import (
	"math/rand"
	"os"
	"time"
)

// Positive cases: wall clock, environment, global rand source, and
// arbitrary-element map capture.

func wallClock() time.Time {
	return time.Now() // want `DET002 engine code calls time.Now`
}

func sinceEpoch(t time.Time) time.Duration {
	return time.Since(t) // want `DET002 engine code calls time.Since`
}

func envRead() string {
	return os.Getenv("AFDX_MODE") // want `DET002 engine code calls os.Getenv`
}

func globalRand() int {
	return rand.Intn(8) // want `DET002 engine code calls the globally seeded math/rand.Intn`
}

func arbitraryElement(m map[string]int) string {
	first := ""
	for k := range m { // want `DET002 map range captures an arbitrary element`
		first = k
		break
	}
	return first
}

func arbitraryReturn(m map[string]int) string {
	for k := range m { // want `DET002 map range captures an arbitrary element`
		return k
	}
	return ""
}

// Negative cases: locally seeded sources, methods on *rand.Rand, full
// map iterations, and order-independent existence checks.

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(8)
}

func fullIteration(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func existenceCheck(m map[string]int) bool {
	found := false
	for k := range m {
		if k == "x" {
			found = true
			break
		}
	}
	return found
}

func minKey(m map[string]int) string {
	best := ""
	for k := range m {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// Suppression case.

func allowedClock() time.Time {
	//detcheck:allow DET002: test corpus exercises the suppression path
	return time.Now()
}
