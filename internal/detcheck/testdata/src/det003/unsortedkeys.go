//detcheck:classify engine
package det003

import (
	"slices"
	"sort"
)

// Positive cases: keys (or values) collected into a slice that leaves
// the function unsorted.

func unsortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // want `DET003 map keys collected into keys, which is never sorted`
	}
	return keys
}

func unsortedValues(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v) // want `DET003 map keys collected into vals, which is never sorted`
	}
	return vals
}

func unsortedIntoSignature(m map[string]int, hash func([]string) string) string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `DET003 map keys collected into keys, which is never sorted`
	}
	return hash(keys)
}

// Negative cases: every collect-then-sort idiom the repository uses.

func sortStrings(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortSlice(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func slicesSort(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func sortAdapter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Sort(sort.StringSlice(keys))
	return keys
}

func localSortHelper(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(keys []string) { sort.Strings(keys) }

func appendConstant(m map[string]int) []string {
	var tags []string
	for range m {
		tags = append(tags, "present")
	}
	return tags
}

func sliceRangeCollect(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Suppression case.

func allowedUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		//detcheck:allow DET003: test corpus exercises the suppression path
		keys = append(keys, k)
	}
	return keys
}
