//detcheck:classify engine
package det001

import (
	"math"
	"sort"
)

// Positive cases: float accumulation and min/max into loop-external
// state inside a map range.

func sumOverMap(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `DET001 floating-point accumulation into total`
	}
	return total
}

func maxViaMathMax(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		best = math.Max(best, v) // want `DET001 self-referential float update of best`
	}
	return best
}

func maxViaIf(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v // want `DET001 conditional min/max of best`
		}
	}
	return best
}

type accum struct{ total float64 }

func sumIntoField(m map[string]float64) accum {
	var a accum
	for _, v := range m {
		a.total += v // want `DET001 floating-point accumulation into a.total`
	}
	return a
}

func sumIntoForeignKey(m map[string]float64, out map[int]float64) {
	for _, v := range m {
		out[0] += v // want `DET001 floating-point accumulation into out\[0\]`
	}
}

// Negative cases: integer accumulation commutes exactly, slice ranges
// are ordered, per-range-key writes touch each key once, and local
// accumulators reset every iteration.

func countOverMap(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func intSumOverMap(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func sumOverSlice(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}

func perKeyWrite(m map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

func sortedKeySum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

func localPerIteration(m map[string][]float64) map[string]float64 {
	out := map[string]float64{}
	for k, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
	return out
}

// Suppression case: a justified allow directive on the line above the
// accumulation silences the finding.

func allowedSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		//detcheck:allow DET001: test corpus exercises the suppression path
		total += v
	}
	return total
}
