package oplog

import (
	"afdx/internal/obs"
)

// Positive cases: the operational-logging package registering
// Deterministic-class metrics. Everything oplog measures (heap, GC,
// latency, occupancy) races with scheduling, so the determinism gates
// must never see its numbers.

func badCounter(reg *obs.Registry) *obs.Counter {
	return reg.Counter("oplog.requests", obs.Deterministic, "served requests") // want `DET005 obs.Registry.Counter with class obs.Deterministic in package oplog`
}

func badHistogram(reg *obs.Registry) *obs.Histogram {
	return reg.Histogram("oplog.latency_us", obs.Deterministic, "request latency") // want `DET005 obs.Registry.Histogram with class obs.Deterministic in package oplog`
}

// Negative cases: BestEffort registrations are the sanctioned class
// for runtime samples, and a class forwarded through a parameter is
// the registering caller's responsibility, not oplog's.

func goodGauge(reg *obs.Registry) *obs.Gauge {
	return reg.Gauge("oplog.heap_alloc_bytes", obs.BestEffort, "sampled heap")
}

func goodHistogram(reg *obs.Registry) *obs.Histogram {
	return reg.Histogram("oplog.gc_pause_ns", obs.BestEffort, "GC pauses")
}

func forwardedClass(reg *obs.Registry, class obs.Class) *obs.Counter {
	return reg.Counter("oplog.forwarded", class, "caller-chosen class")
}

// Suppression case.

func allowedCounter(reg *obs.Registry) *obs.Counter {
	//detcheck:allow DET005: test corpus exercises the suppression path
	return reg.Counter("oplog.allowed", obs.Deterministic, "allowed registration")
}
