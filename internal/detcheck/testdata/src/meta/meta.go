//detcheck:classify engine
package meta

// Every directive below is deliberately defective; TestMetaDirectives
// asserts that each one is reported under the reserved DET000 code
// instead of being silently ignored.

//detcheck:allow DET001
func missingJustification() {}

//detcheck:allow DET999: not a registered analyzer code
func unknownCode() {}

//detcheck:frobnicate everything
func unknownDirective() {}

//detcheck:allow DET002: stale — nothing on this line trips DET002
func staleAllow() {}

//detcheck:classify nuclear
func unknownClass() {}
