//detcheck:classify engine
package det004

import "math"

// Positive cases: raw tolerance-magnitude float literals inside
// comparisons (directly, in guard arithmetic, and inside math wrappers).

func absTolerance(a, b float64) bool {
	return a <= b+1e-9 // want `DET004 raw comparison-tolerance literal 1e-9`
}

func nearUnity(u float64) bool {
	return u > 1-1e-12 // want `DET004 raw comparison-tolerance literal 1e-12`
}

func relClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b)) // want `DET004 raw comparison-tolerance literal 1e-6`
}

func flooredGuard(x, y float64) bool {
	return math.Max(x, 1e-9) >= y // want `DET004 raw comparison-tolerance literal 1e-9`
}

// Negative cases: named constants, coarse thresholds, literals outside
// comparisons, and literals that belong to a non-math callee.

const convergenceEps = 1e-9

func namedConstGuard(a, b float64) bool {
	return a <= b+convergenceEps
}

func coarseThreshold(u float64) bool {
	return u < 0.5
}

func scaledProduct(x float64) float64 {
	return x * 1e-9
}

func literalInCall(a float64, clamp func(v, floor float64) float64) bool {
	return clamp(a, 1e-9) > 0
}

// Suppression case.

func allowedTolerance(a, b float64) bool {
	//detcheck:allow DET004: test corpus exercises the suppression path
	return a <= b+1e-9
}
