//detcheck:classify engine
package det006

import "context"

// Positive cases: condition-free loops without a cancellation check,
// and huge literal iteration caps (a bail in disguise).

func fixpointNoCancel(x float64) float64 {
	for { // want `DET006 condition-free loop in engine code without a context cancellation check`
		nx := 0.5*x + 1
		if nx >= x {
			return nx
		}
		x = nx
	}
}

func bailCap(x float64) float64 {
	for i := 0; i < 2000000; i++ { // want `DET006 loop bounded only by the literal cap 2000000`
		x = 0.5*x + 1
	}
	return x
}

// Negative cases: loops that poll ctx.Err, select on ctx.Done, carry a
// modest literal bound, or derive their bound from the input.

func polledLoop(ctx context.Context, x float64) (float64, error) {
	for {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		nx := 0.5*x + 1
		if nx >= x {
			return nx, nil
		}
		x = nx
	}
}

func selectDone(ctx context.Context, in <-chan float64) float64 {
	total := 0.0
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-in:
			total += v
		}
	}
}

func smallBound(x float64) float64 {
	for i := 0; i < 64; i++ {
		x = 0.5*x + 1
	}
	return x
}

func derivedBound(xs []float64) float64 {
	s := 0.0
	for i := 0; i < len(xs); i++ {
		s += xs[i]
	}
	return s
}

func hugeCapPolled(ctx context.Context, x float64) (float64, error) {
	for i := 0; i < 5000000; i++ {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		x = 0.5*x + 1
	}
	return x, nil
}

// Suppression case.

func allowedSpin(step func() bool) {
	//detcheck:allow DET006: test corpus exercises the suppression path
	for {
		if step() {
			return
		}
	}
}
