package conformance

import (
	"path/filepath"
	"testing"

	"afdx/internal/afdx"
)

// TestReplayCorpus re-runs the full invariant lattice over every
// configuration in testdata/: the replay corpus of shrunk reproductions
// and distilled regressions. A configuration lands here because it once
// exposed a bug (or pins one fixed before the corpus existed), so every
// entry must stay lattice-clean forever — this test is what turns a
// one-off campaign catch into a permanent go-test regression.
func TestReplayCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("replay corpus is empty — testdata/*.json should hold at least the PR 2 regressions")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			net, err := afdx.LoadJSON(f, afdx.Strict)
			if err != nil {
				t.Fatalf("corpus entry does not load: %v", err)
			}
			vs, err := NewOracle().Check(net)
			if err != nil {
				t.Fatalf("corpus entry is not analysable: %v", err)
			}
			for _, v := range vs {
				t.Errorf("violation: %s", v)
			}
		})
	}
}
