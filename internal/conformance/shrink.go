package conformance

import (
	"context"

	"afdx/internal/afdx"
	"afdx/internal/obs"
)

// cloneNetwork deep-copies a network through the model's JSON-codec
// clone (see afdx.Network.Clone).
func cloneNetwork(n *afdx.Network) *afdx.Network { return n.Clone() }

// Shrink minimises a violating configuration: starting from net — on
// which the oracle reported a violation of invariant inv — it greedily
// applies structure-removing transformations (drop VLs, collapse
// multicast path sets, shrink frame sizes) and keeps every candidate on
// which the same invariant still fails, until no transformation makes
// progress or the evaluation budget (oracle re-runs) is exhausted.
//
// The result is the smallest reproducing network found, ready for the
// replay corpus. Shrinking re-checks candidates with only the tiers
// that can produce inv — re-running the rest of the lattice on every
// candidate slows convergence without changing which candidates are
// kept (the corpus replay re-runs the full lattice on the result) —
// and, when the oracle is incremental, with a cache pool persisted
// across candidates so each re-check pays only for what the last
// transformation changed.
func (o *Oracle) Shrink(net *afdx.Network, inv Invariant, budget int) *afdx.Network {
	return o.ShrinkCtx(context.Background(), net, inv, budget)
}

// ShrinkCtx is Shrink with observability: the minimisation runs under
// a "shrink" span, and the context registry counts kept transformation
// steps and oracle re-runs (both BestEffort: shrinking only happens
// after a violation, whose discovery may itself be budget-dependent).
func (o *Oracle) ShrinkCtx(ctx context.Context, net *afdx.Network, inv Invariant, budget int) *afdx.Network {
	ctx, span := obs.StartSpan(ctx, "shrink")
	defer span.End()
	var steps, runs *obs.Counter
	if reg := obs.RegistryFrom(ctx); reg != nil {
		steps = reg.Counter("conformance.shrink_steps", obs.BestEffort,
			"structure-removing transformations the shrinker kept")
		runs = reg.Counter("conformance.shrink_oracle_runs", obs.BestEffort,
			"oracle re-runs spent minimising violating configurations")
	}
	if budget <= 0 {
		budget = 200
	}
	inner := *o
	// stillFails below only asks whether inv reproduces, so the inner
	// oracle runs just the tiers that can produce it (violations of
	// other invariants would be discarded anyway).
	inner.only = inv
	inner.SkipMetamorphic = false // `only` already restricts the tiers
	if inner.Incremental {
		// One pool for the whole minimisation: successive candidates
		// differ by one greedy transformation, so most port and path
		// outcomes carry over between oracle re-runs. The shrinker is
		// sequential, satisfying the pool's single-writer contract.
		inner.pool = newEnginePool()
	}
	evals := 0
	stillFails := func(cand *afdx.Network) bool {
		if evals >= budget {
			return false
		}
		evals++
		runs.Inc()
		vs, err := inner.CheckCtx(ctx, cand)
		if err != nil {
			return false // a candidate the engines reject is no repro
		}
		for _, v := range vs {
			if v.Invariant == inv {
				steps.Inc() // the candidate reproduces: this transformation is kept
				return true
			}
		}
		return false
	}

	cur := cloneNetwork(net)
	for progress := true; progress && evals < budget; {
		progress = false
		// Pass 1: drop whole VLs, largest index first so the survivors
		// keep stable identifiers. Each pass stops cloning once the
		// budget is spent — stillFails would reject the candidates
		// unevaluated, so building them is pure waste.
		for i := len(cur.VLs) - 1; i >= 0 && len(cur.VLs) > 1 && evals < budget; i-- {
			cand := cloneNetwork(cur)
			cand.VLs = append(cand.VLs[:i], cand.VLs[i+1:]...)
			pruneNodes(cand)
			if stillFails(cand) {
				cur = cand
				progress = true
			}
		}
		// Pass 2: collapse each VL's multicast path set to one path.
		for i := range cur.VLs {
			if len(cur.VLs[i].Paths) <= 1 || evals >= budget {
				continue
			}
			for keep := 0; keep < len(cur.VLs[i].Paths) && evals < budget; keep++ {
				cand := cloneNetwork(cur)
				cand.VLs[i].Paths = [][]string{cand.VLs[i].Paths[keep]}
				pruneNodes(cand)
				if stillFails(cand) {
					cur = cand
					progress = true
					break
				}
			}
		}
		// Pass 3: shrink frame sizes to the Ethernet minimum.
		for i := range cur.VLs {
			if cur.VLs[i].SMaxBytes <= afdx.MinFrameBytes || evals >= budget {
				continue
			}
			cand := cloneNetwork(cur)
			cand.VLs[i].SMaxBytes = afdx.MinFrameBytes
			cand.VLs[i].SMinBytes = afdx.MinFrameBytes
			if stillFails(cand) {
				cur = cand
				progress = true
			}
		}
	}
	return cur
}

// pruneNodes removes end systems and switches no remaining VL path
// visits (dropping VLs orphans nodes, which only adds lint noise to the
// replay corpus).
func pruneNodes(n *afdx.Network) {
	used := map[string]bool{}
	for _, v := range n.VLs {
		for _, p := range v.Paths {
			for _, node := range p {
				used[node] = true
			}
		}
	}
	keep := func(ids []string) []string {
		out := ids[:0]
		for _, id := range ids {
			if used[id] {
				out = append(out, id)
			}
		}
		return out
	}
	n.EndSystems = keep(n.EndSystems)
	n.Switches = keep(n.Switches)
}
