package conformance

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
	"afdx/internal/netcalc"
	"afdx/internal/trajectory"
)

// TestCampaignClean pins the oracle's ground truth: a small campaign
// over the real engines finds no violation.
func TestCampaignClean(t *testing.T) {
	rep, err := Run(Options{N: 10, Seed: 3, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("real engines violated the lattice: %v", rep.FailingInvariants())
	}
	if rep.Checked != 10 || rep.Skipped != 0 {
		t.Fatalf("checked %d, skipped %d, want 10/0", rep.Checked, rep.Skipped)
	}
}

// TestCampaignParallelDeterminism: the report's verdicts are identical
// for every worker count (timing fields live outside the verdicts).
func TestCampaignParallelDeterminism(t *testing.T) {
	seq, err := Run(Options{N: 8, Seed: 11, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(Options{N: 8, Seed: 11, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Verdicts, par.Verdicts) {
		t.Errorf("verdicts differ between -parallel 1 and -parallel 4:\nseq: %+v\npar: %+v",
			seq.Verdicts, par.Verdicts)
	}
}

// TestCampaignRejectsBadOptions pins the usage contract.
func TestCampaignRejectsBadOptions(t *testing.T) {
	if _, err := Run(Options{N: 0}); err == nil {
		t.Error("N=0 should be rejected")
	}
	if _, err := Run(Options{N: -3}); err == nil {
		t.Error("negative N should be rejected")
	}
}

// TestOracleCatchesInjectedFault is the oracle's own acceptance test:
// a deliberately optimistic Network Calculus engine (bounds halved)
// must be caught, and the shrinker must reduce the reproducing
// configuration to at most 5 VLs.
func TestOracleCatchesInjectedFault(t *testing.T) {
	o := FaultyOracle(FaultNCOptimistic)
	net, err := configgen.Generate(campaignSpec(1, 1)) // a non-tiny config
	if err != nil {
		t.Fatal(err)
	}
	if len(net.VLs) <= 5 {
		t.Fatalf("want a config with > 5 VLs to make shrinking meaningful, got %d", len(net.VLs))
	}
	vs, err := o.Check(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("oracle failed to catch the halved NC bounds")
	}
	caught := map[Invariant]bool{}
	for _, v := range vs {
		caught[v.Invariant] = true
	}
	if !caught[InvCombinedMin] {
		t.Errorf("expected a combined-min violation (faulty oracle engine vs the library's), got %v", vs)
	}
	if !caught[InvSimVsNC] {
		t.Errorf("expected a sim-vs-nc violation (halved bound below observed delay), got %v", vs)
	}

	small := o.Shrink(net, InvSimVsNC, 60)
	if n := len(small.VLs); n > 5 {
		t.Errorf("shrinker left %d VLs, want <= 5", n)
	}
	// The shrunk config must still reproduce the violation…
	svs, err := o.Check(small)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range svs {
		if v.Invariant == InvSimVsNC {
			found = true
		}
	}
	if !found {
		t.Errorf("shrunk config no longer reproduces sim-vs-nc: %v", svs)
	}
	// …and stay a valid, loadable configuration.
	if err := small.Validate(afdx.Strict); err != nil {
		t.Errorf("shrunk config does not validate: %v", err)
	}
}

// TestOracleCatchesTrajectoryFault mirrors the NC fault test for the
// other engine.
func TestOracleCatchesTrajectoryFault(t *testing.T) {
	o := FaultyOracle(FaultTrajectoryOptimistic)
	net, err := configgen.Generate(campaignSpec(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	vs, err := o.Check(net)
	if err != nil {
		t.Fatal(err)
	}
	caught := map[Invariant]bool{}
	for _, v := range vs {
		caught[v.Invariant] = true
	}
	if !caught[InvCombinedMin] && !caught[InvSimVsTrajectory] {
		t.Errorf("halved trajectory bounds went uncaught: %v", vs)
	}
}

// TestShrinkPrunesOrphanNodes: dropping VLs must not leave unreferenced
// end systems or switches in the replay corpus.
func TestShrinkPrunesOrphanNodes(t *testing.T) {
	o := FaultyOracle(FaultNCOptimistic)
	net, err := configgen.Generate(campaignSpec(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	small := o.Shrink(net, InvSimVsNC, 40)
	used := map[string]bool{}
	for _, v := range small.VLs {
		for _, p := range v.Paths {
			for _, n := range p {
				used[n] = true
			}
		}
	}
	for _, es := range small.EndSystems {
		if !used[es] {
			t.Errorf("orphan end system %q survived shrinking", es)
		}
	}
	for _, sw := range small.Switches {
		if !used[sw] {
			t.Errorf("orphan switch %q survived shrinking", sw)
		}
	}
}

// TestRegressNetcalcWobble pins PR 2's map-range float-accumulation bug:
// repeated and parallel Network Calculus runs over a configuration with
// many input groups must be bit-identical. The corpus config is also
// re-checked against the full lattice, and a two-priority variant
// exercises the sorted-priority-level accumulation (netcalc only — the
// Trajectory engine is FIFO-only, like the paper's).
func TestRegressNetcalcWobble(t *testing.T) {
	net, err := afdx.LoadJSON(filepath.Join("testdata", "regress-netcalc-wobble.json"), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := NewOracle().Check(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("corpus config violates the lattice: %v", vs)
	}

	// Two-priority variant: demote every other VL and re-run the NC
	// engine repeatedly; any map-iteration float wobble shows up as a
	// run-to-run difference.
	for i, v := range net.VLs {
		if i%2 == 1 {
			v.Priority = 1
		}
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := netcalc.Analyze(pg, netcalc.Options{Grouping: true, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		for _, workers := range []int{1, 3} {
			got, err := netcalc.Analyze(pg, netcalc.Options{Grouping: true, Parallel: workers})
			if err != nil {
				t.Fatal(err)
			}
			for pid, d := range ref.PathDelays {
				if got.PathDelays[pid] != d {
					t.Fatalf("run %d (workers %d): path %v: %v != %v (float wobble regressed)",
						run, workers, pid, got.PathDelays[pid], d)
				}
			}
			for id, pr := range ref.Ports {
				if got.Ports[id].DelayUs != pr.DelayUs {
					t.Fatalf("run %d (workers %d): port %v delay wobbled", run, workers, id)
				}
			}
		}
	}
}

// TestRegressTrajectoryBusyPeriod pins PR 2's sourceBusyPeriod fix: on
// a 95%-utilization configuration the busy-period fixpoint must
// converge (this test completing is the regression), and pushing the
// same configuration over the stability edge must fail promptly with a
// coherent error instead of iterating toward a bail-out.
func TestRegressTrajectoryBusyPeriod(t *testing.T) {
	net, err := afdx.LoadJSON(filepath.Join("testdata", "regress-trajectory-busyperiod.json"), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	for _, grouping := range []bool{true, false} {
		r, err := trajectory.Analyze(pg, trajectory.Options{Grouping: grouping, Parallel: 1})
		if err != nil {
			t.Fatalf("grouping=%v: %v", grouping, err)
		}
		for pid, d := range r.PathDelays {
			if d <= 0 || d != d { // non-positive or NaN
				t.Fatalf("grouping=%v: path %v has incoherent bound %v", grouping, pid, d)
			}
		}
	}

	// Over the edge: at 40 Mb/s the busiest port's utilization is
	// ~2.4 — both engines must reject the configuration immediately.
	over := cloneNetwork(net)
	over.Params.LinkRateMbps = 40
	opg, err := afdx.BuildPortGraph(over, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trajectory.Analyze(opg, trajectory.DefaultOptions()); err == nil {
		t.Error("trajectory accepted an unstable configuration")
	} else if !strings.Contains(err.Error(), "AFDX001") {
		t.Errorf("trajectory error does not cite the stability diagnostic: %v", err)
	}
	if _, err := netcalc.Analyze(opg, netcalc.DefaultOptions()); err == nil {
		t.Error("netcalc accepted an unstable configuration")
	}
}

// TestCampaignBudget: an immediately-expired budget skips scheduling
// but still accounts for every configuration.
func TestCampaignBudget(t *testing.T) {
	rep, err := Run(Options{N: 50, Seed: 1, Parallel: 1, Budget: 1}) // 1ns
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked+rep.Skipped != 50 {
		t.Fatalf("checked %d + skipped %d != 50", rep.Checked, rep.Skipped)
	}
	if rep.Skipped == 0 {
		t.Error("a 1ns budget should skip configurations")
	}
}
