package conformance

import (
	"context"
	"fmt"
	"math/rand"

	"afdx/internal/afdx"
	"afdx/internal/incremental"
	"afdx/internal/netcalc"
	"afdx/internal/trajectory"
)

// enginePool holds the incremental caches the oracle's reference runs
// route through when Oracle.Incremental is set: one netcalc.Cache and
// one trajectory.Cache per engine option set (Parallel excluded — the
// caches are worker-count agnostic by contract). Trajectory caches
// share the default-options netcalc cache for their internal NC prefix
// runs, so a grouped trajectory run's prefix is a pure hit off the
// grouped NC reference run.
//
// A pool is single-writer, like the caches it holds: the shrinker owns
// a persistent one across its (sequential) candidate evaluations, and
// CheckCtx otherwise builds a transient per-call pool, keeping the
// shared Oracle safe under the campaign's config-level parallelism.
type enginePool struct {
	nc map[netcalc.Options]*netcalc.Cache
	tr map[trajectory.Options]*trajectory.Cache
}

func newEnginePool() *enginePool {
	return &enginePool{
		nc: map[netcalc.Options]*netcalc.Cache{},
		tr: map[trajectory.Options]*trajectory.Cache{},
	}
}

func (p *enginePool) ncCache(opts netcalc.Options) *netcalc.Cache {
	opts.Parallel = 0
	c := p.nc[opts]
	if c == nil {
		c = netcalc.NewCache(opts)
		// All the pool's caches share one per-graph fingerprint memo:
		// each candidate graph is fingerprinted once, not once per
		// option set.
		for _, donor := range p.nc {
			c.ShareGraphMemo(donor)
			break
		}
		p.nc[opts] = c
	}
	return c
}

func (p *enginePool) trCache(opts trajectory.Options) *trajectory.Cache {
	opts.Parallel = 0
	c := p.tr[opts]
	if c == nil {
		c = trajectory.NewCacheWithPrefix(opts, p.ncCache(netcalc.DefaultOptions()))
		// Same prefix cache ⇒ same dependency values: share the tracker
		// so each candidate's dependencies are folded in once, not once
		// per trajectory option set.
		for _, donor := range p.tr {
			c.ShareDeps(donor)
			break
		}
		p.tr[opts] = c
	}
	return c
}

// checkIncremental asserts the incremental-parity invariant: a what-if
// session's results after each delta of a tightening sequence are
// bit-identical to cold engine runs on the mutated configuration, and
// identical across session worker counts. The deltas are drawn
// deterministically from SimSeed (double one BAG, halve one s_max,
// drop one VL), so the checked sequence is a pure function of the
// configuration and seed.
func (o *Oracle) checkIncremental(ctx context.Context, net *afdx.Network) ([]Violation, error) {
	workers := o.ParityWorkers
	if workers <= 0 {
		workers = 4
	}
	mkOpts := func(par int) incremental.Options {
		return incremental.Options{
			Mode:       afdx.Strict,
			NC:         netcalc.Options{Grouping: true, Parallel: par},
			Trajectory: trajectory.Options{Grouping: true, Parallel: par},
		}
	}
	sessSeq, err := incremental.NewSession(net, mkOpts(1))
	if err != nil {
		return nil, fmt.Errorf("conformance: incremental session: %w", err)
	}
	sessPar, err := incremental.NewSession(net, mkOpts(workers))
	if err != nil {
		return nil, fmt.Errorf("conformance: incremental session: %w", err)
	}

	rng := rand.New(rand.NewSource(o.SimSeed))
	pick := func(cur *afdx.Network, ok func(*afdx.VirtualLink) bool) *afdx.VirtualLink {
		var cands []*afdx.VirtualLink
		for _, v := range cur.VLs {
			if ok(v) {
				cands = append(cands, v)
			}
		}
		if len(cands) == 0 {
			return nil
		}
		return cands[rng.Intn(len(cands))]
	}
	// Each delta is drawn against the session's *current* state, so the
	// sequence composes (e.g. the s_max halving may hit the VL whose BAG
	// the first delta doubled).
	nextDelta := func(step int) *incremental.Delta {
		cur := sessSeq.Network()
		switch step {
		case 0:
			if v := pick(cur, func(v *afdx.VirtualLink) bool { return v.BAGMs < afdx.MaxBAGMs }); v != nil {
				return &incremental.Delta{Op: incremental.OpSetBAG, VL: v.ID, BAGMs: v.BAGMs * 2}
			}
		case 1:
			if v := pick(cur, func(v *afdx.VirtualLink) bool { return v.SMaxBytes > afdx.MinFrameBytes }); v != nil {
				return &incremental.Delta{Op: incremental.OpSetSMax, VL: v.ID, SMaxBytes: maxInt(afdx.MinFrameBytes, v.SMaxBytes/2)}
			}
		case 2:
			if len(cur.VLs) >= 2 {
				v := cur.VLs[rng.Intn(len(cur.VLs))]
				return &incremental.Delta{Op: incremental.OpRemoveVL, VL: v.ID}
			}
		}
		return nil
	}

	var vs []Violation
	for step := 0; step < 3; step++ {
		d := nextDelta(step)
		if d == nil {
			continue
		}
		resSeq, err := sessSeq.WhatIf(ctx, *d)
		if err != nil {
			return nil, fmt.Errorf("conformance: incremental step %q: %w", d, err)
		}
		resPar, err := sessPar.WhatIf(ctx, *d)
		if err != nil {
			return nil, fmt.Errorf("conformance: incremental step %q (parallel): %w", d, err)
		}
		// Cold anchors: fresh engine runs on the mutated configuration,
		// outside any cache.
		pg, err := afdx.BuildPortGraph(sessSeq.Network(), afdx.Strict)
		if err != nil {
			return nil, fmt.Errorf("conformance: incremental step %q: %w", d, err)
		}
		ncCold, err := o.Engines.NC(ctx, pg, netcalc.Options{Grouping: true, Parallel: 1})
		if err != nil {
			return nil, fmt.Errorf("conformance: incremental step %q cold netcalc: %w", d, err)
		}
		trCold, err := o.Engines.Trajectory(ctx, pg, trajectory.Options{Grouping: true, Parallel: 1})
		if err != nil {
			return nil, fmt.Errorf("conformance: incremental step %q cold trajectory: %w", d, err)
		}
		label := fmt.Sprintf("after %q: ", d)
		vs = append(vs, diffPathDelays(InvIncrementalParity, label+"netcalc incremental vs cold", ncCold.PathDelays, resSeq.NC.PathDelays)...)
		vs = append(vs, diffPathDelays(InvIncrementalParity, label+"trajectory incremental vs cold", trCold.PathDelays, resSeq.Trajectory.PathDelays)...)
		vs = append(vs, diffPathDelays(InvIncrementalParity, label+"netcalc parallel vs sequential session", resSeq.NC.PathDelays, resPar.NC.PathDelays)...)
		vs = append(vs, diffPathDelays(InvIncrementalParity, label+"trajectory parallel vs sequential session", resSeq.Trajectory.PathDelays, resPar.Trajectory.PathDelays)...)
	}
	return vs, nil
}
