package conformance

import (
	"context"

	"afdx/internal/afdx"
	"afdx/internal/netcalc"
)

// This file is the tightness/cost-ladder tier of the oracle: the NC
// engine's selectable analysis tiers (TFA, WCNC, FIFO) are all sound
// bounds on the same worst case, so they must order — a cheaper tier is
// never tighter than a costlier one, and the behavioural chain
// (simulation, exact search) must stay below even the tightest tier.
// Each non-default tier is also held to the determinism contract:
// bit-identical bounds at every worker count.

// tierOptions returns the oracle's engine options for one NC analysis
// tier: the grouped paper defaults with the tier selected.
func tierOptions(a netcalc.Analysis, workers int) netcalc.Options {
	return netcalc.Options{Grouping: true, Analysis: a, Parallel: workers}
}

// tierSelected reports whether the tier-ordering leg covers the given
// non-default tier (see Oracle.Tiers; WCNC always runs as the
// reference, so selecting it adds nothing).
func (o *Oracle) tierSelected(a netcalc.Analysis) bool {
	if len(o.Tiers) == 0 {
		return a != netcalc.AnalysisWCNC
	}
	for _, t := range o.Tiers {
		if t == a {
			return a != netcalc.AnalysisWCNC
		}
	}
	return false
}

// checkTiers asserts the cross-tier ordering FIFO <= WCNC <= TFA on
// every path (at the repository-wide relative tolerance) and the
// parallel parity of the non-default tiers. ncT/ncG/ncF are the
// sequential reference runs of the TFA, WCNC and FIFO tiers; ncT and
// ncF are nil when Oracle.Tiers deselects them.
func (o *Oracle) checkTiers(ctx context.Context, pg *afdx.PortGraph, ncT, ncG, ncF *netcalc.Result) []Violation {
	var vs []Violation
	for _, pid := range sortedPathKeys(ncG.PathDelays) {
		wcnc := ncG.PathDelays[pid]
		if ncT != nil {
			switch tfa, ok := ncT.PathDelays[pid]; {
			case !ok:
				vs = append(vs, Violation{InvTierOrdering, pid, 0, wcnc, "TFA tier lost the path"})
			case !leq(wcnc, tfa):
				vs = append(vs, Violation{InvTierOrdering, pid, wcnc, tfa,
					"TFA tier tighter than WCNC (a cheaper tier must never be tighter)"})
			}
		}
		if ncF != nil {
			switch fifo, ok := ncF.PathDelays[pid]; {
			case !ok:
				vs = append(vs, Violation{InvTierOrdering, pid, 0, wcnc, "FIFO tier lost the path"})
			case !leq(fifo, wcnc):
				vs = append(vs, Violation{InvTierOrdering, pid, fifo, wcnc,
					"FIFO tier looser than WCNC (a costlier tier must never be looser)"})
			}
		}
	}

	// Non-default tiers carry the same determinism contract as the
	// default: a multi-worker run is bit-identical to the sequential
	// reference (the WCNC tier's parity lives in checkDeterminism).
	workers := o.ParityWorkers
	if workers <= 0 {
		workers = 4
	}
	for _, tc := range []struct {
		tier netcalc.Analysis
		ref  *netcalc.Result
	}{
		{netcalc.AnalysisTFA, ncT},
		{netcalc.AnalysisFIFO, ncF},
	} {
		if tc.ref == nil {
			continue
		}
		par, err := o.Engines.NC(ctx, pg, tierOptions(tc.tier, workers))
		if err != nil {
			vs = append(vs, Violation{InvParallelParity, afdx.PathID{}, 0, 0,
				"netcalc " + tc.tier.String() + " tier parallel run failed: " + err.Error()})
			continue
		}
		vs = append(vs, diffPathDelays(InvParallelParity, "netcalc "+tc.tier.String()+" tier",
			tc.ref.PathDelays, par.PathDelays)...)
	}
	return vs
}
