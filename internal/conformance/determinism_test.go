package conformance

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/obs"
)

// TestDiffPathDelaysDeterministicOrder guards the sorted-key walk in
// diffPathDelays: the violation list must come out in canonical
// (VL, PathIdx) order on every call, never in map iteration order.
func TestDiffPathDelaysDeterministicOrder(t *testing.T) {
	a := map[afdx.PathID]float64{}
	b := map[afdx.PathID]float64{}
	for i := 0; i < 32; i++ {
		pid := afdx.PathID{VL: fmt.Sprintf("v%02d", i), PathIdx: i % 3}
		a[pid] = float64(i)
		b[pid] = float64(i)
		if i%2 == 0 {
			b[pid] = float64(i) + 0.5 // every even path differs
		}
	}
	first := diffPathDelays(InvRepeatability, "netcalc", a, b)
	if len(first) != 16 {
		t.Fatalf("got %d violations, want 16", len(first))
	}
	for i := 1; i < len(first); i++ {
		p, q := first[i-1].Path, first[i].Path
		if p.VL > q.VL || (p.VL == q.VL && p.PathIdx >= q.PathIdx) {
			t.Fatalf("violations out of order at %d: %v before %v", i, p, q)
		}
	}
	for i := 0; i < 30; i++ {
		if vs := diffPathDelays(InvRepeatability, "netcalc", a, b); !reflect.DeepEqual(vs, first) {
			t.Fatalf("call %d: violation list differs:\n got %v\nwant %v", i, vs, first)
		}
	}
}

// TestCampaignCountersMatchReport guards the batch-then-flush counter
// pattern in RunCtx: the per-item Inc calls inside the worker pool were
// replaced by a single post-pool flush, so the observed counters must
// equal the report's own tallies exactly.
func TestCampaignCountersMatchReport(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	rep, err := RunCtx(ctx, Options{N: 8, Seed: 5, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	fullyChecked := int64(0)
	for _, v := range rep.Verdicts {
		if !v.Skipped && v.GenError == "" {
			fullyChecked++
		}
	}
	checked := reg.Counter("conformance.configs_checked", obs.BestEffort, "").Value()
	if checked != fullyChecked {
		t.Fatalf("configs_checked = %d, want %d (fully checked verdicts)", checked, fullyChecked)
	}
	viol := reg.Counter("conformance.violations", obs.BestEffort, "").Value()
	if viol != int64(rep.NumViolations) {
		t.Fatalf("violations counter = %d, want %d (report tally)", viol, rep.NumViolations)
	}
}
