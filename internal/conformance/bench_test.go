package conformance

import "testing"

// Oracle-throughput benchmarks: one op is a 16-configuration campaign
// (the same family either way — the report is deterministic across
// worker counts, so Seq vs Par measures pure wall time). `make bench-pr3`
// pairs the two into BENCH_PR3.json via cmd/afdx-benchjson.
func benchCampaign(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Run(Options{N: 16, Seed: 42, Parallel: workers})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatalf("benchmark campaign found violations: %v", rep.FailingInvariants())
		}
		b.ReportMetric(rep.ConfigsPerSec, "configs/s")
	}
}

func BenchmarkConformanceOracleSeq(b *testing.B) { benchCampaign(b, 1) }
func BenchmarkConformanceOraclePar(b *testing.B) { benchCampaign(b, 0) }
