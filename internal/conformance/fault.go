package conformance

import (
	"context"

	"afdx/internal/afdx"
	"afdx/internal/netcalc"
	"afdx/internal/trajectory"
)

// Fault selects one canned engine defect for oracle self-tests: the
// conformance machinery must demonstrably *catch* a broken engine, and
// these injectable faults are how tests (and the CLI's -fault flag)
// prove it without patching the real engines.
type Fault int

const (
	// FaultNCOptimistic halves every Network Calculus path bound — an
	// unsound "optimisation" the behavioural tier must expose.
	FaultNCOptimistic Fault = iota
	// FaultTrajectoryOptimistic halves every Trajectory path bound.
	FaultTrajectoryOptimistic
	// FaultTFAOptimistic quarters every path bound of the TFA tier only
	// — an unsoundly "tightened" cheap tier that inverts the ladder.
	// The tier-ordering invariant must expose it (the default pipeline
	// is untouched, so no other invariant will).
	FaultTFAOptimistic
)

// FaultyOracle returns an oracle whose engines carry the given defect.
// Everything else (budgets, seeds) matches NewOracle.
func FaultyOracle(f Fault) *Oracle {
	o := NewOracle()
	// Cached runs call the real engines directly; they must stay off so
	// the injected wrappers are actually exercised.
	o.Incremental = false
	switch f {
	case FaultNCOptimistic:
		real := o.Engines.NC
		o.Engines.NC = func(ctx context.Context, pg *afdx.PortGraph, opts netcalc.Options) (*netcalc.Result, error) {
			r, err := real(ctx, pg, opts)
			if err != nil {
				return nil, err
			}
			halved := *r
			halved.PathDelays = map[afdx.PathID]float64{}
			for pid, d := range r.PathDelays {
				halved.PathDelays[pid] = d / 2
			}
			return &halved, nil
		}
	case FaultTFAOptimistic:
		real := o.Engines.NC
		o.Engines.NC = func(ctx context.Context, pg *afdx.PortGraph, opts netcalc.Options) (*netcalc.Result, error) {
			r, err := real(ctx, pg, opts)
			if err != nil || opts.Analysis != netcalc.AnalysisTFA {
				return r, err
			}
			scaled := *r
			scaled.PathDelays = map[afdx.PathID]float64{}
			for pid, d := range r.PathDelays {
				scaled.PathDelays[pid] = d / 4
			}
			return &scaled, nil
		}
	case FaultTrajectoryOptimistic:
		real := o.Engines.Trajectory
		o.Engines.Trajectory = func(ctx context.Context, pg *afdx.PortGraph, opts trajectory.Options) (*trajectory.Result, error) {
			r, err := real(ctx, pg, opts)
			if err != nil {
				return nil, err
			}
			halved := *r
			halved.PathDelays = map[afdx.PathID]float64{}
			for pid, d := range r.PathDelays {
				halved.PathDelays[pid] = d / 2
			}
			return &halved, nil
		}
	}
	return o
}
