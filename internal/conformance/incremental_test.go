package conformance

import (
	"context"
	"reflect"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
)

func incrTestNet(t *testing.T, seed int64) *afdx.Network {
	t.Helper()
	spec := campaignSpec(seed, 1)
	net, err := configgen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// The oracle's verdict must not depend on whether its reference runs
// are cached: an incremental oracle and a cold one agree violation for
// violation (here: none) on the same configuration.
func TestIncrementalOracleMatchesCold(t *testing.T) {
	net := incrTestNet(t, 11)
	incrO := NewOracle()
	coldO := NewOracle()
	coldO.Incremental = false
	got, err := incrO.Check(net)
	if err != nil {
		t.Fatal(err)
	}
	want, err := coldO.Check(net)
	if err != nil {
		t.Fatal(err)
	}
	// The incremental oracle additionally runs the incremental-parity
	// tier, so only compare the invariants both oracles check.
	var gotShared []Violation
	for _, v := range got {
		if v.Invariant != InvIncrementalParity {
			gotShared = append(gotShared, v)
		}
	}
	if !reflect.DeepEqual(gotShared, want) {
		t.Fatalf("incremental oracle verdicts %v differ from cold %v", gotShared, want)
	}
}

// A persistent pool across shrink-style candidate sequences (each
// network a small mutation of the previous) must reproduce the cold
// oracle's verdict on every candidate — this pins the exact reuse
// pattern ShrinkCtx relies on for its speedup.
func TestPersistentPoolAcrossCandidates(t *testing.T) {
	net := incrTestNet(t, 13)
	pooled := NewOracle()
	pooled.pool = newEnginePool()
	pooled.SkipMetamorphic = true // the shrinker's inner-loop setting
	cold := NewOracle()
	cold.Incremental = false
	cold.SkipMetamorphic = true

	cands := []*afdx.Network{net}
	if len(net.VLs) > 1 {
		c := cloneNetwork(net)
		c.VLs = c.VLs[:len(c.VLs)-1]
		pruneNodes(c)
		cands = append(cands, c)
	}
	c := cloneNetwork(cands[len(cands)-1])
	for _, v := range c.VLs {
		v.SMaxBytes = afdx.MinFrameBytes
		v.SMinBytes = afdx.MinFrameBytes
	}
	cands = append(cands, c, net) // finish by revisiting the original (A/B/A)

	ctx := context.Background()
	for i, cand := range cands {
		got, err := pooled.CheckCtx(ctx, cand)
		if err != nil {
			t.Fatalf("candidate %d: %v", i, err)
		}
		want, err := cold.CheckCtx(ctx, cand)
		if err != nil {
			t.Fatalf("candidate %d (cold): %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("candidate %d: pooled verdicts %v differ from cold %v", i, got, want)
		}
	}
}
