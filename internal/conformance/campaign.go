package conformance

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
	"afdx/internal/obs"
	"afdx/internal/parallel"
)

// Options parameterises a conformance campaign.
type Options struct {
	// N is the number of configurations to generate and check.
	N int
	// Seed derives every per-configuration generator seed; the same
	// (Seed, N) always checks the same configuration family.
	Seed int64
	// Parallel bounds the number of configurations checked concurrently
	// (<= 0 selects GOMAXPROCS, 1 is strictly sequential). The report
	// is identical for every worker count: each configuration's verdict
	// is a pure function of its seed, and results merge in index order.
	Parallel int
	// Budget, when positive, stops scheduling new configurations once
	// the elapsed wall time exceeds it (configurations already being
	// checked still finish and report). Skipped configurations are
	// counted, never silently dropped.
	Budget time.Duration
	// CorpusDir, when non-empty, receives one shrunk reproducing
	// configuration per violating (config, invariant) pair.
	CorpusDir string
	// ShrinkBudget bounds the oracle re-runs per shrink (default 200).
	ShrinkBudget int
	// Oracle overrides the invariant checker (fault-injection tests);
	// nil selects NewOracle().
	Oracle *Oracle
}

// DefaultOptions checks 100 configurations from seed 1, sequentially.
func DefaultOptions() Options {
	return Options{N: 100, Seed: 1, Parallel: 1}
}

// ConfigVerdict is the outcome of checking one configuration.
type ConfigVerdict struct {
	Index int   `json:"index"`
	Seed  int64 `json:"seed"`
	// VLs / Paths summarise the generated configuration.
	VLs        int         `json:"vls"`
	Paths      int         `json:"paths"`
	Violations []Violation `json:"violations,omitempty"`
	// GenError records a generator or engine rejection (counted
	// separately from invariant violations — an input the engines
	// refuse is the linter's business, not a conformance bug).
	GenError string `json:"genError,omitempty"`
	// Skipped marks configurations the time budget cut off.
	Skipped bool `json:"skipped,omitempty"`
	// ShrunkFile is the replay-corpus file the shrinker wrote.
	ShrunkFile string `json:"shrunkFile,omitempty"`
	// ShrunkVLs is the VL count of the minimised reproduction.
	ShrunkVLs int `json:"shrunkVLs,omitempty"`
}

// Report is the outcome of a campaign.
type Report struct {
	N             int             `json:"n"`
	Seed          int64           `json:"seed"`
	Checked       int             `json:"checked"`
	Skipped       int             `json:"skipped"`
	Violating     int             `json:"violatingConfigs"`
	NumViolations int             `json:"violations"`
	ElapsedSec    float64         `json:"elapsedSec"`
	ConfigsPerSec float64         `json:"configsPerSec"`
	Verdicts      []ConfigVerdict `json:"verdicts"`
}

// Clean reports whether the campaign found no violation (generator
// rejections and budget skips are not violations).
func (r *Report) Clean() bool { return r.NumViolations == 0 }

// FailingInvariants returns the distinct violated invariants, sorted.
func (r *Report) FailingInvariants() []Invariant {
	seen := map[Invariant]bool{}
	for _, v := range r.Verdicts {
		for _, viol := range v.Violations {
			seen[viol.Invariant] = true
		}
	}
	out := make([]Invariant, 0, len(seen))
	for inv := range seen {
		out = append(out, inv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// campaignSpec draws the generator spec of configuration i: small
// networks (the oracle runs every engine several times per config, and
// the shrinker wants short round trips) over the full spread of
// topology sizes, utilizations and contract histograms. Every fourth
// configuration is tiny so the exponential exact tier is exercised.
func campaignSpec(campaignSeed int64, i int) configgen.Spec {
	seed := campaignSeed + int64(i)*7919 // distinct prime-strided streams
	rng := rand.New(rand.NewSource(seed))
	spec := configgen.DefaultSpec(seed)
	spec.Name = fmt.Sprintf("conformance-%d-%d", campaignSeed, i)
	spec.NumSwitches = 2 + rng.Intn(3)
	spec.ESPerSwitch = 1 + rng.Intn(3)
	spec.NumVLs = 3 + rng.Intn(22)
	if i%4 == 0 {
		spec.NumVLs = 2 + rng.Intn(3) // exact-search tier
	}
	spec.MaxUtilization = 0.3 + 0.6*rng.Float64()
	spec.LocalityBias = 0.7 * rng.Float64()
	// Small BAGs keep the simulation horizon (a few hyperperiods of the
	// largest BAG) short; the full 1..128 ms spread is the industrial
	// generator's job, exercised by the experiments suite.
	spec.BAGWeights = map[float64]int{1: 2, 2: 3, 4: 3, 8: 2}
	spec.FanoutWeights = map[int]int{1: 5, 2: 3, 3: 2}
	return spec
}

// Run executes a conformance campaign: generate N configurations,
// check the invariant lattice on each, shrink and record every
// violation, and assemble the deterministic report.
func Run(opts Options) (*Report, error) {
	return RunCtx(context.Background(), opts)
}

// RunCtx is Run with observability: the campaign opens a "campaign"
// span, each configuration a "config:<i>" child, and the engines'
// spans and counters nest beneath those. The checked/violation
// counters are BestEffort — a time budget makes the set of checked
// configurations scheduling-dependent — but the report itself stays
// identical across worker counts, as before.
func RunCtx(ctx context.Context, opts Options) (*Report, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("conformance: N must be positive, got %d", opts.N)
	}
	oracle := opts.Oracle
	if oracle == nil {
		oracle = NewOracle()
	}
	ctx, span := obs.StartSpan(ctx, "campaign")
	defer span.End()
	var checked, violations *obs.Counter
	if reg := obs.RegistryFrom(ctx); reg != nil {
		checked = reg.Counter("conformance.configs_checked", obs.BestEffort,
			"configurations the oracle fully checked (budget skips excluded)")
		violations = reg.Counter("conformance.violations", obs.BestEffort,
			"invariant violations found across the campaign")
	}
	start := time.Now()
	deadline := time.Time{}
	if opts.Budget > 0 {
		deadline = start.Add(opts.Budget)
	}

	verdicts := make([]ConfigVerdict, opts.N)
	err := parallel.ForEachCtx(ctx, opts.Parallel, opts.N, func(i int) error {
		cctx, cspan := obs.StartSpan(ctx, fmt.Sprintf("config:%d", i))
		defer cspan.End()
		spec := campaignSpec(opts.Seed, i)
		v := ConfigVerdict{Index: i, Seed: spec.Seed}
		defer func() { verdicts[i] = v }()
		if !deadline.IsZero() && time.Now().After(deadline) {
			v.Skipped = true
			return nil
		}
		net, err := configgen.Generate(spec)
		if err != nil {
			v.GenError = err.Error()
			return nil
		}
		st := net.ComputeStats()
		v.VLs, v.Paths = st.NumVLs, st.NumPaths
		vs, err := oracle.CheckCtx(cctx, net)
		if err != nil {
			v.GenError = err.Error()
			return nil
		}
		v.Violations = vs
		if len(vs) > 0 && opts.CorpusDir != "" {
			v.ShrunkFile, v.ShrunkVLs = shrinkToCorpus(cctx, oracle, net, vs, opts)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{N: opts.N, Seed: opts.Seed, Verdicts: verdicts}
	fullyChecked := int64(0)
	for _, v := range verdicts {
		switch {
		case v.Skipped:
			rep.Skipped++
		default:
			rep.Checked++
		}
		if !v.Skipped && v.GenError == "" {
			fullyChecked++
		}
		if len(v.Violations) > 0 {
			rep.Violating++
			rep.NumViolations += len(v.Violations)
		}
	}
	// Counters are flushed once, on the calling goroutine, after the
	// pool returns (the batch-then-flush pattern DET005 enforces); the
	// counts stay BestEffort only because a time budget makes the set of
	// checked configurations scheduling-dependent.
	checked.Add(fullyChecked)
	violations.Add(int64(rep.NumViolations))
	rep.ElapsedSec = time.Since(start).Seconds()
	if rep.ElapsedSec > 0 {
		rep.ConfigsPerSec = float64(rep.Checked) / rep.ElapsedSec
	}
	return rep, nil
}

// shrinkToCorpus minimises the first violation's configuration and
// writes it to the replay corpus; it returns the file path (or "" when
// writing fails — the violation itself is still reported) and the
// minimised VL count.
func shrinkToCorpus(ctx context.Context, oracle *Oracle, net *afdx.Network, vs []Violation, opts Options) (string, int) {
	inv := vs[0].Invariant
	small := oracle.ShrinkCtx(ctx, net, inv, opts.ShrinkBudget)
	if err := os.MkdirAll(opts.CorpusDir, 0o755); err != nil {
		return "", 0
	}
	small.Name = fmt.Sprintf("shrunk-%s-%s", inv, net.Name)
	path := filepath.Join(opts.CorpusDir, small.Name+".json")
	if err := small.SaveJSON(path); err != nil {
		return "", 0
	}
	return path, len(small.VLs)
}
