package conformance

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
	"afdx/internal/netcalc"
)

// analyzeTiers runs one configuration through the whole ladder
// sequentially and returns the three results keyed by tier.
func analyzeTiers(t *testing.T, net *afdx.Network) map[netcalc.Analysis]*netcalc.Result {
	t.Helper()
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	out := map[netcalc.Analysis]*netcalc.Result{}
	for _, tier := range netcalc.Analyses() {
		res, err := netcalc.Analyze(pg, tierOptions(tier, 1))
		if err != nil {
			t.Fatalf("%v tier: %v", tier, err)
		}
		out[tier] = res
	}
	return out
}

// checkLadder asserts FIFO <= WCNC <= TFA on every path of one
// configuration at the repository-wide relative tolerance.
func checkLadder(t *testing.T, label string, byTier map[netcalc.Analysis]*netcalc.Result) {
	t.Helper()
	wcnc := byTier[netcalc.AnalysisWCNC]
	tfa := byTier[netcalc.AnalysisTFA]
	fifo := byTier[netcalc.AnalysisFIFO]
	if len(wcnc.PathDelays) == 0 {
		t.Fatalf("%s: no paths analyzed", label)
	}
	for _, pid := range sortedPathKeys(wcnc.PathDelays) {
		w := wcnc.PathDelays[pid]
		f, okF := fifo.PathDelays[pid]
		a, okT := tfa.PathDelays[pid]
		if !okF || !okT {
			t.Fatalf("%s: %v missing from a tier (TFA %v, FIFO %v)", label, pid, okT, okF)
		}
		if !leq(w, a) {
			t.Errorf("%s: %v: TFA %v tighter than WCNC %v (cheaper tier must never be tighter)", label, pid, a, w)
		}
		if !leq(f, w) {
			t.Errorf("%s: %v: FIFO %v looser than WCNC %v (costlier tier must never be looser)", label, pid, f, w)
		}
	}
}

// TestTierOrderingLintGoldenCorpus runs the cross-tier ordering
// property over every analyzable configuration in the lint golden
// corpus. Files constructed to trip a validator (bad BAGs, routing
// loops, …) are skipped — they cannot reach the analysis engines — but
// the test insists several corpus files do make it through, so a
// regression in the loader cannot quietly empty the property.
func TestTierOrderingLintGoldenCorpus(t *testing.T) {
	dir := filepath.Join("..", "lint", "testdata")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	analyzed := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		net, err := afdx.LoadJSON(filepath.Join(dir, e.Name()), afdx.Strict)
		if err != nil {
			continue // a deliberately-defective corpus entry
		}
		pg, err := afdx.BuildPortGraph(net, afdx.Strict)
		if err != nil {
			continue
		}
		byTier := map[netcalc.Analysis]*netcalc.Result{}
		rejected := 0
		for _, tier := range netcalc.Analyses() {
			res, err := netcalc.Analyze(pg, tierOptions(tier, 1))
			if err != nil {
				rejected++
				continue
			}
			byTier[tier] = res
		}
		if rejected > 0 {
			// An unstable corpus entry (e.g. an overloaded port) must be
			// rejected by every tier, not silently analyzed by some.
			if rejected != len(netcalc.Analyses()) {
				t.Errorf("%s: %d of %d tiers rejected the config; all or none must",
					e.Name(), rejected, len(netcalc.Analyses()))
			}
			continue
		}
		checkLadder(t, e.Name(), byTier)
		analyzed++
	}
	if analyzed < 3 {
		t.Fatalf("only %d lint corpus files were analyzable; the corpus or the loader regressed", analyzed)
	}
}

// TestTierOrderingHundredSeeds is the bulk ordering property: 120
// generated configurations spanning the campaign generator's spread,
// each held to FIFO <= WCNC <= TFA on every path.
func TestTierOrderingHundredSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("bulk tier sweep skipped in -short mode")
	}
	for i := 0; i < 120; i++ {
		net, err := configgen.Generate(campaignSpec(17, i))
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		checkLadder(t, net.Name, analyzeTiers(t, net))
	}
}

// TestOracleCatchesTFAFault proves the tier-ordering invariant has
// teeth: an engine whose TFA tier is unsoundly "tightened" (bounds
// quartered) leaves the default pipeline untouched, so only the
// cross-tier check can expose it — and must.
func TestOracleCatchesTFAFault(t *testing.T) {
	o := FaultyOracle(FaultTFAOptimistic)
	net, err := configgen.Generate(campaignSpec(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	vs, err := o.Check(net)
	if err != nil {
		t.Fatal(err)
	}
	caught := map[Invariant]bool{}
	for _, v := range vs {
		caught[v.Invariant] = true
	}
	if !caught[InvTierOrdering] {
		t.Fatalf("oracle failed to catch the quartered TFA tier: %v", vs)
	}

	small := o.Shrink(net, InvTierOrdering, 60)
	if n := len(small.VLs); n > 5 {
		t.Errorf("shrinker left %d VLs, want <= 5", n)
	}
	svs, err := o.Check(small)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range svs {
		if v.Invariant == InvTierOrdering {
			found = true
		}
	}
	if !found {
		t.Errorf("shrunk config no longer reproduces tier-ordering: %v", svs)
	}
	if err := small.Validate(afdx.Strict); err != nil {
		t.Errorf("shrunk config does not validate: %v", err)
	}
}
