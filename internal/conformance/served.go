package conformance

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"afdx/internal/afdx"
	"afdx/internal/serve"
)

// checkServed asserts the served-parity invariant: a seeded delta
// script played against a live afdx-serve instance over real HTTP is
// answered with bounds exactly `==` cold engine runs on the replayed
// configurations, at worker counts 1 and ParityWorkers. The script is
// a pure function of (configuration, SimSeed), so a violation here
// replays like every other oracle finding.
//
// This closes the loop the wire opens: the incremental-parity tier
// pins session == cold in process; this tier adds the session manager,
// the HTTP surface, and the JSON float64 round-trip on top, and the
// equality stays exact.
func (o *Oracle) checkServed(ctx context.Context, net *afdx.Network) ([]Violation, error) {
	workers := o.ParityWorkers
	if workers <= 0 {
		workers = 4
	}
	srv := serve.New(serve.Options{
		Mode:           afdx.Strict,
		MaxSessions:    2,
		RequestTimeout: 2 * time.Minute,
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(dctx) //nolint:errcheck // teardown
		ts.Close()
	}()

	script, err := serve.SeededScript(net, o.SimSeed, 5)
	if err != nil {
		return nil, fmt.Errorf("conformance: served script: %w", err)
	}
	if _, err := script.RunHTTP(ts.Client(), ts.URL, 1); err != nil {
		return nil, fmt.Errorf("conformance: served replay: %w", err)
	}
	var vs []Violation
	for _, par := range []int{1, workers} {
		mm, err := script.VerifyCold(ctx, afdx.Strict, par)
		if err != nil {
			return nil, fmt.Errorf("conformance: served cold anchor (parallel %d): %w", par, err)
		}
		for _, m := range mm {
			pid, perr := serve.ParsePathID(m.Path)
			if perr != nil {
				pid = afdx.PathID{}
			}
			vs = append(vs, Violation{InvServedParity, pid, m.Got, m.Want,
				fmt.Sprintf("served %s != cold anchor at parallel %d (round %d)", m.Field, par, m.Seq)})
		}
	}
	return vs, nil
}
