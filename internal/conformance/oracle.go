// Package conformance is the cross-engine differential-testing oracle:
// it drives the configuration generator to produce families of valid
// AFDX networks, runs every delay engine on each (simulator, exact
// offset search, Trajectory, Network Calculus — sequentially and in
// parallel), and asserts the invariant lattice that relates them:
//
//	observed (sim)  ≤  achievable (exact)  ≤  min(Trajectory, WCNC)
//
// plus the structural invariants the paper's combined method rests on —
// the combined bound is exactly the per-path minimum of the two
// analyses, the grouping refinement never loosens a bound, tightening a
// traffic contract (doubling a BAG, shrinking s_max) never increases
// any bound (metamorphic monotonicity), and the parallel engines are
// bit-identical to their sequential runs and across repeated runs.
//
// Soundness comparisons against the Trajectory engine use the
// *ungrouped* variant: the published grouped formulation is optimistic
// in corner cases (see README, "Known optimism of the grouped
// trajectory method"), so the repository's soundness convention
// sandwiches the simulator against Network Calculus and the ungrouped
// Trajectory bound. The grouped variant is still exercised by the
// grouping-monotonicity and combined-minimum invariants.
//
// On a violation the shrinker (shrink.go) minimises the configuration
// to a smallest reproducing network, which lands in the replay corpus
// under testdata/ and is re-run forever after by plain `go test`.
package conformance

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"afdx/internal/afdx"
	"afdx/internal/core"
	"afdx/internal/core/tol"
	"afdx/internal/exact"
	"afdx/internal/netcalc"
	"afdx/internal/sim"
	"afdx/internal/trajectory"
)

// Invariant identifies one checked relation of the lattice.
type Invariant string

// The invariant lattice. Each constant names one relation the oracle
// asserts on every configuration it checks.
const (
	// InvSimVsNC: no simulated delay exceeds the Network Calculus bound.
	InvSimVsNC Invariant = "sim-vs-nc"
	// InvSimVsTrajectory: no simulated delay exceeds the ungrouped
	// Trajectory bound (the sound variant; see the package comment).
	InvSimVsTrajectory Invariant = "sim-vs-trajectory"
	// InvSimVsExact: the pinned-offset simulation never beats the exact
	// offset search (its schedule is one of the search's grid points).
	InvSimVsExact Invariant = "sim-vs-exact"
	// InvExactVsBounds: the exact search's achievable delays stay below
	// min(WCNC, ungrouped Trajectory).
	InvExactVsBounds Invariant = "exact-vs-bounds"
	// InvCombinedMin: the combined analysis equals the per-path minimum
	// of the two grouped bounds, and its per-engine columns are
	// bit-identical to the oracle's own engine runs.
	InvCombinedMin Invariant = "combined-min"
	// InvGroupingTightens: enabling the grouping (serialization)
	// refinement never loosens a bound, in either engine.
	InvGroupingTightens Invariant = "grouping-tightens"
	// InvMonotoneBAG: doubling one VL's BAG (less traffic) never
	// increases any path bound of either engine.
	InvMonotoneBAG Invariant = "monotone-bag"
	// InvMonotoneSMax: shrinking one VL's s_max (less traffic) never
	// increases any path bound of either engine.
	InvMonotoneSMax Invariant = "monotone-smax"
	// InvParallelParity: a multi-worker run is bit-identical to the
	// sequential run, for both engines.
	InvParallelParity Invariant = "parallel-parity"
	// InvRepeatability: re-running an engine on the same input yields
	// bit-identical results (pins the PR 2 map-iteration float wobble).
	InvRepeatability Invariant = "repeatability"
	// InvIncrementalParity: a what-if session's cached re-analysis after
	// each delta of a tightening sequence is bit-identical to a cold
	// recompute of the mutated configuration, at every worker count.
	InvIncrementalParity Invariant = "incremental-parity"
	// InvServedParity: the answers a live afdx-serve daemon returns over
	// HTTP for a seeded upload + delta script — JSON round-trip, session
	// manager and serialized executor included — are bit-identical to
	// cold engine runs on the replayed configurations, at worker counts
	// 1 and ParityWorkers.
	InvServedParity Invariant = "served-parity"
	// InvTierOrdering: the NC analysis tiers order by tightness — the
	// cheap TFA tier is never tighter than WCNC, the costly FIFO tier
	// never looser — and simulation and the exact search stay below
	// even the tightest tier; non-default tiers keep parallel parity.
	InvTierOrdering Invariant = "tier-ordering"
)

// Violation is one failed invariant on one configuration.
type Violation struct {
	Invariant Invariant   `json:"invariant"`
	Path      afdx.PathID `json:"path,omitempty"`
	// Got and Bound are the two sides of the violated relation
	// (Got should not have exceeded Bound).
	Got    float64 `json:"got"`
	Bound  float64 `json:"bound"`
	Detail string  `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: path %s: %.9g > %.9g (%s)", v.Invariant, v.Path, v.Got, v.Bound, v.Detail)
}

// Engines bundles the analysis entry points the oracle drives. Tests
// inject faulty wrappers here to prove the oracle catches engine bugs;
// production use keeps DefaultEngines. Each entry point takes the
// observability context (see internal/obs): the oracle threads the
// campaign's context through so engine spans and counters nest under
// the per-configuration span.
type Engines struct {
	NC         func(ctx context.Context, pg *afdx.PortGraph, opts netcalc.Options) (*netcalc.Result, error)
	Trajectory func(ctx context.Context, pg *afdx.PortGraph, opts trajectory.Options) (*trajectory.Result, error)
	Sim        func(ctx context.Context, pg *afdx.PortGraph, cfg sim.Config) (*sim.Result, error)
	Exact      func(ctx context.Context, pg *afdx.PortGraph, opts exact.Options) (*exact.Result, error)
}

// DefaultEngines returns the real analysis engines.
func DefaultEngines() Engines {
	return Engines{
		NC:         netcalc.AnalyzeCtx,
		Trajectory: trajectory.AnalyzeCtx,
		Sim:        sim.RunCtx,
		Exact:      exact.SearchCtx,
	}
}

// Oracle checks the invariant lattice on one configuration at a time.
// The zero value is not useful; start from NewOracle.
type Oracle struct {
	Engines Engines
	// MaxExactVLs bounds the configurations the exponential exact
	// search is attempted on (0 disables the exact tier entirely).
	MaxExactVLs int
	// ExactGridDiv divides each BAG into this many grid steps for the
	// exact search (default 4).
	ExactGridDiv int
	// ParityWorkers is the worker count of the parallel-parity runs
	// (default 4; 1 degenerates the parity check to repeatability).
	ParityWorkers int
	// SkipMetamorphic disables the mutation-based monotonicity
	// invariants (used by the shrinker's inner loop, where re-checking
	// mutants of mutants only slows convergence).
	SkipMetamorphic bool
	// SimSeed seeds the randomized simulation run.
	SimSeed int64
	// Incremental routes the oracle's sequential reference runs through
	// the engines' incremental caches and enables the
	// incremental-parity tier. It MUST be false when Engines is
	// overridden (fault injection): cached runs call the real engines
	// directly and would bypass the injected wrappers. The caches are
	// themselves under test here — a buggy cache desynchronises the
	// reference runs from the cold runs of the combined-minimum
	// cross-check and of the parity tier, and is reported as a
	// violation.
	Incremental bool
	// Tiers restricts the tier-ordering leg to these NC analysis tiers
	// (nil/empty = the full ladder). WCNC entries are ignored: it is
	// the ordering's reference point and always runs. The campaign
	// driver's -analysis flag sets this.
	Tiers []netcalc.Analysis
	// Served enables the served-parity tier: a seeded delta script is
	// played against an in-process afdx-serve instance over real HTTP
	// and the recorded answers are re-derived cold. Off by default —
	// each check spins up a server and re-analyses every round twice —
	// and enabled by the campaign driver's -served flag and the serving
	// layer's own conformance test.
	Served bool
	// pool persists incremental caches across CheckCtx calls; only the
	// shrinker sets it (on its private oracle copy — a pool is
	// single-writer, and campaigns check configurations in parallel
	// against one shared Oracle). When nil and Incremental is set,
	// CheckCtx uses a transient per-call pool.
	pool *enginePool
	// only, when non-empty, restricts CheckCtx to the tiers that can
	// produce that invariant. The shrinker sets it: its inner loop asks
	// one question — does THIS invariant still reproduce? — and
	// violations of other invariants are discarded there anyway, so
	// skipping their tiers changes nothing but the wall time.
	only Invariant
}

// NewOracle returns an oracle over the real engines with the default
// budgets: exact search up to 4 VLs on a quarter-BAG grid.
func NewOracle() *Oracle {
	return &Oracle{
		Engines:       DefaultEngines(),
		MaxExactVLs:   4,
		ExactGridDiv:  4,
		ParityWorkers: 4,
		SimSeed:       1,
		Incremental:   true,
	}
}

// leq is the ordering-invariant comparison: a ≤ b is accepted up to the
// repository-wide relative tolerance (internal/core/tol, rel 1e-9). The
// engines are deterministic, so the tolerance only absorbs the genuine
// float non-associativity between *different* computations (e.g. a sum
// of port bounds vs a busy-period maximisation); identity invariants
// (parity, repeatability, combined-minimum, incremental-parity) use
// exact equality.
func leq(a, b float64) bool {
	return tol.Leq(a, b)
}

// Check runs the full invariant lattice on one validated network and
// returns every violation found (nil error, possibly empty slice), or
// an error when the configuration cannot be analysed at all (which is
// not a conformance violation: infeasible inputs are the linter's
// domain, not the oracle's).
func (o *Oracle) Check(net *afdx.Network) ([]Violation, error) {
	return o.CheckCtx(context.Background(), net)
}

// CheckCtx is Check with observability threaded through the context:
// every engine run the oracle performs inherits ctx's registry and
// tracer, so a traced campaign shows the full lattice of runs nested
// under each configuration's span.
func (o *Oracle) CheckCtx(ctx context.Context, net *afdx.Network) ([]Violation, error) {
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		return nil, fmt.Errorf("conformance: %w", err)
	}
	var vs []Violation

	// Tier selection: everything by default; restricted to the tiers
	// that can produce o.only during a shrink (see the field comment).
	want := func(invs ...Invariant) bool {
		if o.only == "" {
			return true
		}
		for _, iv := range invs {
			if iv == o.only {
				return true
			}
		}
		return false
	}
	doGrouping := want(InvGroupingTightens)
	doCombined := want(InvCombinedMin)
	doDeterminism := want(InvParallelParity, InvRepeatability)
	doTiers := want(InvTierOrdering)
	// The tier ladder's behavioural leg (sim/exact vs the FIFO tier)
	// reports under InvTierOrdering, so a tier-ordering shrink re-runs
	// the behavioural tier too.
	doBehaviour := want(InvSimVsNC, InvSimVsTrajectory, InvSimVsExact, InvExactVsBounds, InvTierOrdering)
	doMeta := !o.SkipMetamorphic && want(InvMonotoneBAG, InvMonotoneSMax)
	doIncr := o.Incremental && !o.SkipMetamorphic && want(InvIncrementalParity)
	doServed := o.Served && !o.SkipMetamorphic && want(InvServedParity)

	// Sequential reference runs of the engine variants each selected
	// tier reads. With Incremental set they route through the cache
	// pool — persistent across the shrinker's candidates, transient
	// otherwise — and the cold cross-checks below (combined-minimum,
	// parity, repeatability, all run outside the pool) keep the caches
	// honest.
	pool := o.pool
	if pool == nil && o.Incremental {
		pool = newEnginePool()
	}
	runNC := o.Engines.NC
	runTraj := o.Engines.Trajectory
	if pool != nil {
		runNC = func(ctx context.Context, pg *afdx.PortGraph, opts netcalc.Options) (*netcalc.Result, error) {
			return netcalc.AnalyzeWithCacheCtx(ctx, pg, opts, pool.ncCache(opts))
		}
		runTraj = func(ctx context.Context, pg *afdx.PortGraph, opts trajectory.Options) (*trajectory.Result, error) {
			return trajectory.AnalyzeWithCacheCtx(ctx, pg, opts, pool.trCache(opts))
		}
	}
	var ncG, ncU, ncT, ncF *netcalc.Result
	var trG, trU *trajectory.Result
	if doGrouping || doCombined || doDeterminism || doBehaviour || doMeta || doTiers {
		if ncG, err = runNC(ctx, pg, netcalc.Options{Grouping: true, Parallel: 1}); err != nil {
			return nil, fmt.Errorf("conformance: netcalc (grouped): %w", err)
		}
	}
	if doGrouping {
		if ncU, err = runNC(ctx, pg, netcalc.Options{Grouping: false, Parallel: 1}); err != nil {
			return nil, fmt.Errorf("conformance: netcalc (ungrouped): %w", err)
		}
	}
	if doTiers && o.tierSelected(netcalc.AnalysisTFA) {
		if ncT, err = runNC(ctx, pg, tierOptions(netcalc.AnalysisTFA, 1)); err != nil {
			return nil, fmt.Errorf("conformance: netcalc (TFA tier): %w", err)
		}
	}
	if doTiers && o.tierSelected(netcalc.AnalysisFIFO) {
		if ncF, err = runNC(ctx, pg, tierOptions(netcalc.AnalysisFIFO, 1)); err != nil {
			return nil, fmt.Errorf("conformance: netcalc (FIFO tier): %w", err)
		}
	}
	if doGrouping || doCombined || doDeterminism {
		if trG, err = runTraj(ctx, pg, trajectory.Options{Grouping: true, Parallel: 1}); err != nil {
			return nil, fmt.Errorf("conformance: trajectory (grouped): %w", err)
		}
	}
	if doGrouping || doBehaviour || doMeta {
		if trU, err = runTraj(ctx, pg, trajectory.Options{Grouping: false, Parallel: 1}); err != nil {
			return nil, fmt.Errorf("conformance: trajectory (ungrouped): %w", err)
		}
	}

	paths := pg.Net.AllPaths()

	// Grouping never loosens a bound.
	if doGrouping {
		for _, pid := range paths {
			if g, u := ncG.PathDelays[pid], ncU.PathDelays[pid]; !leq(g, u) {
				vs = append(vs, Violation{InvGroupingTightens, pid, g, u, "netcalc grouped > ungrouped"})
			}
			if g, u := trG.PathDelays[pid], trU.PathDelays[pid]; !leq(g, u) {
				vs = append(vs, Violation{InvGroupingTightens, pid, g, u, "trajectory grouped > ungrouped"})
			}
		}
	}

	// The combined analysis is exactly min(WCNC, Trajectory) per path,
	// computed over the same engine results the oracle holds. core
	// re-runs the real engines, so this also cross-checks the oracle's
	// (possibly fault-injected or cache-served) engine runs against the
	// library's cold ones.
	if doCombined {
		cmp, err := core.CompareWithCtx(ctx, pg,
			netcalc.Options{Grouping: true, Parallel: 1},
			trajectory.Options{Grouping: true, Parallel: 1})
		if err != nil {
			return nil, fmt.Errorf("conformance: combined analysis: %w", err)
		}
		for _, pid := range paths {
			pc := cmp.PerPath[pid]
			if want := math.Min(pc.NCUs, pc.TrajectoryUs); pc.BestUs != want {
				vs = append(vs, Violation{InvCombinedMin, pid, pc.BestUs, want, "combined best != min(nc, trajectory)"})
			}
			if pc.NCUs != ncG.PathDelays[pid] {
				vs = append(vs, Violation{InvCombinedMin, pid, ncG.PathDelays[pid], pc.NCUs, "oracle nc run != combined nc column"})
			}
			if pc.TrajectoryUs != trG.PathDelays[pid] {
				vs = append(vs, Violation{InvCombinedMin, pid, trG.PathDelays[pid], pc.TrajectoryUs, "oracle trajectory run != combined trajectory column"})
			}
		}
	}

	// Cross-tier ordering and non-default-tier parity.
	if doTiers {
		vs = append(vs, o.checkTiers(ctx, pg, ncT, ncG, ncF)...)
	}

	// Parallel parity and repeatability: bit-identical results across
	// worker counts and across repeated runs.
	if doDeterminism {
		vs = append(vs, o.checkDeterminism(ctx, pg, ncG, trG)...)
	}

	// Behavioural tier: simulation (pinned and randomized offsets) and,
	// on small configurations, the exact offset search. ncF (the FIFO
	// tier, nil when the tier leg is off) tightens the chain: observed
	// and achievable delays must stay below even the tightest tier.
	if doBehaviour {
		vs = append(vs, o.checkBehaviour(ctx, pg, ncG, trU, ncF)...)
	}

	// Metamorphic tier: tightening a contract never loosens any bound.
	if doMeta {
		mvs, err := o.checkMetamorphic(ctx, net, ncG, trU)
		if err != nil {
			return nil, err
		}
		vs = append(vs, mvs...)
	}

	// Incremental-parity tier: what-if sessions over a tightening delta
	// sequence stay bit-identical to cold recomputes (skipped in the
	// shrinker's inner loop alongside the metamorphic tier — both build
	// mutants of mutants there).
	if doIncr {
		ivs, err := o.checkIncremental(ctx, net)
		if err != nil {
			return nil, err
		}
		vs = append(vs, ivs...)
	}

	// Served-parity tier: the same contract over the wire — a live
	// afdx-serve instance answers a seeded delta script bit-identically
	// to cold runs (skipped in the shrinker's inner loop for the same
	// mutants-of-mutants reason as the tiers above).
	if doServed {
		svs, err := o.checkServed(ctx, net)
		if err != nil {
			return nil, err
		}
		vs = append(vs, svs...)
	}

	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Invariant != vs[j].Invariant {
			return vs[i].Invariant < vs[j].Invariant
		}
		if vs[i].Path != vs[j].Path {
			return vs[i].Path.String() < vs[j].Path.String()
		}
		return vs[i].Detail < vs[j].Detail
	})
	return vs, nil
}

// checkDeterminism asserts parallel parity and run-to-run repeatability
// of both engines against the sequential reference results.
func (o *Oracle) checkDeterminism(ctx context.Context, pg *afdx.PortGraph, ncRef *netcalc.Result, trRef *trajectory.Result) []Violation {
	var vs []Violation
	workers := o.ParityWorkers
	if workers <= 0 {
		workers = 4
	}
	if ncPar, err := o.Engines.NC(ctx, pg, netcalc.Options{Grouping: true, Parallel: workers}); err != nil {
		vs = append(vs, Violation{InvParallelParity, afdx.PathID{}, 0, 0, "netcalc parallel run failed: " + err.Error()})
	} else {
		vs = append(vs, diffPathDelays(InvParallelParity, "netcalc", ncRef.PathDelays, ncPar.PathDelays)...)
	}
	if trPar, err := o.Engines.Trajectory(ctx, pg, trajectory.Options{Grouping: true, Parallel: workers}); err != nil {
		vs = append(vs, Violation{InvParallelParity, afdx.PathID{}, 0, 0, "trajectory parallel run failed: " + err.Error()})
	} else {
		vs = append(vs, diffPathDelays(InvParallelParity, "trajectory", trRef.PathDelays, trPar.PathDelays)...)
	}
	if ncAgain, err := o.Engines.NC(ctx, pg, netcalc.Options{Grouping: true, Parallel: 1}); err == nil {
		vs = append(vs, diffPathDelays(InvRepeatability, "netcalc", ncRef.PathDelays, ncAgain.PathDelays)...)
	}
	if trAgain, err := o.Engines.Trajectory(ctx, pg, trajectory.Options{Grouping: true, Parallel: 1}); err == nil {
		vs = append(vs, diffPathDelays(InvRepeatability, "trajectory", trRef.PathDelays, trAgain.PathDelays)...)
	}
	return vs
}

// sortedPathKeys returns a per-path result map's keys in (VL, PathIdx)
// order. Every invariant check below iterates this slice rather than
// the map, so the violation lists are built in deterministic order at
// the source instead of relying on the final sort in Check (DET003).
func sortedPathKeys[V any](m map[afdx.PathID]V) []afdx.PathID {
	ids := make([]afdx.PathID, 0, len(m))
	for pid := range m {
		ids = append(ids, pid)
	}
	afdx.SortPathIDs(ids)
	return ids
}

// diffPathDelays reports every path whose two delay values are not
// bit-identical.
func diffPathDelays(inv Invariant, engine string, a, b map[afdx.PathID]float64) []Violation {
	var vs []Violation
	for _, pid := range sortedPathKeys(a) {
		da := a[pid]
		if db, ok := b[pid]; !ok || da != db {
			vs = append(vs, Violation{inv, pid, db, da,
				fmt.Sprintf("%s results differ across runs", engine)})
		}
	}
	return vs
}

// checkBehaviour runs the simulator (and on small configurations the
// exact search) and asserts the observed ≤ achievable ≤ bound chain.
// With ncF set (the FIFO tier's sequential run), observed and exact
// delays are additionally held below the tightest tier — reported
// under InvTierOrdering, since an unsound refinement is a ladder bug,
// not a default-pipeline one.
func (o *Oracle) checkBehaviour(ctx context.Context, pg *afdx.PortGraph, ncG *netcalc.Result, trU *trajectory.Result, ncF *netcalc.Result) []Violation {
	var vs []Violation
	maxBag := 0.0
	for _, v := range pg.Net.VLs {
		if v.BAGUs() > maxBag {
			maxBag = v.BAGUs()
		}
	}
	horizon := 2 * maxBag

	bound := func(pid afdx.PathID) float64 {
		return math.Min(ncG.PathDelays[pid], trU.PathDelays[pid])
	}
	checkSim := func(r *sim.Result, label string) {
		for _, pid := range sortedPathKeys(r.Paths) {
			st := r.Paths[pid]
			if !leq(st.MaxDelayUs, ncG.PathDelays[pid]) {
				vs = append(vs, Violation{InvSimVsNC, pid, st.MaxDelayUs, ncG.PathDelays[pid], label})
			}
			if !leq(st.MaxDelayUs, trU.PathDelays[pid]) {
				vs = append(vs, Violation{InvSimVsTrajectory, pid, st.MaxDelayUs, trU.PathDelays[pid], label})
			}
			if ncF != nil && !leq(st.MaxDelayUs, ncF.PathDelays[pid]) {
				vs = append(vs, Violation{InvTierOrdering, pid, st.MaxDelayUs, ncF.PathDelays[pid],
					label + ": observed delay beat the FIFO tier"})
			}
		}
	}

	// Pinned run: every VL starts at offset 0 — the all-zero grid point
	// of the exact search, simulated over the same horizon, so its
	// observations are a subset of the search's by construction.
	pinned := map[string]float64{}
	for _, v := range pg.Net.VLs {
		pinned[v.ID] = 0
	}
	pinnedRes, err := o.Engines.Sim(ctx, pg, sim.Config{
		Model: sim.GreedySources, DurationUs: horizon, OffsetsUs: pinned,
	})
	if err != nil {
		vs = append(vs, Violation{InvSimVsNC, afdx.PathID{}, 0, 0, "pinned simulation failed: " + err.Error()})
		return vs
	}
	checkSim(pinnedRes, "pinned offsets (all zero)")

	// Randomized run: seeded random offsets over a longer horizon.
	randRes, err := o.Engines.Sim(ctx, pg, sim.Config{
		Model: sim.GreedySources, DurationUs: 4 * maxBag, Seed: o.SimSeed,
	})
	if err != nil {
		vs = append(vs, Violation{InvSimVsNC, afdx.PathID{}, 0, 0, "randomized simulation failed: " + err.Error()})
		return vs
	}
	checkSim(randRes, fmt.Sprintf("random offsets (seed %d)", o.SimSeed))

	// Exact tier, gated on the exponential cost.
	if o.MaxExactVLs <= 0 || len(pg.Net.VLs) > o.MaxExactVLs {
		return vs
	}
	div := o.ExactGridDiv
	if div <= 0 {
		div = 4
	}
	minBag := math.Inf(1)
	for _, v := range pg.Net.VLs {
		minBag = math.Min(minBag, v.BAGUs())
	}
	ex, err := o.Engines.Exact(ctx, pg, exact.Options{
		GridUs:     minBag / float64(div),
		Refine:     2,
		MaxCombos:  1 << 14,
		DurationUs: horizon,
	})
	if err != nil {
		// The grid overflowing MaxCombos is a budget miss, not a bug.
		return vs
	}
	for _, pid := range sortedPathKeys(ex.Delays) {
		if d := ex.Delays[pid]; !leq(d, bound(pid)) {
			vs = append(vs, Violation{InvExactVsBounds, pid, d, bound(pid), "exact search beat the analytic bounds"})
		}
		if d := ex.Delays[pid]; ncF != nil && !leq(d, ncF.PathDelays[pid]) {
			vs = append(vs, Violation{InvTierOrdering, pid, d, ncF.PathDelays[pid],
				"exact search beat the FIFO tier"})
		}
	}
	for _, pid := range sortedPathKeys(pinnedRes.Paths) {
		if st := pinnedRes.Paths[pid]; !leq(st.MaxDelayUs, ex.Delays[pid]) {
			vs = append(vs, Violation{InvSimVsExact, pid, st.MaxDelayUs, ex.Delays[pid], "pinned simulation beat the exact search"})
		}
	}
	return vs
}

// checkMetamorphic re-analyses two contract-tightened mutants of the
// network — one VL's BAG doubled, one VL's s_max halved — and asserts
// no path bound of either (sound-variant) engine increased.
func (o *Oracle) checkMetamorphic(ctx context.Context, net *afdx.Network, ncG *netcalc.Result, trU *trajectory.Result) ([]Violation, error) {
	var vs []Violation
	rng := rand.New(rand.NewSource(o.SimSeed))
	pick := func(ok func(*afdx.VirtualLink) bool) *afdx.VirtualLink {
		var cands []*afdx.VirtualLink
		for _, v := range net.VLs {
			if ok(v) {
				cands = append(cands, v)
			}
		}
		if len(cands) == 0 {
			return nil
		}
		return cands[rng.Intn(len(cands))]
	}

	check := func(mutant *afdx.Network, inv Invariant, what string) error {
		pg, err := afdx.BuildPortGraph(mutant, afdx.Strict)
		if err != nil {
			return fmt.Errorf("conformance: mutant (%s): %w", what, err)
		}
		nc, err := o.Engines.NC(ctx, pg, netcalc.Options{Grouping: true, Parallel: 1})
		if err != nil {
			return fmt.Errorf("conformance: mutant netcalc (%s): %w", what, err)
		}
		tr, err := o.Engines.Trajectory(ctx, pg, trajectory.Options{Grouping: false, Parallel: 1})
		if err != nil {
			return fmt.Errorf("conformance: mutant trajectory (%s): %w", what, err)
		}
		for _, pid := range sortedPathKeys(nc.PathDelays) {
			if base, ok := ncG.PathDelays[pid]; ok && !leq(nc.PathDelays[pid], base) {
				vs = append(vs, Violation{inv, pid, nc.PathDelays[pid], base, "netcalc bound grew after " + what})
			}
		}
		for _, pid := range sortedPathKeys(tr.PathDelays) {
			if base, ok := trU.PathDelays[pid]; ok && !leq(tr.PathDelays[pid], base) {
				vs = append(vs, Violation{inv, pid, tr.PathDelays[pid], base, "trajectory bound grew after " + what})
			}
		}
		return nil
	}

	if v := pick(func(v *afdx.VirtualLink) bool { return v.BAGMs < afdx.MaxBAGMs }); v != nil {
		mutant := cloneNetwork(net)
		mutant.VL(v.ID).BAGMs *= 2
		if err := check(mutant, InvMonotoneBAG, fmt.Sprintf("doubling BAG of %s", v.ID)); err != nil {
			return nil, err
		}
	}
	if v := pick(func(v *afdx.VirtualLink) bool { return v.SMaxBytes > afdx.MinFrameBytes }); v != nil {
		mutant := cloneNetwork(net)
		mv := mutant.VL(v.ID)
		mv.SMaxBytes = maxInt(afdx.MinFrameBytes, mv.SMaxBytes/2)
		if mv.SMinBytes > mv.SMaxBytes {
			mv.SMinBytes = mv.SMaxBytes
		}
		if err := check(mutant, InvMonotoneSMax, fmt.Sprintf("halving s_max of %s", v.ID)); err != nil {
			return nil, err
		}
	}
	return vs, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
