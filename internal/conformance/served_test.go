package conformance

import (
	"strings"
	"testing"

	"afdx/internal/afdx"
)

// TestServedParityTier runs the served-parity invariant end to end on a
// generated configuration: a live afdx-serve instance answers a seeded
// script over real HTTP and the oracle re-derives every answer cold. A
// clean verdict pins the serving layer to the engines bit for bit.
func TestServedParityTier(t *testing.T) {
	net := incrTestNet(t, 17)
	o := NewOracle()
	o.Served = true
	o.only = InvServedParity // the wire tier alone; the rest of the lattice has its own tests
	vs, err := o.Check(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("served-parity violations on a clean configuration: %v", vs)
	}
}

// The tier must be opt-in: a default oracle never reports (or runs) it.
func TestServedTierOffByDefault(t *testing.T) {
	o := NewOracle()
	if o.Served {
		t.Fatal("NewOracle enables the served tier; it must be opt-in")
	}
	net := incrTestNet(t, 17)
	vs, err := o.Check(net)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if v.Invariant == InvServedParity {
			t.Fatalf("served-parity violation from a default oracle: %v", v)
		}
	}
}

// The Violation detail must carry enough to locate a divergence: which
// field, at which worker count, in which recorded round.
func TestServedMismatchDetail(t *testing.T) {
	v := Violation{InvServedParity, afdx.PathID{}, 2, 1, "served trajectory_us != cold anchor at parallel 1 (round 3)"}
	s := v.String()
	for _, want := range []string{"served-parity", "round 3", "parallel 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("violation string %q missing %q", s, want)
		}
	}
}
