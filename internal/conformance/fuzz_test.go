package conformance

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"afdx/internal/afdx"
)

// FuzzConformanceConfig fuzzes the invariant lattice over the
// configuration codec: any byte string that decodes and validates as a
// small, analysable AFDX configuration must satisfy every invariant the
// oracle checks. Seed inputs come from the lint golden corpus and the
// conformance replay corpus, so the fuzzer starts from realistic
// configurations and mutates toward the engines' edge cases.
//
// Size gates keep one fuzz execution cheap (the oracle runs every
// engine several times per input); over-budget inputs are skipped, not
// failed — coverage of large configurations is the campaign's job.
func FuzzConformanceConfig(f *testing.F) {
	for _, dir := range []string{filepath.Join("..", "lint", "testdata"), "testdata"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			f.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".json") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(data))
		}
	}

	oracle := NewOracle()
	oracle.MaxExactVLs = 0 // the exponential tier has no place in a fuzz body

	f.Fuzz(func(t *testing.T, data string) {
		net, err := afdx.ReadJSON(strings.NewReader(data), afdx.Strict)
		if err != nil {
			return // not a valid configuration: the codec fuzzer's domain
		}
		if !analysableUnderFuzzBudget(net) {
			return
		}
		vs, err := oracle.Check(net)
		if err != nil {
			return // engines rejected it coherently (e.g. unstable): fine
		}
		for _, v := range vs {
			t.Errorf("invariant violated: %s", v)
		}
	})
}

// analysableUnderFuzzBudget gates fuzz inputs to configurations every
// engine analyses in well under a millisecond-scale budget.
func analysableUnderFuzzBudget(net *afdx.Network) bool {
	st := net.ComputeStats()
	if st.NumVLs < 1 || st.NumVLs > 6 || st.NumPaths > 12 {
		return false
	}
	if st.NumEndSystems+st.NumSwitches > 24 {
		return false
	}
	for _, v := range net.VLs {
		if v.BAGMs > 32 { // simulation horizon is a few max-BAG periods
			return false
		}
	}
	if net.Params.LinkRateMbps < 1 || net.Params.LinkRateMbps > 1000 {
		return false
	}
	if net.Params.SwitchLatencyUs < 0 || net.Params.SwitchLatencyUs > 1000 ||
		net.Params.SourceLatencyUs < 0 || net.Params.SourceLatencyUs > 1000 {
		return false
	}
	for _, lr := range net.LinkRates {
		if lr.Mbps < 1 || lr.Mbps > 1000 {
			return false
		}
	}
	// Near-stability ports make the trajectory busy period (and the
	// simulated queues) balloon: one fuzz exec must stay cheap.
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		return false
	}
	for _, u := range pg.UtilizationReport() {
		if u > 0.9 {
			return false
		}
	}
	return true
}
