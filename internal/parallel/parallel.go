// Package parallel provides the bounded worker pool shared by the
// analysis engines. Both delay analyses fan deterministic, independent
// units of work (per-path trajectory bounds, same-rank port bounds) out
// over a fixed number of goroutines; the callers index their work so
// results land in a pre-sized slice and are merged in canonical order,
// which is what makes the parallel analyses bit-identical to their
// sequential runs (see DESIGN.md, "Concurrency and determinism").
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"afdx/internal/obs"
)

// Workers normalises a worker-count option: values <= 0 select
// GOMAXPROCS (use every available core), everything else is taken
// as-is. 1 means strictly sequential execution on the calling
// goroutine.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines (after Workers normalisation) and returns the error of the
// lowest failing index, or nil.
//
// The contract mirrors a sequential loop exactly:
//
//   - with workers == 1 (or n <= 1) everything runs on the calling
//     goroutine, in index order, stopping at the first error;
//   - with workers > 1, indices are claimed in ascending order, every
//     index below a failing one is still evaluated, and the error
//     returned is the one the sequential loop would have hit first.
//
// Indices strictly above the lowest known failure are skipped (their
// results would be discarded anyway), so an early error does not cost a
// full sweep.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with pool observability: when ctx carries an
// obs.Registry, the pool counts batches and tasks (deterministic —
// the work set is fixed) and samples goroutine occupancy at each task
// start (best-effort — a scheduling observation). The ctx is not used
// for cancellation; error semantics are exactly ForEach's.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	reg := obs.RegistryFrom(ctx)
	var (
		batches   *obs.Counter
		tasks     *obs.Counter
		occupancy *obs.Histogram
	)
	if reg != nil {
		batches = reg.Counter("parallel.batches", obs.Deterministic,
			"ForEach invocations (fan-out points)")
		tasks = reg.Counter("parallel.tasks", obs.Deterministic,
			"work items executed by the pool (equals the work-set size on error-free runs)")
		occupancy = reg.Histogram("parallel.pool_occupancy", obs.BestEffort,
			"goroutines busy in the pool, sampled at each task start")
	}
	batches.Inc()

	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			tasks.Inc()
			occupancy.Observe(1)
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		firstErr atomic.Int64
		active   atomic.Int64
		errs     = make([]error, n)
		wg       sync.WaitGroup
	)
	firstErr.Store(int64(n))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) || i > firstErr.Load() {
					return
				}
				tasks.Inc()
				occupancy.Observe(active.Add(1))
				if err := fn(int(i)); err != nil {
					errs[i] = err
					// Lower the first-failure watermark (CAS loop: another
					// worker may have failed at a smaller index meanwhile).
					for {
						cur := firstErr.Load()
						if i >= cur || firstErr.CompareAndSwap(cur, i) {
							break
						}
					}
				}
				active.Add(-1)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
