package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 100} {
		const n = 57
		hits := make([]int32, n)
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d evaluated %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Indices 11 and 29 fail; every worker count must surface index 11's
	// error — the one a sequential loop would hit first.
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(workers, 40, func(i int) error {
			if i == 11 || i == 29 {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom at 11" {
			t.Fatalf("workers=%d: got error %v, want boom at 11", workers, err)
		}
	}
}

func TestForEachSequentialStopsAtFirstError(t *testing.T) {
	calls := 0
	err := ForEach(1, 10, func(i int) error {
		calls++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || calls != 4 {
		t.Fatalf("sequential: err=%v calls=%d, want error after 4 calls", err, calls)
	}
}
