// Package configgen generates synthetic AFDX configurations with the
// global statistics of the industrial (Airbus) configuration studied in
// the paper: on the order of a thousand multicast Virtual Links over
// more than a hundred end systems and eight switches, harmonic BAGs
// between 1 and 128 ms, Ethernet frame sizes between 64 and 1518 bytes,
// and VL paths crossing one to four switches.
//
// The real configuration is proprietary; the paper only reports its
// aggregate statistics, which the generator reproduces (see DESIGN.md,
// substitution table). Generation is fully deterministic for a given
// Spec (including the seed).
//
// The eight switches form the paper's two-core topology: two core
// switches S1-S2 and six edge switches attached three per core. Routing
// follows the unique tree path, which is feed-forward at output-port
// level (up-links strictly precede down-links along any path), so every
// generated configuration is analysable by the holistic methods.
//
// Dual-network redundancy (the A/B sub-networks of ARINC 664) is not
// materialised: both sub-networks carry the same VLs over isomorphic
// topologies, so the per-path analysis of one sub-network covers both.
package configgen

import (
	"fmt"
	"math/rand"
	"sort"

	"afdx/internal/afdx"
)

// Spec parameterises the generator. The zero value is not useful; start
// from DefaultSpec.
type Spec struct {
	// Seed drives all random choices; same spec, same network.
	Seed int64
	// Name of the generated network.
	Name string
	// NumSwitches must be >= 2 (two cores; extras become edge switches).
	NumSwitches int
	// ESPerSwitch is the number of end systems attached to each switch.
	ESPerSwitch int
	// NumVLs is the number of Virtual Links to admit.
	NumVLs int
	// MaxUtilization is the admission-control ceiling on every output
	// port's long-term utilization (the generator retries or degrades a
	// VL's contract until it fits).
	MaxUtilization float64
	// LocalityBias is the probability that a destination is attached to
	// the same switch as the source (short paths dominate avionics
	// configurations).
	LocalityBias float64
	// BAGWeights, SMaxWeights and FanoutWeights are sampling histograms
	// (value -> relative weight).
	BAGWeights    map[float64]int
	SMaxWeights   map[int]int
	FanoutWeights map[int]int
	// Params are the physical parameters of the network.
	Params afdx.Params
}

// DefaultSpec reproduces the published statistics of the industrial
// configuration: ~1000 VLs, >6000 paths, 8 switches, ~104 end systems.
func DefaultSpec(seed int64) Spec {
	return Spec{
		Seed:           seed,
		Name:           fmt.Sprintf("industrial-seed%d", seed),
		NumSwitches:    8,
		ESPerSwitch:    13,
		NumVLs:         1000,
		MaxUtilization: 0.40,
		LocalityBias:   0.35,
		BAGWeights: map[float64]int{
			1: 1, 2: 2, 4: 4, 8: 8, 16: 15, 32: 25, 64: 25, 128: 20,
		},
		SMaxWeights: map[int]int{
			64: 14, 100: 14, 150: 12, 200: 11, 300: 9, 400: 8, 500: 7,
			600: 5, 700: 4, 800: 4, 900: 3, 1000: 3, 1200: 2, 1400: 2, 1518: 2,
		},
		FanoutWeights: map[int]int{
			1: 10, 2: 12, 3: 10, 4: 10, 6: 10, 8: 11, 10: 11, 12: 10, 16: 9, 20: 7,
		},
		Params: afdx.DefaultParams(),
	}
}

// Generate builds a network from the spec. The returned network always
// validates in Strict mode and always builds a feed-forward port graph.
func Generate(spec Spec) (*afdx.Network, error) {
	if spec.NumSwitches < 2 {
		return nil, fmt.Errorf("configgen: need at least 2 switches, got %d", spec.NumSwitches)
	}
	if spec.ESPerSwitch < 1 || spec.NumVLs < 1 {
		return nil, fmt.Errorf("configgen: need at least one end system per switch and one VL")
	}
	if spec.MaxUtilization <= 0 || spec.MaxUtilization > 1 {
		return nil, fmt.Errorf("configgen: MaxUtilization %g out of (0,1]", spec.MaxUtilization)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	t := newTopology(spec)
	g := &generator{spec: spec, rng: rng, topo: t, portLoad: map[afdx.PortID]float64{}}
	net := &afdx.Network{
		Name:       spec.Name,
		Params:     spec.Params,
		EndSystems: t.endSystems,
		Switches:   t.switches,
	}
	for i := 0; i < spec.NumVLs; i++ {
		vl := g.admitVL(fmt.Sprintf("v%04d", i+1))
		if vl != nil {
			net.VLs = append(net.VLs, vl)
		}
	}
	if err := net.Validate(afdx.Strict); err != nil {
		return nil, fmt.Errorf("configgen: generated network invalid: %w", err)
	}
	return net, nil
}

// topology is the rooted switch tree plus end-system attachments.
type topology struct {
	switches   []string
	endSystems []string
	parent     map[string]string // switch -> parent switch ("" for root)
	esSwitch   map[string]string // end system -> attached switch
	esOf       map[string][]string
	sameSide   map[string][]string // switch -> end systems in its core subtree
}

func newTopology(spec Spec) *topology {
	t := &topology{
		parent:   map[string]string{},
		esSwitch: map[string]string{},
		esOf:     map[string][]string{},
	}
	for i := 0; i < spec.NumSwitches; i++ {
		t.switches = append(t.switches, fmt.Sprintf("S%d", i+1))
	}
	// S1 is the root core, S2 the second core, the rest alternate as
	// edge switches under the two cores.
	for i, s := range t.switches {
		switch {
		case i == 0:
			t.parent[s] = ""
		case i == 1:
			t.parent[s] = t.switches[0]
		case i%2 == 0:
			t.parent[s] = t.switches[0]
		default:
			t.parent[s] = t.switches[1]
		}
	}
	n := 0
	for _, s := range t.switches {
		for k := 0; k < spec.ESPerSwitch; k++ {
			n++
			es := fmt.Sprintf("e%03d", n)
			t.endSystems = append(t.endSystems, es)
			t.esSwitch[es] = s
			t.esOf[s] = append(t.esOf[s], es)
		}
	}
	// Core subtree membership: a switch belongs to the side of the core
	// (S1 or S2) it hangs off; the two cores anchor their own side.
	sideCore := func(s string) string {
		if len(t.switches) < 2 {
			return t.switches[0]
		}
		if s == t.switches[1] || t.parent[s] == t.switches[1] {
			return t.switches[1]
		}
		return t.switches[0]
	}
	bySide := map[string][]string{}
	for _, s := range t.switches {
		bySide[sideCore(s)] = append(bySide[sideCore(s)], t.esOf[s]...)
	}
	t.sameSide = map[string][]string{}
	for _, s := range t.switches {
		t.sameSide[s] = bySide[sideCore(s)]
	}
	return t
}

// switchRoute returns the tree path between two switches (inclusive).
func (t *topology) switchRoute(a, b string) []string {
	anc := func(s string) []string {
		var chain []string
		for s != "" {
			chain = append(chain, s)
			s = t.parent[s]
		}
		return chain
	}
	ca, cb := anc(a), anc(b)
	onB := map[string]int{}
	for i, s := range cb {
		onB[s] = i
	}
	for i, s := range ca {
		if j, ok := onB[s]; ok {
			route := append([]string{}, ca[:i+1]...)
			for k := j - 1; k >= 0; k-- {
				route = append(route, cb[k])
			}
			return route
		}
	}
	return nil // unreachable in a tree
}

// esRoute returns the full node path from a source ES to a dest ES.
func (t *topology) esRoute(src, dst string) []string {
	route := t.switchRoute(t.esSwitch[src], t.esSwitch[dst])
	path := append([]string{src}, route...)
	return append(path, dst)
}

type generator struct {
	spec     Spec
	rng      *rand.Rand
	topo     *topology
	portLoad map[afdx.PortID]float64 // committed rate per port, bits/us
}

// admitVL draws a contract and a destination set, then admits the VL
// under the utilization ceiling: the contract is degraded first (larger
// BAG, then smaller frames), and only as a last resort destinations are
// trimmed, preserving the drawn fan-out distribution as far as possible.
// It returns nil when nothing fits (the VL is skipped).
func (g *generator) admitVL(id string) *afdx.VirtualLink {
	src := g.topo.endSystems[g.rng.Intn(len(g.topo.endSystems))]
	bag := weightedFloat(g.rng, g.spec.BAGWeights)
	smax := weightedInt(g.rng, g.spec.SMaxWeights)
	smin := afdx.MinFrameBytes
	if smax > afdx.MinFrameBytes && g.rng.Intn(2) == 0 {
		smin += g.rng.Intn(smax - afdx.MinFrameBytes + 1)
	}
	paths := g.drawPaths(src)
	vl := &afdx.VirtualLink{
		ID: id, Source: src, BAGMs: bag, SMaxBytes: smax, SMinBytes: min(smin, smax),
		Paths: paths,
	}
	for {
		if g.fits(vl) {
			g.commit(vl)
			return vl
		}
		switch {
		case vl.BAGMs < afdx.MaxBAGMs:
			vl.BAGMs *= 2
		case vl.SMaxBytes > afdx.MinFrameBytes:
			vl.SMaxBytes = afdx.MinFrameBytes
			vl.SMinBytes = afdx.MinFrameBytes
		case len(vl.Paths) > 1:
			vl.Paths = vl.Paths[:len(vl.Paths)-1]
		default:
			return nil
		}
	}
}

// drawPaths draws a destination fan-out and builds the multicast tree
// paths (unique tree routing guarantees the tree property).
func (g *generator) drawPaths(src string) [][]string {
	fanout := weightedInt(g.rng, g.spec.FanoutWeights)
	chosen := map[string]bool{src: true}
	var paths [][]string
	for len(paths) < fanout {
		var dst string
		switch r := g.rng.Float64(); {
		case r < g.spec.LocalityBias:
			// Same switch as the source.
			local := g.topo.esOf[g.topo.esSwitch[src]]
			dst = local[g.rng.Intn(len(local))]
		case r < g.spec.LocalityBias+(1-g.spec.LocalityBias)/2:
			// Same core subtree (avionics functions cluster per side).
			side := g.topo.sameSide[g.topo.esSwitch[src]]
			dst = side[g.rng.Intn(len(side))]
		default:
			dst = g.topo.endSystems[g.rng.Intn(len(g.topo.endSystems))]
		}
		if chosen[dst] {
			// Avoid spinning when the switch has few local ESes left.
			if len(chosen) >= len(g.topo.endSystems) {
				break
			}
			continue
		}
		chosen[dst] = true
		paths = append(paths, g.topo.esRoute(src, dst))
	}
	return paths
}

// vlPorts lists the distinct output ports a VL crosses. The shared
// implementation (afdx.VirtualLink.Links) also feeds Network.LinkLoads,
// so the admission gate below and the AFDX013 lint analyzer can never
// disagree about which links a VL loads.
func vlPorts(vl *afdx.VirtualLink) []afdx.PortID {
	return vl.Links()
}

func (g *generator) fits(vl *afdx.VirtualLink) bool {
	limit := g.spec.MaxUtilization * g.spec.Params.RateBitsPerUs()
	rho := vl.RhoBitsPerUs()
	for _, p := range vlPorts(vl) {
		if g.portLoad[p]+rho > limit {
			return false
		}
	}
	return true
}

func (g *generator) commit(vl *afdx.VirtualLink) {
	rho := vl.RhoBitsPerUs()
	for _, p := range vlPorts(vl) {
		g.portLoad[p] += rho
	}
}

// weightedInt draws a key of the histogram proportionally to its weight.
func weightedInt(rng *rand.Rand, w map[int]int) int {
	keys := make([]int, 0, len(w))
	total := 0
	for k, v := range w {
		keys = append(keys, k)
		total += v
	}
	sort.Ints(keys)
	r := rng.Intn(total)
	for _, k := range keys {
		r -= w[k]
		if r < 0 {
			return k
		}
	}
	return keys[len(keys)-1]
}

// weightedFloat draws a key of the histogram proportionally to its weight.
func weightedFloat(rng *rand.Rand, w map[float64]int) float64 {
	keys := make([]float64, 0, len(w))
	total := 0
	for k, v := range w {
		keys = append(keys, k)
		total += v
	}
	sort.Float64s(keys)
	r := rng.Intn(total)
	for _, k := range keys {
		r -= w[k]
		if r < 0 {
			return k
		}
	}
	return keys[len(keys)-1]
}
