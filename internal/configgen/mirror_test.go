package configgen

import (
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/core"
)

func TestMirrorDoublesEverything(t *testing.T) {
	base := afdx.Figure2Config()
	red, err := Mirror(base)
	if err != nil {
		t.Fatal(err)
	}
	bs, rs := base.ComputeStats(), red.ComputeStats()
	if rs.NumEndSystems != 2*bs.NumEndSystems ||
		rs.NumSwitches != 2*bs.NumSwitches ||
		rs.NumVLs != 2*bs.NumVLs ||
		rs.NumPaths != 2*bs.NumPaths {
		t.Errorf("mirror should double all counts: base %+v, red %+v", bs, rs)
	}
	if err := red.Validate(afdx.Strict); err != nil {
		t.Fatalf("mirrored figure-2 network should be strictly valid: %v", err)
	}
}

func TestMirrorSubNetworksAreIndependentAndSymmetric(t *testing.T) {
	red, err := Mirror(afdx.Figure2Config())
	if err != nil {
		t.Fatal(err)
	}
	pg, err := afdx.BuildPortGraph(red, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := core.Compare(pg)
	if err != nil {
		t.Fatal(err)
	}
	// The two copies never share a port, so every bound must be equal
	// between the A and B instances of a path.
	for _, pid := range afdx.Figure2Config().AllPaths() {
		a, b := RedundantPathID(pid)
		pa, pb := cmp.PerPath[a], cmp.PerPath[b]
		if pa.NCUs != pb.NCUs || pa.TrajectoryUs != pb.TrajectoryUs {
			t.Errorf("path %v: A and B bounds differ: %+v vs %+v", pid, pa, pb)
		}
		if pa.NCUs == 0 {
			t.Errorf("path %v: missing mirrored bound", pid)
		}
	}
}

func TestMirrorMatchesBaseBounds(t *testing.T) {
	base := afdx.Figure2Config()
	pgBase, err := afdx.BuildPortGraph(base, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	cmpBase, err := core.Compare(pgBase)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Mirror(base)
	if err != nil {
		t.Fatal(err)
	}
	pgRed, err := afdx.BuildPortGraph(red, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	cmpRed, err := core.Compare(pgRed)
	if err != nil {
		t.Fatal(err)
	}
	for _, pid := range base.AllPaths() {
		a, _ := RedundantPathID(pid)
		if cmpBase.PerPath[pid].NCUs != cmpRed.PerPath[a].NCUs {
			t.Errorf("path %v: mirrored NC bound %g differs from base %g",
				pid, cmpRed.PerPath[a].NCUs, cmpBase.PerPath[pid].NCUs)
		}
	}
}

func TestMirrorRejectsInvalid(t *testing.T) {
	n := afdx.Figure2Config()
	n.VLs[0].BAGMs = -1
	if _, err := Mirror(n); err == nil {
		t.Fatal("expected invalid base network to be rejected")
	}
}

func TestMirrorGeneratedIndustrial(t *testing.T) {
	spec := DefaultSpec(5)
	spec.NumVLs = 60
	net, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Mirror(net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := afdx.BuildPortGraph(red, afdx.Strict); err != nil {
		t.Fatalf("mirrored generated network must stay feed-forward: %v", err)
	}
}
