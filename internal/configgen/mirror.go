package configgen

import (
	"fmt"

	"afdx/internal/afdx"
)

// Mirror materialises the ARINC 664 dual-network redundancy: it returns
// a configuration holding two isomorphic copies (suffix "A" and "B") of
// the input's switch fabric and, for every Virtual Link, one copy per
// sub-network. Physical end systems appear as two model nodes (one port
// per sub-network, as on real hardware, where each ES has an A port and
// a B port and transmits every frame on both).
//
// The analyses treat the copies independently, which matches ARINC 664
// redundancy management: the receiving end system keeps the first valid
// copy of each sequence number, so the worst-case delivery delay of a
// redundant frame is the minimum of the two per-network worst cases —
// each bounded by the analysis of its own sub-network. The paper's
// ">6000 paths" figure counts both sub-networks; Mirror reproduces that
// accounting.
func Mirror(n *afdx.Network) (*afdx.Network, error) {
	if err := n.Validate(afdx.Relaxed); err != nil {
		return nil, fmt.Errorf("configgen: cannot mirror invalid network: %w", err)
	}
	out := &afdx.Network{
		Name:   n.Name + "-redundant",
		Params: n.Params,
	}
	for _, suffix := range []string{"A", "B"} {
		for _, es := range n.EndSystems {
			out.EndSystems = append(out.EndSystems, es+suffix)
		}
		for _, sw := range n.Switches {
			out.Switches = append(out.Switches, sw+suffix)
		}
		for _, vl := range n.VLs {
			cp := &afdx.VirtualLink{
				ID:        vl.ID + suffix,
				Source:    vl.Source + suffix,
				BAGMs:     vl.BAGMs,
				SMaxBytes: vl.SMaxBytes,
				SMinBytes: vl.SMinBytes,
			}
			for _, path := range vl.Paths {
				mp := make([]string, len(path))
				for i, node := range path {
					mp[i] = node + suffix
				}
				cp.Paths = append(cp.Paths, mp)
			}
			out.VLs = append(out.VLs, cp)
		}
	}
	if err := out.Validate(afdx.Relaxed); err != nil {
		return nil, fmt.Errorf("configgen: mirrored network invalid: %w", err)
	}
	return out, nil
}

// RedundantPathID maps a path of the base network to its two mirrored
// counterparts.
func RedundantPathID(pid afdx.PathID) (a, b afdx.PathID) {
	return afdx.PathID{VL: pid.VL + "A", PathIdx: pid.PathIdx},
		afdx.PathID{VL: pid.VL + "B", PathIdx: pid.PathIdx}
}
