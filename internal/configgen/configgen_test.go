package configgen

import (
	"math/rand"
	"reflect"
	"testing"

	"afdx/internal/afdx"
)

func TestGenerateDefaultSpecStatistics(t *testing.T) {
	net, err := Generate(DefaultSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	st := net.ComputeStats()
	if st.NumSwitches != 8 {
		t.Errorf("switches = %d, want 8", st.NumSwitches)
	}
	if st.NumEndSystems != 104 {
		t.Errorf("end systems = %d, want 104", st.NumEndSystems)
	}
	if st.NumVLs < 850 || st.NumVLs > 1000 {
		t.Errorf("VLs = %d, want ~1000 (>=850 admitted)", st.NumVLs)
	}
	if st.NumPaths < 4800 {
		t.Errorf("paths = %d, want ~5000+ (paper: >6000 over two redundant networks)", st.NumPaths)
	}
	if st.MaxPathLen < 2 || st.MaxPathLen > 4 {
		t.Errorf("max path length = %d switches, want within [2,4]", st.MaxPathLen)
	}
	// Harmonic BAGs only.
	for bag := range st.BAGHistogram {
		switch bag {
		case 1, 2, 4, 8, 16, 32, 64, 128:
		default:
			t.Errorf("non-harmonic BAG %g generated", bag)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must produce identical networks")
	}
	c, err := Generate(DefaultSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.VLs, c.VLs) {
		t.Error("different seeds should produce different VL sets")
	}
}

func TestGeneratedNetworkIsFeedForwardAndStable(t *testing.T) {
	net, err := Generate(DefaultSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		t.Fatalf("generated network must be feed-forward: %v", err)
	}
	for id, u := range pg.UtilizationReport() {
		if u > 0.40+1e-9 {
			t.Errorf("port %v exceeds the admission ceiling: %g", id, u)
		}
	}
}

func TestGenerateSmallSpec(t *testing.T) {
	spec := DefaultSpec(3)
	spec.NumSwitches = 2
	spec.ESPerSwitch = 2
	spec.NumVLs = 10
	net, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Switches) != 2 || len(net.EndSystems) != 4 {
		t.Errorf("unexpected topology: %d switches, %d ES", len(net.Switches), len(net.EndSystems))
	}
	if _, err := afdx.BuildPortGraph(net, afdx.Strict); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	for name, mutate := range map[string]func(*Spec){
		"one switch":       func(s *Spec) { s.NumSwitches = 1 },
		"no end systems":   func(s *Spec) { s.ESPerSwitch = 0 },
		"no VLs":           func(s *Spec) { s.NumVLs = 0 },
		"zero utilization": func(s *Spec) { s.MaxUtilization = 0 },
		"over utilization": func(s *Spec) { s.MaxUtilization = 1.5 },
	} {
		t.Run(name, func(t *testing.T) {
			spec := DefaultSpec(1)
			mutate(&spec)
			if _, err := Generate(spec); err == nil {
				t.Error("expected spec rejection")
			}
		})
	}
}

func TestAdmissionControlDegradesUnderPressure(t *testing.T) {
	// A tiny ceiling forces the generator to degrade contracts or skip
	// VLs; whatever it admits must respect the ceiling.
	spec := DefaultSpec(4)
	spec.NumVLs = 200
	spec.MaxUtilization = 0.05
	net, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	for id, u := range pg.UtilizationReport() {
		if u > 0.05+1e-9 {
			t.Errorf("port %v exceeds tight ceiling: %g", id, u)
		}
	}
	if len(net.VLs) == 0 {
		t.Error("some VLs should still be admitted under a tight ceiling")
	}
}

func TestSwitchRoute(t *testing.T) {
	spec := DefaultSpec(1)
	topo := newTopology(spec)
	cases := []struct {
		a, b string
		want []string
	}{
		{"S1", "S1", []string{"S1"}},
		{"S1", "S2", []string{"S1", "S2"}},
		{"S3", "S1", []string{"S3", "S1"}},
		{"S3", "S5", []string{"S3", "S1", "S5"}},       // both edge under S1
		{"S4", "S6", []string{"S4", "S2", "S6"}},       // both edge under S2
		{"S3", "S4", []string{"S3", "S1", "S2", "S4"}}, // across cores
	}
	for _, c := range cases {
		got := topo.switchRoute(c.a, c.b)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("switchRoute(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEsRoute(t *testing.T) {
	topo := newTopology(DefaultSpec(1))
	// e001 attaches to S1, so a route to another S1-attached ES crosses
	// exactly one switch.
	src, dst := topo.esOf["S1"][0], topo.esOf["S1"][1]
	got := topo.esRoute(src, dst)
	if len(got) != 3 || got[1] != "S1" {
		t.Errorf("local route = %v, want [src S1 dst]", got)
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := map[int]int{1: 90, 10: 10}
	n1 := 0
	for i := 0; i < 10000; i++ {
		if weightedInt(rng, w) == 1 {
			n1++
		}
	}
	if n1 < 8700 || n1 > 9300 {
		t.Errorf("weight-90 key drawn %d/10000 times, want ~9000", n1)
	}
	wf := map[float64]int{2: 50, 4: 50}
	saw := map[float64]bool{}
	for i := 0; i < 100; i++ {
		saw[weightedFloat(rng, wf)] = true
	}
	if !saw[2] || !saw[4] {
		t.Error("both keys should be drawn")
	}
}

func TestVlPortsDedup(t *testing.T) {
	vl := &afdx.VirtualLink{
		ID: "m", Source: "a", BAGMs: 4, SMaxBytes: 100, SMinBytes: 64,
		Paths: [][]string{
			{"a", "X", "Y", "b"},
			{"a", "X", "Z", "c"},
		},
	}
	ports := vlPorts(vl)
	if len(ports) != 5 {
		t.Errorf("got %d ports, want 5 (a->X shared)", len(ports))
	}
}
