// Package trajectory implements the Trajectory approach to worst-case
// end-to-end delay analysis of AFDX Virtual Links, following the FIFO
// response-time analysis of Martin & Minet (IPDPS 2006) as applied to
// AFDX by Bauer, Scharbarg & Fraboul (ETFA 2009) and compared against
// Network Calculus in the reproduced DATE 2010 paper.
//
// For a frame of VL i emitted at relative time t within the busy period
// of its source output port, the end-to-end response time is bounded by
//
//	R_i(t) = sum_{j sharing a port with i} N_j(t + A_ij) * C_j   (interference)
//	       + sum_{h in path, h != first}  max_{j in h} C_j       (transition term)
//	       + sum_{h in path} L_h                                 (latencies)
//	       - t
//
// where C_j is the transmission time of a maximum-size frame of j,
// N_j(x) = 1 + floor(max(0,x) / BAG_j) counts j-frames in a window of
// length x, and A_ij = Smax_j(f_ij) - Smin_i(f_ij) aligns the window at
// the first port f_ij where j meets i. The bound is the maximum of
// R_i(t) over the (finitely many) step points of the busy period.
//
// The transition term is the paper's "packet counted twice": the last
// packet of the busy period at a node is the first packet of the busy
// period at the next node, and its size is only known to be bounded by
// the largest frame crossing that node — the pessimism source analysed
// in the paper's section III-B.
//
// The grouping (serialization) refinement caps the first-frame burst of
// the flows that first meet i at the same port through the same input
// link: those frames arrive serialized on that link, so they cannot all
// be queued simultaneously; their joint contribution is bounded by the
// largest member frame plus the link throughput over the busy window —
// the leaky-bucket shaping quoted in the paper.
package trajectory

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"afdx/internal/afdx"
	"afdx/internal/core/tol"
	"afdx/internal/lint"
	"afdx/internal/netcalc"
	"afdx/internal/obs"
	"afdx/internal/parallel"
)

// PrefixMode selects how the latest arrival time Smax_j at a meeting port
// is bounded.
type PrefixMode int

const (
	// PrefixNC bounds Smax_j with the grouped Network Calculus prefix
	// delay of flow j up to the meeting port (safe and fast; default).
	PrefixNC PrefixMode = iota
	// PrefixTrajectory bounds Smax_j recursively with the Trajectory
	// approach applied to j's prefix sub-path (the refinement used by
	// the paper's tool; slower, usually tighter).
	PrefixTrajectory
)

// Options selects analysis variants.
type Options struct {
	// Grouping enables the serialization refinement (paper Fig. 4).
	Grouping bool
	// DeltaAtFirstNode switches the transition ("counted twice") term
	// from the receiving-node convention (default, matches the paper's
	// description "the biggest packet of a VL meeting v1 in that node")
	// to attributing it to the departing node. Ablation knob.
	DeltaAtFirstNode bool
	// SharedTransition restricts each transition term to the flows that
	// cross BOTH ports of the transition: the busy-period-bridging
	// packet leaves the previous port and is queued at the next one, so
	// only such flows can supply it. This is the refinement the paper's
	// conclusion announces as future work ("adapt the trajectory
	// approach ... where the bounds are worse than network calculus");
	// it directly shrinks the small-frame pessimism of Figure 7.
	SharedTransition bool
	// PrefixMode selects the Smax bound (see PrefixMode).
	PrefixMode PrefixMode
	// Parallel bounds the analysis worker pool: paths are analysed
	// concurrently by at most this many goroutines (<= 0 selects
	// GOMAXPROCS, 1 is strictly sequential). Every worker count
	// produces bit-identical results: each path's bound is a pure
	// function of the configuration and the shared prefix bounds, and
	// worker results merge in canonical path order (see DESIGN.md,
	// "Concurrency and determinism").
	Parallel int
}

// DefaultOptions matches the paper's "Trajectory approach" column:
// grouping on, receiving-node transition term, NC-bounded prefixes.
func DefaultOptions() Options { return Options{Grouping: true} }

// PathDetail exposes the internals of one path analysis, for reports and
// for tests of the busy-period machinery.
type PathDetail struct {
	DelayUs        float64
	BusyPeriodUs   float64 // length bound of the source-port busy period
	CriticalT      float64 // emission offset t attaining the maximum
	NumCandidates  int     // evaluated step points
	NumInterferers int     // flows sharing at least one port (incl. self)
}

// Result is the outcome of a Trajectory analysis of a full configuration.
type Result struct {
	Opts       Options
	PathDelays map[afdx.PathID]float64
	Details    map[afdx.PathID]PathDetail
}

// PathDelay returns the end-to-end bound of one path.
func (r *Result) PathDelay(id afdx.PathID) (float64, error) {
	d, ok := r.PathDelays[id]
	if !ok {
		return 0, fmt.Errorf("trajectory: unknown path %v", id)
	}
	return d, nil
}

// prefixCache memoizes recursive prefix response times: the latest
// departure of a VL from a given port (PrefixTrajectory mode). It is
// safe for concurrent use by the per-path workers; a value may be
// computed twice under contention (both computations are the same pure
// function, so whichever lands is bit-identical), which keeps readers
// from blocking on each other and cannot deadlock on cyclic
// dependencies. Cycle detection is NOT the cache's job: recursion
// tracks its own call chain in a per-goroutine visiting set (see sMax),
// because a shared in-progress map would misread another worker's
// ongoing computation as a cycle.
type prefixCache struct {
	mu  sync.RWMutex
	val map[netcalc.FlowPortKey]float64
}

func (c *prefixCache) get(k netcalc.FlowPortKey) (float64, bool) {
	c.mu.RLock()
	v, ok := c.val[k]
	c.mu.RUnlock()
	return v, ok
}

func (c *prefixCache) put(k netcalc.FlowPortKey, v float64) {
	c.mu.Lock()
	c.val[k] = v
	c.mu.Unlock()
}

// trMetrics is the engine's instrument bundle, resolved once per run
// from the context registry; all fields may be nil (the obs
// instruments no-op on nil receivers).
//
// The split between classes is exact: the top-level work set (one
// analyzePortSeq per path) is fixed by the configuration, so its
// counts are Deterministic. Recursive prefix work (PrefixTrajectory
// mode only) goes through the contended trajPrefix cache, where a
// value may be computed twice under parallel contention — those
// counts are scheduling observations and are registered BestEffort.
type trMetrics struct {
	paths       *obs.Counter   // top-level paths analysed
	busyFixes   *obs.Counter   // top-level busy-period fixpoints computed
	busyIters   *obs.Counter   // total fixpoint rounds across them
	busyRounds  *obs.Histogram // rounds per fixpoint
	candidates  *obs.Counter   // candidate emission offsets evaluated
	interferers *obs.Histogram // interference-set size per path
	ncHits      *obs.Counter   // NC prefix-table lookups served (PrefixNC)
	ncMiss      *obs.Counter   // NC prefix-table lookups missing (errors)
	recHits     *obs.Counter   // trajPrefix cache hits (PrefixTrajectory)
	recMiss     *obs.Counter   // trajPrefix cache misses → recursive computation
}

func newTrMetrics(reg *obs.Registry) trMetrics {
	if reg == nil {
		return trMetrics{}
	}
	return trMetrics{
		paths: reg.Counter("trajectory.paths_analyzed", obs.Deterministic,
			"(VL, destination) paths bounded at top level"),
		busyFixes: reg.Counter("trajectory.busy_periods", obs.Deterministic,
			"source-port busy-period fixpoints computed for top-level paths"),
		busyIters: reg.Counter("trajectory.busy_period_iterations", obs.Deterministic,
			"busy-period fixpoint rounds summed over top-level paths"),
		busyRounds: reg.Histogram("trajectory.busy_period_rounds", obs.Deterministic,
			"fixpoint rounds per top-level busy-period computation"),
		candidates: reg.Counter("trajectory.candidate_offsets", obs.Deterministic,
			"emission offsets evaluated for top-level paths"),
		interferers: reg.Histogram("trajectory.interference_set_size", obs.Deterministic,
			"flows in the interference set per top-level path (incl. self)"),
		ncHits: reg.Counter("trajectory.prefix_cache_hits", obs.Deterministic,
			"S_max bounds served from the NC prefix table (PrefixNC mode)"),
		ncMiss: reg.Counter("trajectory.prefix_cache_misses", obs.Deterministic,
			"S_max lookups missing from the NC prefix table (an engine error)"),
		recHits: reg.Counter("trajectory.prefix_recursive_cache_hits", obs.BestEffort,
			"S_max bounds served from the recursive prefix cache (PrefixTrajectory mode)"),
		recMiss: reg.Counter("trajectory.prefix_recursive_cache_misses", obs.BestEffort,
			"recursive S_max computations (duplicates possible under contention)"),
	}
}

// analyzer carries the shared state of one Analyze run. After
// newAnalyzer returns, everything except the prefix cache is read-only,
// so the per-path workers of Analyze share one analyzer.
type analyzer struct {
	pg   *afdx.PortGraph
	opts Options
	m    trMetrics
	// ncPrefix holds the NC prefix delays when PrefixMode == PrefixNC.
	ncPrefix map[netcalc.FlowPortKey]float64
	// trajPrefix caches recursive prefix response times
	// (PrefixTrajectory mode).
	trajPrefix prefixCache
	// reference forces the pre-flattening hot path (reference.go) —
	// the anchor the flattened engine is differentially tested and
	// benchmarked against. Never set on production entry points.
	reference bool
	// flat is the dense per-run index the flattened hot path runs on
	// (flat.go). Built by prepare after the prefix bounds are known;
	// nil only on reference analyzers.
	flat *flatIndex
}

// newAnalyzer validates the configuration for trajectory analysis and
// prepares the shared state (prefix bounds, flat hot-path index).
func newAnalyzer(ctx context.Context, pg *afdx.PortGraph, opts Options) (*analyzer, error) {
	return newAnalyzerWith(ctx, pg, opts, false)
}

// newAnalyzerWith is newAnalyzer with an engine selector: reference
// analyzers skip the flat index and run the pre-flattening hot path
// (differential tests and benchmarks only).
func newAnalyzerWith(ctx context.Context, pg *afdx.PortGraph, opts Options, reference bool) (*analyzer, error) {
	a, err := newAnalyzerShell(ctx, pg, opts)
	if err != nil {
		return nil, err
	}
	a.reference = reference
	if opts.PrefixMode == PrefixNC {
		ncOpts := netcalc.DefaultOptions()
		ncOpts.Parallel = opts.Parallel
		nc, err := netcalc.AnalyzeCtx(ctx, pg, ncOpts)
		if err != nil {
			return nil, fmt.Errorf("trajectory: computing NC prefix bounds: %w", err)
		}
		a.ncPrefix = nc.PrefixDelays
	}
	if err := a.prepare(); err != nil {
		return nil, err
	}
	return a, nil
}

// newAnalyzerShell runs the configuration checks and builds the shared
// analyzer state without the NC prefix run; newAnalyzer adds a cold
// prefix run, the incremental entry point (incremental.go) a cached
// one.
func newAnalyzerShell(ctx context.Context, pg *afdx.PortGraph, opts Options) (*analyzer, error) {
	a := &analyzer{
		pg:         pg,
		opts:       opts,
		m:          newTrMetrics(obs.RegistryFrom(ctx)),
		trajPrefix: prefixCache{val: map[netcalc.FlowPortKey]float64{}},
	}
	// Shared stability pre-flight (lint diagnostic AFDX001), consuming
	// PortGraph.UtilizationReport exactly as the Network Calculus engine
	// and the linter do.
	if err := lint.CheckStability(pg); err != nil {
		return nil, fmt.Errorf("trajectory: %w", err)
	}
	// The Trajectory approach, as published for AFDX, analyses FIFO
	// output ports; mixed static-priority configurations are analysable
	// with the Network Calculus engine only.
	if len(pg.Net.VLs) == 0 {
		return nil, fmt.Errorf("trajectory: no virtual links")
	}
	prio := pg.Net.VLs[0].Priority
	for _, vl := range pg.Net.VLs {
		if vl.Priority != prio {
			return nil, fmt.Errorf("trajectory: VL %s has priority %d but VL %s has %d; the trajectory analysis supports FIFO (uniform priority) only — use netcalc for static-priority configurations",
				vl.ID, vl.Priority, pg.Net.VLs[0].ID, prio)
		}
	}
	return a, nil
}

// Analyze runs the Trajectory analysis over a feed-forward port graph.
// Paths are independent analysis units, so they fan out over the
// bounded worker pool (Options.Parallel); results land indexed in the
// canonical path order and merge into the Result maps on the calling
// goroutine, which keeps every worker count bit-identical to the
// sequential run.
func Analyze(pg *afdx.PortGraph, opts Options) (*Result, error) {
	return AnalyzeCtx(context.Background(), pg, opts)
}

// AnalyzeCtx is Analyze with observability: when ctx carries an
// obs.Registry the engine counts paths, busy-period fixpoint rounds,
// candidate offsets and prefix-cache traffic; when it carries an
// obs.Tracer the run is wrapped in a "trajectory" span (the nested NC
// prefix analysis appears as its "netcalc" child) with one
// "path:<vl>/<idx>" span per analyzed path. Observation never
// influences the computation: results are bit-identical with or
// without it.
func AnalyzeCtx(ctx context.Context, pg *afdx.PortGraph, opts Options) (*Result, error) {
	ctx, span := obs.StartSpan(ctx, "trajectory")
	defer span.End()
	a, err := newAnalyzer(ctx, pg, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Opts:       opts,
		PathDelays: map[afdx.PathID]float64{},
		Details:    map[afdx.PathID]PathDetail{},
	}
	paths := pg.Net.AllPaths()
	dets := make([]PathDetail, len(paths))
	err = parallel.ForEachCtx(ctx, opts.Parallel, len(paths), func(i int) error {
		_, psp := obs.StartSpan(ctx, "path:"+paths[i].String())
		defer psp.End()
		det, err := a.analyzePath(ctx, paths[i])
		dets[i] = det
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, pid := range paths {
		res.PathDelays[pid] = dets[i].DelayUs
		res.Details[pid] = dets[i]
	}
	return res, nil
}

// interferer is one flow of the interference set of a path.
type interferer struct {
	vl    *afdx.VirtualLink
	first afdx.PortID // first port shared with the analyzed path
	prev  string      // input node of the flow at that port ("" = source)
	cUs   float64     // max transmission time over the shared ports
	aUs   float64     // window alignment A_ij
	// serRatio is input-link rate / first-port rate: the serialization
	// cap of a group grows with the emission window scaled by it.
	serRatio float64
}

// analyzePath bounds the end-to-end delay of one (VL, destination) path.
// ctx is checked inside the busy-period and candidate loops, so a
// pathological configuration can be cancelled mid-port.
func (a *analyzer) analyzePath(ctx context.Context, pid afdx.PathID) (PathDetail, error) {
	ports := a.pg.PathPorts(pid)
	vl := a.pg.VL(pid.VL)
	if len(ports) == 0 || vl == nil {
		return PathDetail{}, fmt.Errorf("trajectory: unknown path %v", pid)
	}
	a.m.paths.Inc()
	return a.analyzePortSeq(ctx, vl, ports, nil)
}

// analyzePortSeq bounds the latest complete transmission of a frame of vl
// over the given (prefix of its) port sequence, relative to its emission.
// visiting is the per-goroutine set of (VL, port) prefix computations on
// the current recursion chain (PrefixTrajectory cycle detection); nil at
// a recursion root.
//
// The work is dispatched to the flattened hot path (flat.go) unless the
// analyzer was built as a reference anchor; both produce bit-identical
// PathDetails (proven by the differential property tests in
// flat_test.go), so the choice is invisible to callers.
func (a *analyzer) analyzePortSeq(ctx context.Context, vl *afdx.VirtualLink, ports []afdx.PortID, visiting map[netcalc.FlowPortKey]bool) (PathDetail, error) {
	if a.reference {
		return a.analyzePortSeqRef(ctx, vl, ports, visiting)
	}
	return a.analyzePortSeqFlat(ctx, vl, ports, visiting)
}

// transitionSum bounds the transition ("counted twice") packets of a
// port sequence: one largest-frame term per transition, attributed per
// Options (receiving node, departing node, or shared-flows refinement).
func (a *analyzer) transitionSum(ports []afdx.PortID) float64 {
	deltaSum := 0.0
	if a.opts.SharedTransition {
		// The bridging packet of transition h_k -> h_{k+1} crosses both
		// ports; bound it by the largest frame of the flows doing so.
		for k := 0; k+1 < len(ports); k++ {
			deltaSum += a.maxSharedFrameTime(ports[k], ports[k+1])
		}
	} else {
		from, to := 1, len(ports) // receiving-node convention: h_2 .. h_q
		if a.opts.DeltaAtFirstNode {
			from, to = 0, len(ports)-1 // departing-node convention: h_1 .. h_{q-1}
		}
		for k := from; k < to; k++ {
			deltaSum += a.maxFrameTimeAt(ports[k])
		}
	}
	return deltaSum
}

// sMax bounds the latest arrival time of a frame of vl at the given port,
// relative to its emission (0 at the flow's source port). In
// PrefixTrajectory mode the recursive computation is memoized in the
// shared prefix cache; visiting is this goroutine's recursion chain and
// detects cyclic prefix dependencies without mistaking another worker's
// in-flight computation for one.
func (a *analyzer) sMax(ctx context.Context, vl *afdx.VirtualLink, port afdx.PortID, visiting map[netcalc.FlowPortKey]bool) (float64, error) {
	key := netcalc.FlowPortKey{VL: vl.ID, Port: port}
	if a.opts.PrefixMode == PrefixNC {
		d, ok := a.ncPrefix[key]
		if !ok {
			a.m.ncMiss.Inc()
			return 0, fmt.Errorf("trajectory: no NC prefix bound for VL %s at %s", vl.ID, port)
		}
		// Hits are batched by the caller (interferenceSet): one atomic
		// Add per interference set, not one per lookup.
		return d, nil
	}
	if d, ok := a.trajPrefix.get(key); ok {
		a.m.recHits.Inc()
		return d, nil
	}
	a.m.recMiss.Inc()
	if visiting[key] {
		return 0, fmt.Errorf("trajectory: cyclic prefix dependency at VL %s port %s", vl.ID, port)
	}
	prefix, onPath := a.prefixPorts(vl, port)
	if !onPath {
		// A flow is only ever queried at ports it crosses (it came out
		// of that port's flow list); reaching this is an engine bug, and
		// absorbing it as a zero prefix bound would silently turn the
		// bug into an optimistic S_max.
		return 0, fmt.Errorf("trajectory: internal error: VL %s does not cross port %s (S_max queried off-path)", vl.ID, port)
	}
	if len(prefix) == 0 {
		a.trajPrefix.put(key, 0)
		return 0, nil
	}
	if visiting == nil {
		visiting = map[netcalc.FlowPortKey]bool{}
	}
	visiting[key] = true
	det, err := a.analyzePortSeq(ctx, vl, prefix, visiting)
	delete(visiting, key)
	if err != nil {
		return 0, err
	}
	a.trajPrefix.put(key, det.DelayUs)
	return det.DelayUs, nil
}

// prefixPorts returns the ports a VL crosses strictly before the given
// port (on whichever of its paths contains that port; tree routing makes
// the prefix unique). The second result distinguishes "port is the VL's
// source hop" (empty prefix, true) from "the VL never crosses this port
// at all" (false) — the two used to collapse into the same nil return,
// letting a caller bug read an off-path query as a zero prefix bound.
func (a *analyzer) prefixPorts(vl *afdx.VirtualLink, port afdx.PortID) ([]afdx.PortID, bool) {
	for pi := range vl.Paths {
		seq := a.pg.PathPorts(afdx.PathID{VL: vl.ID, PathIdx: pi})
		for k, h := range seq {
			if h == port {
				return seq[:k], true
			}
		}
	}
	return nil, false
}

// maxFrameTimeAt returns max_j C_j over the flows crossing a port.
// With the flat index built, the max is precomputed (flow-order max
// accumulation, so the value is the bitwise same float either way).
func (a *analyzer) maxFrameTimeAt(id afdx.PortID) float64 {
	if a.flat != nil {
		if fp := a.flat.ports[id]; fp != nil {
			return fp.maxC
		}
	}
	p := a.pg.Ports[id]
	m := 0.0
	for _, f := range p.Flows {
		if c := f.VL.CMaxUs(p.RateBitsPerUs); c > m {
			m = c
		}
	}
	return m
}

// maxSharedFrameTime returns max_j C_j over the flows crossing both
// ports (the bridging-packet candidates of the SharedTransition option).
// The analyzed flow itself always crosses both, so the set is never
// empty on its own path.
func (a *analyzer) maxSharedFrameTime(prev, next afdx.PortID) float64 {
	p, q := a.pg.Ports[prev], a.pg.Ports[next]
	m := 0.0
	for _, f := range p.Flows {
		if q.FlowByVL(f.VL.ID) == nil {
			continue
		}
		if c := f.VL.CMaxUs(p.RateBitsPerUs); c > m {
			m = c
		}
	}
	return m
}

// busyFixpoint iterates a port workload function to its least fixpoint.
// It is the shared core of the reference sourceBusyPeriod and the flat
// engine's memoized busy periods: both hand it the same scalars
// (sumC = w(0) envelope burst, minC = smallest frame, util = port
// utilization, all accumulated in the port's flow order), so both
// converge to bit-identical values in the same number of rounds.
//
// The caller has already rejected util >= 1; under util < 1 the least
// fixpoint sits below the remaining-capacity bound bMax = sumC/(1-util),
// and every non-final round queues at least one more whole frame, so
// rounds are capped by (bMax - w(0)) / minC.
func busyFixpoint(ctx context.Context, src afdx.PortID, work func(float64) float64, sumC, minC, util float64) (float64, int, error) {
	b := work(0)
	bMax := sumC / (1 - util)
	maxIter := int((bMax-b)/minC) + 2
	for iter := 0; iter < maxIter; iter++ {
		// High-utilization ports take thousands of rounds to converge;
		// poll for cancellation at a stride that keeps the check free.
		if iter&1023 == 1023 {
			if err := ctx.Err(); err != nil {
				return 0, iter, fmt.Errorf("trajectory: busy-period fixpoint of port %s cancelled: %w", src, err)
			}
		}
		nb := work(b)
		if nb <= b+tol.At(b) {
			return nb, iter + 1, nil
		}
		b = nb
	}
	return 0, maxIter, fmt.Errorf("trajectory: busy period of port %s exceeded its capacity bound %.3f us (numerical non-convergence)", src, bMax)
}

// frameCount is N(x) = 1 + floor(max(0,x) / T): the maximum number of
// frames of a BAG-T flow with arrivals inside a window of length x
// (window endpoints included, hence the floor at exact multiples counts
// the edge frame). The count never drops below one: the flows are
// asynchronous, so whatever the jitter alignment A_ij, one frame of an
// interferer can always be queued just ahead of the analyzed frame at
// the meeting port.
func frameCount(x, t float64) int {
	if x < 0 {
		x = 0
	}
	return 1 + int(math.Floor((x+tol.At(x))/t))
}

// candidateOffsets enumerates the emission offsets where the objective
// can attain its maximum: t = 0 and every step point k*T_j - A_ij of an
// interferer inside the busy period. A long busy period over a short
// BAG yields thousands of step points per interferer, so the
// enumeration polls ctx and can be cancelled mid-port. All comparisons
// use the shared relative tolerance (tol): offsets scale with the busy
// period, which exceeds 1e6 us on large-BAG configurations where an
// absolute 1e-9 guard would fall below one ulp.
func candidateOffsets(ctx context.Context, inter []interferer, busy float64) ([]float64, error) {
	cands := []float64{0}
	for _, it := range inter {
		T := it.vl.BAGUs()
		// Step points t = k*T - A_ij need t > 0, i.e. k > A_ij/T, and
		// k >= 1 (N_j only jumps at whole windows). The tolerance is in
		// the k domain — relative to the ratio being rounded — so an
		// A_ij sitting a rounding error above an exact multiple of T
		// still starts at that multiple (the t > tol.At(t) filter below
		// then discards the t = 0 duplicate). The pre-fix code negated
		// the ratio (ceil(-A_ij/T)), which collapsed to the k = 1 clamp
		// for every positive A_ij — accidentally correct — but for
		// A_ij <= -T it started at ceil(|A_ij|/T), silently skipping
		// the first valid step points of early-arriving interferers and
		// with them, potentially, the busy-period maximum.
		start := math.Ceil(it.aUs/T - tol.At(it.aUs/T))
		if start < 1 {
			start = 1
		}
		for k, n := start, 0; ; k, n = k+1, n+1 {
			if n&8191 == 8191 {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("trajectory: candidate enumeration cancelled: %w", err)
				}
			}
			t := k*T - it.aUs
			if tol.Gt(t, busy) {
				break
			}
			if t > tol.At(t) {
				cands = append(cands, t)
			}
		}
	}
	sort.Float64s(cands)
	// Deduplicate within tolerance.
	out := cands[:0]
	for _, t := range cands {
		if len(out) == 0 || tol.Gt(t, out[len(out)-1]) {
			out = append(out, t)
		}
	}
	return out, nil
}
