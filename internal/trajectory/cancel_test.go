package trajectory

import (
	"context"
	"errors"
	"testing"

	"afdx/internal/afdx"
)

// An already-cancelled context must abort the analysis before (or
// promptly after) it starts, surfacing context.Canceled through the
// error chain — this pins the ExplainCtx/AnalyzeCtx cancellation paths
// and the poll points inside the candidate and busy-period loops.
func TestAnalyzeCtxAlreadyCancelled(t *testing.T) {
	pg := figure2Graph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeCtx(ctx, pg, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeCtx on cancelled context: got %v, want context.Canceled", err)
	}
}

func TestExplainCtxAlreadyCancelled(t *testing.T) {
	pg := figure2Graph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pid := afdx.PathID{VL: "v1", PathIdx: 0}
	if _, err := ExplainCtx(ctx, pg, pid, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExplainCtx on cancelled context: got %v, want context.Canceled", err)
	}
}

// Cancellation must not poison later runs: the same graph analysed with
// a live context right after a cancelled attempt yields the normal
// result.
func TestAnalyzeAfterCancelledAttempt(t *testing.T) {
	pg := figure2Graph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeCtx(ctx, pg, DefaultOptions()); err == nil {
		t.Fatal("cancelled AnalyzeCtx unexpectedly succeeded")
	}
	res, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PathDelays[afdx.PathID{VL: "v1", PathIdx: 0}]; !almostEq(got, 248) {
		t.Fatalf("post-cancel analysis: v1/0 = %g, want 248", got)
	}
}
