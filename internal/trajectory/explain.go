package trajectory

import (
	"context"
	"fmt"
	"io"
	"sort"

	"afdx/internal/afdx"
)

// Explanation decomposes one path's trajectory bound into its terms —
// the human-readable witness a certification reviewer checks.
type Explanation struct {
	Path         afdx.PathID
	DelayUs      float64
	CriticalT    float64
	Interference []InterferenceTerm
	Transitions  []TransitionTerm
	LatencyUs    float64
}

// InterferenceTerm is one interfering flow's contribution at the
// critical offset.
type InterferenceTerm struct {
	VL        string
	FirstPort afdx.PortID
	InputLink string // "" for source-port flows
	Frames    int
	CUs       float64
	AUs       float64
	// GroupCapped reports whether the serialization cap absorbed part of
	// this flow's group contribution.
	GroupCapped bool
}

// TransitionTerm is one "counted twice" packet bound.
type TransitionTerm struct {
	Port afdx.PortID
	CUs  float64
}

// Explain recomputes one path's bound and returns its decomposition.
// The sum of the parts equals the bound:
//
//	DelayUs = sum(interference, with group caps) + sum(transitions)
//	        + LatencyUs - CriticalT
func Explain(pg *afdx.PortGraph, pid afdx.PathID, opts Options) (*Explanation, error) {
	return ExplainCtx(context.Background(), pg, pid, opts)
}

// ExplainCtx is Explain with the caller's context threaded through the
// underlying analysis and decomposition: cancellation propagates into
// the busy-period and candidate loops, and an obs registry or tracer on
// ctx observes the runs. (Explain used to rebuild its analyzer on
// context.Background(), silently dropping both.)
func ExplainCtx(ctx context.Context, pg *afdx.PortGraph, pid afdx.PathID, opts Options) (*Explanation, error) {
	res, err := AnalyzeCtx(ctx, pg, opts)
	if err != nil {
		return nil, err
	}
	det, ok := res.Details[pid]
	if !ok {
		return nil, fmt.Errorf("trajectory: unknown path %v", pid)
	}
	a, err := newAnalyzer(ctx, pg, opts)
	if err != nil {
		return nil, err
	}
	vl := pg.VL(pid.VL)
	ports := pg.PathPorts(pid)
	inter, err := a.interferenceSet(ctx, vl, ports, nil)
	if err != nil {
		return nil, err
	}
	ex := &Explanation{Path: pid, DelayUs: det.DelayUs, CriticalT: det.CriticalT}
	t := det.CriticalT
	for _, it := range inter {
		n := frameCount(t+it.aUs, it.vl.BAGUs())
		ex.Interference = append(ex.Interference, InterferenceTerm{
			VL:        it.vl.ID,
			FirstPort: it.first,
			InputLink: it.prev,
			Frames:    n,
			CUs:       it.cUs,
			AUs:       it.aUs,
		})
	}
	// Mark group-capped terms: recompute the grouped sum and compare the
	// per-group raw first-frame total against the cap.
	if opts.Grouping {
		type gk struct {
			port afdx.PortID
			prev string
		}
		raw := map[gk]float64{}
		maxC := map[gk]float64{}
		ratio := map[gk]float64{}
		for _, it := range inter {
			if frameCount(t+it.aUs, it.vl.BAGUs()) == 0 {
				continue
			}
			k := gk{it.first, it.prev}
			raw[k] += it.cUs
			if it.cUs > maxC[k] {
				maxC[k] = it.cUs
			}
			ratio[k] = it.serRatio
		}
		for i := range ex.Interference {
			it := &ex.Interference[i]
			k := gk{it.FirstPort, it.InputLink}
			serialized := it.InputLink != "" || countGroup(inter, k.port, k.prev) > 1
			if serialized && raw[k] > maxC[k]+t*ratio[k] {
				it.GroupCapped = true
			}
		}
	}
	from, to := 1, len(ports)
	if opts.DeltaAtFirstNode {
		from, to = 0, len(ports)-1
	}
	if opts.SharedTransition {
		for k := 0; k+1 < len(ports); k++ {
			ex.Transitions = append(ex.Transitions, TransitionTerm{
				Port: ports[k+1], CUs: a.maxSharedFrameTime(ports[k], ports[k+1]),
			})
		}
	} else {
		for k := from; k < to; k++ {
			ex.Transitions = append(ex.Transitions, TransitionTerm{
				Port: ports[k], CUs: a.maxFrameTimeAt(ports[k]),
			})
		}
	}
	for _, h := range ports {
		ex.LatencyUs += pg.Ports[h].LatencyUs
	}
	sort.Slice(ex.Interference, func(i, j int) bool { return ex.Interference[i].VL < ex.Interference[j].VL })
	return ex, nil
}

func countGroup(inter []interferer, port afdx.PortID, prev string) int {
	n := 0
	for _, it := range inter {
		if it.first == port && it.prev == prev {
			n++
		}
	}
	return n
}

// Render writes the explanation as text.
func (ex *Explanation) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "trajectory bound for %v: %.2f us (critical offset t = %.2f us)\n",
		ex.Path, ex.DelayUs, ex.CriticalT); err != nil {
		return err
	}
	fmt.Fprintln(w, "interference (counted once, at first shared port):")
	for _, it := range ex.Interference {
		capped := ""
		if it.GroupCapped {
			capped = "  [serialization cap active]"
		}
		link := it.InputLink
		if link == "" {
			link = "(source)"
		}
		fmt.Fprintf(w, "  %-8s at %-10v via %-8s: %d frame(s) x %.2f us (A=%.2f)%s\n",
			it.VL, it.FirstPort, link, it.Frames, it.CUs, it.AUs, capped)
	}
	fmt.Fprintln(w, "transition terms (busy-period bridging packets):")
	for _, tr := range ex.Transitions {
		fmt.Fprintf(w, "  at %-10v: %.2f us\n", tr.Port, tr.CUs)
	}
	_, err := fmt.Fprintf(w, "technological latencies: %.2f us\n", ex.LatencyUs)
	return err
}
