package trajectory

import (
	"context"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
)

// The PR 7 benchmark pair: the industrial configuration analysed by the
// reference (pre-flattening) engine — Cold — and by the flat hot path —
// Fast. Both produce bit-identical results (see flat_test.go), so the
// recorded ratio is pure hot-loop wall time; `make bench-pr7` turns the
// pair into the BENCH_PR7.json speedup record.

func industrialPG(b *testing.B) *afdx.PortGraph {
	b.Helper()
	net, err := configgen.Generate(configgen.DefaultSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		b.Fatal(err)
	}
	return pg
}

func benchIndustrial(b *testing.B, workers int, reference bool) {
	pg := industrialPG(b)
	opts := DefaultOptions()
	opts.Parallel = workers
	run := AnalyzeCtx
	if reference {
		run = analyzeReference
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(context.Background(), pg, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.PathDelays) == 0 {
			b.Fatal("no paths analysed")
		}
	}
}

func BenchmarkTrajectoryIndustrialSeqCold(b *testing.B) { benchIndustrial(b, 1, true) }
func BenchmarkTrajectoryIndustrialSeqFast(b *testing.B) { benchIndustrial(b, 1, false) }
func BenchmarkTrajectoryIndustrialParCold(b *testing.B) { benchIndustrial(b, 0, true) }
func BenchmarkTrajectoryIndustrialParFast(b *testing.B) { benchIndustrial(b, 0, false) }
