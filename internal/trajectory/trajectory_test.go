package trajectory

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/netcalc"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

func figure2Graph(t *testing.T) *afdx.PortGraph {
	t.Helper()
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

// Hand-derived bounds on the paper's Figure 2 configuration (all VLs:
// BAG 4 ms, s_max 500 B, C = 40 us, L = 16 us per port):
//
// v1 (e1 -> S1 -> S3 -> e6), grouped:
//
//	interference: v1 (40) + v2 (40) + serialized {v3,v4} (40) = 120
//	transitions:  max C at S1->S3 (40) + at S3->e6 (40)       =  80
//	latencies:    3 * 16                                      =  48
//	total                                                     = 248 us
//
// Without grouping the {v3,v4} cap disappears: 288 us (the paper's
// Figure 3 impossible simultaneous-arrival scenario).
func TestFigure2TrajectoryGrouped(t *testing.T) {
	res, err := Analyze(figure2Graph(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, vl := range []string{"v1", "v2", "v3", "v4"} {
		d, err := res.PathDelay(afdx.PathID{VL: vl, PathIdx: 0})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(d, 248) {
			t.Errorf("grouped trajectory bound of %s = %g, want 248", vl, d)
		}
	}
}

func TestFigure2TrajectoryUngrouped(t *testing.T) {
	res, err := Analyze(figure2Graph(t), Options{Grouping: false})
	if err != nil {
		t.Fatal(err)
	}
	d, err := res.PathDelay(afdx.PathID{VL: "v1", PathIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d, 288) {
		t.Errorf("ungrouped trajectory bound of v1 = %g, want 288", d)
	}
}

func TestFigure2SingleFlowPath(t *testing.T) {
	res, err := Analyze(figure2Graph(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d, err := res.PathDelay(afdx.PathID{VL: "v5", PathIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	// v5 crosses two ports alone: C + deltaC + 2L = 40 + 40 + 32 = 112,
	// which equals the exact worst case 2*(C+L).
	if !almostEq(d, 112) {
		t.Errorf("trajectory bound of v5 = %g, want 112", d)
	}
}

func TestGroupingNeverWorsens(t *testing.T) {
	pg := figure2Graph(t)
	with, err := Analyze(pg, Options{Grouping: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Analyze(pg, Options{Grouping: false})
	if err != nil {
		t.Fatal(err)
	}
	for pid, d := range with.PathDelays {
		if d > without.PathDelays[pid]+1e-9 {
			t.Errorf("grouping worsened %v: %g > %g", pid, d, without.PathDelays[pid])
		}
	}
}

func TestTrajectoryTighterThanNCOnFigure2(t *testing.T) {
	// On Figure 2 every VL has equal frame sizes, the regime where the
	// paper reports the Trajectory approach winning.
	pg := figure2Graph(t)
	tr, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nc, err := netcalc.Analyze(pg, netcalc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for pid, d := range tr.PathDelays {
		if d > nc.PathDelays[pid]+1e-9 {
			t.Errorf("path %v: trajectory %g exceeds NC %g", pid, d, nc.PathDelays[pid])
		}
	}
}

func TestSmallFrameFlipsComparison(t *testing.T) {
	// Paper Fig. 7: when v1's frames become much smaller than those it
	// meets, the transition term keeps the Trajectory bound high while
	// the NC bound shrinks, and NC becomes the tighter method.
	n := afdx.Figure2Config()
	n.VLs[0].SMaxBytes = 100
	n.VLs[0].SMinBytes = 100
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nc, err := netcalc.Analyze(pg, netcalc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pid := afdx.PathID{VL: "v1", PathIdx: 0}
	if tr.PathDelays[pid] <= nc.PathDelays[pid] {
		t.Errorf("at s_max=100B NC (%g) should beat trajectory (%g)",
			nc.PathDelays[pid], tr.PathDelays[pid])
	}
}

func TestTrajectoryFlatInOwnBAG(t *testing.T) {
	// Paper Fig. 8: the trajectory bound of v1 does not depend on v1's
	// BAG (as long as busy periods stay below one BAG).
	var prev float64
	for i, bag := range []float64{1, 2, 4, 8, 16, 32, 64, 128} {
		n := afdx.Figure2Config()
		n.VLs[0].BAGMs = bag
		pg, err := afdx.BuildPortGraph(n, afdx.Strict)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Analyze(pg, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		d := res.PathDelays[afdx.PathID{VL: "v1", PathIdx: 0}]
		if i > 0 && !almostEq(d, prev) {
			t.Errorf("BAG %g ms: bound %g differs from %g", bag, d, prev)
		}
		prev = d
	}
}

func TestPathDetailFields(t *testing.T) {
	res, err := Analyze(figure2Graph(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	det := res.Details[afdx.PathID{VL: "v1", PathIdx: 0}]
	if det.NumInterferers != 4 {
		t.Errorf("v1 has 4 interferers (incl. itself), got %d", det.NumInterferers)
	}
	if !almostEq(det.BusyPeriodUs, 40) {
		t.Errorf("source busy period = %g, want 40 (v1 alone on e1)", det.BusyPeriodUs)
	}
	if det.NumCandidates < 1 {
		t.Error("at least the t=0 candidate must be evaluated")
	}
	if det.CriticalT != 0 {
		t.Errorf("critical offset should be 0 on this light load, got %g", det.CriticalT)
	}
}

func TestPrefixTrajectoryModeTightens(t *testing.T) {
	pg := figure2Graph(t)
	ncMode, err := Analyze(pg, Options{Grouping: true, PrefixMode: PrefixNC})
	if err != nil {
		t.Fatal(err)
	}
	trMode, err := Analyze(pg, Options{Grouping: true, PrefixMode: PrefixTrajectory})
	if err != nil {
		t.Fatal(err)
	}
	for pid, d := range trMode.PathDelays {
		if d > ncMode.PathDelays[pid]+1e-9 {
			t.Errorf("path %v: PrefixTrajectory %g worse than PrefixNC %g",
				pid, d, ncMode.PathDelays[pid])
		}
	}
}

func TestDeltaPlacementAblation(t *testing.T) {
	pg := figure2Graph(t)
	recv, err := Analyze(pg, Options{Grouping: true})
	if err != nil {
		t.Fatal(err)
	}
	first, err := Analyze(pg, Options{Grouping: true, DeltaAtFirstNode: true})
	if err != nil {
		t.Fatal(err)
	}
	// On Figure 2 all frames are equal so both conventions agree exactly.
	for pid, d := range recv.PathDelays {
		if !almostEq(d, first.PathDelays[pid]) {
			t.Errorf("path %v: conventions disagree on uniform frames: %g vs %g",
				pid, d, first.PathDelays[pid])
		}
	}
	// With a small v1 they must differ on v1's path (the source port's
	// largest frame is v1's own 100B, the receiving ports' is 500B).
	n := afdx.Figure2Config()
	n.VLs[0].SMaxBytes = 100
	n.VLs[0].SMinBytes = 100
	pg2, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	recv2, err := Analyze(pg2, Options{Grouping: true})
	if err != nil {
		t.Fatal(err)
	}
	first2, err := Analyze(pg2, Options{Grouping: true, DeltaAtFirstNode: true})
	if err != nil {
		t.Fatal(err)
	}
	pid := afdx.PathID{VL: "v1", PathIdx: 0}
	if recv2.PathDelays[pid] <= first2.PathDelays[pid] {
		t.Errorf("receiving-node convention (%g) should exceed first-node (%g) for a small v1",
			recv2.PathDelays[pid], first2.PathDelays[pid])
	}
}

func TestBusyPeriodWithCompetingSourceFlows(t *testing.T) {
	// Two VLs on the same source end system: the busy period of the
	// shared source port covers both frames.
	n := afdx.Figure2Config()
	n.VLs = append(n.VLs, &afdx.VirtualLink{
		ID: "v6", Source: "e1", BAGMs: 4, SMaxBytes: 500, SMinBytes: 500,
		Paths: [][]string{{"e1", "S1", "S3", "e6"}},
	})
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	det := res.Details[afdx.PathID{VL: "v1", PathIdx: 0}]
	if !almostEq(det.BusyPeriodUs, 80) {
		t.Errorf("busy period with two source VLs = %g, want 80", det.BusyPeriodUs)
	}
}

func TestUnstableConfigurationRejected(t *testing.T) {
	n := afdx.Figure2Config()
	for _, v := range n.VLs {
		v.BAGMs = 0.25
		v.SMaxBytes = 1518
	}
	pg, err := afdx.BuildPortGraph(n, afdx.Relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(pg, DefaultOptions()); err == nil {
		t.Fatal("expected instability error")
	}
}

func TestUnknownPath(t *testing.T) {
	res, err := Analyze(figure2Graph(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.PathDelay(afdx.PathID{VL: "zz", PathIdx: 3}); err == nil {
		t.Error("expected error for unknown path")
	}
}

func TestFrameCount(t *testing.T) {
	cases := []struct {
		x, t float64
		want int
	}{
		{-1, 100, 1}, // never below one frame: flows are asynchronous
		{0, 100, 1},
		{50, 100, 1},
		{100, 100, 2},
		{250, 100, 3},
	}
	for _, c := range cases {
		if got := frameCount(c.x, c.t); got != c.want {
			t.Errorf("frameCount(%g,%g) = %d, want %d", c.x, c.t, got, c.want)
		}
	}
}

func TestHighLoadCountsMultipleFrames(t *testing.T) {
	// Shrink BAGs until busy periods span several frames of the source
	// flow: the bound must grow accordingly (not stay at the 1-frame
	// approximation).
	n := afdx.Figure2Config()
	for _, v := range n.VLs {
		v.BAGMs = 1
		v.SMaxBytes = 1518
		v.SMinBytes = 1518
	}
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pid := afdx.PathID{VL: "v1", PathIdx: 0}
	// C = 121.44 us; with one frame per flow the interference would be
	// 3*121.44 + transitions 2*121.44 + 48 = 655.2; the bound must not
	// be below that.
	if res.PathDelays[pid] < 655 {
		t.Errorf("high-load bound %g suspiciously low", res.PathDelays[pid])
	}
}

func TestMulticastFigure1(t *testing.T) {
	pg, err := afdx.BuildPortGraph(afdx.Figure1Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PathDelays) != len(pg.Net.AllPaths()) {
		t.Errorf("got %d path bounds, want %d", len(res.PathDelays), len(pg.Net.AllPaths()))
	}
	for pid, d := range res.PathDelays {
		if d <= 0 || math.IsInf(d, 0) || math.IsNaN(d) {
			t.Errorf("path %v: bad bound %g", pid, d)
		}
	}
}

func TestSharedTransitionRefinement(t *testing.T) {
	// On the untouched Figure 2 configuration the bridging candidates at
	// both transitions include a 500B flow, so the refinement changes
	// nothing.
	pg := figure2Graph(t)
	base, err := Analyze(pg, Options{Grouping: true})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Analyze(pg, Options{Grouping: true, SharedTransition: true})
	if err != nil {
		t.Fatal(err)
	}
	for pid, d := range base.PathDelays {
		if shared.PathDelays[pid] > d+1e-9 {
			t.Errorf("path %v: refinement worsened the bound: %g > %g",
				pid, shared.PathDelays[pid], d)
		}
	}
	v1 := afdx.PathID{VL: "v1", PathIdx: 0}
	if !almostEq(shared.PathDelays[v1], base.PathDelays[v1]) {
		t.Errorf("uniform frames: refined %g should equal base %g",
			shared.PathDelays[v1], base.PathDelays[v1])
	}

	// With a small v1 the transition e1->S1 -> S1->S3 can only be
	// bridged by v1 itself (8 us instead of max-at-node 40 us): the
	// refined bound drops by 32 us on the first transition only
	// (v2 still bridges S1->S3 -> S3->e6).
	n := afdx.Figure2Config()
	n.VLs[0].SMaxBytes = 100
	n.VLs[0].SMinBytes = 100
	pg2, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	base2, err := Analyze(pg2, Options{Grouping: true})
	if err != nil {
		t.Fatal(err)
	}
	shared2, err := Analyze(pg2, Options{Grouping: true, SharedTransition: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := base2.PathDelays[v1] - 32; !almostEq(shared2.PathDelays[v1], want) {
		t.Errorf("refined small-frame bound = %g, want %g",
			shared2.PathDelays[v1], want)
	}
}

func TestSharedTransitionShrinksFig7Pessimism(t *testing.T) {
	// The refinement targets exactly the regime where the paper reports
	// the trajectory approach losing: small own frames meeting large
	// ones. The refined bound must stay at or above NC-feasible floors
	// and strictly below the published-method bound.
	n := afdx.Figure2Config()
	n.VLs[0].SMaxBytes = 100
	n.VLs[0].SMinBytes = 100
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	published, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Analyze(pg, Options{Grouping: true, SharedTransition: true})
	if err != nil {
		t.Fatal(err)
	}
	nc, err := netcalc.Analyze(pg, netcalc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v1 := afdx.PathID{VL: "v1", PathIdx: 0}
	if refined.PathDelays[v1] >= published.PathDelays[v1] {
		t.Errorf("refined %g should be strictly below published %g",
			refined.PathDelays[v1], published.PathDelays[v1])
	}
	// The published bound loses to NC here; the refined one recovers
	// part of the gap.
	gapPublished := published.PathDelays[v1] - nc.PathDelays[v1]
	gapRefined := refined.PathDelays[v1] - nc.PathDelays[v1]
	if gapPublished <= 0 {
		t.Fatalf("precondition: published trajectory should lose to NC, gap %g", gapPublished)
	}
	if gapRefined >= gapPublished {
		t.Errorf("refinement should shrink the losing gap: %g -> %g", gapPublished, gapRefined)
	}
}

func TestMixedPrioritiesRejected(t *testing.T) {
	n := afdx.Figure2Config()
	n.VLs[2].Priority = 1
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(pg, DefaultOptions()); err == nil {
		t.Fatal("the trajectory engine must reject mixed static priorities")
	}
}

func TestUniformNonZeroPriorityAccepted(t *testing.T) {
	n := afdx.Figure2Config()
	for _, v := range n.VLs {
		v.Priority = 1
	}
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.PathDelays[afdx.PathID{VL: "v1", PathIdx: 0}], 248) {
		t.Error("uniform priority must not change the FIFO trajectory bound")
	}
}

func TestExplainDecomposition(t *testing.T) {
	pg := figure2Graph(t)
	ex, err := Explain(pg, afdx.PathID{VL: "v1", PathIdx: 0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ex.DelayUs, 248) {
		t.Errorf("explained bound = %g, want 248", ex.DelayUs)
	}
	if len(ex.Interference) != 4 {
		t.Errorf("interference terms = %d, want 4", len(ex.Interference))
	}
	if len(ex.Transitions) != 2 {
		t.Errorf("transition terms = %d, want 2", len(ex.Transitions))
	}
	if !almostEq(ex.LatencyUs, 48) {
		t.Errorf("latency sum = %g, want 48", ex.LatencyUs)
	}
	// The serialized {v3,v4} group must be flagged as capped.
	capped := 0
	for _, it := range ex.Interference {
		if it.GroupCapped {
			capped++
			if it.VL != "v3" && it.VL != "v4" {
				t.Errorf("unexpected capped term %q", it.VL)
			}
		}
	}
	if capped != 2 {
		t.Errorf("capped terms = %d, want 2 (v3 and v4)", capped)
	}
	// Terms sum to the bound: sum(frames*C with group cap) + deltas + L - t.
	interference := 0.0
	// Recompute with the cap: v1 + v2 + min(v3+v4, maxC) = 40+40+40.
	interference = 40 + 40 + 40
	deltas := ex.Transitions[0].CUs + ex.Transitions[1].CUs
	if got := interference + deltas + ex.LatencyUs - ex.CriticalT; !almostEq(got, ex.DelayUs) {
		t.Errorf("decomposition sums to %g, want %g", got, ex.DelayUs)
	}
	var buf bytes.Buffer
	if err := ex.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"248.00", "serialization cap active", "transition terms"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("explanation text missing %q:\n%s", frag, buf.String())
		}
	}
}

func TestExplainUnknownPath(t *testing.T) {
	pg := figure2Graph(t)
	if _, err := Explain(pg, afdx.PathID{VL: "zz", PathIdx: 0}, DefaultOptions()); err == nil {
		t.Fatal("expected error for unknown path")
	}
}

func TestExplainSharedTransitionVariant(t *testing.T) {
	pg := figure2Graph(t)
	ex, err := Explain(pg, afdx.PathID{VL: "v1", PathIdx: 0},
		Options{Grouping: true, SharedTransition: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Transitions) != 2 {
		t.Errorf("transition terms = %d, want 2", len(ex.Transitions))
	}
}

func TestBusyPeriodSpansMultipleBAGs(t *testing.T) {
	// Five VLs share one source end system with BAGs shorter than the
	// port busy period: the candidate-offset maximisation must evaluate
	// step points beyond t=0 and count second frames.
	n := &afdx.Network{
		Name:       "hotport",
		Params:     afdx.DefaultParams(),
		EndSystems: []string{"src", "dst"},
		Switches:   []string{"SW"},
	}
	for i := 0; i < 5; i++ {
		bag := 0.5 // ms
		if i < 2 {
			bag = 0.25
		}
		n.VLs = append(n.VLs, &afdx.VirtualLink{
			ID: fmt.Sprintf("h%d", i), Source: "src", BAGMs: bag,
			SMaxBytes: 800, SMinBytes: 800,
			Paths: [][]string{{"src", "SW", "dst"}},
		})
	}
	pg, err := afdx.BuildPortGraph(n, afdx.Relaxed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	det := res.Details[afdx.PathID{VL: "h0", PathIdx: 0}]
	// Busy period: 2 VLs at 250 us + 3 at 500 us, C = 64 us:
	// B = 2*2*64 + 3*64 = 448 us (two rounds of the 250 us flows).
	if !almostEq(det.BusyPeriodUs, 448) {
		t.Errorf("busy period = %g, want 448", det.BusyPeriodUs)
	}
	if det.NumCandidates < 2 {
		t.Errorf("candidates = %d, want >= 2 (step at t=250 us)", det.NumCandidates)
	}
	// The maximum is NOT at t=0: the second frames of the 250 us flows
	// enter the busy period at t=250, where the serialized source group
	// contributes min(320, 64+250) + 2*64 = 442, plus the 64 us
	// transition and 32 us latency, minus t: 288 us (vs 160 us at t=0).
	if det.CriticalT != 250 {
		t.Errorf("critical offset = %g, want 250", det.CriticalT)
	}
	if got := res.PathDelays[afdx.PathID{VL: "h0", PathIdx: 0}]; !almostEq(got, 288) {
		t.Errorf("bound = %g, want 288", got)
	}
}

func TestBusyPeriodAtFullUtilizationFailsFast(t *testing.T) {
	// A source port loaded to exactly 1.0 utilization passes the shared
	// stability pre-flight (which rejects only utilization > 1) but has
	// no finite busy period. The remaining-capacity check must return
	// the infeasibility error immediately instead of burning a huge
	// iteration budget discovering the divergence.
	n := &afdx.Network{
		Name:       "full-util",
		Params:     afdx.DefaultParams(),
		EndSystems: []string{"src", "dst"},
		Switches:   []string{"SW"},
	}
	// 10 VLs * 1250 B / 1 ms = 100 bits/us = exactly the link rate.
	for i := 0; i < 10; i++ {
		n.VLs = append(n.VLs, &afdx.VirtualLink{
			ID: fmt.Sprintf("u%02d", i), Source: "src",
			BAGMs: 1, SMaxBytes: 1250, SMinBytes: 64,
			Paths: [][]string{{"src", "SW", "dst"}},
		})
	}
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(pg, DefaultOptions())
	if err == nil {
		t.Fatal("expected busy-period infeasibility at utilization 1.0")
	}
	if !strings.Contains(err.Error(), "does not converge") {
		t.Errorf("error should name the documented non-convergence, got: %v", err)
	}
}

func TestBusyPeriodHighUtilizationConverges(t *testing.T) {
	// 97.4% source-port utilization with a busy period spanning many
	// 1 ms BAGs: the fixpoint iteration must still converge (bounded by
	// the remaining-capacity frame count, not a flat iteration cap).
	n := &afdx.Network{
		Name:       "high-util",
		Params:     afdx.DefaultParams(),
		EndSystems: []string{"src", "dst"},
		Switches:   []string{"SW"},
	}
	for i := 0; i < 8; i++ {
		n.VLs = append(n.VLs, &afdx.VirtualLink{
			ID: fmt.Sprintf("f%02d", i), Source: "src",
			BAGMs: 1, SMaxBytes: 1518, SMinBytes: 64,
			Paths: [][]string{{"src", "SW", "dst"}},
		})
	}
	for i := 0; i < 3; i++ {
		n.VLs = append(n.VLs, &afdx.VirtualLink{
			ID: fmt.Sprintf("s%02d", i), Source: "src",
			BAGMs: 128, SMaxBytes: 1518, SMinBytes: 64,
			Paths: [][]string{{"src", "SW", "dst"}},
		})
	}
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	det := res.Details[afdx.PathID{VL: "f00", PathIdx: 0}]
	if det.BusyPeriodUs <= 1000 {
		t.Errorf("busy period = %g us, expected to span several 1 ms BAGs", det.BusyPeriodUs)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	// The determinism contract: any worker count yields bit-identical
	// bounds. Exercised here in both prefix modes (PrefixTrajectory
	// stresses the concurrent prefix cache).
	pg := figure2Graph(t)
	for _, mode := range []PrefixMode{PrefixNC, PrefixTrajectory} {
		opts := DefaultOptions()
		opts.PrefixMode = mode
		opts.Parallel = 1
		seq, err := Analyze(pg, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Parallel = 8
		par, err := Analyze(pg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.PathDelays) != len(par.PathDelays) {
			t.Fatalf("mode %v: path count %d vs %d", mode, len(seq.PathDelays), len(par.PathDelays))
		}
		for pid, d := range seq.PathDelays {
			if pd, ok := par.PathDelays[pid]; !ok || pd != d {
				t.Errorf("mode %v: path %v sequential %v parallel %v (must be bit-identical)", mode, pid, d, pd)
			}
		}
		if len(seq.Details) != len(par.Details) {
			t.Fatalf("mode %v: detail count differs", mode)
		}
		for pid, det := range seq.Details {
			if par.Details[pid] != det {
				t.Errorf("mode %v: path %v details differ: %+v vs %+v", mode, pid, det, par.Details[pid])
			}
		}
	}
}
