package trajectory

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"afdx/internal/afdx"
	"afdx/internal/core/tol"
	"afdx/internal/netcalc"
)

// This file is the flattened trajectory hot path. The reference engine
// (reference.go) spends ~90% of its time hashing strings and rebuilding
// maps inside the two per-candidate/per-path inner loops; this
// implementation runs the same mathematics on dense, int-indexed state
// built once per analyzer:
//
//   - VLs are addressed by their dense ordinal (afdx.PortGraph.VLOrdinal,
//     ID-sorted, so ordinal order == ID order) instead of string map keys.
//   - Every port carries flat per-flow slices (transmission time, BAG,
//     NC prefix bound, serialization ratio, input-group slot), so the
//     interference-set and busy-period loops walk contiguous arrays.
//   - The serialization-group partition is precomputed per port and
//     instantiated once per path (a counting sort of the interferer
//     list), instead of rebuilt and re-sorted for every candidate
//     offset.
//   - Source-port busy periods are memoized per port — they are a pure
//     function of the port, recomputed per path by the reference.
//   - Candidate offsets are merged from the per-interferer ascending
//     step-point streams with a small binary heap, replacing
//     append-then-sort.Float64s.
//
// Bit-identity with the reference is a hard contract, enforced by the
// differential tests in flat_test.go: every float is accumulated in the
// exact order and association of the reference code, the group
// iteration order reproduces the reference's (port.String(), prev) key
// sort, and group members keep the VL-sorted member order. Do not
// "simplify" an accumulation here without checking the reference twin.
//
// Scratch-buffer ownership: all per-path transient state lives in a
// *scratch obtained from the flatIndex pool at the top of
// analyzePortSeqFlat and returned on exit. A scratch is owned by
// exactly one analyzePortSeqFlat invocation; recursive prefix analyses
// (PrefixTrajectory mode) take their own scratch from the pool, so the
// buffers never nest. The seen stamp array is cleaned by its owner
// before the scratch goes back to the pool (putScratch), which is what
// keeps checkout O(1) instead of O(#VLs).

// flatInterferer is one interference-set entry in flat form: ordinals
// and precomputed scalars only, no pointers into the model.
type flatInterferer struct {
	vl  int32 // dense VL ordinal (ID-sorted)
	pos int32 // index of the first shared port within the path sequence
	// grp is the entry's serialization-group slot: local to the port
	// while the set is being built, rebased to the path-global slot
	// space by regroupInterferers.
	grp      int32
	cUs      float64 // max transmission time over the shared ports
	aUs      float64 // window alignment A_ij
	bagUs    float64 // BAG of the interfering VL
	serRatio float64 // input-link rate / first-port rate
}

// busyMemo caches one port's busy-period fixpoint (value, rounds,
// error) — a pure function of the port, shared by every path sourced
// there.
type busyMemo struct {
	once   sync.Once
	busy   float64
	rounds int
	err    error
}

// flatPort is the per-port slab of the flat index: everything the hot
// loops need about one output port, in flow-list order (VL-ID sorted,
// matching afdx.Port.Flows).
type flatPort struct {
	id      afdx.PortID
	str     string // id.String(), the reference's group-sort key
	rate    float64
	latency float64
	maxC    float64 // largest frame transmission time at this port

	vls      []int32   // per flow: dense VL ordinal
	cUs      []float64 // per flow: CMaxUs at this port's rate
	bagUs    []float64 // per flow: BAG in us
	pref     []float64 // per flow: NC prefix bound at this port (PrefixNC)
	prefOK   []bool    // per flow: prefix bound present
	serRatio []float64 // per flow: serialization ratio of its input link
	grpOf    []int32   // per flow: local input-group index (prev-sorted)

	nGroups      int32
	grpPrevEmpty []bool // per local group: arrives from the local node

	// Busy-period fixpoint inputs, accumulated in flow order exactly as
	// the reference sourceBusyPeriod does.
	sumC, minC, util float64
	busy             busyMemo
}

// busyPeriod returns the port's memoized busy-period bound and the
// fixpoint round count the computation took (re-reported for every
// path sourced at the port, so the deterministic busy-period counters
// match the reference's per-path recomputation exactly).
func (fp *flatPort) busyPeriod(ctx context.Context) (float64, int, error) {
	fp.busy.once.Do(func() {
		//detcheck:allow DET004: dimensionless utilization guard, scale-free by construction
		if fp.util >= 1-1e-12 {
			fp.busy.err = fmt.Errorf("trajectory: busy period of port %s does not converge (port utilization %.9g >= 1)", fp.id, fp.util)
			return
		}
		work := func(b float64) float64 {
			w := 0.0
			for j, c := range fp.cUs {
				w += float64(frameCount(b, fp.bagUs[j])) * c
			}
			return w
		}
		fp.busy.busy, fp.busy.rounds, fp.busy.err = busyFixpoint(ctx, fp.id, work, fp.sumC, fp.minC, fp.util)
	})
	return fp.busy.busy, fp.busy.rounds, fp.busy.err
}

// candStream is one interferer's ascending step-point stream inside the
// candidate merge heap: t = k*T - aUs, advanced by incrementing k. t is
// always recomputed from k (never t += T): the incremental sum drifts
// by an ulp after enough additions, and the bit-identity contract
// forbids that.
type candStream struct {
	t   float64
	k   float64
	T   float64
	aUs float64
}

// scratch is the per-invocation buffer set of the flat hot path. See
// the ownership rules in the file comment.
type scratch struct {
	// seen maps VL ordinal -> index into inter, -1 when absent. It is
	// the one buffer whose clean state spans checkouts: putScratch
	// resets exactly the stamped entries.
	seen    []int32
	inter   []flatInterferer
	regroup []flatInterferer // inter re-ordered group-major (counting sort)
	fps     []*flatPort      // the path's ports, resolved once
	sMin    []float64        // min arrival time of the analyzed VL per path port
	// Serialization-group instantiation for the current path: path
	// positions sorted by port string, per-position slot bases, and
	// per-slot member ranges of regroup.
	posOrder     []int32
	slotBase     []int32
	grpCount     []int32
	grpStart     []int32
	grpNext      []int32
	grpPrevEmpty []bool
	cands        []float64
	heap         []candStream
}

// flatIndex is the dense per-analyzer state the flat hot path runs on,
// built by analyzer.prepare once the prefix bounds are known.
type flatIndex struct {
	vls   []*afdx.VirtualLink // ordinal -> VL (ID-sorted)
	ports map[afdx.PortID]*flatPort
	pool  sync.Pool // of *scratch
}

func (fl *flatIndex) getScratch() *scratch {
	return fl.pool.Get().(*scratch)
}

func (fl *flatIndex) putScratch(sc *scratch) {
	for i := range sc.inter {
		sc.seen[sc.inter[i].vl] = -1
	}
	sc.inter = sc.inter[:0]
	fl.pool.Put(sc)
}

// prepare builds the flat hot-path index. It runs after the prefix
// bounds are known (newAnalyzerWith for cold runs, AnalyzeWithCacheCtx
// for incremental ones) and is skipped entirely on reference analyzers.
func (a *analyzer) prepare() error {
	if a.reference {
		return nil
	}
	fl := &flatIndex{
		vls:   a.pg.VLOrder(),
		ports: make(map[afdx.PortID]*flatPort, len(a.pg.Ports)),
	}
	ids := make([]afdx.PortID, 0, len(a.pg.Ports))
	for id := range a.pg.Ports {
		ids = append(ids, id)
	}
	afdx.SortPortIDs(ids)
	for _, id := range ids {
		fp, err := a.buildFlatPort(id)
		if err != nil {
			return err
		}
		fl.ports[id] = fp
	}
	nVLs := len(fl.vls)
	fl.pool.New = func() any {
		sc := &scratch{seen: make([]int32, nVLs)}
		for i := range sc.seen {
			sc.seen[i] = -1
		}
		return sc
	}
	a.flat = fl
	return nil
}

// buildFlatPort flattens one port: per-flow scalar slices, the local
// input-group partition (prev-sorted, mirroring the reference's group
// key order within a port), and the busy-period fixpoint inputs. It
// also asserts the serialization-ratio invariant: every member of an
// input group shares the group's input link, so their ratios must be
// identical — the reference used to overwrite its ratio accumulator
// per member, silently relying on this.
func (a *analyzer) buildFlatPort(id afdx.PortID) (*flatPort, error) {
	p := a.pg.Ports[id]
	n := len(p.Flows)
	fp := &flatPort{
		id:       id,
		str:      id.String(),
		rate:     p.RateBitsPerUs,
		latency:  p.LatencyUs,
		vls:      make([]int32, n),
		cUs:      make([]float64, n),
		bagUs:    make([]float64, n),
		serRatio: make([]float64, n),
		grpOf:    make([]int32, n),
		minC:     math.Inf(1),
	}
	if a.opts.PrefixMode == PrefixNC {
		fp.pref = make([]float64, n)
		fp.prefOK = make([]bool, n)
	}
	// Local input groups, keyed by prev and ordered by prev ascending —
	// within one port this is exactly the reference's group-key sort
	// (its primary key, the port string, is constant here).
	prevIdx := map[string]int32{}
	var prevs []string
	for _, f := range p.Flows {
		if _, ok := prevIdx[f.Prev]; !ok {
			prevIdx[f.Prev] = 0
			prevs = append(prevs, f.Prev)
		}
	}
	sort.Strings(prevs)
	for gi, prev := range prevs {
		prevIdx[prev] = int32(gi)
		fp.grpPrevEmpty = append(fp.grpPrevEmpty, prev == "")
	}
	fp.nGroups = int32(len(prevs))
	grpRatio := make([]float64, len(prevs))
	grpSeen := make([]bool, len(prevs))

	for j, f := range p.Flows {
		ord := a.pg.VLOrdinal(f.VL.ID)
		if ord < 0 {
			return nil, fmt.Errorf("trajectory: internal error: VL %s of port %s missing from the VL index", f.VL.ID, id)
		}
		c := f.VL.CMaxUs(p.RateBitsPerUs)
		fp.vls[j] = int32(ord)
		fp.cUs[j] = c
		fp.bagUs[j] = f.VL.BAGUs()
		fp.grpOf[j] = prevIdx[f.Prev]
		ratio := 1.0
		if f.Prev != "" {
			if in := a.pg.Ports[afdx.PortID{From: f.Prev, To: id.From}]; in != nil {
				ratio = in.RateBitsPerUs / p.RateBitsPerUs
			}
		}
		fp.serRatio[j] = ratio
		if g := fp.grpOf[j]; !grpSeen[g] {
			grpSeen[g], grpRatio[g] = true, ratio
		} else if grpRatio[g] != ratio {
			return nil, fmt.Errorf("trajectory: internal error: serialization ratio differs within input group of %s via %q: %g vs %g (VL %s)",
				id, f.Prev, grpRatio[g], ratio, f.VL.ID)
		}
		if fp.pref != nil {
			d, ok := a.ncPrefix[netcalc.FlowPortKey{VL: f.VL.ID, Port: id}]
			fp.pref[j], fp.prefOK[j] = d, ok
		}
		// Busy-period inputs and the transition-term max, in the
		// reference's flow-order accumulation.
		fp.sumC += c
		if c < fp.minC {
			fp.minC = c
		}
		fp.util += c / f.VL.BAGUs()
		if c > fp.maxC {
			fp.maxC = c
		}
	}
	return fp, nil
}

// analyzePortSeqFlat is the flat twin of analyzePortSeqRef. Same
// mathematics, same accumulation orders, dense state.
func (a *analyzer) analyzePortSeqFlat(ctx context.Context, vl *afdx.VirtualLink, ports []afdx.PortID, visiting map[netcalc.FlowPortKey]bool) (PathDetail, error) {
	if err := ctx.Err(); err != nil {
		return PathDetail{}, fmt.Errorf("trajectory: analysis cancelled: %w", err)
	}
	topLevel := visiting == nil
	fl := a.flat
	sc := fl.getScratch()
	defer fl.putScratch(sc)

	// Resolve the path's ports and the analyzed flow's min arrival
	// times (the reference's sMin map, now a dense slice).
	q := len(ports)
	sc.fps = sc.fps[:0]
	sc.sMin = sc.sMin[:0]
	acc := 0.0
	for _, h := range ports {
		fp := fl.ports[h]
		if fp == nil {
			return PathDetail{}, fmt.Errorf("trajectory: internal error: port %s missing from the flat index", h)
		}
		sc.fps = append(sc.fps, fp)
		sc.sMin = append(sc.sMin, acc)
		acc += vl.CMinUs(fp.rate) + fp.latency
	}

	// Interference set: first-occurrence dedup via the ordinal stamp
	// array, in path-port then flow order exactly like the reference.
	ncLookups := int64(0)
	for pos, fp := range sc.fps {
		for j, ord := range fp.vls {
			c := fp.cUs[j]
			if k := sc.seen[ord]; k >= 0 {
				// Conservative with heterogeneous rates: charge the
				// flow's largest transmission time over the shared ports.
				if c > sc.inter[k].cUs {
					sc.inter[k].cUs = c
				}
				continue
			}
			var sMaxJ float64
			if a.opts.PrefixMode == PrefixNC {
				if !fp.prefOK[j] {
					a.m.ncMiss.Inc()
					return PathDetail{}, fmt.Errorf("trajectory: no NC prefix bound for VL %s at %s", fl.vls[ord].ID, fp.id)
				}
				sMaxJ = fp.pref[j]
				ncLookups++
			} else {
				var err error
				sMaxJ, err = a.sMax(ctx, fl.vls[ord], fp.id, visiting)
				if err != nil {
					return PathDetail{}, err
				}
			}
			sc.seen[ord] = int32(len(sc.inter))
			sc.inter = append(sc.inter, flatInterferer{
				vl:       ord,
				pos:      int32(pos),
				grp:      fp.grpOf[j],
				cUs:      c,
				aUs:      sMaxJ - sc.sMin[pos],
				bagUs:    fp.bagUs[j],
				serRatio: fp.serRatio[j],
			})
		}
	}
	if ncLookups > 0 {
		a.m.ncHits.Add(ncLookups)
	}
	// VL-ordinal order == VL-ID order (ordinals are assigned ID-sorted),
	// so this reproduces the reference's interferer sort. Ordinals are
	// unique within the set (first-occurrence dedup), so instability of
	// the sort cannot reorder equal keys.
	slices.SortFunc(sc.inter, func(x, y flatInterferer) int { return int(x.vl) - int(y.vl) })
	if topLevel {
		a.m.interferers.Observe(int64(len(sc.inter)))
	}

	// Constant terms: technological latencies and the transition
	// ("counted twice") packets.
	lSum := 0.0
	for _, fp := range sc.fps {
		lSum += fp.latency
	}
	deltaSum := a.transitionSum(ports)

	busy, rounds, err := sc.fps[0].busyPeriod(ctx)
	if err != nil {
		return PathDetail{}, err
	}
	if topLevel {
		a.m.busyFixes.Inc()
		a.m.busyIters.Add(int64(rounds))
		a.m.busyRounds.Observe(int64(rounds))
	}

	nSlots := 0
	if a.opts.Grouping {
		nSlots = sc.regroupInterferers(q)
	}

	if err := sc.mergeCandidates(ctx, busy); err != nil {
		return PathDetail{}, err
	}
	if topLevel {
		a.m.candidates.Add(int64(len(sc.cands)))
	}

	best, bestT := math.Inf(-1), 0.0
	for i, t := range sc.cands {
		// Candidate sets grow with busy period / BAG ratios; poll for
		// cancellation without paying a context lookup per offset.
		if i&1023 == 1023 {
			if err := ctx.Err(); err != nil {
				return PathDetail{}, fmt.Errorf("trajectory: candidate evaluation cancelled: %w", err)
			}
		}
		v := sc.interferenceAt(a.opts.Grouping, nSlots, t) + deltaSum + lSum - t
		if v > best {
			best, bestT = v, t
		}
	}
	return PathDetail{
		DelayUs:        best,
		BusyPeriodUs:   busy,
		CriticalT:      bestT,
		NumCandidates:  len(sc.cands),
		NumInterferers: len(sc.inter),
	}, nil
}

// regroupInterferers instantiates the serialization-group partition for
// the current path: it rebases each interferer's local group index into
// a path-global slot space ordered by (port string, prev) — the
// reference's sorted group-key order — and counting-sorts the
// interferer list group-major into sc.regroup, preserving the VL-sorted
// member order within each slot. Returns the number of slots.
func (sc *scratch) regroupInterferers(q int) int {
	// Path positions in port-string order. Positions are unique ports
	// (feed-forward paths never revisit one), so the order is total;
	// insertion sort keeps the tiny sort allocation-free.
	sc.posOrder = sc.posOrder[:0]
	for i := 0; i < q; i++ {
		sc.posOrder = append(sc.posOrder, int32(i))
	}
	for i := 1; i < q; i++ {
		for j := i; j > 0 && sc.fps[sc.posOrder[j]].str < sc.fps[sc.posOrder[j-1]].str; j-- {
			sc.posOrder[j], sc.posOrder[j-1] = sc.posOrder[j-1], sc.posOrder[j]
		}
	}
	sc.slotBase = grow(sc.slotBase, q)
	nSlots := 0
	for _, pos := range sc.posOrder {
		sc.slotBase[pos] = int32(nSlots)
		nSlots += int(sc.fps[pos].nGroups)
	}
	sc.grpCount = grow(sc.grpCount, nSlots)
	sc.grpStart = grow(sc.grpStart, nSlots)
	sc.grpNext = grow(sc.grpNext, nSlots)
	sc.grpPrevEmpty = grow(sc.grpPrevEmpty, nSlots)
	for _, pos := range sc.posOrder {
		fp := sc.fps[pos]
		base := sc.slotBase[pos]
		for g := int32(0); g < fp.nGroups; g++ {
			sc.grpCount[base+g] = 0
			sc.grpPrevEmpty[base+g] = fp.grpPrevEmpty[g]
		}
	}
	for i := range sc.inter {
		it := &sc.inter[i]
		it.grp += sc.slotBase[it.pos] // rebase local -> global slot
		sc.grpCount[it.grp]++
	}
	off := int32(0)
	for g := 0; g < nSlots; g++ {
		sc.grpStart[g] = off
		sc.grpNext[g] = off
		off += sc.grpCount[g]
	}
	if cap(sc.regroup) < len(sc.inter) {
		sc.regroup = make([]flatInterferer, len(sc.inter))
	} else {
		sc.regroup = sc.regroup[:len(sc.inter)]
	}
	for i := range sc.inter {
		it := sc.inter[i]
		sc.regroup[sc.grpNext[it.grp]] = it
		sc.grpNext[it.grp]++
	}
	return nSlots
}

// interferenceAt is the flat twin of the reference interferenceAt /
// groupContribution pair: same per-member arithmetic in the same group
// and member order, over the precomputed partition.
func (sc *scratch) interferenceAt(grouping bool, nSlots int, t float64) float64 {
	if !grouping {
		sum := 0.0
		for i := range sc.inter {
			it := &sc.inter[i]
			sum += float64(frameCount(t+it.aUs, it.bagUs)) * it.cUs
		}
		return sum
	}
	sum := 0.0
	for g := 0; g < nSlots; g++ {
		cnt := sc.grpCount[g]
		if cnt == 0 {
			continue // the reference's map has no entry for empty groups
		}
		members := sc.regroup[sc.grpStart[g] : sc.grpStart[g]+cnt]
		full, firsts, maxC := 0.0, 0.0, 0.0
		for i := range members {
			m := &members[i]
			n := frameCount(t+m.aUs, m.bagUs)
			full += float64(n-1) * m.cUs
			firsts += m.cUs
			if m.cUs > maxC {
				maxC = m.cUs
			}
		}
		if !sc.grpPrevEmpty[g] || cnt > 1 {
			// Serialized first frames: largest member frame plus the
			// input-link throughput over the offset window (ratio
			// identical across the group, asserted at build time).
			capTime := maxC + t*members[0].serRatio
			if capTime < firsts {
				firsts = capTime
			}
		}
		sum += full + firsts
	}
	return sum
}

// mergeCandidates fills sc.cands with the deduplicated ascending
// candidate offsets: t = 0 plus every step point k*T_j - A_ij inside
// the busy period. Each interferer contributes an already-ascending
// stream, so a binary min-heap merges them in sorted order and the
// dedup runs inline — the same multiset the reference enumerates,
// in the same order its sort.Float64s produces, hence the identical
// deduplicated list.
func (sc *scratch) mergeCandidates(ctx context.Context, busy float64) error {
	sc.cands = append(sc.cands[:0], 0)
	h := sc.heap[:0]
	for i := range sc.inter {
		it := &sc.inter[i]
		T := it.bagUs
		// Same start index as candidateOffsets (see there for the
		// k-domain tolerance rationale).
		k := math.Ceil(it.aUs/T - tol.At(it.aUs/T))
		if k < 1 {
			k = 1
		}
		t := k*T - it.aUs
		// Advance past the below-zero prefix the reference's
		// `t > tol.At(t)` filter drops; t grows by T per step while the
		// tolerance grows by EpsRel*T at most, so once past it stays past.
		for !(t > tol.At(t)) {
			k++
			t = k*T - it.aUs
		}
		if tol.Gt(t, busy) {
			continue
		}
		h = append(h, candStream{t: t, k: k, T: T, aUs: it.aUs})
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownCand(h, i)
	}
	last := 0.0
	for n := 0; len(h) > 0; n++ {
		if n&8191 == 8191 {
			if err := ctx.Err(); err != nil {
				sc.heap = h[:0]
				return fmt.Errorf("trajectory: candidate enumeration cancelled: %w", err)
			}
		}
		s := &h[0]
		if tol.Gt(s.t, last) {
			last = s.t
			sc.cands = append(sc.cands, s.t)
		}
		s.k++
		if nt := s.k*s.T - s.aUs; tol.Gt(nt, busy) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		} else {
			s.t = nt
		}
		if len(h) > 1 {
			siftDownCand(h, 0)
		}
	}
	sc.heap = h[:0]
	return nil
}

// siftDownCand restores the min-heap order of h (by stream head t)
// from index i down.
func siftDownCand(h []candStream, i int) {
	//detcheck:allow DET006: descends one heap level per iteration, so it terminates after at most log2(len(h)) steps
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h[r].t < h[l].t {
			m = r
		}
		if h[i].t <= h[m].t {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// grow returns s with length n, reusing its backing array when it fits.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
