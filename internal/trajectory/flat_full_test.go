//go:build !race

package trajectory

import "testing"

// TestFlatMatchesReferenceConfiggenFull is the full 100-seed
// differential sweep of the flat hot path against the reference engine
// (grouped and ungrouped, workers 1 and N, bit-identical PathDetails).
// It runs the reference engine 400 times, so like the full-size
// determinism tests it is compiled out under the race detector; the
// race-instrumented tier keeps the 10-seed slice in flat_test.go.
func TestFlatMatchesReferenceConfiggenFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential sweep skipped in -short mode")
	}
	testConfiggenSeeds(t, 11, 100)
}
