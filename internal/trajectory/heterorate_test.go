package trajectory

import (
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/netcalc"
	"afdx/internal/sim"
)

// slowLastHop returns Figure 2 with the S3->e6 delivery link slowed to
// 10 Mb/s (real AFDX networks mix 10 and 100 Mb/s segments).
func slowLastHop() *afdx.Network {
	n := afdx.Figure2Config()
	n.LinkRates = []afdx.LinkRate{{From: "S3", To: "e6", Mbps: 10}}
	return n
}

func TestHeterogeneousRatePortDelays(t *testing.T) {
	pg, err := afdx.BuildPortGraph(slowLastHop(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if got := pg.Ports[afdx.PortID{From: "S3", To: "e6"}].RateBitsPerUs; got != 10 {
		t.Fatalf("slow port rate = %g, want 10", got)
	}
	if got := pg.Ports[afdx.PortID{From: "S1", To: "S3"}].RateBitsPerUs; got != 100 {
		t.Fatalf("fast port rate = %g, want 100", got)
	}
	res, err := netcalc.Analyze(pg, netcalc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := netcalc.Analyze(fast, netcalc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	slow := afdx.PortID{From: "S3", To: "e6"}
	if res.Ports[slow].DelayUs <= ref.Ports[slow].DelayUs*5 {
		t.Errorf("10x slower link should blow up the port delay: %g vs %g",
			res.Ports[slow].DelayUs, ref.Ports[slow].DelayUs)
	}
	// Ports upstream of the slow link are unaffected.
	up := afdx.PortID{From: "S1", To: "S3"}
	if !almostEq(res.Ports[up].DelayUs, ref.Ports[up].DelayUs) {
		t.Errorf("upstream port delay changed: %g vs %g",
			res.Ports[up].DelayUs, ref.Ports[up].DelayUs)
	}
	// v5 (on a different 100 Mb/s output of S3) is unaffected.
	v5 := afdx.PathID{VL: "v5", PathIdx: 0}
	if !almostEq(res.PathDelays[v5], ref.PathDelays[v5]) {
		t.Errorf("v5 bound changed: %g vs %g", res.PathDelays[v5], ref.PathDelays[v5])
	}
}

func TestHeterogeneousRateUtilization(t *testing.T) {
	pg, err := afdx.BuildPortGraph(slowLastHop(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	u := pg.UtilizationReport()
	// 4 VLs of 1 bit/us on a 10 bits/us link: 40%.
	if got := u[afdx.PortID{From: "S3", To: "e6"}]; !almostEq(got, 0.4) {
		t.Errorf("slow port utilization = %g, want 0.4", got)
	}
}

func TestHeterogeneousRateSimWithinBounds(t *testing.T) {
	pg, err := afdx.BuildPortGraph(slowLastHop(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := netcalc.Analyze(pg, netcalc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	trU, err := Analyze(pg, Options{Grouping: false})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 15; seed++ {
		cfg := sim.DefaultConfig(seed)
		cfg.DurationUs = 64_000
		res, err := sim.Run(pg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for pid, st := range res.Paths {
			if st.MaxDelayUs > nc.PathDelays[pid]+1e-6 {
				t.Errorf("seed %d path %v: simulated %g above NC %g",
					seed, pid, st.MaxDelayUs, nc.PathDelays[pid])
			}
			if st.MaxDelayUs > trU.PathDelays[pid]+1e-6 {
				t.Errorf("seed %d path %v: simulated %g above ungrouped trajectory %g",
					seed, pid, st.MaxDelayUs, trU.PathDelays[pid])
			}
		}
	}
	// Adversarial burst.
	cfg := sim.Config{
		DurationUs: 8000,
		OffsetsUs:  map[string]float64{"v1": 0, "v2": 0, "v3": 0, "v4": 0, "v5": 0},
	}
	res, err := sim.Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pid, st := range res.Paths {
		if st.MaxDelayUs > trU.PathDelays[pid]+1e-6 {
			t.Errorf("burst path %v: simulated %g above ungrouped trajectory %g",
				pid, st.MaxDelayUs, trU.PathDelays[pid])
		}
	}
}

func TestHeterogeneousRateTrajectoryConsistency(t *testing.T) {
	pg, err := afdx.BuildPortGraph(slowLastHop(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := Analyze(pg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ungrouped, err := Analyze(pg, Options{Grouping: false})
	if err != nil {
		t.Fatal(err)
	}
	for pid, d := range grouped.PathDelays {
		if d > ungrouped.PathDelays[pid]+1e-9 {
			t.Errorf("path %v: grouped %g above ungrouped %g", pid, d, ungrouped.PathDelays[pid])
		}
	}
	// The slow delivery link inflates v1's bound well beyond the uniform
	// 248 us value (C at 10 Mb/s is 400 us per frame).
	v1 := afdx.PathID{VL: "v1", PathIdx: 0}
	if grouped.PathDelays[v1] < 1000 {
		t.Errorf("v1 bound %g suspiciously low for a 10 Mb/s delivery link", grouped.PathDelays[v1])
	}
}

func TestLinkRateValidation(t *testing.T) {
	n := afdx.Figure2Config()
	n.LinkRates = []afdx.LinkRate{{From: "S3", To: "e6", Mbps: -5}}
	if err := n.Validate(afdx.Strict); err == nil {
		t.Error("negative link rate should be rejected")
	}
	n.LinkRates = []afdx.LinkRate{{From: "ghost", To: "e6", Mbps: 10}}
	if err := n.Validate(afdx.Strict); err == nil {
		t.Error("unknown node in link rate should be rejected")
	}
}
