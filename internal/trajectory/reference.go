package trajectory

import (
	"context"
	"fmt"
	"math"
	"sort"

	"afdx/internal/afdx"
	"afdx/internal/netcalc"
	"afdx/internal/parallel"
)

// This file is the reference implementation of the per-path hot loop:
// the engine exactly as it shipped before the flat-index rework
// (flat.go), kept so the flattened hot path can be proven bit-identical
// against it and benchmarked against it (make bench-pr7).
//
// The reference is not dead code guarded by faith: analyzeReference
// drives it from the differential property tests (flat_test.go), which
// pin PathDetail equality — delay, busy period, critical offset,
// candidate count — bit for bit across the golden corpus and generated
// configurations at every worker count. Behavioural fixes that are
// part of the engine's semantics (the candidateOffsets enumeration
// window, the off-path prefix error) live in trajectory.go and are
// shared by both implementations; everything that is purely a data
// layout or scheduling choice differs.

// analyzeReference runs the full analysis through the reference
// (pre-flattening) hot path. Test and benchmark entry point only.
func analyzeReference(ctx context.Context, pg *afdx.PortGraph, opts Options) (*Result, error) {
	a, err := newAnalyzerWith(ctx, pg, opts, true)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Opts:       opts,
		PathDelays: map[afdx.PathID]float64{},
		Details:    map[afdx.PathID]PathDetail{},
	}
	paths := pg.Net.AllPaths()
	dets := make([]PathDetail, len(paths))
	err = parallel.ForEachCtx(ctx, opts.Parallel, len(paths), func(i int) error {
		det, err := a.analyzePath(ctx, paths[i])
		dets[i] = det
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, pid := range paths {
		res.PathDelays[pid] = dets[i].DelayUs
		res.Details[pid] = dets[i]
	}
	return res, nil
}

// analyzePortSeqRef is the reference per-path loop: map/string-keyed
// interference sets, per-candidate group partitions, per-call busy
// periods.
func (a *analyzer) analyzePortSeqRef(ctx context.Context, vl *afdx.VirtualLink, ports []afdx.PortID, visiting map[netcalc.FlowPortKey]bool) (PathDetail, error) {
	if err := ctx.Err(); err != nil {
		return PathDetail{}, fmt.Errorf("trajectory: analysis cancelled: %w", err)
	}
	// Deterministic counters cover the top-level work set only
	// (visiting == nil): recursive prefix analyses flow through the
	// contended cache and may be duplicated under parallel schedules.
	topLevel := visiting == nil
	inter, err := a.interferenceSet(ctx, vl, ports, visiting)
	if err != nil {
		return PathDetail{}, err
	}
	if topLevel {
		a.m.interferers.Observe(int64(len(inter)))
	}

	// Constant terms: technological latencies and the transition
	// ("counted twice") packets.
	lSum := 0.0
	for _, h := range ports {
		lSum += a.pg.Ports[h].LatencyUs
	}
	deltaSum := a.transitionSum(ports)

	busy, rounds, err := a.sourceBusyPeriod(ctx, ports[0])
	if err != nil {
		return PathDetail{}, err
	}
	if topLevel {
		a.m.busyFixes.Inc()
		a.m.busyIters.Add(int64(rounds))
		a.m.busyRounds.Observe(int64(rounds))
	}

	cands, err := candidateOffsets(ctx, inter, busy)
	if err != nil {
		return PathDetail{}, err
	}
	if topLevel {
		a.m.candidates.Add(int64(len(cands)))
	}
	best, bestT := math.Inf(-1), 0.0
	for i, t := range cands {
		// Candidate sets grow with busy period / BAG ratios; poll for
		// cancellation without paying a context lookup per offset.
		if i&1023 == 1023 {
			if err := ctx.Err(); err != nil {
				return PathDetail{}, fmt.Errorf("trajectory: candidate evaluation cancelled: %w", err)
			}
		}
		v := a.interferenceAt(inter, t) + deltaSum + lSum - t
		if v > best {
			best, bestT = v, t
		}
	}
	return PathDetail{
		DelayUs:        best,
		BusyPeriodUs:   busy,
		CriticalT:      bestT,
		NumCandidates:  len(cands),
		NumInterferers: len(inter),
	}, nil
}

// interferenceSet builds the interferer list of a path: every VL sharing
// at least one of its ports (including the analyzed VL itself), with the
// first shared port, the input link there, and the window alignment A_ij.
func (a *analyzer) interferenceSet(ctx context.Context, vl *afdx.VirtualLink, ports []afdx.PortID, visiting map[netcalc.FlowPortKey]bool) ([]interferer, error) {
	// Minimum arrival times of the analyzed flow at each of its ports
	// (per-port rates: real configurations mix link speeds).
	sMin := make(map[afdx.PortID]float64, len(ports))
	acc := 0.0
	for _, h := range ports {
		sMin[h] = acc
		acc += vl.CMinUs(a.pg.Ports[h].RateBitsPerUs) + a.pg.Ports[h].LatencyUs
	}
	var inter []interferer
	idx := map[string]int{}
	// NC prefix-table hits are counted locally and flushed in one Add:
	// a per-lookup atomic increment from every worker contends on one
	// cache line and alone blows the instrumentation overhead budget.
	ncLookups := int64(0)
	for _, h := range ports {
		port := a.pg.Ports[h]
		for _, f := range port.Flows {
			c := f.VL.CMaxUs(port.RateBitsPerUs)
			if i, ok := idx[f.VL.ID]; ok {
				// Conservative with heterogeneous rates: charge the
				// flow's largest transmission time over the shared ports.
				if c > inter[i].cUs {
					inter[i].cUs = c
				}
				continue
			}
			sMaxJ, err := a.sMax(ctx, f.VL, h, visiting)
			if err != nil {
				return nil, err
			}
			if a.opts.PrefixMode == PrefixNC {
				ncLookups++
			}
			ratio := 1.0
			if f.Prev != "" {
				if in := a.pg.Ports[afdx.PortID{From: f.Prev, To: h.From}]; in != nil {
					ratio = in.RateBitsPerUs / port.RateBitsPerUs
				}
			}
			idx[f.VL.ID] = len(inter)
			inter = append(inter, interferer{
				vl:       f.VL,
				first:    h,
				prev:     f.Prev,
				cUs:      c,
				aUs:      sMaxJ - sMin[h],
				serRatio: ratio,
			})
		}
	}
	if ncLookups > 0 {
		a.m.ncHits.Add(ncLookups)
	}
	sort.Slice(inter, func(i, j int) bool { return inter[i].vl.ID < inter[j].vl.ID })
	return inter, nil
}

// interferenceAt evaluates the interference term at offset t, applying
// the serialization cap per (first port, input link) group when grouping
// is enabled.
func (a *analyzer) interferenceAt(inter []interferer, t float64) float64 {
	if !a.opts.Grouping {
		sum := 0.0
		for _, it := range inter {
			sum += float64(frameCount(t+it.aUs, it.vl.BAGUs())) * it.cUs
		}
		return sum
	}
	type groupKey struct {
		port afdx.PortID
		prev string
	}
	groups := map[groupKey][]interferer{}
	for _, it := range inter {
		groups[groupKey{it.first, it.prev}] = append(groups[groupKey{it.first, it.prev}], it)
	}
	// Deterministic iteration order for float accumulation stability.
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].port != keys[j].port {
			return keys[i].port.String() < keys[j].port.String()
		}
		return keys[i].prev < keys[j].prev
	})
	sum := 0.0
	for _, k := range keys {
		sum += a.groupContribution(groups[k], t, k.prev != "" || len(groups[k]) > 1)
	}
	return sum
}

// groupContribution bounds the workload of one serialization group at
// offset t. The first frame of each member arrives through the shared
// input link, so the group's first frames arrive back-to-back at best
// and their joint burst cannot exceed the largest member frame plus
// what the link carries during the emission offset window; subsequent
// frames (N_j > 1) are counted in full. Groups are never empty and
// frameCount never returns less than one, so every member contributes
// a first frame unconditionally.
//
// This is the leaky-bucket shaping of the paper's grouping technique
// (burst = largest frame of the group, rate = source link rate), exactly
// as the paper's Figure 4 scenario constructs it. Note that, like the
// published method, the cap ignores the upstream jitter spread between
// group members — a simplification later shown to make the enhanced
// trajectory approach slightly optimistic in corner cases (see
// DESIGN.md, "Known optimism of the grouped trajectory approach").
func (a *analyzer) groupContribution(group []interferer, t float64, serialized bool) float64 {
	full := 0.0
	firsts := 0.0
	maxC := 0.0
	for _, it := range group {
		n := frameCount(t+it.aUs, it.vl.BAGUs())
		full += float64(n-1) * it.cUs
		firsts += it.cUs
		if it.cUs > maxC {
			maxC = it.cUs
		}
	}
	if !serialized {
		return full + firsts
	}
	// The group's first frames arrive serialized on the input link: one
	// largest frame plus what the link carries over the offset window,
	// expressed in output transmission time (ratio = R_in / R_out). The
	// serialization ratio is a per-link quantity, identical across the
	// group by the invariant the flat index asserts at build time
	// (flatIndex.build); the first member speaks for all of them.
	capTime := maxC + t*group[0].serRatio
	if capTime < firsts {
		firsts = capTime
	}
	return full + firsts
}

// sourceBusyPeriod bounds the length of the busy period of the analyzed
// flow's source port (the range of the emission offset t) as the least
// fixpoint of the port's workload function.
//
// Feasibility is decided up front by remaining-capacity math: the
// workload is bounded by the linear envelope w(b) <= sumC + U*b with
// U the port utilization, so for U < 1 the least fixpoint sits below
// sumC/(1-U), while U >= 1 has no fixpoint at all and fails
// immediately (no iteration budget is burned discovering divergence).
// The fixpoint iteration itself is exact — it returns the same least
// fixpoint as a step-by-step scan — and terminates within the frame
// capacity of that bound: every non-final round queues at least one
// more whole frame, so rounds are capped by (bMax - w(0)) / minC.
//
// The second return value is the number of fixpoint rounds performed —
// the per-path iteration cost surfaced by the observability layer. The
// busy period is a pure function of the port alone (not of the path or
// the analyzed VL), which is exactly what lets the flat engine memoize
// it per port (flatPort.busy).
func (a *analyzer) sourceBusyPeriod(ctx context.Context, src afdx.PortID) (float64, int, error) {
	port := a.pg.Ports[src]
	sumC, minC, util := 0.0, math.Inf(1), 0.0
	for _, f := range port.Flows {
		c := f.VL.CMaxUs(port.RateBitsPerUs)
		sumC += c
		if c < minC {
			minC = c
		}
		util += c / f.VL.BAGUs()
	}
	//detcheck:allow DET004: dimensionless utilization guard, scale-free by construction
	if util >= 1-1e-12 {
		return 0, 0, fmt.Errorf("trajectory: busy period of port %s does not converge (port utilization %.9g >= 1)", src, util)
	}
	work := func(b float64) float64 {
		w := 0.0
		for _, f := range port.Flows {
			w += float64(frameCount(b, f.VL.BAGUs())) * f.VL.CMaxUs(port.RateBitsPerUs)
		}
		return w
	}
	return busyFixpoint(ctx, src, work, sumC, minC, util)
}
