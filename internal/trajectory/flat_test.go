package trajectory

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
)

// Differential tests of the flat hot path (flat.go) against the
// reference engine (reference.go). The contract is bit-identity: every
// PathDetail — delay, busy period, critical offset, candidate and
// interferer counts — must be exactly equal (==, no tolerance) at every
// worker count.

// engineVariants are the option sets the differential tests sweep.
var engineVariants = []struct {
	name string
	opts Options
}{
	{"grouped", Options{Grouping: true}},
	{"ungrouped", Options{}},
	{"shared", Options{Grouping: true, SharedTransition: true}},
	{"deltafirst", Options{Grouping: true, DeltaAtFirstNode: true}},
}

// sameDetails fails unless the two results carry bit-identical path
// details.
func sameDetails(t *testing.T, label string, ref, got *Result) {
	t.Helper()
	if len(ref.Details) != len(got.Details) {
		t.Fatalf("%s: path count %d vs %d", label, len(ref.Details), len(got.Details))
	}
	for pid, rd := range ref.Details {
		gd, ok := got.Details[pid]
		if !ok {
			t.Fatalf("%s: path %v missing from flat result", label, pid)
		}
		if rd != gd {
			t.Errorf("%s: path %v: reference %+v vs flat %+v", label, pid, rd, gd)
		}
	}
	for pid, d := range ref.PathDelays {
		if d != got.PathDelays[pid] {
			t.Errorf("%s: path %v delay: %x vs %x", label, pid, d, got.PathDelays[pid])
		}
	}
}

// flatVsReference runs both engines over every option variant at
// workers 1 and N and requires bit-identical outcomes (or identical
// errors).
func flatVsReference(t *testing.T, label string, pg *afdx.PortGraph, variants []struct {
	name string
	opts Options
}) {
	t.Helper()
	ctx := context.Background()
	for _, v := range variants {
		for _, workers := range []int{1, 0} {
			opts := v.opts
			opts.Parallel = workers
			ref, rerr := analyzeReference(ctx, pg, opts)
			got, gerr := AnalyzeCtx(ctx, pg, opts)
			name := label + "/" + v.name
			if (rerr == nil) != (gerr == nil) {
				t.Fatalf("%s (workers=%d): reference err %v vs flat err %v", name, workers, rerr, gerr)
			}
			if rerr != nil {
				if rerr.Error() != gerr.Error() {
					t.Errorf("%s (workers=%d): error text differs:\n  reference: %v\n  flat:      %v", name, workers, rerr, gerr)
				}
				continue
			}
			sameDetails(t, name, ref, got)
		}
	}
}

// TestFlatMatchesReferenceFigure2 pins the paper's sample configuration
// across every option variant, including the recursive PrefixTrajectory
// mode (cheap on five paths, too slow for the generated sweeps).
func TestFlatMatchesReferenceFigure2(t *testing.T) {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	variants := append([]struct {
		name string
		opts Options
	}{{"prefixtraj", Options{Grouping: true, PrefixMode: PrefixTrajectory}}}, engineVariants...)
	flatVsReference(t, "fig2", pg, variants)
}

// TestFlatMatchesReferenceGoldenCorpus sweeps the lint golden corpus:
// every configuration that loads and builds is analysed by both
// engines; analysis failures (e.g. the unstable-port config) must fail
// identically.
func TestFlatMatchesReferenceGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob("../lint/testdata/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("golden corpus missing: %v (%d files)", err, len(files))
	}
	for _, file := range files {
		net, err := afdx.LoadJSON(file, afdx.Strict)
		if err != nil {
			continue // invalid-on-purpose corpus entries
		}
		pg, err := afdx.BuildPortGraph(net, afdx.Strict)
		if err != nil {
			continue
		}
		flatVsReference(t, filepath.Base(file), pg, engineVariants)
	}
}

// testConfiggenSeeds is the shared body of the generated-configuration
// sweeps (the always-on slice here, the full 100-seed run in
// flat_full_test.go behind !race).
func testConfiggenSeeds(t *testing.T, lo, hi int64) {
	for seed := lo; seed <= hi; seed++ {
		spec := configgen.DefaultSpec(seed)
		spec.NumVLs = 60
		net, err := configgen.Generate(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pg, err := afdx.BuildPortGraph(net, afdx.Strict)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		flatVsReference(t, fmt.Sprintf("seed-%d", seed), pg, engineVariants[:2])
	}
}

// TestFlatMatchesReferenceConfiggen is the always-on generated sweep —
// small enough to stay fast under the race detector.
func TestFlatMatchesReferenceConfiggen(t *testing.T) {
	testConfiggenSeeds(t, 1, 10)
}

// TestPrefixOffPathIsHardError pins the prefixPorts/sMax contract: an
// S_max query for a (VL, port) pair where the VL never crosses the port
// is an engine bug and must surface as an error, not be absorbed as a
// zero prefix bound (which is indistinguishable from "port is the
// flow's source hop" and silently optimistic).
func TestPrefixOffPathIsHardError(t *testing.T) {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	a, err := newAnalyzer(context.Background(), pg, Options{Grouping: true, PrefixMode: PrefixTrajectory})
	if err != nil {
		t.Fatal(err)
	}
	vl := pg.VL(pg.Net.VLs[0].ID)
	var offPath afdx.PortID
	found := false
	for id := range pg.Ports {
		if _, on := a.prefixPorts(vl, id); !on {
			offPath, found = id, true
			break
		}
	}
	if !found {
		t.Fatalf("VL %s crosses every port of the sample configuration; cannot exercise the off-path case", vl.ID)
	}
	if seq, on := a.prefixPorts(vl, offPath); on || seq != nil {
		t.Fatalf("prefixPorts(%s, %v) = (%v, %v), want (nil, false)", vl.ID, offPath, seq, on)
	}
	_, err = a.sMax(context.Background(), vl, offPath, nil)
	if err == nil || !strings.Contains(err.Error(), "does not cross") {
		t.Fatalf("sMax off-path: got %v, want a hard 'does not cross' error", err)
	}
	// The on-path source-hop case still yields a zero bound, not an
	// error: the distinction is exactly what the hard error protects.
	src := pg.PathPorts(afdx.PathID{VL: vl.ID, PathIdx: 0})[0]
	d, err := a.sMax(context.Background(), vl, src, nil)
	if err != nil || d != 0 {
		t.Fatalf("sMax at source hop: got (%v, %v), want (0, nil)", d, err)
	}
}

// TestCandidateOffsetsExactMultiples pins the enumerated step-point set
// when the alignment A_ij is an exact multiple of the BAG, both signs.
// The pre-fix start index negated the A_ij/T ratio, which skipped the
// first valid step points of every interferer with A_ij <= -T; the
// positive-multiple case pins that t = 0 (the k = A_ij/T step) stays
// excluded while the window endpoint steps stay in.
func TestCandidateOffsetsExactMultiples(t *testing.T) {
	mk := func(bagMs float64, aUs float64) interferer {
		return interferer{
			vl:  &afdx.VirtualLink{ID: "vx", BAGMs: bagMs, SMaxBytes: 100, SMinBytes: 100},
			aUs: aUs,
		}
	}
	cases := []struct {
		name string
		in   []interferer
		busy float64
		want []float64
	}{
		{
			// A_ij = +2T: steps t = k*1000 - 2000 need k > 2; the k = 2
			// step collapses onto t = 0 (already seeded) and is filtered.
			name: "positive-multiple",
			in:   []interferer{mk(1, 2000)},
			busy: 5500,
			want: []float64{0, 1000, 2000, 3000, 4000, 5000},
		},
		{
			// A_ij = -2T: every k >= 1 step is positive; the pre-fix code
			// started at k = 2 and silently dropped t = 3000.
			name: "negative-multiple",
			in:   []interferer{mk(1, -2000)},
			busy: 5500,
			want: []float64{0, 3000, 4000, 5000},
		},
		{
			name: "zero-alignment",
			in:   []interferer{mk(1, 0)},
			busy: 3500,
			want: []float64{0, 1000, 2000, 3000},
		},
		{
			// Two interferers, steps interleaved and overlapping: the
			// shared points dedup, the merged set stays sorted.
			name: "merged-pair",
			in:   []interferer{mk(1, -2000), mk(2, 0)},
			busy: 6500,
			want: []float64{0, 2000, 3000, 4000, 5000, 6000},
		},
	}
	for _, tc := range cases {
		got, err := candidateOffsets(context.Background(), tc.in, tc.busy)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: got %v, want %v", tc.name, got, tc.want)
			}
		}
		// The flat engine's heap merge must enumerate the identical set.
		sc := &scratch{}
		for _, it := range tc.in {
			sc.inter = append(sc.inter, flatInterferer{aUs: it.aUs, bagUs: it.vl.BAGUs()})
		}
		if err := sc.mergeCandidates(context.Background(), tc.busy); err != nil {
			t.Fatalf("%s: merge: %v", tc.name, err)
		}
		if len(sc.cands) != len(tc.want) {
			t.Fatalf("%s: merge got %v, want %v", tc.name, sc.cands, tc.want)
		}
		for i := range sc.cands {
			if sc.cands[i] != tc.want[i] {
				t.Fatalf("%s: merge got %v, want %v", tc.name, sc.cands, tc.want)
			}
		}
	}
}

// TestMergeCandidatesMatchesSort is the property test backing the heap
// merge: on randomized interferer sets, the merged stream must equal
// the reference's append-then-sort-then-dedup enumeration bit for bit
// (same multiset in sorted order implies the same dedup survivors).
func TestMergeCandidatesMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vls := map[int]*afdx.VirtualLink{}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		inter := make([]interferer, 0, n)
		flat := make([]flatInterferer, 0, n)
		for i := 0; i < n; i++ {
			bagMs := 1 << rng.Intn(4) // 1, 2, 4, 8 ms
			vl := vls[bagMs]
			if vl == nil {
				vl = &afdx.VirtualLink{ID: "vb", BAGMs: float64(bagMs), SMaxBytes: 100, SMinBytes: 100}
				vls[bagMs] = vl
			}
			T := vl.BAGUs()
			aUs := (rng.Float64()*6 - 3) * T // in [-3T, 3T)
			if rng.Intn(4) == 0 {
				aUs = float64(rng.Intn(7)-3) * T // exact multiples, both signs
			}
			inter = append(inter, interferer{vl: vl, aUs: aUs})
			flat = append(flat, flatInterferer{aUs: aUs, bagUs: T})
		}
		busy := rng.Float64() * 20000
		want, err := candidateOffsets(context.Background(), inter, busy)
		if err != nil {
			t.Fatal(err)
		}
		sc := &scratch{inter: flat}
		if err := sc.mergeCandidates(context.Background(), busy); err != nil {
			t.Fatal(err)
		}
		if len(sc.cands) != len(want) {
			t.Fatalf("trial %d: merge %v vs sort %v", trial, sc.cands, want)
		}
		for i := range want {
			if sc.cands[i] != want[i] {
				t.Fatalf("trial %d: merge %v vs sort %v", trial, sc.cands, want)
			}
		}
	}
}
