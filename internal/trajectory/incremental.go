package trajectory

import (
	"context"
	"fmt"

	"afdx/internal/afdx"
	"afdx/internal/netcalc"
	"afdx/internal/obs"
	"afdx/internal/parallel"
)

// Cache memoizes per-path trajectory outcomes across runs of the same
// engine options, for the incremental what-if layer
// (internal/incremental). It nests a netcalc.Cache for the engine's
// internal NC prefix run, so after a small delta both the prefix
// bounds and the unaffected paths are served from cache.
//
// # Validity and bit-identity
//
// analyzePortSeq for a path is a pure function of (a) the path's port
// sequence, (b) the full flow/contract/rate/latency state of every
// crossed port — rendered as netcalc.PortSignatures — and (c) the NC
// prefix bound of every flow at every crossed port (the S_max terms).
// The cache tracks dependencies by version: each run bumps a run
// counter, re-renders every port signature and prefix value, and
// records the run at which each last *changed*. A cached path is
// reused only when every dependency's last-change run is no later
// than the run that computed the entry — i.e. every input is bitwise
// identical to what the entry was computed from — so a hit equals a
// recomputation bit for bit, and an incremental run is bit-identical
// to a cold run for any delta sequence.
//
// Reuse decisions are sequential (before the path fan-out), so the
// hit/miss counters are Deterministic at every Options.Parallel value.
// Like the netcalc cache, a Cache is bound to one option set (Parallel
// excluded) and is not safe for concurrent use.
type Cache struct {
	opts  Options
	bound bool
	nc    *netcalc.Cache
	dep   *depTracker
	paths map[afdx.PathID]*pathLine
}

// pathLine holds up to two generations of outcomes for one path, most
// recent first. Two slots make the cache proof against the A/B/A
// alternation of candidate sweeps (the conformance shrinker tries
// "cur minus VL i" for each i against an unchanged cur): the sweep's
// recomputation overwrites slot 0, while slot 1 keeps the outcome for
// the base values every next candidate flips back to.
type pathLine struct {
	slots [2]*pathEntry
}

// depTracker versions the dependency values path entries are checked
// against: the signature of every port and the NC prefix bound of
// every (flow, port). It is shareable across trajectory caches of
// different options — the dependency space is graph-determined (the
// prefix run always uses netcalc.DefaultOptions), so an update is a
// pure function of (graph, prefix result) and caches sharing a
// tracker see the exact versions they would have recorded privately.
type depTracker struct {
	run  int64
	sigs map[afdx.PortID]verString
	pref map[netcalc.FlowPortKey]verFloat
	// prefPort coarsens pref to whole ports: the last run any flow's
	// prefix bound at the port changed. The validity fast path scans
	// ports, not (flow, port) pairs — an over-approximation (a port's
	// coarse version can be newer than every surviving flow's), which
	// is sound because a failed fast path falls back to exact value
	// comparison, never to invalidation.
	prefPort map[afdx.PortID]int64

	// Last inputs folded in, by pointer: the signature map is memoized
	// per graph and the prefix result is memo-served for repeated
	// (graph, options) runs, so pointer equality proves value equality
	// and the whole re-render loop can be skipped (that skip is what
	// makes sharing a tracker between the grouped and ungrouped
	// trajectory reference runs profitable).
	lastPG *afdx.PortGraph
	lastNC *netcalc.Result
}

func newDepTracker() *depTracker {
	return &depTracker{
		sigs:     map[afdx.PortID]verString{},
		pref:     map[netcalc.FlowPortKey]verFloat{},
		prefPort: map[afdx.PortID]int64{},
	}
}

// update folds one run's dependency values in, bumping the version of
// every value that differs from the last recorded one. Re-folding
// identical values is a no-op (nothing bumps), so calling update for
// runs of several caches in any order is safe.
func (d *depTracker) update(pg *afdx.PortGraph, sigs map[afdx.PortID]string, nc *netcalc.Result) {
	if d.lastPG == pg && d.lastNC == nc {
		return
	}
	d.run++
	for id, s := range sigs {
		if e, ok := d.sigs[id]; !ok || e.val != s {
			d.sigs[id] = verString{s, d.run}
		}
	}
	for key, v := range nc.PrefixDelays {
		if e, ok := d.pref[key]; !ok || e.val != v {
			d.pref[key] = verFloat{v, d.run}
			d.prefPort[key.Port] = d.run
		}
	}
	d.lastPG, d.lastNC = pg, nc
}

type verString struct {
	val string
	ver int64
}

type verFloat struct {
	val float64
	ver int64
}

// pathEntry is one cached path outcome together with the exact
// dependency values it was computed from: the signature of each
// crossed port (sigs, parallel to ports) and the NC prefix bound of
// every flow at every crossed port (pref, in crossed-port-then-
// canonical-flow order). at is the dependency-clock run that last
// validated the entry — the version fast path; the stored values are
// the exact fallback when versions have moved (see slotValid).
type pathEntry struct {
	ports []afdx.PortID
	sigs  []string
	pref  []float64
	det   PathDetail
	at    int64
}

// NewCache returns an empty path cache for the given engine options,
// with a private nested netcalc cache for the prefix runs.
func NewCache(opts Options) *Cache { return NewCacheWithPrefix(opts, nil) }

// NewCacheWithPrefix is NewCache with a caller-supplied netcalc cache
// backing the internal NC prefix runs (pass the cache of a session's
// own NC analysis when its options equal netcalc.DefaultOptions, so
// the prefix run becomes a pure cache hit). nil allocates a private
// one.
func NewCacheWithPrefix(opts Options, ncc *netcalc.Cache) *Cache {
	if ncc == nil {
		ncc = netcalc.NewCache(netcalc.DefaultOptions())
	}
	c := &Cache{nc: ncc, dep: newDepTracker()}
	c.ensureOpts(opts)
	return c
}

// ShareDeps makes c reuse donor's dependency tracker (and should come
// with a shared prefix cache, see NewCacheWithPrefix), so a pool of
// trajectory caches with different engine options folds each run's
// dependency values in once instead of once per cache. The path
// entries themselves stay private — only the dependency clock is
// shared.
func (c *Cache) ShareDeps(donor *Cache) { c.dep = donor.dep }

func (c *Cache) ensureOpts(opts Options) {
	opts.Parallel = 0
	if !c.bound || c.opts != opts {
		c.opts = opts
		c.bound = true
		// The tracker survives rebinding (dependency values are
		// graph-determined, not option-determined); only the entries
		// computed under the old options are unusable.
		c.paths = map[afdx.PathID]*pathLine{}
	}
}

// PrefixNCCache exposes the nested netcalc cache backing the prefix
// runs (for sessions that share it with their own NC analysis).
func (c *Cache) PrefixNCCache() *netcalc.Cache { return c.nc }

// trIncrMetrics counts path-cache traffic of one incremental run; all
// Deterministic (sequential reuse decisions).
type trIncrMetrics struct {
	hits          *obs.Counter
	recomputes    *obs.Counter
	invalidations *obs.Counter
}

func newTrIncrMetrics(reg *obs.Registry) trIncrMetrics {
	if reg == nil {
		return trIncrMetrics{}
	}
	return trIncrMetrics{
		hits: reg.Counter("trajectory.incr_path_hits", obs.Deterministic,
			"path outcomes served from the incremental cache"),
		recomputes: reg.Counter("trajectory.incr_path_recomputes", obs.Deterministic,
			"paths recomputed by incremental runs (cold or invalidated)"),
		invalidations: reg.Counter("trajectory.incr_path_invalidations", obs.Deterministic,
			"cached path outcomes invalidated by a changed dependency"),
	}
}

// AnalyzeWithCache is AnalyzeWithCacheCtx without observability.
func AnalyzeWithCache(pg *afdx.PortGraph, opts Options, c *Cache) (*Result, error) {
	return AnalyzeWithCacheCtx(context.Background(), pg, opts, c)
}

// AnalyzeWithCacheCtx runs the Trajectory analysis, serving paths with
// unchanged dependencies from c and recomputing only the rest (see
// Cache). A nil cache degenerates to AnalyzeCtx, as does
// PrefixTrajectory mode: its recursive prefix bounds depend on the
// whole transitive upstream cone, which this cache's per-port
// dependency tracking does not model. The result is bit-identical to
// a cold AnalyzeCtx run on the same graph and options.
func AnalyzeWithCacheCtx(ctx context.Context, pg *afdx.PortGraph, opts Options, c *Cache) (*Result, error) {
	if c == nil || opts.PrefixMode != PrefixNC {
		return AnalyzeCtx(ctx, pg, opts)
	}
	c.ensureOpts(opts)
	ctx, span := obs.StartSpan(ctx, "trajectory")
	defer span.End()
	a, err := newAnalyzerShell(ctx, pg, opts)
	if err != nil {
		return nil, err
	}
	ncOpts := netcalc.DefaultOptions()
	ncOpts.Parallel = opts.Parallel
	nc, err := netcalc.AnalyzeWithCacheCtx(ctx, pg, ncOpts, c.nc)
	if err != nil {
		return nil, fmt.Errorf("trajectory: computing NC prefix bounds: %w", err)
	}
	a.ncPrefix = nc.PrefixDelays
	// The flat hot-path index reads the prefix bounds at build time, so
	// it is prepared only now that the cached NC run has supplied them.
	if err := a.prepare(); err != nil {
		return nil, err
	}

	// Advance the run counter and record which dependencies changed
	// since the previous run. Entries for ports or keys absent from the
	// current graph simply go stale at their old version: no path of
	// the current graph can reference them, and if they reappear later
	// bit-identical they are still valid ancestors for entries computed
	// before their disappearance.
	im := newTrIncrMetrics(obs.RegistryFrom(ctx))
	c.dep.update(pg, c.nc.SignaturesFor(pg), nc)

	paths := pg.Net.AllPaths()
	dets := make([]PathDetail, len(paths))
	todo := make([]int, 0, len(paths))
	for i, pid := range paths {
		line := c.paths[pid]
		if line != nil {
			if e := c.validSlot(line, pg.PathPorts(pid), pg); e != nil {
				dets[i] = e.det
				im.hits.Inc()
				continue
			}
			im.invalidations.Inc()
		}
		todo = append(todo, i)
	}
	im.recomputes.Add(int64(len(todo)))

	err = parallel.ForEachCtx(ctx, opts.Parallel, len(todo), func(k int) error {
		i := todo[k]
		_, psp := obs.StartSpan(ctx, "path:"+paths[i].String())
		defer psp.End()
		det, err := a.analyzePath(ctx, paths[i])
		dets[i] = det
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, i := range todo {
		seq := pg.PathPorts(paths[i])
		sigs, pref := c.depSnapshot(seq, pg)
		e := &pathEntry{
			ports: append([]afdx.PortID(nil), seq...),
			sigs:  sigs,
			pref:  pref,
			det:   dets[i],
			at:    c.dep.run,
		}
		line := c.paths[paths[i]]
		if line == nil {
			line = &pathLine{}
			c.paths[paths[i]] = line
		}
		line.slots[1] = line.slots[0]
		line.slots[0] = e
	}

	res := &Result{
		Opts:       opts,
		PathDelays: make(map[afdx.PathID]float64, len(paths)),
		Details:    make(map[afdx.PathID]PathDetail, len(paths)),
	}
	for i, pid := range paths {
		res.PathDelays[pid] = dets[i].DelayUs
		res.Details[pid] = dets[i]
	}
	return res, nil
}

// validSlot returns the first slot of line whose dependencies equal
// the current run's, promoting a slot-1 hit to the front. A slot is
// valid when every dependency it was computed from is bitwise equal to
// the current value — checked by version first (nothing bumped since
// the entry's last validation: the cheap steady-state path) and by the
// entry's stored values second (versions moved but the values flipped
// back, the A/B/A case).
func (c *Cache) validSlot(line *pathLine, seq []afdx.PortID, pg *afdx.PortGraph) *pathEntry {
	for si, e := range line.slots {
		if e == nil || !c.slotValid(e, seq, pg) {
			continue
		}
		if si == 1 {
			line.slots[0], line.slots[1] = line.slots[1], line.slots[0]
		}
		return line.slots[0]
	}
	return nil
}

func (c *Cache) slotValid(e *pathEntry, seq []afdx.PortID, pg *afdx.PortGraph) bool {
	if len(seq) == 0 || len(e.ports) != len(seq) {
		return false
	}
	for i := range seq {
		if e.ports[i] != seq[i] {
			return false
		}
	}
	if e.at == c.dep.run {
		return true // already validated (or computed) this run
	}
	fresh := true // no dependency version moved past e.at
	for _, h := range seq {
		se, ok := c.dep.sigs[h]
		if !ok {
			return false
		}
		// The S_max alignment terms read the NC prefix bound of every
		// flow met along the path (at its first shared port, a port of
		// seq); the coarse per-port prefix version covers all of them
		// (update folds the full current prefix map in, so every flow
		// of the current graph is registered under its ports).
		pv, pok := c.dep.prefPort[h]
		if !pok {
			return false
		}
		if se.ver > e.at || pv > e.at {
			fresh = false
			break
		}
	}
	if !fresh && !c.slotValueEqual(e, seq, pg) {
		return false
	}
	// Validated against the current dependency state: refresh the
	// entry's clock so the next run takes the version fast path.
	e.at = c.dep.run
	return true
}

// slotValueEqual compares the entry's stored dependency values against
// the tracker's current ones, bitwise and allocation-free.
func (c *Cache) slotValueEqual(e *pathEntry, seq []afdx.PortID, pg *afdx.PortGraph) bool {
	if len(e.sigs) != len(seq) {
		return false
	}
	k := 0
	for i, h := range seq {
		se, ok := c.dep.sigs[h]
		if !ok || se.val != e.sigs[i] {
			return false
		}
		for _, f := range pg.Ports[h].Flows {
			pe, ok := c.dep.pref[netcalc.FlowPortKey{VL: f.VL.ID, Port: h}]
			if !ok || k >= len(e.pref) || pe.val != e.pref[k] {
				return false
			}
			k++
		}
	}
	return k == len(e.pref)
}

// depSnapshot captures the current dependency values of a path — the
// signature of each crossed port and the prefix bound of every flow at
// every crossed port — in the canonical order slotValueEqual walks.
func (c *Cache) depSnapshot(seq []afdx.PortID, pg *afdx.PortGraph) ([]string, []float64) {
	sigs := make([]string, len(seq))
	var pref []float64
	for i, h := range seq {
		sigs[i] = c.dep.sigs[h].val
		for _, f := range pg.Ports[h].Flows {
			pref = append(pref, c.dep.pref[netcalc.FlowPortKey{VL: f.VL.ID, Port: h}].val)
		}
	}
	return sigs, pref
}
