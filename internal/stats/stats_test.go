package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("unexpected summary %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %g, want sqrt(2)", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("empty sample should have N=0, got %+v", s)
	}
}

func TestPercentileEdges(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("P0 = %g, want 10", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Errorf("P100 = %g, want 40", got)
	}
	if got := Percentile(xs, 50); got != 25 {
		t.Errorf("P50 = %g, want 25 (interpolated)", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("percentile of empty = %g, want 0", got)
	}
}

func TestSummaryString(t *testing.T) {
	if !strings.Contains(Summarize([]float64{1}).String(), "n=1") {
		t.Error("String should mention the count")
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64, p1, p2 float64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(50))
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		s := Summarize(xs)
		// Min <= P50 <= P95 <= P99 <= Max and Mean within [Min, Max].
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 &&
			s.P99 <= s.Max && s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}
	b := Histogram(xs, 5)
	if len(b) != 5 {
		t.Fatalf("buckets = %d, want 5", len(b))
	}
	total := 0
	for _, bk := range b {
		total += bk.Count
	}
	if total != len(xs) {
		t.Errorf("counts sum to %d, want %d", total, len(xs))
	}
	// The max value lands in the (closed) last bucket.
	if b[4].Count == 0 {
		t.Error("last bucket should hold the maximum")
	}
	if b[0].Lo != 0 || b[4].Hi != 10 {
		t.Errorf("range [%g, %g], want [0, 10]", b[0].Lo, b[4].Hi)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	if Histogram(nil, 5) != nil {
		t.Error("empty sample should yield nil")
	}
	if Histogram([]float64{1}, 0) != nil {
		t.Error("non-positive bucket count should yield nil")
	}
	b := Histogram([]float64{7, 7, 7}, 4)
	if len(b) != 1 || b[0].Count != 3 {
		t.Errorf("constant sample should yield one bucket: %v", b)
	}
}

func TestRenderHistogram(t *testing.T) {
	b := Histogram([]float64{1, 1, 2, 3}, 2)
	out := RenderHistogram(b, 10)
	if !strings.Contains(out, "#") {
		t.Errorf("expected bars in %q", out)
	}
	if RenderHistogram(nil, 10) != "" {
		t.Error("empty histogram should render empty")
	}
}
