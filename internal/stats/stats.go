// Package stats provides the small set of descriptive statistics used by
// the experiment reports: summaries and percentiles over float samples.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P95, P99  float64
	StdDev         float64
}

// Summarize computes the summary of a sample. An empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - s.Mean) * (x - s.Mean)
	}
	s.StdDev = math.Sqrt(varSum / float64(len(xs)))
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (0..100) of an ascending-sorted
// sample, with linear interpolation between ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f sd=%.2f",
		s.N, s.Mean, s.Min, s.P50, s.P95, s.Max, s.StdDev)
}

// Bucket is one histogram bin: [Lo, Hi) except the last, which is
// closed.
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Histogram bins a sample into n equal-width buckets spanning its range.
// An empty sample or non-positive n yields nil; a constant sample yields
// one bucket.
func Histogram(xs []float64, n int) []Bucket {
	if len(xs) == 0 || n <= 0 {
		return nil
	}
	s := Summarize(xs)
	if s.Max == s.Min {
		return []Bucket{{Lo: s.Min, Hi: s.Max, Count: len(xs)}}
	}
	width := (s.Max - s.Min) / float64(n)
	buckets := make([]Bucket, n)
	for i := range buckets {
		buckets[i].Lo = s.Min + float64(i)*width
		buckets[i].Hi = s.Min + float64(i+1)*width
	}
	for _, x := range xs {
		i := int((x - s.Min) / width)
		if i >= n {
			i = n - 1 // the maximum lands in the closed last bucket
		}
		buckets[i].Count++
	}
	return buckets
}

// RenderHistogram writes an ASCII bar chart of the buckets, scaled to
// barWidth characters.
func RenderHistogram(buckets []Bucket, barWidth int) string {
	maxCount := 0
	for _, b := range buckets {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	if maxCount == 0 {
		return ""
	}
	var out string
	for _, b := range buckets {
		bar := ""
		for i := 0; i < b.Count*barWidth/maxCount; i++ {
			bar += "#"
		}
		out += fmt.Sprintf("%10.2f..%-10.2f %6d %s\n", b.Lo, b.Hi, b.Count, bar)
	}
	return out
}
