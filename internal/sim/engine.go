package sim

import (
	"container/heap"

	"afdx/internal/afdx"
)

// The queueing engine: each output port holds a priority queue of ready
// frames (ARINC 664 switches offer static priority levels; with every
// VL at the same level the engine degenerates to plain FIFO). Service
// is non-preemptive: once a frame's transmission starts it completes.
//
// Event kinds:
//
//	evArrive - a frame is fully received at a node (store-and-forward)
//	evReady  - a frame has passed a port's technological latency and
//	           joins the port queue
//	evDone   - a port finished transmitting its current frame
//
// Ties resolve by event sequence number, which preserves FIFO order
// among equal-priority frames.

type eventKind int

const (
	evArrive eventKind = iota
	evReady
	evDone
)

type frame struct {
	vl     *afdx.VirtualLink
	emitNs int64
	bits   int64
	isEmit bool // true only for the initial emission occurrence
}

type event struct {
	timeNs int64
	seq    int64
	kind   eventKind
	fr     frame
	node   string      // evArrive: node reached
	port   afdx.PortID // evReady/evDone: port concerned
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].timeNs != h[j].timeNs {
		return h[i].timeNs < h[j].timeNs
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// queued is one frame waiting in a port queue.
type queued struct {
	fr       frame
	priority int
	enq      int64 // FIFO order within a priority level
	next     string
}

// portQueue orders by (priority asc, enqueue order asc).
type portQueue []queued

func (q portQueue) Len() int { return len(q) }
func (q portQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority < q[j].priority
	}
	return q[i].enq < q[j].enq
}
func (q portQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *portQueue) Push(x any)   { *q = append(*q, x.(queued)) }
func (q *portQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// portState is the runtime state of one output port.
type portState struct {
	busy    bool
	queue   portQueue
	serving queued
	// maxBacklogBits tracks the largest queued volume (excluding the
	// frame in service), for comparison against the NC backlog bound.
	backlogBits    int64
	maxBacklogBits int64
}

func (ps *portState) push(q queued) {
	heap.Push(&ps.queue, q)
	ps.backlogBits += q.fr.bits
	if ps.backlogBits > ps.maxBacklogBits {
		ps.maxBacklogBits = ps.backlogBits
	}
}

func (ps *portState) pop() queued {
	q := heap.Pop(&ps.queue).(queued)
	ps.backlogBits -= q.fr.bits
	return q
}
