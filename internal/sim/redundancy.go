package sim

import (
	"fmt"

	"afdx/internal/afdx"
)

// CombineRedundant implements ARINC 664 redundancy management on the
// simulation of a mirrored (dual A/B) network: the receiving end system
// keeps the first valid copy of each frame, so the delivered delay of
// logical frame k on a logical path is min(delay of copy A, delay of
// copy B). FIFO networks preserve per-VL frame order, so the k-th
// delivery on each sub-network is the k-th emission, and index-wise
// combination is exact.
//
// The simulation must have been run on a configgen.Mirror'ed network
// with Config.RecordFrames set, with identical emission offsets for the
// two copies of each VL (pass OffsetsUs for both "<vl>A" and "<vl>B";
// a deliberate skew between them models the per-port scheduling
// difference of real end systems).
func CombineRedundant(res *Result, base *afdx.Network) (map[afdx.PathID]PathStats, error) {
	if res.FrameDelays == nil {
		return nil, fmt.Errorf("sim: CombineRedundant needs a run with Config.RecordFrames")
	}
	out := map[afdx.PathID]PathStats{}
	for _, pid := range base.AllPaths() {
		a := res.FrameDelays[afdx.PathID{VL: pid.VL + "A", PathIdx: pid.PathIdx}]
		b := res.FrameDelays[afdx.PathID{VL: pid.VL + "B", PathIdx: pid.PathIdx}]
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			continue
		}
		var st PathStats
		for k := 0; k < n; k++ {
			d := a[k]
			if b[k] < d {
				d = b[k]
			}
			if st.Frames == 0 || d < st.MinDelayUs {
				st.MinDelayUs = d
			}
			if d > st.MaxDelayUs {
				st.MaxDelayUs = d
			}
			st.SumDelayUs += d
			st.Frames++
		}
		out[pid] = st
	}
	return out, nil
}
