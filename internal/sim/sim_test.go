package sim

import (
	"math"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/netcalc"
	"afdx/internal/trajectory"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

func figure2Graph(t *testing.T) *afdx.PortGraph {
	t.Helper()
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestSingleFrameUncontendedDelay(t *testing.T) {
	// v5 alone on its path with all other VLs parked far away: the delay
	// is exactly 2*(L + C) = 2*(16+40) = 112 us.
	pg := figure2Graph(t)
	cfg := Config{
		DurationUs: 4000,
		OffsetsUs: map[string]float64{
			"v1": 2000, "v2": 2000, "v3": 2000, "v4": 2000, "v5": 0,
		},
	}
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Paths[afdx.PathID{VL: "v5", PathIdx: 0}]
	if st.Frames != 1 {
		t.Fatalf("v5 frames = %d, want 1", st.Frames)
	}
	if !almostEq(st.MaxDelayUs, 112) {
		t.Errorf("uncontended v5 delay = %g, want 112", st.MaxDelayUs)
	}
}

func TestSynchronizedBurstQueueing(t *testing.T) {
	// v1..v4 all emitted at t=0: at S3->e6 the four frames serialize, so
	// the worst of them waits for three predecessors.
	pg := figure2Graph(t)
	cfg := Config{
		DurationUs: 4000,
		OffsetsUs:  map[string]float64{"v1": 0, "v2": 0, "v3": 0, "v4": 0, "v5": 2000},
	}
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, vl := range []string{"v1", "v2", "v3", "v4"} {
		d := res.Paths[afdx.PathID{VL: vl, PathIdx: 0}].MaxDelayUs
		if d > worst {
			worst = d
		}
	}
	// Minimum conceivable: 3 hops of (16+40) = 168; with three frames
	// queued ahead at the last hop: 168 + 3*40 = 288... but upstream
	// waits overlap, so the observed worst is between 208 and 288.
	if worst < 208 || worst > 288 {
		t.Errorf("synchronized burst worst delay = %g, want within [208, 288]", worst)
	}
}

// TestGroupedTrajectoryOptimismScenario reproduces, in simulation, the
// corner case documented in DESIGN.md: a feasible arrival pattern on the
// Figure 2 configuration in which v1's end-to-end delay (287 us) exceeds
// the grouped trajectory bound (248 us) while staying below the
// ungrouped bound (288 us). This is the known optimism of the published
// enhanced trajectory method, only discovered years later.
func TestGroupedTrajectoryOptimismScenario(t *testing.T) {
	pg := figure2Graph(t)
	// v2 one nanosecond ahead of v1 on the shared S1->S3 link, v3/v4
	// back-to-back on S2->S3, everything completing just before v1's
	// arrival at S3: v1 waits behind v3's tail, v2 and v4.
	cfg := Config{
		DurationUs: 4000,
		OffsetsUs:  map[string]float64{"v1": 0.002, "v2": 0.001, "v3": 0, "v4": 0, "v5": 2000},
	}
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Paths[afdx.PathID{VL: "v1", PathIdx: 0}].MaxDelayUs
	if !almostEq(d, 287.998) {
		t.Fatalf("staggered scenario delay = %g, want 287.998", d)
	}
	grouped, err := trajectory.Analyze(pg, trajectory.Options{Grouping: true})
	if err != nil {
		t.Fatal(err)
	}
	ungrouped, err := trajectory.Analyze(pg, trajectory.Options{Grouping: false})
	if err != nil {
		t.Fatal(err)
	}
	pid := afdx.PathID{VL: "v1", PathIdx: 0}
	if d <= grouped.PathDelays[pid] {
		t.Errorf("scenario (%g) should exceed the grouped trajectory bound (%g): the documented optimism",
			d, grouped.PathDelays[pid])
	}
	if d > ungrouped.PathDelays[pid]+1e-9 {
		t.Errorf("scenario (%g) must not exceed the ungrouped trajectory bound (%g)",
			d, ungrouped.PathDelays[pid])
	}
}

func TestBoundsDominateSimulation(t *testing.T) {
	// Across many random offset seeds, no observed delay may exceed the
	// NC bound or the ungrouped trajectory bound (sound analyses).
	pg := figure2Graph(t)
	nc, err := netcalc.Analyze(pg, netcalc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trajectory.Analyze(pg, trajectory.Options{Grouping: false})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 25; seed++ {
		cfg := DefaultConfig(seed)
		cfg.DurationUs = 64 * 1000
		res, err := Run(pg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for pid, st := range res.Paths {
			if st.MaxDelayUs > nc.PathDelays[pid]+1e-6 {
				t.Errorf("seed %d path %v: simulated %g exceeds NC bound %g",
					seed, pid, st.MaxDelayUs, nc.PathDelays[pid])
			}
			if st.MaxDelayUs > tr.PathDelays[pid]+1e-6 {
				t.Errorf("seed %d path %v: simulated %g exceeds ungrouped trajectory bound %g",
					seed, pid, st.MaxDelayUs, tr.PathDelays[pid])
			}
		}
	}
}

func TestBAGRespectedByGreedySources(t *testing.T) {
	pg := figure2Graph(t)
	cfg := DefaultConfig(1)
	cfg.DurationUs = 40_000 // 10 BAGs of 4 ms
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 5 VLs * 10 frames each.
	if res.FramesEmitted != 50 {
		t.Errorf("frames emitted = %d, want 50", res.FramesEmitted)
	}
	delivered := 0
	for _, st := range res.Paths {
		delivered += st.Frames
	}
	if delivered != 50 {
		t.Errorf("frames delivered = %d, want 50 (unicast VLs, no loss)", delivered)
	}
}

func TestMulticastDeliversToAllDestinations(t *testing.T) {
	pg, err := afdx.BuildPortGraph(afdx.Figure1Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(3)
	cfg.DurationUs = 4 * 1000
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// v6 (BAG 4 ms) emits one frame in 4 ms and has two destinations.
	for pi := 0; pi < 2; pi++ {
		st := res.Paths[afdx.PathID{VL: "v6", PathIdx: pi}]
		if st.Frames != 1 {
			t.Errorf("v6 path %d: %d frames delivered, want 1", pi, st.Frames)
		}
	}
}

func TestRandomSizesStayWithinContract(t *testing.T) {
	pg := figure2Graph(t)
	n := pg.Net
	n.VLs[0].SMinBytes = 100 // widen the range for v1
	cfg := DefaultConfig(5)
	cfg.RandomSizes = true
	cfg.DurationUs = 128 * 1000
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Paths[afdx.PathID{VL: "v1", PathIdx: 0}]
	if st.Frames == 0 {
		t.Fatal("no frames delivered")
	}
	if st.MinDelayUs < 2*16+3*8 { // three hops of the smallest frame
		t.Errorf("min delay %g below physical floor", st.MinDelayUs)
	}
	if st.MinDelayUs >= st.MaxDelayUs {
		t.Errorf("random sizes should produce delay variation: min %g max %g",
			st.MinDelayUs, st.MaxDelayUs)
	}
}

func TestPolicingDropsNonConformantTraffic(t *testing.T) {
	// Shrink v1's BAG in the model used for policing, then simulate a
	// source that emits at twice the declared rate by giving the policer
	// a contract twice as strict as the emission pattern.
	n := afdx.Figure2Config()
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate with policing and a deliberately tiny slack: greedy
	// sources are exactly BAG-spaced so everything conforms.
	cfg := DefaultConfig(1)
	cfg.DurationUs = 40_000
	cfg.Policing = true
	cfg.PolicingSlackUs = 0
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDropped != 0 {
		t.Errorf("conformant traffic dropped %d frames", res.FramesDropped)
	}
	// A policer enforcing half the declared rate (equivalently, a source
	// emitting at twice its contract) must drop roughly half the frames.
	cfg2 := cfg
	cfg2.Seed = 2
	cfg2.PolicingRateFactor = 0.5
	res2, err := Run(pg, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.FramesDropped == 0 {
		t.Error("halved policing rate should drop frames from exact-BAG sources")
	}
	frac := float64(res2.FramesDropped) / float64(res2.FramesEmitted)
	if frac < 0.25 || frac > 0.6 {
		t.Errorf("dropped fraction = %g, want roughly one half", frac)
	}
	delivered := 0
	for _, st := range res2.Paths {
		delivered += st.Frames
	}
	if delivered+res2.FramesDropped != res2.FramesEmitted {
		t.Errorf("conservation violated: %d delivered + %d dropped != %d emitted",
			delivered, res2.FramesDropped, res2.FramesEmitted)
	}
}

func TestPolicingDropsBurst(t *testing.T) {
	// Two VLs from the same ES declared with a large BAG but emitted
	// simultaneously exercise the bucket: with zero initial... the bucket
	// starts full, so the first frame passes and the second frame of the
	// same VL (one BAG later) also passes. To force a drop, declare a
	// BAG larger than the emission interval is impossible with greedy
	// sources; instead use jittered sources whose accumulated jitter
	// exceeds the slack window. Statistically, with zero slack and
	// jitter, gaps only grow, so greedy remains conformant: assert that.
	pg := figure2Graph(t)
	cfg := DefaultConfig(7)
	cfg.Model = PeriodicJitterSources
	cfg.JitterUs = 500
	cfg.Policing = true
	cfg.PolicingSlackUs = 0
	cfg.DurationUs = 64_000
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDropped != 0 {
		t.Errorf("jitter that only widens gaps must conform, dropped %d", res.FramesDropped)
	}
}

func TestRunRejectsBadDuration(t *testing.T) {
	if _, err := Run(figure2Graph(t), Config{DurationUs: 0}); err == nil {
		t.Error("expected error for zero duration")
	}
}

func TestMeanDelayAccumulation(t *testing.T) {
	pg := figure2Graph(t)
	cfg := DefaultConfig(1)
	cfg.DurationUs = 40_000
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pid, st := range res.Paths {
		mean := st.MeanDelayUs()
		if mean < st.MinDelayUs-1e-9 || mean > st.MaxDelayUs+1e-9 {
			t.Errorf("path %v: mean %g outside [min %g, max %g]", pid, mean, st.MinDelayUs, st.MaxDelayUs)
		}
	}
	if res.MaxDelayUs() <= 0 {
		t.Error("global max delay should be positive")
	}
}

func TestPriorityOvertakesQueuedFrames(t *testing.T) {
	// Two low-priority VLs and one high-priority VL converge on one
	// port. Emitted together, the high VL must overtake the queued low
	// frames even when it becomes ready last.
	n := &afdx.Network{
		Name:       "prio",
		Params:     afdx.DefaultParams(),
		EndSystems: []string{"a", "b", "c", "d"},
		Switches:   []string{"SW"},
		VLs: []*afdx.VirtualLink{
			{ID: "low1", Source: "a", BAGMs: 4, SMaxBytes: 1518, SMinBytes: 1518, Priority: 1,
				Paths: [][]string{{"a", "SW", "d"}}},
			{ID: "low2", Source: "b", BAGMs: 4, SMaxBytes: 1518, SMinBytes: 1518, Priority: 1,
				Paths: [][]string{{"b", "SW", "d"}}},
			{ID: "high", Source: "c", BAGMs: 4, SMaxBytes: 100, SMinBytes: 100, Priority: 0,
				Paths: [][]string{{"c", "SW", "d"}}},
		},
	}
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	// The high frame becomes ready at SW->d while low1 is in service and
	// low2 is queued: it must be served before low2 (non-preemptive, so
	// it still waits for low1's tail).
	cfg := Config{
		DurationUs: 4000,
		OffsetsUs:  map[string]float64{"low1": 0, "low2": 0, "high": 30},
	}
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Timeline: low frames (121.44 us each) arrive SW at 16+121.44 =
	// 137.44, ready at 153.44, low1 serves [153.44, 274.88]. High frame:
	// emitted 30, arrives SW at 30+16+8 = 54, ready 70 -- before the low
	// frames! So it is served first [70, 78] and sees no contention at
	// all with these offsets; shift it to arrive mid-service instead.
	_ = res
	cfg.OffsetsUs["high"] = 150 // ready at SW->d at 150+24+16 = 190
	res, err = Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dHigh := res.Paths[afdx.PathID{VL: "high", PathIdx: 0}].MaxDelayUs
	// high: ready at 190 during low1's service [153.44, 274.88]; starts
	// 274.88 (overtaking low2), done 282.88; e2e = 282.88 - 150 = 132.88.
	if !almostEq(dHigh, 132.88) {
		t.Errorf("high-priority delay = %g, want 132.88 (overtakes low2)", dHigh)
	}
	// low2 waits for low1, the high frame, then itself.
	dLow2 := res.Paths[afdx.PathID{VL: "low2", PathIdx: 0}].MaxDelayUs
	if dLow2 <= dHigh {
		t.Errorf("low2 delay %g should exceed the high-priority delay %g", dLow2, dHigh)
	}
}

func TestUniformPriorityIsPlainFIFO(t *testing.T) {
	// Setting every VL to the same non-zero level must not change any
	// delay relative to the default level 0.
	base := afdx.Figure2Config()
	pgBase, err := afdx.BuildPortGraph(base, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	shifted := afdx.Figure2Config()
	for _, v := range shifted.VLs {
		v.Priority = 3
	}
	pgShift, err := afdx.BuildPortGraph(shifted, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		cfg := DefaultConfig(seed)
		cfg.DurationUs = 32_000
		a, err := Run(pgBase, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(pgShift, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for pid, st := range a.Paths {
			if b.Paths[pid].MaxDelayUs != st.MaxDelayUs {
				t.Errorf("seed %d path %v: uniform priority changed delay %g -> %g",
					seed, pid, st.MaxDelayUs, b.Paths[pid].MaxDelayUs)
			}
		}
	}
}

func TestSimBacklogWithinNCBound(t *testing.T) {
	pg := figure2Graph(t)
	nc, err := netcalc.Analyze(pg, netcalc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		cfg := DefaultConfig(seed)
		cfg.DurationUs = 64_000
		res, err := Run(pg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for id, bits := range res.MaxBacklogBits {
			if float64(bits) > nc.Ports[id].BacklogBits+1e-6 {
				t.Errorf("seed %d port %v: observed backlog %d bits above NC bound %g",
					seed, id, bits, nc.Ports[id].BacklogBits)
			}
		}
	}
}

func TestNCBufferSizingPreventsOverflow(t *testing.T) {
	// Dimension every port buffer with its NC backlog bound: no frame
	// may ever overflow, whatever the offsets.
	pg := figure2Graph(t)
	nc, err := netcalc.Analyze(pg, netcalc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	perPort := map[afdx.PortID]int64{}
	for id, p := range nc.Ports {
		perPort[id] = int64(math.Ceil(p.BacklogBits))
	}
	for seed := int64(0); seed < 15; seed++ {
		cfg := DefaultConfig(seed)
		cfg.DurationUs = 64_000
		cfg.BufferBitsPerPort = perPort
		cfg.BufferBits = 1 // would drop everything if the overrides were ignored
		res, err := Run(pg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.FramesOverflowed != 0 {
			t.Errorf("seed %d: %d overflows despite NC-sized buffers", seed, res.FramesOverflowed)
		}
	}
	// The adversarial synchronized burst too.
	cfg := Config{
		DurationUs:        4000,
		OffsetsUs:         map[string]float64{"v1": 0, "v2": 0, "v3": 0, "v4": 0, "v5": 0},
		BufferBitsPerPort: perPort,
	}
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesOverflowed != 0 {
		t.Errorf("burst: %d overflows despite NC-sized buffers", res.FramesOverflowed)
	}
}

func TestUndersizedBuffersOverflow(t *testing.T) {
	// A buffer smaller than one frame at the convergence port must drop
	// frames under a synchronized burst.
	pg := figure2Graph(t)
	cfg := Config{
		DurationUs: 4000,
		OffsetsUs:  map[string]float64{"v1": 0, "v2": 0, "v3": 0, "v4": 0, "v5": 2000},
		BufferBits: 4000, // room for exactly one queued 500B frame
	}
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesOverflowed == 0 {
		t.Error("expected overflows with a one-frame buffer under a synchronized burst")
	}
	delivered := 0
	for _, st := range res.Paths {
		delivered += st.Frames
	}
	if delivered+res.FramesOverflowed != res.FramesEmitted {
		t.Errorf("conservation: %d delivered + %d dropped != %d emitted",
			delivered, res.FramesOverflowed, res.FramesEmitted)
	}
}

func TestScheduleReplay(t *testing.T) {
	pg := figure2Graph(t)
	cfg := Config{
		DurationUs: 20_000,
		OffsetsUs:  map[string]float64{"v2": 10_000, "v3": 10_000, "v4": 10_000, "v5": 10_000},
		ScheduleUs: map[string][]float64{"v1": {0, 4000, 8000}},
	}
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Paths[afdx.PathID{VL: "v1", PathIdx: 0}]
	if st.Frames != 3 {
		t.Errorf("replayed v1 delivered %d frames, want 3", st.Frames)
	}
	// Other VLs keep their BAG-driven emission (offset 10ms, BAG 4ms,
	// horizon 20ms -> 3 frames each).
	if got := res.Paths[afdx.PathID{VL: "v2", PathIdx: 0}].Frames; got != 3 {
		t.Errorf("v2 delivered %d frames, want 3", got)
	}
}

func TestScheduleReplayAgainstPolicing(t *testing.T) {
	// A trace emitting twice as fast as the contract: policing must drop
	// roughly half of the replayed frames.
	pg := figure2Graph(t)
	var trace []float64
	for at := 0.0; at < 40_000; at += 2000 { // BAG is 4000 us
		trace = append(trace, at)
	}
	cfg := Config{
		DurationUs: 40_000,
		OffsetsUs:  map[string]float64{"v2": 1000, "v3": 1000, "v4": 1000, "v5": 1000},
		ScheduleUs: map[string][]float64{"v1": trace},
		Policing:   true,
	}
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDropped < 8 || res.FramesDropped > 12 {
		t.Errorf("policing dropped %d frames of the double-rate trace, want ~10", res.FramesDropped)
	}
	st := res.Paths[afdx.PathID{VL: "v1", PathIdx: 0}]
	if st.Frames+res.FramesDropped != len(trace) {
		t.Errorf("conservation: %d delivered + %d dropped != %d emitted",
			st.Frames, res.FramesDropped, len(trace))
	}
}
