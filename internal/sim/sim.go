// Package sim is a discrete-event simulator of an AFDX network: sporadic
// BAG-shaped sources, store-and-forward output ports with a constant
// technological latency and static-priority (default FIFO) queueing,
// optional per-VL ingress policing at switches, and per-path end-to-end
// delay measurement.
//
// The simulator produces achievable delays, i.e. lower bounds on the
// worst case; the analyses of internal/netcalc and internal/trajectory
// produce upper bounds. Tests assert the sandwich on every configuration
// exercised (with the documented exception of the grouped trajectory
// variant, whose published formulation is optimistic in corner cases —
// the simulator is precisely what exhibits that).
//
// Time is integer nanoseconds. With the paper's 100 Mb/s links one bit
// takes exactly 10 ns, so all Figure 2 scenarios simulate exactly.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"

	"afdx/internal/afdx"
	"afdx/internal/core/tol"
	"afdx/internal/obs"
)

// SourceModel selects how emission instants are drawn.
type SourceModel int

const (
	// GreedySources emit a frame every BAG starting at the VL's offset:
	// the maximum load the traffic contract admits.
	GreedySources SourceModel = iota
	// PeriodicJitterSources emit every BAG with a small uniform random
	// delay added per frame (sporadic behaviour; still BAG-compliant
	// because the gap can only grow).
	PeriodicJitterSources
)

// Config parameterises one simulation run.
type Config struct {
	// Model selects the source behaviour.
	Model SourceModel
	// DurationUs is the simulated horizon in microseconds; sources stop
	// emitting after it (in-flight frames still drain).
	DurationUs float64
	// Seed drives random offsets, jitter, and frame sizes.
	Seed int64
	// OffsetsUs optionally pins the emission offset of specific VLs (in
	// microseconds); unpinned VLs draw a random offset in [0, BAG).
	OffsetsUs map[string]float64
	// RandomSizes draws each frame size uniformly in [s_min, s_max]
	// instead of always s_max.
	RandomSizes bool
	// JitterUs is the maximum per-frame emission jitter of
	// PeriodicJitterSources.
	JitterUs float64
	// Policing enables the ARINC 664 per-VL token-bucket filter at every
	// switch ingress; non-conformant frames are dropped and counted.
	Policing bool
	// PolicingSlackUs is the extra burst tolerance of the policer,
	// expressed as the time window of accumulated jitter it forgives.
	PolicingSlackUs float64
	// PolicingRateFactor scales the rate the policer enforces relative
	// to the VL's declared contract (1.0 when zero). Values below 1
	// model a misconfigured filter or, equivalently, a source emitting
	// faster than its declared BAG — the fault the ARINC 664 policing
	// function exists to contain.
	PolicingRateFactor float64
	// RecordFrames additionally stores every delivered frame's delay per
	// path, in emission order (FIFO networks preserve per-VL order).
	// Needed by the redundancy-management combination.
	RecordFrames bool
	// BufferBits, when positive, bounds every output port's queue (the
	// frame in transmission excluded): a frame arriving at a full queue
	// is dropped and counted in Result.FramesOverflowed. Zero means
	// unbounded buffers. Dimensioning buffers with the Network Calculus
	// backlog bound guarantees zero overflow — the buffer-sizing use of
	// the analysis the paper describes in section II-B.
	BufferBits int64
	// BufferBitsPerPort overrides BufferBits for specific ports.
	BufferBitsPerPort map[afdx.PortID]int64
	// ScheduleUs replays an explicit emission schedule for the listed
	// VLs (instants in microseconds, ascending) instead of BAG-driven
	// emission — e.g. a recorded production trace. Replayed traffic is
	// NOT BAG-checked at the source; combine with Policing to study how
	// the network contains a contract-violating trace.
	ScheduleUs map[string][]float64
}

// DefaultConfig simulates 10 BAG hyperperiods of greedy sources with
// random offsets.
func DefaultConfig(seed int64) Config {
	return Config{
		Model:      GreedySources,
		DurationUs: 10 * 128 * 1000, // ten times the largest BAG
		Seed:       seed,
	}
}

// PathStats accumulates the delays observed on one (VL, destination) path.
type PathStats struct {
	Frames     int
	MaxDelayUs float64
	SumDelayUs float64
	MinDelayUs float64
}

// MeanDelayUs returns the average observed delay.
func (s PathStats) MeanDelayUs() float64 {
	if s.Frames == 0 {
		return 0
	}
	return s.SumDelayUs / float64(s.Frames)
}

// Result carries the outcome of one run.
type Result struct {
	Paths         map[afdx.PathID]PathStats
	FramesEmitted int
	FramesDropped int // by policing
	// MaxBacklogBits is the largest observed queue occupancy per port
	// (frames waiting, excluding the one in transmission) — comparable
	// to the Network Calculus backlog bound.
	MaxBacklogBits map[afdx.PortID]int64
	// FrameDelays holds per-frame delays in emission order when
	// Config.RecordFrames is set.
	FrameDelays map[afdx.PathID][]float64
	// FramesOverflowed counts frames dropped at full output-port buffers
	// (Config.BufferBits).
	FramesOverflowed int
}

// MaxDelayUs returns the largest delay observed on any path.
func (r *Result) MaxDelayUs() float64 {
	m := 0.0
	for _, s := range r.Paths {
		if s.MaxDelayUs > m {
			//detcheck:allow DET001: running max over float64 values is a comparison, not arithmetic — no rounding, so the result is iteration-order independent
			m = s.MaxDelayUs
		}
	}
	return m
}

// simulator is the run state.
type simulator struct {
	pg     *afdx.PortGraph
	cfg    Config
	rng    *rand.Rand
	events eventHeap
	seq    int64
	enqSeq int64
	ports  map[afdx.PortID]*portState
	// succ maps (VL, node) to the next nodes of the VL's tree.
	succ map[string]map[string][]string
	// destPath maps (VL, destination ES) to the path index.
	destPath map[string]map[string]int
	policer  map[policerKey]*tokenBucket
	res      *Result
	horizon  int64
}

type policerKey struct {
	vl, sw string
}

type tokenBucket struct {
	tokens   float64 // bits
	capacity float64
	rate     float64 // bits per ns
	lastNs   int64
}

func (tb *tokenBucket) conform(nowNs, bits int64) bool {
	tb.tokens = math.Min(tb.capacity, tb.tokens+float64(nowNs-tb.lastNs)*tb.rate)
	tb.lastNs = nowNs
	if tb.tokens+tol.EpsRel >= float64(bits) {
		tb.tokens -= float64(bits)
		return true
	}
	return false
}

// Run simulates the configuration and returns the observed delays.
func Run(pg *afdx.PortGraph, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), pg, cfg)
}

// RunCtx is Run with observability: when ctx carries an obs.Registry
// the run counts processed events and frame outcomes (the simulator is
// single-threaded and seed-driven, so the counts are deterministic);
// when it carries an obs.Tracer the run is wrapped in a "sim" span.
// Observation never influences the simulation.
func RunCtx(ctx context.Context, pg *afdx.PortGraph, cfg Config) (*Result, error) {
	_, span := obs.StartSpan(ctx, "sim")
	defer span.End()
	if cfg.DurationUs <= 0 {
		return nil, fmt.Errorf("sim: non-positive duration %g us", cfg.DurationUs)
	}
	s := &simulator{
		pg:       pg,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		ports:    map[afdx.PortID]*portState{},
		succ:     map[string]map[string][]string{},
		destPath: map[string]map[string]int{},
		policer:  map[policerKey]*tokenBucket{},
		res: &Result{
			Paths:          map[afdx.PathID]PathStats{},
			MaxBacklogBits: map[afdx.PortID]int64{},
		},
		horizon: usToNs(cfg.DurationUs),
	}
	for id := range pg.Ports {
		s.ports[id] = &portState{}
	}
	for _, vl := range pg.Net.VLs {
		s.succ[vl.ID] = map[string][]string{}
		s.destPath[vl.ID] = map[string]int{}
		for pi, path := range vl.Paths {
			for k := 0; k+1 < len(path); k++ {
				next := path[k+1]
				if !contains(s.succ[vl.ID][path[k]], next) {
					s.succ[vl.ID][path[k]] = append(s.succ[vl.ID][path[k]], next)
				}
			}
			s.destPath[vl.ID][path[len(path)-1]] = pi
		}
		if sched, ok := cfg.ScheduleUs[vl.ID]; ok {
			// Replayed trace: every emission is scheduled up front and
			// the per-frame auto-renewal is disabled for this VL.
			for _, at := range sched {
				s.schedule(event{
					timeNs: usToNs(at),
					kind:   evArrive,
					node:   vl.Source,
					fr:     frame{vl: vl, emitNs: usToNs(at), bits: s.frameBits(vl), isEmit: true},
				})
			}
			continue
		}
		// First emission at the VL's offset.
		off, ok := cfg.OffsetsUs[vl.ID]
		if !ok {
			off = s.rng.Float64() * vl.BAGUs()
		}
		s.schedule(event{
			timeNs: usToNs(off),
			kind:   evArrive,
			node:   vl.Source,
			fr:     frame{vl: vl, emitNs: usToNs(off), bits: s.frameBits(vl), isEmit: true},
		})
	}
	events := int64(0)
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		s.process(ev)
		events++
	}
	for id, ps := range s.ports {
		s.res.MaxBacklogBits[id] = ps.maxBacklogBits
	}
	if reg := obs.RegistryFrom(ctx); reg != nil {
		delivered := 0
		for _, ps := range s.res.Paths {
			delivered += ps.Frames
		}
		reg.Counter("sim.events_processed", obs.Deterministic,
			"discrete events popped from the simulation heap").Add(events)
		reg.Counter("sim.frames_emitted", obs.Deterministic,
			"frames emitted by sources").Add(int64(s.res.FramesEmitted))
		reg.Counter("sim.frames_delivered", obs.Deterministic,
			"frame deliveries measured at destination end systems").Add(int64(delivered))
		reg.Counter("sim.frames_dropped", obs.Deterministic,
			"frames dropped by ingress policing").Add(int64(s.res.FramesDropped))
		reg.Counter("sim.frames_overflowed", obs.Deterministic,
			"frames dropped at full output-port buffers").Add(int64(s.res.FramesOverflowed))
	}
	return s.res, nil
}

func (s *simulator) frameBits(vl *afdx.VirtualLink) int64 {
	if s.cfg.RandomSizes && vl.SMaxBytes > vl.SMinBytes {
		return int64(vl.SMinBytes+s.rng.Intn(vl.SMaxBytes-vl.SMinBytes+1)) * 8
	}
	return int64(vl.SMaxBytes) * 8
}

func (s *simulator) schedule(ev event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.events, ev)
}

func (s *simulator) process(ev event) {
	switch ev.kind {
	case evArrive:
		s.arrive(ev)
	case evReady:
		s.ready(ev)
	case evDone:
		s.done(ev)
	}
}

// arrive handles a frame fully received at a node: emission bookkeeping,
// delivery measurement, policing, and fan-out into the node's output
// ports (technological latency first, hence the evReady indirection).
func (s *simulator) arrive(ev event) {
	if ev.fr.isEmit {
		if _, replayed := s.cfg.ScheduleUs[ev.fr.vl.ID]; !replayed {
			next := ev.timeNs + usToNs(ev.fr.vl.BAGUs())
			if s.cfg.Model == PeriodicJitterSources && s.cfg.JitterUs > 0 {
				next += usToNs(s.rng.Float64() * s.cfg.JitterUs)
			}
			if next < s.horizon {
				s.schedule(event{
					timeNs: next,
					kind:   evArrive,
					node:   ev.fr.vl.Source,
					fr:     frame{vl: ev.fr.vl, emitNs: next, bits: s.frameBits(ev.fr.vl), isEmit: true},
				})
			}
		}
		s.res.FramesEmitted++
	}

	if s.pg.Net.IsEndSystem(ev.node) && ev.node != ev.fr.vl.Source {
		pi, ok := s.destPath[ev.fr.vl.ID][ev.node]
		if !ok {
			return
		}
		pid := afdx.PathID{VL: ev.fr.vl.ID, PathIdx: pi}
		st := s.res.Paths[pid]
		d := nsToUs(ev.timeNs - ev.fr.emitNs)
		if st.Frames == 0 || d < st.MinDelayUs {
			st.MinDelayUs = d
		}
		if d > st.MaxDelayUs {
			st.MaxDelayUs = d
		}
		st.SumDelayUs += d
		st.Frames++
		s.res.Paths[pid] = st
		if s.cfg.RecordFrames {
			if s.res.FrameDelays == nil {
				s.res.FrameDelays = map[afdx.PathID][]float64{}
			}
			s.res.FrameDelays[pid] = append(s.res.FrameDelays[pid], d)
		}
		return
	}

	if s.cfg.Policing && s.pg.Net.IsSwitch(ev.node) {
		if !s.police(ev) {
			s.res.FramesDropped++
			return
		}
	}

	for _, next := range s.succ[ev.fr.vl.ID][ev.node] {
		portID := afdx.PortID{From: ev.node, To: next}
		port := s.pg.Ports[portID]
		fr := ev.fr
		fr.isEmit = false
		s.schedule(event{
			timeNs: ev.timeNs + usToNs(port.LatencyUs),
			kind:   evReady,
			port:   portID,
			node:   next,
			fr:     fr,
		})
	}
}

// ready enqueues a frame at its output port (dropping it when the
// port's buffer is full) and starts service if idle.
func (s *simulator) ready(ev event) {
	ps := s.ports[ev.port]
	if limit := s.bufferCapacity(ev.port); limit > 0 && ps.backlogBits+ev.fr.bits > limit {
		s.res.FramesOverflowed++
		return
	}
	s.enqSeq++
	ps.push(queued{fr: ev.fr, priority: ev.fr.vl.Priority, enq: s.enqSeq, next: ev.node})
	if !ps.busy {
		s.startNext(ev.port, ev.timeNs)
	}
}

// bufferCapacity returns the configured buffer size of a port in bits
// (0 = unbounded).
func (s *simulator) bufferCapacity(id afdx.PortID) int64 {
	if c, ok := s.cfg.BufferBitsPerPort[id]; ok {
		return c
	}
	return s.cfg.BufferBits
}

// done completes a transmission: the frame arrives at the next node and
// the port picks the next queued frame (highest priority first).
func (s *simulator) done(ev event) {
	ps := s.ports[ev.port]
	served := ps.serving
	ps.busy = false
	s.schedule(event{timeNs: ev.timeNs, kind: evArrive, node: served.next, fr: served.fr})
	if ps.queue.Len() > 0 {
		s.startNext(ev.port, ev.timeNs)
	}
}

// startNext dequeues and starts transmitting the next frame.
func (s *simulator) startNext(id afdx.PortID, nowNs int64) {
	ps := s.ports[id]
	ps.serving = ps.pop()
	ps.busy = true
	rate := s.pg.Ports[id].RateBitsPerUs
	s.schedule(event{
		timeNs: nowNs + transmitNs(ps.serving.fr.bits, rate),
		kind:   evDone,
		port:   id,
	})
}

// police applies the per-VL token bucket of the ingress switch.
func (s *simulator) police(ev event) bool {
	key := policerKey{vl: ev.fr.vl.ID, sw: ev.node}
	tb := s.policer[key]
	if tb == nil {
		factor := s.cfg.PolicingRateFactor
		if factor == 0 {
			factor = 1
		}
		rate := factor * ev.fr.vl.RhoBitsPerUs() / 1000 // bits per ns
		tb = &tokenBucket{
			capacity: ev.fr.vl.SMaxBits() + rate*float64(usToNs(s.cfg.PolicingSlackUs)),
			rate:     rate,
			lastNs:   ev.timeNs,
		}
		tb.tokens = tb.capacity
		s.policer[key] = tb
	}
	return tb.conform(ev.timeNs, ev.fr.bits)
}

func usToNs(us float64) int64 { return int64(math.Round(us * 1000)) }
func nsToUs(ns int64) float64 { return float64(ns) / 1000 }

// transmitNs is the wire time of a frame: bits / rate. With rate in
// bits/us this is bits*1000/rate ns, exact for the 100 Mb/s case.
func transmitNs(bits int64, rateBitsPerUs float64) int64 {
	return int64(math.Round(float64(bits) * 1000 / rateBitsPerUs))
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
