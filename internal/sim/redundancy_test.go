package sim

import (
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/configgen"
)

// mirroredFigure2 builds the dual-network Figure 2 with equal offsets on
// both copies (plus an optional skew on the B copies).
func mirroredFigure2(t *testing.T, skewUs float64) (*afdx.PortGraph, *afdx.Network, Config) {
	t.Helper()
	base := afdx.Figure2Config()
	red, err := configgen.Mirror(base)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := afdx.BuildPortGraph(red, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	offsets := map[string]float64{}
	for i, vl := range base.VLs {
		off := float64(i) * 37 // arbitrary deterministic offsets
		offsets[vl.ID+"A"] = off
		offsets[vl.ID+"B"] = off + skewUs
	}
	cfg := Config{
		DurationUs:   32_000,
		OffsetsUs:    offsets,
		RecordFrames: true,
	}
	return pg, base, cfg
}

func TestCombineRedundantEqualCopies(t *testing.T) {
	// Without skew the two sub-networks behave identically, so the
	// combined delivery equals either copy's delays exactly.
	pg, base, cfg := mirroredFigure2(t, 0)
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := CombineRedundant(res, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, pid := range base.AllPaths() {
		a := res.Paths[afdx.PathID{VL: pid.VL + "A", PathIdx: pid.PathIdx}]
		c := combined[pid]
		if c.Frames != a.Frames {
			t.Errorf("path %v: combined %d frames, copy A %d", pid, c.Frames, a.Frames)
		}
		if c.MaxDelayUs != a.MaxDelayUs || c.MinDelayUs != a.MinDelayUs {
			t.Errorf("path %v: combined stats %+v differ from copy A %+v", pid, c, a)
		}
	}
}

func TestCombineRedundantNeverWorseThanEitherCopy(t *testing.T) {
	pg, base, cfg := mirroredFigure2(t, 13)
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := CombineRedundant(res, base)
	if err != nil {
		t.Fatal(err)
	}
	improvedSomewhere := false
	for _, pid := range base.AllPaths() {
		a := res.Paths[afdx.PathID{VL: pid.VL + "A", PathIdx: pid.PathIdx}]
		b := res.Paths[afdx.PathID{VL: pid.VL + "B", PathIdx: pid.PathIdx}]
		c := combined[pid]
		if c.MaxDelayUs > a.MaxDelayUs+1e-9 && c.MaxDelayUs > b.MaxDelayUs+1e-9 {
			t.Errorf("path %v: combined max %g above both copies (%g, %g)",
				pid, c.MaxDelayUs, a.MaxDelayUs, b.MaxDelayUs)
		}
		if c.MaxDelayUs < a.MaxDelayUs-1e-9 || c.MaxDelayUs < b.MaxDelayUs-1e-9 {
			improvedSomewhere = true
		}
		if c.Frames == 0 {
			t.Errorf("path %v: no combined frames", pid)
		}
	}
	_ = improvedSomewhere // skew may or may not create an improvement; presence is informative only
}

func TestCombineRedundantRequiresRecording(t *testing.T) {
	pg, base, cfg := mirroredFigure2(t, 0)
	cfg.RecordFrames = false
	res, err := Run(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CombineRedundant(res, base); err == nil {
		t.Fatal("expected error without frame recording")
	}
}
