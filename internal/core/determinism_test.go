package core

import (
	"fmt"
	"reflect"
	"testing"

	"afdx/internal/afdx"
)

// syntheticComparison builds a Comparison whose per-path benefit values
// span several orders of magnitude, so that the floating-point mean
// accumulations in Summary/ByBAG/BySmax are sensitive to summation
// order: summing them in two different orders yields different
// roundings. Repeated aggregate calls are bit-identical only if the
// iteration order over PerPath is pinned (the DET001 contract).
func syntheticComparison() *Comparison {
	net := &afdx.Network{Name: "det-synth"}
	c := &Comparison{Net: net, PerPath: map[afdx.PathID]PathComparison{}}
	bags := []float64{1, 2, 4, 8}
	smaxes := []int{100, 500, 1000, 1500}
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("v%02d", i)
		vl := &afdx.VirtualLink{
			ID:        id,
			Source:    "e1",
			BAGMs:     bags[i%len(bags)],
			SMaxBytes: smaxes[i%len(smaxes)],
			SMinBytes: 64,
			Paths:     [][]string{{"e1", "s1", "e2"}},
		}
		net.VLs = append(net.VLs, vl)
		// Mixed magnitudes: 1e-7 .. 1e+2, alternating signs, so the
		// partial sums round differently under different orders.
		benefit := float64(i%9-4) * pow10(i%7-5)
		nc := 100.0 + float64(i)
		tr := nc * (1 - benefit/100)
		best := tr
		if nc < tr {
			best = nc
		}
		c.PerPath[afdx.PathID{VL: id, PathIdx: 0}] = PathComparison{
			NCUs:           nc,
			TrajectoryUs:   tr,
			BestUs:         best,
			BenefitPct:     benefit,
			BestBenefitPct: (nc - best) / nc * 100,
			MinUs:          40,
			JitterUs:       best - 40,
		}
	}
	return c
}

func pow10(e int) float64 {
	v := 1.0
	for ; e > 0; e-- {
		v *= 10
	}
	for ; e < 0; e++ {
		v /= 10
	}
	return v
}

// TestAggregatesBitIdenticalAcrossCalls guards the fix for the
// map-iteration rounding bug in the Table I / Figure 5 / Figure 6
// aggregates: every call must reproduce the exact same float64 bits,
// not merely values within a tolerance.
func TestAggregatesBitIdenticalAcrossCalls(t *testing.T) {
	c := syntheticComparison()
	s0 := c.Summary()
	bag0 := c.ByBAG()
	smax0 := c.BySmax()
	for i := 1; i < 50; i++ {
		if s := c.Summary(); s != s0 {
			t.Fatalf("Summary() call %d differs:\n got %+v\nwant %+v", i, s, s0)
		}
		if b := c.ByBAG(); !reflect.DeepEqual(b, bag0) {
			t.Fatalf("ByBAG() call %d differs:\n got %+v\nwant %+v", i, b, bag0)
		}
		if s := c.BySmax(); !reflect.DeepEqual(s, smax0) {
			t.Fatalf("BySmax() call %d differs:\n got %+v\nwant %+v", i, s, smax0)
		}
	}
}

// TestSortedPathIDsCanonicalOrder pins the iteration order the
// aggregates rely on: ascending (VL, PathIdx).
func TestSortedPathIDsCanonicalOrder(t *testing.T) {
	c := syntheticComparison()
	ids := c.sortedPathIDs()
	if len(ids) != len(c.PerPath) {
		t.Fatalf("sortedPathIDs returned %d ids, want %d", len(ids), len(c.PerPath))
	}
	for i := 1; i < len(ids); i++ {
		a, b := ids[i-1], ids[i]
		if a.VL > b.VL || (a.VL == b.VL && a.PathIdx >= b.PathIdx) {
			t.Fatalf("ids out of order at %d: %v before %v", i, a, b)
		}
	}
}
