// Package core implements the paper's primary contribution: the
// side-by-side comparison of the Network Calculus and Trajectory
// end-to-end delay bounds over every Virtual Link path of an AFDX
// configuration, and the combined analysis that keeps, per path, the
// tighter of the two bounds (never worse than either method alone).
//
// The aggregate views mirror the paper's evaluation: the Table I
// summary statistics, the per-BAG mean benefit of Figure 5, and the
// per-s_max "where does Network Calculus win" ratio of Figure 6.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"afdx/internal/afdx"
	"afdx/internal/netcalc"
	"afdx/internal/trajectory"
)

// PathComparison carries the three bounds of one VL path and the derived
// benefit figures, in the units used by the paper (microseconds and
// percent of the Network Calculus bound).
type PathComparison struct {
	NCUs         float64
	TrajectoryUs float64
	BestUs       float64
	// BenefitPct is the relative improvement of the Trajectory bound
	// over the Network Calculus bound: (NC - Trajectory) / NC * 100.
	// Negative when the Trajectory bound is more pessimistic.
	BenefitPct float64
	// BestBenefitPct is the improvement of the combined bound over NC:
	// always >= 0 by construction.
	BestBenefitPct float64
	// MinUs is the physical floor of the path's delay (idle network).
	MinUs float64
	// JitterUs is the certification jitter figure: the combined bound
	// minus the physical floor.
	JitterUs float64
}

// Comparison is the full per-path comparison of one configuration.
type Comparison struct {
	Net     *afdx.Network
	PerPath map[afdx.PathID]PathComparison
}

// Compare runs both analyses with their paper-default options.
func Compare(pg *afdx.PortGraph) (*Comparison, error) {
	return CompareWith(pg, netcalc.DefaultOptions(), trajectory.DefaultOptions())
}

// CompareCtx is Compare with observability threaded through the
// context (see the engines' AnalyzeCtx).
func CompareCtx(ctx context.Context, pg *afdx.PortGraph) (*Comparison, error) {
	return CompareWithCtx(ctx, pg, netcalc.DefaultOptions(), trajectory.DefaultOptions())
}

// CompareWith runs both analyses with explicit options and assembles the
// per-path comparison.
func CompareWith(pg *afdx.PortGraph, ncOpts netcalc.Options, trOpts trajectory.Options) (*Comparison, error) {
	return CompareWithCtx(context.Background(), pg, ncOpts, trOpts)
}

// CompareWithCtx is CompareWith with observability threaded through
// the context: each engine opens its own span and registers its own
// counters when ctx carries a tracer or registry.
func CompareWithCtx(ctx context.Context, pg *afdx.PortGraph, ncOpts netcalc.Options, trOpts trajectory.Options) (*Comparison, error) {
	nc, err := netcalc.AnalyzeCtx(ctx, pg, ncOpts)
	if err != nil {
		return nil, fmt.Errorf("core: network calculus analysis: %w", err)
	}
	tr, err := trajectory.AnalyzeCtx(ctx, pg, trOpts)
	if err != nil {
		return nil, fmt.Errorf("core: trajectory analysis: %w", err)
	}
	return Combine(pg, nc, tr)
}

// Combine assembles the per-path comparison from already-computed
// engine results (CompareWithCtx = two engine runs + Combine). The
// incremental what-if layer calls it directly with cache-served
// results, so the combined figures of an incremental step are
// assembled by exactly the code path a cold comparison uses.
func Combine(pg *afdx.PortGraph, nc *netcalc.Result, tr *trajectory.Result) (*Comparison, error) {
	c := &Comparison{Net: pg.Net, PerPath: map[afdx.PathID]PathComparison{}}
	for _, pid := range pg.Net.AllPaths() {
		dn, ok1 := nc.PathDelays[pid]
		dt, ok2 := tr.PathDelays[pid]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("core: missing bound for path %v (nc=%v traj=%v)", pid, ok1, ok2)
		}
		floor, err := pg.MinPathDelayUs(pid)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		best := math.Min(dn, dt)
		c.PerPath[pid] = PathComparison{
			NCUs:           dn,
			TrajectoryUs:   dt,
			BestUs:         best,
			BenefitPct:     (dn - dt) / dn * 100,
			BestBenefitPct: (dn - best) / dn * 100,
			MinUs:          floor,
			JitterUs:       best - floor,
		}
	}
	return c, nil
}

// sortedPathIDs returns PerPath's keys in (VL, PathIdx) order. Every
// aggregate below iterates this slice rather than the map: the mean
// accumulations are floating-point sums, whose rounding — and hence the
// published Table I / Figure 5 / Figure 6 numbers — would otherwise
// depend on Go's randomized map iteration order (DET001).
func (c *Comparison) sortedPathIDs() []afdx.PathID {
	ids := make([]afdx.PathID, 0, len(c.PerPath))
	for pid := range c.PerPath {
		ids = append(ids, pid)
	}
	afdx.SortPathIDs(ids)
	return ids
}

// Summary reproduces the structure of the paper's Table I: mean, maximum
// and minimum benefit of the Trajectory approach over Network Calculus,
// and of the combined ("Best") approach over Network Calculus, plus the
// fraction of paths where the Trajectory bound is the tighter one.
type Summary struct {
	NumPaths          int
	MeanBenefitPct    float64
	MaxBenefitPct     float64
	MinBenefitPct     float64
	MeanBestPct       float64
	MaxBestPct        float64
	MinBestPct        float64
	TrajectoryWinFrac float64 // fraction of paths with Trajectory <= NC
}

// Summary aggregates the per-path comparison into the Table I statistics.
func (c *Comparison) Summary() Summary {
	s := Summary{
		MaxBenefitPct: math.Inf(-1),
		MinBenefitPct: math.Inf(1),
		MaxBestPct:    math.Inf(-1),
		MinBestPct:    math.Inf(1),
	}
	wins := 0
	for _, pid := range c.sortedPathIDs() {
		pc := c.PerPath[pid]
		s.NumPaths++
		s.MeanBenefitPct += pc.BenefitPct
		s.MeanBestPct += pc.BestBenefitPct
		s.MaxBenefitPct = math.Max(s.MaxBenefitPct, pc.BenefitPct)
		s.MinBenefitPct = math.Min(s.MinBenefitPct, pc.BenefitPct)
		s.MaxBestPct = math.Max(s.MaxBestPct, pc.BestBenefitPct)
		s.MinBestPct = math.Min(s.MinBestPct, pc.BestBenefitPct)
		if pc.TrajectoryUs <= pc.NCUs {
			wins++
		}
	}
	if s.NumPaths > 0 {
		s.MeanBenefitPct /= float64(s.NumPaths)
		s.MeanBestPct /= float64(s.NumPaths)
		s.TrajectoryWinFrac = float64(wins) / float64(s.NumPaths)
	}
	return s
}

// BAGBenefit is one point of the paper's Figure 5: the mean Trajectory
// benefit over the paths whose VL has the given BAG.
type BAGBenefit struct {
	BAGMs          float64
	NumPaths       int
	MeanBenefitPct float64
}

// ByBAG groups paths by their VL's BAG and averages the Trajectory
// benefit within each group, sorted by increasing BAG (Figure 5).
func (c *Comparison) ByBAG() []BAGBenefit {
	type acc struct {
		n   int
		sum float64
	}
	m := map[float64]*acc{}
	for _, pid := range c.sortedPathIDs() {
		pc := c.PerPath[pid]
		vl := c.Net.VL(pid.VL)
		a := m[vl.BAGMs]
		if a == nil {
			a = &acc{}
			m[vl.BAGMs] = a
		}
		a.n++
		a.sum += pc.BenefitPct
	}
	out := make([]BAGBenefit, 0, len(m))
	for bag, a := range m {
		out = append(out, BAGBenefit{BAGMs: bag, NumPaths: a.n, MeanBenefitPct: a.sum / float64(a.n)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].BAGMs < out[j].BAGMs })
	return out
}

// SmaxShare is one point of the paper's Figure 6: among the paths whose
// VL has the given s_max, the percentage for which the Network Calculus
// bound is strictly tighter than the Trajectory bound.
type SmaxShare struct {
	SMaxBytes   int
	NumPaths    int
	NCWinsPct   float64
	MeanBenefit float64
}

// BySmax groups paths by their VL's s_max, sorted by increasing s_max
// (Figure 6).
func (c *Comparison) BySmax() []SmaxShare {
	type acc struct {
		n, ncWins int
		sum       float64
	}
	m := map[int]*acc{}
	for _, pid := range c.sortedPathIDs() {
		pc := c.PerPath[pid]
		vl := c.Net.VL(pid.VL)
		a := m[vl.SMaxBytes]
		if a == nil {
			a = &acc{}
			m[vl.SMaxBytes] = a
		}
		a.n++
		a.sum += pc.BenefitPct
		if pc.TrajectoryUs > pc.NCUs {
			a.ncWins++
		}
	}
	out := make([]SmaxShare, 0, len(m))
	for s, a := range m {
		out = append(out, SmaxShare{
			SMaxBytes:   s,
			NumPaths:    a.n,
			NCWinsPct:   float64(a.ncWins) / float64(a.n) * 100,
			MeanBenefit: a.sum / float64(a.n),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SMaxBytes < out[j].SMaxBytes })
	return out
}
