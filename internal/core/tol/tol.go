// Package tol centralises the floating-point comparison tolerance used
// by the delay analyses and the conformance oracle.
//
// The engines compute with float64 throughout, so two mathematically
// equal quantities reached through different summation orders differ in
// the last bits. Historically each comparison site guarded against that
// with its own absolute 1e-9 literal — fine for the paper's
// microsecond-scale sample network, but wrong at scale: a 128 ms BAG
// configuration pushes busy periods and candidate offsets past 1e6 us,
// where an absolute 1e-9 is below one ulp and the guard silently
// vanishes. This package is the single named constant, applied
// *relatively* wherever the compared values scale with time.
//
// The tolerance never affects the determinism contract: identity
// invariants (parallel parity, repeatability, incremental-vs-cold) use
// exact bitwise equality, not tol.
package tol

import "math"

// EpsRel is the relative comparison tolerance. 1e-9 relative sits ~7
// decimal digits above the float64 epsilon (~2.2e-16), wide enough to
// absorb any realistic accumulation wobble across the engines' summation
// orders and narrow enough that no genuine analytic difference (bounds
// differ by fractions of a microsecond at least) is ever masked.
const EpsRel = 1e-9

// At returns the absolute tolerance at the given scale:
// EpsRel * max(1, |scale|). Below magnitude one the tolerance floors at
// EpsRel itself, preserving the historical absolute guard for
// microsecond-scale values.
func At(scale float64) float64 {
	return EpsRel * math.Max(1, math.Abs(scale))
}

// Leq reports a <= b up to the tolerance at b's scale.
func Leq(a, b float64) bool {
	return a <= b+At(b)
}

// Gt reports a > b beyond the tolerance at b's scale (the strict
// complement of Leq).
func Gt(a, b float64) bool {
	return !Leq(a, b)
}
