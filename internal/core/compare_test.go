package core

import (
	"math"
	"testing"

	"afdx/internal/afdx"
	"afdx/internal/netcalc"
	"afdx/internal/trajectory"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

func compareFigure2(t *testing.T) *Comparison {
	t.Helper()
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compare(pg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompareFigure2PerPath(t *testing.T) {
	c := compareFigure2(t)
	pc, ok := c.PerPath[afdx.PathID{VL: "v1", PathIdx: 0}]
	if !ok {
		t.Fatal("missing v1 comparison")
	}
	if !almostEq(pc.TrajectoryUs, 248) {
		t.Errorf("trajectory bound = %g, want 248", pc.TrajectoryUs)
	}
	if pc.NCUs <= pc.TrajectoryUs {
		t.Errorf("NC bound %g should exceed trajectory %g on figure 2", pc.NCUs, pc.TrajectoryUs)
	}
	if !almostEq(pc.BestUs, pc.TrajectoryUs) {
		t.Errorf("best = %g, want the trajectory bound %g", pc.BestUs, pc.TrajectoryUs)
	}
	if pc.BenefitPct <= 0 {
		t.Errorf("benefit should be positive, got %g%%", pc.BenefitPct)
	}
	if !almostEq(pc.BenefitPct, pc.BestBenefitPct) {
		t.Errorf("best benefit %g should equal trajectory benefit %g here",
			pc.BestBenefitPct, pc.BenefitPct)
	}
}

func TestBestNeverWorseThanEither(t *testing.T) {
	// Mixed frame sizes so that each method wins somewhere.
	n := afdx.Figure2Config()
	n.VLs[0].SMaxBytes = 100
	n.VLs[0].SMinBytes = 100
	n.VLs[2].SMaxBytes = 1500
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compare(pg)
	if err != nil {
		t.Fatal(err)
	}
	sawNCWin, sawTrajWin := false, false
	for pid, pc := range c.PerPath {
		if pc.BestUs > pc.NCUs+1e-9 || pc.BestUs > pc.TrajectoryUs+1e-9 {
			t.Errorf("path %v: best %g exceeds a component bound (nc %g, traj %g)",
				pid, pc.BestUs, pc.NCUs, pc.TrajectoryUs)
		}
		if pc.BestBenefitPct < -1e-9 {
			t.Errorf("path %v: best benefit %g%% must be >= 0", pid, pc.BestBenefitPct)
		}
		if pc.TrajectoryUs > pc.NCUs {
			sawNCWin = true
		}
		if pc.TrajectoryUs < pc.NCUs {
			sawTrajWin = true
		}
	}
	if !sawNCWin || !sawTrajWin {
		t.Errorf("mixed configuration should have wins on both sides (nc=%v traj=%v)",
			sawNCWin, sawTrajWin)
	}
}

func TestSummaryFigure2(t *testing.T) {
	s := compareFigure2(t).Summary()
	if s.NumPaths != 5 {
		t.Fatalf("paths = %d, want 5", s.NumPaths)
	}
	if s.TrajectoryWinFrac != 1 {
		t.Errorf("trajectory should win every figure-2 path, got %g", s.TrajectoryWinFrac)
	}
	if s.MeanBenefitPct <= 0 || s.MaxBenefitPct < s.MeanBenefitPct || s.MinBenefitPct > s.MeanBenefitPct {
		t.Errorf("inconsistent summary %+v", s)
	}
	if s.MinBestPct < 0 {
		t.Errorf("combined approach can never lose: min best %g%%", s.MinBestPct)
	}
}

func TestByBAGGrouping(t *testing.T) {
	n := afdx.Figure2Config()
	n.VLs[0].BAGMs = 2
	n.VLs[1].BAGMs = 2
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compare(pg)
	if err != nil {
		t.Fatal(err)
	}
	rows := c.ByBAG()
	if len(rows) != 2 {
		t.Fatalf("expected BAG groups {2,4}, got %v", rows)
	}
	if rows[0].BAGMs != 2 || rows[0].NumPaths != 2 {
		t.Errorf("first group should be BAG 2 ms with 2 paths: %+v", rows[0])
	}
	if rows[1].BAGMs != 4 || rows[1].NumPaths != 3 {
		t.Errorf("second group should be BAG 4 ms with 3 paths: %+v", rows[1])
	}
}

func TestBySmaxGrouping(t *testing.T) {
	n := afdx.Figure2Config()
	n.VLs[0].SMaxBytes = 100
	n.VLs[0].SMinBytes = 100
	pg, err := afdx.BuildPortGraph(n, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compare(pg)
	if err != nil {
		t.Fatal(err)
	}
	rows := c.BySmax()
	if len(rows) != 2 {
		t.Fatalf("expected s_max groups {100,500}, got %v", rows)
	}
	if rows[0].SMaxBytes != 100 || rows[0].NumPaths != 1 {
		t.Errorf("first group should be 100B with 1 path: %+v", rows[0])
	}
	// The 100B VL is the one where NC wins (paper Fig. 6 trend).
	if rows[0].NCWinsPct != 100 {
		t.Errorf("NC should win on the 100B path: %+v", rows[0])
	}
	if rows[1].NCWinsPct != 0 {
		t.Errorf("NC should lose on the 500B paths: %+v", rows[1])
	}
}

func TestCompareWithCustomOptions(t *testing.T) {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	// Ungrouped NC vs grouped trajectory: trajectory should win by more.
	base, err := Compare(pg)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := CompareWith(pg, netcalc.Options{Grouping: false}, trajectory.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if loose.Summary().MeanBenefitPct <= base.Summary().MeanBenefitPct {
		t.Errorf("benefit vs ungrouped NC (%g%%) should exceed benefit vs grouped NC (%g%%)",
			loose.Summary().MeanBenefitPct, base.Summary().MeanBenefitPct)
	}
}

func TestCompareErrorPropagation(t *testing.T) {
	n := afdx.Figure2Config()
	for _, v := range n.VLs {
		v.BAGMs = 0.25
		v.SMaxBytes = 1518
	}
	pg, err := afdx.BuildPortGraph(n, afdx.Relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(pg); err == nil {
		t.Fatal("expected unstable configuration to fail")
	}
}

func TestJitterAndFloorFields(t *testing.T) {
	c := compareFigure2(t)
	pc := c.PerPath[afdx.PathID{VL: "v1", PathIdx: 0}]
	// Floor of v1: three ports of (16 + 40) us = 168 us (s_min = s_max).
	if !almostEq(pc.MinUs, 168) {
		t.Errorf("floor = %g, want 168", pc.MinUs)
	}
	if !almostEq(pc.JitterUs, pc.BestUs-168) {
		t.Errorf("jitter = %g, want best-floor = %g", pc.JitterUs, pc.BestUs-168)
	}
	if pc.JitterUs <= 0 {
		t.Error("jitter must be positive on a contended path")
	}
	// The single-flow path v5 has jitter 0: its bound equals the floor.
	pc5 := c.PerPath[afdx.PathID{VL: "v5", PathIdx: 0}]
	if !almostEq(pc5.MinUs, 112) || !almostEq(pc5.JitterUs, 0) {
		t.Errorf("v5 floor/jitter = %g/%g, want 112/0", pc5.MinUs, pc5.JitterUs)
	}
}

func TestCheckDeadlinesWithBAGDefault(t *testing.T) {
	c := compareFigure2(t)
	rep := c.CheckDeadlines(nil, true)
	// Every bound (<= 293 us) is far below the 4 ms BAG.
	if rep.Total != 5 || rep.BestCertified != 5 || rep.NCCertified != 5 || rep.TrajectoryCertified != 5 {
		t.Errorf("unexpected report: %+v", rep)
	}
	if len(rep.Violations()) != 0 {
		t.Errorf("no violations expected: %v", rep.Violations())
	}
	if rep.String() == "" {
		t.Error("report string empty")
	}
	// Verdicts are sorted by ascending margin.
	for i := 1; i < len(rep.Verdicts); i++ {
		if rep.Verdicts[i].MarginUs < rep.Verdicts[i-1].MarginUs {
			t.Error("verdicts not sorted by margin")
		}
	}
}

func TestCheckDeadlinesExplicit(t *testing.T) {
	c := compareFigure2(t)
	pid := afdx.PathID{VL: "v1", PathIdx: 0}
	// A deadline between the trajectory bound (248) and the NC bound
	// (293): only the trajectory/combined approach certifies the path —
	// the practical payoff the paper's comparison is about.
	rep := c.CheckDeadlines(map[afdx.PathID]float64{pid: 270}, false)
	if rep.Total != 1 {
		t.Fatalf("total = %d, want 1 (others skipped)", rep.Total)
	}
	v := rep.Verdicts[0]
	if v.NCOk || !v.TrajectoryOk || !v.BestOk {
		t.Errorf("verdict %+v: want NC fail, trajectory+best pass", v)
	}
	if !almostEq(v.MarginUs, 270-248) {
		t.Errorf("margin = %g, want 22", v.MarginUs)
	}
	// An impossible deadline is a violation.
	rep2 := c.CheckDeadlines(map[afdx.PathID]float64{pid: 100}, false)
	if len(rep2.Violations()) != 1 {
		t.Errorf("expected one violation, got %v", rep2.Violations())
	}
}
