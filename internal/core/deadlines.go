package core

import (
	"fmt"
	"sort"

	"afdx/internal/afdx"
)

// DeadlineVerdict is the certification outcome of one path against its
// deadline, per method: the practical consequence of tighter bounds is
// that more paths can be certified.
type DeadlineVerdict struct {
	Path       afdx.PathID
	DeadlineUs float64
	// Certified by each method (bound <= deadline).
	NCOk, TrajectoryOk, BestOk bool
	// MarginUs is deadline minus the combined bound (negative: violated).
	MarginUs float64
}

// DeadlineReport summarises a deadline check.
type DeadlineReport struct {
	Verdicts []DeadlineVerdict
	// Counts of certified paths per method.
	NCCertified, TrajectoryCertified, BestCertified, Total int
}

// CheckDeadlines verifies every path's combined bound against a
// deadline. Explicit deadlines (in microseconds) win; paths without one
// fall back to the VL's BAG when useBAGDefault is set (a frame must be
// delivered before the next one may be emitted — the common avionics
// freshness rule), and are skipped otherwise.
func (c *Comparison) CheckDeadlines(deadlinesUs map[afdx.PathID]float64, useBAGDefault bool) DeadlineReport {
	var rep DeadlineReport
	for pid, pc := range c.PerPath {
		d, ok := deadlinesUs[pid]
		if !ok {
			if !useBAGDefault {
				continue
			}
			d = c.Net.VL(pid.VL).BAGUs()
		}
		v := DeadlineVerdict{
			Path:         pid,
			DeadlineUs:   d,
			NCOk:         pc.NCUs <= d,
			TrajectoryOk: pc.TrajectoryUs <= d,
			BestOk:       pc.BestUs <= d,
			MarginUs:     d - pc.BestUs,
		}
		rep.Verdicts = append(rep.Verdicts, v)
		rep.Total++
		if v.NCOk {
			rep.NCCertified++
		}
		if v.TrajectoryOk {
			rep.TrajectoryCertified++
		}
		if v.BestOk {
			rep.BestCertified++
		}
	}
	sort.Slice(rep.Verdicts, func(i, j int) bool {
		return rep.Verdicts[i].MarginUs < rep.Verdicts[j].MarginUs
	})
	return rep
}

// Violations lists the paths whose combined bound misses the deadline.
func (r DeadlineReport) Violations() []DeadlineVerdict {
	var out []DeadlineVerdict
	for _, v := range r.Verdicts {
		if !v.BestOk {
			out = append(out, v)
		}
	}
	return out
}

func (r DeadlineReport) String() string {
	return fmt.Sprintf("certified %d/%d paths (NC alone: %d, trajectory alone: %d)",
		r.BestCertified, r.Total, r.NCCertified, r.TrajectoryCertified)
}
