package afdx

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serialises the network configuration as indented JSON.
func (n *Network) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(n); err != nil {
		return fmt.Errorf("afdx: encoding network %q: %w", n.Name, err)
	}
	return nil
}

// SaveJSON writes the configuration to a file.
func (n *Network) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("afdx: %w", err)
	}
	defer f.Close()
	if err := n.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// DecodeJSON parses a network configuration without validating it.
// Callers that want the usual first-error validation use ReadJSON; the
// lint engine decodes first and then reports every violation itself.
func DecodeJSON(r io.Reader) (*Network, error) {
	var n Network
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("afdx: decoding network: %w", err)
	}
	return &n, nil
}

// ReadJSON parses a network configuration and validates it with the
// given mode.
func ReadJSON(r io.Reader, mode ValidationMode) (*Network, error) {
	n, err := DecodeJSON(r)
	if err != nil {
		return nil, err
	}
	if err := n.Validate(mode); err != nil {
		return nil, err
	}
	return n, nil
}

// LoadJSON reads a configuration from a file.
func LoadJSON(path string, mode ValidationMode) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("afdx: %w", err)
	}
	defer f.Close()
	return ReadJSON(f, mode)
}
