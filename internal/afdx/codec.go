package afdx

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serialises the network configuration as indented JSON.
func (n *Network) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(n); err != nil {
		return fmt.Errorf("afdx: encoding network %q: %w", n.Name, err)
	}
	return nil
}

// SaveJSON writes the configuration to a file.
func (n *Network) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("afdx: %w", err)
	}
	defer f.Close()
	if err := n.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// DecodeJSON parses a network configuration without validating it.
// Callers that want the usual first-error validation use ReadJSON; the
// lint engine decodes first and then reports every violation itself.
func DecodeJSON(r io.Reader) (*Network, error) {
	var n Network
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("afdx: decoding network: %w", err)
	}
	return &n, nil
}

// Clone deep-copies the configuration structurally (field values are
// copied bit for bit — no codec round-trip, which matters to the
// shrinker and what-if sessions cloning candidates in a tight loop).
// What-if sessions and the conformance shrinker mutate clones, never
// the caller's network.
func (n *Network) Clone() *Network {
	c := *n
	c.EndSystems = cloneStrings(n.EndSystems)
	c.Switches = cloneStrings(n.Switches)
	if n.LinkRates != nil {
		c.LinkRates = append([]LinkRate(nil), n.LinkRates...)
	}
	if n.VLs != nil {
		c.VLs = make([]*VirtualLink, len(n.VLs))
		for i, v := range n.VLs {
			vc := *v
			if v.Paths != nil {
				vc.Paths = make([][]string, len(v.Paths))
				for j, p := range v.Paths {
					vc.Paths[j] = cloneStrings(p)
				}
			}
			c.VLs[i] = &vc
		}
	}
	return &c
}

func cloneStrings(s []string) []string {
	if s == nil {
		return nil
	}
	return append([]string(nil), s...)
}

// ReadJSON parses a network configuration and validates it with the
// given mode.
func ReadJSON(r io.Reader, mode ValidationMode) (*Network, error) {
	n, err := DecodeJSON(r)
	if err != nil {
		return nil, err
	}
	if err := n.Validate(mode); err != nil {
		return nil, err
	}
	return n, nil
}

// LoadJSON reads a configuration from a file.
func LoadJSON(path string, mode ValidationMode) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("afdx: %w", err)
	}
	defer f.Close()
	return ReadJSON(f, mode)
}
