package afdx

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure2Config().WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"digraph", `"S1" [shape=box`, `"e1" [shape=ellipse]`,
		`"S3" -> "e6" [label="4 VL"]`, `"e1" -> "S1" [label="1 VL"]`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, out)
		}
	}
}

func TestWriteDOTInvalidNetwork(t *testing.T) {
	n := Figure2Config()
	n.VLs[0].BAGMs = -1
	if err := n.WriteDOT(&bytes.Buffer{}); err == nil {
		t.Fatal("expected error for invalid network")
	}
}

func TestESJitterReport(t *testing.T) {
	n := Figure2Config()
	rep := n.ESJitterReport()
	if len(rep) != 5 { // five transmitting end systems
		t.Fatalf("got %d report rows, want 5", len(rep))
	}
	// Every ES hosts one 500B VL: jitter = 40 + (67+500)*8/100 = 85.36 us.
	for _, r := range rep {
		if r.NumVLs != 1 {
			t.Errorf("%s hosts %d VLs, want 1", r.EndSystem, r.NumVLs)
		}
		want := 40 + float64(67+500)*8/100
		if r.JitterUs != want {
			t.Errorf("%s jitter = %g, want %g", r.EndSystem, r.JitterUs, want)
		}
		if !r.Compliant {
			t.Errorf("%s should be compliant", r.EndSystem)
		}
	}
	if err := n.ValidateESJitter(); err != nil {
		t.Errorf("figure 2 should pass the jitter check: %v", err)
	}
}

func TestESJitterViolation(t *testing.T) {
	// Pile 40 maximum-size VLs on one end system: jitter = 40 +
	// 40*(67+1518)*8/100 = 40 + 5072 us >> 500 us.
	n := Figure2Config()
	for i := 0; i < 40; i++ {
		n.VLs = append(n.VLs, &VirtualLink{
			ID: "x" + string(rune('A'+i)), Source: "e1", BAGMs: 128,
			SMaxBytes: 1518, SMinBytes: 64,
			Paths: [][]string{{"e1", "S1", "S3", "e6"}},
		})
	}
	if err := n.ValidateESJitter(); err == nil {
		t.Fatal("expected jitter cap violation")
	}
	rep := n.ESJitterReport()
	if rep[0].EndSystem != "e1" || rep[0].Compliant {
		t.Errorf("e1 should top the report as non-compliant: %+v", rep[0])
	}
}
