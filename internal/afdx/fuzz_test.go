package afdx

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON checks that arbitrary input never panics the
// configuration loader, and that anything it accepts round-trips.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := Figure2Config().WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{}`)
	f.Add(`{"name":"x"}`)
	f.Add(`not json at all`)
	f.Add(`{"name":"x","endSystems":["a"],"switches":[],"vls":[{"id":"v","source":"a","bagMs":1e308,"sMaxBytes":1,"sMinBytes":1,"paths":[["a","a","a"]]}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		n, err := ReadJSON(strings.NewReader(data), Relaxed)
		if err != nil {
			return // rejected: fine
		}
		var buf bytes.Buffer
		if err := n.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted network failed to re-encode: %v", err)
		}
		if _, err := ReadJSON(&buf, Relaxed); err != nil {
			t.Fatalf("round trip of accepted network failed: %v", err)
		}
	})
}
