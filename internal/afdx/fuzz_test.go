// An external test package so the fuzzer can drive the full linter
// (internal/lint imports internal/afdx; an in-package test would cycle).
package afdx_test

import (
	"bytes"
	"strings"
	"testing"

	afdx "afdx/internal/afdx"
	"afdx/internal/diag"
	"afdx/internal/lint"
)

// FuzzReadJSON checks that arbitrary input never panics the
// configuration loader, that anything it accepts round-trips, and that
// every decodable configuration — validated or not — lints without
// panicking and yields a coherent report.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := afdx.Figure2Config().WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{}`)
	f.Add(`{"name":"x"}`)
	f.Add(`not json at all`)
	f.Add(`{"name":"x","endSystems":["a"],"switches":[],"vls":[{"id":"v","source":"a","bagMs":1e308,"sMaxBytes":1,"sMinBytes":1,"paths":[["a","a","a"]]}]}`)
	f.Add(`{"name":"x","endSystems":["a","b"],"switches":["S"],"vls":[null,{"id":"v","source":"a","bagMs":1,"sMaxBytes":100,"sMinBytes":64,"paths":[["a","S","b"]]}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		// The linter must survive anything that merely decodes, even
		// configurations validation would reject.
		if n, err := afdx.DecodeJSON(strings.NewReader(data)); err == nil {
			rep := lint.Run(n, lint.DefaultOptions())
			if rep == nil {
				t.Fatal("lint.Run returned a nil report")
			}
			if got := rep.Errors + rep.Warnings + rep.Infos; got != len(rep.Diagnostics) {
				t.Fatalf("severity counts (%d) disagree with %d diagnostics",
					got, len(rep.Diagnostics))
			}
			if ec := rep.ExitCode(); ec < 0 || ec > 2 {
				t.Fatalf("exit code %d outside the 0..2 contract", ec)
			}
			if rep.HasErrors() != (rep.Errors > 0) {
				t.Fatal("HasErrors disagrees with the error count")
			}
		}

		n, err := afdx.ReadJSON(strings.NewReader(data), afdx.Relaxed)
		if err != nil {
			return // rejected: fine
		}
		var buf bytes.Buffer
		if err := n.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted network failed to re-encode: %v", err)
		}
		if _, err := afdx.ReadJSON(&buf, afdx.Relaxed); err != nil {
			t.Fatalf("round trip of accepted network failed: %v", err)
		}
		// A validated configuration must lint without errors from the
		// structural analyzers that mirror Validate (contract codes may
		// still fire: Relaxed acceptance, Strict lint default).
		rep := lint.Run(n, lint.DefaultOptions())
		for _, d := range rep.Diagnostics {
			if d.Code == "AFDX003" || d.Code == "AFDX006" || d.Code == "AFDX011" || d.Code == "AFDX012" {
				if d.Severity == diag.Error {
					t.Fatalf("validated network still carries structural lint error: %s", d)
				}
			}
		}
	})
}
