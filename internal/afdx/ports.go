package afdx

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
)

// PortID identifies an output port by the directed link it transmits on:
// the port of node From that feeds node To.
type PortID struct {
	From string
	To   string
}

func (p PortID) String() string { return p.From + "->" + p.To }

// PortFlow records one VL crossing a port, together with the node the VL
// arrives from ("" when the port belongs to the VL's source end system).
// A multicast VL crosses a shared port once even if several of its paths
// use it (frames are replicated at branch points, downstream).
type PortFlow struct {
	VL   *VirtualLink
	Prev string
}

// Port is one FIFO output port with the flows that compete on it.
type Port struct {
	ID PortID
	// RateBitsPerUs is the transmission rate of the outgoing link.
	RateBitsPerUs float64
	// LatencyUs is the technological latency of the port.
	LatencyUs float64
	// Flows lists the VLs multiplexed on the port, sorted by VL ID.
	Flows []PortFlow
}

// IsSourcePort reports whether the port belongs to an end system.
func (p *Port) IsSourcePort() bool { return p.Flows[0].Prev == "" }

// FlowByVL returns the PortFlow for the given VL ID, or nil.
func (p *Port) FlowByVL(id string) *PortFlow {
	for i := range p.Flows {
		if p.Flows[i].VL.ID == id {
			return &p.Flows[i]
		}
	}
	return nil
}

// InputGroups partitions the port's flows by the input link they arrive
// from (the paper's grouping/serialization technique). Flows emitted by
// the local node (source end-system ports) each form their own group key
// "" and are returned together under that key: at a source port every VL
// is shaped independently by the end system, so serialization between
// them is not exploitable and callers treat the "" group as ungrouped.
func (p *Port) InputGroups() map[string][]PortFlow {
	g := map[string][]PortFlow{}
	for _, f := range p.Flows {
		g[f.Prev] = append(g[f.Prev], f)
	}
	return g
}

// InputGroup is one serialization group of a port: the flows arriving
// through the same input link, in the port's VL-ID order.
type InputGroup struct {
	// Prev is the upstream node of the shared input link ("" for the
	// flows emitted by the local end system, which are not serialized
	// against each other).
	Prev  string
	Flows []PortFlow
}

// InputGroupsSorted returns the port's input groups sorted by input
// node. The analyses iterate the groups while accumulating
// floating-point arrival curves, and Go randomises map iteration order,
// so consuming InputGroups directly makes the accumulated bounds
// differ in the last bits from run to run; this accessor is the ordered
// form every float-summing caller must use (the determinism contract of
// DESIGN.md, "Concurrency and determinism").
func (p *Port) InputGroupsSorted() []InputGroup {
	byPrev := p.InputGroups()
	keys := make([]string, 0, len(byPrev))
	for k := range byPrev {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]InputGroup, 0, len(keys))
	for _, k := range keys {
		out = append(out, InputGroup{Prev: k, Flows: byPrev[k]})
	}
	return out
}

// PortGraph is the derived analysable view of a Network: its output
// ports, the path of each (VL, destination) pair expressed as a port
// sequence, and a feed-forward (topological) order on ports.
type PortGraph struct {
	Net   *Network
	Ports map[PortID]*Port
	// Order is a topological order of the ports: if any VL crosses port
	// q immediately before port p, then q precedes p in Order.
	Order []PortID
	paths map[PathID][]PortID
	// vls indexes the network's VLs by ID. Network.VL is a linear scan
	// (the Network is a mutable configuration object); the engines sit
	// in per-path loops and need the O(1) lookup the frozen graph can
	// afford.
	vls map[string]*VirtualLink

	// ranks memoizes Ranks(): the grouping is derived data, queried by
	// both the parallel schedulers and the observability layer, and the
	// graph is immutable once built.
	ranksOnce sync.Once
	ranks     [][]PortID

	// vlOrd memoizes VLOrder/VLOrdinal: the dense, ID-sorted VL index
	// the flattened engine hot paths use in place of string-keyed maps.
	vlOrdOnce sync.Once
	vlOrder   []*VirtualLink
	vlOrd     map[string]int
}

// BuildPortGraph derives the port-level view of the network. It returns
// an error when the configuration is invalid or when the port dependency
// graph is cyclic (holistic analyses require feed-forward networks, as do
// the configurations studied in the paper).
func BuildPortGraph(n *Network, mode ValidationMode) (*PortGraph, error) {
	if err := n.Validate(mode); err != nil {
		return nil, err
	}
	// Size the hot maps up front: the number of (VL, port) incidences
	// bounds both the member table and the port count, and rebuilding
	// the graph is on the critical path of every what-if candidate.
	incidences, npaths := 0, 0
	for _, v := range n.VLs {
		npaths += len(v.Paths)
		for _, path := range v.Paths {
			if len(path) > 1 {
				incidences += len(path) - 1
			}
		}
	}
	pg := &PortGraph{
		Net:   n,
		Ports: make(map[PortID]*Port, incidences),
		paths: make(map[PathID][]PortID, npaths),
		vls:   make(map[string]*VirtualLink, len(n.VLs)),
	}
	for _, v := range n.VLs {
		pg.vls[v.ID] = v
	}
	type memberKey struct {
		port PortID
		vl   string
	}
	members := make(map[memberKey]string, incidences) // -> prev node
	for _, v := range n.VLs {
		for pi, path := range v.Paths {
			var seq []PortID
			for k := 0; k+1 < len(path); k++ {
				id := PortID{From: path[k], To: path[k+1]}
				seq = append(seq, id)
				prev := ""
				if k > 0 {
					prev = path[k-1]
				}
				mk := memberKey{port: id, vl: v.ID}
				if old, ok := members[mk]; ok {
					if old != prev {
						return nil, fmt.Errorf("afdx: VL %s enters port %s from both %q and %q",
							v.ID, id, old, prev)
					}
				} else {
					members[mk] = prev
					port := pg.Ports[id]
					if port == nil {
						lat := n.Params.SwitchLatencyUs
						if n.IsEndSystem(path[k]) {
							lat = n.Params.SourceLatencyUs
						}
						port = &Port{
							ID:            id,
							RateBitsPerUs: n.LinkRateBitsPerUs(path[k], path[k+1]),
							LatencyUs:     lat,
						}
						pg.Ports[id] = port
					}
					port.Flows = append(port.Flows, PortFlow{VL: v, Prev: prev})
				}
			}
			pg.paths[PathID{VL: v.ID, PathIdx: pi}] = seq
		}
	}
	for _, p := range pg.Ports {
		slices.SortFunc(p.Flows, func(a, b PortFlow) int { return strings.Compare(a.VL.ID, b.VL.ID) })
	}
	order, err := pg.topoOrder()
	if err != nil {
		return nil, err
	}
	pg.Order = order
	return pg, nil
}

// PathPorts returns the port sequence of one (VL, destination) path.
func (pg *PortGraph) PathPorts(id PathID) []PortID { return pg.paths[id] }

// VL returns the virtual link with the given ID, or nil. Unlike
// Network.VL this is a constant-time lookup against the index frozen
// at graph-build time.
func (pg *PortGraph) VL(id string) *VirtualLink { return pg.vls[id] }

// VLOrder returns the network's VLs sorted by ID (memoized). The slice
// index is the VL's dense ordinal: engines that replace string-keyed
// map lookups with array indexing in their hot loops key those arrays
// by this ordinal, and because the order is the ID sort every analysis
// already iterates in, sorting by ordinal is sorting by VL ID.
func (pg *PortGraph) VLOrder() []*VirtualLink {
	pg.buildVLOrd()
	return pg.vlOrder
}

// VLOrdinal returns the dense index of the VL in VLOrder, or -1 when
// the ID names no VL of the network.
func (pg *PortGraph) VLOrdinal(id string) int {
	pg.buildVLOrd()
	if i, ok := pg.vlOrd[id]; ok {
		return i
	}
	return -1
}

func (pg *PortGraph) buildVLOrd() {
	pg.vlOrdOnce.Do(func() {
		pg.vlOrder = append([]*VirtualLink(nil), pg.Net.VLs...)
		slices.SortFunc(pg.vlOrder, func(a, b *VirtualLink) int { return strings.Compare(a.ID, b.ID) })
		pg.vlOrd = make(map[string]int, len(pg.vlOrder))
		for i, v := range pg.vlOrder {
			pg.vlOrd[v.ID] = i
		}
	})
}

// topoOrder computes a deterministic topological order of the port
// dependency graph (port q feeds port p when some VL crosses q then p).
func (pg *PortGraph) topoOrder() ([]PortID, error) {
	succ := make(map[PortID][]PortID, len(pg.Ports))
	indeg := make(map[PortID]int, len(pg.Ports))
	for id := range pg.Ports {
		indeg[id] = 0
	}
	seen := make(map[[2]PortID]bool, len(pg.Ports))
	for _, seq := range pg.paths {
		for k := 0; k+1 < len(seq); k++ {
			e := [2]PortID{seq[k], seq[k+1]}
			if seen[e] {
				continue
			}
			seen[e] = true
			succ[seq[k]] = append(succ[seq[k]], seq[k+1])
			indeg[seq[k+1]]++
		}
	}
	// Kahn's algorithm with lexicographic tie-breaking for determinism.
	var ready []PortID
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sortPortIDs(ready)
	var order []PortID
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		next := succ[id]
		sortPortIDs(next)
		var newly []PortID
		for _, s := range next {
			indeg[s]--
			if indeg[s] == 0 {
				newly = append(newly, s)
			}
		}
		if len(newly) > 0 {
			// ready stays sorted throughout; merging the (sorted) newly
			// released ports preserves the lexicographic tie-breaking
			// without re-sorting the whole queue per step.
			sortPortIDs(newly)
			ready = mergePortIDs(ready, newly)
		}
	}
	if len(order) != len(pg.Ports) {
		return nil, fmt.Errorf("afdx: cyclic port dependencies (%d of %d ports ordered); the holistic analyses require a feed-forward configuration",
			len(order), len(pg.Ports))
	}
	return order, nil
}

// Ranks groups the ports into dependency ranks: rank 0 holds the ports
// no other port feeds, and every port's upstream feeders sit in
// strictly lower ranks (the rank is the longest feeder chain above the
// port). Ports within one rank are mutually independent, so a holistic
// analysis that has finished every rank below r may analyse all of
// rank r's ports concurrently; ranks are returned in dependency order
// and each rank is sorted canonically for deterministic scheduling.
func (pg *PortGraph) Ranks() [][]PortID {
	pg.ranksOnce.Do(func() { pg.ranks = pg.computeRanks() })
	return pg.ranks
}

func (pg *PortGraph) computeRanks() [][]PortID {
	pred := map[PortID][]PortID{}
	seen := map[[2]PortID]bool{}
	for _, seq := range pg.paths {
		for k := 0; k+1 < len(seq); k++ {
			e := [2]PortID{seq[k], seq[k+1]}
			if seen[e] {
				continue
			}
			seen[e] = true
			pred[seq[k+1]] = append(pred[seq[k+1]], seq[k])
		}
	}
	// Order is topological, so every feeder's rank is known when its
	// successor is visited.
	rank := make(map[PortID]int, len(pg.Ports))
	maxRank := 0
	for _, id := range pg.Order {
		r := 0
		for _, q := range pred[id] {
			if rank[q]+1 > r {
				r = rank[q] + 1
			}
		}
		rank[id] = r
		if r > maxRank {
			maxRank = r
		}
	}
	out := make([][]PortID, maxRank+1)
	for _, id := range pg.Order {
		out[rank[id]] = append(out[rank[id]], id)
	}
	for _, ids := range out {
		sortPortIDs(ids)
	}
	return out
}

func comparePortIDs(a, b PortID) int {
	if c := strings.Compare(a.From, b.From); c != 0 {
		return c
	}
	return strings.Compare(a.To, b.To)
}

func sortPortIDs(ids []PortID) { slices.SortFunc(ids, comparePortIDs) }

// SortPortIDs orders port identifiers by (From, To) — the canonical
// iteration order whenever port results gathered from a map must be
// consumed deterministically (DET001/DET003).
func SortPortIDs(ids []PortID) { sortPortIDs(ids) }

// mergePortIDs merges two sorted slices into one sorted slice.
func mergePortIDs(a, b []PortID) []PortID {
	out := make([]PortID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if comparePortIDs(a[i], b[j]) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return append(append(out, a[i:]...), b[j:]...)
}

// FlowsSharingPath returns the set of VLs whose routing shares at least
// one output port with the given path (including the path's own VL), with
// for each such VL the first shared port along the given path. This is
// the interference set of the Trajectory approach.
func (pg *PortGraph) FlowsSharingPath(id PathID) map[string]PortID {
	shared := map[string]PortID{}
	for _, pid := range pg.paths[id] {
		for _, f := range pg.Ports[pid].Flows {
			if _, ok := shared[f.VL.ID]; !ok {
				shared[f.VL.ID] = pid
			}
		}
	}
	return shared
}

// MinPathDelayUs returns the physical floor of a path's end-to-end
// delay: the sum, over its output ports, of the technological latency
// plus the transmission time of a minimum-size frame — the delay of a
// frame crossing an entirely idle network. Worst-case bounds minus this
// floor give the certification jitter figure.
func (pg *PortGraph) MinPathDelayUs(id PathID) (float64, error) {
	seq, ok := pg.paths[id]
	if !ok {
		return 0, fmt.Errorf("afdx: unknown path %v", id)
	}
	vl := pg.VL(id.VL)
	total := 0.0
	for _, pid := range seq {
		p := pg.Ports[pid]
		total += p.LatencyUs + vl.CMinUs(p.RateBitsPerUs)
	}
	return total, nil
}

// Links lists the distinct directed links (output ports) the VL's paths
// cross, in path order of first crossing.
func (v *VirtualLink) Links() []PortID {
	seen := map[PortID]bool{}
	var out []PortID
	for _, path := range v.Paths {
		for k := 0; k+1 < len(path); k++ {
			id := PortID{From: path[k], To: path[k+1]}
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// LinkLoads returns, for every directed link some VL path crosses, the
// aggregate long-term contract rate Σ s_max/BAG in bits/us, computed
// from the paths directly — no derived port graph needed, so it works
// on configurations the structural checks reject. It is the batch form
// of the bookkeeping configgen's admission gate maintains incrementally
// while placing VLs, and feeds the AFDX013 lint analyzer. VLs with a
// non-positive BAG or frame size are skipped — the contract
// diagnostics (AFDX004/AFDX005) own those defects.
func (n *Network) LinkLoads() map[PortID]float64 {
	loads := map[PortID]float64{}
	for _, vl := range n.VLs {
		if vl == nil || vl.BAGMs <= 0 || vl.SMaxBytes <= 0 {
			continue
		}
		rho := vl.RhoBitsPerUs()
		for _, p := range vl.Links() {
			loads[p] += rho
		}
	}
	return loads
}

// UtilizationReport lists, for every port, the aggregate long-term rate
// of its flows relative to the link rate. Ports above 1.0 are unstable
// and make every worst-case analysis diverge.
func (pg *PortGraph) UtilizationReport() map[PortID]float64 {
	u := map[PortID]float64{}
	for id, p := range pg.Ports {
		sum := 0.0
		for _, f := range p.Flows {
			sum += f.VL.RhoBitsPerUs()
		}
		u[id] = sum / p.RateBitsPerUs
	}
	return u
}
