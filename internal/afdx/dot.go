package afdx

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the network topology in Graphviz DOT format: switches
// as boxes, end systems as ellipses, one edge per used directed link
// labelled with the number of VLs multiplexed on it. Intended for
// documentation and configuration reviews (`dot -Tsvg`).
func (n *Network) WriteDOT(w io.Writer) error {
	pg, err := BuildPortGraph(n, Relaxed)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", n.Name); err != nil {
		return err
	}
	for _, s := range n.Switches {
		if _, err := fmt.Fprintf(w, "  %q [shape=box,style=filled,fillcolor=lightgrey];\n", s); err != nil {
			return err
		}
	}
	for _, e := range n.EndSystems {
		if _, err := fmt.Fprintf(w, "  %q [shape=ellipse];\n", e); err != nil {
			return err
		}
	}
	ids := make([]PortID, 0, len(pg.Ports))
	for id := range pg.Ports {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].String() < ids[j].String() })
	for _, id := range ids {
		port := pg.Ports[id]
		if _, err := fmt.Fprintf(w, "  %q -> %q [label=\"%d VL\"];\n",
			id.From, id.To, len(port.Flows)); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintln(w, "}")
	return err
}
