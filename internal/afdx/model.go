// Package afdx models an AFDX (ARINC 664 part 7) network: end systems,
// switches, full-duplex links, and statically-routed multicast Virtual
// Links (VLs) with their traffic contract (BAG, s_min, s_max).
//
// The model is purely structural; the delay analyses live in
// internal/netcalc (Network Calculus) and internal/trajectory (Trajectory
// approach), and the behavioural reference in internal/sim.
package afdx

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Physical constants of the AFDX standard and of the configurations
// studied in the paper.
const (
	// DefaultLinkRateMbps is the 100 Mb/s AFDX link rate.
	DefaultLinkRateMbps = 100
	// DefaultTechLatencyUs is the technological latency of a switch
	// output port (16 us in the companion papers of the studied group).
	DefaultTechLatencyUs = 16
	// MinFrameBytes and MaxFrameBytes bound Ethernet frame sizes.
	MinFrameBytes = 64
	MaxFrameBytes = 1518
	// MinBAGMs and MaxBAGMs bound the ARINC 664 Bandwidth Allocation
	// Gap; valid BAGs are the powers of two in between (in milliseconds).
	MinBAGMs = 1
	MaxBAGMs = 128
)

// Params carries the physical parameters shared by every analysis.
type Params struct {
	// LinkRateMbps is the transmission rate of every link, in Mb/s.
	LinkRateMbps float64 `json:"linkRateMbps"`
	// SwitchLatencyUs is the technological latency of every switch
	// output port, in microseconds.
	SwitchLatencyUs float64 `json:"switchLatencyUs"`
	// SourceLatencyUs is the technological latency of an end-system
	// output port, in microseconds.
	SourceLatencyUs float64 `json:"sourceLatencyUs"`
}

// DefaultParams returns the parameters used throughout the paper:
// 100 Mb/s links and a 16 us technological latency per output port.
func DefaultParams() Params {
	return Params{
		LinkRateMbps:    DefaultLinkRateMbps,
		SwitchLatencyUs: DefaultTechLatencyUs,
		SourceLatencyUs: DefaultTechLatencyUs,
	}
}

// RateBitsPerUs converts the link rate to bits per microsecond, the unit
// system used by all analyses (1 Mb/s == 1 bit/us).
func (p Params) RateBitsPerUs() float64 { return p.LinkRateMbps }

// VirtualLink is an ARINC 664 Virtual Link: a unidirectional, statically
// routed multicast flow from one source end system to one or more
// destination end systems, sporadic with minimum inter-frame gap BAG and
// frame sizes within [SMinBytes, SMaxBytes].
type VirtualLink struct {
	// ID is the unique VL identifier.
	ID string `json:"id"`
	// Source is the emitting end system (mono-transmitter rule).
	Source string `json:"source"`
	// BAGMs is the Bandwidth Allocation Gap in milliseconds: the minimum
	// delay between two consecutive frames of the VL at the source.
	BAGMs float64 `json:"bagMs"`
	// SMaxBytes and SMinBytes bound the frame size (MAC level).
	SMaxBytes int `json:"sMaxBytes"`
	SMinBytes int `json:"sMinBytes"`
	// Paths holds one node sequence per destination, from the source end
	// system through the crossed switches to the destination end system.
	// The union of the paths must form a tree rooted at the source.
	Paths [][]string `json:"paths"`
	// Priority is the static priority level of the VL in switch output
	// ports: 0 (default) is the highest; service is non-preemptive.
	// The paper's configurations are single-level (plain FIFO); ARINC
	// 664 switches offer a high/low level, analysed by the companion
	// papers and supported by the Network Calculus engine and the
	// simulator (the Trajectory engine is FIFO-only, like the paper's).
	Priority int `json:"priority,omitempty"`
}

// BAGUs returns the BAG in microseconds.
func (v *VirtualLink) BAGUs() float64 { return v.BAGMs * 1000 }

// SMaxBits returns the maximum frame size in bits.
func (v *VirtualLink) SMaxBits() float64 { return float64(v.SMaxBytes) * 8 }

// SMinBits returns the minimum frame size in bits.
func (v *VirtualLink) SMinBits() float64 { return float64(v.SMinBytes) * 8 }

// RhoBitsPerUs returns the long-term rate of the VL's leaky-bucket
// envelope: s_max / BAG, in bits per microsecond.
func (v *VirtualLink) RhoBitsPerUs() float64 { return v.SMaxBits() / v.BAGUs() }

// CMaxUs returns the transmission time of a maximum-size frame on a link
// of the given rate (bits/us), in microseconds.
func (v *VirtualLink) CMaxUs(rateBitsPerUs float64) float64 {
	return v.SMaxBits() / rateBitsPerUs
}

// CMinUs returns the transmission time of a minimum-size frame.
func (v *VirtualLink) CMinUs(rateBitsPerUs float64) float64 {
	return v.SMinBits() / rateBitsPerUs
}

// LinkRate overrides the default link rate for one directed link.
type LinkRate struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Mbps float64 `json:"mbps"`
}

// Network is a static AFDX configuration: the node sets, the shared
// physical parameters, and the Virtual Links with their routing.
// Links are implied by the VL paths (full duplex, one per ordered node
// pair actually used). LinkRates optionally assigns individual rates to
// specific links (real AFDX networks mix 10 and 100 Mb/s segments);
// unlisted links run at Params.LinkRateMbps.
type Network struct {
	Name       string         `json:"name"`
	Params     Params         `json:"params"`
	EndSystems []string       `json:"endSystems"`
	Switches   []string       `json:"switches"`
	LinkRates  []LinkRate     `json:"linkRates,omitempty"`
	VLs        []*VirtualLink `json:"vls"`
}

// LinkRateBitsPerUs returns the rate of the directed link from -> to in
// bits per microsecond, honouring per-link overrides.
func (n *Network) LinkRateBitsPerUs(from, to string) float64 {
	for _, lr := range n.LinkRates {
		if lr.From == from && lr.To == to {
			return lr.Mbps
		}
	}
	return n.Params.RateBitsPerUs()
}

// VL returns the virtual link with the given ID, or nil.
func (n *Network) VL(id string) *VirtualLink {
	for _, v := range n.VLs {
		if v.ID == id {
			return v
		}
	}
	return nil
}

// IsEndSystem reports whether id names an end system of the network.
func (n *Network) IsEndSystem(id string) bool {
	for _, e := range n.EndSystems {
		if e == id {
			return true
		}
	}
	return false
}

// IsSwitch reports whether id names a switch of the network.
func (n *Network) IsSwitch(id string) bool {
	for _, s := range n.Switches {
		if s == id {
			return true
		}
	}
	return false
}

// PathID identifies one end-to-end path of a VL (a VL has one path per
// destination end system).
type PathID struct {
	VL      string // VL identifier
	PathIdx int    // index into VirtualLink.Paths
}

func (p PathID) String() string { return fmt.Sprintf("%s/%d", p.VL, p.PathIdx) }

// SortPathIDs orders path identifiers by (VL, PathIdx) — the canonical
// iteration order whenever per-path results gathered from a map must be
// accumulated or emitted deterministically (DET001/DET003).
func SortPathIDs(ids []PathID) {
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].VL != ids[j].VL {
			return ids[i].VL < ids[j].VL
		}
		return ids[i].PathIdx < ids[j].PathIdx
	})
}

// AllPaths enumerates every (VL, path) pair of the network, in
// deterministic order.
func (n *Network) AllPaths() []PathID {
	var ps []PathID
	for _, v := range n.VLs {
		for i := range v.Paths {
			ps = append(ps, PathID{VL: v.ID, PathIdx: i})
		}
	}
	return ps
}

// ValidationMode selects how strictly Validate enforces the ARINC 664
// contract parameters.
type ValidationMode int

const (
	// Strict enforces power-of-two BAGs within [1,128] ms and Ethernet
	// frame bounds. Use for real configurations.
	Strict ValidationMode = iota
	// Relaxed only enforces positivity of BAG and frame sizes, allowing
	// the parametric sweeps of the paper's section III-B to explore
	// values outside the standard set.
	Relaxed
)

// Validation is implemented in diagnostics.go: Network.Validate composes
// the coded diagnostic collectors (StructuralDiagnostics) and returns the
// first Error-severity finding.

func isPowerOfTwo(f float64) bool {
	if f <= 0 || f != math.Trunc(f) {
		return false
	}
	k := int(f)
	return k&(k-1) == 0
}

// Stats summarises a configuration; used by reports and by the
// industrial-configuration generator tests.
type Stats struct {
	NumEndSystems int
	NumSwitches   int
	NumVLs        int
	NumPaths      int
	MaxPathLen    int // in crossed switches
	BAGHistogram  map[float64]int
	SMaxHistogram map[int]int
}

// ComputeStats summarises the network.
func (n *Network) ComputeStats() Stats {
	st := Stats{
		NumEndSystems: len(n.EndSystems),
		NumSwitches:   len(n.Switches),
		NumVLs:        len(n.VLs),
		BAGHistogram:  map[float64]int{},
		SMaxHistogram: map[int]int{},
	}
	for _, v := range n.VLs {
		st.NumPaths += len(v.Paths)
		st.BAGHistogram[v.BAGMs]++
		st.SMaxHistogram[v.SMaxBytes]++
		for _, p := range v.Paths {
			if sw := len(p) - 2; sw > st.MaxPathLen {
				st.MaxPathLen = sw
			}
		}
	}
	return st
}

func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "end systems: %d, switches: %d, VLs: %d, paths: %d, max hops: %d switches\n",
		st.NumEndSystems, st.NumSwitches, st.NumVLs, st.NumPaths, st.MaxPathLen)
	bags := make([]float64, 0, len(st.BAGHistogram))
	for bag := range st.BAGHistogram {
		bags = append(bags, bag)
	}
	sort.Float64s(bags)
	b.WriteString("BAG (ms):")
	for _, bag := range bags {
		fmt.Fprintf(&b, " %g:%d", bag, st.BAGHistogram[bag])
	}
	return b.String()
}
