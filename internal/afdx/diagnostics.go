package afdx

import (
	"fmt"

	"afdx/internal/diag"
)

// This file holds the structural validation of a Network, refactored to
// emit coded diagnostics (internal/diag) instead of bare errors. The
// collectors below are the single source of truth for every structural
// and contractual rule: Network.Validate composes them and returns the
// first Error-severity finding, and the lint analyzers (internal/lint)
// re-expose them one code per analyzer with full, non-failing coverage.

// StructuralDiagnostics runs every structural and contractual check of
// the configuration and returns all findings, in collector order
// (network-level first, then per-VL identity, contract, routing, tree).
// It never stops at the first violation.
func (n *Network) StructuralDiagnostics(mode ValidationMode) []diag.Diagnostic {
	var ds []diag.Diagnostic
	ds = append(ds, n.NetworkDiagnostics()...)
	ds = append(ds, n.VLIdentityDiagnostics()...)
	ds = append(ds, n.ContractDiagnostics(mode)...)
	ds = append(ds, n.RoutingDiagnostics()...)
	ds = append(ds, n.TreeDiagnostics()...)
	return ds
}

// NetworkDiagnostics checks the network-level structure (code AFDX011):
// presence of end systems, unique node declarations, positive rates,
// non-negative latencies, link-rate overrides naming known nodes, and
// per-VL basics that are not identity or contract (nil entries, negative
// priorities).
func (n *Network) NetworkDiagnostics() []diag.Diagnostic {
	var ds []diag.Diagnostic
	report := func(loc diag.Location, suggestion, format string, args ...any) {
		ds = append(ds, diag.New(diag.CodeNetwork, diag.Error, loc, suggestion, format, args...))
	}
	if len(n.EndSystems) == 0 {
		report(diag.Location{}, "declare the transmitting and receiving end systems",
			"network %q has no end systems", n.Name)
	}
	seen := map[string]string{}
	for _, e := range n.EndSystems {
		if k, dup := seen[e]; dup {
			report(diag.Location{Node: e}, "rename one of the two declarations",
				"node %q declared twice (%s and end system)", e, k)
			continue
		}
		seen[e] = "end system"
	}
	for _, s := range n.Switches {
		if k, dup := seen[s]; dup {
			report(diag.Location{Node: s}, "rename one of the two declarations",
				"node %q declared twice (%s and switch)", s, k)
			continue
		}
		seen[s] = "switch"
	}
	if n.Params.LinkRateMbps <= 0 {
		report(diag.Location{}, "set params.linkRateMbps to a positive rate (AFDX uses 100 Mb/s)",
			"non-positive link rate %g", n.Params.LinkRateMbps)
	}
	if n.Params.SwitchLatencyUs < 0 || n.Params.SourceLatencyUs < 0 {
		report(diag.Location{}, "technological latencies must be >= 0",
			"negative technological latency")
	}
	for _, lr := range n.LinkRates {
		link := diag.Location{Link: lr.From + "->" + lr.To}
		if lr.Mbps <= 0 {
			report(link, "set a positive per-link rate",
				"link %s->%s has non-positive rate %g Mb/s", lr.From, lr.To, lr.Mbps)
		}
		if !n.IsEndSystem(lr.From) && !n.IsSwitch(lr.From) {
			report(link, "declare the node or drop the override",
				"link rate for unknown node %q", lr.From)
		}
		if !n.IsEndSystem(lr.To) && !n.IsSwitch(lr.To) {
			report(link, "declare the node or drop the override",
				"link rate for unknown node %q", lr.To)
		}
	}
	for _, v := range n.VLs {
		if v == nil {
			report(diag.Location{}, "remove the null entry from the VL list",
				"nil virtual link in network %q", n.Name)
			continue
		}
		if v.Priority < 0 {
			report(diag.Location{VL: v.ID}, "priorities are 0 (highest) and positive integers",
				"VL %s has negative priority %d", v.ID, v.Priority)
		}
	}
	return ds
}

// VLIdentityDiagnostics checks VL identifiers (code AFDX003): non-empty
// and unique.
func (n *Network) VLIdentityDiagnostics() []diag.Diagnostic {
	var ds []diag.Diagnostic
	ids := map[string]bool{}
	for _, v := range n.VLs {
		if v == nil {
			continue // reported by NetworkDiagnostics
		}
		if v.ID == "" {
			ds = append(ds, diag.New(diag.CodeVLIdentity, diag.Error, diag.Location{},
				"give every VL a unique identifier", "virtual link with empty ID"))
			continue
		}
		if ids[v.ID] {
			ds = append(ds, diag.New(diag.CodeVLIdentity, diag.Error, diag.Location{VL: v.ID},
				"VL identifiers must be unique network-wide", "duplicate virtual link ID %q", v.ID))
			continue
		}
		ids[v.ID] = true
	}
	return ds
}

// ContractDiagnostics checks the ARINC 664 traffic contract of every VL:
// the BAG (code AFDX004) and the frame-size bounds (code AFDX005). In
// Strict mode out-of-standard values are errors; in Relaxed mode they
// are demoted to warnings (the parametric sweeps of the paper explore
// such values deliberately), while non-positive values stay errors.
func (n *Network) ContractDiagnostics(mode ValidationMode) []diag.Diagnostic {
	var ds []diag.Diagnostic
	outOfStandard := diag.Error
	if mode == Relaxed {
		outOfStandard = diag.Warning
	}
	for _, v := range n.VLs {
		if v == nil {
			continue
		}
		loc := diag.Location{VL: v.ID}
		if v.BAGMs <= 0 {
			ds = append(ds, diag.New(diag.CodeBAG, diag.Error, loc,
				"set bagMs to a power of two in [1,128]",
				"VL %s has non-positive BAG %g ms", v.ID, v.BAGMs))
		} else if v.BAGMs < MinBAGMs || v.BAGMs > MaxBAGMs || !isPowerOfTwo(v.BAGMs) {
			ds = append(ds, diag.New(diag.CodeBAG, outOfStandard, loc,
				"ARINC 664 BAGs are the powers of two in [1,128] ms",
				"VL %s BAG %g ms is not a power of two in [%d,%d] ms",
				v.ID, v.BAGMs, MinBAGMs, MaxBAGMs))
		}
		if v.SMaxBytes <= 0 || v.SMinBytes <= 0 {
			ds = append(ds, diag.New(diag.CodeFrameSize, diag.Error, loc,
				"frame sizes must be positive byte counts",
				"VL %s has non-positive frame size", v.ID))
			continue
		}
		if v.SMinBytes > v.SMaxBytes {
			ds = append(ds, diag.New(diag.CodeFrameSize, diag.Error, loc,
				"swap or correct the bounds: s_min must not exceed s_max",
				"VL %s has s_min %dB > s_max %dB", v.ID, v.SMinBytes, v.SMaxBytes))
		}
		if v.SMaxBytes > MaxFrameBytes {
			ds = append(ds, diag.New(diag.CodeFrameSize, outOfStandard, loc,
				"cap s_max at the Ethernet MTU",
				"VL %s s_max %dB exceeds Ethernet maximum %dB", v.ID, v.SMaxBytes, MaxFrameBytes))
		}
		if v.SMinBytes < MinFrameBytes {
			ds = append(ds, diag.New(diag.CodeFrameSize, outOfStandard, loc,
				"raise s_min to the Ethernet minimum frame size",
				"VL %s s_min %dB below Ethernet minimum %dB", v.ID, v.SMinBytes, MinFrameBytes))
		}
	}
	return ds
}

// RoutingDiagnostics checks VL routing (code AFDX002) and the
// one-switch-per-end-system attachment rule (code AFDX012): every VL
// has at least one path; each path starts at the source end system,
// crosses only switches, ends at a distinct end system, and visits no
// node twice.
func (n *Network) RoutingDiagnostics() []diag.Diagnostic {
	var ds []diag.Diagnostic
	route := func(loc diag.Location, suggestion, format string, args ...any) {
		ds = append(ds, diag.New(diag.CodeRouting, diag.Error, loc, suggestion, format, args...))
	}
	attach := map[string]string{}
	for _, v := range n.VLs {
		if v == nil {
			continue
		}
		loc := diag.Location{VL: v.ID}
		if !n.IsEndSystem(v.Source) {
			route(loc, "VL sources must be declared end systems (mono-transmitter rule)",
				"VL %s source %q is not an end system", v.ID, v.Source)
		}
		if len(v.Paths) == 0 {
			route(loc, "route the VL to at least one destination end system",
				"VL %s has no path", v.ID)
			continue
		}
		for pi, path := range v.Paths {
			if len(path) < 3 {
				route(loc, "an AFDX path is source ES, one or more switches, destination ES",
					"VL %s path %d too short (%v): need source ES, >=1 switch, dest ES", v.ID, pi, path)
				continue
			}
			if path[0] != v.Source {
				route(diag.Location{VL: v.ID, Node: path[0]}, "paths must start at the VL's source",
					"VL %s path %d starts at %q, want source %q", v.ID, pi, path[0], v.Source)
			}
			last := path[len(path)-1]
			if !n.IsEndSystem(last) {
				route(diag.Location{VL: v.ID, Node: last}, "destinations must be declared end systems",
					"VL %s path %d ends at %q which is not an end system", v.ID, pi, last)
			}
			if last == v.Source {
				route(loc, "a VL cannot be its own destination",
					"VL %s path %d loops back to its source", v.ID, pi)
			}
			for k := 1; k < len(path)-1; k++ {
				if !n.IsSwitch(path[k]) {
					route(diag.Location{VL: v.ID, Node: path[k]}, "interior path nodes must be switches",
						"VL %s path %d interior node %q is not a switch", v.ID, pi, path[k])
				}
			}
			nodes := map[string]bool{}
			for _, nd := range path {
				if nodes[nd] {
					route(diag.Location{VL: v.ID, Node: nd}, "remove the routing loop",
						"VL %s path %d visits %q twice", v.ID, pi, nd)
					break
				}
				nodes[nd] = true
			}
			// End systems attach to exactly one switch (ARINC 664 rule).
			for _, pair := range [][2]string{{path[0], path[1]}, {last, path[len(path)-2]}} {
				es, sw := pair[0], pair[1]
				if !n.IsEndSystem(es) {
					continue
				}
				if prev, ok := attach[es]; ok && prev != sw {
					ds = append(ds, diag.New(diag.CodeAttachment, diag.Error,
						diag.Location{Node: es},
						"an end system connects to exactly one switch port",
						"end system %q attached to both %q and %q", es, prev, sw))
					continue
				}
				attach[es] = sw
			}
		}
	}
	return ds
}

// TreeDiagnostics checks multicast well-formedness (code AFDX006): the
// paths of a VL must form a tree rooted at the source — whenever two
// paths share a node, their prefixes up to that node are identical (a
// frame is replicated at branch points, never re-routed onto a shared
// downstream node from different directions).
func (n *Network) TreeDiagnostics() []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, v := range n.VLs {
		if v == nil {
			continue
		}
		pred := map[string]string{}
		for pi, path := range v.Paths {
			for k := 1; k < len(path); k++ {
				node, prev := path[k], path[k-1]
				if p, ok := pred[node]; ok && p != prev {
					ds = append(ds, diag.New(diag.CodeMulticastTree, diag.Error,
						diag.Location{VL: v.ID, Node: node},
						"reroute so that all paths reach each shared node from the same predecessor",
						"VL %s path %d reaches %q from %q, but another path reaches it from %q (multicast routing must be a tree)",
						v.ID, pi, node, prev, p))
					continue
				}
				pred[node] = prev
			}
		}
	}
	return ds
}

// Validate checks the structural and contractual consistency of the
// network configuration and returns the first violation found, as an
// error carrying the diagnostic's stable code. The full, non-failing
// view of the same checks is StructuralDiagnostics (and, with the
// analysis-level checks included, the internal/lint engine).
func (n *Network) Validate(mode ValidationMode) error {
	if d, ok := diag.FirstError(n.StructuralDiagnostics(mode)); ok {
		return fmt.Errorf("afdx: [%s] %s", d.Code, d.Message)
	}
	return nil
}
