package afdx

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	n := Figure2Config()
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf, Strict)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n, got) {
		t.Errorf("round trip mismatch:\n%+v\nvs\n%+v", n, got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	n := Figure1Config()
	path := filepath.Join(t.TempDir(), "net.json")
	if err := n.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(path, Strict)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n, got) {
		t.Error("file round trip mismatch")
	}
}

func TestReadJSONRejectsUnknownFields(t *testing.T) {
	_, err := ReadJSON(strings.NewReader(`{"name":"x","bogus":1}`), Relaxed)
	if err == nil {
		t.Fatal("expected unknown-field error")
	}
}

func TestReadJSONValidates(t *testing.T) {
	// Structurally valid JSON but semantically invalid network.
	_, err := ReadJSON(strings.NewReader(`{"name":"x","params":{"linkRateMbps":100,"switchLatencyUs":16,"sourceLatencyUs":16},"endSystems":[],"switches":[],"vls":[]}`), Relaxed)
	if err == nil {
		t.Fatal("expected validation error for empty end system list")
	}
}

func TestLoadJSONMissingFile(t *testing.T) {
	if _, err := LoadJSON(filepath.Join(t.TempDir(), "nope.json"), Strict); err == nil {
		t.Fatal("expected error for missing file")
	}
}
