package afdx

import (
	"testing"
)

func TestBuildPortGraphFigure2(t *testing.T) {
	pg, err := BuildPortGraph(Figure2Config(), Strict)
	if err != nil {
		t.Fatal(err)
	}
	// Ports: e1->S1, e2->S1, e3->S2, e4->S2, e5->S3, S1->S3, S2->S3,
	// S3->e6, S3->e7.
	if got := len(pg.Ports); got != 9 {
		t.Fatalf("got %d ports, want 9", got)
	}
	s3e6 := pg.Ports[PortID{"S3", "e6"}]
	if s3e6 == nil {
		t.Fatal("port S3->e6 missing")
	}
	if got := len(s3e6.Flows); got != 4 {
		t.Errorf("S3->e6 should carry 4 VLs, got %d", got)
	}
	groups := s3e6.InputGroups()
	if len(groups) != 2 {
		t.Fatalf("S3->e6 should have 2 input-link groups, got %d: %v", len(groups), groups)
	}
	if got := len(groups["S1"]); got != 2 {
		t.Errorf("group from S1 should hold v1,v2, got %d flows", got)
	}
	if got := len(groups["S2"]); got != 2 {
		t.Errorf("group from S2 should hold v3,v4, got %d flows", got)
	}
	if !pg.Ports[PortID{"e1", "S1"}].IsSourcePort() {
		t.Error("e1->S1 should be a source port")
	}
	if s3e6.IsSourcePort() {
		t.Error("S3->e6 is not a source port")
	}
}

func TestInputGroupsSorted(t *testing.T) {
	pg, err := BuildPortGraph(Figure2Config(), Strict)
	if err != nil {
		t.Fatal(err)
	}
	s3e6 := pg.Ports[PortID{"S3", "e6"}]
	groups := s3e6.InputGroupsSorted()
	if len(groups) != 2 {
		t.Fatalf("S3->e6 should have 2 sorted input groups, got %d", len(groups))
	}
	if groups[0].Prev != "S1" || groups[1].Prev != "S2" {
		t.Fatalf("groups out of order: %q, %q", groups[0].Prev, groups[1].Prev)
	}
	// The flattened view must match the unsorted partition exactly.
	byPrev := s3e6.InputGroups()
	for _, g := range groups {
		want := byPrev[g.Prev]
		if len(g.Flows) != len(want) {
			t.Fatalf("group %q has %d flows, want %d", g.Prev, len(g.Flows), len(want))
		}
		for i := range want {
			if g.Flows[i].VL.ID != want[i].VL.ID {
				t.Errorf("group %q flow %d = %s, want %s (VL-ID order must be preserved)",
					g.Prev, i, g.Flows[i].VL.ID, want[i].VL.ID)
			}
		}
	}
	// Source ports have the single "" group.
	src := pg.Ports[PortID{"e1", "S1"}].InputGroupsSorted()
	if len(src) != 1 || src[0].Prev != "" {
		t.Fatalf("source port groups = %+v, want one \"\" group", src)
	}
}

func TestRanks(t *testing.T) {
	pg, err := BuildPortGraph(Figure2Config(), Strict)
	if err != nil {
		t.Fatal(err)
	}
	ranks := pg.Ranks()
	rankOf := map[PortID]int{}
	count := 0
	for r, ids := range ranks {
		for i, id := range ids {
			rankOf[id] = r
			count++
			if i > 0 {
				prev := ids[i-1]
				if prev.From > id.From || (prev.From == id.From && prev.To >= id.To) {
					t.Errorf("rank %d not canonically sorted: %v before %v", r, prev, id)
				}
			}
		}
	}
	if count != len(pg.Ports) {
		t.Fatalf("ranks cover %d ports, want %d", count, len(pg.Ports))
	}
	// Every feeder edge must climb at least one rank.
	for _, pid := range pg.Net.AllPaths() {
		seq := pg.PathPorts(pid)
		for k := 0; k+1 < len(seq); k++ {
			if rankOf[seq[k]] >= rankOf[seq[k+1]] {
				t.Errorf("path %v: feeder %v (rank %d) must be below %v (rank %d)",
					pid, seq[k], rankOf[seq[k]], seq[k+1], rankOf[seq[k+1]])
			}
		}
	}
	// Figure 2: source ports are rank 0, S1->S3 / S2->S3 rank 1, the two
	// S3 egress ports rank 2.
	if len(ranks) != 3 {
		t.Fatalf("figure 2 has 3 port ranks, got %d", len(ranks))
	}
	if rankOf[PortID{"S3", "e6"}] != 2 || rankOf[PortID{"S1", "S3"}] != 1 {
		t.Errorf("unexpected ranks: %v", rankOf)
	}
}

func TestPathPortsSequence(t *testing.T) {
	pg, err := BuildPortGraph(Figure2Config(), Strict)
	if err != nil {
		t.Fatal(err)
	}
	seq := pg.PathPorts(PathID{VL: "v1", PathIdx: 0})
	want := []PortID{{"e1", "S1"}, {"S1", "S3"}, {"S3", "e6"}}
	if len(seq) != len(want) {
		t.Fatalf("port sequence %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("port sequence %v, want %v", seq, want)
		}
	}
}

func TestTopologicalOrder(t *testing.T) {
	pg, err := BuildPortGraph(Figure2Config(), Strict)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[PortID]int{}
	for i, id := range pg.Order {
		pos[id] = i
	}
	if len(pos) != len(pg.Ports) {
		t.Fatalf("order covers %d ports, want %d", len(pos), len(pg.Ports))
	}
	for _, pid := range pg.Net.AllPaths() {
		seq := pg.PathPorts(pid)
		for k := 0; k+1 < len(seq); k++ {
			if pos[seq[k]] >= pos[seq[k+1]] {
				t.Errorf("path %v: port %v should precede %v in topological order",
					pid, seq[k], seq[k+1])
			}
		}
	}
}

func TestCyclicPortDependenciesRejected(t *testing.T) {
	n := &Network{
		Name:       "cyclic",
		Params:     DefaultParams(),
		EndSystems: []string{"a", "b", "c", "d"},
		Switches:   []string{"X", "Y"},
		VLs: []*VirtualLink{
			{ID: "f1", Source: "a", BAGMs: 4, SMaxBytes: 500, SMinBytes: 100,
				Paths: [][]string{{"a", "X", "Y", "c"}}},
			{ID: "f2", Source: "c2", BAGMs: 4, SMaxBytes: 500, SMinBytes: 100,
				Paths: [][]string{{"c2", "Y", "X", "b"}}},
		},
	}
	// f1 uses X->Y then Y->c; f2 uses Y->X then X->b: no cycle yet.
	n.EndSystems = append(n.EndSystems, "c2")
	if _, err := BuildPortGraph(n, Strict); err != nil {
		t.Fatalf("two opposite transits are not cyclic at port level: %v", err)
	}
	// Add flows closing the loop: X->Y feeds Y->X' and vice versa needs
	// a chain X->Y ... back to X->Y. Build it with two relay flows.
	n.EndSystems = append(n.EndSystems, "a2", "d2")
	n.Switches = append(n.Switches, "Z")
	n.VLs = append(n.VLs,
		&VirtualLink{ID: "f3", Source: "a2", BAGMs: 4, SMaxBytes: 500, SMinBytes: 100,
			Paths: [][]string{{"a2", "X", "Y", "Z", "d"}}},
		&VirtualLink{ID: "f4", Source: "d2", BAGMs: 4, SMaxBytes: 500, SMinBytes: 100,
			Paths: [][]string{{"d2", "Z", "Y", "X", "b"}}},
	)
	// Port cycle: (X->Y) -> (Y->Z) via f3, (Y->Z)? f4 gives (Z->Y) -> (Y->X).
	// Still no cycle; force one with a flow Y->X->... wait; simplest true
	// cycle: f5 crossing Y then X then Y is illegal (node repeat). Use a
	// triangle of switches instead.
	n.Switches = append(n.Switches, "W")
	n.EndSystems = append(n.EndSystems, "p", "q", "r", "p2", "q2", "r2")
	n.VLs = append(n.VLs,
		&VirtualLink{ID: "g1", Source: "p", BAGMs: 4, SMaxBytes: 500, SMinBytes: 100,
			Paths: [][]string{{"p", "X", "W", "Z", "q"}}}, // X->W feeds W->Z... need W
	)
	// Triangle cycle: (X->W)->(W->Z) [g1], (W->Z)->(Z->X) [g2], (Z->X)->(X->W) [g3].
	n.VLs = append(n.VLs,
		&VirtualLink{ID: "g2", Source: "q2", BAGMs: 4, SMaxBytes: 500, SMinBytes: 100,
			Paths: [][]string{{"q2", "W", "Z", "X", "r"}}},
		&VirtualLink{ID: "g3", Source: "r2", BAGMs: 4, SMaxBytes: 500, SMinBytes: 100,
			Paths: [][]string{{"r2", "Z", "X", "W", "p2"}}},
	)
	if _, err := BuildPortGraph(n, Strict); err == nil {
		t.Fatal("expected cyclic port dependency graph to be rejected")
	}
}

func TestFlowsSharingPath(t *testing.T) {
	pg, err := BuildPortGraph(Figure2Config(), Strict)
	if err != nil {
		t.Fatal(err)
	}
	shared := pg.FlowsSharingPath(PathID{VL: "v1", PathIdx: 0})
	if len(shared) != 4 {
		t.Fatalf("v1 shares ports with v1..v4, got %v", shared)
	}
	if shared["v2"] != (PortID{"S1", "S3"}) {
		t.Errorf("v2 first meets v1 at S1->S3, got %v", shared["v2"])
	}
	if shared["v3"] != (PortID{"S3", "e6"}) {
		t.Errorf("v3 first meets v1 at S3->e6, got %v", shared["v3"])
	}
	if _, ok := shared["v5"]; ok {
		t.Error("v5 does not share any output port with v1")
	}
}

func TestMulticastSharedPortCountedOnce(t *testing.T) {
	pg, err := BuildPortGraph(Figure1Config(), Strict)
	if err != nil {
		t.Fatal(err)
	}
	// v6 is multicast with shared prefix e1->S1: the port e1->S1 must list
	// v6 exactly once.
	p := pg.Ports[PortID{"e1", "S1"}]
	count := 0
	for _, f := range p.Flows {
		if f.VL.ID == "v6" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("multicast VL v6 listed %d times on shared port, want 1", count)
	}
}

func TestUtilizationReport(t *testing.T) {
	pg, err := BuildPortGraph(Figure2Config(), Strict)
	if err != nil {
		t.Fatal(err)
	}
	u := pg.UtilizationReport()
	// S3->e6 carries 4 VLs of rho = 1 bit/us each on a 100 bit/us link.
	if got, want := u[PortID{"S3", "e6"}], 0.04; got != want {
		t.Errorf("utilization of S3->e6 = %g, want %g", got, want)
	}
	for id, v := range u {
		if v <= 0 || v >= 1 {
			t.Errorf("port %v utilization %g out of (0,1)", id, v)
		}
	}
}

// TestLinkLoadsMatchesUtilizationReport checks the two load views agree:
// Network.LinkLoads (consumed by the configuration generator's admission
// gate and the AFDX013 analyzer) divided by the link rate must equal the
// port graph's UtilizationReport on every port the graph derives.
func TestLinkLoadsMatchesUtilizationReport(t *testing.T) {
	net := Figure2Config()
	pg, err := BuildPortGraph(net, Strict)
	if err != nil {
		t.Fatal(err)
	}
	u := pg.UtilizationReport()
	loads := net.LinkLoads()
	if len(loads) != len(u) {
		t.Fatalf("LinkLoads covers %d links, UtilizationReport %d ports", len(loads), len(u))
	}
	for id, util := range u {
		got := loads[id] / pg.Ports[id].RateBitsPerUs
		if diff := got - util; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("link %v: LinkLoads utilization %g, UtilizationReport %g", id, got, util)
		}
	}
}

func TestVLEntersPortFromTwoLinksRejected(t *testing.T) {
	n := Figure2Config()
	// Give v1 a second path that re-enters S3->e6 from another direction.
	n.VLs[0].Paths = append(n.VLs[0].Paths, []string{"e1", "S1", "S3", "e6"})
	// Identical path: allowed (counted once). Now corrupt it:
	n.VLs[0].Paths[1] = []string{"e1", "S1", "S2", "S3", "e6"}
	if _, err := BuildPortGraph(n, Strict); err == nil {
		t.Fatal("expected rejection: v1 reaches S3 from both S1 and S2")
	}
}

func TestMinPathDelayUs(t *testing.T) {
	pg, err := BuildPortGraph(Figure2Config(), Strict)
	if err != nil {
		t.Fatal(err)
	}
	d, err := pg.MinPathDelayUs(PathID{VL: "v1", PathIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	if d != 168 { // 3 ports * (16 us latency + 40 us min-frame time)
		t.Errorf("floor of v1 = %g, want 168", d)
	}
	if _, err := pg.MinPathDelayUs(PathID{VL: "zz", PathIdx: 9}); err == nil {
		t.Error("unknown path should error")
	}
}
