package afdx

// Canonical configurations from the paper. Figure2Config is the exact
// sample configuration of the paper's Figure 2 (used by Figures 3, 4, 7,
// 8, 9); Figure1Config is a reconstruction of the illustrative Figure 1
// topology (the published scan is partially illegible, so the VL routing
// below is a faithful-in-spirit reconstruction documented in DESIGN.md;
// it is used for model tests and examples, not for any paper experiment).

// Figure2Config builds the sample configuration of the paper's Figure 2:
// five emitting end systems e1..e5 (one VL each), two receiving end
// systems e6 and e7, and three switches S1..S3. VLs v1..v4 end at e6,
// v5 ends at e7. All VLs have BAG = 4 ms and s_max = 500 B (= 4000 bits);
// links run at 100 Mb/s and ports have a 16 us technological latency.
func Figure2Config() *Network {
	vl := func(id, src string, path ...string) *VirtualLink {
		return &VirtualLink{
			ID:        id,
			Source:    src,
			BAGMs:     4,
			SMaxBytes: 500,
			SMinBytes: 500,
			Paths:     [][]string{path},
		}
	}
	return &Network{
		Name:       "figure2",
		Params:     DefaultParams(),
		EndSystems: []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7"},
		Switches:   []string{"S1", "S2", "S3"},
		VLs: []*VirtualLink{
			vl("v1", "e1", "e1", "S1", "S3", "e6"),
			vl("v2", "e2", "e2", "S1", "S3", "e6"),
			vl("v3", "e3", "e3", "S2", "S3", "e6"),
			vl("v4", "e4", "e4", "S2", "S3", "e6"),
			vl("v5", "e5", "e5", "S3", "e7"),
		},
	}
}

// Figure1Config builds a five-switch, ten-end-system configuration in the
// spirit of the paper's Figure 1, including the unicast VL vx
// {e5 -> S4 -> e8} and the multicast VL v6 with paths through S1 to e7
// (via S3) and e8 (via S4) quoted in the text.
func Figure1Config() *Network {
	uni := func(id, src string, path ...string) *VirtualLink {
		return &VirtualLink{
			ID: id, Source: src, BAGMs: 8, SMaxBytes: 1000, SMinBytes: 200,
			Paths: [][]string{path},
		}
	}
	return &Network{
		Name:       "figure1",
		Params:     DefaultParams(),
		EndSystems: []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"},
		Switches:   []string{"S1", "S2", "S3", "S4", "S5"},
		VLs: []*VirtualLink{
			{
				ID: "v6", Source: "e1", BAGMs: 4, SMaxBytes: 500, SMinBytes: 100,
				Paths: [][]string{
					{"e1", "S1", "S3", "e7"},
					{"e1", "S1", "S4", "e8"},
				},
			},
			{
				ID: "v7", Source: "e2", BAGMs: 8, SMaxBytes: 800, SMinBytes: 100,
				Paths: [][]string{{"e2", "S1", "S3", "e7"}},
			},
			{
				ID: "v8", Source: "e1", BAGMs: 16, SMaxBytes: 1200, SMinBytes: 200,
				Paths: [][]string{{"e1", "S1", "S4", "e8"}},
			},
			{
				ID: "v9", Source: "e2", BAGMs: 2, SMaxBytes: 300, SMinBytes: 100,
				Paths: [][]string{{"e2", "S1", "S4", "e8"}},
			},
			uni("vx", "e5", "e5", "S4", "e8"),
			uni("v1", "e3", "e3", "S2", "S5", "e9"),
			uni("v2", "e4", "e4", "S2", "S5", "e9"),
			uni("v3", "e6", "e6", "S2", "S5", "e10"),
			uni("v4", "e6", "e6", "S2", "S5", "e10"),
			uni("v5", "e3", "e3", "S2", "S5", "e10"),
		},
	}
}
