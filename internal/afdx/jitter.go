package afdx

import (
	"fmt"
	"sort"

	"afdx/internal/diag"
)

// ARINC 664 part 7 bounds the jitter a transmitting end system may
// introduce at its output port: the standard's formula charges, on top
// of a fixed technological allowance, the serialization of one maximum
// frame of every other VL hosted by the end system, and caps the total.
const (
	// ESJitterFixedUs is the standard's fixed jitter allowance.
	ESJitterFixedUs = 40
	// ESJitterMaxUs is the standard's cap on end-system output jitter.
	ESJitterMaxUs = 500
	// ESJitterOverheadBytes is the per-frame overhead (preamble, SFD,
	// IFG, protocol margin) the standard's formula adds to s_max.
	ESJitterOverheadBytes = 67
)

// ESJitter is the ARINC 664 output-jitter figure of one end system.
type ESJitter struct {
	EndSystem string
	NumVLs    int
	// JitterUs = ESJitterFixedUs + sum over the ES's VLs of
	// (ESJitterOverheadBytes + s_max)*8 / rate.
	JitterUs float64
	// Compliant is JitterUs <= ESJitterMaxUs.
	Compliant bool
}

// ESJitterReport evaluates the ARINC 664 end-system output jitter
// formula for every transmitting end system, sorted by decreasing
// jitter. Non-compliant entries indicate an end system hosting more
// traffic than the standard allows to multiplex on one port.
func (n *Network) ESJitterReport() []ESJitter {
	rate := n.Params.RateBitsPerUs()
	if rate <= 0 {
		// Degenerate physical parameters; AFDX011 reports them, the
		// jitter formula is meaningless.
		return nil
	}
	byES := map[string][]*VirtualLink{}
	for _, vl := range n.VLs {
		if vl == nil {
			continue // nil entries are reported by AFDX011
		}
		byES[vl.Source] = append(byES[vl.Source], vl)
	}
	var out []ESJitter
	for es, vls := range byES {
		sum := 0.0
		for _, vl := range vls {
			sum += float64(ESJitterOverheadBytes+vl.SMaxBytes) * 8 / rate
		}
		j := ESJitterFixedUs + sum
		out = append(out, ESJitter{
			EndSystem: es,
			NumVLs:    len(vls),
			JitterUs:  j,
			Compliant: j <= ESJitterMaxUs,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].JitterUs != out[j].JitterUs {
			return out[i].JitterUs > out[j].JitterUs
		}
		return out[i].EndSystem < out[j].EndSystem
	})
	return out
}

// ValidateESJitter returns an error naming the first end system whose
// ARINC 664 output jitter exceeds the standard's cap.
func (n *Network) ValidateESJitter() error {
	for _, r := range n.ESJitterReport() {
		if !r.Compliant {
			return fmt.Errorf("afdx: end system %q output jitter %.1f us exceeds the ARINC 664 cap of %d us (%d VLs hosted)",
				r.EndSystem, r.JitterUs, ESJitterMaxUs, r.NumVLs)
		}
	}
	return nil
}

// ESJitterDiagnostics returns one coded diagnostic (AFDX008, Warning)
// per end system whose ARINC 664 output jitter exceeds the standard's
// cap. The severity is advisory: the delay analyses stay sound on such
// configurations, but the network is not ARINC 664 compliant and the
// end system is hosting more traffic than one output port should carry.
func (n *Network) ESJitterDiagnostics() []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, r := range n.ESJitterReport() {
		if r.Compliant {
			continue
		}
		ds = append(ds, diag.New(diag.CodeESJitter, diag.Warning,
			diag.Location{Node: r.EndSystem},
			"move VLs to another end system or reduce their s_max",
			"end system %q output jitter %.1f us exceeds the ARINC 664 cap of %d us (%d VLs hosted)",
			r.EndSystem, r.JitterUs, ESJitterMaxUs, r.NumVLs))
	}
	return ds
}
