package afdx

import (
	"math"
	"strings"
	"testing"
)

func TestVirtualLinkDerivedQuantities(t *testing.T) {
	v := &VirtualLink{ID: "v", BAGMs: 4, SMaxBytes: 500, SMinBytes: 100}
	if got := v.BAGUs(); got != 4000 {
		t.Errorf("BAGUs = %g, want 4000", got)
	}
	if got := v.SMaxBits(); got != 4000 {
		t.Errorf("SMaxBits = %g, want 4000", got)
	}
	if got := v.SMinBits(); got != 800 {
		t.Errorf("SMinBits = %g, want 800", got)
	}
	if got := v.RhoBitsPerUs(); got != 1 {
		t.Errorf("Rho = %g, want 1 bit/us", got)
	}
	if got := v.CMaxUs(100); got != 40 {
		t.Errorf("CMaxUs = %g, want 40", got)
	}
	if got := v.CMinUs(100); got != 8 {
		t.Errorf("CMinUs = %g, want 8", got)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.LinkRateMbps != 100 || p.SwitchLatencyUs != 16 || p.SourceLatencyUs != 16 {
		t.Errorf("unexpected defaults: %+v", p)
	}
	if got := p.RateBitsPerUs(); got != 100 {
		t.Errorf("RateBitsPerUs = %g, want 100", got)
	}
}

func TestFigure2ConfigValidates(t *testing.T) {
	n := Figure2Config()
	if err := n.Validate(Strict); err != nil {
		t.Fatalf("figure 2 config should be valid: %v", err)
	}
	st := n.ComputeStats()
	if st.NumVLs != 5 || st.NumPaths != 5 || st.NumSwitches != 3 || st.NumEndSystems != 7 {
		t.Errorf("unexpected stats: %+v", st)
	}
	if st.MaxPathLen != 2 {
		t.Errorf("max path length = %d switches, want 2", st.MaxPathLen)
	}
}

func TestFigure1ConfigValidates(t *testing.T) {
	n := Figure1Config()
	if err := n.Validate(Strict); err != nil {
		t.Fatalf("figure 1 config should be valid: %v", err)
	}
	vx := n.VL("vx")
	if vx == nil {
		t.Fatal("vx missing")
	}
	if len(vx.Paths) != 1 || len(vx.Paths[0]) != 3 {
		t.Errorf("vx should be the unicast path e5->S4->e8, got %v", vx.Paths)
	}
	v6 := n.VL("v6")
	if v6 == nil || len(v6.Paths) != 2 {
		t.Fatal("v6 should be a 2-destination multicast VL")
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *Network { return Figure2Config() }
	cases := []struct {
		name   string
		mutate func(*Network)
		frag   string
	}{
		{"duplicate VL id", func(n *Network) { n.VLs[1].ID = "v1" }, "duplicate"},
		{"source not ES", func(n *Network) { n.VLs[0].Source = "S1" }, "not an end system"},
		{"negative BAG", func(n *Network) { n.VLs[0].BAGMs = -4 }, "non-positive BAG"},
		{"non power of two BAG", func(n *Network) { n.VLs[0].BAGMs = 3 }, "power of two"},
		{"oversized frame", func(n *Network) { n.VLs[0].SMaxBytes = 2000 }, "exceeds Ethernet"},
		{"undersized frame", func(n *Network) { n.VLs[0].SMinBytes = 10 }, "below Ethernet"},
		{"smin above smax", func(n *Network) {
			n.VLs[0].SMinBytes = 600
			n.VLs[0].SMaxBytes = 500
		}, "s_min"},
		{"short path", func(n *Network) { n.VLs[0].Paths[0] = []string{"e1", "e6"} }, "too short"},
		{"wrong path start", func(n *Network) { n.VLs[0].Paths[0][0] = "e2" }, "starts at"},
		{"interior not switch", func(n *Network) { n.VLs[0].Paths[0][1] = "e3" }, "not a switch"},
		{"path node repeated", func(n *Network) {
			n.VLs[0].Paths[0] = []string{"e1", "S1", "S3", "S1", "e6"}
		}, ""},
		{"ES on two switches", func(n *Network) {
			n.VLs = append(n.VLs, &VirtualLink{
				ID: "bad", Source: "e1", BAGMs: 4, SMaxBytes: 500, SMinBytes: 500,
				Paths: [][]string{{"e1", "S2", "S3", "e6"}},
			})
		}, "attached to both"},
		{"zero rate", func(n *Network) { n.Params.LinkRateMbps = 0 }, "link rate"},
		{"negative latency", func(n *Network) { n.Params.SwitchLatencyUs = -1 }, "latency"},
		{"duplicate node", func(n *Network) { n.Switches = append(n.Switches, "e1") }, "declared twice"},
		{"no paths", func(n *Network) { n.VLs[0].Paths = nil }, "no path"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := base()
			c.mutate(n)
			err := n.Validate(Strict)
			if err == nil {
				t.Fatalf("expected validation error")
			}
			if c.frag != "" && !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not mention %q", err, c.frag)
			}
		})
	}
}

func TestValidateRelaxedAllowsSweepValues(t *testing.T) {
	n := Figure2Config()
	n.VLs[0].BAGMs = 3.5    // not a power of two
	n.VLs[0].SMinBytes = 50 // below Ethernet minimum
	n.VLs[0].SMaxBytes = 50 // below Ethernet minimum
	if err := n.Validate(Relaxed); err != nil {
		t.Errorf("relaxed mode should allow sweep values: %v", err)
	}
	if err := n.Validate(Strict); err == nil {
		t.Error("strict mode should reject sweep values")
	}
}

func TestMulticastTreeValidation(t *testing.T) {
	n := Figure1Config()
	// Break the tree property: reach S4 from two different predecessors.
	v6 := n.VL("v6")
	v6.Paths[1] = []string{"e1", "S1", "S3", "S4", "e8"}
	// Now path 1 reaches S4 from S3; make another path reach S4 from S1.
	v6.Paths = append(v6.Paths, []string{"e1", "S1", "S4", "e8b"})
	n.EndSystems = append(n.EndSystems, "e8b")
	if err := n.Validate(Strict); err == nil {
		t.Error("expected tree violation to be rejected")
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, k := range []float64{1, 2, 4, 8, 16, 32, 64, 128} {
		if !isPowerOfTwo(k) {
			t.Errorf("%g should be a power of two", k)
		}
	}
	for _, k := range []float64{0, -2, 3, 5, 6, 2.5, math.Pi} {
		if isPowerOfTwo(k) {
			t.Errorf("%g should not be a power of two", k)
		}
	}
}

func TestStatsString(t *testing.T) {
	s := Figure2Config().ComputeStats().String()
	if !strings.Contains(s, "VLs: 5") || !strings.Contains(s, "4:5") {
		t.Errorf("unexpected stats rendering: %q", s)
	}
}

func TestNetworkAllPathsDeterministic(t *testing.T) {
	n := Figure1Config()
	a := n.AllPaths()
	b := n.AllPaths()
	if len(a) != len(b) {
		t.Fatal("AllPaths not deterministic in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("AllPaths not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if a[0].String() == "" {
		t.Error("PathID.String should not be empty")
	}
}
