// Package lint is a static-analysis engine over AFDX configurations,
// modeled on the go/analysis vocabulary: an Analyzer is a named,
// documented check with a stable diagnostic code; a Pass gives one
// analyzer access to the configuration (and, when derivable, its port
// graph); Run drives every registered analyzer and assembles a Report.
//
// The point of the subsystem is to move feasibility checking ahead of
// the expensive delay analyses: an unstable port, a routing loop, or an
// ARINC 664 contract violation is caught in microseconds with a coded,
// located, actionable diagnostic instead of surfacing as a runtime
// error deep inside internal/netcalc or internal/trajectory. The
// engines share the same checks (CheckStability) so the two layers can
// never disagree.
package lint

import (
	"fmt"
	"sort"

	"afdx/internal/afdx"
	"afdx/internal/diag"
)

// Options configures a lint run.
type Options struct {
	// Mode selects Strict or Relaxed ARINC 664 contract validation.
	// Relaxed demotes out-of-standard BAG and frame-size values to
	// warnings (the paper's parametric sweeps use such values).
	Mode afdx.ValidationMode
	// UtilizationHeadroom is the port-utilization fraction above which
	// the stability analyzer emits a Warning even though the port is
	// still stable. Utilization above 1 is always an Error.
	UtilizationHeadroom float64
	// LinkUtilizationWarn is the admission-budget fraction above which
	// the link-utilization analyzer (AFDX013) warns; at or above the
	// full link rate it errors. Lower than UtilizationHeadroom: the
	// admission budget guards provisioning policy, the headroom guards
	// the stability frontier.
	LinkUtilizationWarn float64
}

// DefaultOptions lints with the strict ARINC 664 contract, a 95%
// utilization headroom warning threshold, and a 75% link admission
// budget.
func DefaultOptions() Options {
	return Options{Mode: afdx.Strict, UtilizationHeadroom: 0.95, LinkUtilizationWarn: 0.75}
}

// An Analyzer is one static check: a stable diagnostic code, a short
// name, one-paragraph documentation, and a Run function reporting
// findings through the Pass.
type Analyzer struct {
	// Code is the stable AFDX### diagnostic code every finding of this
	// analyzer carries. One code per analyzer.
	Code diag.Code
	// Name is the short kebab-case analyzer name.
	Name string
	// Doc documents what the analyzer checks and why it matters.
	Doc string
	// NeedsPorts marks analyzers that require the derived port graph;
	// they are skipped (and recorded in Report.Skipped) when the graph
	// cannot be built for the configuration under analysis.
	NeedsPorts bool
	// Run performs the check, reporting findings via pass.Report.
	Run func(pass *Pass)
}

// A Pass carries one analyzer invocation over one configuration.
type Pass struct {
	// Net is the configuration under analysis. Never nil.
	Net *afdx.Network
	// Graph is the derived port graph, non-nil only for analyzers with
	// NeedsPorts when derivation succeeded.
	Graph *afdx.PortGraph
	// Opts are the run options.
	Opts Options

	analyzer *Analyzer
	out      *[]diag.Diagnostic
}

// Report appends a finding. The diagnostic's code must be the
// analyzer's own; a mismatch is a programming error and panics.
func (p *Pass) Report(d diag.Diagnostic) {
	if d.Code != p.analyzer.Code {
		panic(fmt.Sprintf("lint: analyzer %s reported foreign code %s", p.analyzer.Name, d.Code))
	}
	*p.out = append(*p.out, d)
}

// Reportf builds and reports a finding with the analyzer's code.
func (p *Pass) Reportf(sev diag.Severity, loc diag.Location, suggestion, format string, args ...any) {
	p.Report(diag.New(p.analyzer.Code, sev, loc, suggestion, format, args...))
}

var registry []*Analyzer

// Register adds an analyzer to the global registry. It panics on a
// duplicate code or name, a malformed code, or an empty doc string —
// all programming errors caught at init time (and by the registry
// tests).
func Register(a *Analyzer) {
	if a.Name == "" || a.Doc == "" || a.Run == nil {
		panic(fmt.Sprintf("lint: analyzer %+v incompletely defined", a))
	}
	if len(a.Code) != 7 || a.Code[:4] != "AFDX" {
		panic(fmt.Sprintf("lint: analyzer %s has malformed code %q", a.Name, a.Code))
	}
	for _, b := range registry {
		if b.Code == a.Code || b.Name == a.Name {
			panic(fmt.Sprintf("lint: analyzer %s/%s collides with %s/%s", a.Name, a.Code, b.Name, b.Code))
		}
	}
	registry = append(registry, a)
}

// Analyzers returns the registered analyzers sorted by code.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// AnalyzerByCode returns the analyzer owning a code, or nil.
func AnalyzerByCode(code diag.Code) *Analyzer {
	for _, a := range registry {
		if a.Code == code {
			return a
		}
	}
	return nil
}

// Report is the outcome of linting one configuration.
type Report struct {
	// Network is the configuration name.
	Network string `json:"network"`
	// Diagnostics holds every finding, sorted errors-first then by code,
	// location and message.
	Diagnostics []diag.Diagnostic `json:"diagnostics"`
	// Skipped names the analyzers that could not run because the port
	// graph was not derivable (the structural findings explain why).
	Skipped []string `json:"skipped,omitempty"`
	// Errors, Warnings and Infos count the diagnostics by severity.
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`
}

// HasErrors reports whether any Error-severity diagnostic was found.
func (r *Report) HasErrors() bool { return r.Errors > 0 }

// Codes returns the distinct diagnostic codes present, sorted.
func (r *Report) Codes() []diag.Code {
	seen := map[diag.Code]bool{}
	var out []diag.Code
	for _, d := range r.Diagnostics {
		if !seen[d.Code] {
			seen[d.Code] = true
			out = append(out, d.Code)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExitCode maps the report to the afdx-lint process exit contract:
// 0 clean, 1 warnings only, 2 errors.
func (r *Report) ExitCode() int {
	switch {
	case r.Errors > 0:
		return 2
	case r.Warnings > 0:
		return 1
	default:
		return 0
	}
}

// Run lints a configuration with every registered analyzer and returns
// the assembled report. Port-level analyzers are skipped when the port
// graph cannot be derived (the structural diagnostics cover the cause);
// Run itself never fails and never panics on any decodable input.
func Run(net *afdx.Network, opts Options) *Report {
	if opts.UtilizationHeadroom <= 0 {
		opts.UtilizationHeadroom = DefaultOptions().UtilizationHeadroom
	}
	if opts.LinkUtilizationWarn <= 0 {
		opts.LinkUtilizationWarn = DefaultOptions().LinkUtilizationWarn
	}
	rep := &Report{Network: net.Name}
	// The port graph is derived under Relaxed validation so that
	// contract-level strictness (a matter for the contract analyzers)
	// does not mask the port-level checks.
	pg, pgErr := buildPortGraph(net)
	for _, a := range Analyzers() {
		pass := &Pass{Net: net, Opts: opts, analyzer: a, out: &rep.Diagnostics}
		if a.NeedsPorts {
			if pgErr != nil {
				rep.Skipped = append(rep.Skipped, a.Name)
				continue
			}
			pass.Graph = pg
		}
		a.Run(pass)
	}
	diag.Sort(rep.Diagnostics)
	rep.Errors, rep.Warnings, rep.Infos = diag.Count(rep.Diagnostics)
	return rep
}

// buildPortGraph derives the port graph defensively: derivation of a
// hostile configuration (fuzzed input) must not take the linter down.
func buildPortGraph(net *afdx.Network) (pg *afdx.PortGraph, err error) {
	defer func() {
		if r := recover(); r != nil {
			pg, err = nil, fmt.Errorf("lint: port graph derivation panicked: %v", r)
		}
	}()
	return afdx.BuildPortGraph(net, afdx.Relaxed)
}

// StabilityTolerance is the relative slack on the utilization-1.0
// stability frontier, absorbing float rounding in Σρ/R.
const StabilityTolerance = 1e-9

// UnstablePorts returns one Error diagnostic (code AFDX001) per port
// whose aggregate long-term rate exceeds the link rate, sorted by port.
// This is the shared stability check: the lint analyzer, the Network
// Calculus engine, and the Trajectory engine all consume it through
// PortGraph.UtilizationReport, so a configuration rejected by an engine
// is always flagged by the linter first.
func UnstablePorts(pg *afdx.PortGraph) []diag.Diagnostic {
	util := pg.UtilizationReport()
	ids := make([]afdx.PortID, 0, len(util))
	for id := range util {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].From != ids[j].From {
			return ids[i].From < ids[j].From
		}
		return ids[i].To < ids[j].To
	})
	var ds []diag.Diagnostic
	for _, id := range ids {
		if u := util[id]; u > 1+StabilityTolerance {
			ds = append(ds, diag.New(diag.CodeStability, diag.Error,
				diag.Location{Link: id.String()},
				"move VLs off the port, raise the link rate, or enlarge BAGs: no finite delay bound exists",
				"port %s unstable: utilization %.3f (aggregate rate %.3f bits/us exceeds link rate %.3f)",
				id, u, u*pg.Ports[id].RateBitsPerUs, pg.Ports[id].RateBitsPerUs))
		}
	}
	return ds
}

// CheckStability is the engines' pre-flight: it returns an error
// carrying the AFDX001 code and the first unstable port, or nil when
// every port is stable.
func CheckStability(pg *afdx.PortGraph) error {
	if ds := UnstablePorts(pg); len(ds) > 0 {
		return fmt.Errorf("[%s] %s", ds[0].Code, ds[0].Message)
	}
	return nil
}
