package lint

import (
	"fmt"
	"sort"
	"strings"

	"afdx/internal/afdx"
	"afdx/internal/diag"
)

// The built-in analyzers, one stable code each. Structural analyzers
// re-expose the coded collectors of internal/afdx (the same code paths
// Network.Validate composes); analysis-level analyzers implement the
// feasibility pre-checks that previously lived inside the delay
// engines.
func init() {
	Register(&Analyzer{
		Code: diag.CodeStability, Name: "stability", NeedsPorts: true,
		Doc: "Checks every output port's aggregate long-term rate Σ s_max/BAG " +
			"against the link rate R. A port above R is unstable: backlog grows " +
			"without bound and no finite worst-case delay exists, so both delay " +
			"engines reject the configuration. Utilization above the configured " +
			"headroom (default 95%) is reported as a warning.",
		Run: runStability,
	})
	Register(&Analyzer{
		Code: diag.CodeRouting, Name: "routing",
		Doc: "Checks VL routing: every VL has at least one path; each path starts " +
			"at the source end system, crosses only switches, ends at a distinct " +
			"end system, and visits no node twice; and the port dependency graph " +
			"is acyclic (the holistic analyses require feed-forward networks).",
		Run: runRouting,
	})
	Register(&Analyzer{
		Code: diag.CodeVLIdentity, Name: "vl-identity",
		Doc: "Checks that every virtual link carries a non-empty, network-unique identifier.",
		Run: func(p *Pass) { reportAll(p, p.Net.VLIdentityDiagnostics()) },
	})
	Register(&Analyzer{
		Code: diag.CodeBAG, Name: "bag",
		Doc: "Checks Bandwidth Allocation Gaps against the ARINC 664 harmonic set: " +
			"powers of two in [1,128] ms. Non-positive BAGs are always errors; " +
			"out-of-standard values are errors in Strict mode and warnings in " +
			"Relaxed mode (parametric sweeps).",
		Run: func(p *Pass) { reportCode(p, p.Net.ContractDiagnostics(p.Opts.Mode)) },
	})
	Register(&Analyzer{
		Code: diag.CodeFrameSize, Name: "frame-size",
		Doc: "Checks frame-size contracts: s_min and s_max positive, s_min <= s_max, " +
			"and both within the Ethernet bounds [64,1518] B (Strict mode; " +
			"warnings in Relaxed mode).",
		Run: func(p *Pass) { reportCode(p, p.Net.ContractDiagnostics(p.Opts.Mode)) },
	})
	Register(&Analyzer{
		Code: diag.CodeMulticastTree, Name: "multicast-tree",
		Doc: "Checks that each multicast VL's paths form a tree rooted at the " +
			"source: paths sharing a node must share the whole prefix up to it, " +
			"since frames replicate at branch points and are never re-routed onto " +
			"a shared downstream node from different directions.",
		Run: func(p *Pass) { reportAll(p, p.Net.TreeDiagnostics()) },
	})
	Register(&Analyzer{
		Code: diag.CodeGrouping, Name: "grouping", NeedsPorts: true,
		Doc: "Reports (as information) when no output port multiplexes two or more " +
			"flows arriving through a shared input link: the grouping " +
			"(serialization) refinement then has no precondition to exploit and " +
			"cannot tighten any bound on this configuration.",
		Run: runGrouping,
	})
	Register(&Analyzer{
		Code: diag.CodeESJitter, Name: "es-jitter",
		Doc: "Evaluates the ARINC 664 end-system output jitter formula (40 us fixed " +
			"plus the serialization of one maximum frame of every hosted VL) and " +
			"warns when an end system exceeds the standard's 500 us cap.",
		Run: func(p *Pass) { reportAll(p, p.Net.ESJitterDiagnostics()) },
	})
	Register(&Analyzer{
		Code: diag.CodeDeadline, Name: "deadline", NeedsPorts: true,
		Doc: "Pre-checks BAG-as-deadline feasibility: a path whose idle-network " +
			"delay floor (technological latencies plus minimum-frame transmission " +
			"times) already exceeds the VL's BAG can never be certified against " +
			"the common deadline convention, whatever the analysis.",
		Run: runDeadline,
	})
	Register(&Analyzer{
		Code: diag.CodeOrphan, Name: "orphans",
		Doc: "Flags declared end systems and switches that no VL path crosses, and " +
			"per-link rate overrides for links no VL uses: dead configuration that " +
			"usually indicates an incomplete edit.",
		Run: runOrphans,
	})
	Register(&Analyzer{
		Code: diag.CodeNetwork, Name: "network",
		Doc: "Checks network-level structure: at least one end system, unique node " +
			"declarations, positive link rates, non-negative technological " +
			"latencies, link-rate overrides naming declared nodes, no nil VL " +
			"entries, and non-negative priorities.",
		Run: func(p *Pass) { reportAll(p, p.Net.NetworkDiagnostics()) },
	})
	Register(&Analyzer{
		Code: diag.CodeLinkUtilization, Name: "link-utilization",
		Doc: "Checks every directed link's aggregate VL contract rate Σ s_max/BAG " +
			"against the admission budget, sharing the load computation of the " +
			"configuration generator's gate (afdx.Network.LinkLoads). Utilization " +
			"above the configured budget (default 75%) is a warning — the " +
			"bounds the engines certify degrade sharply as links fill — and " +
			"utilization at or above the full link rate is an error: the " +
			"busy-period fixpoints diverge at 100%, before the AFDX001 " +
			"stability frontier strictly above it.",
		Run: runLinkUtilization,
	})
	Register(&Analyzer{
		Code: diag.CodeAttachment, Name: "es-attachment",
		Doc: "Checks the ARINC 664 topology rule that an end system attaches to " +
			"exactly one switch: all paths entering or leaving an end system must " +
			"use the same adjacent switch.",
		Run: func(p *Pass) { reportCode(p, p.Net.RoutingDiagnostics()) },
	})
}

// reportAll forwards pre-coded diagnostics that all belong to the
// calling analyzer.
func reportAll(p *Pass, ds []diag.Diagnostic) {
	for _, d := range ds {
		p.Report(d)
	}
}

// reportCode forwards only the diagnostics carrying the calling
// analyzer's code, for collectors that emit a mix (contract: BAG and
// frame size; routing: paths and attachment).
func reportCode(p *Pass, ds []diag.Diagnostic) {
	for _, d := range ds {
		if d.Code == p.analyzer.Code {
			p.Report(d)
		}
	}
}

func runStability(p *Pass) {
	reportAll(p, UnstablePorts(p.Graph))
	util := p.Graph.UtilizationReport()
	ids := make([]afdx.PortID, 0, len(util))
	for id := range util {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].From != ids[j].From {
			return ids[i].From < ids[j].From
		}
		return ids[i].To < ids[j].To
	})
	for _, id := range ids {
		u := util[id]
		if u > p.Opts.UtilizationHeadroom && u <= 1+StabilityTolerance {
			p.Reportf(diag.Warning, diag.Location{Link: id.String()},
				"leave provisioning headroom: bounds grow sharply near saturation",
				"port %s utilization %.3f exceeds the %.0f%% headroom",
				id, u, p.Opts.UtilizationHeadroom*100)
		}
	}
}

// runLinkUtilization works from the VL paths directly (no port graph
// needed), so over-budget links are reported even on configurations the
// structural analyzers reject.
func runLinkUtilization(p *Pass) {
	loads := p.Net.LinkLoads()
	ids := make([]afdx.PortID, 0, len(loads))
	for id := range loads {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].From != ids[j].From {
			return ids[i].From < ids[j].From
		}
		return ids[i].To < ids[j].To
	})
	for _, id := range ids {
		rate := p.Net.LinkRateBitsPerUs(id.From, id.To)
		if rate <= 0 {
			continue // AFDX011 owns non-positive rates
		}
		u := loads[id] / rate
		switch {
		case u >= 1:
			p.Reportf(diag.Error, diag.Location{Link: id.String()},
				"move VLs off the link, raise its rate, or enlarge BAGs: busy periods diverge at full utilization",
				"link %s admission overrun: contract rate %.3f bits/us is %.1f%% of the link rate",
				id, loads[id], u*100)
		case u > p.Opts.LinkUtilizationWarn:
			p.Reportf(diag.Warning, diag.Location{Link: id.String()},
				"keep links under the admission budget: certified bounds degrade sharply as links fill",
				"link %s utilization %.3f exceeds the %.0f%% admission budget",
				id, u, p.Opts.LinkUtilizationWarn*100)
		}
	}
}

func runRouting(p *Pass) {
	reportCode(p, p.Net.RoutingDiagnostics())
	reportAll(p, portCycleDiagnostics(p.Net))
}

// portCycleDiagnostics detects cyclic port dependencies directly from
// the VL paths (port q feeds port p when some VL crosses q then p),
// without needing the derived port graph — which refuses to build for
// exactly these configurations.
func portCycleDiagnostics(n *afdx.Network) []diag.Diagnostic {
	succ := map[afdx.PortID][]afdx.PortID{}
	indeg := map[afdx.PortID]int{}
	seen := map[[2]afdx.PortID]bool{}
	for _, v := range n.VLs {
		if v == nil {
			continue
		}
		for _, path := range v.Paths {
			for k := 0; k+2 < len(path); k++ {
				q := afdx.PortID{From: path[k], To: path[k+1]}
				p := afdx.PortID{From: path[k+1], To: path[k+2]}
				if _, ok := indeg[q]; !ok {
					indeg[q] = 0
				}
				e := [2]afdx.PortID{q, p}
				if seen[e] {
					continue
				}
				seen[e] = true
				succ[q] = append(succ[q], p)
				indeg[p]++
			}
		}
	}
	// Kahn's algorithm, run forward and then on the reversed graph: a
	// port survives forward pruning when it lies on or downstream of a
	// cycle, reverse pruning when on or upstream — the intersection is
	// exactly the ports on cycles.
	forward := kahnResidue(indeg, succ)
	if forward == nil {
		return nil
	}
	pred := map[afdx.PortID][]afdx.PortID{}
	outdeg := map[afdx.PortID]int{}
	for id := range indeg {
		outdeg[id] = 0
	}
	for q, ss := range succ {
		for _, p := range ss {
			pred[p] = append(pred[p], q)
			outdeg[q]++
		}
	}
	backward := kahnResidue(outdeg, pred)
	var cyclic []string
	for id := range forward {
		if backward[id] {
			cyclic = append(cyclic, id.String())
		}
	}
	sort.Strings(cyclic)
	const maxShown = 8
	shown := cyclic
	if len(shown) > maxShown {
		shown = shown[:maxShown]
	}
	suffix := ""
	if len(cyclic) > maxShown {
		suffix = fmt.Sprintf(" (+%d more)", len(cyclic)-maxShown)
	}
	return []diag.Diagnostic{diag.New(diag.CodeRouting, diag.Error,
		diag.Location{},
		"break the loop: the holistic analyses require a feed-forward configuration",
		"cyclic port dependencies among %d ports: %s%s",
		len(cyclic), strings.Join(shown, ", "), suffix)}
}

// kahnResidue peels zero-degree nodes off the graph and returns the set
// that survives (nil when the graph is acyclic). deg is consumed.
func kahnResidue(deg map[afdx.PortID]int, next map[afdx.PortID][]afdx.PortID) map[afdx.PortID]bool {
	var ready []afdx.PortID
	for id, d := range deg {
		if d == 0 {
			//detcheck:allow DET003: kahnResidue returns the surviving node set and a count — both are independent of the order zero-degree nodes are peeled
			ready = append(ready, id)
		}
	}
	done := 0
	for len(ready) > 0 {
		id := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		done++
		for _, s := range next[id] {
			if deg[s]--; deg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if done == len(deg) {
		return nil
	}
	residue := map[afdx.PortID]bool{}
	for id, d := range deg {
		if d > 0 {
			residue[id] = true
		}
	}
	return residue
}

func runGrouping(p *Pass) {
	for _, port := range p.Graph.Ports {
		for prev, group := range port.InputGroups() {
			if prev != "" && len(group) > 1 {
				return // the refinement has at least one port to work on
			}
		}
	}
	p.Reportf(diag.Info, diag.Location{},
		"expected on lightly-multiplexed configurations; -no-grouping would give identical bounds",
		"no port multiplexes two flows through a shared input link: the grouping (serialization) refinement cannot tighten any bound")
}

func runDeadline(p *Pass) {
	for _, pid := range p.Net.AllPaths() {
		vl := p.Graph.VL(pid.VL)
		if vl == nil || vl.BAGMs <= 0 {
			continue // identity/contract analyzers cover these
		}
		floor, err := p.Graph.MinPathDelayUs(pid)
		if err != nil {
			continue
		}
		if floor > vl.BAGUs() {
			p.Reportf(diag.Warning, diag.Location{VL: pid.VL},
				"shorten the path, raise link rates, or enlarge the BAG",
				"path %s idle-network floor %.1f us exceeds its BAG %.0f us: the BAG-as-deadline check can never pass",
				pid, floor, vl.BAGUs())
		}
	}
}

func runOrphans(p *Pass) {
	used := map[string]bool{}
	usedLinks := map[afdx.PortID]bool{}
	for _, v := range p.Net.VLs {
		if v == nil {
			continue
		}
		used[v.Source] = true
		for _, path := range v.Paths {
			for k, nd := range path {
				used[nd] = true
				if k+1 < len(path) {
					usedLinks[afdx.PortID{From: nd, To: path[k+1]}] = true
				}
			}
		}
	}
	for _, es := range p.Net.EndSystems {
		if !used[es] {
			p.Reportf(diag.Warning, diag.Location{Node: es},
				"remove the declaration or route a VL through it",
				"end system %q is not used by any VL path", es)
		}
	}
	for _, sw := range p.Net.Switches {
		if !used[sw] {
			p.Reportf(diag.Warning, diag.Location{Node: sw},
				"remove the declaration or route a VL through it",
				"switch %q is not used by any VL path", sw)
		}
	}
	for _, lr := range p.Net.LinkRates {
		if !usedLinks[afdx.PortID{From: lr.From, To: lr.To}] {
			p.Reportf(diag.Warning, diag.Location{Link: lr.From + "->" + lr.To},
				"remove the override or fix the link it was meant for",
				"link rate override %s->%s applies to a link no VL uses", lr.From, lr.To)
		}
	}
}
