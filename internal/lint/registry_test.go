package lint_test

import (
	"regexp"
	"strings"
	"testing"

	afdx "afdx/internal/afdx"
	"afdx/internal/detcheck"
	"afdx/internal/lint"
	"afdx/internal/netcalc"
	"afdx/internal/trajectory"
)

// TestRegistryWellFormed enforces the analyzer contract: every
// registered analyzer carries a unique stable AFDX### code, a unique
// name, and a non-empty doc, and the registry lists them sorted.
func TestRegistryWellFormed(t *testing.T) {
	analyzers := lint.Analyzers()
	if len(analyzers) < 10 {
		t.Fatalf("registry holds %d analyzers, want at least 10", len(analyzers))
	}
	codeRe := regexp.MustCompile(`^AFDX\d{3}$`)
	codes := map[string]bool{}
	names := map[string]bool{}
	prev := ""
	for _, a := range analyzers {
		code := string(a.Code)
		if !codeRe.MatchString(code) {
			t.Errorf("analyzer %q code %q is not AFDX###", a.Name, code)
		}
		if codes[code] {
			t.Errorf("duplicate analyzer code %s", code)
		}
		codes[code] = true
		if a.Name == "" {
			t.Errorf("analyzer %s has an empty name", code)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s (%s) has no documentation", code, a.Name)
		}
		if code <= prev {
			t.Errorf("registry not sorted: %s listed after %s", code, prev)
		}
		prev = code
		if got := lint.AnalyzerByCode(a.Code); got != a {
			t.Errorf("AnalyzerByCode(%s) does not round-trip", code)
		}
	}
}

// TestBothRegistriesWellFormed spans the repository's two analysis
// suites: afdx-lint's configuration analyzers (AFDX###) and afdx-vet's
// source analyzers (DET###) must each carry unique, documented codes in
// their own namespace, with no cross-namespace reuse of an analyzer
// name — a finding's code alone must identify which tool raised it and
// what it means.
func TestBothRegistriesWellFormed(t *testing.T) {
	codes := map[string]string{} // code -> owning suite
	names := map[string]string{} // analyzer name -> owning suite
	record := func(suite, code, name, doc string, re *regexp.Regexp) {
		if !re.MatchString(code) {
			t.Errorf("%s analyzer %q code %q does not match %v", suite, name, code, re)
		}
		if prev, dup := codes[code]; dup {
			t.Errorf("code %s registered by both %s and %s", code, prev, suite)
		}
		codes[code] = suite
		if prev, dup := names[name]; dup {
			t.Errorf("analyzer name %q registered by both %s and %s", name, prev, suite)
		}
		names[name] = suite
		if doc == "" {
			t.Errorf("%s analyzer %s (%s) has no documentation", suite, code, name)
		}
	}
	lintRe := regexp.MustCompile(`^AFDX\d{3}$`)
	for _, a := range lint.Analyzers() {
		record("afdx-lint", string(a.Code), a.Name, a.Doc, lintRe)
	}
	detRe := regexp.MustCompile(`^DET\d{3}$`)
	det := detcheck.Analyzers()
	if len(det) < 6 {
		t.Fatalf("detcheck registry holds %d analyzers, want at least 6", len(det))
	}
	for _, a := range det {
		record("afdx-vet", a.ID, a.Name, a.Doc, detRe)
	}
}

// TestEnginesRejectUnstableViaLint checks the deduplicated stability
// gate: both delay engines refuse an unstable configuration with the
// shared AFDX001 diagnostic rather than a private check.
func TestEnginesRejectUnstableViaLint(t *testing.T) {
	net := loadCorpus(t, "unstable_port.json")
	pg, err := afdx.BuildPortGraph(net, afdx.Relaxed)
	if err != nil {
		t.Fatalf("the unstable configuration is structurally valid, BuildPortGraph failed: %v", err)
	}
	if err := lint.CheckStability(pg); err == nil {
		t.Fatal("CheckStability accepted an unstable port graph")
	}
	if _, err := netcalc.Analyze(pg, netcalc.DefaultOptions()); err == nil {
		t.Error("netcalc accepted an unstable configuration")
	} else if !strings.Contains(err.Error(), "AFDX001") {
		t.Errorf("netcalc error %q does not carry the AFDX001 code", err)
	}
	if _, err := trajectory.Analyze(pg, trajectory.DefaultOptions()); err == nil {
		t.Error("trajectory accepted an unstable configuration")
	} else if !strings.Contains(err.Error(), "AFDX001") {
		t.Errorf("trajectory error %q does not carry the AFDX001 code", err)
	}
}

// TestLintNeverPanicsOnHostileInputs runs the full linter over every
// corpus file plus degenerate in-memory networks; Run must always
// return a report, never panic.
func TestLintNeverPanicsOnHostileInputs(t *testing.T) {
	nets := []*afdx.Network{
		{},
		{Name: "only-name"},
		{Name: "nil-vl", EndSystems: []string{"e1"}, VLs: []*afdx.VirtualLink{nil}},
	}
	for _, n := range nets {
		rep := lint.Run(n, lint.DefaultOptions())
		if rep == nil {
			t.Fatalf("Run returned nil report for %q", n.Name)
		}
	}
}
